// A2 — The paper's representation argument (§4.2, Figures 3 vs 4):
// "Implementing a static rollback relation in this way [a full static state
// per transaction] is impractical, due to excessive duplication: the tuples
// that don't change between states must be duplicated in the new state."
//
// Baseline: a snapshot-copy store keeping a complete copy of the static
// state per transaction.  Treatment: temporadb's tuple-stamped rollback
// relation.  Both support the same rollback queries; the bench reports
// bytes retained and per-transaction update cost.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include <map>
#include <vector>

#include "bench/bench_common.h"

using namespace temporadb;

namespace {

// The naive Figure-3 representation: one full copy of the state per
// transaction.
class SnapshotCopyStore {
 public:
  void Apply(int64_t day, const std::string& name, const std::string& rank,
             bool is_delete) {
    std::map<std::string, std::string> next =
        states_.empty() ? std::map<std::string, std::string>{}
                        : states_.back().second;
    if (is_delete) {
      next.erase(name);
    } else {
      next[name] = rank;
    }
    states_.emplace_back(day, std::move(next));
  }

  // Rollback: latest state with day <= t.
  const std::map<std::string, std::string>* AsOf(int64_t t) const {
    const std::map<std::string, std::string>* result = nullptr;
    for (const auto& [day, state] : states_) {
      if (day <= t) result = &state;
    }
    return result;
  }

  size_t ApproximateBytes() const {
    size_t bytes = 0;
    for (const auto& [day, state] : states_) {
      bytes += sizeof(day);
      for (const auto& [k, v] : state) {
        bytes += k.size() + v.size() + 2 * sizeof(void*) * 2;
      }
    }
    return bytes;
  }

 private:
  std::vector<std::pair<int64_t, std::map<std::string, std::string>>> states_;
};

struct StreamOp {
  int64_t day;
  std::string name;
  std::string rank;
  bool is_delete;
};

std::vector<StreamOp> MakeStream(size_t churn) {
  Random rng(7);
  std::vector<StreamOp> ops;
  int64_t day = 3650;
  const char* ranks[] = {"assistant", "associate", "full"};
  for (size_t i = 0; i < churn; ++i) {
    day += 1;
    ops.push_back(StreamOp{day, "e" + std::to_string(rng.Uniform(64)),
                           ranks[rng.Uniform(3)], rng.OneIn(5)});
  }
  return ops;
}

void BM_SnapshotCopy(benchmark::State& state) {
  const size_t churn = static_cast<size_t>(state.range(0));
  std::vector<StreamOp> ops = MakeStream(churn);
  size_t bytes = 0;
  for (auto _ : state) {
    SnapshotCopyStore store;
    for (const StreamOp& op : ops) {
      store.Apply(op.day, op.name, op.rank, op.is_delete);
    }
    bytes = store.ApproximateBytes();
    benchmark::DoNotOptimize(store.AsOf(ops.back().day));
  }
  state.counters["approx_bytes"] = static_cast<double>(bytes);
  state.counters["bytes_per_op"] =
      static_cast<double>(bytes) / static_cast<double>(churn);
}

void BM_TupleStamped(benchmark::State& state) {
  const size_t churn = static_cast<size_t>(state.range(0));
  std::vector<StreamOp> ops = MakeStream(churn);
  size_t bytes = 0;
  for (auto _ : state) {
    bench::ScenarioDb sdb = bench::OpenScenarioDb();
    Schema schema = *Schema::Make({Attribute{"name", Type::String()},
                                   Attribute{"rank", Type::String()}});
    (void)sdb.db->CreateRelation("r", schema, TemporalClass::kRollback);
    Result<StoredRelation*> rel = sdb.db->GetRelation("r");
    for (const StreamOp& op : ops) {
      sdb.clock->SetTime(Chronon(op.day));
      std::string target = op.name;
      TuplePredicate pred = [target](const std::vector<Value>& values) {
        return values[0].AsString() == target;
      };
      (void)sdb.db->WithTransaction([&](Transaction* txn) -> Status {
        if (op.is_delete) {
          return (*rel)->DeleteWhere(txn, pred, std::nullopt).status();
        }
        // Upsert: replace if present, else append.
        Result<size_t> n = (*rel)->ReplaceWhere(
            txn, pred, {ConstUpdate(1, Value(op.rank))}, std::nullopt);
        if (!n.ok()) return n.status();
        if (*n == 0) {
          return (*rel)->Append(txn, {Value(op.name), Value(op.rank)},
                                std::nullopt);
        }
        return Status::OK();
      });
    }
    bytes = (*rel)->store()->ApproximateBytes();
  }
  state.counters["approx_bytes"] = static_cast<double>(bytes);
  state.counters["bytes_per_op"] =
      static_cast<double>(bytes) / static_cast<double>(churn);
}

}  // namespace

BENCHMARK(BM_SnapshotCopy)->Arg(250)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TupleStamped)->Arg(250)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

TDB_BENCH_MAIN("ablation_snapshot_vs_stamped")
