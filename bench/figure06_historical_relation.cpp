// Reproduces Figure 6: the tuple-stamped historical relation and the
// paper's historical query
//
//   retrieve (f1.rank)
//   where f1.name = "Merrie" and f2.name = "Tom"
//   when f1 overlap start of f2            =>  full, valid [12/01/82, inf)

#include <cstdio>

#include "bench/bench_common.h"
#include "tquel/printer.h"

using namespace temporadb;

int main() {
  bench::FigureRun bench_run("figure06_historical_relation");
  bench::PrintFigureHeader("Figure 6", "An Historical Relation", "");
  bench::ScenarioDb sdb = bench::OpenScenarioDb();
  if (!paper::BuildHistoricalFaculty(sdb.db.get(), sdb.clock.get()).ok()) {
    return 1;
  }
  Result<tquel::ExecResult> shown = sdb.db->Execute("show faculty");
  if (!shown.ok()) return 1;
  std::printf("%s\n", shown->rows.Render("faculty").c_str());

  const char* query =
      "range of f1 is faculty\n"
      "range of f2 is faculty\n"
      "retrieve (f1.rank) where f1.name = \"Merrie\" and f2.name = \"Tom\" "
      "when f1 overlap start of f2";
  std::printf("TQuel> %s\n\n", query);
  Result<tquel::ExecResult> result = sdb.db->Execute(query);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", tquel::FormatResult(*result).c_str());
  std::printf(
      "The answer differs from Figure 4's 'associate': the historical "
      "relation records corrected knowledge of reality, but cannot reveal "
      "that the database was once inconsistent with it.\n");
  return 0;
}
