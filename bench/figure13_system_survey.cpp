// Reproduces Figure 13: time support in the systems and languages of 1985,
// from the machine-readable survey table.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/taxonomy.h"

int main() {
  temporadb::bench::FigureRun bench_run("figure13_system_survey");
  std::printf("%s\n", temporadb::RenderFigure13().c_str());
  return 0;
}
