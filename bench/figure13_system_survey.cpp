// Reproduces Figure 13: time support in the systems and languages of 1985,
// from the machine-readable survey table.

#include <cstdio>

#include "core/taxonomy.h"

int main() {
  std::printf("%s\n", temporadb::RenderFigure13().c_str());
  return 0;
}
