#include "bench/bench_common.h"

#include <cstdio>

#include "common/strings.h"

namespace temporadb {
namespace bench {

ScenarioDb OpenScenarioDb(VersionStoreOptions store_options) {
  ScenarioDb out;
  out.clock = std::make_unique<ManualClock>();
  DatabaseOptions options;
  options.clock = out.clock.get();
  options.store_options = store_options;
  Result<std::unique_ptr<Database>> db = Database::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "failed to open database: %s\n",
                 db.status().ToString().c_str());
    std::abort();
  }
  out.db = std::move(*db);
  return out;
}

FigureRun::FigureRun(std::string id)
    : id_(std::move(id)), start_(std::chrono::steady_clock::now()) {}

FigureRun::~FigureRun() {
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
  const std::string path = "BENCH_" + id_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;  // Read-only working directory: skip the file.
  std::fprintf(f,
               "{\n  \"bench\": \"%s\",\n  \"kind\": \"figure\",\n"
               "  \"elapsed_ms\": %.3f\n}\n",
               id_.c_str(), elapsed_ms);
  std::fclose(f);
}

void PrintFigureHeader(const std::string& id, const std::string& title,
                       const std::string& note) {
  std::printf("=====================================================\n");
  std::printf("%s : %s\n", id.c_str(), title.c_str());
  std::printf("Snodgrass & Ahn, \"A Taxonomy of Time in Databases\", "
              "SIGMOD 1985\n");
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("=====================================================\n\n");
}

StoredRelation* PopulateStream(Database* db, ManualClock* clock,
                               const std::string& relation, TemporalClass cls,
                               size_t n_entities, size_t churn, uint64_t seed,
                               bool bounded_valid) {
  Schema schema = *Schema::Make({Attribute{"name", Type::String()},
                                 Attribute{"rank", Type::String()}});
  Result<RelationInfo> info = db->CreateRelation(relation, schema, cls);
  if (!info.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 info.status().ToString().c_str());
    std::abort();
  }
  Result<StoredRelation*> rel = db->GetRelation(relation);
  Random rng(seed);
  const bool has_valid = SupportsValidTime(cls);
  const char* ranks[] = {"assistant", "associate", "full", "emeritus"};
  int64_t day = 3650;  // ~1980.
  for (size_t op = 0; op < churn; ++op) {
    day += 1 + static_cast<int64_t>(rng.Uniform(3));
    clock->SetTime(Chronon(day));
    std::string name = "e" + std::to_string(rng.Uniform(n_entities));
    std::string rank = ranks[rng.Uniform(4)];
    std::optional<Period> valid;
    if (has_valid) {
      int64_t from = day - 30 + static_cast<int64_t>(rng.Uniform(60));
      valid = (!bounded_valid && rng.OneIn(2))
                  ? Period::From(Chronon(from))
                  : Period(Chronon(from),
                           Chronon(from + 1 +
                                   static_cast<int64_t>(rng.Uniform(90))));
    }
    Status s = db->WithTransaction([&](Transaction* txn) -> Status {
      std::string target = name;
      TuplePredicate pred = [target](const std::vector<Value>& values) {
        return values[0].AsString() == target;
      };
      uint64_t pick = rng.Uniform(10);
      if (pick < 5) {
        return (*rel)->Append(txn, {Value(name), Value(rank)}, valid);
      }
      if (pick < 8) {
        UpdateSpec updates{ConstUpdate(1, Value(rank))};
        Result<size_t> n = (*rel)->ReplaceWhere(txn, pred, updates, valid);
        return n.ok() ? Status::OK() : n.status();
      }
      Result<size_t> n = (*rel)->DeleteWhere(txn, pred, valid);
      return n.ok() ? Status::OK() : n.status();
    });
    if (!s.ok()) {
      std::fprintf(stderr, "stream op failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }
  return *rel;
}

int64_t PopulateLargeHistory(VersionStore* store, TxnManager* manager,
                             ManualClock* clock,
                             const LargeHistoryOptions& opts) {
  Random rng(opts.seed);
  const size_t entities = opts.entities > 0 ? opts.entities : 1;
  const size_t hot = entities / 8 > 0 ? entities / 8 : 1;
  // With the default theta = 0 the sampler is never consulted and the RNG
  // draw sequence below stays byte-identical to the legacy generator.
  const Zipf zipf(entities, opts.zipf_theta);
  const char* ranks[] = {"assistant", "associate", "full", "emeritus"};
  // Last still-current row per entity; kNone before the first insert.
  constexpr RowId kNone = static_cast<RowId>(-1);
  std::vector<RowId> current(entities, kNone);
  int64_t day = opts.start_day;
  auto run = [&](const std::function<Status(Transaction*)>& body) {
    clock->SetTime(Chronon(day));
    Result<Transaction*> txn = manager->Begin();
    Status s = txn.ok() ? body(*txn) : txn.status();
    if (s.ok()) s = manager->Commit(*txn);
    if (!s.ok()) {
      std::fprintf(stderr, "large-history op failed: %s\n",
                   s.ToString().c_str());
      std::abort();
    }
  };
  for (size_t v = 0; v < opts.versions; ++v) {
    day += static_cast<int64_t>(rng.Uniform(2));  // 0..1: dense timeline.
    // Skew: legacy hot-eighth 80/20 split, or a Zipf draw when requested.
    const size_t entity =
        opts.zipf_theta > 0.0
            ? static_cast<size_t>(zipf.Sample(&rng))
            : (rng.Uniform(10) < 8 ? rng.Uniform(hot)
                                   : hot + rng.Uniform(entities - hot));
    // Valid period: near the transaction day, except for the retroactive
    // correction trickle, which re-states a fact years back.
    int64_t from = opts.retro_one_in != 0 && rng.Uniform(opts.retro_one_in) == 0
                       ? day - 365 - static_cast<int64_t>(rng.Uniform(3 * 365))
                       : day - static_cast<int64_t>(rng.Uniform(30));
    Period valid =
        opts.open_one_in != 0 && rng.Uniform(opts.open_one_in) == 0
            ? Period::From(Chronon(from))
            : Period(Chronon(from),
                     Chronon(from + 1 + static_cast<int64_t>(rng.Uniform(120))));
    BitemporalTuple t;
    t.values = {Value(static_cast<int64_t>(entity)), Value(ranks[rng.Uniform(4)])};
    t.valid = valid;
    t.txn = Period::From(Chronon(day));
    run([&](Transaction* txn) -> Status {
      if (current[entity] != kNone) {
        TDB_RETURN_IF_ERROR(store->CloseTxn(txn, current[entity], Chronon(day)));
      }
      Result<RowId> row = store->Append(txn, std::move(t));
      if (!row.ok()) return row.status();
      current[entity] = *row;
      return Status::OK();
    });
  }
  return day;
}

}  // namespace bench
}  // namespace temporadb
