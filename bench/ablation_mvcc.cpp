// A10 — MVCC read snapshots: throughput and tail latency of snapshot-
// isolated readers while a writer commits a sustained append/delete stream.
// The pinned view never changes, so every read is also checked against the
// pin's baseline row count — a cheap canary for visibility leaks under
// load.  Arg(n) is the number of concurrent reader threads; the measuring
// thread is one of them, and per-read latencies from that thread feed the
// read_p50/p95/p99 counters.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench/bench_json.h"

#include "bench/bench_common.h"
#include "core/database.h"

using namespace temporadb;

namespace {

double Percentile(std::vector<double>* sorted_us, double p) {
  if (sorted_us->empty()) return 0.0;
  std::sort(sorted_us->begin(), sorted_us->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_us->size()));
  idx = std::min(idx, sorted_us->size() - 1);
  return (*sorted_us)[idx];
}

void BM_SnapshotReadsDuringWrites(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  bench::ScenarioDb sdb = bench::OpenScenarioDb();
  Database* db = sdb.db.get();
  ManualClock* clock = sdb.clock.get();
  (void)db->Execute(
      "create temporal relation emp (name = string, rank = string)");
  (void)db->Execute("range of e is emp");
  for (int i = 0; i < 2000; ++i) {
    if (i % 100 == 0) clock->AdvanceDays(1);
    Result<tquel::ExecResult> r =
        db->Execute("append to emp (name = \"s" + std::to_string(i) +
                    "\", rank = \"seed\")");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }

  Result<ReadSnapshot> snap = db->BeginReadSnapshot();
  if (!snap.ok()) {
    state.SkipWithError(snap.status().ToString().c_str());
    return;
  }
  const std::string query =
      "retrieve (e.name, e.rank) where e.rank = \"seed\"";
  Result<Rowset> baseline = db->QueryAtSnapshot(*snap, query);
  if (!baseline.ok()) {
    state.SkipWithError(baseline.status().ToString().c_str());
    return;
  }
  const size_t expect_rows = baseline->size();

  // One writer thread: sustained committed churn for the whole run.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writer_commits{0};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      clock->AdvanceDays(1);
      (void)db->Execute("append to emp (name = \"w" + std::to_string(i) +
                        "\", rank = \"new\")");
      (void)db->Execute("delete e where e.name = \"s" +
                        std::to_string(i % 2000) + "\"");
      writer_commits.fetch_add(2, std::memory_order_relaxed);
      ++i;
    }
  });
  // Background reader threads (the measuring thread is reader #0).
  std::vector<std::thread> others;
  std::atomic<uint64_t> other_reads{0};
  std::atomic<uint64_t> wrong_reads{0};
  for (int t = 1; t < readers; ++t) {
    others.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Result<Rowset> rows = db->QueryAtSnapshot(*snap, query);
        if (!rows.ok() || rows->size() != expect_rows) {
          wrong_reads.fetch_add(1, std::memory_order_relaxed);
        }
        other_reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<double> latencies_us;
  latencies_us.reserve(1 << 14);
  for (auto _ : state) {
    auto begin = std::chrono::steady_clock::now();
    Result<Rowset> rows = db->QueryAtSnapshot(*snap, query);
    auto end = std::chrono::steady_clock::now();
    if (!rows.ok() || rows->size() != expect_rows) {
      wrong_reads.fetch_add(1, std::memory_order_relaxed);
    }
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(end - begin).count());
    benchmark::DoNotOptimize(rows);
  }

  stop.store(true);
  writer.join();
  for (std::thread& t : others) t.join();

  state.SetItemsProcessed(static_cast<int64_t>(
      latencies_us.size() + other_reads.load()));
  state.counters["read_p50_us"] = Percentile(&latencies_us, 0.50);
  state.counters["read_p95_us"] = Percentile(&latencies_us, 0.95);
  state.counters["read_p99_us"] = Percentile(&latencies_us, 0.99);
  state.counters["reader_threads"] = static_cast<double>(readers);
  state.counters["writer_commits"] =
      static_cast<double>(writer_commits.load());
  state.counters["wrong_reads"] = static_cast<double>(wrong_reads.load());
  state.counters["snapshot_rows"] = static_cast<double>(expect_rows);
}

// The pin/release handshake itself (seqlock capture + registration), with
// the same writer churn contending on the publish word.
void BM_SnapshotPinRelease(benchmark::State& state) {
  bench::ScenarioDb sdb = bench::OpenScenarioDb();
  Database* db = sdb.db.get();
  ManualClock* clock = sdb.clock.get();
  (void)db->Execute("create temporal relation t (name = string)");
  (void)db->Execute("range of x is t");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      clock->AdvanceDays(1);
      (void)db->Execute("append to t (name = \"w" + std::to_string(i++) +
                        "\")");
    }
  });
  for (auto _ : state) {
    Result<ReadSnapshot> snap = db->BeginReadSnapshot();
    if (!snap.ok()) {
      state.SkipWithError(snap.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(snap);
  }
  stop.store(true);
  writer.join();
}

}  // namespace

BENCHMARK(BM_SnapshotReadsDuringWrites)
    ->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();
BENCHMARK(BM_SnapshotPinRelease)->Unit(benchmark::kMicrosecond)->UseRealTime();

TDB_BENCH_MAIN("mvcc")
