// Full-size bitemporal workload suite with differential oracle checking.
//
// Runs the seeded HR/payroll mixed-phase driver (serialized writer +
// concurrent MVCC snapshot readers issuing `as of` audit sweeps,
// valid-timeslice stabs, and when-joins) at production scale, verifies
// every sync point bit-identically against the in-memory shadow history,
// and emits BENCH_workload.json: write throughput, per-class read
// latency percentiles and QPS, and partition-prune ratios.
//
//   ./bench_workload                      # full size
//   ./bench_workload --small              # CI tier (also: TDB_WORKLOAD_SMALL)
//   ./bench_workload --ops=50000 --employees=10000 --readers=4 --seed=42
//
// Exits non-zero if any oracle mismatch or a broken ScanStats identity is
// observed: the bench doubles as an end-to-end correctness gate.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workload/driver.h"

namespace {

uint64_t FlagU64(int argc, char** argv, const char* name, uint64_t dflt) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return dflt;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using temporadb::workload::DriverOptions;
  using temporadb::workload::LatencySummary;
  using temporadb::workload::WorkloadDriver;
  using temporadb::workload::WorkloadReport;

  const bool small = HasFlag(argc, argv, "--small") ||
                     std::getenv("TDB_WORKLOAD_SMALL") != nullptr;

  DriverOptions d;
  d.gen.seed = FlagU64(argc, argv, "--seed", 42);
  // Full-size defaults are bounded by the when-join, whose cost is the
  // s × a cross product (no hash/index join for the `s.emp = a.emp`
  // residual yet — see ROADMAP): ~2000 employees / ~12000 ops keeps one
  // join in the low seconds while still spanning dozens of sealed
  // partitions.  Scale up with --employees/--ops when measuring offline.
  d.gen.employees =
      FlagU64(argc, argv, "--employees", small ? 256 : 2000);
  d.gen.departments = FlagU64(argc, argv, "--departments", small ? 8 : 24);
  d.gen.ops = FlagU64(argc, argv, "--ops", small ? 2000 : 12000);
  d.sync_every = FlagU64(argc, argv, "--sync-every", small ? 500 : 3000);
  d.reader_threads = FlagU64(argc, argv, "--readers", 4);
  d.queries_per_class = FlagU64(argc, argv, "--oracle-queries", 4);
  d.verify_threads = FlagU64(argc, argv, "--verify-threads", 4);
  d.deep_check_every = FlagU64(argc, argv, "--deep-every", 4);
  d.store.partition_rows =
      static_cast<size_t>(FlagU64(argc, argv, "--partition-rows", 4096));

  std::printf("bench_workload: HR/payroll bitemporal workload suite\n");
  std::printf(
      "  seed=%llu employees=%zu departments=%zu ops=%zu sync_every=%zu\n"
      "  readers=%zu partition_rows=%zu%s\n\n",
      (unsigned long long)d.gen.seed, d.gen.employees, d.gen.departments,
      d.gen.ops, d.sync_every, d.reader_threads, d.store.partition_rows,
      small ? " [small tier]" : "");

  WorkloadDriver driver(d);
  const temporadb::Status st = driver.Run();
  if (!st.ok()) {
    std::fprintf(stderr, "workload run failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const WorkloadReport& r = driver.report();

  std::printf("writes : %llu ops acked, %.0f ops/sec (primary engine)\n",
              (unsigned long long)r.ops_applied, r.write_ops_per_sec);
  std::printf("reads  : %llu pins, %llu snapshot queries\n",
              (unsigned long long)r.reader_pins,
              (unsigned long long)r.reader_queries);
  for (const auto& [cls, lat] : r.latency) {
    std::printf(
        "  %-10s count=%-7llu qps=%-8.1f p50=%.0fus p95=%.0fus p99=%.0fus\n",
        cls.c_str(), (unsigned long long)lat.count, lat.qps, lat.p50_us,
        lat.p95_us, lat.p99_us);
  }
  const uint64_t pruned =
      r.parts_pruned_tt + r.parts_pruned_vt + r.parts_pruned_snapshot;
  const double prune_ratio =
      r.parts_considered > 0
          ? static_cast<double>(pruned) / static_cast<double>(r.parts_considered)
          : 0.0;
  std::printf(
      "prune  : %llu considered, %llu pruned (tt=%llu vt=%llu snap=%llu), "
      "%llu scanned, ratio=%.3f\n",
      (unsigned long long)r.parts_considered, (unsigned long long)pruned,
      (unsigned long long)r.parts_pruned_tt,
      (unsigned long long)r.parts_pruned_vt,
      (unsigned long long)r.parts_pruned_snapshot,
      (unsigned long long)r.parts_scanned, prune_ratio);
  std::printf(
      "oracle : %llu sync points, %llu queries, %llu path compares, "
      "%llu deep checks, %llu mismatches, identity %s\n",
      (unsigned long long)r.sync_points, (unsigned long long)r.oracle_queries,
      (unsigned long long)r.oracle_paths_checked,
      (unsigned long long)r.deep_checks, (unsigned long long)r.mismatches,
      r.stats_identity_ok ? "ok" : "BROKEN");
  std::printf("total  : %.1f ms, stream digest %016llx\n", r.elapsed_ms,
              (unsigned long long)r.ops_digest);
  for (const std::string& sample : r.mismatch_samples) {
    std::fprintf(stderr, "MISMATCH: %s\n", sample.c_str());
  }

  std::FILE* f = std::fopen("BENCH_workload.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"workload\",\n  \"kind\": \"workload\",\n");
    std::fprintf(f,
                 "  \"seed\": %llu,\n  \"employees\": %zu,\n"
                 "  \"ops\": %llu,\n  \"readers\": %zu,\n"
                 "  \"partition_rows\": %zu,\n",
                 (unsigned long long)d.gen.seed, d.gen.employees,
                 (unsigned long long)r.ops_applied, d.reader_threads,
                 d.store.partition_rows);
    std::fprintf(f, "  \"write_ops_per_sec\": %.1f,\n", r.write_ops_per_sec);
    std::fprintf(f, "  \"classes\": {\n");
    size_t i = 0;
    for (const auto& [cls, lat] : r.latency) {
      std::fprintf(f,
                   "    \"%s\": {\"count\": %llu, \"qps\": %.1f, "
                   "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f}%s\n",
                   cls.c_str(), (unsigned long long)lat.count, lat.qps,
                   lat.p50_us, lat.p95_us, lat.p99_us,
                   ++i < r.latency.size() ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f,
                 "  \"scan_stats\": {\"considered\": %llu, "
                 "\"pruned_tt\": %llu, \"pruned_vt\": %llu, "
                 "\"pruned_snapshot\": %llu, \"scanned\": %llu, "
                 "\"rows_scanned\": %llu, \"prune_ratio\": %.4f},\n",
                 (unsigned long long)r.parts_considered,
                 (unsigned long long)r.parts_pruned_tt,
                 (unsigned long long)r.parts_pruned_vt,
                 (unsigned long long)r.parts_pruned_snapshot,
                 (unsigned long long)r.parts_scanned,
                 (unsigned long long)r.rows_scanned, prune_ratio);
    std::fprintf(f,
                 "  \"sync_points\": %llu,\n  \"oracle_queries\": %llu,\n"
                 "  \"oracle_paths_checked\": %llu,\n  \"deep_checks\": %llu,\n"
                 "  \"mismatches\": %llu,\n  \"stats_identity_ok\": %s,\n"
                 "  \"ops_digest\": \"%016llx\",\n  \"elapsed_ms\": %.3f\n",
                 (unsigned long long)r.sync_points,
                 (unsigned long long)r.oracle_queries,
                 (unsigned long long)r.oracle_paths_checked,
                 (unsigned long long)r.deep_checks,
                 (unsigned long long)r.mismatches,
                 r.stats_identity_ok ? "true" : "false",
                 (unsigned long long)r.ops_digest, r.elapsed_ms);
    std::fprintf(f, "}\n");
    std::fclose(f);
  }

  return (r.mismatches > 0 || !r.stats_identity_ok) ? 1 : 0;
}
