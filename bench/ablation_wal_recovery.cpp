// A7 — Durability costs: commit throughput with the WAL (synced and
// unsynced) vs in-memory, checkpoint cost, and recovery time as a function
// of WAL length.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include <unistd.h>

#include <filesystem>

#include "bench/bench_common.h"

using namespace temporadb;

namespace {

std::string FreshDir() {
  static int counter = 0;
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/tdb_bench_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter++);
  std::filesystem::remove_all(dir);
  return dir;
}

struct PersistentDb {
  std::string dir;
  ManualClock clock;
  std::unique_ptr<Database> db;
};

std::unique_ptr<PersistentDb> OpenPersistent(bool sync_commits,
                                             bool in_memory = false) {
  auto out = std::make_unique<PersistentDb>();
  out->dir = FreshDir();
  DatabaseOptions options;
  if (!in_memory) options.path = out->dir;
  options.clock = &out->clock;
  options.sync_commits = sync_commits;
  out->db = std::move(*Database::Open(options));
  (void)out->db->Execute("create temporal relation t (name = string)");
  out->clock.SetDate("01/01/80").ok();
  return out;
}

void RunCommits(benchmark::State& state, bool in_memory, bool synced) {
  auto pdb = OpenPersistent(synced, in_memory);
  int64_t day = 3650;
  for (auto _ : state) {
    pdb->clock.SetTime(Chronon(day++));
    Status s = pdb->db->Execute("append to t (name = \"x\")").status();
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  std::filesystem::remove_all(pdb->dir);
}

void BM_Commit_InMemory(benchmark::State& state) {
  RunCommits(state, true, false);
}
void BM_Commit_WalNoSync(benchmark::State& state) {
  RunCommits(state, false, false);
}
void BM_Commit_WalSynced(benchmark::State& state) {
  RunCommits(state, false, true);
}

void BM_Recovery(benchmark::State& state) {
  // Build a WAL of `n` committed transactions, then measure reopen time.
  const int n = static_cast<int>(state.range(0));
  auto pdb = OpenPersistent(/*sync_commits=*/false);
  int64_t day = 3650;
  for (int i = 0; i < n; ++i) {
    pdb->clock.SetTime(Chronon(day++));
    (void)pdb->db->Execute("append to t (name = \"x\")");
  }
  uint64_t wal_bytes = pdb->db->WalBytes();
  std::string dir = pdb->dir;
  ManualClock clock;
  pdb->db.reset();  // "Crash".
  for (auto _ : state) {
    DatabaseOptions options;
    options.path = dir;
    options.clock = &clock;
    Result<std::unique_ptr<Database>> db = Database::Open(options);
    if (!db.ok()) {
      state.SkipWithError(db.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(db);
  }
  state.counters["wal_bytes"] = static_cast<double>(wal_bytes);
  state.counters["txns_replayed"] = static_cast<double>(n);
  std::filesystem::remove_all(dir);
}

void BM_RecoveryAfterCheckpoint(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto pdb = OpenPersistent(/*sync_commits=*/false);
  int64_t day = 3650;
  for (int i = 0; i < n; ++i) {
    pdb->clock.SetTime(Chronon(day++));
    (void)pdb->db->Execute("append to t (name = \"x\")");
  }
  (void)pdb->db->Checkpoint();
  std::string dir = pdb->dir;
  ManualClock clock;
  pdb->db.reset();
  for (auto _ : state) {
    DatabaseOptions options;
    options.path = dir;
    options.clock = &clock;
    Result<std::unique_ptr<Database>> db = Database::Open(options);
    if (!db.ok()) {
      state.SkipWithError(db.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(db);
  }
  state.counters["txns_in_checkpoint"] = static_cast<double>(n);
  std::filesystem::remove_all(dir);
}

void BM_CheckpointCost(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto pdb = OpenPersistent(/*sync_commits=*/false);
  int64_t day = 3650;
  for (int i = 0; i < n; ++i) {
    pdb->clock.SetTime(Chronon(day++));
    (void)pdb->db->Execute("append to t (name = \"x\")");
  }
  for (auto _ : state) {
    Status s = pdb->db->Checkpoint();
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
  }
  state.counters["versions"] = static_cast<double>(n);
  std::filesystem::remove_all(pdb->dir);
}

}  // namespace

BENCHMARK(BM_Commit_InMemory);
BENCHMARK(BM_Commit_WalNoSync);
BENCHMARK(BM_Commit_WalSynced);
BENCHMARK(BM_Recovery)->Arg(1000)->Arg(8000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RecoveryAfterCheckpoint)->Arg(1000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CheckpointCost)->Arg(1000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

TDB_BENCH_MAIN("ablation_wal_recovery")
