// A9 — Vectorized execution: the batch path (contiguous chronon columns +
// branch-free selection-vector kernels, ~1024-row batches) against the
// row-at-a-time pull path, on the two probes the taxonomy stresses most:
// wide valid timeslices and the `when` overlap join.  Also sweeps the batch
// size and isolates kernel-vs-scalar temporal dispatch.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "bench/bench_common.h"
#include "common/period.h"
#include "common/random.h"
#include "rel/kernels.h"
#include "temporal/snapshot.h"

using namespace temporadb;

namespace {

// --- Wide timeslice -------------------------------------------------------

// "What held during [a, b)?" with the window spanning half the populated
// valid-time domain, so nearly every version survives the index probe and
// the winner is whoever disposes of the residual overlap test fastest: the
// row path's per-tuple Period calls or one kernel pass per batch.
void RunWideTimeslice(benchmark::State& state, bool batch_exec,
                      size_t batch_rows) {
  VersionStoreOptions options;
  options.batch_exec = batch_exec;
  if (batch_rows > 0) options.batch_rows = batch_rows;
  bench::ScenarioDb sdb = bench::OpenScenarioDb(options);
  StoredRelation* rel = bench::PopulateStream(
      sdb.db.get(), sdb.clock.get(), "r", TemporalClass::kHistorical, 64,
      static_cast<size_t>(state.range(0)), 17);
  (void)sdb.db->Execute("range of f is r");
  std::vector<Chronon> boundaries = ValidBoundaries(*rel->store());
  Chronon lo = boundaries[boundaries.size() / 4];
  Chronon hi = boundaries[3 * boundaries.size() / 4];
  std::string query = "retrieve (f.name, f.rank) valid from \"" +
                      lo.ToString() + "\" to \"" + hi.ToString() + "\"";
  size_t answer = 0;
  for (auto _ : state) {
    Result<Rowset> rows = sdb.db->Query(query);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      break;
    }
    answer = rows->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["answer_rows"] = static_cast<double>(answer);
  state.counters["history_versions"] =
      static_cast<double>(rel->store()->version_count());
}

void BM_WideTimeslice_Row(benchmark::State& state) {
  RunWideTimeslice(state, /*batch_exec=*/false, 0);
}
void BM_WideTimeslice_Batch(benchmark::State& state) {
  RunWideTimeslice(state, /*batch_exec=*/true, 0);
}
// The sweep: how sensitive is the batch path to its unit of flow?
void BM_WideTimeslice_BatchSize(benchmark::State& state) {
  RunWideTimeslice(state, /*batch_exec=*/true,
                   static_cast<size_t>(state.range(1)));
}

// --- When join ------------------------------------------------------------

// Two churned historical relations joined on key where their valid periods
// overlap (the A5 scenario).  The interval index is off, so every inner
// probe of the index-nested-loop join degrades to a residual sweep — the
// row path filters version-by-version through an InlineFunction predicate,
// the batch path disposes of each morsel with one branch-free kernel pass
// over the chronon columns.  (With the index on both paths reduce to the
// same exact treap probe and there is nothing left to vectorize; A5 covers
// that axis.)
bench::ScenarioDb BuildJoinPair(size_t per_relation, bool batch_exec) {
  VersionStoreOptions options;
  options.batch_exec = batch_exec;
  options.index_valid_time = false;
  bench::ScenarioDb sdb = bench::OpenScenarioDb(options);
  Random rng(5);
  for (const char* name : {"a", "b"}) {
    Schema schema = *Schema::Make({Attribute{"key", Type::String()},
                                   Attribute{"payload", Type::String()}});
    (void)sdb.db->CreateRelation(name, schema, TemporalClass::kHistorical);
    Result<StoredRelation*> rel = sdb.db->GetRelation(name);
    for (size_t i = 0; i < per_relation; ++i) {
      int64_t day = 3650 + static_cast<int64_t>(rng.Uniform(2000));
      sdb.clock->SetTime(Chronon(3650 + static_cast<int64_t>(i)));
      Period valid(Chronon(day),
                   Chronon(day + 30 + static_cast<int64_t>(rng.Uniform(600))));
      (void)sdb.db->WithTransaction([&](Transaction* txn) {
        return (*rel)->Append(
            txn,
            {Value("k" + std::to_string(rng.Uniform(per_relation / 4 + 1))),
             Value("p")},
            valid);
      });
    }
  }
  (void)sdb.db->Execute("range of x is a");
  (void)sdb.db->Execute("range of y is b");
  return sdb;
}

void RunWhenJoin(benchmark::State& state, bool batch_exec) {
  bench::ScenarioDb sdb =
      BuildJoinPair(static_cast<size_t>(state.range(0)), batch_exec);
  size_t answer = 0;
  for (auto _ : state) {
    Result<Rowset> rows = sdb.db->Query(
        "retrieve (x.key) where x.key = y.key when x overlap y");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      break;
    }
    answer = rows->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["answer_rows"] = static_cast<double>(answer);
}

void BM_WhenJoin_Row(benchmark::State& state) {
  RunWhenJoin(state, /*batch_exec=*/false);
}
void BM_WhenJoin_Batch(benchmark::State& state) {
  RunWhenJoin(state, /*batch_exec=*/true);
}

// --- Kernel vs scalar dispatch --------------------------------------------

// The isolated storage-boundary question: given n versions' valid periods,
// which survive an overlap window?  Scalar: one `Period::Overlaps` per
// element over an array of Period objects.  Kernel: one branch-free pass
// over two contiguous chronon columns writing a selection vector.  Same
// comparisons, different dispatch and memory layout.
struct PeriodColumns {
  std::vector<Period> periods;
  std::vector<int64_t> begins;
  std::vector<int64_t> ends;
};

PeriodColumns MakePeriods(size_t n) {
  Random rng(31);
  PeriodColumns out;
  out.periods.reserve(n);
  out.begins.reserve(n);
  out.ends.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t from = 1000 + static_cast<int64_t>(rng.Uniform(4000));
    Period p = rng.OneIn(2)
                   ? Period::From(Chronon(from))
                   : Period(Chronon(from),
                            Chronon(from + 1 +
                                    static_cast<int64_t>(rng.Uniform(120))));
    out.periods.push_back(p);
    out.begins.push_back(p.begin().days());
    out.ends.push_back(p.end().days());
  }
  return out;
}

void BM_Dispatch_ScalarPeriod(benchmark::State& state) {
  const PeriodColumns data = MakePeriods(static_cast<size_t>(state.range(0)));
  const Period window(Chronon(2000), Chronon(4000));
  std::vector<uint32_t> sel(data.periods.size());
  size_t matched = 0;
  for (auto _ : state) {
    size_t count = 0;
    for (size_t i = 0; i < data.periods.size(); ++i) {
      if (data.periods[i].Overlaps(window)) {
        sel[count++] = static_cast<uint32_t>(i);
      }
    }
    matched = count;
    benchmark::DoNotOptimize(sel.data());
  }
  state.counters["matched"] = static_cast<double>(matched);
}

void BM_Dispatch_Kernel(benchmark::State& state) {
  const PeriodColumns data = MakePeriods(static_cast<size_t>(state.range(0)));
  std::vector<uint32_t> sel(data.begins.size());
  size_t matched = 0;
  for (auto _ : state) {
    matched = kernels::SelectOverlaps(data.begins.data(), data.ends.data(),
                                      data.begins.size(), /*q_begin=*/2000,
                                      /*q_end=*/4000, sel.data());
    benchmark::DoNotOptimize(sel.data());
  }
  state.counters["matched"] = static_cast<double>(matched);
}

}  // namespace

BENCHMARK(BM_WideTimeslice_Row)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WideTimeslice_Batch)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WideTimeslice_BatchSize)
    ->Args({16000, 256})->Args({16000, 1024})->Args({16000, 4096})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WhenJoin_Row)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WhenJoin_Batch)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dispatch_ScalarPeriod)->Arg(4096)->Arg(65536);
BENCHMARK(BM_Dispatch_Kernel)->Arg(4096)->Arg(65536);

TDB_BENCH_MAIN("batch_exec")
