// A4 — Valid timeslice latency with the interval index on and off.
//
// Historical queries ("what was true at v?") are the other access path the
// taxonomy demands; the treap-backed interval index answers stabbing
// queries in O(log n + k) versus a full scan.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "bench/bench_common.h"
#include "temporal/snapshot.h"

using namespace temporadb;

namespace {

void RunTimeslice(benchmark::State& state, bool indexed) {
  VersionStoreOptions options;
  options.index_valid_time = indexed;
  bench::ScenarioDb sdb = bench::OpenScenarioDb(options);
  StoredRelation* rel = bench::PopulateStream(
      sdb.db.get(), sdb.clock.get(), "r", TemporalClass::kHistorical, 64,
      static_cast<size_t>(state.range(0)), 17);
  std::vector<Chronon> boundaries = ValidBoundaries(*rel->store());
  Chronon probe = boundaries[boundaries.size() / 2];
  size_t answer = 0;
  for (auto _ : state) {
    std::vector<RowId> rows =
        rel->store()->ValidOverlapping(Period::At(probe));
    answer = rows.size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["answer_rows"] = static_cast<double>(answer);
  state.counters["history_versions"] =
      static_cast<double>(rel->store()->version_count());
}

void BM_Timeslice_Indexed(benchmark::State& state) {
  RunTimeslice(state, true);
}
void BM_Timeslice_Scan(benchmark::State& state) {
  RunTimeslice(state, false);
}

// Overlap-range queries ("valid some time during [a, b)") of varying width.
void RunOverlapWindow(benchmark::State& state, bool indexed) {
  VersionStoreOptions options;
  options.index_valid_time = indexed;
  bench::ScenarioDb sdb = bench::OpenScenarioDb(options);
  StoredRelation* rel = bench::PopulateStream(
      sdb.db.get(), sdb.clock.get(), "r", TemporalClass::kHistorical, 64,
      8000, 17);
  std::vector<Chronon> boundaries = ValidBoundaries(*rel->store());
  Chronon mid = boundaries[boundaries.size() / 2];
  Period window(mid, mid + state.range(0));
  for (auto _ : state) {
    std::vector<RowId> rows = rel->store()->ValidOverlapping(window);
    benchmark::DoNotOptimize(rows);
  }
}

void BM_OverlapWindow_Indexed(benchmark::State& state) {
  RunOverlapWindow(state, true);
}
void BM_OverlapWindow_Scan(benchmark::State& state) {
  RunOverlapWindow(state, false);
}

// The same timeslice through the full TQuel stack: the paper's temporal
// cube probe (`as of T when ... at v`) against a churned temporal relation,
// with the executor's scan pushdown on and off.  With pushdown, `as of`
// resolves through the snapshot index and the `when` window through the
// interval index before tuples surface; without it, every retained version
// reaches the predicate filters.
void RunTemporalCube(benchmark::State& state, bool time_pushdown) {
  VersionStoreOptions options;
  options.time_pushdown = time_pushdown;
  bench::ScenarioDb sdb = bench::OpenScenarioDb(options);
  StoredRelation* rel = bench::PopulateStream(
      sdb.db.get(), sdb.clock.get(), "r", TemporalClass::kTemporal, 64,
      static_cast<size_t>(state.range(0)), 17, /*bounded_valid=*/true);
  (void)sdb.db->Execute("range of f is r");
  std::vector<Chronon> boundaries = ValidBoundaries(*rel->store());
  std::string when_at = boundaries[boundaries.size() / 2].ToString();
  // Transaction days advance 1..3 per op from day 3650, so this as-of
  // names a past state about three quarters through the stream — late
  // enough that every version covering the `when` stab (written within
  // ~120 days of the stream's valid-time midpoint) is already stored.
  std::string asof_at = Chronon(3650 + 3 * state.range(0) / 2).ToString();
  std::string query = "retrieve (f.name, f.rank) as of \"" + asof_at +
                      "\" when f overlap \"" + when_at + "\"";
  size_t answer = 0;
  for (auto _ : state) {
    Result<Rowset> rows = sdb.db->Query(query);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      break;
    }
    answer = rows->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["answer_rows"] = static_cast<double>(answer);
  state.counters["history_versions"] =
      static_cast<double>(rel->store()->version_count());
}

void BM_TemporalCube_Pushdown(benchmark::State& state) {
  RunTemporalCube(state, true);
}
void BM_TemporalCube_NoPushdown(benchmark::State& state) {
  RunTemporalCube(state, false);
}

}  // namespace

BENCHMARK(BM_Timeslice_Indexed)->Arg(1000)->Arg(4000)->Arg(16000);
BENCHMARK(BM_Timeslice_Scan)->Arg(1000)->Arg(4000)->Arg(16000);
BENCHMARK(BM_OverlapWindow_Indexed)->Arg(1)->Arg(30)->Arg(365);
BENCHMARK(BM_OverlapWindow_Scan)->Arg(1)->Arg(30)->Arg(365);
BENCHMARK(BM_TemporalCube_Pushdown)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TemporalCube_NoPushdown)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

TDB_BENCH_MAIN("ablation_timeslice_latency")
