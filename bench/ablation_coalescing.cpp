// A6 — Coalescing: temporal DML fragments validity (splits, supersessions);
// coalescing restores maximal periods.  This bench measures the
// fragmentation a churn stream produces, the cost of coalescing it, and the
// query-side benefit (fewer tuples to scan afterwards).

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "bench/bench_common.h"
#include "temporal/coalesce.h"

using namespace temporadb;

namespace {

std::vector<BitemporalTuple> CurrentTuples(const StoredRelation& rel) {
  std::vector<BitemporalTuple> out;
  rel.store()->ForEach([&](RowId, const BitemporalTuple& t) {
    if (t.IsCurrentState()) {
      BitemporalTuple copy = t;
      copy.txn = Period::All();  // Coalesce within the current state.
      out.push_back(std::move(copy));
    }
  });
  return out;
}

void BM_CoalesceCost(benchmark::State& state) {
  bench::ScenarioDb sdb = bench::OpenScenarioDb();
  StoredRelation* rel = bench::PopulateStream(
      sdb.db.get(), sdb.clock.get(), "r", TemporalClass::kTemporal, 16,
      static_cast<size_t>(state.range(0)), 23);
  std::vector<BitemporalTuple> fragments = CurrentTuples(*rel);
  size_t after = 0;
  for (auto _ : state) {
    std::vector<BitemporalTuple> coalesced = Coalesce(fragments);
    after = coalesced.size();
    benchmark::DoNotOptimize(coalesced);
  }
  state.counters["fragments"] = static_cast<double>(fragments.size());
  state.counters["coalesced"] = static_cast<double>(after);
  state.counters["reduction_pct"] =
      fragments.empty()
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(after) /
                               static_cast<double>(fragments.size()));
}

// Query benefit: timeslice scans over fragmented vs coalesced tuple sets.
void RunSliceScan(benchmark::State& state, bool coalesce_first) {
  bench::ScenarioDb sdb = bench::OpenScenarioDb();
  StoredRelation* rel = bench::PopulateStream(
      sdb.db.get(), sdb.clock.get(), "r", TemporalClass::kTemporal, 16, 4000,
      23);
  std::vector<BitemporalTuple> tuples = CurrentTuples(*rel);
  if (coalesce_first) tuples = Coalesce(tuples);
  Chronon probe(3650 + 2000);
  size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    for (const BitemporalTuple& t : tuples) {
      if (t.valid.Contains(probe)) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["tuples_scanned"] = static_cast<double>(tuples.size());
}

void BM_SliceScan_Fragmented(benchmark::State& state) {
  RunSliceScan(state, false);
}
void BM_SliceScan_Coalesced(benchmark::State& state) {
  RunSliceScan(state, true);
}

}  // namespace

BENCHMARK(BM_CoalesceCost)->Arg(500)->Arg(2000)->Arg(8000);
BENCHMARK(BM_SliceScan_Fragmented)->Arg(0);
BENCHMARK(BM_SliceScan_Coalesced)->Arg(0);

TDB_BENCH_MAIN("ablation_coalescing")
