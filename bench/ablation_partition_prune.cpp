// A11 — Epoch-partition pruning: narrow timeslice and as-of latency versus
// history depth, synopsis pruning on and off.
//
// The version store seals its append stream into fixed-size transaction-time
// epochs, each carrying a temporal synopsis (time bounds, currency, key
// sketch).  A scan whose pushed-down window provably misses an epoch skips
// it before any morsel forms, so a narrow probe against a deep history
// should cost the few epochs it intersects — sublinear in depth — while the
// unpruned scan stays linear.  The acceptance bar is >=5x at 1M versions.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench/bench_json.h"

#include "bench/bench_common.h"

using namespace temporadb;

namespace {

// One populated store per history depth, built once and shared by every
// benchmark at that depth (1M versions take a couple of seconds to build;
// rebuilding per arm would dominate the run).  The pruning toggle and the
// stats sink are re-pointed per arm, which is exactly what they exist for.
struct Fixture {
  std::unique_ptr<ManualClock> clock;
  std::unique_ptr<TxnManager> manager;
  std::unique_ptr<VersionStore> store;
  int64_t first_day = 0;
  int64_t last_day = 0;
};

Fixture* DeepHistory(size_t depth) {
  static std::map<size_t, std::unique_ptr<Fixture>> cache;
  std::unique_ptr<Fixture>& slot = cache[depth];
  if (slot != nullptr) return slot.get();
  slot = std::make_unique<Fixture>();
  slot->clock = std::make_unique<ManualClock>();
  slot->manager = std::make_unique<TxnManager>(slot->clock.get());
  // Secondary time indexes off: the sequential sweep is the access path
  // pruning accelerates (and maintaining the interval index across a
  // million-version build would dominate fixture setup).  Default 4096-row
  // epochs; pruning toggled per arm below.
  VersionStoreOptions options;
  options.index_valid_time = false;
  options.index_txn_time = false;
  slot->store = std::make_unique<VersionStore>(options);
  bench::LargeHistoryOptions opts;
  opts.versions = depth;
  opts.seed = 17;
  slot->first_day = opts.start_day;
  slot->last_day = bench::PopulateLargeHistory(
      slot->store.get(), slot->manager.get(), slot->clock.get(), opts);
  return slot.get();
}

size_t Drain(VersionBatchScan scan) {
  VersionBatch batch;
  size_t rows = 0;
  while (scan.Next(&batch)) rows += batch.size();
  return rows;
}

void ReportStats(benchmark::State& state, const Fixture* f,
                 const ScanStats& stats, size_t answer) {
  state.counters["answer_rows"] = static_cast<double>(answer);
  state.counters["history_versions"] =
      static_cast<double>(f->store->version_count());
  state.counters["parts_considered"] = static_cast<double>(stats.considered());
  state.counters["parts_pruned"] =
      static_cast<double>(stats.pruned_tt() + stats.pruned_vt());
  state.counters["parts_scanned"] = static_cast<double>(stats.scanned());
}

// Narrow valid timeslice near the start of the stream: epochs sealed after
// the window's week cannot contain a version whose valid period reaches
// that far back (outside the retroactive-correction trickle), so almost
// every later epoch prunes on its valid-time bounds.
void RunTimeslice(benchmark::State& state, bool pruned) {
  Fixture* f = DeepHistory(static_cast<size_t>(state.range(0)));
  f->store->ConfigurePartitionPruning(pruned);
  ScanStats stats;
  f->store->set_scan_stats(&stats);
  const Period window(Chronon(f->first_day + 40), Chronon(f->first_day + 47));
  size_t answer = 0;
  for (auto _ : state) {
    answer = Drain(f->store->BatchScanValidDuring(window));
    benchmark::DoNotOptimize(answer);
  }
  ReportStats(state, f, stats, answer);
  f->store->set_scan_stats(nullptr);
}

// Rollback to a day shortly after the stream began: every epoch sealed
// later has min(tt_start) above the probe, so the transaction-time bounds
// prune it regardless of how many of its rows are still current.
void RunAsOf(benchmark::State& state, bool pruned) {
  Fixture* f = DeepHistory(static_cast<size_t>(state.range(0)));
  f->store->ConfigurePartitionPruning(pruned);
  ScanStats stats;
  f->store->set_scan_stats(&stats);
  const Chronon probe(f->first_day + 40);
  size_t answer = 0;
  for (auto _ : state) {
    answer = Drain(f->store->BatchScanAsOf(probe));
    benchmark::DoNotOptimize(answer);
  }
  ReportStats(state, f, stats, answer);
  f->store->set_scan_stats(nullptr);
}

void BM_Timeslice_Pruned(benchmark::State& state) {
  RunTimeslice(state, true);
}
void BM_Timeslice_Unpruned(benchmark::State& state) {
  RunTimeslice(state, false);
}
void BM_AsOf_Pruned(benchmark::State& state) { RunAsOf(state, true); }
void BM_AsOf_Unpruned(benchmark::State& state) { RunAsOf(state, false); }

}  // namespace

BENCHMARK(BM_Timeslice_Pruned)
    ->Arg(64 << 10)
    ->Arg(256 << 10)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Timeslice_Unpruned)
    ->Arg(64 << 10)
    ->Arg(256 << 10)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AsOf_Pruned)
    ->Arg(64 << 10)
    ->Arg(256 << 10)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AsOf_Unpruned)
    ->Arg(64 << 10)
    ->Arg(256 << 10)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

TDB_BENCH_MAIN("partition_prune")
