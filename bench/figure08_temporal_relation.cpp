// Reproduces Figure 8 — the paper's centerpiece: the seven-row bitemporal
// faculty relation, and the query answered *differently* as of two
// transaction times:
//
//   retrieve (f1.rank)
//   where f1.name = "Merrie" and f2.name = "Tom"
//   when f1 overlap start of f2
//   as of "12/10/82"      =>  associate
//   as of "12/20/82"      =>  full

#include <cstdio>

#include "bench/bench_common.h"
#include "tquel/printer.h"

using namespace temporadb;

int main() {
  bench::FigureRun bench_run("figure08_temporal_relation");
  bench::PrintFigureHeader("Figure 8", "A Temporal Relation", "");
  bench::ScenarioDb sdb = bench::OpenScenarioDb();
  if (!paper::BuildTemporalFaculty(sdb.db.get(), sdb.clock.get()).ok()) {
    return 1;
  }
  Result<tquel::ExecResult> shown = sdb.db->Execute("show faculty");
  if (!shown.ok()) return 1;
  std::printf("%s\n", shown->rows.Render("faculty").c_str());

  if (!sdb.db->Execute("range of f1 is faculty").ok()) return 1;
  if (!sdb.db->Execute("range of f2 is faculty").ok()) return 1;

  for (const char* asof : {"12/10/82", "12/20/82"}) {
    std::string query =
        "retrieve (f1.rank) where f1.name = \"Merrie\" and "
        "f2.name = \"Tom\" when f1 overlap start of f2 as of \"" +
        std::string(asof) + "\"";
    std::printf("TQuel> %s\n\n", query.c_str());
    Result<tquel::ExecResult> result = sdb.db->Execute(query);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", tquel::FormatResult(*result).c_str());
  }
  std::printf(
      "Merrie's promotion (effective 12/01/82) was recorded 12/15/82: the "
      "temporal relation answers the same historical question differently "
      "as of different recording dates — \"completely capturing the "
      "history of retroactive/postactive changes.\"\n");
  return 0;
}
