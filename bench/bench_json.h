#ifndef TEMPORADB_BENCH_BENCH_JSON_H_
#define TEMPORADB_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace temporadb {
namespace bench {

/// Shared main() body for the google-benchmark ablations.  Unless the
/// caller already picked an output file, every run also emits the
/// machine-readable `BENCH_<id>.json` (google-benchmark's JSON format) next
/// to the console report, so figure/ablation results can be collected by
/// scripts without scraping stdout.
inline int RunBenchmarksWithJson(const char* id, int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = std::string("--benchmark_out=BENCH_") + id + ".json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

}  // namespace bench
}  // namespace temporadb

/// Defines main() for an ablation bench; `id` names the JSON result file.
#define TDB_BENCH_MAIN(id)                                         \
  int main(int argc, char** argv) {                                \
    return temporadb::bench::RunBenchmarksWithJson(id, argc, argv); \
  }

#endif  // TEMPORADB_BENCH_BENCH_JSON_H_
