// A1 — Storage growth by database kind.
//
// The paper's §4.2/§4.3 argue the kinds differ in what they must retain:
// static relations forget, rollback/temporal relations keep every version.
// This bench applies identical update streams to all four kinds and reports
// versions retained and approximate bytes.  Expected shape: static stays
// flat, historical grows slowly (splits only), rollback grows linearly in
// updates, temporal grows fastest (supersessions + remnants).

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "bench/bench_common.h"

using namespace temporadb;

namespace {

void RunGrowth(benchmark::State& state, TemporalClass cls) {
  const size_t churn = static_cast<size_t>(state.range(0));
  size_t versions = 0;
  size_t live = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    bench::ScenarioDb sdb = bench::OpenScenarioDb();
    StoredRelation* rel = bench::PopulateStream(
        sdb.db.get(), sdb.clock.get(), "r", cls, /*n_entities=*/64, churn,
        /*seed=*/42);
    versions = rel->store()->version_count();
    live = rel->store()->live_count();
    bytes = rel->store()->ApproximateBytes();
    benchmark::DoNotOptimize(rel);
  }
  state.counters["versions"] = static_cast<double>(versions);
  state.counters["live"] = static_cast<double>(live);
  state.counters["approx_bytes"] = static_cast<double>(bytes);
  state.counters["bytes_per_op"] =
      static_cast<double>(bytes) / static_cast<double>(churn);
}

void BM_Growth_Static(benchmark::State& state) {
  RunGrowth(state, TemporalClass::kStatic);
}
void BM_Growth_Rollback(benchmark::State& state) {
  RunGrowth(state, TemporalClass::kRollback);
}
void BM_Growth_Historical(benchmark::State& state) {
  RunGrowth(state, TemporalClass::kHistorical);
}
void BM_Growth_Temporal(benchmark::State& state) {
  RunGrowth(state, TemporalClass::kTemporal);
}

}  // namespace

BENCHMARK(BM_Growth_Static)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Growth_Rollback)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Growth_Historical)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Growth_Temporal)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

TDB_BENCH_MAIN("ablation_storage_growth")
