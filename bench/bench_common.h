#ifndef TEMPORADB_BENCH_BENCH_COMMON_H_
#define TEMPORADB_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <memory>
#include <string>

#include "common/random.h"
#include "core/database.h"
#include "core/paper_scenario.h"
#include "temporal/stored_relation.h"
#include "txn/clock.h"

namespace temporadb {
namespace bench {

/// A database with a manual clock, as used by every figure reproducer.
struct ScenarioDb {
  std::unique_ptr<ManualClock> clock;
  std::unique_ptr<Database> db;
};

/// Opens an in-memory database with a manual clock (optionally with index
/// toggles, for the ablations).
ScenarioDb OpenScenarioDb(VersionStoreOptions store_options = {});

/// Prints a figure header in a consistent style.
void PrintFigureHeader(const std::string& id, const std::string& title,
                       const std::string& note);

/// RAII marker for a figure reproducer run: on destruction writes the
/// machine-readable result file `BENCH_<id>.json` (kind, wall-clock ms)
/// next to the binary, mirroring what --benchmark_out produces for the
/// google-benchmark ablations.  Declare one at the top of main().
class FigureRun {
 public:
  explicit FigureRun(std::string id);
  ~FigureRun();

  FigureRun(const FigureRun&) = delete;
  FigureRun& operator=(const FigureRun&) = delete;

 private:
  std::string id_;
  std::chrono::steady_clock::time_point start_;
};

/// A synthetic update stream against one (name, rank) relation: `n_entities`
/// keys receiving inserts/replaces/deletes with retroactive and postactive
/// valid periods.  Used by the ablation benches.  Returns the relation.
///
/// `churn` ops are applied; transaction days advance by 1..3 per op.
/// By default half the valid periods are open-ended (`from` onwards); with
/// `bounded_valid` every period closes within ~90 days, so valid-time
/// stabs stay selective at any history size.
StoredRelation* PopulateStream(Database* db, ManualClock* clock,
                               const std::string& relation,
                               TemporalClass cls, size_t n_entities,
                               size_t churn, uint64_t seed,
                               bool bounded_valid = false);

/// Shape of a `PopulateLargeHistory` run.  Defaults give a realistic
/// deep-history workload: a small hot set receives most updates (so old
/// epochs are dominated by closed versions of hot keys), most valid
/// periods are bounded and near the transaction day, and a trickle of
/// retroactive corrections re-states facts far in the past.
struct LargeHistoryOptions {
  size_t versions = 1 << 16;  ///< Total versions appended.
  size_t entities = 1024;     ///< Distinct keys (values[0], int-typed).
  uint64_t seed = 42;
  int64_t start_day = 1000;   ///< First transaction day.

  /// Key skew: 0 keeps the legacy split (the hot eighth of the key space
  /// takes ~80% of the updates); > 0 draws keys from `Zipf(theta)` over the
  /// whole key space instead (rank 0 hottest), as the workload suite does.
  double zipf_theta = 0.0;

  /// One in `retro_one_in` steps is a retroactive correction whose valid
  /// period starts years before the transaction day (0: never).
  uint32_t retro_one_in = 32;

  /// One in `open_one_in` valid periods is open-ended (0: never).
  uint32_t open_one_in = 8;
};

/// Fills a standalone version store (driven directly through `manager`,
/// no Database/WAL around it) with a seeded update history: each step
/// closes the chosen entity's current version at the transaction day and
/// appends its replacement.  One eighth of the entities take ~80% of the
/// updates; ~1/32 of the steps are retroactive corrections whose valid
/// period starts years before the transaction day; ~1/8 of the periods
/// are open-ended.  Deterministic for a fixed options struct.  Returns
/// the final transaction day (probe anchors for the benches).
int64_t PopulateLargeHistory(VersionStore* store, TxnManager* manager,
                             ManualClock* clock,
                             const LargeHistoryOptions& opts);

}  // namespace bench
}  // namespace temporadb

#endif  // TEMPORADB_BENCH_BENCH_COMMON_H_
