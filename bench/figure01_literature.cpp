// Reproduces Figure 1: the paper's classification of time attributes in the
// pre-1985 literature, printed from the machine-readable survey table.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/taxonomy.h"

int main() {
  temporadb::bench::FigureRun bench_run("figure01_literature");
  std::printf("%s\n", temporadb::RenderFigure1().c_str());
  return 0;
}
