// A8 — Secondary attribute indexes: selective equality queries through the
// full TQuel stack with and without `create index`, at growing relation
// sizes.  Expected shape: indexed lookup flat in relation size, unindexed
// linear.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "bench/bench_common.h"

using namespace temporadb;

namespace {

bench::ScenarioDb Build(size_t n, bool indexed) {
  bench::ScenarioDb sdb = bench::OpenScenarioDb();
  (void)sdb.db->Execute(
      "create temporal relation emp (name = string, rank = string)");
  if (indexed) (void)sdb.db->Execute("create index on emp (name)");
  Result<StoredRelation*> rel = sdb.db->GetRelation("emp");
  for (size_t i = 0; i < n; ++i) {
    sdb.clock->SetTime(Chronon(3650 + static_cast<int64_t>(i)));
    (void)sdb.db->WithTransaction([&](Transaction* txn) {
      return (*rel)->Append(
          txn, {Value("e" + std::to_string(i)), Value("staff")},
          std::nullopt);
    });
  }
  (void)sdb.db->Execute("range of e is emp");
  return sdb;
}

void RunPointQuery(benchmark::State& state, bool indexed) {
  const size_t n = static_cast<size_t>(state.range(0));
  bench::ScenarioDb sdb = Build(n, indexed);
  std::string query = "retrieve (e.rank) where e.name = \"e" +
                      std::to_string(n / 2) + "\"";
  size_t answer = 0;
  for (auto _ : state) {
    Result<Rowset> rows = sdb.db->Query(query);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      break;
    }
    answer = rows->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["answer_rows"] = static_cast<double>(answer);
  state.counters["relation_size"] = static_cast<double>(n);
}

void BM_PointQuery_Indexed(benchmark::State& state) {
  RunPointQuery(state, true);
}
void BM_PointQuery_Scan(benchmark::State& state) {
  RunPointQuery(state, false);
}

// The write-side cost of maintaining the index.
void RunAppends(benchmark::State& state, bool indexed) {
  bench::ScenarioDb sdb = bench::OpenScenarioDb();
  (void)sdb.db->Execute("create temporal relation emp (name = string)");
  if (indexed) (void)sdb.db->Execute("create index on emp (name)");
  Result<StoredRelation*> rel = sdb.db->GetRelation("emp");
  int64_t day = 3650;
  for (auto _ : state) {
    sdb.clock->SetTime(Chronon(day++));
    Status s = sdb.db->WithTransaction([&](Transaction* txn) {
      return (*rel)->Append(txn, {Value("e" + std::to_string(day))},
                            std::nullopt);
    });
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Append_Indexed(benchmark::State& state) { RunAppends(state, true); }
void BM_Append_NoIndex(benchmark::State& state) { RunAppends(state, false); }

}  // namespace

BENCHMARK(BM_PointQuery_Indexed)->Arg(1000)->Arg(4000)->Arg(16000);
BENCHMARK(BM_PointQuery_Scan)->Arg(1000)->Arg(4000)->Arg(16000);
BENCHMARK(BM_Append_Indexed);
BENCHMARK(BM_Append_NoIndex);

TDB_BENCH_MAIN("ablation_attr_index")
