// Reproduces Figure 11: which of the three kinds of time each database kind
// incorporates, computed from the enforcement predicates.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/taxonomy.h"

int main() {
  temporadb::bench::FigureRun bench_run("figure11_database_times");
  std::printf("%s\n", temporadb::RenderFigure11().c_str());
  return 0;
}
