// Reproduces Figure 11: which of the three kinds of time each database kind
// incorporates, computed from the enforcement predicates.

#include <cstdio>

#include "core/taxonomy.h"

int main() {
  std::printf("%s\n", temporadb::RenderFigure11().c_str());
  return 0;
}
