// A5 — Temporal join scaling: the TQuel `when f1 overlap f2` join evaluated
// through the full query stack at increasing relation sizes, with the
// executor's `when` scan pushdown on and off, against the non-temporal
// equi-join as a baseline.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "bench/bench_common.h"

using namespace temporadb;

namespace {

bench::ScenarioDb BuildPair(size_t per_relation, bool time_pushdown = true) {
  VersionStoreOptions options;
  options.time_pushdown = time_pushdown;
  bench::ScenarioDb sdb = bench::OpenScenarioDb(options);
  Random rng(5);
  for (const char* name : {"a", "b"}) {
    Schema schema = *Schema::Make({Attribute{"key", Type::String()},
                                   Attribute{"payload", Type::String()}});
    (void)sdb.db->CreateRelation(name, schema, TemporalClass::kHistorical);
    Result<StoredRelation*> rel = sdb.db->GetRelation(name);
    for (size_t i = 0; i < per_relation; ++i) {
      int64_t day = 3650 + static_cast<int64_t>(rng.Uniform(2000));
      sdb.clock->SetTime(Chronon(3650 + static_cast<int64_t>(i)));
      Period valid(Chronon(day),
                   Chronon(day + 1 + static_cast<int64_t>(rng.Uniform(120))));
      (void)sdb.db->WithTransaction([&](Transaction* txn) {
        return (*rel)->Append(
            txn,
            {Value("k" + std::to_string(rng.Uniform(per_relation / 4 + 1))),
             Value("p")},
            valid);
      });
    }
  }
  (void)sdb.db->Execute("range of x is a");
  (void)sdb.db->Execute("range of y is b");
  return sdb;
}

// With pushdown, the executor re-derives x's period per outer tuple and
// probes b's interval index (`ScanValidDuring`), so the inner scan touches
// only overlapping versions; without it, every inner version is surfaced
// and the `when` predicate filters above the store.
void RunWhenJoin(benchmark::State& state, bool time_pushdown) {
  bench::ScenarioDb sdb =
      BuildPair(static_cast<size_t>(state.range(0)), time_pushdown);
  size_t answer = 0;
  for (auto _ : state) {
    Result<Rowset> rows = sdb.db->Query(
        "retrieve (x.key) where x.key = y.key when x overlap y");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      break;
    }
    answer = rows->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["answer_rows"] = static_cast<double>(answer);
}

void BM_WhenJoin_Pushdown(benchmark::State& state) {
  RunWhenJoin(state, true);
}
void BM_WhenJoin_NoPushdown(benchmark::State& state) {
  RunWhenJoin(state, false);
}

void BM_EquiJoinOnly(benchmark::State& state) {
  bench::ScenarioDb sdb = BuildPair(static_cast<size_t>(state.range(0)));
  size_t answer = 0;
  for (auto _ : state) {
    Result<Rowset> rows =
        sdb.db->Query("retrieve (x.key) where x.key = y.key");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      break;
    }
    answer = rows->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["answer_rows"] = static_cast<double>(answer);
}

}  // namespace

BENCHMARK(BM_WhenJoin_Pushdown)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WhenJoin_NoPushdown)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EquiJoinOnly)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);

TDB_BENCH_MAIN("ablation_when_join")
