// A5 — Temporal join scaling: the TQuel `when f1 overlap f2` join evaluated
// through the full query stack at increasing relation sizes, against the
// non-temporal equi-join as a baseline.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

using namespace temporadb;

namespace {

bench::ScenarioDb BuildPair(size_t per_relation) {
  bench::ScenarioDb sdb = bench::OpenScenarioDb();
  Random rng(5);
  for (const char* name : {"a", "b"}) {
    Schema schema = *Schema::Make({Attribute{"key", Type::String()},
                                   Attribute{"payload", Type::String()}});
    (void)sdb.db->CreateRelation(name, schema, TemporalClass::kHistorical);
    Result<StoredRelation*> rel = sdb.db->GetRelation(name);
    for (size_t i = 0; i < per_relation; ++i) {
      int64_t day = 3650 + static_cast<int64_t>(rng.Uniform(2000));
      sdb.clock->SetTime(Chronon(3650 + static_cast<int64_t>(i)));
      Period valid(Chronon(day),
                   Chronon(day + 1 + static_cast<int64_t>(rng.Uniform(120))));
      (void)sdb.db->WithTransaction([&](Transaction* txn) {
        return (*rel)->Append(
            txn,
            {Value("k" + std::to_string(rng.Uniform(per_relation / 4 + 1))),
             Value("p")},
            valid);
      });
    }
  }
  (void)sdb.db->Execute("range of x is a");
  (void)sdb.db->Execute("range of y is b");
  return sdb;
}

void BM_WhenJoin(benchmark::State& state) {
  bench::ScenarioDb sdb = BuildPair(static_cast<size_t>(state.range(0)));
  size_t answer = 0;
  for (auto _ : state) {
    Result<Rowset> rows = sdb.db->Query(
        "retrieve (x.key) where x.key = y.key when x overlap y");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      break;
    }
    answer = rows->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["answer_rows"] = static_cast<double>(answer);
}

void BM_EquiJoinOnly(benchmark::State& state) {
  bench::ScenarioDb sdb = BuildPair(static_cast<size_t>(state.range(0)));
  size_t answer = 0;
  for (auto _ : state) {
    Result<Rowset> rows =
        sdb.db->Query("retrieve (x.key) where x.key = y.key");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      break;
    }
    answer = rows->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["answer_rows"] = static_cast<double>(answer);
}

}  // namespace

BENCHMARK(BM_WhenJoin)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EquiJoinOnly)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
