// Reproduces Figure 5: an historical relation as a sequence of slices along
// *valid* time.  The same transaction script as Figure 3, plus a fourth,
// correcting transaction that removes an erroneous tuple without trace —
// the operation a rollback relation cannot perform.

#include <cstdio>

#include "bench/bench_common.h"
#include "temporal/snapshot.h"

using namespace temporadb;

int main() {
  bench::FigureRun bench_run("figure05_historical_cube");
  bench::PrintFigureHeader(
      "Figure 5", "An Historical Relation",
      "Same transactions as Figure 3, plus a correction erasing an "
      "erroneous first-transaction tuple (\"c\").");
  bench::ScenarioDb sdb = bench::OpenScenarioDb();
  if (!paper::BuildCubeScenario(sdb.db.get(), sdb.clock.get(),
                                TemporalClass::kHistorical)
           .ok()) {
    return 1;
  }
  Result<StoredRelation*> rel = sdb.db->GetRelation("r");
  if (!rel.ok()) return 1;

  std::vector<StaticState> slices = HistoricalSlices(*(*rel)->store());
  for (const StaticState& slice : slices) {
    std::printf("tuples valid at %s:\n", slice.at.ToString().c_str());
    for (const auto& row : slice.rows) {
      std::printf("  | %-4s | %-3s |\n", row[0].ToString().c_str(),
                  row[1].ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\"c\" appears in no slice: the correction left no record of the "
      "error (compare Figure 3, where deleted data remains reachable).\n");
  return 0;
}
