// Reproduces Figure 12 (attributes of the three new kinds of time) and then
// demonstrates each attribute with a live probe:
//  - transaction time is append-only and DBMS-assigned;
//  - valid time is user-suppliable and correctable;
//  - user-defined time is schema data the engine never interprets.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/taxonomy.h"

using namespace temporadb;

int main() {
  bench::FigureRun bench_run("figure12_time_attributes");
  std::printf("%s\n", RenderFigure12().c_str());

  bench::ScenarioDb sdb = bench::OpenScenarioDb();
  sdb.clock->SetDate("01/01/80").ok();
  sdb.db->Execute(
         "create temporal relation r (name = string, letter_date = date)")
      .ok();
  sdb.db->Execute("range of v is r").ok();

  std::printf("Probes:\n");
  // 1. Transaction time: assigned by the clock, not the user; there is no
  //    syntax to set it.
  sdb.db->Execute("append to r (name = \"x\", letter_date = \"06/01/79\")")
      .ok();
  Result<Rowset> rows = sdb.db->Query("retrieve (v.name)");
  std::printf(
      " * transaction time: assigned %s by the DBMS clock (no user syntax "
      "exists to choose it)\n",
      rows.ok() && !rows->empty()
          ? rows->rows()[0].txn->begin().ToString().c_str()
          : "?");

  // 2. Valid time: the user may assert any period, including the past.
  bool retro = sdb.db
                   ->Execute("append to r (name = \"y\", letter_date = "
                             "\"01/01/70\") valid from \"01/01/75\" to "
                             "\"inf\"")
                   .ok();
  std::printf(
      " * valid time: retroactive assertion (recorded 01/01/80, valid from "
      "01/01/75) %s\n",
      retro ? "accepted" : "REJECTED (bug)");

  // 3. User-defined time: letter_date is opaque; it round-trips through
  //    storage and comparisons but drives no temporal semantics.
  Result<Rowset> by_letter = sdb.db->Query(
      "retrieve (v.name) where v.letter_date < \"01/01/75\"");
  std::printf(
      " * user-defined time: 'letter_date' stored/compared as data only "
      "(%zu tuple(s) matched an ordinary where-clause)\n\n",
      by_letter.ok() ? by_letter->size() : 0);
  return 0;
}
