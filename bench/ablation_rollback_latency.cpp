// A3 — Rollback (`as of`) latency vs. history depth, with the
// transaction-time snapshot index on and off.
//
// Expected shape: with the index, a rollback to a past instant scales with
// the answer size (O(log n + k)); without it, with total history size.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "bench/bench_common.h"
#include "temporal/snapshot.h"

using namespace temporadb;

namespace {

struct Built {
  bench::ScenarioDb sdb;
  StoredRelation* rel;
  Chronon probe;  // An instant in the middle of history.
};

Built Build(size_t churn, bool indexed) {
  VersionStoreOptions options;
  options.index_txn_time = indexed;
  Built out{bench::OpenScenarioDb(options), nullptr, Chronon(0)};
  out.rel = bench::PopulateStream(out.sdb.db.get(), out.sdb.clock.get(), "r",
                                  TemporalClass::kRollback, 64, churn, 99);
  // Probe the middle of the transaction-time line.
  std::vector<Chronon> boundaries = TransactionBoundaries(*out.rel->store());
  out.probe = boundaries[boundaries.size() / 2];
  return out;
}

void RunRollback(benchmark::State& state, bool indexed) {
  Built built = Build(static_cast<size_t>(state.range(0)), indexed);
  size_t answer = 0;
  for (auto _ : state) {
    std::vector<RowId> rows = built.rel->store()->TxnAsOf(built.probe);
    answer = rows.size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["answer_rows"] = static_cast<double>(answer);
  state.counters["history_versions"] =
      static_cast<double>(built.rel->store()->version_count());
}

void BM_AsOf_Indexed(benchmark::State& state) { RunRollback(state, true); }
void BM_AsOf_Scan(benchmark::State& state) { RunRollback(state, false); }

// Rollback to "now" (the common case the SnapshotIndex current-set serves).
void RunCurrent(benchmark::State& state, bool indexed) {
  Built built = Build(static_cast<size_t>(state.range(0)), indexed);
  for (auto _ : state) {
    std::vector<RowId> rows = built.rel->store()->CurrentRows();
    benchmark::DoNotOptimize(rows);
  }
}

void BM_Current_Indexed(benchmark::State& state) { RunCurrent(state, true); }
void BM_Current_Scan(benchmark::State& state) { RunCurrent(state, false); }

}  // namespace

BENCHMARK(BM_AsOf_Indexed)->Arg(1000)->Arg(4000)->Arg(16000);
BENCHMARK(BM_AsOf_Scan)->Arg(1000)->Arg(4000)->Arg(16000);
BENCHMARK(BM_Current_Indexed)->Arg(1000)->Arg(4000)->Arg(16000);
BENCHMARK(BM_Current_Scan)->Arg(1000)->Arg(4000)->Arg(16000);

TDB_BENCH_MAIN("ablation_rollback_latency")
