// A8 — Morsel-parallel temporal scans and WAL group commit.
//
// Thread sweep (0 = parallelism off, then 1..8 workers) over the probes
// the figures exercise — valid timeslice, rollback cube, and the TQuel
// when-join — against a >=100k-version history; every parallel scan is
// bit-identical to the sequential one (tests/parallel_exec_test.cpp), so
// this file only measures.  Also: the filter-dispatch delta from replacing
// the per-row std::function predicate with the small-buffer VersionFilter,
// and commits/sec of group commit versus one fsync per commit.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <thread>

#include "bench/bench_json.h"

#include "bench/bench_common.h"
#include "exec/thread_pool.h"
#include "storage/wal.h"
#include "temporal/snapshot.h"

using namespace temporadb;

namespace {

// One churned temporal relation shared by every scan benchmark (building
// >100k versions dominates a per-run setup, so it is cached across the
// whole sweep and only the parallel knobs are re-pointed per run).  About
// 65% of stream ops append a version, so 160k ops leave >100k versions.
constexpr size_t kChurn = 160000;

struct ScanFixture {
  bench::ScenarioDb sdb;
  StoredRelation* rel = nullptr;
  Period stab;     // A narrow valid window: index-selective, tiny candidates.
  Period window;   // A third of valid-time history: scan-bound candidates.
  Chronon asof;    // A past stored state (rollback probe).
};

ScanFixture& SharedHistory() {
  static ScanFixture* fixture = [] {
    auto* f = new ScanFixture();
    f->sdb = bench::OpenScenarioDb();
    f->rel = bench::PopulateStream(f->sdb.db.get(), f->sdb.clock.get(), "r",
                                   TemporalClass::kTemporal, 64, kChurn, 17,
                                   /*bounded_valid=*/true);
    std::vector<Chronon> boundaries = ValidBoundaries(*f->rel->store());
    Chronon mid = boundaries[boundaries.size() / 2];
    f->stab = Period(mid - 60, mid + 60);
    // Valid times track transaction days (1..3 apart), so a sixth of the
    // total day span on each side of the midpoint covers about a third of
    // all versions — a candidate domain that dwarfs the morsel threshold.
    const int64_t span = 2 * static_cast<int64_t>(kChurn);
    f->window = Period(mid - span / 6, mid + span / 6);
    // A stored state about three quarters through the stream.
    f->asof = Chronon(3650 + 3 * static_cast<int64_t>(kChurn) / 2);
    return f;
  }();
  return *fixture;
}

size_t Drain(VersionScan scan) {
  size_t n = 0;
  while (scan.Next() != nullptr) ++n;
  return n;
}

// Points the fixture's store at a pool of `threads` workers for one
// benchmark run (0 = sequential), restoring sequential mode on destruction.
class ParallelGuard {
 public:
  ParallelGuard(VersionStore* store, int64_t threads) : store_(store) {
    if (threads > 0) {
      pool_ = std::make_unique<exec::ThreadPool>(
          static_cast<size_t>(threads));
      store_->ConfigureParallel(pool_.get());
    } else {
      store_->ConfigureParallel(nullptr);
    }
  }
  ~ParallelGuard() { store_->ConfigureParallel(nullptr); }

 private:
  VersionStore* store_;
  std::unique_ptr<exec::ThreadPool> pool_;
};

void BM_ParallelTimeslice(benchmark::State& state) {
  ScanFixture& f = SharedHistory();
  ParallelGuard guard(f.rel->store(), state.range(0));
  size_t answer = 0;
  for (auto _ : state) {
    answer = Drain(f.rel->store()->ScanValidDuring(f.window));
    benchmark::DoNotOptimize(answer);
  }
  state.counters["answer_rows"] = static_cast<double>(answer);
  state.counters["history_versions"] =
      static_cast<double>(f.rel->store()->version_count());
}

// A narrow stab stays below the morsel threshold: the interval index
// already cut the candidates to a handful, and the flat series documents
// that parallelism correctly does not engage where it cannot win.
void BM_ParallelTimesliceStab(benchmark::State& state) {
  ScanFixture& f = SharedHistory();
  ParallelGuard guard(f.rel->store(), state.range(0));
  size_t answer = 0;
  for (auto _ : state) {
    answer = Drain(f.rel->store()->ScanValidDuring(f.stab));
    benchmark::DoNotOptimize(answer);
  }
  state.counters["answer_rows"] = static_cast<double>(answer);
}

void BM_ParallelRollbackCube(benchmark::State& state) {
  ScanFixture& f = SharedHistory();
  ParallelGuard guard(f.rel->store(), state.range(0));
  size_t answer = 0;
  for (auto _ : state) {
    answer = Drain(f.rel->store()->ScanAsOf(f.asof));
    benchmark::DoNotOptimize(answer);
  }
  state.counters["answer_rows"] = static_cast<double>(answer);
}

// The temporal cube as a residual-filter full sweep (the no-pushdown
// plan): both time predicates evaluated per version over the entire
// >100k-row domain, i.e. the shape where the filter work itself — not the
// index — dominates, and the morsel workers carry all of it.
void BM_ParallelTemporalCube(benchmark::State& state) {
  ScanFixture& f = SharedHistory();
  ParallelGuard guard(f.rel->store(), state.range(0));
  Period window = f.stab;
  Chronon asof = f.asof;
  size_t answer = 0;
  for (auto _ : state) {
    answer = Drain(f.rel->store()->ScanAll(
        [window, asof](const BitemporalTuple& t) {
          return t.txn.Contains(asof) && t.valid.Overlaps(window);
        }));
    benchmark::DoNotOptimize(answer);
  }
  state.counters["answer_rows"] = static_cast<double>(answer);
}

// TQuel when-join: the outer full scan parallelizes; the per-outer-tuple
// index probes stay sequential below the morsel threshold by design.
void BM_ParallelWhenJoin(benchmark::State& state) {
  static bench::ScenarioDb* sdb = [] {
    auto* s = new bench::ScenarioDb(bench::OpenScenarioDb());
    Random rng(5);
    for (const char* name : {"a", "b"}) {
      Schema schema = *Schema::Make({Attribute{"key", Type::String()},
                                     Attribute{"payload", Type::String()}});
      (void)s->db->CreateRelation(name, schema, TemporalClass::kHistorical);
      Result<StoredRelation*> rel = s->db->GetRelation(name);
      for (size_t i = 0; i < 6000; ++i) {
        int64_t day = 3650 + static_cast<int64_t>(rng.Uniform(2000));
        s->clock->SetTime(Chronon(3650 + static_cast<int64_t>(i)));
        Period valid(Chronon(day),
                     Chronon(day + 1 + static_cast<int64_t>(rng.Uniform(120))));
        (void)s->db->WithTransaction([&](Transaction* txn) {
          return (*rel)->Append(
              txn, {Value("k" + std::to_string(rng.Uniform(1500))), Value("p")},
              valid);
        });
      }
    }
    (void)s->db->Execute("range of x is a");
    (void)s->db->Execute("range of y is b");
    return s;
  }();
  Result<StoredRelation*> outer = sdb->db->GetRelation("a");
  Result<StoredRelation*> inner = sdb->db->GetRelation("b");
  ParallelGuard outer_guard((*outer)->store(), state.range(0));
  ParallelGuard inner_guard((*inner)->store(), state.range(0));
  size_t answer = 0;
  for (auto _ : state) {
    Result<Rowset> rows = sdb->db->Query(
        "retrieve (x.key) where x.key = y.key when x overlap y");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      break;
    }
    answer = rows->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["answer_rows"] = static_cast<double>(answer);
}

// --- Filter dispatch: std::function vs the small-buffer VersionFilter ----
//
// The scan loop invokes its residual predicate once per version; before
// this change the predicate was a std::function (heap-allocated capture,
// out-of-line call), now it is the 48-byte-inline VersionFilter.  The two
// series below measure exactly that dispatch delta over the shared 100k
// history.

void BM_FilterDispatch_StdFunction(benchmark::State& state) {
  ScanFixture& f = SharedHistory();
  Period w = f.window;
  std::function<bool(const BitemporalTuple&)> pred =
      [w](const BitemporalTuple& t) { return t.valid.Overlaps(w); };
  for (auto _ : state) {
    size_t hits = 0;
    f.rel->store()->ForEach(
        [&](RowId, const BitemporalTuple& t) { hits += pred(t) ? 1 : 0; });
    benchmark::DoNotOptimize(hits);
  }
}

void BM_FilterDispatch_InlineFunction(benchmark::State& state) {
  ScanFixture& f = SharedHistory();
  Period w = f.window;
  VersionFilter pred =
      [w](const BitemporalTuple& t) { return t.valid.Overlaps(w); };
  for (auto _ : state) {
    size_t hits = 0;
    f.rel->store()->ForEach(
        [&](RowId, const BitemporalTuple& t) { hits += pred(t) ? 1 : 0; });
    benchmark::DoNotOptimize(hits);
  }
}

// --- Group commit vs one fsync per commit --------------------------------

std::string GroupCommitWalPath() {
  return "/tmp/tdb_bench_gc_" + std::to_string(::getpid()) + ".log";
}

// `range(0)` committer threads, each committing small 3-record batches
// through the CommitQueue; throughput in commits, with the observed
// coalescing factor (commits per fsync barrier) as a counter.
void BM_GroupCommit(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  constexpr size_t kCommitsPerThread = 50;
  std::string path = GroupCommitWalPath();
  uint64_t barriers = 0;
  size_t commits = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::remove(path.c_str());
    auto wal = WriteAheadLog::Open(path);
    if (!wal.ok()) {
      state.SkipWithError(wal.status().ToString().c_str());
      break;
    }
    CommitQueue queue(wal->get());
    state.ResumeTiming();
    std::vector<std::thread> committers;
    for (size_t t = 0; t < threads; ++t) {
      committers.emplace_back([&queue, t] {
        std::vector<WalBatchEntry> batch(3);
        for (size_t r = 0; r < 3; ++r) {
          batch[r].type = static_cast<uint32_t>(r + 1);
          batch[r].payload = "payload-" + std::to_string(t);
        }
        for (size_t c = 0; c < kCommitsPerThread; ++c) {
          (void)queue.Commit(batch, /*sync=*/true);
        }
      });
    }
    for (std::thread& th : committers) th.join();
    barriers += queue.barriers();
    commits += threads * kCommitsPerThread;
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<int64_t>(commits));
  state.counters["commits_per_fsync"] =
      barriers > 0 ? static_cast<double>(commits) / static_cast<double>(barriers)
                   : 0.0;
}

// Baseline: the pre-group-commit discipline — every commit pays its own
// append + fsync, serially (the engine was single-committer).
void BM_PerCommitFsync(benchmark::State& state) {
  constexpr size_t kCommits = 50;
  std::string path = GroupCommitWalPath();
  size_t commits = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::remove(path.c_str());
    auto wal = WriteAheadLog::Open(path);
    if (!wal.ok()) {
      state.SkipWithError(wal.status().ToString().c_str());
      break;
    }
    state.ResumeTiming();
    for (size_t c = 0; c < kCommits; ++c) {
      for (uint32_t r = 1; r <= 3; ++r) {
        benchmark::DoNotOptimize((*wal)->Append(r, "payload"));
      }
      if (!(*wal)->Sync().ok()) {
        state.SkipWithError("sync failed");
        break;
      }
    }
    commits += kCommits;
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<int64_t>(commits));
  state.counters["commits_per_fsync"] = 1.0;
}

}  // namespace

BENCHMARK(BM_ParallelTimeslice)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelTimesliceStab)->Arg(0)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelRollbackCube)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelTemporalCube)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelWhenJoin)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FilterDispatch_StdFunction)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FilterDispatch_InlineFunction)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroupCommit)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_PerCommitFsync)->Unit(benchmark::kMillisecond);

TDB_BENCH_MAIN("parallel_scan")
