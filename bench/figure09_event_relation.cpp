// Reproduces Figure 9: the temporal *event* relation 'promotion', carrying
// all three kinds of time at once:
//   - 'effective'       user-defined time (the date on the letter; opaque),
//   - valid time (at)   when the promotion was validated (letter signed),
//   - transaction time  when the event was recorded in the database.

#include <cstdio>

#include "bench/bench_common.h"
#include "tquel/printer.h"

using namespace temporadb;

int main() {
  bench::FigureRun bench_run("figure09_event_relation");
  bench::PrintFigureHeader("Figure 9", "A Temporal Event Relation", "");
  bench::ScenarioDb sdb = bench::OpenScenarioDb();
  if (!paper::BuildPromotionEvents(sdb.db.get(), sdb.clock.get()).ok()) {
    return 1;
  }
  Result<tquel::ExecResult> shown = sdb.db->Execute("show promotion");
  if (!shown.ok()) return 1;
  std::printf("%s\n", shown->rows.Render("promotion").c_str());

  std::printf(
      "Merrie's retroactive promotion to full was signed (valid at) "
      "12/11/82, four days before it was recorded (transaction) 12/15/82; "
      "the letter is dated (user-defined 'effective') 12/01/82.\n\n");

  // A query over user-defined time: the DBMS compares 'effective' as plain
  // data, exactly as the paper prescribes for application time.
  const char* query =
      "range of p is promotion\n"
      "retrieve (p.name, p.rank, p.effective) "
      "where p.effective < \"01/01/83\"";
  std::printf("TQuel> %s\n\n", query);
  Result<tquel::ExecResult> result = sdb.db->Execute(query);
  if (!result.ok()) return 1;
  std::printf("%s\n", tquel::FormatResult(*result).c_str());
  return 0;
}
