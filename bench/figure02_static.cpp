// Reproduces Figure 2: a static relation and the paper's Quel query
//
//   range of f is faculty
//   retrieve (f.rank) where f.name = "Merrie"     =>  full

#include <cstdio>

#include "bench/bench_common.h"
#include "tquel/printer.h"

using namespace temporadb;

int main() {
  bench::FigureRun bench_run("figure02_static");
  bench::PrintFigureHeader("Figure 2", "A Static Relation", "");
  bench::ScenarioDb sdb = bench::OpenScenarioDb();
  if (!paper::BuildStaticFaculty(sdb.db.get()).ok()) return 1;

  Result<tquel::ExecResult> shown = sdb.db->Execute("show faculty");
  if (!shown.ok()) return 1;
  std::printf("%s\n", shown->rows.Render("faculty").c_str());

  const char* query =
      "range of f is faculty\n"
      "retrieve (f.rank) where f.name = \"Merrie\"";
  std::printf("TQuel> %s\n\n", query);
  Result<tquel::ExecResult> result = sdb.db->Execute(query);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", tquel::FormatResult(*result).c_str());
  return 0;
}
