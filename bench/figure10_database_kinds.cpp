// Reproduces Figure 10 (the 2x2 taxonomy of database kinds), computed from
// the same capability predicates the engine enforces, then *demonstrates*
// each quadrant by probing a live relation of each kind with the defining
// operations.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/taxonomy.h"

using namespace temporadb;

int main() {
  bench::FigureRun bench_run("figure10_database_kinds");
  std::printf("%s\n", RenderFigure10().c_str());

  // Executable proof: per kind, which constructs does the engine accept?
  std::printf("Capability probe against live relations:\n\n");
  std::printf("| kind            | as of (rollback) | when (historical) |\n");
  std::printf("|-----------------|------------------|-------------------|\n");
  for (TemporalClass cls :
       {TemporalClass::kStatic, TemporalClass::kRollback,
        TemporalClass::kHistorical, TemporalClass::kTemporal}) {
    bench::ScenarioDb sdb = bench::OpenScenarioDb();
    sdb.clock->SetDate("01/01/80").ok();
    std::string create = "create " + std::string(TemporalClassName(cls)) +
                         " relation r (name = string)";
    if (!sdb.db->Execute(create).ok()) return 1;
    if (!sdb.db->Execute("append to r (name = \"x\")").ok()) return 1;
    if (!sdb.db->Execute("range of v is r").ok()) return 1;
    bool asof_ok =
        sdb.db->Query("retrieve (v.name) as of \"02/01/80\"").ok();
    bool when_ok =
        sdb.db->Query("retrieve (v.name) when v overlap \"02/01/80\"").ok();
    std::printf("| %-15s | %-16s | %-17s |\n",
                std::string(TemporalClassName(cls)).c_str(),
                asof_ok ? "accepted" : "NotSupported",
                when_ok ? "accepted" : "NotSupported");
  }
  std::printf("\n");
  return 0;
}
