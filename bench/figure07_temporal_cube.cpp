// Reproduces Figure 7: a temporal relation as a sequence of *historical
// states* indexed by transaction time.  The fourth transaction deletes a
// tuple that "should not have been there in the first place" — and unlike
// Figure 5, every earlier historical state still shows it.

#include <cstdio>

#include "bench/bench_common.h"
#include "temporal/snapshot.h"

using namespace temporadb;

int main() {
  bench::FigureRun bench_run("figure07_temporal_cube");
  bench::PrintFigureHeader(
      "Figure 7", "A Temporal Relation",
      "Four transactions; the last removes an erroneous tuple from the "
      "current historical state, append-only.");
  bench::ScenarioDb sdb = bench::OpenScenarioDb();
  if (!paper::BuildCubeScenario(sdb.db.get(), sdb.clock.get(),
                                TemporalClass::kTemporal)
           .ok()) {
    return 1;
  }
  Result<StoredRelation*> rel = sdb.db->GetRelation("r");
  if (!rel.ok()) return 1;

  std::vector<HistoricalState> states = TemporalStates(*(*rel)->store());
  int txn = 0;
  for (const HistoricalState& state : states) {
    ++txn;
    std::printf("historical state as of %s (transaction %d):\n",
                state.at.ToString().c_str(), txn);
    for (const BitemporalTuple& t : state.rows) {
      std::printf("  | %-4s | %-3s | valid %s\n",
                  t.values[0].ToString().c_str(),
                  t.values[1].ToString().c_str(), t.valid.ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "Rollback to transaction 3 still shows the erroneous tuple \"c\"; "
      "the deletion is recorded, not executed destructively. \"Temporal "
      "relations are append-only.\"\n");
  return 0;
}
