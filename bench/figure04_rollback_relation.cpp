// Reproduces Figure 4: the tuple-stamped representation of a static
// rollback relation, and the paper's TQuel query
//
//   retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"
//     =>  associate  (a pure static relation)

#include <cstdio>

#include "bench/bench_common.h"
#include "tquel/printer.h"

using namespace temporadb;

int main() {
  bench::FigureRun bench_run("figure04_rollback_relation");
  bench::PrintFigureHeader("Figure 4", "A Static Rollback Relation", "");
  bench::ScenarioDb sdb = bench::OpenScenarioDb();
  if (!paper::BuildRollbackFaculty(sdb.db.get(), sdb.clock.get()).ok()) {
    return 1;
  }
  Result<tquel::ExecResult> shown = sdb.db->Execute("show faculty");
  if (!shown.ok()) return 1;
  std::printf("%s\n", shown->rows.Render("faculty").c_str());

  const char* query =
      "retrieve (f.rank) where f.name = \"Merrie\" as of \"12/10/82\"";
  std::printf("TQuel> %s\n\n", query);
  Result<tquel::ExecResult> result = sdb.db->Execute(query);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", tquel::FormatResult(*result).c_str());
  std::printf(
      "Note: the promotion took effect 12/01/82 but was recorded 12/15/82; "
      "the rollback database faithfully reports its own (stale) state.\n");
  return 0;
}
