// Trend analysis — the paper's motivating question "How did the number of
// faculty change over the last 5 years?" (§4.1), which a static database
// cannot answer.
//
// Strategy: slice the historical relation at a sequence of valid chronons
// (programmatic timeslice), then aggregate each slice with the relational
// algebra layer.

#include <cstdio>

#include "core/database.h"
#include "rel/aggregate.h"
#include "rel/temporal_ops.h"

using namespace temporadb;

int main() {
  ManualClock clock;
  DatabaseOptions options;
  options.clock = &clock;
  auto db = std::move(*Database::Open(options));

  std::printf("== trend analysis over valid time ==\n\n");

  clock.SetDate("01/01/85").ok();
  (void)db->Execute(
      "create historical relation faculty (name = string, rank = string)");
  (void)db->Execute("range of f is faculty");

  // Department history, recorded with hindsight (all valid-time).
  struct Hire {
    const char* name;
    const char* rank;
    const char* from;
    const char* to;  // nullptr = still here.
  };
  const Hire hires[] = {
      {"merrie", "associate", "09/01/77", nullptr},
      {"tom", "associate", "12/05/82", nullptr},
      {"mike", "assistant", "01/01/83", "03/01/84"},
      {"ann", "full", "07/01/80", nullptr},
      {"bob", "assistant", "09/01/81", "06/01/83"},
      {"cam", "associate", "09/01/84", nullptr},
  };
  for (const Hire& h : hires) {
    std::string stmt = std::string("append to faculty (name = \"") + h.name +
                       "\", rank = \"" + h.rank + "\") valid from \"" +
                       h.from + "\" to \"" + (h.to ? h.to : "inf") + "\"";
    if (!db->Execute(stmt).ok()) return 1;
  }

  Result<StoredRelation*> rel = db->GetRelation("faculty");
  if (!rel.ok()) return 1;
  Result<Rowset> history = ScanStored(**rel);
  if (!history.ok()) return 1;

  std::printf("| as of    | faculty count | by rank                      |\n");
  std::printf("|----------|---------------|------------------------------|\n");
  for (int year = 1980; year <= 1985; ++year) {
    Date probe = *Date::FromYmd(year, 1, 1);
    Result<Rowset> slice = Timeslice(*history, probe.chronon());
    if (!slice.ok()) return 1;
    // Count per rank via the aggregate operator.
    Result<Rowset> by_rank =
        Aggregate(*slice, {1}, {{AggFunc::kCount, 0, "n"}});
    if (!by_rank.ok()) return 1;
    std::string breakdown;
    for (const Row& row : by_rank->rows()) {
      breakdown += row.values[0].AsString() + ":" +
                   row.values[1].ToString() + " ";
    }
    std::printf("| %s | %13zu | %-28s |\n", probe.ToString().c_str(),
                slice->size(), breakdown.c_str());
  }
  std::printf(
      "\nEach row is a valid timeslice of one historical relation — the "
      "query a snapshot database has already forgotten the data for.\n");
  return 0;
}
