// Engineering release tracking — the paper's "release dates of engineering
// versions" and "scheduled events that were supposed to occur, yet did not"
// examples (§2.1), on a temporal event relation with user-defined time.
//
// The 'releases' relation records release *events*:
//   - 'tag'        the version string (plain data),
//   - 'planned'    user-defined time: the date printed on the roadmap,
//   - valid at     when the release actually happened in reality,
//   - transaction  when engineering recorded it.

#include <cstdio>

#include "core/database.h"
#include "tquel/printer.h"

using namespace temporadb;

int main() {
  ManualClock clock;
  DatabaseOptions options;
  options.clock = &clock;
  auto db = std::move(*Database::Open(options));

  std::printf("== engineering release tracking ==\n\n");

  clock.SetDate("01/10/84").ok();
  (void)db->Execute(
      "create temporal event relation releases "
      "(tag = string, planned = date)");
  (void)db->Execute("range of r is releases");

  // v1.0 shipped on schedule.
  (void)db->Execute(
      "append to releases (tag = \"v1.0\", planned = \"01/10/84\") "
      "valid at \"01/10/84\"");

  // v1.1 is *scheduled* (postactive: recorded before it happens).
  clock.SetDate("02/01/84").ok();
  (void)db->Execute(
      "append to releases (tag = \"v1.1\", planned = \"03/01/84\") "
      "valid at \"03/01/84\"");

  // The schedule slips: v1.1 actually ships 04/15/84.  The event's valid
  // time is corrected; the roadmap date ('planned') stays as printed —
  // and the slip itself stays visible through transaction time.
  clock.SetDate("04/15/84").ok();
  (void)db->Execute("delete r valid at \"03/01/84\" where r.tag = \"v1.1\"");
  (void)db->Execute(
      "append to releases (tag = \"v1.1\", planned = \"03/01/84\") "
      "valid at \"04/15/84\"");

  Result<tquel::ExecResult> shown = db->Execute("show releases");
  if (!shown.ok()) return 1;
  std::printf("%s\n", shown->rows.Render("releases").c_str());

  // Question 1 (current knowledge): when did v1.1 really ship?
  Result<Rowset> actual = db->Query(
      "retrieve (r.tag, r.planned) where r.tag = \"v1.1\"");
  if (actual.ok() && !actual->empty()) {
    std::printf("v1.1: planned %s, actually shipped %s\n",
                actual->rows()[0].values[1].ToString().c_str(),
                actual->rows()[0].valid->begin().ToString().c_str());
  }

  // Question 2 (the audit): what did the tracker claim on 03/15/84 —
  // after the planned date, before the correction?
  Result<Rowset> believed = db->Query(
      "retrieve (r.tag) where r.tag = \"v1.1\" as of \"03/15/84\"");
  if (believed.ok()) {
    std::printf(
        "As of 03/15/84 the tracker still recorded v1.1 as released "
        "03/01/84 (%zu event version(s)) — \"a scheduled event that was "
        "supposed to occur, yet did not.\"\n",
        believed->size());
  }
  return 0;
}
