// tdb_shell — an interactive TQuel REPL over a temporadb database.
//
//   ./build/examples/tdb_shell [data-directory]
//
// With a data directory, the database is durable (WAL + checkpoints: try
// `\checkpoint`, kill the shell, and restart).  Without one it is
// in-memory.  Meta-commands:
//
//   \help                 this text
//   \relations            list relations and their temporal classes
//   \checkpoint           write a checkpoint and truncate the WAL
//   \date MM/DD/YY        set the (manual) transaction clock
//   \quit                 exit
//
// Everything else is TQuel, e.g.:
//
//   create temporal relation faculty (name = string, rank = string)
//   range of f is faculty
//   append to faculty (name = "Merrie", rank = "associate") valid from
//       "09/01/77" to "inf"
//   retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"
//   show faculty

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "core/bulk.h"
#include "core/database.h"
#include "tquel/printer.h"

using namespace temporadb;

int main(int argc, char** argv) {
  ManualClock clock;
  clock.SetTime(SystemClock().Now());
  DatabaseOptions options;
  options.clock = &clock;
  if (argc > 1) options.path = argv[1];
  Result<std::unique_ptr<Database>> opened = Database::Open(options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Database> db = std::move(*opened);

  std::printf("temporadb shell — TQuel on a bitemporal store "
              "(Snodgrass-Ahn taxonomy).  \\help for help.\n");
  if (argc > 1) std::printf("data directory: %s\n", argv[1]);

  std::string line;
  while (true) {
    std::printf("tdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '\\') {
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      if (trimmed == "\\help") {
        std::printf(
            "\\relations  \\checkpoint  \\date MM/DD/YY  \\import <rel> "
            "<csv>  \\export <rel> <csv>  \\quit — or any TQuel statement "
            "(create/range/retrieve/append/delete/replace/correct/show/"
            "destroy/begin transaction/commit/abort).\n");
        continue;
      }
      if (trimmed == "\\relations") {
        for (const RelationInfo& info : db->ListRelations()) {
          std::printf("  %-20s %-10s %-8s %s\n", info.name.c_str(),
                      std::string(TemporalClassName(info.temporal_class))
                          .c_str(),
                      std::string(TemporalDataModelName(info.data_model))
                          .c_str(),
                      info.schema.ToString().c_str());
        }
        continue;
      }
      if (trimmed == "\\checkpoint") {
        Status s = db->Checkpoint();
        std::printf("%s\n", s.ok() ? "checkpointed" : s.ToString().c_str());
        continue;
      }
      if (trimmed.rfind("\\import", 0) == 0) {
        // \import <relation> <csv-path>
        std::vector<std::string> parts =
            Split(std::string(Trim(trimmed.substr(7))), ' ');
        if (parts.size() != 2) {
          std::printf("usage: \\import <relation> <csv-path>\n");
          continue;
        }
        std::ifstream file(parts[1]);
        if (!file) {
          std::printf("cannot open %s\n", parts[1].c_str());
          continue;
        }
        Result<size_t> n = bulk::ImportCsv(db.get(), parts[0], file);
        if (n.ok()) {
          std::printf("imported %zu tuple(s) into %s\n", *n,
                      parts[0].c_str());
        } else {
          std::printf("%s\n", n.status().ToString().c_str());
        }
        continue;
      }
      if (trimmed.rfind("\\export", 0) == 0) {
        // \export <relation> <csv-path>
        std::vector<std::string> parts =
            Split(std::string(Trim(trimmed.substr(7))), ' ');
        if (parts.size() != 2) {
          std::printf("usage: \\export <relation> <csv-path>\n");
          continue;
        }
        Result<tquel::ExecResult> shown = db->Execute("show " + parts[0]);
        if (!shown.ok()) {
          std::printf("%s\n", shown.status().ToString().c_str());
          continue;
        }
        std::ofstream file(parts[1]);
        Status s = bulk::ExportCsv(shown->rows, file);
        std::printf("%s\n", s.ok() ? ("wrote " + parts[1]).c_str()
                                   : s.ToString().c_str());
        continue;
      }
      if (trimmed.rfind("\\date", 0) == 0) {
        Status s = clock.SetDate(Trim(trimmed.substr(5)));
        std::printf("%s\n", s.ok()
                                ? ("clock = " + clock.Now().ToString()).c_str()
                                : s.ToString().c_str());
        continue;
      }
      std::printf("unknown meta-command; \\help\n");
      continue;
    }
    Result<tquel::ExecResult> result = db->Execute(trimmed);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s", tquel::FormatResult(*result).c_str());
  }
  return 0;
}
