// Payroll with retroactive raises and audit — the paper's §3 example made
// executable.
//
// "In many commercial settings, salary updates are batched together and
// executed against the database only once or twice a month" while raises
// take effect at other dates.  A bitemporal payroll relation supports:
//  - paying correctly after retroactive raises (valid-time queries),
//  - auditing what the payroll system believed when each check was cut
//    (transaction-time rollback), and therefore
//  - computing back pay owed, from the gap between the two.

#include <cstdio>

#include "core/database.h"
#include "rel/temporal_ops.h"

using namespace temporadb;

namespace {

Status Must(Result<tquel::ExecResult> r) {
  return r.ok() ? Status::OK() : r.status();
}

// Salary of `name` valid at `v`, as of transaction time `t` (or current).
int64_t SalaryAt(Database* db, const char* name, const char* v,
                 const char* as_of) {
  std::string q = std::string("retrieve (s.salary) where s.name = \"") +
                  name + "\" when s overlap \"" + v + "\"";
  if (as_of != nullptr) q += std::string(" as of \"") + as_of + "\"";
  Result<Rowset> rows = db->Query(q);
  if (!rows.ok() || rows->empty()) return -1;
  return rows->rows()[0].values[0].AsInt();
}

}  // namespace

int main() {
  ManualClock clock;
  DatabaseOptions options;
  options.clock = &clock;
  auto db = std::move(*Database::Open(options));

  std::printf("== payroll with retroactive raises ==\n\n");

  clock.SetDate("01/02/83").ok();
  if (!Must(db->Execute("create temporal relation salaries "
                        "(name = string, salary = int)"))
           .ok()) return 1;
  (void)db->Execute("range of s is salaries");
  (void)db->Execute(
      "append to salaries (name = \"Merrie\", salary = 40000) "
      "valid from \"01/01/83\" to \"inf\"");

  // 12/01/83: HR batches in a raise that took effect 08/01/83 — the
  // paper's exact retroactive-raise example.
  clock.SetDate("12/01/83").ok();
  (void)db->Execute(
      "replace s (salary = 44000) valid from \"08/01/83\" to \"inf\" "
      "where s.name = \"Merrie\"");

  std::printf("Checks were cut monthly using the salary the database "
              "showed on payday:\n\n");
  std::printf("| payday   | paid on (db as of payday) | truth (current "
              "knowledge) | back pay |\n");
  std::printf("|----------|---------------------------|----------------"
              "-----------|----------|\n");
  int64_t total_backpay = 0;
  const char* paydays[] = {"08/31/83", "09/30/83", "10/31/83", "11/30/83",
                           "12/31/83"};
  for (const char* payday : paydays) {
    int64_t believed = SalaryAt(db.get(), "Merrie", payday, payday);
    int64_t truth = SalaryAt(db.get(), "Merrie", payday, nullptr);
    int64_t monthly_gap = (truth - believed) / 12;
    total_backpay += monthly_gap;
    std::printf("| %s | %25lld | %25lld | %8lld |\n", payday,
                static_cast<long long>(believed),
                static_cast<long long>(truth),
                static_cast<long long>(monthly_gap));
  }
  std::printf("\nTotal back pay owed to Merrie: %lld\n\n",
              static_cast<long long>(total_backpay));

  std::printf(
      "The December run pays at the new rate AND can compute the exact "
      "shortfall for Aug-Nov, because the temporal relation kept both "
      "when the raise was true (valid time) and when the database learned "
      "of it (transaction time).\n");
  return 0;
}
