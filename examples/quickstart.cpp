// Quickstart: create a bitemporal relation, record facts (including a
// retroactive correction), and ask the three kinds of questions the
// Snodgrass-Ahn taxonomy distinguishes:
//
//   1. What is true now?                 (static query)
//   2. What was true at time v?          (historical query: valid time)
//   3. What did the database believe     (rollback query: transaction time)
//      at time t?
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/database.h"
#include "tquel/printer.h"

using namespace temporadb;

namespace {

void Run(Database* db, const char* tquel) {
  std::printf("TQuel> %s\n", tquel);
  Result<tquel::ExecResult> result = db->Execute(tquel);
  if (!result.ok()) {
    std::printf("  !! %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", tquel::FormatResult(*result).c_str());
}

}  // namespace

int main() {
  // A manual clock lets this example play out over (simulated) months; a
  // real application would omit `options.clock` and use the system
  // calendar.
  ManualClock clock;
  DatabaseOptions options;
  options.clock = &clock;
  auto db = std::move(*Database::Open(options));

  std::printf("== temporadb quickstart ==\n\n");

  // 1. DDL: a temporal (bitemporal) relation maintains both valid time
  //    ("when was this true in reality") and transaction time ("when did
  //    the database store it").
  clock.SetDate("01/05/84").ok();
  Run(db.get(),
      "create temporal relation employees (name = string, title = string)");
  Run(db.get(), "range of e is employees");

  // 2. Record: Ada joined as engineer (postactive: recorded before the
  //    start date).
  Run(db.get(),
      "append to employees (name = \"Ada\", title = \"engineer\") "
      "valid from \"02/01/84\" to \"inf\"");

  // 3. Months later: a retroactive correction — Ada had actually been a
  //    *senior* engineer since 03/01/84, but HR only records it 06/15/84.
  clock.SetDate("06/15/84").ok();
  Run(db.get(),
      "replace e (title = \"senior engineer\") "
      "valid from \"03/01/84\" to \"inf\" where e.name = \"Ada\"");

  // The stored relation now holds the full bitemporal history:
  Run(db.get(), "show employees");

  // Q1: what is true now?
  Run(db.get(), "retrieve (e.name, e.title) where e.name = \"Ada\"");

  // Q2: what was true on 04/01/84 (historical query)?
  Run(db.get(),
      "retrieve (e.title) where e.name = \"Ada\" "
      "when e overlap \"04/01/84\"");

  // Q3: what did the database BELIEVE on 05/01/84 about 04/01/84
  //     (bitemporal query)?  The correction wasn't recorded yet:
  Run(db.get(),
      "retrieve (e.title) where e.name = \"Ada\" "
      "when e overlap \"04/01/84\" as of \"05/01/84\"");

  std::printf(
      "Note the last two answers differ: reality said 'senior engineer', "
      "but the database only learned that on 06/15/84.  That gap is what "
      "bitemporal storage preserves.\n");
  return 0;
}
