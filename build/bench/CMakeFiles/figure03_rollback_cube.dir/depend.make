# Empty dependencies file for figure03_rollback_cube.
# This may be replaced when dependencies are built.
