file(REMOVE_RECURSE
  "CMakeFiles/figure03_rollback_cube.dir/figure03_rollback_cube.cpp.o"
  "CMakeFiles/figure03_rollback_cube.dir/figure03_rollback_cube.cpp.o.d"
  "figure03_rollback_cube"
  "figure03_rollback_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure03_rollback_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
