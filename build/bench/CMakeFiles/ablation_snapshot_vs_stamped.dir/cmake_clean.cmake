file(REMOVE_RECURSE
  "CMakeFiles/ablation_snapshot_vs_stamped.dir/ablation_snapshot_vs_stamped.cpp.o"
  "CMakeFiles/ablation_snapshot_vs_stamped.dir/ablation_snapshot_vs_stamped.cpp.o.d"
  "ablation_snapshot_vs_stamped"
  "ablation_snapshot_vs_stamped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_snapshot_vs_stamped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
