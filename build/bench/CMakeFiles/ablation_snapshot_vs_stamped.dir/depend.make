# Empty dependencies file for ablation_snapshot_vs_stamped.
# This may be replaced when dependencies are built.
