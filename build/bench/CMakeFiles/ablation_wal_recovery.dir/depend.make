# Empty dependencies file for ablation_wal_recovery.
# This may be replaced when dependencies are built.
