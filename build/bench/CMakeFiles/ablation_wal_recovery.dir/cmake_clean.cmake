file(REMOVE_RECURSE
  "CMakeFiles/ablation_wal_recovery.dir/ablation_wal_recovery.cpp.o"
  "CMakeFiles/ablation_wal_recovery.dir/ablation_wal_recovery.cpp.o.d"
  "ablation_wal_recovery"
  "ablation_wal_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wal_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
