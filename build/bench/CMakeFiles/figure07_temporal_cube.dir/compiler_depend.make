# Empty compiler generated dependencies file for figure07_temporal_cube.
# This may be replaced when dependencies are built.
