file(REMOVE_RECURSE
  "CMakeFiles/figure07_temporal_cube.dir/figure07_temporal_cube.cpp.o"
  "CMakeFiles/figure07_temporal_cube.dir/figure07_temporal_cube.cpp.o.d"
  "figure07_temporal_cube"
  "figure07_temporal_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure07_temporal_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
