# Empty dependencies file for figure04_rollback_relation.
# This may be replaced when dependencies are built.
