file(REMOVE_RECURSE
  "CMakeFiles/figure04_rollback_relation.dir/figure04_rollback_relation.cpp.o"
  "CMakeFiles/figure04_rollback_relation.dir/figure04_rollback_relation.cpp.o.d"
  "figure04_rollback_relation"
  "figure04_rollback_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure04_rollback_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
