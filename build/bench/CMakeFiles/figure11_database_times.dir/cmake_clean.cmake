file(REMOVE_RECURSE
  "CMakeFiles/figure11_database_times.dir/figure11_database_times.cpp.o"
  "CMakeFiles/figure11_database_times.dir/figure11_database_times.cpp.o.d"
  "figure11_database_times"
  "figure11_database_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure11_database_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
