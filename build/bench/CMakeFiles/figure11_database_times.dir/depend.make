# Empty dependencies file for figure11_database_times.
# This may be replaced when dependencies are built.
