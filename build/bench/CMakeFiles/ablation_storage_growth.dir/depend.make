# Empty dependencies file for ablation_storage_growth.
# This may be replaced when dependencies are built.
