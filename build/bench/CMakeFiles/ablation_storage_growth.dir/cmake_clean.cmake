file(REMOVE_RECURSE
  "CMakeFiles/ablation_storage_growth.dir/ablation_storage_growth.cpp.o"
  "CMakeFiles/ablation_storage_growth.dir/ablation_storage_growth.cpp.o.d"
  "ablation_storage_growth"
  "ablation_storage_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_storage_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
