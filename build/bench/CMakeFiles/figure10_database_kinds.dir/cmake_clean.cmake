file(REMOVE_RECURSE
  "CMakeFiles/figure10_database_kinds.dir/figure10_database_kinds.cpp.o"
  "CMakeFiles/figure10_database_kinds.dir/figure10_database_kinds.cpp.o.d"
  "figure10_database_kinds"
  "figure10_database_kinds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure10_database_kinds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
