# Empty compiler generated dependencies file for figure10_database_kinds.
# This may be replaced when dependencies are built.
