file(REMOVE_RECURSE
  "CMakeFiles/ablation_when_join.dir/ablation_when_join.cpp.o"
  "CMakeFiles/ablation_when_join.dir/ablation_when_join.cpp.o.d"
  "ablation_when_join"
  "ablation_when_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_when_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
