# Empty compiler generated dependencies file for ablation_when_join.
# This may be replaced when dependencies are built.
