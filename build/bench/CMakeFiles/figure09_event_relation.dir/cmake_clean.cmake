file(REMOVE_RECURSE
  "CMakeFiles/figure09_event_relation.dir/figure09_event_relation.cpp.o"
  "CMakeFiles/figure09_event_relation.dir/figure09_event_relation.cpp.o.d"
  "figure09_event_relation"
  "figure09_event_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure09_event_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
