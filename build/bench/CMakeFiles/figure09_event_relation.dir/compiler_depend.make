# Empty compiler generated dependencies file for figure09_event_relation.
# This may be replaced when dependencies are built.
