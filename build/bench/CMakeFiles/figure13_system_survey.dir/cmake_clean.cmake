file(REMOVE_RECURSE
  "CMakeFiles/figure13_system_survey.dir/figure13_system_survey.cpp.o"
  "CMakeFiles/figure13_system_survey.dir/figure13_system_survey.cpp.o.d"
  "figure13_system_survey"
  "figure13_system_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure13_system_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
