# Empty dependencies file for figure13_system_survey.
# This may be replaced when dependencies are built.
