# Empty dependencies file for figure01_literature.
# This may be replaced when dependencies are built.
