file(REMOVE_RECURSE
  "CMakeFiles/figure01_literature.dir/figure01_literature.cpp.o"
  "CMakeFiles/figure01_literature.dir/figure01_literature.cpp.o.d"
  "figure01_literature"
  "figure01_literature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure01_literature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
