file(REMOVE_RECURSE
  "CMakeFiles/figure12_time_attributes.dir/figure12_time_attributes.cpp.o"
  "CMakeFiles/figure12_time_attributes.dir/figure12_time_attributes.cpp.o.d"
  "figure12_time_attributes"
  "figure12_time_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure12_time_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
