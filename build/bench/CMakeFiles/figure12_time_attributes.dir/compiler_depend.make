# Empty compiler generated dependencies file for figure12_time_attributes.
# This may be replaced when dependencies are built.
