# Empty dependencies file for figure08_temporal_relation.
# This may be replaced when dependencies are built.
