file(REMOVE_RECURSE
  "CMakeFiles/figure08_temporal_relation.dir/figure08_temporal_relation.cpp.o"
  "CMakeFiles/figure08_temporal_relation.dir/figure08_temporal_relation.cpp.o.d"
  "figure08_temporal_relation"
  "figure08_temporal_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure08_temporal_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
