file(REMOVE_RECURSE
  "CMakeFiles/figure05_historical_cube.dir/figure05_historical_cube.cpp.o"
  "CMakeFiles/figure05_historical_cube.dir/figure05_historical_cube.cpp.o.d"
  "figure05_historical_cube"
  "figure05_historical_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure05_historical_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
