# Empty compiler generated dependencies file for figure05_historical_cube.
# This may be replaced when dependencies are built.
