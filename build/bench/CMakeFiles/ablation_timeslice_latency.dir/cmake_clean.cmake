file(REMOVE_RECURSE
  "CMakeFiles/ablation_timeslice_latency.dir/ablation_timeslice_latency.cpp.o"
  "CMakeFiles/ablation_timeslice_latency.dir/ablation_timeslice_latency.cpp.o.d"
  "ablation_timeslice_latency"
  "ablation_timeslice_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timeslice_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
