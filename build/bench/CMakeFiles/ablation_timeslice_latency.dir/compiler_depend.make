# Empty compiler generated dependencies file for ablation_timeslice_latency.
# This may be replaced when dependencies are built.
