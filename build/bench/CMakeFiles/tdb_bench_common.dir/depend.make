# Empty dependencies file for tdb_bench_common.
# This may be replaced when dependencies are built.
