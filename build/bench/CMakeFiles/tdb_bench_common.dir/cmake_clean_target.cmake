file(REMOVE_RECURSE
  "libtdb_bench_common.a"
)
