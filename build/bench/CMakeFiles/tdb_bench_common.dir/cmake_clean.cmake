file(REMOVE_RECURSE
  "CMakeFiles/tdb_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/tdb_bench_common.dir/bench_common.cpp.o.d"
  "libtdb_bench_common.a"
  "libtdb_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
