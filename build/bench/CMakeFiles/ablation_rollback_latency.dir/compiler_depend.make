# Empty compiler generated dependencies file for ablation_rollback_latency.
# This may be replaced when dependencies are built.
