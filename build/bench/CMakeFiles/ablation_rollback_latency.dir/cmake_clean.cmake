file(REMOVE_RECURSE
  "CMakeFiles/ablation_rollback_latency.dir/ablation_rollback_latency.cpp.o"
  "CMakeFiles/ablation_rollback_latency.dir/ablation_rollback_latency.cpp.o.d"
  "ablation_rollback_latency"
  "ablation_rollback_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rollback_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
