# Empty dependencies file for ablation_attr_index.
# This may be replaced when dependencies are built.
