file(REMOVE_RECURSE
  "CMakeFiles/ablation_attr_index.dir/ablation_attr_index.cpp.o"
  "CMakeFiles/ablation_attr_index.dir/ablation_attr_index.cpp.o.d"
  "ablation_attr_index"
  "ablation_attr_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attr_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
