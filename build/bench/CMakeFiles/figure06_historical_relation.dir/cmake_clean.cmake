file(REMOVE_RECURSE
  "CMakeFiles/figure06_historical_relation.dir/figure06_historical_relation.cpp.o"
  "CMakeFiles/figure06_historical_relation.dir/figure06_historical_relation.cpp.o.d"
  "figure06_historical_relation"
  "figure06_historical_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure06_historical_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
