# Empty dependencies file for figure06_historical_relation.
# This may be replaced when dependencies are built.
