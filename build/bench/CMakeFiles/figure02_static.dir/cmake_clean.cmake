file(REMOVE_RECURSE
  "CMakeFiles/figure02_static.dir/figure02_static.cpp.o"
  "CMakeFiles/figure02_static.dir/figure02_static.cpp.o.d"
  "figure02_static"
  "figure02_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure02_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
