# Empty dependencies file for figure02_static.
# This may be replaced when dependencies are built.
