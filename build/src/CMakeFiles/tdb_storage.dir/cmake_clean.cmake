file(REMOVE_RECURSE
  "CMakeFiles/tdb_storage.dir/storage/buffer_pool.cpp.o"
  "CMakeFiles/tdb_storage.dir/storage/buffer_pool.cpp.o.d"
  "CMakeFiles/tdb_storage.dir/storage/heap_file.cpp.o"
  "CMakeFiles/tdb_storage.dir/storage/heap_file.cpp.o.d"
  "CMakeFiles/tdb_storage.dir/storage/page.cpp.o"
  "CMakeFiles/tdb_storage.dir/storage/page.cpp.o.d"
  "CMakeFiles/tdb_storage.dir/storage/pager.cpp.o"
  "CMakeFiles/tdb_storage.dir/storage/pager.cpp.o.d"
  "CMakeFiles/tdb_storage.dir/storage/tuple.cpp.o"
  "CMakeFiles/tdb_storage.dir/storage/tuple.cpp.o.d"
  "CMakeFiles/tdb_storage.dir/storage/wal.cpp.o"
  "CMakeFiles/tdb_storage.dir/storage/wal.cpp.o.d"
  "libtdb_storage.a"
  "libtdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
