# Empty compiler generated dependencies file for tdb_storage.
# This may be replaced when dependencies are built.
