
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_pool.cpp" "src/CMakeFiles/tdb_storage.dir/storage/buffer_pool.cpp.o" "gcc" "src/CMakeFiles/tdb_storage.dir/storage/buffer_pool.cpp.o.d"
  "/root/repo/src/storage/heap_file.cpp" "src/CMakeFiles/tdb_storage.dir/storage/heap_file.cpp.o" "gcc" "src/CMakeFiles/tdb_storage.dir/storage/heap_file.cpp.o.d"
  "/root/repo/src/storage/page.cpp" "src/CMakeFiles/tdb_storage.dir/storage/page.cpp.o" "gcc" "src/CMakeFiles/tdb_storage.dir/storage/page.cpp.o.d"
  "/root/repo/src/storage/pager.cpp" "src/CMakeFiles/tdb_storage.dir/storage/pager.cpp.o" "gcc" "src/CMakeFiles/tdb_storage.dir/storage/pager.cpp.o.d"
  "/root/repo/src/storage/tuple.cpp" "src/CMakeFiles/tdb_storage.dir/storage/tuple.cpp.o" "gcc" "src/CMakeFiles/tdb_storage.dir/storage/tuple.cpp.o.d"
  "/root/repo/src/storage/wal.cpp" "src/CMakeFiles/tdb_storage.dir/storage/wal.cpp.o" "gcc" "src/CMakeFiles/tdb_storage.dir/storage/wal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
