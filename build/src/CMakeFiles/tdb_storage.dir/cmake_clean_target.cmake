file(REMOVE_RECURSE
  "libtdb_storage.a"
)
