# Empty compiler generated dependencies file for tdb_tquel.
# This may be replaced when dependencies are built.
