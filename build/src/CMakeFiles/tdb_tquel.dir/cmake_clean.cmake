file(REMOVE_RECURSE
  "CMakeFiles/tdb_tquel.dir/tquel/analyzer.cpp.o"
  "CMakeFiles/tdb_tquel.dir/tquel/analyzer.cpp.o.d"
  "CMakeFiles/tdb_tquel.dir/tquel/ast.cpp.o"
  "CMakeFiles/tdb_tquel.dir/tquel/ast.cpp.o.d"
  "CMakeFiles/tdb_tquel.dir/tquel/evaluator.cpp.o"
  "CMakeFiles/tdb_tquel.dir/tquel/evaluator.cpp.o.d"
  "CMakeFiles/tdb_tquel.dir/tquel/lexer.cpp.o"
  "CMakeFiles/tdb_tquel.dir/tquel/lexer.cpp.o.d"
  "CMakeFiles/tdb_tquel.dir/tquel/parser.cpp.o"
  "CMakeFiles/tdb_tquel.dir/tquel/parser.cpp.o.d"
  "CMakeFiles/tdb_tquel.dir/tquel/printer.cpp.o"
  "CMakeFiles/tdb_tquel.dir/tquel/printer.cpp.o.d"
  "CMakeFiles/tdb_tquel.dir/tquel/token.cpp.o"
  "CMakeFiles/tdb_tquel.dir/tquel/token.cpp.o.d"
  "libtdb_tquel.a"
  "libtdb_tquel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_tquel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
