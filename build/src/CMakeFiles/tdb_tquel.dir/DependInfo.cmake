
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tquel/analyzer.cpp" "src/CMakeFiles/tdb_tquel.dir/tquel/analyzer.cpp.o" "gcc" "src/CMakeFiles/tdb_tquel.dir/tquel/analyzer.cpp.o.d"
  "/root/repo/src/tquel/ast.cpp" "src/CMakeFiles/tdb_tquel.dir/tquel/ast.cpp.o" "gcc" "src/CMakeFiles/tdb_tquel.dir/tquel/ast.cpp.o.d"
  "/root/repo/src/tquel/evaluator.cpp" "src/CMakeFiles/tdb_tquel.dir/tquel/evaluator.cpp.o" "gcc" "src/CMakeFiles/tdb_tquel.dir/tquel/evaluator.cpp.o.d"
  "/root/repo/src/tquel/lexer.cpp" "src/CMakeFiles/tdb_tquel.dir/tquel/lexer.cpp.o" "gcc" "src/CMakeFiles/tdb_tquel.dir/tquel/lexer.cpp.o.d"
  "/root/repo/src/tquel/parser.cpp" "src/CMakeFiles/tdb_tquel.dir/tquel/parser.cpp.o" "gcc" "src/CMakeFiles/tdb_tquel.dir/tquel/parser.cpp.o.d"
  "/root/repo/src/tquel/printer.cpp" "src/CMakeFiles/tdb_tquel.dir/tquel/printer.cpp.o" "gcc" "src/CMakeFiles/tdb_tquel.dir/tquel/printer.cpp.o.d"
  "/root/repo/src/tquel/token.cpp" "src/CMakeFiles/tdb_tquel.dir/tquel/token.cpp.o" "gcc" "src/CMakeFiles/tdb_tquel.dir/tquel/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdb_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
