file(REMOVE_RECURSE
  "libtdb_tquel.a"
)
