file(REMOVE_RECURSE
  "libtdb_common.a"
)
