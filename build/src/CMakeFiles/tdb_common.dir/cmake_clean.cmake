file(REMOVE_RECURSE
  "CMakeFiles/tdb_common.dir/common/chronon.cpp.o"
  "CMakeFiles/tdb_common.dir/common/chronon.cpp.o.d"
  "CMakeFiles/tdb_common.dir/common/date.cpp.o"
  "CMakeFiles/tdb_common.dir/common/date.cpp.o.d"
  "CMakeFiles/tdb_common.dir/common/period.cpp.o"
  "CMakeFiles/tdb_common.dir/common/period.cpp.o.d"
  "CMakeFiles/tdb_common.dir/common/random.cpp.o"
  "CMakeFiles/tdb_common.dir/common/random.cpp.o.d"
  "CMakeFiles/tdb_common.dir/common/slice.cpp.o"
  "CMakeFiles/tdb_common.dir/common/slice.cpp.o.d"
  "CMakeFiles/tdb_common.dir/common/status.cpp.o"
  "CMakeFiles/tdb_common.dir/common/status.cpp.o.d"
  "CMakeFiles/tdb_common.dir/common/strings.cpp.o"
  "CMakeFiles/tdb_common.dir/common/strings.cpp.o.d"
  "CMakeFiles/tdb_common.dir/common/table_printer.cpp.o"
  "CMakeFiles/tdb_common.dir/common/table_printer.cpp.o.d"
  "CMakeFiles/tdb_common.dir/common/value.cpp.o"
  "CMakeFiles/tdb_common.dir/common/value.cpp.o.d"
  "libtdb_common.a"
  "libtdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
