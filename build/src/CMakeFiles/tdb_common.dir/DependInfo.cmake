
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/chronon.cpp" "src/CMakeFiles/tdb_common.dir/common/chronon.cpp.o" "gcc" "src/CMakeFiles/tdb_common.dir/common/chronon.cpp.o.d"
  "/root/repo/src/common/date.cpp" "src/CMakeFiles/tdb_common.dir/common/date.cpp.o" "gcc" "src/CMakeFiles/tdb_common.dir/common/date.cpp.o.d"
  "/root/repo/src/common/period.cpp" "src/CMakeFiles/tdb_common.dir/common/period.cpp.o" "gcc" "src/CMakeFiles/tdb_common.dir/common/period.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/CMakeFiles/tdb_common.dir/common/random.cpp.o" "gcc" "src/CMakeFiles/tdb_common.dir/common/random.cpp.o.d"
  "/root/repo/src/common/slice.cpp" "src/CMakeFiles/tdb_common.dir/common/slice.cpp.o" "gcc" "src/CMakeFiles/tdb_common.dir/common/slice.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/tdb_common.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/tdb_common.dir/common/status.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/CMakeFiles/tdb_common.dir/common/strings.cpp.o" "gcc" "src/CMakeFiles/tdb_common.dir/common/strings.cpp.o.d"
  "/root/repo/src/common/table_printer.cpp" "src/CMakeFiles/tdb_common.dir/common/table_printer.cpp.o" "gcc" "src/CMakeFiles/tdb_common.dir/common/table_printer.cpp.o.d"
  "/root/repo/src/common/value.cpp" "src/CMakeFiles/tdb_common.dir/common/value.cpp.o" "gcc" "src/CMakeFiles/tdb_common.dir/common/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
