# Empty dependencies file for tdb_core.
# This may be replaced when dependencies are built.
