file(REMOVE_RECURSE
  "libtdb_core.a"
)
