file(REMOVE_RECURSE
  "CMakeFiles/tdb_core.dir/core/bulk.cpp.o"
  "CMakeFiles/tdb_core.dir/core/bulk.cpp.o.d"
  "CMakeFiles/tdb_core.dir/core/database.cpp.o"
  "CMakeFiles/tdb_core.dir/core/database.cpp.o.d"
  "CMakeFiles/tdb_core.dir/core/paper_scenario.cpp.o"
  "CMakeFiles/tdb_core.dir/core/paper_scenario.cpp.o.d"
  "CMakeFiles/tdb_core.dir/core/taxonomy.cpp.o"
  "CMakeFiles/tdb_core.dir/core/taxonomy.cpp.o.d"
  "libtdb_core.a"
  "libtdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
