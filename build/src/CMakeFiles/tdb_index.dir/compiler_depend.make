# Empty compiler generated dependencies file for tdb_index.
# This may be replaced when dependencies are built.
