file(REMOVE_RECURSE
  "libtdb_index.a"
)
