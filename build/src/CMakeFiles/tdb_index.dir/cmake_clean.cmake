file(REMOVE_RECURSE
  "CMakeFiles/tdb_index.dir/index/btree.cpp.o"
  "CMakeFiles/tdb_index.dir/index/btree.cpp.o.d"
  "CMakeFiles/tdb_index.dir/index/interval_index.cpp.o"
  "CMakeFiles/tdb_index.dir/index/interval_index.cpp.o.d"
  "CMakeFiles/tdb_index.dir/index/snapshot_index.cpp.o"
  "CMakeFiles/tdb_index.dir/index/snapshot_index.cpp.o.d"
  "libtdb_index.a"
  "libtdb_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
