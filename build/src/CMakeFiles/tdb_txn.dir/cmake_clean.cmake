file(REMOVE_RECURSE
  "CMakeFiles/tdb_txn.dir/txn/clock.cpp.o"
  "CMakeFiles/tdb_txn.dir/txn/clock.cpp.o.d"
  "CMakeFiles/tdb_txn.dir/txn/transaction.cpp.o"
  "CMakeFiles/tdb_txn.dir/txn/transaction.cpp.o.d"
  "CMakeFiles/tdb_txn.dir/txn/txn_manager.cpp.o"
  "CMakeFiles/tdb_txn.dir/txn/txn_manager.cpp.o.d"
  "libtdb_txn.a"
  "libtdb_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
