# Empty dependencies file for tdb_txn.
# This may be replaced when dependencies are built.
