file(REMOVE_RECURSE
  "libtdb_txn.a"
)
