
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/clock.cpp" "src/CMakeFiles/tdb_txn.dir/txn/clock.cpp.o" "gcc" "src/CMakeFiles/tdb_txn.dir/txn/clock.cpp.o.d"
  "/root/repo/src/txn/transaction.cpp" "src/CMakeFiles/tdb_txn.dir/txn/transaction.cpp.o" "gcc" "src/CMakeFiles/tdb_txn.dir/txn/transaction.cpp.o.d"
  "/root/repo/src/txn/txn_manager.cpp" "src/CMakeFiles/tdb_txn.dir/txn/txn_manager.cpp.o" "gcc" "src/CMakeFiles/tdb_txn.dir/txn/txn_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
