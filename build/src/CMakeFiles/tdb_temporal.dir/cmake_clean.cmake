file(REMOVE_RECURSE
  "CMakeFiles/tdb_temporal.dir/temporal/bitemporal_tuple.cpp.o"
  "CMakeFiles/tdb_temporal.dir/temporal/bitemporal_tuple.cpp.o.d"
  "CMakeFiles/tdb_temporal.dir/temporal/coalesce.cpp.o"
  "CMakeFiles/tdb_temporal.dir/temporal/coalesce.cpp.o.d"
  "CMakeFiles/tdb_temporal.dir/temporal/historical_relation.cpp.o"
  "CMakeFiles/tdb_temporal.dir/temporal/historical_relation.cpp.o.d"
  "CMakeFiles/tdb_temporal.dir/temporal/rollback_relation.cpp.o"
  "CMakeFiles/tdb_temporal.dir/temporal/rollback_relation.cpp.o.d"
  "CMakeFiles/tdb_temporal.dir/temporal/snapshot.cpp.o"
  "CMakeFiles/tdb_temporal.dir/temporal/snapshot.cpp.o.d"
  "CMakeFiles/tdb_temporal.dir/temporal/static_relation.cpp.o"
  "CMakeFiles/tdb_temporal.dir/temporal/static_relation.cpp.o.d"
  "CMakeFiles/tdb_temporal.dir/temporal/stored_relation.cpp.o"
  "CMakeFiles/tdb_temporal.dir/temporal/stored_relation.cpp.o.d"
  "CMakeFiles/tdb_temporal.dir/temporal/temporal_relation.cpp.o"
  "CMakeFiles/tdb_temporal.dir/temporal/temporal_relation.cpp.o.d"
  "CMakeFiles/tdb_temporal.dir/temporal/version_store.cpp.o"
  "CMakeFiles/tdb_temporal.dir/temporal/version_store.cpp.o.d"
  "libtdb_temporal.a"
  "libtdb_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
