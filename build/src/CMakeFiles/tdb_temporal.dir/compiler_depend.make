# Empty compiler generated dependencies file for tdb_temporal.
# This may be replaced when dependencies are built.
