file(REMOVE_RECURSE
  "libtdb_temporal.a"
)
