
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/temporal/bitemporal_tuple.cpp" "src/CMakeFiles/tdb_temporal.dir/temporal/bitemporal_tuple.cpp.o" "gcc" "src/CMakeFiles/tdb_temporal.dir/temporal/bitemporal_tuple.cpp.o.d"
  "/root/repo/src/temporal/coalesce.cpp" "src/CMakeFiles/tdb_temporal.dir/temporal/coalesce.cpp.o" "gcc" "src/CMakeFiles/tdb_temporal.dir/temporal/coalesce.cpp.o.d"
  "/root/repo/src/temporal/historical_relation.cpp" "src/CMakeFiles/tdb_temporal.dir/temporal/historical_relation.cpp.o" "gcc" "src/CMakeFiles/tdb_temporal.dir/temporal/historical_relation.cpp.o.d"
  "/root/repo/src/temporal/rollback_relation.cpp" "src/CMakeFiles/tdb_temporal.dir/temporal/rollback_relation.cpp.o" "gcc" "src/CMakeFiles/tdb_temporal.dir/temporal/rollback_relation.cpp.o.d"
  "/root/repo/src/temporal/snapshot.cpp" "src/CMakeFiles/tdb_temporal.dir/temporal/snapshot.cpp.o" "gcc" "src/CMakeFiles/tdb_temporal.dir/temporal/snapshot.cpp.o.d"
  "/root/repo/src/temporal/static_relation.cpp" "src/CMakeFiles/tdb_temporal.dir/temporal/static_relation.cpp.o" "gcc" "src/CMakeFiles/tdb_temporal.dir/temporal/static_relation.cpp.o.d"
  "/root/repo/src/temporal/stored_relation.cpp" "src/CMakeFiles/tdb_temporal.dir/temporal/stored_relation.cpp.o" "gcc" "src/CMakeFiles/tdb_temporal.dir/temporal/stored_relation.cpp.o.d"
  "/root/repo/src/temporal/temporal_relation.cpp" "src/CMakeFiles/tdb_temporal.dir/temporal/temporal_relation.cpp.o" "gcc" "src/CMakeFiles/tdb_temporal.dir/temporal/temporal_relation.cpp.o.d"
  "/root/repo/src/temporal/version_store.cpp" "src/CMakeFiles/tdb_temporal.dir/temporal/version_store.cpp.o" "gcc" "src/CMakeFiles/tdb_temporal.dir/temporal/version_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
