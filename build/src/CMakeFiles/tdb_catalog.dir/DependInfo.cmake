
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cpp" "src/CMakeFiles/tdb_catalog.dir/catalog/catalog.cpp.o" "gcc" "src/CMakeFiles/tdb_catalog.dir/catalog/catalog.cpp.o.d"
  "/root/repo/src/catalog/schema.cpp" "src/CMakeFiles/tdb_catalog.dir/catalog/schema.cpp.o" "gcc" "src/CMakeFiles/tdb_catalog.dir/catalog/schema.cpp.o.d"
  "/root/repo/src/catalog/temporal_class.cpp" "src/CMakeFiles/tdb_catalog.dir/catalog/temporal_class.cpp.o" "gcc" "src/CMakeFiles/tdb_catalog.dir/catalog/temporal_class.cpp.o.d"
  "/root/repo/src/catalog/type.cpp" "src/CMakeFiles/tdb_catalog.dir/catalog/type.cpp.o" "gcc" "src/CMakeFiles/tdb_catalog.dir/catalog/type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
