# Empty compiler generated dependencies file for tdb_catalog.
# This may be replaced when dependencies are built.
