file(REMOVE_RECURSE
  "libtdb_catalog.a"
)
