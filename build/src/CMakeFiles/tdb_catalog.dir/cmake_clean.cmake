file(REMOVE_RECURSE
  "CMakeFiles/tdb_catalog.dir/catalog/catalog.cpp.o"
  "CMakeFiles/tdb_catalog.dir/catalog/catalog.cpp.o.d"
  "CMakeFiles/tdb_catalog.dir/catalog/schema.cpp.o"
  "CMakeFiles/tdb_catalog.dir/catalog/schema.cpp.o.d"
  "CMakeFiles/tdb_catalog.dir/catalog/temporal_class.cpp.o"
  "CMakeFiles/tdb_catalog.dir/catalog/temporal_class.cpp.o.d"
  "CMakeFiles/tdb_catalog.dir/catalog/type.cpp.o"
  "CMakeFiles/tdb_catalog.dir/catalog/type.cpp.o.d"
  "libtdb_catalog.a"
  "libtdb_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
