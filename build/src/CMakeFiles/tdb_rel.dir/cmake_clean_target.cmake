file(REMOVE_RECURSE
  "libtdb_rel.a"
)
