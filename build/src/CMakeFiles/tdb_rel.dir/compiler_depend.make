# Empty compiler generated dependencies file for tdb_rel.
# This may be replaced when dependencies are built.
