
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rel/aggregate.cpp" "src/CMakeFiles/tdb_rel.dir/rel/aggregate.cpp.o" "gcc" "src/CMakeFiles/tdb_rel.dir/rel/aggregate.cpp.o.d"
  "/root/repo/src/rel/expression.cpp" "src/CMakeFiles/tdb_rel.dir/rel/expression.cpp.o" "gcc" "src/CMakeFiles/tdb_rel.dir/rel/expression.cpp.o.d"
  "/root/repo/src/rel/join.cpp" "src/CMakeFiles/tdb_rel.dir/rel/join.cpp.o" "gcc" "src/CMakeFiles/tdb_rel.dir/rel/join.cpp.o.d"
  "/root/repo/src/rel/operators.cpp" "src/CMakeFiles/tdb_rel.dir/rel/operators.cpp.o" "gcc" "src/CMakeFiles/tdb_rel.dir/rel/operators.cpp.o.d"
  "/root/repo/src/rel/relation.cpp" "src/CMakeFiles/tdb_rel.dir/rel/relation.cpp.o" "gcc" "src/CMakeFiles/tdb_rel.dir/rel/relation.cpp.o.d"
  "/root/repo/src/rel/row.cpp" "src/CMakeFiles/tdb_rel.dir/rel/row.cpp.o" "gcc" "src/CMakeFiles/tdb_rel.dir/rel/row.cpp.o.d"
  "/root/repo/src/rel/temporal_ops.cpp" "src/CMakeFiles/tdb_rel.dir/rel/temporal_ops.cpp.o" "gcc" "src/CMakeFiles/tdb_rel.dir/rel/temporal_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdb_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
