file(REMOVE_RECURSE
  "CMakeFiles/tdb_rel.dir/rel/aggregate.cpp.o"
  "CMakeFiles/tdb_rel.dir/rel/aggregate.cpp.o.d"
  "CMakeFiles/tdb_rel.dir/rel/expression.cpp.o"
  "CMakeFiles/tdb_rel.dir/rel/expression.cpp.o.d"
  "CMakeFiles/tdb_rel.dir/rel/join.cpp.o"
  "CMakeFiles/tdb_rel.dir/rel/join.cpp.o.d"
  "CMakeFiles/tdb_rel.dir/rel/operators.cpp.o"
  "CMakeFiles/tdb_rel.dir/rel/operators.cpp.o.d"
  "CMakeFiles/tdb_rel.dir/rel/relation.cpp.o"
  "CMakeFiles/tdb_rel.dir/rel/relation.cpp.o.d"
  "CMakeFiles/tdb_rel.dir/rel/row.cpp.o"
  "CMakeFiles/tdb_rel.dir/rel/row.cpp.o.d"
  "CMakeFiles/tdb_rel.dir/rel/temporal_ops.cpp.o"
  "CMakeFiles/tdb_rel.dir/rel/temporal_ops.cpp.o.d"
  "libtdb_rel.a"
  "libtdb_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
