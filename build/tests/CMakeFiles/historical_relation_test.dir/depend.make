# Empty dependencies file for historical_relation_test.
# This may be replaced when dependencies are built.
