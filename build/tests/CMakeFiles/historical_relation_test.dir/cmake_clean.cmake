file(REMOVE_RECURSE
  "CMakeFiles/historical_relation_test.dir/historical_relation_test.cpp.o"
  "CMakeFiles/historical_relation_test.dir/historical_relation_test.cpp.o.d"
  "historical_relation_test"
  "historical_relation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/historical_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
