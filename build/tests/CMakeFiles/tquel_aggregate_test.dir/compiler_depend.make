# Empty compiler generated dependencies file for tquel_aggregate_test.
# This may be replaced when dependencies are built.
