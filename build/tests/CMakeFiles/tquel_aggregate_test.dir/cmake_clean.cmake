file(REMOVE_RECURSE
  "CMakeFiles/tquel_aggregate_test.dir/tquel_aggregate_test.cpp.o"
  "CMakeFiles/tquel_aggregate_test.dir/tquel_aggregate_test.cpp.o.d"
  "tquel_aggregate_test"
  "tquel_aggregate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tquel_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
