file(REMOVE_RECURSE
  "CMakeFiles/persistence_property_test.dir/persistence_property_test.cpp.o"
  "CMakeFiles/persistence_property_test.dir/persistence_property_test.cpp.o.d"
  "persistence_property_test"
  "persistence_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistence_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
