# Empty compiler generated dependencies file for persistence_property_test.
# This may be replaced when dependencies are built.
