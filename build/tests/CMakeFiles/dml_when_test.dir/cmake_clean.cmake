file(REMOVE_RECURSE
  "CMakeFiles/dml_when_test.dir/dml_when_test.cpp.o"
  "CMakeFiles/dml_when_test.dir/dml_when_test.cpp.o.d"
  "dml_when_test"
  "dml_when_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dml_when_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
