# Empty compiler generated dependencies file for dml_when_test.
# This may be replaced when dependencies are built.
