
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/value_test.cpp" "tests/CMakeFiles/value_test.dir/value_test.cpp.o" "gcc" "tests/CMakeFiles/value_test.dir/value_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_tquel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
