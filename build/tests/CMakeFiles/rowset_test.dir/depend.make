# Empty dependencies file for rowset_test.
# This may be replaced when dependencies are built.
