file(REMOVE_RECURSE
  "CMakeFiles/rowset_test.dir/rowset_test.cpp.o"
  "CMakeFiles/rowset_test.dir/rowset_test.cpp.o.d"
  "rowset_test"
  "rowset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rowset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
