file(REMOVE_RECURSE
  "CMakeFiles/chronon_date_test.dir/chronon_date_test.cpp.o"
  "CMakeFiles/chronon_date_test.dir/chronon_date_test.cpp.o.d"
  "chronon_date_test"
  "chronon_date_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronon_date_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
