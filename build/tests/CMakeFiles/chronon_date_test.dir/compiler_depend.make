# Empty compiler generated dependencies file for chronon_date_test.
# This may be replaced when dependencies are built.
