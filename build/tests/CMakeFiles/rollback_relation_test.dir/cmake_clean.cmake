file(REMOVE_RECURSE
  "CMakeFiles/rollback_relation_test.dir/rollback_relation_test.cpp.o"
  "CMakeFiles/rollback_relation_test.dir/rollback_relation_test.cpp.o.d"
  "rollback_relation_test"
  "rollback_relation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollback_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
