# Empty dependencies file for rollback_relation_test.
# This may be replaced when dependencies are built.
