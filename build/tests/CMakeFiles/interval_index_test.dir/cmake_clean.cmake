file(REMOVE_RECURSE
  "CMakeFiles/interval_index_test.dir/interval_index_test.cpp.o"
  "CMakeFiles/interval_index_test.dir/interval_index_test.cpp.o.d"
  "interval_index_test"
  "interval_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
