# Empty dependencies file for pager_buffer_pool_test.
# This may be replaced when dependencies are built.
