# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pager_buffer_pool_test.
