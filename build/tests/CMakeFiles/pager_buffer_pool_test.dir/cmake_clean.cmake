file(REMOVE_RECURSE
  "CMakeFiles/pager_buffer_pool_test.dir/pager_buffer_pool_test.cpp.o"
  "CMakeFiles/pager_buffer_pool_test.dir/pager_buffer_pool_test.cpp.o.d"
  "pager_buffer_pool_test"
  "pager_buffer_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pager_buffer_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
