file(REMOVE_RECURSE
  "CMakeFiles/temporal_relation_test.dir/temporal_relation_test.cpp.o"
  "CMakeFiles/temporal_relation_test.dir/temporal_relation_test.cpp.o.d"
  "temporal_relation_test"
  "temporal_relation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
