# Empty dependencies file for temporal_relation_test.
# This may be replaced when dependencies are built.
