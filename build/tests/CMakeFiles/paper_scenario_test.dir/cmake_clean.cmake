file(REMOVE_RECURSE
  "CMakeFiles/paper_scenario_test.dir/paper_scenario_test.cpp.o"
  "CMakeFiles/paper_scenario_test.dir/paper_scenario_test.cpp.o.d"
  "paper_scenario_test"
  "paper_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
