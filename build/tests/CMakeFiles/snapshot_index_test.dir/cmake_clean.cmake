file(REMOVE_RECURSE
  "CMakeFiles/snapshot_index_test.dir/snapshot_index_test.cpp.o"
  "CMakeFiles/snapshot_index_test.dir/snapshot_index_test.cpp.o.d"
  "snapshot_index_test"
  "snapshot_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
