# Empty dependencies file for snapshot_index_test.
# This may be replaced when dependencies are built.
