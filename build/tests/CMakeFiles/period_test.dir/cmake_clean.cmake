file(REMOVE_RECURSE
  "CMakeFiles/period_test.dir/period_test.cpp.o"
  "CMakeFiles/period_test.dir/period_test.cpp.o.d"
  "period_test"
  "period_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/period_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
