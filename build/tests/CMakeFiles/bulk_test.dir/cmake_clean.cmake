file(REMOVE_RECURSE
  "CMakeFiles/bulk_test.dir/bulk_test.cpp.o"
  "CMakeFiles/bulk_test.dir/bulk_test.cpp.o.d"
  "bulk_test"
  "bulk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
