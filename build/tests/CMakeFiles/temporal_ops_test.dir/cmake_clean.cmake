file(REMOVE_RECURSE
  "CMakeFiles/temporal_ops_test.dir/temporal_ops_test.cpp.o"
  "CMakeFiles/temporal_ops_test.dir/temporal_ops_test.cpp.o.d"
  "temporal_ops_test"
  "temporal_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
