# Empty compiler generated dependencies file for static_relation_test.
# This may be replaced when dependencies are built.
