file(REMOVE_RECURSE
  "CMakeFiles/static_relation_test.dir/static_relation_test.cpp.o"
  "CMakeFiles/static_relation_test.dir/static_relation_test.cpp.o.d"
  "static_relation_test"
  "static_relation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
