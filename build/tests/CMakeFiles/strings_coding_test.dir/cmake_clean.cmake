file(REMOVE_RECURSE
  "CMakeFiles/strings_coding_test.dir/strings_coding_test.cpp.o"
  "CMakeFiles/strings_coding_test.dir/strings_coding_test.cpp.o.d"
  "strings_coding_test"
  "strings_coding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strings_coding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
