# Empty dependencies file for tuple_codec_test.
# This may be replaced when dependencies are built.
