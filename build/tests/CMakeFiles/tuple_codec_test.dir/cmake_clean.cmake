file(REMOVE_RECURSE
  "CMakeFiles/tuple_codec_test.dir/tuple_codec_test.cpp.o"
  "CMakeFiles/tuple_codec_test.dir/tuple_codec_test.cpp.o.d"
  "tuple_codec_test"
  "tuple_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
