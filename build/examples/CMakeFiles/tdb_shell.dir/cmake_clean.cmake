file(REMOVE_RECURSE
  "CMakeFiles/tdb_shell.dir/tdb_shell.cpp.o"
  "CMakeFiles/tdb_shell.dir/tdb_shell.cpp.o.d"
  "tdb_shell"
  "tdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
