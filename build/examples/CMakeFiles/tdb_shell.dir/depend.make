# Empty dependencies file for tdb_shell.
# This may be replaced when dependencies are built.
