# Empty dependencies file for engineering_versions.
# This may be replaced when dependencies are built.
