file(REMOVE_RECURSE
  "CMakeFiles/engineering_versions.dir/engineering_versions.cpp.o"
  "CMakeFiles/engineering_versions.dir/engineering_versions.cpp.o.d"
  "engineering_versions"
  "engineering_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engineering_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
