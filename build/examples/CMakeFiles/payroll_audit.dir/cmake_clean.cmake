file(REMOVE_RECURSE
  "CMakeFiles/payroll_audit.dir/payroll_audit.cpp.o"
  "CMakeFiles/payroll_audit.dir/payroll_audit.cpp.o.d"
  "payroll_audit"
  "payroll_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payroll_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
