// Epoch-partition differential: a partitioned store (any partition size,
// any thread count, row/batch/snapshot path) must be bit-identical to the
// unpartitioned baseline — pruning may only skip partitions the pushed-down
// window provably misses.  Also covers synopsis maintenance across
// corrections straddling a seal boundary, checkpoint/recovery of the
// partition directory, the ScanStats accounting identity (including that
// pruned partitions never form morsels), and the key sketch's
// no-false-negative contract.

#include "temporal/partition.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/database.h"
#include "exec/thread_pool.h"
#include "temporal/version_store.h"
#include "txn/clock.h"
#include "txn/txn_manager.h"

namespace temporadb {
namespace {

// --- Store-level differential ---------------------------------------------

// A store plus the machinery to drive it standalone, optionally under MVCC
// publication (mimicking Database::PublishMvcc per commit).
struct Harness {
  ManualClock clock;
  TxnManager manager{&clock};
  MvccState mvcc;
  std::unique_ptr<VersionStore> store;
  bool publish = false;

  explicit Harness(size_t partition_rows, bool with_mvcc = false,
                   size_t batch_rows = 0) {
    VersionStoreOptions options;
    options.index_valid_time = false;
    options.index_txn_time = false;
    options.partition_rows = partition_rows;
    if (batch_rows > 0) options.batch_rows = batch_rows;
    if (with_mvcc) {
      options.mvcc = &mvcc;
      publish = true;
    }
    store = std::make_unique<VersionStore>(options);
  }

  void Commit(Transaction* txn) {
    ASSERT_TRUE(manager.Commit(txn).ok());
    if (publish) {
      store->PublishCommittedRows();
      mvcc.commit_seq.fetch_add(1, std::memory_order_release);
    }
  }

  SnapshotPin Pin() const {
    return SnapshotPin{mvcc.commit_seq.load(std::memory_order_acquire),
                       store->committed_rows(), clock.Now()};
  }
};

// Seeded chaos: appends (bounded/open valid periods), transaction-time
// closes, and in-place corrections (physical update/delete) that land on
// arbitrary rows — including rows already sealed, so corrections routinely
// straddle partition boundaries at small partition sizes.  Identical op
// sequence for every store configuration (the rng never consults the
// store's partition state).
void Populate(Harness* h, size_t n_ops, uint64_t seed,
              bool corrections = true) {
  Random rng(seed);
  VersionStore& store = *h->store;
  int64_t day = 1000;
  size_t op = 0;
  while (op < n_ops) {
    h->clock.SetTime(Chronon(day));
    Transaction* txn = *h->manager.Begin();
    size_t batch = 1 + rng.Uniform(50);
    for (size_t i = 0; i < batch && op < n_ops; ++i, ++op) {
      const uint64_t pick = rng.Uniform(12);
      if (store.version_count() > 10 && pick < 3) {
        RowId row = rng.Uniform(store.version_count());
        (void)store.CloseTxn(txn, row, Chronon(day));
      } else if (corrections && store.version_count() > 10 && pick == 3) {
        RowId row = rng.Uniform(store.version_count());
        if (rng.OneIn(3)) {
          (void)store.PhysicalDelete(txn, row);
        } else {
          BitemporalTuple t;
          t.values = {Value(static_cast<int64_t>(rng.Uniform(64))),
                      Value("patched")};
          int64_t from = 900 + static_cast<int64_t>(rng.Uniform(400));
          t.valid = Period(Chronon(from), Chronon(from + 30));
          t.txn = Period(Chronon(day - 100), Chronon(day - 50));
          (void)store.PhysicalUpdate(txn, row, std::move(t));
        }
      } else {
        BitemporalTuple t;
        t.values = {Value(static_cast<int64_t>(rng.Uniform(64))),
                    Value(std::string("r") + std::to_string(rng.Uniform(8)))};
        int64_t from = 900 + static_cast<int64_t>(rng.Uniform(400));
        t.valid = rng.OneIn(2)
                      ? Period::From(Chronon(from))
                      : Period(Chronon(from),
                               Chronon(from + 1 +
                                       static_cast<int64_t>(rng.Uniform(90))));
        t.txn = Period::From(Chronon(day));
        ASSERT_TRUE(store.Append(txn, std::move(t)).ok());
      }
    }
    h->Commit(txn);
    if (testing::Test::HasFatalFailure()) return;
    day += 1 + static_cast<int64_t>(rng.Uniform(3));
  }
}

using Sequence = std::vector<std::pair<RowId, BitemporalTuple>>;

Sequence CollectRows(VersionScan scan) {
  Sequence out;
  RowId row = 0;
  while (const BitemporalTuple* t = scan.Next(&row)) out.emplace_back(row, *t);
  return out;
}

Sequence CollectBatches(VersionBatchScan scan) {
  Sequence out;
  VersionBatch batch;
  while (scan.Next(&batch)) {
    EXPECT_FALSE(batch.empty());
    for (size_t i = 0; i < batch.size(); ++i) {
      out.emplace_back(batch.rows[i], *batch.tuples[i]);
    }
  }
  return out;
}

// Probe windows chosen to exercise both prune outcomes: some hit only early
// history, some only late, some everything.
Sequence RunRowProbes(const VersionStore& store) {
  Sequence all;
  auto append = [&all](Sequence v) {
    all.insert(all.end(), v.begin(), v.end());
  };
  append(CollectRows(store.ScanAll()));
  append(CollectRows(store.ScanCurrent()));
  append(CollectRows(store.ScanAsOf(Chronon(1005))));
  append(CollectRows(store.ScanAsOf(Chronon(1100))));
  append(CollectRows(store.ScanAsOf(Chronon(100000))));
  append(CollectRows(
      store.ScanTxnOverlapping(Period(Chronon(1050), Chronon(1200)))));
  append(CollectRows(
      store.ScanTxnOverlapping(Period(Chronon(0), Chronon(1002)))));
  append(CollectRows(
      store.ScanValidDuring(Period(Chronon(1000), Chronon(1060)))));
  append(CollectRows(
      store.ScanValidDuring(Period(Chronon(900), Chronon(905)))));
  return all;
}

Sequence RunBatchProbes(const VersionStore& store) {
  Sequence all;
  auto append = [&all](Sequence v) {
    all.insert(all.end(), v.begin(), v.end());
  };
  append(CollectBatches(store.BatchScanAll()));
  append(CollectBatches(store.BatchScanCurrent()));
  append(CollectBatches(store.BatchScanAsOf(Chronon(1005))));
  append(CollectBatches(store.BatchScanAsOf(Chronon(1100))));
  append(CollectBatches(store.BatchScanAsOf(Chronon(100000))));
  append(CollectBatches(
      store.BatchScanTxnOverlapping(Period(Chronon(1050), Chronon(1200)))));
  append(CollectBatches(
      store.BatchScanTxnOverlapping(Period(Chronon(0), Chronon(1002)))));
  append(CollectBatches(
      store.BatchScanValidDuring(Period(Chronon(1000), Chronon(1060)))));
  append(CollectBatches(
      store.BatchScanValidDuring(Period(Chronon(900), Chronon(905)))));
  return all;
}

void ExpectSameSequence(const Sequence& got, const Sequence& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].first, want[i].first) << label << ", position " << i;
    ASSERT_TRUE(got[i].second == want[i].second)
        << label << ", position " << i;
  }
}

TEST(PartitionDifferentialTest, RowAndBatchPathsMatchUnpartitionedBaseline) {
  Harness baseline(/*partition_rows=*/0);
  Populate(&baseline, 4000, /*seed=*/31);
  ASSERT_EQ(baseline.store->sealed_partition_count(), 0u);
  const Sequence want_rows = RunRowProbes(*baseline.store);
  const Sequence want_batches = RunBatchProbes(*baseline.store);
  ASSERT_FALSE(want_rows.empty());
  ExpectSameSequence(want_batches, want_rows, "baseline batch vs row");

  for (size_t partition_rows : {1u, 127u, 4096u}) {
    Harness h(partition_rows);
    Populate(&h, 4000, /*seed=*/31);
    if (partition_rows <= 127) {
      ASSERT_GT(h.store->sealed_partition_count(), 1u);
    }
    const std::string label = std::string("partition_rows=") + std::to_string(partition_rows);
    ExpectSameSequence(RunRowProbes(*h.store), want_rows, label + " rows");
    ExpectSameSequence(RunBatchProbes(*h.store), want_batches,
                       label + " batches");
    // Pruning off must not change anything either (sealing still happened).
    h.store->ConfigurePartitionPruning(false);
    ExpectSameSequence(RunRowProbes(*h.store), want_rows,
                       label + " rows, pruning off");
    h.store->ConfigurePartitionPruning(true);

    for (size_t threads : {1u, 4u}) {
      exec::ThreadPool pool(threads);
      h.store->ConfigureParallel(&pool, /*min_rows=*/1);
      ExpectSameSequence(RunRowProbes(*h.store), want_rows,
                         label + " rows, threads=" + std::to_string(threads));
      ExpectSameSequence(
          RunBatchProbes(*h.store), want_batches,
          label + " batches, threads=" + std::to_string(threads));
      h.store->ConfigureParallel(nullptr);
    }
  }
}

TEST(PartitionDifferentialTest, SnapshotPathMatchesUnpartitionedBaseline) {
  // Identical op script against every store; a pin taken at the same point
  // in the script pins the same (seq, rows) everywhere, so snapshot scans
  // must agree row for row.
  auto drive = [](Harness* h, SnapshotPin* mid_pin) {
    Populate(h, 1500, /*seed=*/47, /*corrections=*/false);
    *mid_pin = h->Pin();
    Populate(h, 1500, /*seed=*/53, /*corrections=*/false);
  };
  auto probe = [](const Harness& h, const SnapshotPin& pin) {
    Sequence all;
    auto append = [&all](Sequence v) {
      all.insert(all.end(), v.begin(), v.end());
    };
    BatchPredicates none;
    append(CollectRows(h.store->ScanSnapshot(pin, none)));
    append(CollectBatches(h.store->BatchScanSnapshot(pin, none)));
    BatchPredicates current;
    current.txn_current = true;
    append(CollectBatches(h.store->BatchScanSnapshot(pin, current)));
    BatchPredicates asof;
    asof.txn_contains = Chronon(1100);
    append(CollectBatches(h.store->BatchScanSnapshot(pin, asof)));
    BatchPredicates when;
    when.valid_overlaps = Period(Chronon(1000), Chronon(1060));
    append(CollectBatches(h.store->BatchScanSnapshot(pin, when)));
    return all;
  };

  Harness baseline(/*partition_rows=*/0, /*with_mvcc=*/true);
  SnapshotPin baseline_pin;
  drive(&baseline, &baseline_pin);
  const Sequence want = probe(baseline, baseline_pin);
  ASSERT_FALSE(want.empty());

  for (size_t partition_rows : {1u, 127u, 4096u}) {
    Harness h(partition_rows, /*with_mvcc=*/true);
    SnapshotPin pin;
    drive(&h, &pin);
    ASSERT_EQ(pin.rows, baseline_pin.rows);
    ASSERT_EQ(pin.seq, baseline_pin.seq);
    ExpectSameSequence(
        probe(h, pin), want,
        std::string("snapshot, partition_rows=") +
            std::to_string(partition_rows));
  }
}

// --- Corrections straddling a seal boundary --------------------------------

TEST(PartitionCorrectionTest, StraddlingCorrectionsPatchSynopses) {
  Harness h(/*partition_rows=*/4);
  Harness flat(/*partition_rows=*/0);
  // Ten committed rows: partitions [0,4) and [4,8) seal, rows 8-9 stay hot.
  for (Harness* target : {&h, &flat}) {
    target->clock.SetTime(Chronon(100));
    Transaction* txn = *target->manager.Begin();
    for (int i = 0; i < 10; ++i) {
      BitemporalTuple t;
      t.values = {Value(static_cast<int64_t>(i)), Value("v")};
      t.valid = Period(Chronon(10 * i), Chronon(10 * i + 10));
      t.txn = Period::From(Chronon(100));
      ASSERT_TRUE(target->store->Append(txn, std::move(t)).ok());
    }
    target->Commit(txn);
  }
  ASSERT_EQ(h.store->sealed_partition_count(), 2u);
  ASSERT_EQ(h.store->sealed_partition(1).live_rows, 4u);

  // One correction transaction touching both sides of the row-4 boundary:
  // delete row 3 (partition 0), rewrite row 4 (partition 1).
  for (Harness* target : {&h, &flat}) {
    target->clock.SetTime(Chronon(200));
    Transaction* txn = *target->manager.Begin();
    ASSERT_TRUE(target->store->PhysicalDelete(txn, 3).ok());
    BitemporalTuple patched;
    patched.values = {Value(static_cast<int64_t>(400)), Value("patched")};
    patched.valid = Period(Chronon(500), Chronon(600));
    patched.txn = Period::From(Chronon(100));
    ASSERT_TRUE(target->store->PhysicalUpdate(txn, 4, patched).ok());
    target->Commit(txn);
  }
  // Synopses repatched exactly: partition 0 lost a live row, partition 1's
  // valid bounds now cover the rewritten period (row 4 went from [40,50)
  // to [500,600), so min moves up to row 5's 50 and max jumps to 600) and
  // its sketch holds the new key.
  EXPECT_EQ(h.store->sealed_partition(0).live_rows, 3u);
  EXPECT_EQ(h.store->sealed_partition(1).live_rows, 4u);
  EXPECT_EQ(h.store->sealed_partition(1).min_valid_from, 50);
  EXPECT_EQ(h.store->sealed_partition(1).max_valid_to, 600);
  EXPECT_TRUE(h.store->SealedPartitionMayContain(1, 0, Value(int64_t{400})));

  // An aborted straddling correction must leave the synopses equivalent to
  // never having happened (the undo repatches).
  {
    h.clock.SetTime(Chronon(300));
    Transaction* txn = *h.manager.Begin();
    ASSERT_TRUE(h.store->PhysicalDelete(txn, 2).ok());
    ASSERT_TRUE(h.store->PhysicalDelete(txn, 5).ok());
    ASSERT_TRUE(h.manager.Abort(txn).ok());
  }
  EXPECT_EQ(h.store->sealed_partition(0).live_rows, 3u);
  EXPECT_EQ(h.store->sealed_partition(1).live_rows, 4u);

  // And the partitioned store still reads bit-identically to the flat one.
  ExpectSameSequence(RunRowProbes(*h.store), RunRowProbes(*flat.store),
                     "straddling corrections, rows");
  ExpectSameSequence(RunBatchProbes(*h.store), RunBatchProbes(*flat.store),
                     "straddling corrections, batches");

  // A transaction-time close of a sealed row maintains the mutable trio
  // incrementally: partition 1 loses a current row and gains a finite end.
  const uint64_t before = h.store->sealed_partition(1).current_rows;
  for (Harness* target : {&h, &flat}) {
    target->clock.SetTime(Chronon(400));
    Transaction* txn = *target->manager.Begin();
    ASSERT_TRUE(target->store->CloseTxn(txn, 5, Chronon(400)).ok());
    target->Commit(txn);
  }
  EXPECT_EQ(h.store->sealed_partition(1).current_rows, before - 1);
  EXPECT_GE(h.store->sealed_partition(1).max_finite_tt_end, 400);
  ExpectSameSequence(RunRowProbes(*h.store), RunRowProbes(*flat.store),
                     "sealed close, rows");
}

// --- Checkpoint / recovery -------------------------------------------------

class PartitionPersistenceTest : public ::testing::Test {
 protected:
  PartitionPersistenceTest() {
    dir_ = testing::TempDir() + "/tdb_part_" + std::to_string(::getpid()) +
           "_" + std::to_string(counter_++);
    std::filesystem::remove_all(dir_);
    EXPECT_TRUE(clock_.SetDate("01/01/80").ok());
  }
  ~PartitionPersistenceTest() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<Database> Open(size_t partition_rows) {
    DatabaseOptions options;
    options.path = dir_;
    options.clock = &clock_;
    options.store_options.partition_rows = partition_rows;
    Result<std::unique_ptr<Database>> db = Database::Open(options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(*db);
  }

  static int counter_;
  std::string dir_;
  ManualClock clock_;
};

int PartitionPersistenceTest::counter_ = 0;

TEST_F(PartitionPersistenceTest, SealedPartitionsSurviveCheckpointAndWal) {
  std::vector<std::string> want;
  size_t sealed_before = 0;
  {
    auto db = Open(/*partition_rows=*/32);
    ASSERT_TRUE(db->Execute("create temporal relation t "
                            "(name = string, n = int)")
                    .ok());
    for (int i = 0; i < 150; ++i) {
      if (i % 7 == 0) clock_.AdvanceDays(1);
      ASSERT_TRUE(db->Execute(std::string("append to t (name = \"e") +
                              std::to_string(i % 13) + "\", n = " +
                              std::to_string(i) + ")")
                      .ok());
    }
    ASSERT_TRUE(db->Checkpoint().ok());
    // Post-checkpoint WAL tail, replayed (not loaded) at recovery.
    for (int i = 0; i < 40; ++i) {
      clock_.AdvanceDays(1);
      ASSERT_TRUE(db->Execute(std::string("append to t (name = \"tail") +
                              std::to_string(i) + "\", n = " +
                              std::to_string(1000 + i) + ")")
                      .ok());
    }
    StoredRelation* rel = *db->GetRelation("t");
    sealed_before = rel->store()->sealed_partition_count();
    ASSERT_GT(sealed_before, 2u);
    ASSERT_TRUE(db->Execute("range of x is t").ok());
    Result<Rowset> rows = db->Query("retrieve (x.name, x.n)");
    ASSERT_TRUE(rows.ok());
    for (const Row& r : rows->rows()) {
      want.push_back(r.values[0].ToString() + "|" + r.values[1].ToString());
    }
  }  // "Crash": WAL tail not checkpointed.
  // The sidecar exists next to the heap.
  ASSERT_TRUE(std::filesystem::exists(dir_ + "/ckpt-1/partitions.tdb"));
  {
    auto db = Open(/*partition_rows=*/32);
    StoredRelation* rel = *db->GetRelation("t");
    // Recovery reinstalled the checkpoint's sealed partitions and resealed
    // the replayed tail at the end-of-recovery publication.
    EXPECT_EQ(rel->store()->sealed_partition_count(), sealed_before);
    EXPECT_GT(rel->store()->sealed_rows(), 0u);
    ASSERT_TRUE(db->Execute("range of x is t").ok());
    Result<Rowset> rows = db->Query("retrieve (x.name, x.n)");
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(rows->rows()[i].values[0].ToString() + "|" +
                    rows->rows()[i].values[1].ToString(),
                want[i])
          << "row " << i;
    }
  }
}

TEST_F(PartitionPersistenceTest, RecoveredSynopsesKeepPruningSound) {
  // Differential across a restart: the recovered, partition-pruned store
  // answers every probe exactly like a fresh unpartitioned database built
  // from the same history.
  auto build = [](Database* db, ManualClock* clock) {
    ASSERT_TRUE(db->Execute("create historical relation h "
                            "(name = string, n = int)")
                    .ok());
    Random rng(7);
    for (int i = 0; i < 120; ++i) {
      if (i % 5 == 0) clock->AdvanceDays(2);
      int64_t from = 3650 + static_cast<int64_t>(rng.Uniform(60));
      ASSERT_TRUE(db->Execute(std::string("append to h (name = \"e") +
                              std::to_string(i % 9) + "\", n = " +
                              std::to_string(i) + ") valid from \"" +
                              Chronon(from).ToString() + "\" to \"" +
                              Chronon(from + 10).ToString() + "\"")
                      .ok());
    }
    ASSERT_TRUE(db->Execute("range of x is h").ok());
  };
  const std::string query = std::string("retrieve (x.name, x.n) when x overlap \"") +
                            Chronon(3655).ToString() + "\"";
  std::vector<std::string> want;
  {
    auto db = Open(/*partition_rows=*/16);
    build(db.get(), &clock_);
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  {
    // Rebuild the same history in-memory, unpartitioned, with its own clock
    // stepped through the identical script.
    ManualClock flat_clock;
    ASSERT_TRUE(flat_clock.SetDate("01/01/80").ok());
    DatabaseOptions options;
    options.clock = &flat_clock;
    options.store_options.partition_rows = 0;
    auto flat = std::move(*Database::Open(options));
    build(flat.get(), &flat_clock);
    Result<Rowset> rows = flat->Query(query);
    ASSERT_TRUE(rows.ok());
    for (const Row& r : rows->rows()) {
      want.push_back(r.values[0].ToString() + "|" + r.values[1].ToString());
    }
  }
  {
    auto db = Open(/*partition_rows=*/16);
    StoredRelation* rel = *db->GetRelation("h");
    ASSERT_GT(rel->store()->sealed_partition_count(), 2u);
    ASSERT_TRUE(db->Execute("range of x is h").ok());
    Result<Rowset> rows = db->Query(query);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(rows->rows()[i].values[0].ToString() + "|" +
                    rows->rows()[i].values[1].ToString(),
                want[i]);
    }
  }
}

// --- ScanStats -------------------------------------------------------------

TEST(PartitionStatsTest, AccountingIdentityAndMorselSuppression) {
  // 64 committed rows in 8 aligned epochs; batch_rows == partition_rows so
  // one surviving epoch is exactly one morsel.  Row i: valid [10i, 10i+5),
  // tt [i, ∞); rows 0-31 then closed at day 200.
  Harness h(/*partition_rows=*/8, /*with_mvcc=*/false, /*batch_rows=*/8);
  {
    h.clock.SetTime(Chronon(100));
    Transaction* txn = *h.manager.Begin();
    for (int i = 0; i < 64; ++i) {
      BitemporalTuple t;
      t.values = {Value(static_cast<int64_t>(i)), Value("v")};
      t.valid = Period(Chronon(10 * i), Chronon(10 * i + 5));
      t.txn = Period::From(Chronon(i));
      ASSERT_TRUE(h.store->Append(txn, std::move(t)).ok());
    }
    h.Commit(txn);
  }
  {
    h.clock.SetTime(Chronon(200));
    Transaction* txn = *h.manager.Begin();
    for (RowId row = 0; row < 32; ++row) {
      ASSERT_TRUE(h.store->CloseTxn(txn, row, Chronon(200)).ok());
    }
    h.Commit(txn);
  }
  ASSERT_EQ(h.store->sealed_partition_count(), 8u);
  ScanStats stats;
  h.store->set_scan_stats(&stats);

  // Valid-time window [100, 120): only epoch 1 (rows 8-15, valid reach
  // [80, 155)) can intersect — epoch 0 tops out at 75, epoch 2 starts at
  // 160.  The matches are rows 10-11; the single surviving epoch is one
  // 8-row range = exactly 1 morsel, and the 7 pruned epochs form none.
  Sequence got = CollectBatches(
      h.store->BatchScanValidDuring(Period(Chronon(100), Chronon(120))));
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(stats.considered(), 8u);
  EXPECT_EQ(stats.pruned_vt(), 7u);
  EXPECT_EQ(stats.pruned_tt(), 0u);
  EXPECT_EQ(stats.scanned(), 1u);
  EXPECT_EQ(stats.rows(), 8u);
  EXPECT_EQ(stats.morsels(), 1u);
  EXPECT_EQ(stats.considered(), stats.pruned_tt() + stats.pruned_vt() +
                                    stats.pruned_snapshot() + stats.scanned());

  // With pruning off, the same scan forms the full 8 morsels.
  stats.Reset();
  h.store->ConfigurePartitionPruning(false);
  Sequence off = CollectBatches(
      h.store->BatchScanValidDuring(Period(Chronon(100), Chronon(120))));
  ExpectSameSequence(off, got, "pruning toggle");
  EXPECT_EQ(stats.considered(), 0u);  // Synopsis walk skipped entirely.
  EXPECT_EQ(stats.morsels(), 8u);
  h.store->ConfigurePartitionPruning(true);

  // As-of below every tt_start: all 8 epochs prune on transaction time and
  // no morsel forms at all.
  stats.Reset();
  got = CollectBatches(h.store->BatchScanAsOf(Chronon(-5)));
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(stats.pruned_tt(), 8u);
  EXPECT_EQ(stats.scanned(), 0u);
  EXPECT_EQ(stats.rows(), 0u);
  EXPECT_EQ(stats.morsels(), 0u);

  // As-of after every close: the 4 fully-closed epochs prune (finite tt
  // upper bound), the 4 epochs holding current rows cannot.
  stats.Reset();
  got = CollectBatches(h.store->BatchScanAsOf(Chronon(500)));
  EXPECT_EQ(got.size(), 32u);
  EXPECT_EQ(stats.pruned_tt(), 4u);
  EXPECT_EQ(stats.scanned(), 4u);
  EXPECT_EQ(stats.morsels(), 4u);
  h.store->set_scan_stats(nullptr);
}

TEST(PartitionStatsTest, SnapshotScansSkipPartitionsSealedAboveThePin) {
  Harness h(/*partition_rows=*/8, /*with_mvcc=*/true);
  auto append_epoch = [&h](int base) {
    h.clock.SetTime(Chronon(base));
    Transaction* txn = *h.manager.Begin();
    for (int i = 0; i < 8; ++i) {
      BitemporalTuple t;
      t.values = {Value(static_cast<int64_t>(base + i)), Value("v")};
      t.valid = Period(Chronon(base), Chronon(base + 5));
      t.txn = Period::From(Chronon(base));
      EXPECT_TRUE(h.store->Append(txn, std::move(t)).ok());
    }
    h.Commit(txn);
  };
  append_epoch(100);
  append_epoch(110);
  const SnapshotPin pin = h.Pin();
  append_epoch(120);
  append_epoch(130);
  ASSERT_EQ(h.store->sealed_partition_count(), 4u);

  ScanStats stats;
  h.store->set_scan_stats(&stats);
  BatchPredicates none;
  Sequence got = CollectBatches(h.store->BatchScanSnapshot(pin, none));
  EXPECT_EQ(got.size(), 16u);  // Only the pinned prefix.
  EXPECT_EQ(stats.considered(), 4u);
  EXPECT_EQ(stats.pruned_snapshot(), 2u);
  EXPECT_EQ(stats.scanned(), 2u);
  EXPECT_EQ(stats.morsels(), 1u);  // Two adjacent epochs merge into one
                                   // range; batch_rows (1024) covers it.
  EXPECT_EQ(stats.considered(), stats.pruned_tt() + stats.pruned_vt() +
                                    stats.pruned_snapshot() + stats.scanned());
  h.store->set_scan_stats(nullptr);
}

// --- Key sketch and synopsis codec ----------------------------------------

TEST(KeySketchTest, NoFalseNegatives) {
  KeySketch sketch;
  Random rng(99);
  std::vector<Value> added;
  for (int i = 0; i < 500; ++i) {
    if (rng.OneIn(2)) {
      added.push_back(Value(static_cast<int64_t>(rng.Uniform(1000000))));
    } else {
      std::string key = "k";
      key += std::to_string(rng.Uniform(1000000));
      added.push_back(Value(std::move(key)));
    }
    sketch.Add(added.back());
  }
  for (const Value& v : added) {
    EXPECT_TRUE(sketch.MayContain(v)) << v.ToString();
  }
}

TEST(KeySketchTest, EmptyAndRangeNegatives) {
  KeySketch empty;
  EXPECT_FALSE(empty.MayContain(Value(int64_t{7})));
  KeySketch ints;
  for (int64_t v = 100; v < 200; ++v) ints.Add(Value(v));
  // Outside the int min/max: definite negative regardless of bloom state.
  EXPECT_FALSE(ints.MayContain(Value(int64_t{99})));
  EXPECT_FALSE(ints.MayContain(Value(int64_t{200})));
  EXPECT_TRUE(ints.MayContain(Value(int64_t{150})));
}

TEST(PartitionSynopsisTest, EncodeDecodeRoundTrip) {
  PartitionSynopsis s;
  s.begin_row = 4096;
  s.end_row = 8192;
  s.min_valid_from = -100;
  s.max_valid_to = 1'000'000;
  s.min_tt_start = 42;
  s.max_finite_tt_end = 77;
  s.current_rows = 12;
  s.last_close_seq = 9;
  s.live_rows = 4000;
  s.sketches[0].Add(Value(int64_t{5}));
  s.sketches[1].Add(Value("key"));
  std::string blob;
  s.EncodeTo(&blob);
  std::string_view in = blob;
  PartitionSynopsis d;
  ASSERT_TRUE(PartitionSynopsis::DecodeFrom(&in, &d));
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(d.begin_row, s.begin_row);
  EXPECT_EQ(d.end_row, s.end_row);
  EXPECT_EQ(d.min_valid_from, s.min_valid_from);
  EXPECT_EQ(d.max_valid_to, s.max_valid_to);
  EXPECT_EQ(d.min_tt_start, s.min_tt_start);
  EXPECT_EQ(d.max_finite_tt_end, s.max_finite_tt_end);
  EXPECT_EQ(d.current_rows, s.current_rows);
  EXPECT_EQ(d.last_close_seq, s.last_close_seq);
  EXPECT_EQ(d.live_rows, s.live_rows);
  EXPECT_TRUE(d.sketches[0].MayContain(Value(int64_t{5})));
  EXPECT_TRUE(d.sketches[1].MayContain(Value("key")));
  EXPECT_FALSE(d.sketches[1].MayContain(Value("other")));
  // Truncated input fails cleanly.
  std::string_view short_in(blob.data(), blob.size() - 1);
  PartitionSynopsis e;
  EXPECT_FALSE(PartitionSynopsis::DecodeFrom(&short_in, &e));
}

// --- Four relation classes through the query stack -------------------------

std::unique_ptr<Database> BuildFourClassDb(ManualClock* clock,
                                           const VersionStoreOptions& store,
                                           size_t max_threads) {
  DatabaseOptions options;
  options.clock = clock;
  options.store_options = store;
  options.max_threads = max_threads;
  std::unique_ptr<Database> db = std::move(*Database::Open(options));
  EXPECT_TRUE(
      db->Execute("create relation snap (name = string, n = int)").ok());
  EXPECT_TRUE(
      db->Execute("create rollback relation roll (name = string, n = int)")
          .ok());
  EXPECT_TRUE(
      db->Execute("create historical relation hist (name = string, n = int)")
          .ok());
  EXPECT_TRUE(
      db->Execute("create temporal relation bitemp (name = string, n = int)")
          .ok());
  Random rng(777);
  const char* relations[] = {"snap", "roll", "hist", "bitemp"};
  const bool has_valid[] = {false, false, true, true};
  for (int i = 0; i < 200; ++i) {
    clock->SetTime(Chronon(4000 + i * 2));
    size_t which = rng.Uniform(4);
    const std::string rel = relations[which];
    const std::string name = std::string("e") + std::to_string(rng.Uniform(12));
    if (rng.OneIn(5) && i > 20) {
      (void)db->Execute(std::string("delete ") + rel + " where " + rel + ".name = \"" +
                        name + "\"");
      continue;
    }
    std::string stmt = std::string("append to ") + rel + " (name = \"" + name +
                       "\", n = " +
                       std::to_string(static_cast<int64_t>(rng.Uniform(1000))) +
                       ")";
    if (has_valid[which]) {
      int64_t from = 3900 + static_cast<int64_t>(rng.Uniform(300));
      stmt += std::string(" valid from \"") + Chronon(from).ToString() +
              "\" to \"" +
              Chronon(from + 20 + static_cast<int64_t>(rng.Uniform(150)))
                  .ToString() +
              "\"";
    }
    EXPECT_TRUE(db->Execute(stmt).ok()) << stmt;
  }
  for (const char* rel : relations) {
    std::string range = "range of ";
    range += rel[0];
    range += " is ";
    range += rel;
    EXPECT_TRUE(db->Execute(range).ok()) << range;
  }
  return db;
}

std::vector<std::string> FourClassQueries() {
  const std::string kWhen =
      std::string(" when $ overlap \"") + Chronon(4010).ToString() + "\"";
  const std::string kAsOf =
      std::string(" as of \"") + Chronon(4100).ToString() + "\"";
  const std::string kWhere = " where $.n < 500";
  std::vector<std::string> queries;
  auto add = [&queries](char var, const std::string& clauses) {
    std::string q = "retrieve ($.name, $.n)" + clauses;
    std::string out;
    for (char c : q) {
      if (c == '$') {
        out += var;
      } else {
        out += c;
      }
    }
    queries.push_back(out);
  };
  add('s', "");
  add('s', kWhere);
  add('r', "");
  add('r', kAsOf);
  add('r', kWhere + kAsOf);
  add('h', "");
  add('h', kWhen);
  add('h', kWhere + kWhen);
  add('b', "");
  add('b', kAsOf);
  add('b', kWhen + kAsOf);
  add('b', kWhere + kWhen + kAsOf);
  return queries;
}

TEST(PartitionDatabaseTest, FourClassesMatchAcrossPartitionSizesAndThreads) {
  // Baseline: unpartitioned, sequential.  Time indexes off so the scans
  // take the sequential-sweep path pruning applies to.
  ManualClock base_clock;
  VersionStoreOptions base_options;
  base_options.partition_rows = 0;
  base_options.index_valid_time = false;
  base_options.index_txn_time = false;
  std::unique_ptr<Database> base_db =
      BuildFourClassDb(&base_clock, base_options, /*max_threads=*/1);
  const std::vector<std::string> queries = FourClassQueries();
  std::vector<Rowset> baseline;
  size_t nonempty = 0;
  for (const std::string& q : queries) {
    Result<Rowset> r = base_db->Query(q);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status().message();
    if (r->size() > 0) ++nonempty;
    baseline.push_back(std::move(*r));
  }
  ASSERT_GT(nonempty, queries.size() / 2);

  for (size_t partition_rows : {1u, 127u, 4096u}) {
    for (size_t threads : {1u, 4u}) {
      ManualClock clock;
      VersionStoreOptions options;
      options.partition_rows = partition_rows;
      options.index_valid_time = false;
      options.index_txn_time = false;
      if (threads > 1) {
        options.parallel_scan = true;
        options.parallel_min_rows = 1;
      }
      std::unique_ptr<Database> db =
          BuildFourClassDb(&clock, options, threads);
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        const std::string& q = queries[qi];
        Result<Rowset> got = db->Query(q);
        ASSERT_TRUE(got.ok()) << q << ": " << got.status().message();
        ASSERT_EQ(got->size(), baseline[qi].size())
            << q << " (partition_rows=" << partition_rows
            << ", threads=" << threads << ")";
        for (size_t i = 0; i < got->size(); ++i) {
          ASSERT_TRUE(got->rows()[i] == baseline[qi].rows()[i])
              << q << " row " << i << " (partition_rows=" << partition_rows
              << ", threads=" << threads << ")";
        }
      }
    }
  }
}

}  // namespace
}  // namespace temporadb
