#include "temporal/historical_relation.h"

#include <gtest/gtest.h>

#include "temporal/snapshot.h"
#include "tests/relation_test_util.h"

namespace temporadb {
namespace {

class HistoricalRelationTest : public testutil::RelationFixture {
 protected:
  HistoricalRelationTest() { MakeRelation(TemporalClass::kHistorical); }

  std::vector<std::string> RanksValidAt(const char* date,
                                        const char* name) {
    std::vector<std::string> ranks;
    StaticState slice = ValidTimeslice(*relation_->store(), Day(date));
    for (const auto& row : slice.rows) {
      if (row[0].AsString() == name) ranks.push_back(row[1].AsString());
    }
    return ranks;
  }
};

TEST_F(HistoricalRelationTest, AppendDefaultsValidFromNow) {
  ASSERT_TRUE(Append("01/01/80", "Merrie", "associate").ok());
  auto versions = VersionsOf("Merrie");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].valid, Since("01/01/80"));
  EXPECT_EQ(versions[0].txn, Period::All());  // No transaction time.
}

TEST_F(HistoricalRelationTest, RetroactiveAndPostactiveAppends) {
  // Recorded 08/25/77, true from 09/01/77 (postactive).
  ASSERT_TRUE(Append("08/25/77", "Merrie", "associate",
                     Since("09/01/77")).ok());
  // Recorded 01/10/83, true from 01/01/83 (retroactive).
  ASSERT_TRUE(Append("01/10/83", "Mike", "assistant",
                     Since("01/01/83")).ok());
  EXPECT_EQ(VersionsOf("Merrie")[0].valid, Since("09/01/77"));
  EXPECT_EQ(VersionsOf("Mike")[0].valid, Since("01/01/83"));
}

TEST_F(HistoricalRelationTest, DeleteTrimsTail) {
  ASSERT_TRUE(Append("01/01/83", "Mike", "assistant",
                     Since("01/01/83")).ok());
  // Mike leaves effective 03/01/84.
  Result<size_t> deleted = Delete("02/25/84", "Mike", Since("03/01/84"));
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 1u);
  auto versions = VersionsOf("Mike");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].valid, Between("01/01/83", "03/01/84"));
}

TEST_F(HistoricalRelationTest, DeleteTrimsHead) {
  ASSERT_TRUE(Append("01/01/80", "Ann", "full",
                     Between("01/01/80", "01/01/85")).ok());
  Result<size_t> deleted = Delete("06/01/80", "Ann",
                                  Between("01/01/79", "01/01/82"));
  ASSERT_TRUE(deleted.ok());
  auto versions = VersionsOf("Ann");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].valid, Between("01/01/82", "01/01/85"));
}

TEST_F(HistoricalRelationTest, DeleteInMiddleSplits) {
  // A sabbatical: delete the middle of the validity.
  ASSERT_TRUE(Append("01/01/80", "Ann", "full",
                     Between("01/01/80", "01/01/85")).ok());
  Result<size_t> deleted = Delete("06/01/80", "Ann",
                                  Between("01/01/82", "01/01/83"));
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 1u);
  auto versions = VersionsOf("Ann");
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].valid, Between("01/01/80", "01/01/82"));
  EXPECT_EQ(versions[1].valid, Between("01/01/83", "01/01/85"));
  // Timeslices agree.
  EXPECT_EQ(RanksValidAt("06/01/81", "Ann"), std::vector<std::string>{"full"});
  EXPECT_TRUE(RanksValidAt("06/01/82", "Ann").empty());
  EXPECT_EQ(RanksValidAt("06/01/84", "Ann"), std::vector<std::string>{"full"});
}

TEST_F(HistoricalRelationTest, DeleteWholeValidityRemovesFact) {
  ASSERT_TRUE(Append("01/01/80", "Ghost", "spooky",
                     Between("01/01/80", "01/01/81")).ok());
  Result<size_t> deleted =
      Delete("06/01/80", "Ghost", Period::All());
  ASSERT_TRUE(deleted.ok());
  // "There is no record kept of the errors that have been corrected."
  EXPECT_TRUE(VersionsOf("Ghost").empty());
  EXPECT_EQ(LiveCount(), 0u);
}

TEST_F(HistoricalRelationTest, ReplaceSplitsAroundPeriod) {
  // The paper's Merrie history: associate from 09/01/77, promoted
  // retroactively from 12/01/82.
  ASSERT_TRUE(Append("08/25/77", "Merrie", "associate",
                     Since("09/01/77")).ok());
  Result<size_t> replaced =
      Replace("12/15/82", "Merrie", "full", Since("12/01/82"));
  ASSERT_TRUE(replaced.ok());
  auto versions = VersionsOf("Merrie");
  ASSERT_EQ(versions.size(), 2u);
  // Figure 6's two Merrie rows.
  EXPECT_EQ(versions[0].values[1].AsString(), "associate");
  EXPECT_EQ(versions[0].valid, Between("09/01/77", "12/01/82"));
  EXPECT_EQ(versions[1].values[1].AsString(), "full");
  EXPECT_EQ(versions[1].valid, Since("12/01/82"));
}

TEST_F(HistoricalRelationTest, ReplaceMiddleYieldsThreeFragments) {
  ASSERT_TRUE(Append("01/01/80", "Ann", "lecturer",
                     Between("01/01/80", "01/01/90")).ok());
  // Visiting professor for 1983 only.
  ASSERT_TRUE(Replace("06/01/83", "Ann", "visiting",
                      Between("01/01/83", "01/01/84")).ok());
  auto versions = VersionsOf("Ann");
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(RanksValidAt("06/01/82", "Ann"),
            std::vector<std::string>{"lecturer"});
  EXPECT_EQ(RanksValidAt("06/01/83", "Ann"),
            std::vector<std::string>{"visiting"});
  EXPECT_EQ(RanksValidAt("06/01/85", "Ann"),
            std::vector<std::string>{"lecturer"});
}

TEST_F(HistoricalRelationTest, CorrectionLeavesNoTrace) {
  // Tom recorded as full, corrected to associate: the erroneous belief is
  // unrecoverable afterwards (contrast with the temporal relation).
  ASSERT_TRUE(Append("12/01/82", "Tom", "full", Since("12/05/82")).ok());
  ASSERT_TRUE(Replace("12/07/82", "Tom", "associate",
                      Since("12/05/82")).ok());
  auto versions = VersionsOf("Tom");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].values[1].AsString(), "associate");
  EXPECT_EQ(versions[0].valid, Since("12/05/82"));
}

TEST_F(HistoricalRelationTest, CorrectEraseSupported) {
  ASSERT_TRUE(Append("01/01/80", "Oops", "bad").ok());
  size_t count = 0;
  ASSERT_TRUE(AtDate("02/01/80", [&](Transaction* txn) -> Status {
                TDB_ASSIGN_OR_RETURN(count,
                                     relation_->CorrectErase(txn,
                                                             NameIs("Oops")));
                return Status::OK();
              }).ok());
  EXPECT_EQ(count, 1u);
  EXPECT_TRUE(VersionsOf("Oops").empty());
}

TEST_F(HistoricalRelationTest, NoRollbackPossible) {
  // Historical relations keep no transaction time: every version reports
  // Period::All() and past database states are unrecoverable by design.
  ASSERT_TRUE(Append("01/01/80", "Ann", "a").ok());
  ASSERT_TRUE(Replace("02/01/80", "Ann", "b", Since("01/01/80")).ok());
  for (const auto& v : VersionsOf("Ann")) {
    EXPECT_EQ(v.txn, Period::All());
  }
}

TEST_F(HistoricalRelationTest, EmptyValidClauseRejected) {
  Status s = AtDate("01/01/80", [&](Transaction* txn) {
    return relation_->Append(txn, {Value("x"), Value("y")},
                             Period(Chronon(10), Chronon(10)));
  });
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST_F(HistoricalRelationTest, AbortRestoresSplits) {
  ASSERT_TRUE(Append("01/01/80", "Ann", "full",
                     Between("01/01/80", "01/01/85")).ok());
  clock_.SetDate("06/01/80").ok();
  Result<Transaction*> txn = manager_.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(relation_->DeleteWhere(*txn, NameIs("Ann"),
                                     Between("01/01/82", "01/01/83"))
                  .ok());
  ASSERT_TRUE(manager_.Abort(*txn).ok());
  auto versions = VersionsOf("Ann");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].valid, Between("01/01/80", "01/01/85"));
}

TEST_F(HistoricalRelationTest, EventModelRequiresInstants) {
  MakeRelation(TemporalClass::kHistorical, TemporalDataModel::kEvent);
  // Interval valid clause rejected on an event relation.
  Status s = Append("01/01/80", "Sign", "ceremony",
                    Between("01/01/80", "02/01/80"));
  EXPECT_TRUE(s.IsInvalidArgument());
  // Instant accepted.
  ASSERT_TRUE(Append("01/01/80", "Sign", "ceremony",
                     Period::At(Day("01/05/80"))).ok());
  auto versions = VersionsOf("Sign");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_TRUE(versions[0].valid.IsInstant());
  // Default valid on an event relation is "at now".
  ASSERT_TRUE(Append("02/01/80", "Sign2", "x").ok());
  EXPECT_EQ(VersionsOf("Sign2")[0].valid, Period::At(Day("02/01/80")));
}

}  // namespace
}  // namespace temporadb
