#include "temporal/rollback_relation.h"

#include <gtest/gtest.h>

#include "temporal/snapshot.h"
#include "tests/relation_test_util.h"

namespace temporadb {
namespace {

class RollbackRelationTest : public testutil::RelationFixture {
 protected:
  RollbackRelationTest() { MakeRelation(TemporalClass::kRollback); }

  std::vector<std::string> NamesAsOf(const char* date) {
    StaticState state = RollbackSlice(*relation_->store(), Day(date));
    std::vector<std::string> names;
    for (const auto& row : state.rows) names.push_back(row[0].AsString());
    return names;
  }
};

TEST_F(RollbackRelationTest, AppendStampsTransactionTime) {
  ASSERT_TRUE(Append("08/25/77", "Merrie", "associate").ok());
  auto versions = VersionsOf("Merrie");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].txn, Since("08/25/77"));
  EXPECT_EQ(versions[0].valid, Period::All());  // No valid-time semantics.
}

TEST_F(RollbackRelationTest, ValidClauseRejected) {
  EXPECT_TRUE(Append("01/01/80", "Ann", "full", Since("01/01/79"))
                  .IsNotSupported());
  ASSERT_TRUE(Append("01/01/80", "Ann", "full").ok());
  EXPECT_TRUE(
      Delete("02/01/80", "Ann", Since("01/01/79")).status().IsNotSupported());
  EXPECT_TRUE(Replace("02/01/80", "Ann", "emeritus", Since("01/01/79"))
                  .status()
                  .IsNotSupported());
}

TEST_F(RollbackRelationTest, DeleteClosesButNeverForgets) {
  ASSERT_TRUE(Append("01/10/83", "Mike", "assistant").ok());
  Result<size_t> deleted = Delete("02/25/84", "Mike");
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 1u);
  auto versions = VersionsOf("Mike");
  ASSERT_EQ(versions.size(), 1u);  // Still stored!
  EXPECT_EQ(versions[0].txn, Between("01/10/83", "02/25/84"));
  // Errors "can sometimes be overridden ... but they cannot be forgotten".
  EXPECT_EQ(NamesAsOf("06/01/83"), std::vector<std::string>{"Mike"});
  EXPECT_TRUE(NamesAsOf("03/01/84").empty());
}

TEST_F(RollbackRelationTest, ReplaceAppendsNewStaticState) {
  ASSERT_TRUE(Append("08/25/77", "Merrie", "associate").ok());
  Result<size_t> replaced = Replace("12/15/82", "Merrie", "full");
  ASSERT_TRUE(replaced.ok());
  auto versions = VersionsOf("Merrie");
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].values[1].AsString(), "associate");
  EXPECT_EQ(versions[0].txn, Between("08/25/77", "12/15/82"));
  EXPECT_EQ(versions[1].values[1].AsString(), "full");
  EXPECT_EQ(versions[1].txn, Since("12/15/82"));
}

TEST_F(RollbackRelationTest, RollbackToIncorrectPastState) {
  // "Static rollback DBMS's can rollback to an incorrect previous static
  // relation" — the error stays visible at its historical position.
  ASSERT_TRUE(Append("12/01/82", "Tom", "full").ok());  // Wrong rank.
  ASSERT_TRUE(Replace("12/07/82", "Tom", "associate").ok());
  StaticState before = RollbackSlice(*relation_->store(), Day("12/03/82"));
  ASSERT_EQ(before.rows.size(), 1u);
  EXPECT_EQ(before.rows[0][1].AsString(), "full");  // The error, preserved.
  StaticState after = RollbackSlice(*relation_->store(), Day("12/08/82"));
  ASSERT_EQ(after.rows.size(), 1u);
  EXPECT_EQ(after.rows[0][1].AsString(), "associate");
}

TEST_F(RollbackRelationTest, CommittedVersionsAreImmutable) {
  ASSERT_TRUE(Append("01/01/80", "Ann", "full").ok());
  ASSERT_TRUE(Delete("02/01/80", "Ann").status().ok());
  // Deleting again finds nothing current.
  Result<size_t> again = Delete("03/01/80", "Ann");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
  // The closed version still has its original period.
  EXPECT_EQ(VersionsOf("Ann")[0].txn, Between("01/01/80", "02/01/80"));
}

TEST_F(RollbackRelationTest, RollbackStatesSequence) {
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  ASSERT_TRUE(Append("02/01/80", "b", "2").ok());
  ASSERT_TRUE(Delete("03/01/80", "a").status().ok());
  std::vector<StaticState> states = RollbackStates(*relation_->store());
  ASSERT_EQ(states.size(), 3u);
  EXPECT_EQ(states[0].rows.size(), 1u);
  EXPECT_EQ(states[1].rows.size(), 2u);
  EXPECT_EQ(states[2].rows.size(), 1u);
  EXPECT_EQ(states[2].rows[0][0].AsString(), "b");
}

TEST_F(RollbackRelationTest, SameDayInsertAndDeleteInvisible) {
  ASSERT_TRUE(Append("05/05/80", "Flash", "gone").ok());
  ASSERT_TRUE(Delete("05/05/80", "Flash").status().ok());
  // The version never covered a stored-state chronon.
  EXPECT_TRUE(NamesAsOf("05/05/80").empty());
  EXPECT_TRUE(NamesAsOf("05/06/80").empty());
}

TEST_F(RollbackRelationTest, ReplaceComputedFromOldValues) {
  ASSERT_TRUE(Append("01/01/80", "Ann", "rank0").ok());
  UpdateSpec updates{UpdateAction{
      1, [](const std::vector<Value>& old) -> Result<Value> {
        return Value(old[1].AsString() + "!");
      }}};
  ASSERT_TRUE(AtDate("02/01/80", [&](Transaction* txn) -> Status {
                Result<size_t> n = relation_->ReplaceWhere(
                    txn, NameIs("Ann"), updates, std::nullopt);
                return n.ok() ? Status::OK() : n.status();
              }).ok());
  auto versions = VersionsOf("Ann");
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[1].values[1].AsString(), "rank0!");
}

TEST_F(RollbackRelationTest, AbortLeavesNoTrace) {
  ASSERT_TRUE(Append("01/01/80", "Ann", "full").ok());
  clock_.SetDate("02/01/80").ok();
  Result<Transaction*> txn = manager_.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(
      relation_->DeleteWhere(*txn, NameIs("Ann"), std::nullopt).ok());
  ASSERT_TRUE(relation_->Append(*txn, {Value("Bob"), Value("new")},
                                std::nullopt)
                  .ok());
  ASSERT_TRUE(manager_.Abort(*txn).ok());
  EXPECT_EQ(VersionsOf("Ann")[0].txn, Since("01/01/80"));
  EXPECT_TRUE(VersionsOf("Bob").empty());
  EXPECT_EQ(NamesAsOf("03/01/80"), std::vector<std::string>{"Ann"});
}

}  // namespace
}  // namespace temporadb
