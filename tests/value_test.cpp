#include "common/value.h"

#include <gtest/gtest.h>

#include <set>

namespace temporadb {
namespace {

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{42}).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(3.5).AsFloat(), 3.5);
  EXPECT_EQ(Value("hello").AsString(), "hello");
  EXPECT_EQ(Value(true).AsBool(), true);
  Date d = *Date::Parse("12/15/82");
  EXPECT_EQ(Value(d).AsDate(), d);
}

TEST(Value, Equality) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));  // Different representations.
  EXPECT_EQ(Value("a"), Value(std::string("a")));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(Value, CompareNumericPromotion) {
  Result<int> c = Value::Compare(Value(int64_t{3}), Value(3.0));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 0);
  EXPECT_EQ(*Value::Compare(Value(int64_t{2}), Value(2.5)), -1);
  EXPECT_EQ(*Value::Compare(Value(2.5), Value(int64_t{2})), 1);
}

TEST(Value, CompareStringsAndDates) {
  EXPECT_EQ(*Value::Compare(Value("abc"), Value("abd")), -1);
  Date d1 = *Date::Parse("09/01/77");
  Date d2 = *Date::Parse("12/01/82");
  EXPECT_EQ(*Value::Compare(Value(d1), Value(d2)), -1);
  EXPECT_EQ(*Value::Compare(Value(d2), Value(d2)), 0);
}

TEST(Value, CompareCrossTypeIsError) {
  EXPECT_FALSE(Value::Compare(Value("a"), Value(int64_t{1})).ok());
  EXPECT_FALSE(
      Value::Compare(Value(*Date::Parse("09/01/77")), Value("09/01/77")).ok());
}

TEST(Value, CompareNulls) {
  EXPECT_EQ(*Value::Compare(Value::Null(), Value::Null()), 0);
  EXPECT_EQ(*Value::Compare(Value::Null(), Value(int64_t{1})), -1);
  EXPECT_EQ(*Value::Compare(Value(int64_t{1}), Value::Null()), 1);
}

TEST(Value, TotalOrderAcrossTypes) {
  // NULL < bool < numeric < string < date.
  std::vector<Value> values{Value(*Date::Parse("01/01/80")), Value("s"),
                            Value(int64_t{5}), Value(true), Value::Null()};
  std::sort(values.begin(), values.end(),
            [](const Value& a, const Value& b) { return a < b; });
  EXPECT_TRUE(values[0].is_null());
  EXPECT_EQ(values[1].type(), ValueType::kBool);
  EXPECT_EQ(values[2].type(), ValueType::kInt);
  EXPECT_EQ(values[3].type(), ValueType::kString);
  EXPECT_EQ(values[4].type(), ValueType::kDate);
}

TEST(Value, IntFloatInterleaveInOrder) {
  EXPECT_TRUE(Value(int64_t{1}) < Value(1.5));
  EXPECT_TRUE(Value(1.5) < Value(int64_t{2}));
}

TEST(Value, HashEqualValuesAgree) {
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(int64_t{7}).Hash());
  // Type participates in the hash.
  EXPECT_NE(Value(int64_t{0}).Hash(), Value(false).Hash());
}

TEST(Value, HashSpreads) {
  std::set<size_t> hashes;
  for (int64_t i = 0; i < 1000; ++i) {
    hashes.insert(Value(i).Hash());
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(Value, AsNumeric) {
  EXPECT_DOUBLE_EQ(*Value(int64_t{4}).AsNumeric(), 4.0);
  EXPECT_DOUBLE_EQ(*Value(2.5).AsNumeric(), 2.5);
  EXPECT_FALSE(Value("4").AsNumeric().ok());
  EXPECT_FALSE(Value::Null().AsNumeric().ok());
}

TEST(Value, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value("x").ToString(), "x");
  EXPECT_EQ(Value(*Date::Parse("12/15/82")).ToString(), "12/15/82");
}

TEST(ValueTypeName, Coverage) {
  EXPECT_EQ(ValueTypeName(ValueType::kNull), "null");
  EXPECT_EQ(ValueTypeName(ValueType::kInt), "int");
  EXPECT_EQ(ValueTypeName(ValueType::kFloat), "float");
  EXPECT_EQ(ValueTypeName(ValueType::kString), "string");
  EXPECT_EQ(ValueTypeName(ValueType::kDate), "date");
  EXPECT_EQ(ValueTypeName(ValueType::kBool), "bool");
}

}  // namespace
}  // namespace temporadb
