#include "rel/expression.h"

#include <gtest/gtest.h>

namespace temporadb {
namespace {

std::vector<Value> Row3() {
  return {Value("Merrie"), Value(int64_t{40000}), Value(2.5)};
}

TEST(Expression, LiteralEvaluates) {
  ExprPtr e = MakeLiteral(Value(int64_t{7}));
  EXPECT_EQ(e->Eval({})->AsInt(), 7);
  EXPECT_EQ(e->ToString(), "7");
  EXPECT_EQ(MakeLiteral(Value("s"))->ToString(), "\"s\"");
}

TEST(Expression, ColumnRef) {
  ExprPtr e = MakeColumnRef(0, "f.name");
  EXPECT_EQ(e->Eval(Row3())->AsString(), "Merrie");
  EXPECT_EQ(e->ToString(), "f.name");
  EXPECT_FALSE(MakeColumnRef(9, "oops")->Eval(Row3()).ok());
}

TEST(Expression, Comparisons) {
  auto cmp = [&](CompareOp op, Value l, Value r) {
    return MakeCompare(op, MakeLiteral(l), MakeLiteral(r))->Eval({})->AsBool();
  };
  EXPECT_TRUE(cmp(CompareOp::kEq, Value(int64_t{3}), Value(int64_t{3})));
  EXPECT_TRUE(cmp(CompareOp::kNe, Value("a"), Value("b")));
  EXPECT_TRUE(cmp(CompareOp::kLt, Value(int64_t{2}), Value(2.5)));
  EXPECT_TRUE(cmp(CompareOp::kLe, Value(int64_t{2}), Value(int64_t{2})));
  EXPECT_TRUE(cmp(CompareOp::kGt, Value("b"), Value("a")));
  EXPECT_TRUE(cmp(CompareOp::kGe, Value(2.5), Value(2.5)));
  EXPECT_FALSE(cmp(CompareOp::kLt, Value(int64_t{5}), Value(int64_t{2})));
}

TEST(Expression, ComparisonTypeErrors) {
  ExprPtr e = MakeCompare(CompareOp::kEq, MakeLiteral(Value("s")),
                          MakeLiteral(Value(int64_t{1})));
  EXPECT_FALSE(e->Eval({}).ok());
}

TEST(Expression, IntArithmetic) {
  auto arith = [&](ArithOp op, int64_t l, int64_t r) {
    return MakeArith(op, MakeLiteral(Value(l)), MakeLiteral(Value(r)))
        ->Eval({});
  };
  EXPECT_EQ(arith(ArithOp::kAdd, 2, 3)->AsInt(), 5);
  EXPECT_EQ(arith(ArithOp::kSub, 2, 3)->AsInt(), -1);
  EXPECT_EQ(arith(ArithOp::kMul, 4, 3)->AsInt(), 12);
  EXPECT_EQ(arith(ArithOp::kDiv, 7, 2)->AsInt(), 3);
  EXPECT_EQ(arith(ArithOp::kMod, 7, 2)->AsInt(), 1);
  EXPECT_FALSE(arith(ArithOp::kDiv, 1, 0).ok());
  EXPECT_FALSE(arith(ArithOp::kMod, 1, 0).ok());
}

TEST(Expression, FloatArithmeticPromotes) {
  ExprPtr e = MakeArith(ArithOp::kMul, MakeLiteral(Value(int64_t{40000})),
                        MakeLiteral(Value(1.1)));
  Result<Value> v = e->Eval({});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->type(), ValueType::kFloat);
  EXPECT_NEAR(v->AsFloat(), 44000.0, 1e-6);
}

TEST(Expression, LogicalOps) {
  ExprPtr t = MakeLiteral(Value(true));
  ExprPtr f = MakeLiteral(Value(false));
  EXPECT_TRUE(MakeLogical(LogicalOp::kAnd, t, t)->Eval({})->AsBool());
  EXPECT_FALSE(MakeLogical(LogicalOp::kAnd, t, f)->Eval({})->AsBool());
  EXPECT_TRUE(MakeLogical(LogicalOp::kOr, f, t)->Eval({})->AsBool());
  EXPECT_FALSE(MakeLogical(LogicalOp::kOr, f, f)->Eval({})->AsBool());
  EXPECT_FALSE(MakeNot(t)->Eval({})->AsBool());
  EXPECT_TRUE(MakeNot(f)->Eval({})->AsBool());
  // Non-boolean operands are errors.
  EXPECT_FALSE(
      MakeLogical(LogicalOp::kAnd, t, MakeLiteral(Value(int64_t{1})))
          ->Eval({})
          .ok());
  EXPECT_FALSE(MakeNot(MakeLiteral(Value(int64_t{1})))->Eval({}).ok());
}

TEST(Expression, ComposedPredicate) {
  // name = "Merrie" and salary * 1.1 > 42000
  ExprPtr pred = MakeLogical(
      LogicalOp::kAnd,
      MakeCompare(CompareOp::kEq, MakeColumnRef(0, "name"),
                  MakeLiteral(Value("Merrie"))),
      MakeCompare(CompareOp::kGt,
                  MakeArith(ArithOp::kMul, MakeColumnRef(1, "salary"),
                            MakeLiteral(Value(1.1))),
                  MakeLiteral(Value(int64_t{42000}))));
  Result<bool> b = EvalPredicate(*pred, Row3());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*b);
  std::vector<Value> other{Value("Tom"), Value(int64_t{40000}), Value(0.0)};
  EXPECT_FALSE(*EvalPredicate(*pred, other));
}

TEST(Expression, EvalPredicateRequiresBool) {
  EXPECT_FALSE(EvalPredicate(*MakeLiteral(Value(int64_t{1})), {}).ok());
}

TEST(Expression, DateComparisons) {
  Value d1{*Date::Parse("09/01/77")};
  Value d2{*Date::Parse("12/01/82")};
  EXPECT_TRUE(MakeCompare(CompareOp::kLt, MakeLiteral(d1), MakeLiteral(d2))
                  ->Eval({})
                  ->AsBool());
}

TEST(Expression, ToStringReadable) {
  ExprPtr e = MakeCompare(CompareOp::kGe, MakeColumnRef(1, "salary"),
                          MakeLiteral(Value(int64_t{10})));
  EXPECT_EQ(e->ToString(), "(salary >= 10)");
  EXPECT_EQ(MakeNot(e)->ToString(), "not (salary >= 10)");
}

}  // namespace
}  // namespace temporadb
