// MVCC read-snapshot tests: pinned readers stay bit-identical during
// concurrent committed writes, chronon columns stay in lock-step with the
// slots across corrections/compaction/reopen, and in-place history rewrites
// are fenced while snapshots are live.
//
// The concurrent tests here also run under TSan in CI (the job's regex
// matches "mvcc"); they are the data-race gate for the snapshot read path.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"

namespace temporadb {
namespace {

// Canonical multiset of (values, valid) — used to compare result sets whose
// transaction periods legitimately differ (a snapshot sees an open version
// where a later `as of` query sees the same version already closed).
std::vector<std::string> ValuesAndValid(const Rowset& rows) {
  std::vector<std::string> out;
  for (const Row& row : rows.rows()) {
    std::string s;
    for (const Value& v : row.values) s += v.ToString() + "|";
    if (row.valid.has_value()) s += row.valid->ToString();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class MvccTest : public ::testing::Test {
 protected:
  MvccTest() {
    dir_ = testing::TempDir() + "/tdb_mvcc_" + std::to_string(::getpid()) +
           "_" + std::to_string(counter_++);
    std::filesystem::remove_all(dir_);
    EXPECT_TRUE(clock_.SetDate("01/01/80").ok());
  }
  ~MvccTest() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<Database> Open(DatabaseOptions options = {}) {
    options.clock = &clock_;
    Result<std::unique_ptr<Database>> db = Database::Open(std::move(options));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(*db);
  }

  static int counter_;
  std::string dir_;
  ManualClock clock_;
};

int MvccTest::counter_ = 0;

// ---------------------------------------------------------------------------
// Tentpole acceptance: a reader pinned to a snapshot returns bit-identical
// results before, during, and after concurrent committed writes, at reader
// thread counts {2, 4, 8}, and the pinned view equals a quiesced re-run at
// the pin's timestamp.
// ---------------------------------------------------------------------------

TEST_F(MvccTest, PinnedReadersAreBitIdenticalDuringConcurrentCommits) {
  auto db = Open();
  ASSERT_TRUE(db->Execute("create temporal relation emp "
                          "(name = string, rank = string)")
                  .ok());
  ASSERT_TRUE(db->Execute("range of e is emp").ok());
  for (int i = 0; i < 60; ++i) {
    if (i % 10 == 0) clock_.AdvanceDays(1);
    ASSERT_TRUE(db->Execute("append to emp (name = \"s" + std::to_string(i) +
                            "\", rank = \"seed\")")
                    .ok());
  }
  // A few pre-pin closes so the baseline itself contains closed history.
  ASSERT_TRUE(db->Execute("delete e where e.name = \"s0\"").ok());
  ASSERT_TRUE(db->Execute("delete e where e.name = \"s1\"").ok());

  Result<ReadSnapshot> snap = db->BeginReadSnapshot();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  const std::string query = "retrieve (e.name, e.rank)";
  Result<Rowset> baseline = db->QueryAtSnapshot(*snap, query);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_GT(baseline->size(), 0u);
  const Chronon pin_ts = snap->timestamp();

  // Single writer thread: sustained committed appends and deletes, each
  // commit on a strictly later day than the pin.
  std::atomic<bool> stop{false};
  std::atomic<int> iterations{0};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      clock_.AdvanceDays(1);
      ASSERT_TRUE(db->Execute("append to emp (name = \"w" +
                              std::to_string(i) + "\", rank = \"new\")")
                      .ok());
      ASSERT_TRUE(
          db->Execute("delete e where e.name = \"s" +
                      std::to_string(2 + (i % 58)) + "\"")
              .ok());
      iterations.store(++i, std::memory_order_relaxed);
    }
  });

  // Reader fleets at 2, 4, and 8 threads, all while the writer churns.
  for (int threads : {2, 4, 8}) {
    // Make sure writes really are interleaving with this fleet.
    const int start_iter = iterations.load(std::memory_order_relaxed);
    std::vector<std::thread> readers;
    std::atomic<int> mismatches{0};
    readers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      readers.emplace_back([&] {
        for (int round = 0; round < 25; ++round) {
          Result<Rowset> got = db->QueryAtSnapshot(*snap, query);
          if (!got.ok() || !Rowset::SameContent(*got, *baseline)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    for (std::thread& r : readers) r.join();
    EXPECT_EQ(mismatches.load(), 0) << "with " << threads << " readers";
    while (iterations.load(std::memory_order_relaxed) < start_iter + 3) {
      std::this_thread::yield();
    }
  }

  stop.store(true);
  writer.join();
  EXPECT_GT(iterations.load(), 0);

  // Still identical after the writer quiesces...
  Result<Rowset> after = db->QueryAtSnapshot(*snap, query);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(Rowset::SameContent(*after, *baseline));

  // ...and equal to a quiesced re-run `as of` the pin's timestamp (modulo
  // transaction periods: versions open at the pin have since been closed).
  Result<Rowset> asof = db->Query(query + " as of \"" +
                                  Date(pin_ts).ToString() + "\"");
  ASSERT_TRUE(asof.ok()) << asof.status().ToString();
  EXPECT_EQ(ValuesAndValid(*asof), ValuesAndValid(*baseline));

  // Releasing the pin surfaces the writer's world.
  snap->Release();
  Result<Rowset> fresh = db->Query(query);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(Rowset::SameContent(*fresh, *baseline));
}

TEST_F(MvccTest, SameDayCommitsStayInvisibleToAnEarlierPin) {
  // Chronons are day-granular, so visibility cannot ride on timestamps
  // alone: a close committed *after* the pin but on the *same day* must
  // stay invisible.  This is what the close-sequence stamps are for.
  auto db = Open();
  ASSERT_TRUE(
      db->Execute("create temporal relation t (name = string)").ok());
  ASSERT_TRUE(db->Execute("range of x is t").ok());
  ASSERT_TRUE(db->Execute("append to t (name = \"a\")").ok());

  Result<ReadSnapshot> snap = db->BeginReadSnapshot();
  ASSERT_TRUE(snap.ok());
  Result<Rowset> before = db->QueryAtSnapshot(*snap, "retrieve (x.name)");
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->size(), 1u);

  // Same day, post-pin: close "a", append "b".
  ASSERT_TRUE(db->Execute("delete x where x.name = \"a\"").ok());
  ASSERT_TRUE(db->Execute("append to t (name = \"b\")").ok());

  Result<Rowset> pinned = db->QueryAtSnapshot(*snap, "retrieve (x.name)");
  ASSERT_TRUE(pinned.ok());
  EXPECT_TRUE(Rowset::SameContent(*pinned, *before));
  ASSERT_EQ(pinned->size(), 1u);
  EXPECT_EQ(pinned->rows()[0].values[0].ToString(), "a");

  snap->Release();
  Result<Rowset> fresh = db->Query("retrieve (x.name)");
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(fresh->size(), 1u);
  EXPECT_EQ(fresh->rows()[0].values[0].ToString(), "b");
}

TEST_F(MvccTest, PinSurvivesSlabAndColumnGrowth) {
  // Growth past the 1024-row slab boundary (and several column-buffer
  // doublings) must not move storage out from under a pinned reader.
  auto db = Open();
  ASSERT_TRUE(
      db->Execute("create temporal relation t (name = string)").ok());
  ASSERT_TRUE(db->Execute("range of x is t").ok());
  ASSERT_TRUE(db->Execute("append to t (name = \"first\")").ok());

  Result<ReadSnapshot> snap = db->BeginReadSnapshot();
  ASSERT_TRUE(snap.ok());
  Result<Rowset> baseline = db->QueryAtSnapshot(*snap, "retrieve (x.name)");
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->size(), 1u);

  clock_.AdvanceDays(1);
  for (int i = 0; i < 2200; ++i) {
    ASSERT_TRUE(db->Execute("append to t (name = \"g" + std::to_string(i) +
                            "\")")
                    .ok());
  }
  Result<Rowset> pinned = db->QueryAtSnapshot(*snap, "retrieve (x.name)");
  ASSERT_TRUE(pinned.ok());
  EXPECT_TRUE(Rowset::SameContent(*pinned, *baseline));
  snap->Release();
  Result<Rowset> fresh = db->Query("retrieve (x.name)");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->size(), 2201u);
}

// ---------------------------------------------------------------------------
// Correction / compaction / DDL fences.
// ---------------------------------------------------------------------------

TEST_F(MvccTest, InPlaceRewritesAreFencedWhileSnapshotsArePinned) {
  DatabaseOptions options;
  options.path = dir_;
  auto db = Open(std::move(options));
  ASSERT_TRUE(
      db->Execute("create historical relation h (name = string)").ok());
  ASSERT_TRUE(db->Execute("range of x is h").ok());
  ASSERT_TRUE(db->Execute("append to h (name = \"keep\")").ok());
  ASSERT_TRUE(db->Execute("append to h (name = \"erase\")").ok());

  Result<ReadSnapshot> snap = db->BeginReadSnapshot();
  ASSERT_TRUE(snap.ok());

  // Historical correction: an in-place rewrite, refused while pinned.
  Result<tquel::ExecResult> correct =
      db->Execute("correct x where x.name = \"erase\"");
  EXPECT_EQ(correct.status().code(), StatusCode::kFailedPrecondition);

  // Compacting checkpoint renumbers rows: refused.  (A plain checkpoint is
  // append-only bookkeeping and stays legal.)
  EXPECT_EQ(db->Checkpoint(/*compact=*/true).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(db->Checkpoint(/*compact=*/false).ok());

  // DDL invalidates the snapshot's frozen catalog: refused.
  EXPECT_EQ(db->Execute("create static relation s2 (v = string)")
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(db->Execute("destroy h").status().code(),
            StatusCode::kFailedPrecondition);

  // The failed correction must not have leaked a raised fence: a fresh pin
  // still succeeds, and after release everything proceeds.
  snap->Release();
  ASSERT_TRUE(db->Execute("correct x where x.name = \"erase\"").ok());
  ASSERT_TRUE(db->Checkpoint(/*compact=*/true).ok());
  ASSERT_TRUE(db->Execute("create static relation s2 (v = string)").ok());
  Result<Rowset> rows = db->Query("retrieve (x.name)");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->rows()[0].values[0].ToString(), "keep");
}

// ---------------------------------------------------------------------------
// Differential: chronon columns mirror the slots exactly across physical
// corrections, tombstone compaction, and reopen-from-WAL; row-mode and
// batch-mode scans agree at 1 and 4 scan threads.
// ---------------------------------------------------------------------------

// Asserts every chronon column entry equals the corresponding slot field.
void ExpectColumnsMirrorSlots(const VersionStore* store) {
  const int64_t* vf = store->chronon_valid_from();
  const int64_t* vt = store->chronon_valid_to();
  const int64_t* ts = store->chronon_tt_start();
  const int64_t* te = store->chronon_tt_end();
  const uint8_t* live = store->chronon_live();
  store->ForEachSlot([&](RowId row, const BitemporalTuple* tuple) {
    if (tuple == nullptr) {
      EXPECT_EQ(live[row], 0) << "row " << row;
      return;
    }
    EXPECT_EQ(live[row], 1) << "row " << row;
    EXPECT_EQ(vf[row], tuple->valid.begin().days()) << "row " << row;
    EXPECT_EQ(vt[row], tuple->valid.end().days()) << "row " << row;
    EXPECT_EQ(ts[row], tuple->txn.begin().days()) << "row " << row;
    EXPECT_EQ(te[row], tuple->txn.end().days()) << "row " << row;
  });
}

TEST_F(MvccTest, ColumnsMirrorSlotsAcrossCorrectionsCompactionAndReopen) {
  DatabaseOptions base;
  base.path = dir_;
  {
    auto db = Open(base);
    ASSERT_TRUE(db->Execute("create historical relation h "
                            "(name = string, note = string)")
                    .ok());
    ASSERT_TRUE(db->Execute("create temporal relation t (name = string)")
                    .ok());
    ASSERT_TRUE(db->Execute("range of x is h").ok());
    ASSERT_TRUE(db->Execute("range of y is t").ok());
    for (int i = 0; i < 40; ++i) {
      if (i % 7 == 0) clock_.AdvanceDays(1);
      std::string n = std::to_string(i);
      ASSERT_TRUE(db->Execute("append to h (name = \"h" + n +
                              "\", note = \"x\") valid from \"01/01/7" +
                              std::to_string(i % 10) + "\" to \"inf\"")
                      .ok());
      ASSERT_TRUE(db->Execute("append to t (name = \"t" + n + "\")").ok());
    }
    // Physical corrections punch tombstones into the historical store.
    for (int i = 0; i < 40; i += 3) {
      ASSERT_TRUE(db->Execute("correct x where x.name = \"h" +
                              std::to_string(i) + "\"")
                      .ok());
    }
    // Temporal closes exercise the in-place tt_end path.
    for (int i = 0; i < 40; i += 4) {
      clock_.AdvanceDays(1);
      ASSERT_TRUE(db->Execute("delete y where y.name = \"t" +
                              std::to_string(i) + "\"")
                      .ok());
    }
    ExpectColumnsMirrorSlots((*db->GetRelation("h"))->store());
    ExpectColumnsMirrorSlots((*db->GetRelation("t"))->store());
    // Compaction renumbers rows and must resync every column.
    ASSERT_TRUE(db->Checkpoint(/*compact=*/true).ok());
    ExpectColumnsMirrorSlots((*db->GetRelation("h"))->store());
    // Post-compaction appends land in the WAL for the reopen below.
    clock_.AdvanceDays(1);
    ASSERT_TRUE(db->Execute("append to t (name = \"late\")").ok());
  }  // "Crash": reopen loads the checkpoint and replays the WAL tail.

  // Reopen at scan-thread counts {1, 4}, row-mode and batch-mode, and check
  // that every configuration sees identical content and synced columns.
  std::optional<Rowset> reference_h, reference_t;
  for (int threads : {1, 4}) {
    for (bool batch : {false, true}) {
      DatabaseOptions options = base;
      options.store_options.batch_exec = batch;
      options.store_options.parallel_scan = threads > 1;
      options.max_threads = threads;
      auto db = Open(options);
      ExpectColumnsMirrorSlots((*db->GetRelation("h"))->store());
      ExpectColumnsMirrorSlots((*db->GetRelation("t"))->store());
      ASSERT_TRUE(db->Execute("range of x is h").ok());
      ASSERT_TRUE(db->Execute("range of y is t").ok());
      Result<Rowset> h = db->Query("retrieve (x.name)");
      Result<Rowset> t = db->Query(
          "retrieve (y.name) as of \"" + Date(clock_.Now()).ToString() +
          "\"");
      ASSERT_TRUE(h.ok()) << h.status().ToString();
      ASSERT_TRUE(t.ok()) << t.status().ToString();
      if (!reference_h.has_value()) {
        reference_h = *h;
        reference_t = *t;
        continue;
      }
      EXPECT_TRUE(Rowset::SameContent(*h, *reference_h))
          << "threads=" << threads << " batch=" << batch;
      EXPECT_TRUE(Rowset::SameContent(*t, *reference_t))
          << "threads=" << threads << " batch=" << batch;
    }
  }
}

// ---------------------------------------------------------------------------
// Store-level parity: the row-mode snapshot scan and the batch-mode snapshot
// scan yield exactly the same row sequence.
// ---------------------------------------------------------------------------

TEST_F(MvccTest, RowAndBatchSnapshotScansAgree) {
  auto db = Open();
  ASSERT_TRUE(
      db->Execute("create temporal relation t (name = string)").ok());
  ASSERT_TRUE(db->Execute("range of x is t").ok());
  for (int i = 0; i < 300; ++i) {
    if (i % 50 == 0) clock_.AdvanceDays(1);
    ASSERT_TRUE(
        db->Execute("append to t (name = \"n" + std::to_string(i) + "\")")
            .ok());
  }
  for (int i = 0; i < 300; i += 5) {
    ASSERT_TRUE(db->Execute("delete x where x.name = \"n" +
                            std::to_string(i) + "\"")
                    .ok());
  }
  Result<ReadSnapshot> snap = db->BeginReadSnapshot();
  ASSERT_TRUE(snap.ok());
  const VersionStore* store = (*db->GetRelation("t"))->store();
  SnapshotPin pin = snap->PinFor(store);
  ASSERT_GT(pin.rows, 0u);

  BatchPredicates preds;
  preds.txn_current = true;
  std::vector<const BitemporalTuple*> row_mode;
  VersionScan scan = store->ScanSnapshot(pin, preds);
  while (const BitemporalTuple* t = scan.Next()) row_mode.push_back(t);

  std::vector<const BitemporalTuple*> batch_mode;
  VersionBatchScan bscan = store->BatchScanSnapshot(pin, preds);
  VersionBatch batch;
  while (bscan.Next(&batch)) {
    for (size_t i = 0; i < batch.size(); ++i) {
      batch_mode.push_back(batch.tuples[i]);
    }
  }
  EXPECT_EQ(row_mode, batch_mode);
  // 300 appends + 50 truncated replacement versions (the 10 deletes of
  // rows appended "today" close without a replacement), minus 60 closes.
  EXPECT_EQ(row_mode.size(), 290u);
}

}  // namespace
}  // namespace temporadb
