// InlineFunction: move semantics, the exact small-buffer boundary, and the
// empty-invocation contract.  The basic construct/copy/reassign behaviour is
// covered in parallel_exec_test.cpp; this file pins down the corners that
// the vectorized scan path leans on (the scan filter is moved into cursors
// and must never allocate when it fits the inline buffer).

#include "common/inline_function.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>

namespace temporadb {
namespace {

/// A callable whose size is exactly `PayloadBytes` and which counts its
/// constructor/destructor traffic, so tests can observe whether a wrapper
/// stored it inline (moving the wrapper move-constructs the callable) or on
/// the heap (moving the wrapper steals the pointer and never touches it).
template <size_t PayloadBytes>
struct Probe {
  inline static int live = 0;
  inline static int moves = 0;
  inline static int copies = 0;

  char payload[PayloadBytes] = {};

  Probe() { ++live; }
  Probe(const Probe&) { ++copies, ++live; }
  Probe(Probe&&) noexcept { ++moves, ++live; }
  ~Probe() { --live; }

  int operator()(int x) const { return x + static_cast<int>(PayloadBytes); }

  static void ResetCounters() { moves = copies = 0; }
};

constexpr size_t kInlineBytes = 48;
using AtBoundary = Probe<kInlineBytes>;      // sizeof == InlineBytes: inline.
using OverBoundary = Probe<kInlineBytes + 1>;  // One byte over: heap.

static_assert(sizeof(AtBoundary) == kInlineBytes,
              "probe must sit exactly on the SBO boundary");
static_assert(sizeof(OverBoundary) == kInlineBytes + 1,
              "probe must overflow the SBO boundary by one byte");

using Fn = InlineFunction<int(int), kInlineBytes>;

TEST(InlineFunctionMoveTest, MoveConstructionEmptiesTheSource) {
  Fn f = [](int x) { return x * 2; };
  ASSERT_TRUE(f);
  Fn g = std::move(f);
  EXPECT_FALSE(f);  // NOLINT(bugprone-use-after-move): the contract under test.
  ASSERT_TRUE(g);
  EXPECT_EQ(g(21), 42);
}

TEST(InlineFunctionMoveTest, MoveAssignmentEmptiesSourceAndReplacesTarget) {
  Fn f = [](int x) { return x + 1; };
  Fn g = [](int x) { return x - 1; };
  g = std::move(f);
  EXPECT_FALSE(f);  // NOLINT(bugprone-use-after-move): the contract under test.
  ASSERT_TRUE(g);
  EXPECT_EQ(g(41), 42);
}

TEST(InlineFunctionMoveTest, MoveAssignmentDestroysTheOldTarget) {
  AtBoundary::ResetCounters();
  {
    Fn f = AtBoundary();
    Fn g = AtBoundary();
    EXPECT_EQ(AtBoundary::live, 2);
    g = std::move(f);
    // The old target of `g` is gone; only the moved-in callable survives.
    EXPECT_EQ(AtBoundary::live, 1);
  }
  EXPECT_EQ(AtBoundary::live, 0);
}

TEST(InlineFunctionMoveTest, MovedFromWrapperIsReusable) {
  Fn f = [](int x) { return x; };
  Fn g = std::move(f);
  f = [](int x) { return x * 3; };  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(f);
  EXPECT_EQ(f(14), 42);
  EXPECT_EQ(g(42), 42);
}

TEST(InlineFunctionSboTest, CallableAtTheBoundaryStaysInline) {
  AtBoundary::ResetCounters();
  Fn f = AtBoundary();
  ASSERT_TRUE(f);
  EXPECT_EQ(f(0), static_cast<int>(kInlineBytes));

  // Moving the wrapper of an inline callable must move the callable itself
  // (there is no pointer to steal).
  AtBoundary::ResetCounters();
  Fn g = std::move(f);
  EXPECT_EQ(AtBoundary::moves, 1);
  EXPECT_EQ(AtBoundary::copies, 0);
  EXPECT_EQ(g(0), static_cast<int>(kInlineBytes));
}

TEST(InlineFunctionSboTest, CallableOneByteOverSpillsToTheHeap) {
  OverBoundary::ResetCounters();
  Fn f = OverBoundary();
  ASSERT_TRUE(f);
  EXPECT_EQ(f(0), static_cast<int>(kInlineBytes) + 1);

  // Moving the wrapper of a heap callable steals the pointer; the callable
  // is neither moved nor copied nor destroyed.
  OverBoundary::ResetCounters();
  const int live_before = OverBoundary::live;
  Fn g = std::move(f);
  EXPECT_EQ(OverBoundary::moves, 0);
  EXPECT_EQ(OverBoundary::copies, 0);
  EXPECT_EQ(OverBoundary::live, live_before);
  EXPECT_EQ(g(0), static_cast<int>(kInlineBytes) + 1);
}

TEST(InlineFunctionSboTest, NoLeaksOnEitherSideOfTheBoundary) {
  {
    Fn a = AtBoundary();
    Fn b = OverBoundary();
    Fn a2 = a;             // Inline copy.
    Fn b2 = b;             // Heap copy.
    Fn a3 = std::move(a);  // Inline move.
    Fn b3 = std::move(b);  // Pointer steal.
    a2 = b3;               // Cross-assign: inline slot now holds heap target.
    EXPECT_EQ(a2(0), static_cast<int>(kInlineBytes) + 1);
  }
  EXPECT_EQ(AtBoundary::live, 0);
  EXPECT_EQ(OverBoundary::live, 0);
}

TEST(InlineFunctionDeathTest, InvokingAnEmptyFunctionAsserts) {
  Fn f;
  ASSERT_FALSE(f);
#ifndef NDEBUG
  EXPECT_DEATH(f(0), "invoking an empty InlineFunction");
#else
  GTEST_SKIP() << "assertions compiled out under NDEBUG";
#endif
}

}  // namespace
}  // namespace temporadb
