#include "index/snapshot_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/date.h"

namespace temporadb {
namespace {

std::vector<uint64_t> AsOfRows(const SnapshotIndex& index, int64_t t) {
  std::vector<uint64_t> rows;
  index.AsOf(Chronon(t), [&](uint64_t row) { rows.push_back(row); });
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(SnapshotIndex, CurrentSetLifecycle) {
  SnapshotIndex index;
  ASSERT_TRUE(index.AddCurrent(1, Chronon(10)).ok());
  ASSERT_TRUE(index.AddCurrent(2, Chronon(20)).ok());
  EXPECT_TRUE(index.IsCurrent(1));
  EXPECT_EQ(index.current_count(), 2u);
  EXPECT_EQ(*index.CurrentStart(1), Chronon(10));
  EXPECT_TRUE(index.CurrentStart(99).status().IsNotFound());
  EXPECT_TRUE(index.AddCurrent(1, Chronon(30)).code() ==
              StatusCode::kAlreadyExists);
}

TEST(SnapshotIndex, AsOfSeesCurrentFromStart) {
  SnapshotIndex index;
  ASSERT_TRUE(index.AddCurrent(1, Chronon(10)).ok());
  EXPECT_TRUE(AsOfRows(index, 9).empty());
  EXPECT_EQ(AsOfRows(index, 10), std::vector<uint64_t>{1});
  EXPECT_EQ(AsOfRows(index, 1000), std::vector<uint64_t>{1});
}

TEST(SnapshotIndex, CloseMovesToClosedSet) {
  SnapshotIndex index;
  ASSERT_TRUE(index.AddCurrent(1, Chronon(10)).ok());
  ASSERT_TRUE(index.CloseCurrent(1, Chronon(50)).ok());
  EXPECT_FALSE(index.IsCurrent(1));
  EXPECT_EQ(index.closed_count(), 1u);
  EXPECT_EQ(AsOfRows(index, 30), std::vector<uint64_t>{1});
  EXPECT_TRUE(AsOfRows(index, 50).empty());  // Half-open close.
  EXPECT_TRUE(AsOfRows(index, 9).empty());
}

TEST(SnapshotIndex, CloseErrors) {
  SnapshotIndex index;
  EXPECT_EQ(index.CloseCurrent(1, Chronon(5)).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(index.AddCurrent(1, Chronon(10)).ok());
  EXPECT_TRUE(index.CloseCurrent(1, Chronon(5)).IsInvalidArgument());
}

TEST(SnapshotIndex, ZeroLengthCloseVanishes) {
  // A version created and superseded in the same chronon never covered any
  // stored state; no rollback can see it.
  SnapshotIndex index;
  ASSERT_TRUE(index.AddCurrent(1, Chronon(10)).ok());
  ASSERT_TRUE(index.CloseCurrent(1, Chronon(10)).ok());
  EXPECT_EQ(index.closed_count(), 0u);
  EXPECT_TRUE(AsOfRows(index, 10).empty());
}

TEST(SnapshotIndex, ReopenAsCurrentUndo) {
  SnapshotIndex index;
  ASSERT_TRUE(index.AddCurrent(1, Chronon(10)).ok());
  ASSERT_TRUE(index.CloseCurrent(1, Chronon(50)).ok());
  ASSERT_TRUE(index.ReopenAsCurrent(1, Chronon(10), Chronon(50)).ok());
  EXPECT_TRUE(index.IsCurrent(1));
  EXPECT_EQ(index.closed_count(), 0u);
  EXPECT_EQ(AsOfRows(index, 1000), std::vector<uint64_t>{1});
}

TEST(SnapshotIndex, ReopenAfterZeroLengthClose) {
  SnapshotIndex index;
  ASSERT_TRUE(index.AddCurrent(1, Chronon(10)).ok());
  ASSERT_TRUE(index.CloseCurrent(1, Chronon(10)).ok());
  ASSERT_TRUE(index.ReopenAsCurrent(1, Chronon(10), Chronon(10)).ok());
  EXPECT_TRUE(index.IsCurrent(1));
}

TEST(SnapshotIndex, AddClosedForCheckpointLoad) {
  SnapshotIndex index;
  ASSERT_TRUE(index.AddClosed(3, Period(Chronon(0), Chronon(10))).ok());
  ASSERT_TRUE(index.AddClosed(4, Period(Chronon(5), Chronon(5))).ok());  // Empty: ignored.
  EXPECT_EQ(index.closed_count(), 1u);
  EXPECT_EQ(AsOfRows(index, 5), std::vector<uint64_t>{3});
}

TEST(SnapshotIndex, PaperTimelineRollback) {
  // Figure 4's transaction periods.
  auto day = [](const char* d) { return Date::Parse(d)->chronon(); };
  SnapshotIndex index;
  // Merrie associate: [08/25/77, 12/15/82); Merrie full: [12/15/82, inf).
  ASSERT_TRUE(index.AddCurrent(0, day("08/25/77")).ok());
  ASSERT_TRUE(index.AddCurrent(1, day("12/07/82")).ok());  // Tom.
  ASSERT_TRUE(index.CloseCurrent(0, day("12/15/82")).ok());
  ASSERT_TRUE(index.AddCurrent(2, day("12/15/82")).ok());  // Merrie full.
  ASSERT_TRUE(index.AddCurrent(3, day("01/10/83")).ok());  // Mike.
  ASSERT_TRUE(index.CloseCurrent(3, day("02/25/84")).ok());

  EXPECT_EQ(AsOfRows(index, day("12/10/82").days()),
            (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ(AsOfRows(index, day("12/20/82").days()),
            (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(AsOfRows(index, day("06/01/83").days()),
            (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(AsOfRows(index, day("03/01/84").days()),
            (std::vector<uint64_t>{1, 2}));
}

TEST(SnapshotIndex, CurrentIteration) {
  SnapshotIndex index;
  ASSERT_TRUE(index.AddCurrent(5, Chronon(1)).ok());
  ASSERT_TRUE(index.AddCurrent(6, Chronon(2)).ok());
  ASSERT_TRUE(index.CloseCurrent(5, Chronon(3)).ok());
  std::vector<uint64_t> rows;
  index.Current([&](uint64_t row) { rows.push_back(row); });
  EXPECT_EQ(rows, std::vector<uint64_t>{6});
}

}  // namespace
}  // namespace temporadb
