#include "core/taxonomy.h"

#include <gtest/gtest.h>

namespace temporadb {
namespace {

TEST(Taxonomy, Figure1HasThePapersRows) {
  const auto& entries = Figure1Literature();
  EXPECT_EQ(entries.size(), 13u);
  // Spot-check characteristic rows.
  bool found_benzvi_registration = false;
  bool found_snodgrass_valid = false;
  for (const auto& e : entries) {
    if (std::string(e.terminology) == "Registration") {
      found_benzvi_registration = true;
      EXPECT_STREQ(e.append_only, "Yes");
      EXPECT_STREQ(e.repr_vs_reality, "Representation");
    }
    if (std::string(e.terminology) == "Valid Time") {
      found_snodgrass_valid = true;
      EXPECT_STREQ(e.append_only, "No");
      EXPECT_STREQ(e.repr_vs_reality, "Reality");
    }
  }
  EXPECT_TRUE(found_benzvi_registration);
  EXPECT_TRUE(found_snodgrass_valid);
  EXPECT_EQ(Figure1Footnotes().size(), 4u);
}

TEST(Taxonomy, Figure12MatchesThePaper) {
  const auto& kinds = Figure12TimeKinds();
  ASSERT_EQ(kinds.size(), 3u);
  // | Transaction | Yes | Yes | Representation |
  EXPECT_STREQ(kinds[0].terminology, "Transaction");
  EXPECT_TRUE(kinds[0].append_only);
  EXPECT_TRUE(kinds[0].application_independent);
  EXPECT_STREQ(kinds[0].repr_vs_reality, "Representation");
  // | Valid | No | Yes | Reality |
  EXPECT_FALSE(kinds[1].append_only);
  EXPECT_TRUE(kinds[1].application_independent);
  EXPECT_STREQ(kinds[1].repr_vs_reality, "Reality");
  // | User-defined | No | No | Reality |
  EXPECT_FALSE(kinds[2].append_only);
  EXPECT_FALSE(kinds[2].application_independent);
}

TEST(Taxonomy, Figure12AgreesWithEnforcement) {
  // The table's "Append-Only: Yes" for transaction time is exactly the
  // engine's IsAppendOnly predicate for kinds that maintain it.
  EXPECT_EQ(Figure12TimeKinds()[0].append_only,
            IsAppendOnly(TemporalClass::kRollback));
  EXPECT_EQ(Figure12TimeKinds()[0].append_only,
            IsAppendOnly(TemporalClass::kTemporal));
}

TEST(Taxonomy, Figure13Has17Systems) {
  const auto& systems = Figure13Systems();
  EXPECT_EQ(systems.size(), 17u);
  int tt = 0, vt = 0, udt = 0;
  bool tquel_all_three = false;
  for (const auto& s : systems) {
    tt += s.transaction_time ? 1 : 0;
    vt += s.valid_time ? 1 : 0;
    udt += s.user_defined_time ? 1 : 0;
    if (std::string(s.system) == "TQuel") {
      tquel_all_three =
          s.transaction_time && s.valid_time && s.user_defined_time;
    }
  }
  // The paper's point: only TQuel (and TRM partially) span the taxonomy.
  EXPECT_TRUE(tquel_all_three);
  EXPECT_EQ(tt, 7);
  EXPECT_EQ(vt, 8);
  EXPECT_EQ(udt, 6);
}

TEST(Taxonomy, RenderedFigure10HasTheQuadrants) {
  std::string fig = RenderFigure10();
  EXPECT_NE(fig.find("Figure 10"), std::string::npos);
  EXPECT_NE(fig.find("Static Queries"), std::string::npos);
  EXPECT_NE(fig.find("Historical Queries"), std::string::npos);
  EXPECT_NE(fig.find("Static Rollback"), std::string::npos);
  EXPECT_NE(fig.find("Temporal"), std::string::npos);
  EXPECT_NE(fig.find("Historical"), std::string::npos);
}

TEST(Taxonomy, RenderedFigure11MarksTheRightCells) {
  std::string fig = RenderFigure11();
  // Four data rows; static has no X at all.
  size_t static_pos = fig.find("| Static ");
  ASSERT_NE(static_pos, std::string::npos);
  size_t eol = fig.find('\n', static_pos);
  EXPECT_EQ(fig.substr(static_pos, eol - static_pos).find('X'),
            std::string::npos);
  size_t temporal_pos = fig.find("| Temporal");
  ASSERT_NE(temporal_pos, std::string::npos);
  eol = fig.find('\n', temporal_pos);
  std::string temporal_row = fig.substr(temporal_pos, eol - temporal_pos);
  EXPECT_EQ(std::count(temporal_row.begin(), temporal_row.end(), 'X'), 3);
}

TEST(Taxonomy, RenderedFiguresAreNonEmpty) {
  EXPECT_GT(RenderFigure1().size(), 400u);
  EXPECT_GT(RenderFigure12().size(), 100u);
  EXPECT_GT(RenderFigure13().size(), 400u);
  EXPECT_NE(RenderFigure1().find("(1) Not actually supported"),
            std::string::npos);
  EXPECT_NE(RenderFigure13().find("SWALLOW"), std::string::npos);
}

}  // namespace
}  // namespace temporadb
