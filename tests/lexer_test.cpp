#include "tquel/lexer.h"

#include <gtest/gtest.h>

namespace temporadb {
namespace tquel {
namespace {

std::vector<Token> Lex(std::string_view src) {
  Result<std::vector<Token>> tokens = Tokenize(src);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? *tokens : std::vector<Token>{};
}

TEST(Lexer, EmptyInput) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].Is(TokenKind::kEof));
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  auto tokens = Lex("RETRIEVE Retrieve retrieve");
  ASSERT_EQ(tokens.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(tokens[i].Is(TokenKind::kRetrieve));
    EXPECT_EQ(tokens[i].text, "retrieve");
  }
}

TEST(Lexer, IdentifiersAndKeywords) {
  auto tokens = Lex("range of f is faculty");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_TRUE(tokens[0].Is(TokenKind::kRange));
  EXPECT_TRUE(tokens[1].Is(TokenKind::kOf));
  EXPECT_TRUE(tokens[2].Is(TokenKind::kIdentifier));
  EXPECT_EQ(tokens[2].text, "f");
  EXPECT_TRUE(tokens[3].Is(TokenKind::kIs));
  EXPECT_EQ(tokens[4].text, "faculty");
}

TEST(Lexer, Numbers) {
  auto tokens = Lex("42 3.14 0");
  EXPECT_TRUE(tokens[0].Is(TokenKind::kIntLiteral));
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_TRUE(tokens[1].Is(TokenKind::kFloatLiteral));
  EXPECT_EQ(tokens[1].text, "3.14");
  EXPECT_TRUE(tokens[2].Is(TokenKind::kIntLiteral));
}

TEST(Lexer, DotAfterNumberIsNotFloatWithoutDigits) {
  auto tokens = Lex("f.rank");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_TRUE(tokens[0].Is(TokenKind::kIdentifier));
  EXPECT_TRUE(tokens[1].Is(TokenKind::kDot));
  EXPECT_TRUE(tokens[2].Is(TokenKind::kIdentifier));
}

TEST(Lexer, StringLiterals) {
  auto tokens = Lex("\"Merrie\" \"12/10/82\" \"\"");
  EXPECT_TRUE(tokens[0].Is(TokenKind::kStringLiteral));
  EXPECT_EQ(tokens[0].text, "Merrie");
  EXPECT_EQ(tokens[1].text, "12/10/82");
  EXPECT_EQ(tokens[2].text, "");
}

TEST(Lexer, StringEscapes) {
  auto tokens = Lex(R"("a\"b" "c\\d")");
  EXPECT_EQ(tokens[0].text, "a\"b");
  EXPECT_EQ(tokens[1].text, "c\\d");
}

TEST(Lexer, UnterminatedStringIsError) {
  EXPECT_TRUE(Tokenize("\"oops").status().IsParseError());
}

TEST(Lexer, Operators) {
  auto tokens = Lex("= != < <= > >= <> + - * / ( ) , ; .");
  TokenKind expected[] = {
      TokenKind::kEq,   TokenKind::kNe,        TokenKind::kLt,
      TokenKind::kLe,   TokenKind::kGt,        TokenKind::kGe,
      TokenKind::kNe,   TokenKind::kPlus,      TokenKind::kMinus,
      TokenKind::kStar, TokenKind::kSlash,     TokenKind::kLParen,
      TokenKind::kRParen, TokenKind::kComma,   TokenKind::kSemicolon,
      TokenKind::kDot};
  ASSERT_EQ(tokens.size(), std::size(expected) + 1);
  for (size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_TRUE(tokens[i].Is(expected[i])) << i;
  }
}

TEST(Lexer, Comments) {
  auto tokens = Lex("retrieve -- a comment\n# another\n(f)");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_TRUE(tokens[0].Is(TokenKind::kRetrieve));
  EXPECT_TRUE(tokens[1].Is(TokenKind::kLParen));
}

TEST(Lexer, MinusVersusComment) {
  auto tokens = Lex("1 - 2");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_TRUE(tokens[1].Is(TokenKind::kMinus));
}

TEST(Lexer, LineAndColumnTracking) {
  auto tokens = Lex("retrieve\n  (rank)");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(Lexer, UnexpectedCharacterIsError) {
  Result<std::vector<Token>> tokens = Tokenize("retrieve @");
  ASSERT_FALSE(tokens.ok());
  EXPECT_TRUE(tokens.status().IsParseError());
  EXPECT_NE(tokens.status().message().find("'@'"), std::string::npos);
}

TEST(Lexer, TemporalKeywords) {
  auto tokens = Lex("valid from to at as of through when overlap extend "
                    "precede equal begin end");
  TokenKind expected[] = {
      TokenKind::kValid,   TokenKind::kFrom,   TokenKind::kTo,
      TokenKind::kAt,      TokenKind::kAs,     TokenKind::kOf,
      TokenKind::kThrough, TokenKind::kWhen,   TokenKind::kOverlap,
      TokenKind::kExtend,  TokenKind::kPrecede, TokenKind::kEqual,
      TokenKind::kBegin,   TokenKind::kEnd};
  for (size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_TRUE(tokens[i].Is(expected[i])) << i;
  }
}

TEST(Lexer, StartIsAnIdentifierNotKeyword) {
  // The paper writes "start of"; 'start' stays an identifier and the
  // parser treats it as a synonym.
  auto tokens = Lex("start of");
  EXPECT_TRUE(tokens[0].Is(TokenKind::kIdentifier));
  EXPECT_EQ(tokens[0].text, "start");
  EXPECT_TRUE(tokens[1].Is(TokenKind::kOf));
}

}  // namespace
}  // namespace tquel
}  // namespace temporadb
