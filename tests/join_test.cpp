#include "rel/join.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "rel/operators.h"

namespace temporadb {
namespace {

Schema NV(const char* a, const char* b) {
  return *Schema::Make({Attribute{a, Type::String()},
                        Attribute{b, Type::Int()}});
}

Rowset Employees() {
  Rowset out(NV("name", "dept"), TemporalClass::kStatic);
  for (auto& [n, d] : std::vector<std::pair<const char*, int64_t>>{
           {"merrie", 1}, {"tom", 1}, {"mike", 2}, {"ann", 3}}) {
    Row row;
    row.values = {Value(n), Value(d)};
    EXPECT_TRUE(out.AddRow(std::move(row)).ok());
  }
  return out;
}

Rowset Departments() {
  Rowset out(NV("dname", "did"), TemporalClass::kStatic);
  for (auto& [n, d] : std::vector<std::pair<const char*, int64_t>>{
           {"cs", 1}, {"math", 2}}) {
    Row row;
    row.values = {Value(n), Value(d)};
    EXPECT_TRUE(out.AddRow(std::move(row)).ok());
  }
  return out;
}

TEST(Join, HashEquiJoinBasic) {
  Result<Rowset> out = HashEquiJoin(Employees(), Departments(), {1}, {1});
  ASSERT_TRUE(out.ok());
  // merrie,tom -> cs; mike -> math; ann unmatched.
  EXPECT_EQ(out->size(), 3u);
  EXPECT_EQ(out->schema().size(), 4u);
  for (const Row& row : out->rows()) {
    EXPECT_EQ(row.values[1].AsInt(), row.values[3].AsInt());
  }
}

TEST(Join, HashEquiJoinValidatesKeys) {
  EXPECT_FALSE(HashEquiJoin(Employees(), Departments(), {}, {}).ok());
  EXPECT_FALSE(HashEquiJoin(Employees(), Departments(), {9}, {1}).ok());
  EXPECT_FALSE(HashEquiJoin(Employees(), Departments(), {1}, {9}).ok());
  EXPECT_FALSE(HashEquiJoin(Employees(), Departments(), {0, 1}, {1}).ok());
}

TEST(Join, NestedLoopEquivalentToHashJoin) {
  ExprPtr pred = MakeCompare(CompareOp::kEq, MakeColumnRef(1, "dept"),
                             MakeColumnRef(3, "did"));
  Result<Rowset> nl = NestedLoopJoin(Employees(), Departments(), *pred);
  Result<Rowset> hash = HashEquiJoin(Employees(), Departments(), {1}, {1});
  ASSERT_TRUE(nl.ok());
  ASSERT_TRUE(hash.ok());
  EXPECT_TRUE(Rowset::SameContent(*nl, *hash));
}

TEST(Join, TemporalJoinIntersectsPeriods) {
  // Two historical rowsets: employment and project assignment.
  Rowset emp(NV("name", "x"), TemporalClass::kHistorical);
  Row e;
  e.values = {Value("merrie"), Value(int64_t{1})};
  e.valid = Period(Chronon(0), Chronon(100));
  ASSERT_TRUE(emp.AddRow(e).ok());

  Rowset proj(NV("pname", "y"), TemporalClass::kHistorical);
  Row p1;
  p1.values = {Value("merrie"), Value(int64_t{1})};
  p1.valid = Period(Chronon(50), Chronon(150));
  ASSERT_TRUE(proj.AddRow(p1).ok());
  Row p2;
  p2.values = {Value("merrie"), Value(int64_t{1})};
  p2.valid = Period(Chronon(200), Chronon(300));  // After employment.
  ASSERT_TRUE(proj.AddRow(p2).ok());

  Result<Rowset> out = HashEquiJoin(emp, proj, {0}, {0});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);  // The disjoint pair is dropped.
  EXPECT_EQ(*out->rows()[0].valid, Period(Chronon(50), Chronon(100)));
  EXPECT_EQ(out->temporal_class(), TemporalClass::kHistorical);
}

TEST(Join, RandomizedHashMatchesNestedLoop) {
  Random rng(123);
  auto make = [&](int n, const char* c0, const char* c1) {
    Rowset out(NV(c0, c1), TemporalClass::kStatic);
    for (int i = 0; i < n; ++i) {
      Row row;
      row.values = {Value(rng.NextName(1)),
                    Value(static_cast<int64_t>(rng.Uniform(8)))};
      EXPECT_TRUE(out.AddRow(std::move(row)).ok());
    }
    return out;
  };
  Rowset a = make(60, "an", "ak");
  Rowset b = make(40, "bn", "bk");
  ExprPtr pred = MakeCompare(CompareOp::kEq, MakeColumnRef(1, "ak"),
                             MakeColumnRef(3, "bk"));
  Result<Rowset> nl = NestedLoopJoin(a, b, *pred);
  Result<Rowset> hash = HashEquiJoin(a, b, {1}, {1});
  ASSERT_TRUE(nl.ok());
  ASSERT_TRUE(hash.ok());
  EXPECT_GT(nl->size(), 0u);
  EXPECT_TRUE(Rowset::SameContent(*nl, *hash));
}

TEST(Join, MultiKeyJoin) {
  Rowset a(NV("n", "k"), TemporalClass::kStatic);
  Rowset b(NV("m", "j"), TemporalClass::kStatic);
  Row r1;
  r1.values = {Value("x"), Value(int64_t{1})};
  ASSERT_TRUE(a.AddRow(r1).ok());
  ASSERT_TRUE(b.AddRow(r1).ok());
  Row r2;
  r2.values = {Value("x"), Value(int64_t{2})};
  ASSERT_TRUE(b.AddRow(r2).ok());
  Result<Rowset> out = HashEquiJoin(a, b, {0, 1}, {0, 1});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
}

}  // namespace
}  // namespace temporadb
