// Parallel execution: the thread pool, the morsel driver, the
// small-buffer filter functor, bit-identical parallel version scans
// across thread counts, and WAL group commit under concurrent
// committers (including a barrier-wide fsync failure).

#include "exec/parallel_scan.h"
#include "exec/thread_pool.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/inline_function.h"
#include "common/random.h"
#include "core/database.h"
#include "storage/fault_injection.h"
#include "storage/wal.h"
#include "temporal/version_store.h"
#include "txn/clock.h"
#include "txn/txn_manager.h"

namespace temporadb {
namespace {

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPoolTest, ParallelForVisitsEachIndexExactlyOnce) {
  exec::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  exec::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, ZeroClampsToOneThread) {
  exec::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> ran{0};
  pool.ParallelFor(3, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolTest, NestedCallFromWorkerRunsInline) {
  // A worker issuing ParallelFor on its own pool must not deadlock
  // waiting for itself; the nested call runs inline on that worker.
  exec::ThreadPool pool(4);
  std::atomic<size_t> total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(100, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 800u);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  exec::ThreadPool pool(3);
  for (size_t n : {1u, 7u, 64u, 1000u, 3u, 0u, 257u}) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(n, [&](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "n=" << n;
  }
}

TEST(ThreadPoolTest, ConcurrentCallersSerializeCorrectly) {
  // Multiple threads sharing one pool: each job's indices must go to that
  // job only.
  exec::ThreadPool pool(4);
  std::vector<std::thread> callers;
  std::vector<std::atomic<size_t>> sums(6);
  for (size_t c = 0; c < 6; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      pool.ParallelFor(500, [&sums, c](size_t i) { sums[c].fetch_add(i); });
    });
  }
  for (std::thread& t : callers) t.join();
  for (size_t c = 0; c < 6; ++c) {
    EXPECT_EQ(sums[c].load(), 500u * 499u / 2) << "caller " << c;
  }
}

// --- Morsels --------------------------------------------------------------

TEST(MorselTest, RangesPartitionTheDomain) {
  for (size_t n : {0u, 1u, 2047u, 2048u, 2049u, 10000u}) {
    size_t morsels = exec::MorselCount(n);
    size_t expect_begin = 0;
    for (size_t m = 0; m < morsels; ++m) {
      auto [begin, end] = exec::MorselRange(m, n);
      EXPECT_EQ(begin, expect_begin) << "n=" << n << " m=" << m;
      EXPECT_GT(end, begin);
      expect_begin = end;
    }
    EXPECT_EQ(expect_begin, n) << "n=" << n;
  }
}

TEST(MorselTest, ParallelScanMatchesSequentialProbe) {
  // The generic driver must produce the same sequence with and without a
  // pool, for domains around the morsel-size boundaries.
  auto probe = [](size_t begin, size_t end, std::vector<size_t>* out) {
    for (size_t i = begin; i < end; ++i) {
      if (i % 3 == 0) out->push_back(i * 7);
    }
  };
  exec::ThreadPool pool(4);
  for (size_t n : {0u, 1u, 2048u, 5000u, 9999u}) {
    std::vector<size_t> seq = exec::ParallelScan<size_t>(nullptr, n, probe);
    std::vector<size_t> par = exec::ParallelScan<size_t>(&pool, n, probe);
    EXPECT_EQ(seq, par) << "n=" << n;
  }
}

// --- InlineFunction -------------------------------------------------------

TEST(InlineFunctionTest, EmptyIsFalseAndCallableIsTrue) {
  InlineFunction<int(int), 48> f;
  EXPECT_FALSE(f);
  f = [](int x) { return x + 1; };
  ASSERT_TRUE(f);
  EXPECT_EQ(f(41), 42);
}

TEST(InlineFunctionTest, SmallCaptureStaysInlineAndCopies) {
  int64_t a = 3, b = 4;
  InlineFunction<int64_t(int64_t), 48> f =
      [a, b](int64_t x) { return a * x + b; };
  InlineFunction<int64_t(int64_t), 48> copy = f;
  InlineFunction<int64_t(int64_t), 48> moved = std::move(f);
  EXPECT_EQ(copy(10), 34);
  EXPECT_EQ(moved(10), 34);
}

TEST(InlineFunctionTest, LargeCaptureFallsBackToHeap) {
  // 128 bytes of captured state exceeds the 48-byte inline buffer; the
  // functor must still behave identically (heap-allocated target).
  std::array<int64_t, 16> big;
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<int64_t>(i);
  InlineFunction<int64_t(size_t), 48> f =
      [big](size_t i) { return big[i] * 2; };
  InlineFunction<int64_t(size_t), 48> copy = f;
  f = InlineFunction<int64_t(size_t)>();  // Destroy original.
  EXPECT_EQ(copy(5), 10);
  EXPECT_EQ(copy(15), 30);
}

TEST(InlineFunctionTest, ReassignmentReplacesTarget) {
  InlineFunction<int(), 48> f = [] { return 1; };
  f = [] { return 2; };
  EXPECT_EQ(f(), 2);
  std::array<char, 100> pad{};
  f = [pad] { return 3 + pad[0]; };
  EXPECT_EQ(f(), 3);
}

// --- Bit-identical parallel version scans ---------------------------------

class ParallelVersionScanTest : public ::testing::Test {
 protected:
  ParallelVersionScanTest() : manager_(&clock_) {}

  // A seeded random bitemporal history: appends with random valid periods
  // (half open-ended), interleaved with transaction-time closes of random
  // earlier rows, committed in small transactions.
  void Populate(size_t n_ops, uint64_t seed) {
    Random rng(seed);
    int64_t day = 1000;
    size_t op = 0;
    while (op < n_ops) {
      clock_.SetTime(Chronon(day));
      Transaction* txn = *manager_.Begin();
      size_t batch = 1 + rng.Uniform(50);
      for (size_t i = 0; i < batch && op < n_ops; ++i, ++op) {
        if (store_.version_count() > 10 && rng.OneIn(4)) {
          RowId row = rng.Uniform(store_.version_count());
          // Fails on tombstones/closed rows; that is part of the chaos.
          (void)store_.CloseTxn(txn, row, Chronon(day));
        } else {
          BitemporalTuple t;
          t.values = {Value("e" + std::to_string(rng.Uniform(64))),
                      Value(static_cast<int64_t>(rng.Uniform(100000)))};
          int64_t from = 900 + static_cast<int64_t>(rng.Uniform(400));
          t.valid = rng.OneIn(2)
                        ? Period::From(Chronon(from))
                        : Period(Chronon(from),
                                 Chronon(from + 1 +
                                         static_cast<int64_t>(
                                             rng.Uniform(90))));
          t.txn = Period::From(Chronon(day));
          ASSERT_TRUE(store_.Append(txn, std::move(t)).ok());
        }
      }
      ASSERT_TRUE(manager_.Commit(txn).ok());
      day += 1 + static_cast<int64_t>(rng.Uniform(3));
    }
  }

  static std::vector<std::pair<RowId, BitemporalTuple>> Collect(
      VersionScan scan) {
    std::vector<std::pair<RowId, BitemporalTuple>> out;
    RowId row = 0;
    while (const BitemporalTuple* t = scan.Next(&row)) {
      out.emplace_back(row, *t);
    }
    return out;
  }

  // Runs every probe shape the figures exercise and returns their results
  // concatenated, so one comparison covers sequential sweeps, snapshot- and
  // interval-index-backed scans, and residual filters.
  std::vector<std::pair<RowId, BitemporalTuple>> RunProbes() {
    std::vector<std::pair<RowId, BitemporalTuple>> all;
    auto append = [&all](std::vector<std::pair<RowId, BitemporalTuple>> v) {
      all.insert(all.end(), v.begin(), v.end());
    };
    append(Collect(store_.ScanAll()));
    append(Collect(store_.ScanCurrent()));
    append(Collect(store_.ScanAsOf(Chronon(1100))));          // Rollback.
    append(Collect(store_.ScanTxnOverlapping(
        Period(Chronon(1050), Chronon(1200)))));
    append(Collect(store_.ScanValidDuring(                    // Timeslice.
        Period(Chronon(1000), Chronon(1060)))));
    append(Collect(store_.ScanValidDuring(
        Period(Chronon(950), Chronon(1300)),
        [](const BitemporalTuple& t) { return t.IsCurrentState(); })));
    append(Collect(store_.ScanAll([](const BitemporalTuple& t) {
      return t.values[1].AsInt() % 7 == 0;
    })));
    return all;
  }

  ManualClock clock_;
  TxnManager manager_;
  VersionStore store_;
};

TEST_F(ParallelVersionScanTest, BitIdenticalAcrossThreadCounts) {
  Populate(6000, /*seed=*/42);
  store_.ConfigureParallel(nullptr);
  std::vector<std::pair<RowId, BitemporalTuple>> baseline = RunProbes();
  ASSERT_FALSE(baseline.empty());
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    exec::ThreadPool pool(threads);
    // min_rows=1 forces the morsel path even for tiny index candidate sets.
    store_.ConfigureParallel(&pool, /*min_rows=*/1);
    std::vector<std::pair<RowId, BitemporalTuple>> got = RunProbes();
    ASSERT_EQ(got.size(), baseline.size()) << threads << " threads";
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].first, baseline[i].first)
          << threads << " threads, position " << i;
      ASSERT_TRUE(got[i].second == baseline[i].second)
          << threads << " threads, position " << i;
    }
    store_.ConfigureParallel(nullptr);
  }
}

TEST_F(ParallelVersionScanTest, DifferentSeedsStayDeterministic) {
  Populate(3000, /*seed=*/7);
  store_.ConfigureParallel(nullptr);
  std::vector<std::pair<RowId, BitemporalTuple>> baseline = RunProbes();
  exec::ThreadPool pool(4);
  store_.ConfigureParallel(&pool, 1);
  // Repeated parallel runs must agree with each other too (no
  // scheduling-order dependence).
  for (int round = 0; round < 3; ++round) {
    std::vector<std::pair<RowId, BitemporalTuple>> got = RunProbes();
    ASSERT_EQ(got, baseline) << "round " << round;
  }
}

TEST_F(ParallelVersionScanTest, SmallDomainsStaySequential) {
  Populate(200, /*seed=*/3);
  exec::ThreadPool pool(4);
  store_.ConfigureParallel(&pool);  // Default threshold (4096) > 200 rows.
  std::vector<std::pair<RowId, BitemporalTuple>> a = Collect(store_.ScanAll());
  store_.ConfigureParallel(nullptr);
  std::vector<std::pair<RowId, BitemporalTuple>> b = Collect(store_.ScanAll());
  EXPECT_EQ(a, b);
}

// Figure 3–8 style probes through the full query stack: the same TQuel
// script and queries against a sequential and a parallel database must
// produce identical rowsets, in identical order (when-join included).
TEST(ParallelDatabaseTest, QueriesMatchSequentialDatabase) {
  auto build = [](ManualClock* clock, bool parallel) {
    DatabaseOptions options;
    options.clock = clock;
    if (parallel) {
      options.store_options.parallel_scan = true;
      options.store_options.parallel_min_rows = 1;
      options.max_threads = 4;
    }
    std::unique_ptr<Database> db = std::move(*Database::Open(options));
    EXPECT_TRUE(db->Execute("create temporal relation faculty "
                            "(name = string, rank = string)")
                    .ok());
    EXPECT_TRUE(db->Execute("create temporal relation committee "
                            "(name = string, chair = string)")
                    .ok());
    Random rng(99);
    const char* ranks[] = {"assistant", "associate", "full"};
    for (int i = 0; i < 120; ++i) {
      clock->SetTime(Chronon(4000 + i * 2));
      int64_t from = 3900 + static_cast<int64_t>(rng.Uniform(300));
      std::string stmt =
          "append to faculty (name = \"f" + std::to_string(i % 20) +
          "\", rank = \"" + ranks[rng.Uniform(3)] + "\") valid from \"" +
          Chronon(from).ToString() + "\" to \"" +
          Chronon(from + 30 + static_cast<int64_t>(rng.Uniform(200)))
              .ToString() +
          "\"";
      EXPECT_TRUE(db->Execute(stmt).ok()) << stmt;
      if (i % 3 == 0) {
        std::string cstmt =
            "append to committee (name = \"f" + std::to_string(i % 20) +
            "\", chair = \"c" + std::to_string(i % 5) + "\") valid from \"" +
            Chronon(from + 10).ToString() + "\" to \"" +
            Chronon(from + 60).ToString() + "\"";
        EXPECT_TRUE(db->Execute(cstmt).ok()) << cstmt;
      }
    }
    EXPECT_TRUE(db->Execute("range of f is faculty").ok());
    EXPECT_TRUE(db->Execute("range of c is committee").ok());
    return db;
  };
  ManualClock clock_seq, clock_par;
  std::unique_ptr<Database> seq = build(&clock_seq, false);
  std::unique_ptr<Database> par = build(&clock_par, true);

  const char* queries[] = {
      "retrieve (f.name, f.rank)",
      "retrieve (f.name) where f.rank = \"full\"",
      "retrieve (f.name, f.rank) when f overlap \"10/01/80\"",
      "retrieve (f.name, f.rank) as of \"12/01/81\"",
      "retrieve (f.name, c.chair) where f.name = c.name when f overlap c",
  };
  for (const char* q : queries) {
    Result<Rowset> a = seq->Query(q);
    Result<Rowset> b = par->Query(q);
    ASSERT_TRUE(a.ok()) << q << ": " << a.status().message();
    ASSERT_TRUE(b.ok()) << q << ": " << b.status().message();
    ASSERT_EQ(a->size(), b->size()) << q;
    for (size_t i = 0; i < a->size(); ++i) {
      ASSERT_TRUE(a->rows()[i] == b->rows()[i]) << q << " row " << i;
    }
  }
}

// --- Group commit ---------------------------------------------------------

class CommitQueueTest : public ::testing::Test {
 protected:
  CommitQueueTest()
      : path_(testing::TempDir() + "/tdb_gc_" + std::to_string(::getpid()) +
              "_" +
              std::to_string(reinterpret_cast<uintptr_t>(this) & 0xFFFF) +
              ".log") {
    std::remove(path_.c_str());
  }
  ~CommitQueueTest() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(CommitQueueTest, SingleCommitterRoundTrips) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  CommitQueue queue(wal->get());
  std::vector<WalBatchEntry> batch(3);
  for (uint32_t i = 0; i < 3; ++i) {
    batch[i].type = i + 1;
    batch[i].payload = "r" + std::to_string(i);
  }
  ASSERT_TRUE(queue.Commit(batch, /*sync=*/true).ok());
  EXPECT_EQ(queue.barriers(), 1u);
  EXPECT_FALSE(queue.poisoned());
  std::vector<WalRecord> records;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord& rec) -> Status {
                             records.push_back(rec);
                             return Status::OK();
                           })
                  .ok());
  ASSERT_EQ(records.size(), 3u);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(records[i].type, i + 1);
    EXPECT_EQ(records[i].payload, "r" + std::to_string(i));
  }
}

TEST_F(CommitQueueTest, ConcurrentBatchesAllDurableAndContiguous) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  CommitQueue queue(wal->get());
  constexpr size_t kThreads = 8;
  constexpr size_t kCommits = 25;
  constexpr size_t kRecords = 3;  // Per batch: begin, op, commit.
  std::vector<std::thread> committers;
  std::atomic<int> failures{0};
  for (size_t t = 0; t < kThreads; ++t) {
    committers.emplace_back([&queue, &failures, t] {
      for (size_t c = 0; c < kCommits; ++c) {
        std::vector<WalBatchEntry> batch(kRecords);
        for (size_t r = 0; r < kRecords; ++r) {
          batch[r].type = 1;
          batch[r].payload = "t" + std::to_string(t) + "-c" +
                             std::to_string(c) + "-r" + std::to_string(r);
        }
        if (!queue.Commit(batch, /*sync=*/true).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& th : committers) th.join();
  EXPECT_EQ(failures.load(), 0);
  // With syncs this frequent at least some coalescing is possible but not
  // guaranteed; what IS guaranteed: one barrier per batch at most.
  EXPECT_GE(queue.barriers(), 1u);
  EXPECT_LE(queue.barriers(), kThreads * kCommits);

  std::vector<std::string> payloads;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord& rec) -> Status {
                             payloads.push_back(rec.payload);
                             return Status::OK();
                           })
                  .ok());
  ASSERT_EQ(payloads.size(), kThreads * kCommits * kRecords);
  // Each batch must be contiguous in the log, records in submission order;
  // and each thread's batches must appear in its submission order.
  std::vector<size_t> next_commit(kThreads, 0);
  for (size_t i = 0; i < payloads.size(); i += kRecords) {
    size_t dash = payloads[i].find('-');
    size_t t = std::stoul(payloads[i].substr(1, dash - 1));
    ASSERT_LT(t, kThreads);
    std::string prefix =
        "t" + std::to_string(t) + "-c" + std::to_string(next_commit[t]);
    for (size_t r = 0; r < kRecords; ++r) {
      ASSERT_EQ(payloads[i + r], prefix + "-r" + std::to_string(r))
          << "batch broken up at log position " << i + r;
    }
    ++next_commit[t];
  }
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(next_commit[t], kCommits) << "thread " << t;
  }
}

TEST_F(CommitQueueTest, UnsyncedBatchesSkipTheFsync) {
  FaultInjectionFileSystem fs;
  auto wal = WriteAheadLog::Open(&fs, path_);
  ASSERT_TRUE(wal.ok());
  // Every sync fails; a sync=false batch must not trigger one.
  fs.set_fault_filter(
      [](FaultOp op, const std::string&) { return op == FaultOp::kSync; });
  CommitQueue queue(wal->get());
  std::vector<WalBatchEntry> batch(1);
  batch[0].type = 1;
  batch[0].payload = "x";
  EXPECT_TRUE(queue.Commit(batch, /*sync=*/false).ok());
  EXPECT_FALSE(queue.poisoned());
  EXPECT_FALSE(queue.Commit(batch, /*sync=*/true).ok());
  EXPECT_TRUE(queue.poisoned());
}

TEST_F(CommitQueueTest, FailedBarrierFailsEveryCommitterInIt) {
  FaultInjectionFileSystem fs;
  auto wal = WriteAheadLog::Open(&fs, path_);
  ASSERT_TRUE(wal.ok());
  CommitQueue queue(wal->get());

  // The plan: a pathfinder batch whose (successful) fsync stalls until all
  // four committers are queued behind it, so they form ONE barrier — whose
  // own fsync then fails, and the failure must be observed by all four.
  constexpr int kCommitters = 4;
  std::atomic<int> entered{0};
  std::atomic<int> syncs{0};
  fs.set_fault_filter([&entered, &syncs](FaultOp op, const std::string&) {
    if (op != FaultOp::kSync) return false;
    if (syncs.fetch_add(1) == 0) {
      // Pathfinder's barrier: hold the queue open until every committer
      // announced itself, give the last one time to enqueue, then succeed.
      while (entered.load() < kCommitters) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      return false;
    }
    return true;  // The committers' shared barrier fails.
  });

  std::thread pathfinder([&queue] {
    std::vector<WalBatchEntry> batch(1);
    batch[0].type = 9;
    batch[0].payload = "pathfinder";
    EXPECT_TRUE(queue.Commit(batch, /*sync=*/true).ok());
  });
  // Wait for the pathfinder to become leader and block in its fsync; its
  // records are fully appended by then, so this offset is what a rewind of
  // the next (failing) barrier must restore.
  while (syncs.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const uint64_t durable_offset = (*wal)->append_offset();
  std::vector<std::thread> committers;
  std::vector<Status> results(kCommitters, Status::OK());
  for (int t = 0; t < kCommitters; ++t) {
    committers.emplace_back([&queue, &results, &entered, t] {
      std::vector<WalBatchEntry> batch(2);
      batch[0].type = 1;
      batch[0].payload = "t" + std::to_string(t) + "-begin";
      batch[1].type = 2;
      batch[1].payload = "t" + std::to_string(t) + "-commit";
      entered.fetch_add(1);
      results[t] = queue.Commit(batch, /*sync=*/true);
    });
  }
  pathfinder.join();
  for (std::thread& th : committers) th.join();

  // Every committer shared the one failed barrier: all must see the I/O
  // error itself, none the post-poison FailedPrecondition.
  EXPECT_EQ(queue.barriers(), 2u);
  for (int t = 0; t < kCommitters; ++t) {
    EXPECT_TRUE(results[t].IsIOError())
        << "committer " << t << ": " << results[t].message();
  }
  EXPECT_TRUE(queue.poisoned());
  // The whole barrier was rewound: only the pathfinder's record survives,
  // and nothing of the failed barrier can become durable later.
  EXPECT_EQ((*wal)->append_offset(), durable_offset);
  size_t replayed = 0;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord& rec) -> Status {
                             ++replayed;
                             EXPECT_EQ(rec.payload, "pathfinder");
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(replayed, 1u);
  // And the poisoned queue rejects new work with the reopen message.
  std::vector<WalBatchEntry> batch(1);
  batch[0].type = 1;
  batch[0].payload = "late";
  Status late = queue.Commit(batch, /*sync=*/true);
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace temporadb
