#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace temporadb {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("missing relation");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing relation");
  EXPECT_EQ(s.ToString(), "NotFound: missing relation");
}

TEST(Status, NotSupportedIsTheTaxonomyCode) {
  Status s = Status::NotSupported("as of on historical");
  EXPECT_TRUE(s.IsNotSupported());
  EXPECT_FALSE(s.IsNotFound());
}

TEST(Status, EqualityIgnoresMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(Status, AllCodeNamesAreDistinct) {
  const StatusCode codes[] = {
      StatusCode::kOk,          StatusCode::kInvalidArgument,
      StatusCode::kNotFound,    StatusCode::kAlreadyExists,
      StatusCode::kNotSupported, StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition, StatusCode::kCorruption,
      StatusCode::kIOError,     StatusCode::kAborted,
      StatusCode::kParseError,  StatusCode::kInternal,
  };
  for (size_t i = 0; i < std::size(codes); ++i) {
    for (size_t j = i + 1; j < std::size(codes); ++j) {
      EXPECT_NE(StatusCodeName(codes[i]), StatusCodeName(codes[j]));
    }
  }
}

TEST(Status, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    TDB_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

TEST(Result, AssignOrReturnMacro) {
  auto source = [](bool ok) -> Result<int> {
    if (ok) return 5;
    return Status::OutOfRange("no");
  };
  auto consumer = [&](bool ok) -> Result<int> {
    TDB_ASSIGN_OR_RETURN(int v, source(ok));
    return v + 1;
  };
  EXPECT_EQ(*consumer(true), 6);
  EXPECT_EQ(consumer(false).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace temporadb
