// Randomized durability property: a random TQuel update stream applied to a
// persistent database — with checkpoints (plain and compacting) sprinkled in
// and a "crash" (drop without checkpoint) at the end — must recover to
// exactly the state of an in-memory twin that executed the same stream.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "common/random.h"
#include "core/database.h"
#include "temporal/coalesce.h"

namespace temporadb {
namespace {

std::vector<std::string> RandomStatements(uint64_t seed, int n,
                                          std::vector<int64_t>* days) {
  Random rng(seed);
  std::vector<std::string> stmts;
  const char* names[] = {"ann", "bob", "cam", "dee"};
  int64_t day = 4000;
  for (int i = 0; i < n; ++i) {
    day += 1 + static_cast<int64_t>(rng.Uniform(3));
    days->push_back(day);
    std::string name = names[rng.Uniform(4)];
    uint64_t pick = rng.Uniform(10);
    int64_t from = day - 10 + static_cast<int64_t>(rng.Uniform(20));
    std::string valid = " valid from \"" +
                        Date(Chronon(from)).ToString() + "\" to \"" +
                        (rng.OneIn(2)
                             ? std::string("inf")
                             : Date(Chronon(from + 1 +
                                            static_cast<int64_t>(
                                                rng.Uniform(40))))
                                   .ToString()) +
                        "\"";
    if (pick < 5) {
      stmts.push_back("append to r (name = \"" + name + "\", rank = \"r" +
                      std::to_string(rng.Uniform(4)) + "\")" + valid);
    } else if (pick < 8) {
      stmts.push_back("replace v (rank = \"r" +
                      std::to_string(rng.Uniform(4)) + "\")" + valid +
                      " where v.name = \"" + name + "\"");
    } else {
      stmts.push_back("delete v" + valid + " where v.name = \"" + name +
                      "\"");
    }
  }
  return stmts;
}

std::vector<BitemporalTuple> Canonical(Database* db) {
  Result<StoredRelation*> rel = db->GetRelation("r");
  EXPECT_TRUE(rel.ok());
  std::vector<BitemporalTuple> tuples;
  (*rel)->store()->ForEach([&](RowId, const BitemporalTuple& t) {
    tuples.push_back(t);
  });
  return Coalesce(std::move(tuples));
}

class PersistencePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PersistencePropertyTest, RecoveredStateMatchesInMemoryTwin) {
  const uint64_t seed = GetParam();
  std::string dir = testing::TempDir() + "/tdb_pprop_" +
                    std::to_string(::getpid()) + "_" + std::to_string(seed);
  std::filesystem::remove_all(dir);

  std::vector<int64_t> days;
  std::vector<std::string> stmts = RandomStatements(seed, 60, &days);

  // In-memory twin.
  ManualClock mem_clock;
  DatabaseOptions mem_options;
  mem_options.clock = &mem_clock;
  auto twin = std::move(*Database::Open(mem_options));
  ASSERT_TRUE(twin->Execute("create temporal relation r "
                            "(name = string, rank = string)")
                  .ok());
  ASSERT_TRUE(twin->Execute("range of v is r").ok());

  // Persistent database with random checkpoints.
  Random chk(seed * 31 + 5);
  {
    ManualClock clock;
    DatabaseOptions options;
    options.path = dir;
    options.clock = &clock;
    auto db = std::move(*Database::Open(options));
    ASSERT_TRUE(db->Execute("create temporal relation r "
                            "(name = string, rank = string)")
                    .ok());
    ASSERT_TRUE(db->Execute("range of v is r").ok());
    for (size_t i = 0; i < stmts.size(); ++i) {
      clock.SetTime(Chronon(days[i]));
      mem_clock.SetTime(Chronon(days[i]));
      Result<tquel::ExecResult> a = db->Execute(stmts[i]);
      Result<tquel::ExecResult> b = twin->Execute(stmts[i]);
      ASSERT_EQ(a.ok(), b.ok()) << stmts[i];
      if (chk.OneIn(8)) {
        ASSERT_TRUE(db->Checkpoint(/*compact=*/chk.OneIn(2)).ok());
      }
    }
  }  // Crash without a final checkpoint.

  // Recover and compare canonical (coalesced) contents.
  ManualClock clock2;
  DatabaseOptions options2;
  options2.path = dir;
  options2.clock = &clock2;
  auto recovered = std::move(*Database::Open(options2));
  EXPECT_EQ(Canonical(recovered.get()), Canonical(twin.get()))
      << "seed " << seed;

  // Both must answer a bitemporal probe identically.
  ASSERT_TRUE(recovered->Execute("range of v is r").ok());
  for (int64_t probe_day : {days[days.size() / 3], days[days.size() - 1]}) {
    std::string q = "retrieve (v.name, v.rank) when v overlap \"" +
                    Date(Chronon(probe_day)).ToString() + "\" as of \"" +
                    Date(Chronon(probe_day)).ToString() + "\"";
    Result<Rowset> a = recovered->Query(q);
    Result<Rowset> b = twin->Query(q);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(Rowset::SameContent(*a, *b)) << q;
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistencePropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace temporadb
