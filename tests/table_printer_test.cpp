#include "common/table_printer.h"

#include <gtest/gtest.h>

namespace temporadb {
namespace {

TEST(TablePrinter, PlainColumns) {
  TablePrinter p;
  p.AddColumn("name");
  p.AddColumn("rank");
  p.AddRow({"Merrie", "full"});
  p.AddRow({"Tom", "associate"});
  std::string out = p.Render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| Merrie | full"), std::string::npos);
  EXPECT_NE(out.find("| Tom"), std::string::npos);
  // No banner sub-row for plain columns.
  EXPECT_EQ(out.find("(from)"), std::string::npos);
}

TEST(TablePrinter, GroupedTemporalColumns) {
  TablePrinter p;
  p.AddColumn("name");
  p.AddGroup("valid time", {"(from)", "(to)"});
  p.AddGroup("transaction time", {"(start)", "(end)"});
  p.AddRow({"Merrie", "09/01/77", "12/01/82", "12/15/82", "inf"});
  std::string out = p.Render("Figure 8");
  EXPECT_EQ(out.find("Figure 8"), 0u);
  EXPECT_NE(out.find("valid time"), std::string::npos);
  EXPECT_NE(out.find("transaction time"), std::string::npos);
  EXPECT_NE(out.find("(from)"), std::string::npos);
  EXPECT_NE(out.find("(end)"), std::string::npos);
  // The paper's double bar separates explicit from temporal columns.
  EXPECT_NE(out.find("||"), std::string::npos);
}

TEST(TablePrinter, ColumnsWidenToFitData) {
  TablePrinter p;
  p.AddColumn("x");
  p.AddRow({"a-rather-long-cell"});
  std::string out = p.Render();
  EXPECT_NE(out.find("a-rather-long-cell"), std::string::npos);
  // Header and data lines align to the same width.
  size_t header_end = out.find('\n');
  size_t sep_end = out.find('\n', header_end + 1);
  size_t data_end = out.find('\n', sep_end + 1);
  EXPECT_EQ(out.substr(0, header_end).size(),
            out.substr(sep_end + 1, data_end - sep_end - 1).size());
}

TEST(TablePrinter, BannerWiderThanColumnsWidensGroup) {
  TablePrinter p;
  p.AddGroup("a very wide banner indeed", {"(a)", "(b)"}, false);
  p.AddRow({"1", "2"});
  std::string out = p.Render();
  EXPECT_NE(out.find("a very wide banner indeed"), std::string::npos);
}

TEST(TablePrinter, EmptyTableStillRendersHeader) {
  TablePrinter p;
  p.AddColumn("only");
  std::string out = p.Render();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TablePrinter, NumColumns) {
  TablePrinter p;
  p.AddColumn("a");
  p.AddGroup("g", {"x", "y", "z"});
  EXPECT_EQ(p.num_columns(), 4u);
}

TEST(TablePrinter, AllLinesSameWidth) {
  TablePrinter p;
  p.AddColumn("name");
  p.AddGroup("valid time", {"(from)", "(to)"});
  p.AddRow({"Merrie", "09/01/77", "inf"});
  p.AddRow({"T", "1", "2"});
  std::string out = p.Render();
  size_t width = std::string::npos;
  size_t pos = 0;
  while (pos < out.size()) {
    size_t eol = out.find('\n', pos);
    if (eol == std::string::npos) break;
    size_t len = eol - pos;
    if (width == std::string::npos) {
      width = len;
    } else {
      EXPECT_EQ(len, width) << out;
    }
    pos = eol + 1;
  }
}

}  // namespace
}  // namespace temporadb
