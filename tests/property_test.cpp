// Cross-kind property tests: the taxonomy's semantic identities checked
// over randomized update streams.
//
//  P1  Rollback(t) of a rollback relation == the static relation obtained by
//      replaying the transaction prefix <= t.
//  P2  The current state of a temporal relation == the historical relation
//      produced by the same stream.
//  P3  HistoricalStateAsOf(t) of a temporal relation == the historical
//      relation produced by replaying the prefix <= t.
//  P4  Append-only: committed versions of rollback/temporal relations never
//      mutate; version counts never shrink.

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <set>

#include "common/random.h"
#include "temporal/coalesce.h"
#include "temporal/snapshot.h"
#include "tests/relation_test_util.h"

namespace temporadb {
namespace {

// One random DML operation.
struct Op {
  enum class Kind { kInsert, kDelete, kReplace } kind;
  std::string name;
  std::string rank;
  int64_t txn_day;
  // Valid period, used only by kinds with valid time.
  int64_t valid_from;
  int64_t valid_to;  // INT64_MAX => open.
};

std::vector<Op> RandomStream(uint64_t seed, int n) {
  Random rng(seed);
  std::vector<Op> ops;
  const char* names[] = {"ann", "bob", "cam", "dee", "eli"};
  const char* ranks[] = {"assistant", "associate", "full"};
  int64_t day = 1000;
  for (int i = 0; i < n; ++i) {
    Op op;
    uint64_t pick = rng.Uniform(10);
    op.kind = pick < 5 ? Op::Kind::kInsert
                       : (pick < 8 ? Op::Kind::kReplace : Op::Kind::kDelete);
    op.name = names[rng.Uniform(5)];
    op.rank = ranks[rng.Uniform(3)];
    day += 1 + static_cast<int64_t>(rng.Uniform(5));
    op.txn_day = day;
    // Valid periods scatter retroactive/postactive around the txn day.
    op.valid_from = day - 20 + static_cast<int64_t>(rng.Uniform(40));
    op.valid_to = rng.OneIn(2)
                      ? std::numeric_limits<int64_t>::max()
                      : op.valid_from + 1 + static_cast<int64_t>(rng.Uniform(30));
    ops.push_back(op);
  }
  return ops;
}

Period ValidOf(const Op& op) {
  Chronon end = op.valid_to == std::numeric_limits<int64_t>::max()
                    ? Chronon::Forever()
                    : Chronon(op.valid_to);
  return Period(Chronon(op.valid_from), end);
}

// Applies one op to a relation inside its own transaction.  `use_valid`
// passes the op's valid period (valid-time kinds only).
Status ApplyOp(StoredRelation* rel, TxnManager* manager, ManualClock* clock,
               const Op& op, bool use_valid) {
  clock->SetTime(Chronon(op.txn_day));
  Result<Transaction*> txn = manager->Begin();
  if (!txn.ok()) return txn.status();
  std::optional<Period> valid;
  if (use_valid) valid = ValidOf(op);
  std::string name = op.name;
  TuplePredicate pred = [name](const std::vector<Value>& values) {
    return values[0].AsString() == name;
  };
  Status s;
  switch (op.kind) {
    case Op::Kind::kInsert:
      s = rel->Append(*txn, {Value(op.name), Value(op.rank)}, valid);
      break;
    case Op::Kind::kDelete: {
      Result<size_t> n = rel->DeleteWhere(*txn, pred, valid);
      s = n.ok() ? Status::OK() : n.status();
      break;
    }
    case Op::Kind::kReplace: {
      UpdateSpec updates{ConstUpdate(1, Value(op.rank))};
      Result<size_t> n = rel->ReplaceWhere(*txn, pred, updates, valid);
      s = n.ok() ? Status::OK() : n.status();
      break;
    }
  }
  if (!s.ok()) {
    EXPECT_TRUE(manager->Abort(*txn).ok());
    return s;
  }
  return manager->Commit(*txn);
}

RelationInfo Info(TemporalClass cls) {
  RelationInfo info;
  info.id = 1;
  info.name = "r";
  info.schema = *Schema::Make({Attribute{"name", Type::String()},
                               Attribute{"rank", Type::String()}});
  info.temporal_class = cls;
  return info;
}

// Canonical form of a relation's live content for comparison: coalesced,
// sorted tuples.
std::vector<BitemporalTuple> CanonicalContent(const VersionStore& store,
                                              bool only_current,
                                              bool strip_txn) {
  std::vector<BitemporalTuple> tuples;
  store.ForEach([&](RowId, const BitemporalTuple& t) {
    if (only_current && !t.IsCurrentState()) return;
    BitemporalTuple copy = t;
    if (strip_txn) copy.txn = Period::All();
    tuples.push_back(std::move(copy));
  });
  return Coalesce(std::move(tuples));
}

class StreamPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamPropertyTest, P1RollbackEqualsReplayedPrefix) {
  std::vector<Op> ops = RandomStream(GetParam(), 60);
  ManualClock clock;
  TxnManager manager(&clock);
  auto rollback = MakeStoredRelation(Info(TemporalClass::kRollback));
  for (const Op& op : ops) {
    ASSERT_TRUE(
        ApplyOp(rollback.get(), &manager, &clock, op, false).ok());
  }
  // For several probe instants, replay the prefix into a static relation
  // and compare contents.
  for (size_t prefix : {size_t{0}, ops.size() / 3, ops.size() / 2,
                        ops.size() - 1}) {
    int64_t probe = ops[prefix].txn_day;
    ManualClock clock2;
    TxnManager manager2(&clock2);
    auto replay = MakeStoredRelation(Info(TemporalClass::kStatic));
    for (const Op& op : ops) {
      if (op.txn_day > probe) break;
      ASSERT_TRUE(ApplyOp(replay.get(), &manager2, &clock2, op, false).ok());
    }
    StaticState slice = RollbackSlice(*rollback->store(), Chronon(probe));
    std::vector<std::vector<Value>> replay_rows;
    replay->store()->ForEach([&](RowId, const BitemporalTuple& t) {
      replay_rows.push_back(t.values);
    });
    std::sort(replay_rows.begin(), replay_rows.end());
    EXPECT_EQ(slice.rows, replay_rows) << "probe day " << probe;
  }
}

TEST_P(StreamPropertyTest, P2TemporalCurrentStateEqualsHistorical) {
  std::vector<Op> ops = RandomStream(GetParam() + 1000, 60);
  ManualClock clock;
  TxnManager manager(&clock);
  auto temporal = MakeStoredRelation(Info(TemporalClass::kTemporal));
  ManualClock clock2;
  TxnManager manager2(&clock2);
  auto historical = MakeStoredRelation(Info(TemporalClass::kHistorical));
  for (const Op& op : ops) {
    ASSERT_TRUE(ApplyOp(temporal.get(), &manager, &clock, op, true).ok());
    ASSERT_TRUE(
        ApplyOp(historical.get(), &manager2, &clock2, op, true).ok());
  }
  EXPECT_EQ(CanonicalContent(*temporal->store(), /*only_current=*/true,
                             /*strip_txn=*/true),
            CanonicalContent(*historical->store(), false, true));
}

TEST_P(StreamPropertyTest, P3TemporalRollbackEqualsReplayedHistorical) {
  std::vector<Op> ops = RandomStream(GetParam() + 2000, 50);
  ManualClock clock;
  TxnManager manager(&clock);
  auto temporal = MakeStoredRelation(Info(TemporalClass::kTemporal));
  for (const Op& op : ops) {
    ASSERT_TRUE(ApplyOp(temporal.get(), &manager, &clock, op, true).ok());
  }
  for (size_t prefix : {ops.size() / 4, ops.size() / 2, ops.size() - 1}) {
    int64_t probe = ops[prefix].txn_day;
    ManualClock clock2;
    TxnManager manager2(&clock2);
    auto replay = MakeStoredRelation(Info(TemporalClass::kHistorical));
    for (const Op& op : ops) {
      if (op.txn_day > probe) break;
      ASSERT_TRUE(ApplyOp(replay.get(), &manager2, &clock2, op, true).ok());
    }
    // The temporal relation's historical state as of `probe`...
    HistoricalState state =
        HistoricalStateAsOf(*temporal->store(), Chronon(probe));
    std::vector<BitemporalTuple> got = state.rows;
    for (BitemporalTuple& t : got) t.txn = Period::All();
    got = Coalesce(std::move(got));
    // ...equals the historical relation built from the prefix.
    EXPECT_EQ(got, CanonicalContent(*replay->store(), false, true))
        << "probe day " << probe;
  }
}

TEST_P(StreamPropertyTest, P4CommittedVersionsNeverMutate) {
  std::vector<Op> ops = RandomStream(GetParam() + 3000, 50);
  ManualClock clock;
  TxnManager manager(&clock);
  auto temporal = MakeStoredRelation(Info(TemporalClass::kTemporal));
  // Snapshot of closed versions after each transaction.
  std::map<RowId, BitemporalTuple> closed;
  size_t last_version_count = 0;
  for (const Op& op : ops) {
    ASSERT_TRUE(ApplyOp(temporal.get(), &manager, &clock, op, true).ok());
    // Version count is monotone (append-only storage).
    EXPECT_GE(temporal->store()->version_count(), last_version_count);
    last_version_count = temporal->store()->version_count();
    // Previously closed versions are bit-identical.
    temporal->store()->ForEach([&](RowId row, const BitemporalTuple& t) {
      auto it = closed.find(row);
      if (it != closed.end()) {
        EXPECT_EQ(it->second, t) << "closed version " << row << " mutated";
      } else if (!t.IsCurrentState()) {
        closed.emplace(row, t);
      }
    });
  }
  EXPECT_GT(closed.size(), 0u);
}

TEST_P(StreamPropertyTest, P5TimesliceConsistency) {
  // For every probe chronon: the valid timeslice of the historical relation
  // equals the set of live tuples whose period contains the probe.
  std::vector<Op> ops = RandomStream(GetParam() + 4000, 40);
  ManualClock clock;
  TxnManager manager(&clock);
  auto historical = MakeStoredRelation(Info(TemporalClass::kHistorical));
  for (const Op& op : ops) {
    ASSERT_TRUE(ApplyOp(historical.get(), &manager, &clock, op, true).ok());
  }
  for (int64_t probe = 980; probe < 1400; probe += 13) {
    StaticState slice = ValidTimeslice(*historical->store(), Chronon(probe));
    std::vector<std::vector<Value>> expected;
    historical->store()->ForEach([&](RowId, const BitemporalTuple& t) {
      if (t.valid.Contains(Chronon(probe))) expected.push_back(t.values);
    });
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(slice.rows, expected) << "probe " << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace temporadb
