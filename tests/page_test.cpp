#include "storage/page.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

namespace temporadb {
namespace {

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : buffer_(new char[kPageSize]), page_(buffer_.get()) {
    page_.Init();
  }
  std::unique_ptr<char[]> buffer_;
  SlottedPage page_;
};

TEST_F(SlottedPageTest, FreshPageIsEmpty) {
  EXPECT_EQ(page_.slot_count(), 0);
  EXPECT_EQ(page_.next_page(), kInvalidPageId);
  EXPECT_GT(page_.FreeSpace(), kPageSize - 64);
}

TEST_F(SlottedPageTest, InsertAndGet) {
  Result<uint16_t> slot = page_.Insert("hello");
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(*slot, 0);
  Result<Slice> rec = page_.Get(0);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->ToString(), "hello");
}

TEST_F(SlottedPageTest, MultipleRecordsKeepDistinctSlots) {
  for (int i = 0; i < 50; ++i) {
    std::string rec = "record-" + std::to_string(i);
    Result<uint16_t> slot = page_.Insert(rec);
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(*slot, i);
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(page_.Get(static_cast<uint16_t>(i))->ToString(),
              "record-" + std::to_string(i));
  }
}

TEST_F(SlottedPageTest, FillsUntilOutOfSpace) {
  std::string rec(100, 'x');
  int inserted = 0;
  while (true) {
    Result<uint16_t> slot = page_.Insert(rec);
    if (!slot.ok()) {
      EXPECT_EQ(slot.status().code(), StatusCode::kOutOfRange);
      break;
    }
    ++inserted;
  }
  // 8 KiB page, 100-byte records + 4-byte slots: ~78 fit.
  EXPECT_GT(inserted, 70);
  EXPECT_LT(inserted, 82);
}

TEST_F(SlottedPageTest, DeleteTombstones) {
  ASSERT_TRUE(page_.Insert("a").ok());
  ASSERT_TRUE(page_.Insert("b").ok());
  ASSERT_TRUE(page_.Delete(0).ok());
  EXPECT_TRUE(page_.Get(0).status().IsNotFound());
  EXPECT_EQ(page_.Get(1)->ToString(), "b");  // Slot ids stable.
  EXPECT_EQ(page_.LiveSlots(), std::vector<uint16_t>{1});
}

TEST_F(SlottedPageTest, DeleteOutOfRange) {
  EXPECT_TRUE(page_.Delete(5).IsNotFound());
}

TEST_F(SlottedPageTest, UpdateInPlaceShrinks) {
  ASSERT_TRUE(page_.Insert("long-record").ok());
  ASSERT_TRUE(page_.UpdateInPlace(0, "short").ok());
  EXPECT_EQ(page_.Get(0)->ToString(), "short");
}

TEST_F(SlottedPageTest, UpdateInPlaceRefusesGrowth) {
  ASSERT_TRUE(page_.Insert("tiny").ok());
  Status s = page_.UpdateInPlace(0, "much larger record");
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(page_.Get(0)->ToString(), "tiny");
}

TEST_F(SlottedPageTest, NextPageLink) {
  page_.set_next_page(42);
  EXPECT_EQ(page_.next_page(), 42u);
}

TEST_F(SlottedPageTest, ChecksumDetectsCorruption) {
  ASSERT_TRUE(page_.Insert("payload").ok());
  page_.StampChecksum();
  EXPECT_TRUE(page_.VerifyChecksum());
  buffer_[kPageSize / 2] ^= 0x1;
  EXPECT_FALSE(page_.VerifyChecksum());
}

TEST_F(SlottedPageTest, EmptyRecordAllowed) {
  Result<uint16_t> slot = page_.Insert(Slice("", 0));
  ASSERT_TRUE(slot.ok());
  // Empty records are indistinguishable from tombstones by offset 0?  No:
  // the cell start offset is kPageSize initially, so offset != 0.
  Result<Slice> rec = page_.Get(*slot);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), 0u);
}

}  // namespace
}  // namespace temporadb
