#ifndef TEMPORADB_TESTS_RELATION_TEST_UTIL_H_
#define TEMPORADB_TESTS_RELATION_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>

#include "temporal/stored_relation.h"
#include "txn/clock.h"
#include "txn/txn_manager.h"

namespace temporadb {
namespace testutil {

/// Shared fixture for stored-relation tests: a (name, rank) relation of a
/// chosen temporal class, a manual clock, and one-shot transaction helpers.
class RelationFixture : public ::testing::Test {
 protected:
  RelationFixture() : manager_(&clock_) {}

  void MakeRelation(TemporalClass cls,
                    TemporalDataModel model = TemporalDataModel::kInterval) {
    RelationInfo info;
    info.id = 1;
    info.name = "faculty";
    info.schema = *Schema::Make({Attribute{"name", Type::String()},
                                 Attribute{"rank", Type::String()}});
    info.temporal_class = cls;
    info.data_model = model;
    relation_ = MakeStoredRelation(info);
  }

  Chronon Day(const char* text) { return Date::Parse(text)->chronon(); }
  Period Between(const char* a, const char* b) {
    return Period(Day(a), Day(b));
  }
  Period Since(const char* a) { return Period::From(Day(a)); }

  /// Runs `fn` in a transaction stamped at `date`, committing on OK.
  Status AtDate(const char* date, const std::function<Status(Transaction*)>& fn) {
    EXPECT_TRUE(clock_.SetDate(date).ok());
    Result<Transaction*> txn = manager_.Begin();
    if (!txn.ok()) return txn.status();
    Status s = fn(*txn);
    if (!s.ok()) {
      EXPECT_TRUE(manager_.Abort(*txn).ok());
      return s;
    }
    return manager_.Commit(*txn);
  }

  Status Append(const char* date, const char* name, const char* rank,
                std::optional<Period> valid = std::nullopt) {
    return AtDate(date, [&](Transaction* txn) {
      return relation_->Append(txn, {Value(name), Value(rank)}, valid);
    });
  }

  static TuplePredicate NameIs(const char* name) {
    std::string n = name;
    return [n](const std::vector<Value>& values) {
      return values[0].AsString() == n;
    };
  }

  Result<size_t> Delete(const char* date, const char* name,
                        std::optional<Period> valid = std::nullopt) {
    size_t count = 0;
    Status s = AtDate(date, [&](Transaction* txn) -> Status {
      TDB_ASSIGN_OR_RETURN(count,
                           relation_->DeleteWhere(txn, NameIs(name), valid));
      return Status::OK();
    });
    if (!s.ok()) return s;
    return count;
  }

  Result<size_t> Replace(const char* date, const char* name,
                         const char* new_rank,
                         std::optional<Period> valid = std::nullopt) {
    size_t count = 0;
    UpdateSpec updates{ConstUpdate(1, Value(new_rank))};
    Status s = AtDate(date, [&](Transaction* txn) -> Status {
      TDB_ASSIGN_OR_RETURN(
          count, relation_->ReplaceWhere(txn, NameIs(name), updates, valid));
      return Status::OK();
    });
    if (!s.ok()) return s;
    return count;
  }

  /// All live versions matching `name`, in row order.
  std::vector<BitemporalTuple> VersionsOf(const char* name) {
    std::vector<BitemporalTuple> out;
    relation_->store()->ForEach([&](RowId, const BitemporalTuple& t) {
      if (t.values[0].AsString() == name) out.push_back(t);
    });
    return out;
  }

  size_t LiveCount() { return relation_->store()->live_count(); }

  ManualClock clock_;
  TxnManager manager_;
  std::unique_ptr<StoredRelation> relation_;
};

}  // namespace testutil
}  // namespace temporadb

#endif  // TEMPORADB_TESTS_RELATION_TEST_UTIL_H_
