// Unit tests for the fault-injection I/O layer itself: un-synced data and
// directory entries vanish at a simulated crash, synced state survives,
// torn tails and per-call faults behave as configured.

#include "storage/fault_injection.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

namespace temporadb {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() {
    root_ = testing::TempDir() + "/tdb_fault_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::remove_all(root_);
    // Create the root through the fault filesystem so its entries are
    // sync-gated, exactly like a database directory.
    EXPECT_TRUE(fs_.MakeDir(root_).ok());
  }
  ~FaultInjectionTest() override { std::filesystem::remove_all(root_); }

  std::string ReadBase(const std::string& path) {
    Result<std::string> content = ReadFileToString(FileSystem::Default(), path);
    return content.ok() ? *content : "<missing>";
  }

  static int counter_;
  FaultInjectionFileSystem fs_;
  std::string root_;
};

int FaultInjectionTest::counter_ = 0;

TEST_F(FaultInjectionTest, UnsyncedWritesVanishAtCrash) {
  std::string path = root_ + "/f";
  {
    auto file = fs_.OpenFile(path, /*create=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->WriteAt(0, "durable", 7).ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE(fs_.SyncDir(root_).ok());
    ASSERT_TRUE((*file)->WriteAt(7, "-lost", 5).ok());
  }
  ASSERT_TRUE(fs_.RealizeCrash().ok());
  EXPECT_EQ(ReadBase(path), "durable");
}

TEST_F(FaultInjectionTest, TornTailKeepsConfiguredPrefix) {
  std::string path = root_ + "/f";
  {
    auto file = fs_.OpenFile(path, /*create=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->WriteAt(0, "0123456789", 10).ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE(fs_.SyncDir(root_).ok());
    ASSERT_TRUE((*file)->WriteAt(10, "ABCDEF", 6).ok());
  }
  fs_.set_keep_unsynced_prefix(3);
  ASSERT_TRUE(fs_.RealizeCrash().ok());
  // Three bytes of the un-synced suffix made it to the platter.
  EXPECT_EQ(ReadBase(path), "0123456789ABC");
}

TEST_F(FaultInjectionTest, CreatedFileNeedsSyncDirToSurvive) {
  std::string path = root_ + "/f";
  {
    auto file = fs_.OpenFile(path, /*create=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->WriteAt(0, "content", 7).ok());
    // The file's *data* is synced, but its directory entry is not.
    ASSERT_TRUE((*file)->Sync().ok());
  }
  ASSERT_TRUE(fs_.RealizeCrash().ok());
  EXPECT_FALSE(FileSystem::Default()->FileExists(path));
}

TEST_F(FaultInjectionTest, UnsyncedRenameRollsBackToOldContent) {
  std::string target = root_ + "/CURRENT";
  std::string tmp = root_ + "/CURRENT.tmp";
  {
    auto file = fs_.OpenFile(target, /*create=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->WriteAt(0, "old", 3).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  ASSERT_TRUE(fs_.SyncDir(root_).ok());
  {
    auto file = fs_.OpenFile(tmp, /*create=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->WriteAt(0, "new", 3).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  ASSERT_TRUE(fs_.RenameFile(tmp, target).ok());
  // No SyncDir: the rename is metadata that a crash throws away.
  ASSERT_TRUE(fs_.RealizeCrash().ok());
  EXPECT_EQ(ReadBase(target), "old");
  EXPECT_FALSE(FileSystem::Default()->FileExists(tmp));
}

TEST_F(FaultInjectionTest, SyncDirMakesRenameDurable) {
  std::string target = root_ + "/CURRENT";
  std::string tmp = root_ + "/CURRENT.tmp";
  {
    auto file = fs_.OpenFile(target, /*create=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->WriteAt(0, "old", 3).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  ASSERT_TRUE(fs_.SyncDir(root_).ok());
  {
    auto file = fs_.OpenFile(tmp, /*create=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->WriteAt(0, "new", 3).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  ASSERT_TRUE(fs_.RenameFile(tmp, target).ok());
  ASSERT_TRUE(fs_.SyncDir(root_).ok());
  ASSERT_TRUE(fs_.RealizeCrash().ok());
  EXPECT_EQ(ReadBase(target), "new");
  EXPECT_FALSE(FileSystem::Default()->FileExists(tmp));
}

TEST_F(FaultInjectionTest, PlannedCrashFailsTheSyncAndEverythingAfter) {
  std::string path = root_ + "/f";
  auto file = fs_.OpenFile(path, /*create=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->WriteAt(0, "a", 1).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE(fs_.SyncDir(root_).ok());
  uint64_t counted = fs_.sync_count();
  EXPECT_GE(counted, 2u);

  fs_.PlanCrashAtSync(1);  // The very next barrier.
  ASSERT_TRUE((*file)->WriteAt(1, "b", 1).ok());
  Status failed_sync = (*file)->Sync();
  EXPECT_TRUE(failed_sync.IsIOError()) << failed_sync.ToString();
  EXPECT_TRUE(fs_.crashed());
  // Every later operation fails until the crash is realized.
  EXPECT_TRUE((*file)->WriteAt(2, "c", 1).IsIOError());
  EXPECT_FALSE(fs_.OpenFile(root_ + "/other", true).ok());

  file->reset();
  ASSERT_TRUE(fs_.RealizeCrash().ok());
  EXPECT_FALSE(fs_.crashed());
  // The write guarded by the failed sync never became durable.
  EXPECT_EQ(ReadBase(path), "a");
  // The filesystem is usable again.
  EXPECT_TRUE(fs_.OpenFile(root_ + "/other", true).ok());
}

TEST_F(FaultInjectionTest, FaultFilterInjectsShortWrites) {
  std::string path = root_ + "/f";
  auto file = fs_.OpenFile(path, /*create=*/true);
  ASSERT_TRUE(file.ok());
  fs_.set_fault_filter([&](FaultOp op, const std::string& p) {
    return op == FaultOp::kWrite && p == path;
  });
  Status torn = (*file)->WriteAt(0, "0123456789", 10);
  EXPECT_TRUE(torn.IsIOError());
  fs_.set_fault_filter(nullptr);
  // Half the buffer landed: a torn write, not an atomic failure.
  Result<uint64_t> size = (*file)->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 5u);
}

TEST_F(FaultInjectionTest, PagerOverlayDropsUnsyncedPages) {
  FaultInjectionPager pager(std::make_unique<MemPager>());
  Result<PageId> id = pager.AllocatePage();
  ASSERT_TRUE(id.ok());
  char buf[kPageSize];
  std::fill(buf, buf + kPageSize, 'x');
  ASSERT_TRUE(pager.WritePage(*id, buf).ok());
  // Nothing has reached the wrapped pager yet.
  EXPECT_EQ(pager.base()->page_count(), 0u);
  char out[kPageSize];
  ASSERT_TRUE(pager.ReadPage(*id, out).ok());
  EXPECT_EQ(out[0], 'x');

  pager.DropUnsyncedWrites();
  EXPECT_EQ(pager.page_count(), 0u);

  // Write again and sync: now the base holds the page.
  id = pager.AllocatePage();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(pager.WritePage(*id, buf).ok());
  ASSERT_TRUE(pager.Sync().ok());
  EXPECT_EQ(pager.base()->page_count(), 1u);
  EXPECT_EQ(pager.sync_count(), 1u);
}

TEST_F(FaultInjectionTest, PagerInjectedFaults) {
  FaultInjectionPager pager(std::make_unique<MemPager>());
  pager.FailNextWrites(1);
  EXPECT_TRUE(pager.AllocatePage().status().IsIOError());
  Result<PageId> id = pager.AllocatePage();
  ASSERT_TRUE(id.ok());
  pager.FailNextSyncs(1);
  EXPECT_TRUE(pager.Sync().IsIOError());
  // The failed sync shipped nothing to the base.
  EXPECT_EQ(pager.base()->page_count(), 0u);
  ASSERT_TRUE(pager.Sync().ok());
  EXPECT_EQ(pager.base()->page_count(), 1u);
}

}  // namespace
}  // namespace temporadb
