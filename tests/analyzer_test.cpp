#include "tquel/analyzer.h"

#include <gtest/gtest.h>

#include "tquel/parser.h"

namespace temporadb {
namespace tquel {
namespace {

class AnalyzerTest : public ::testing::Test {
 protected:
  void AddRelation(const char* name, TemporalClass cls) {
    RelationInfo info;
    info.id = next_id_++;
    info.name = name;
    info.schema = *Schema::Make({Attribute{"name", Type::String()},
                                 Attribute{"rank", Type::String()},
                                 Attribute{"salary", Type::Int()},
                                 Attribute{"hired", Type::DateType()}});
    info.temporal_class = cls;
    relations_[name] = MakeStoredRelation(info);
  }

  void AddRange(const char* var, const char* relation) {
    ranges_[var] = relation;
  }

  AnalyzerContext Context() {
    AnalyzerContext ctx;
    ctx.get_relation = [this](std::string_view name)
        -> Result<StoredRelation*> {
      auto it = relations_.find(std::string(name));
      if (it == relations_.end()) return Status::NotFound("no relation");
      return it->second.get();
    };
    ctx.ranges = &ranges_;
    return ctx;
  }

  Result<BoundRetrieve> Analyze(std::string_view src) {
    Result<Statement> stmt = ParseOne(src);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    if (!stmt.ok()) return stmt.status();
    AnalyzerContext ctx = Context();
    return AnalyzeRetrieve(std::get<RetrieveStmt>(*stmt), ctx);
  }

  uint64_t next_id_ = 1;
  std::map<std::string, std::unique_ptr<StoredRelation>> relations_;
  std::map<std::string, std::string> ranges_;
};

TEST_F(AnalyzerTest, ResolvesQualifiedColumns) {
  AddRelation("faculty", TemporalClass::kStatic);
  AddRange("f", "faculty");
  Result<BoundRetrieve> bound =
      Analyze("retrieve (f.rank) where f.name = \"Merrie\"");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->participants.size(), 1u);
  EXPECT_EQ(bound->participants[0].name, "f");
  EXPECT_EQ(bound->target_names[0], "rank");
  EXPECT_EQ(bound->target_types[0], ValueType::kString);
  EXPECT_EQ(bound->result_class, TemporalClass::kStatic);
}

TEST_F(AnalyzerTest, ResolvesBareColumns) {
  AddRelation("faculty", TemporalClass::kStatic);
  AddRange("f", "faculty");
  Result<BoundRetrieve> bound = Analyze("retrieve (rank)");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->participants.size(), 1u);
}

TEST_F(AnalyzerTest, AmbiguousBareColumnRejected) {
  AddRelation("faculty", TemporalClass::kStatic);
  AddRelation("students", TemporalClass::kStatic);
  AddRange("f", "faculty");
  AddRange("s", "students");
  Result<BoundRetrieve> bound = Analyze("retrieve (rank)");
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(AnalyzerTest, UnknownVariableAndAttribute) {
  AddRelation("faculty", TemporalClass::kStatic);
  AddRange("f", "faculty");
  EXPECT_FALSE(Analyze("retrieve (g.rank)").ok());
  EXPECT_FALSE(Analyze("retrieve (f.missing)").ok());
  EXPECT_FALSE(Analyze("retrieve (missing)").ok());
}

TEST_F(AnalyzerTest, ClauseLegalityPerClass) {
  AddRelation("stat", TemporalClass::kStatic);
  AddRelation("roll", TemporalClass::kRollback);
  AddRelation("hist", TemporalClass::kHistorical);
  AddRelation("temp", TemporalClass::kTemporal);
  AddRange("s", "stat");
  AddRange("r", "roll");
  AddRange("h", "hist");
  AddRange("t", "temp");

  // Figure 10, row by row.
  EXPECT_FALSE(Analyze("retrieve (s.rank) as of \"01/01/80\"").ok());
  EXPECT_FALSE(Analyze("retrieve (s.rank) when s overlap s").ok());
  EXPECT_TRUE(Analyze("retrieve (r.rank) as of \"01/01/80\"").ok());
  EXPECT_FALSE(Analyze("retrieve (r.rank) when r overlap r").ok());
  EXPECT_FALSE(Analyze("retrieve (h.rank) as of \"01/01/80\"").ok());
  EXPECT_TRUE(Analyze("retrieve (h.rank) when h overlap h").ok());
  EXPECT_TRUE(
      Analyze("retrieve (t.rank) when t overlap t as of \"01/01/80\"").ok());
  // The violations are NotSupported, not parse errors.
  EXPECT_TRUE(Analyze("retrieve (s.rank) as of \"01/01/80\"")
                  .status()
                  .IsNotSupported());
}

// The full sweep: every temporal class crossed with every retrieve clause
// (Figures 10-12).  `where` restricts explicit attributes and is legal
// everywhere; `when`/`valid` are historical constructs requiring valid
// time; `as of` is a rollback construct requiring transaction time.
// DESIGN.md §11.3 carries this same matrix in machine-readable form and
// tools/tdb_lint.py keeps it in sync with the analyzer — this test is the
// runtime twin of that compile-time check.
TEST_F(AnalyzerTest, ClauseLegalityMatrix) {
  AddRelation("stat", TemporalClass::kStatic);
  AddRelation("roll", TemporalClass::kRollback);
  AddRelation("hist", TemporalClass::kHistorical);
  AddRelation("temp", TemporalClass::kTemporal);
  AddRange("s", "stat");
  AddRange("r", "roll");
  AddRange("h", "hist");
  AddRange("t", "temp");

  struct Row {
    const char* var;
    TemporalClass cls;
    bool when_ok;
    bool valid_ok;
    bool asof_ok;
  };
  constexpr Row kMatrix[] = {
      {"s", TemporalClass::kStatic, false, false, false},
      {"r", TemporalClass::kRollback, false, false, true},
      {"h", TemporalClass::kHistorical, true, true, false},
      {"t", TemporalClass::kTemporal, true, true, true},
  };

  for (const Row& row : kMatrix) {
    SCOPED_TRACE(std::string(TemporalClassName(row.cls)));
    const std::string v = row.var;

    // `where` is non-temporal: legal on every kind.
    EXPECT_TRUE(
        Analyze("retrieve (" + v + ".rank) where " + v + ".name = \"x\"")
            .ok());

    Result<BoundRetrieve> when_bound =
        Analyze("retrieve (" + v + ".rank) when " + v + " overlap " + v);
    EXPECT_EQ(when_bound.ok(), row.when_ok);
    if (!row.when_ok) {
      EXPECT_TRUE(when_bound.status().IsNotSupported());
    }

    Result<BoundRetrieve> valid_bound = Analyze(
        "retrieve (" + v + ".rank) valid from \"01/01/80\" to \"06/01/80\"");
    EXPECT_EQ(valid_bound.ok(), row.valid_ok);
    if (!row.valid_ok) {
      EXPECT_TRUE(valid_bound.status().IsNotSupported());
    }

    Result<BoundRetrieve> asof_bound =
        Analyze("retrieve (" + v + ".rank) as of \"01/01/80\"");
    EXPECT_EQ(asof_bound.ok(), row.asof_ok);
    if (!row.asof_ok) {
      EXPECT_TRUE(asof_bound.status().IsNotSupported());
    }

    // Clause combinations never launder an illegal clause: the conjunction
    // is legal iff every component is.
    Result<BoundRetrieve> all = Analyze(
        "retrieve (" + v + ".rank) valid from \"01/01/80\" to \"06/01/80\" "
        "where " + v + ".name = \"x\" when " + v + " overlap " + v +
        " as of \"01/01/80\"");
    EXPECT_EQ(all.ok(), row.when_ok && row.valid_ok && row.asof_ok);
  }
}

TEST_F(AnalyzerTest, MixedParticipantsTakeTheMeet) {
  AddRelation("hist", TemporalClass::kHistorical);
  AddRelation("temp", TemporalClass::kTemporal);
  AddRange("h", "hist");
  AddRange("t", "temp");
  Result<BoundRetrieve> bound =
      Analyze("retrieve (h.rank, rank2 = t.rank)");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->result_class, TemporalClass::kHistorical);
  // A when clause is fine (both have valid time)...
  EXPECT_TRUE(Analyze("retrieve (h.rank) when h overlap t").ok());
  // ...but as-of is not (the historical participant lacks txn time).
  EXPECT_FALSE(Analyze("retrieve (h.rank) when h overlap t "
                       "as of \"01/01/80\"")
                   .ok());
}

TEST_F(AnalyzerTest, ResultClassPerParticipants) {
  AddRelation("roll", TemporalClass::kRollback);
  AddRelation("temp", TemporalClass::kTemporal);
  AddRange("r", "roll");
  AddRange("t", "temp");
  EXPECT_EQ(Analyze("retrieve (r.rank)")->result_class,
            TemporalClass::kStatic);
  EXPECT_EQ(Analyze("retrieve (t.rank)")->result_class,
            TemporalClass::kTemporal);
  // rollback x temporal -> static (the rollback side derives static).
  EXPECT_EQ(Analyze("retrieve (r.rank, t2 = t.rank)")->result_class,
            TemporalClass::kStatic);
}

TEST_F(AnalyzerTest, AsOfMustBeConstant) {
  AddRelation("temp", TemporalClass::kTemporal);
  AddRange("t", "temp");
  Result<BoundRetrieve> bound = Analyze("retrieve (t.rank) as of begin of t");
  ASSERT_FALSE(bound.ok());
  EXPECT_TRUE(bound.status().IsInvalidArgument());
}

TEST_F(AnalyzerTest, BadDateLiteralInTemporalExpr) {
  AddRelation("temp", TemporalClass::kTemporal);
  AddRange("t", "temp");
  EXPECT_FALSE(Analyze("retrieve (t.rank) as of \"not a date\"").ok());
}

TEST_F(AnalyzerTest, DateCoercionInComparisons) {
  AddRelation("faculty", TemporalClass::kStatic);
  AddRange("f", "faculty");
  Result<BoundRetrieve> bound =
      Analyze("retrieve (f.rank) where f.hired < \"01/01/80\"");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  // Evaluate the compiled predicate against a row with a date value.
  std::vector<Value> row{Value("x"), Value("y"), Value(int64_t{1}),
                         Value(*Date::Parse("06/01/79"))};
  Result<bool> hit = EvalPredicate(*bound->where, row);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_TRUE(*hit);
  row[3] = Value(*Date::Parse("06/01/81"));
  EXPECT_FALSE(*EvalPredicate(*bound->where, row));
}

TEST_F(AnalyzerTest, TypeInference) {
  AddRelation("faculty", TemporalClass::kStatic);
  AddRange("f", "faculty");
  Result<BoundRetrieve> bound = Analyze(
      "retrieve (f.salary, bumped = f.salary * 2, rate = f.salary * 1.5, "
      "senior = f.salary > 50000)");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->target_types[0], ValueType::kInt);
  EXPECT_EQ(bound->target_types[1], ValueType::kInt);
  EXPECT_EQ(bound->target_types[2], ValueType::kFloat);
  EXPECT_EQ(bound->target_types[3], ValueType::kBool);
}

TEST_F(AnalyzerTest, TargetVarsTracked) {
  AddRelation("a", TemporalClass::kHistorical);
  AddRelation("b", TemporalClass::kHistorical);
  AddRange("x", "a");
  AddRange("y", "b");
  Result<BoundRetrieve> bound =
      Analyze("retrieve (x.rank) where y.name = \"t\"");
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->participants.size(), 2u);
  // Only x feeds the target list.
  ASSERT_EQ(bound->target_vars.size(), 1u);
  EXPECT_EQ(bound->target_vars[0], 0u);
}

TEST_F(AnalyzerTest, DmlValidClauseResolution) {
  Result<Statement> stmt = ParseOne(
      "append to r (a = 1) valid from \"01/01/80\" to \"06/01/80\"");
  ASSERT_TRUE(stmt.ok());
  const AppendStmt& append = std::get<AppendStmt>(*stmt);
  Result<std::optional<Period>> period = ResolveDmlValidClause(append.valid);
  ASSERT_TRUE(period.ok()) << period.status().ToString();
  ASSERT_TRUE(period->has_value());
  EXPECT_EQ((*period)->begin(), Date::Parse("01/01/80")->chronon());
  EXPECT_EQ((*period)->end(), Date::Parse("06/01/80")->chronon());
}

TEST_F(AnalyzerTest, DmlValidAtResolvesToInstant) {
  Result<Statement> stmt =
      ParseOne("append to r (a = 1) valid at \"12/11/82\"");
  ASSERT_TRUE(stmt.ok());
  Result<std::optional<Period>> period =
      ResolveDmlValidClause(std::get<AppendStmt>(*stmt).valid);
  ASSERT_TRUE(period.ok());
  EXPECT_TRUE((*period)->IsInstant());
}

TEST_F(AnalyzerTest, DmlEmptyValidPeriodRejected) {
  Result<Statement> stmt = ParseOne(
      "append to r (a = 1) valid from \"06/01/80\" to \"01/01/80\"");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(
      ResolveDmlValidClause(std::get<AppendStmt>(*stmt).valid).ok());
}

}  // namespace
}  // namespace tquel
}  // namespace temporadb
