#include "common/period.h"

#include <gtest/gtest.h>

#include "common/date.h"

namespace temporadb {
namespace {

Chronon C(int64_t d) { return Chronon(d); }

TEST(Period, BasicAccessors) {
  Period p(C(10), C(20));
  EXPECT_EQ(p.begin(), C(10));
  EXPECT_EQ(p.end(), C(20));
  EXPECT_FALSE(p.IsEmpty());
  EXPECT_EQ(p.Duration(), 10);
}

TEST(Period, EmptyWhenBeginNotBeforeEnd) {
  EXPECT_TRUE(Period(C(5), C(5)).IsEmpty());
  EXPECT_TRUE(Period(C(6), C(5)).IsEmpty());
  EXPECT_EQ(Period(C(6), C(5)).Duration(), 0);
}

TEST(Period, DurationSaturatesOnUnboundedPeriods) {
  // Regression: ∞ − -∞ used to be computed as a raw days() difference,
  // which is signed-overflow UB for All().  Duration now saturates.
  EXPECT_EQ(Period::All().Duration(), Chronon::kForeverRep);
  EXPECT_EQ(Period::From(C(0)).Duration(), Chronon::kForeverRep);
  EXPECT_EQ(Period(Chronon::Beginning(), C(0)).Duration(),
            Chronon::kForeverRep);
  EXPECT_EQ(Period(C(-5), C(5)).Duration(), 10);
}

TEST(Period, MakeValidates) {
  EXPECT_TRUE(Period::Make(C(1), C(2)).has_value());
  EXPECT_TRUE(Period::Make(C(2), C(2)).has_value());
  EXPECT_FALSE(Period::Make(C(3), C(2)).has_value());
}

TEST(Period, FactoryShapes) {
  EXPECT_TRUE(Period::All().Contains(C(123456)));
  EXPECT_TRUE(Period::From(C(7)).IsOpenEnded());
  EXPECT_FALSE(Period::From(C(7)).Contains(C(6)));
  EXPECT_TRUE(Period::At(C(9)).IsInstant());
  EXPECT_EQ(Period::At(C(9)).Duration(), 1);
}

TEST(Period, ContainsIsHalfOpen) {
  Period p(C(10), C(20));
  EXPECT_TRUE(p.Contains(C(10)));
  EXPECT_TRUE(p.Contains(C(19)));
  EXPECT_FALSE(p.Contains(C(20)));
  EXPECT_FALSE(p.Contains(C(9)));
}

TEST(Period, ContainsPeriod) {
  Period outer(C(0), C(100));
  EXPECT_TRUE(outer.Contains(Period(C(10), C(20))));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Period(C(50), C(101))));
  // Empty periods are vacuously contained.
  EXPECT_TRUE(outer.Contains(Period(C(500), C(500))));
}

TEST(Period, OverlapsHalfOpenAdjacencyDoesNot) {
  // The paper's promotion chronon: associate [a, p) and full [p, inf) meet
  // but do not overlap.
  Period associate(C(0), C(100));
  Period full(C(100), Chronon::Forever());
  EXPECT_FALSE(associate.Overlaps(full));
  EXPECT_TRUE(associate.Meets(full));
  EXPECT_TRUE(associate.Precedes(full));
  EXPECT_TRUE(Period(C(0), C(101)).Overlaps(full));
}

TEST(Period, OverlapsIsSymmetric) {
  Period a(C(0), C(10));
  Period b(C(5), C(15));
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
}

TEST(Period, EmptyPeriodsNeverOverlapOrPrecede) {
  Period empty(C(5), C(5));
  Period p(C(0), C(10));
  EXPECT_FALSE(empty.Overlaps(p));
  EXPECT_FALSE(p.Overlaps(empty));
  EXPECT_FALSE(empty.Precedes(p));
  EXPECT_FALSE(p.Precedes(empty));
}

TEST(Period, IntersectAndExtend) {
  Period a(C(0), C(10));
  Period b(C(5), C(15));
  EXPECT_EQ(a.Intersect(b), Period(C(5), C(10)));
  EXPECT_EQ(a.Extend(b), Period(C(0), C(15)));
  Period disjoint(C(20), C(30));
  EXPECT_TRUE(a.Intersect(disjoint).IsEmpty());
  EXPECT_EQ(a.Extend(disjoint), Period(C(0), C(30)));
}

TEST(Period, ExtendWithEmptyIsIdentity) {
  Period a(C(0), C(10));
  Period empty(C(99), C(99));
  EXPECT_EQ(a.Extend(empty), a);
  EXPECT_EQ(empty.Extend(a), a);
}

TEST(Period, EndpointEvents) {
  Period p(C(10), C(20));
  EXPECT_EQ(p.BeginEvent(), Period::At(C(10)));
  // End point is the first chronon after the period (half-open timeline).
  EXPECT_EQ(p.EndEvent(), Period::At(C(20)));
  EXPECT_EQ(p.LastEvent(), Period::At(C(19)));
}

TEST(Period, ToStringUsesDates) {
  Period p(Date::Parse("09/01/77")->chronon(), Chronon::Forever());
  EXPECT_EQ(p.ToString(), "[09/01/77, inf)");
}

struct AllenCase {
  Period a;
  Period b;
  AllenRelation expected;
};

class AllenRelationTest : public ::testing::TestWithParam<AllenCase> {};

TEST_P(AllenRelationTest, Relation) {
  const AllenCase& c = GetParam();
  auto r = c.a.AllenRelate(c.b);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, c.expected)
      << c.a.ToString() << " vs " << c.b.ToString() << " got "
      << AllenRelationName(*r);
}

INSTANTIATE_TEST_SUITE_P(
    AllThirteen, AllenRelationTest,
    ::testing::Values(
        AllenCase{Period(C(0), C(5)), Period(C(10), C(20)),
                  AllenRelation::kBefore},
        AllenCase{Period(C(0), C(10)), Period(C(10), C(20)),
                  AllenRelation::kMeets},
        AllenCase{Period(C(0), C(12)), Period(C(10), C(20)),
                  AllenRelation::kOverlaps},
        AllenCase{Period(C(10), C(15)), Period(C(10), C(20)),
                  AllenRelation::kStarts},
        AllenCase{Period(C(12), C(15)), Period(C(10), C(20)),
                  AllenRelation::kDuring},
        AllenCase{Period(C(15), C(20)), Period(C(10), C(20)),
                  AllenRelation::kFinishes},
        AllenCase{Period(C(10), C(20)), Period(C(10), C(20)),
                  AllenRelation::kEqual},
        AllenCase{Period(C(10), C(20)), Period(C(15), C(20)),
                  AllenRelation::kFinishedBy},
        AllenCase{Period(C(10), C(20)), Period(C(12), C(15)),
                  AllenRelation::kContains},
        AllenCase{Period(C(10), C(20)), Period(C(10), C(15)),
                  AllenRelation::kStartedBy},
        AllenCase{Period(C(10), C(20)), Period(C(0), C(12)),
                  AllenRelation::kOverlappedBy},
        AllenCase{Period(C(10), C(20)), Period(C(0), C(10)),
                  AllenRelation::kMetBy},
        AllenCase{Period(C(10), C(20)), Period(C(0), C(5)),
                  AllenRelation::kAfter}));

TEST(AllenRelation, UndefinedOnEmpty) {
  EXPECT_FALSE(Period(C(5), C(5)).AllenRelate(Period(C(0), C(10))).has_value());
}

// Property sweep: for random interval pairs, exactly one Allen relation
// holds, and Overlaps/Precedes agree with the relation classes.
class AllenPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AllenPropertyTest, OverlapAndPrecedeConsistency) {
  int seed = GetParam();
  // Small deterministic LCG so the pairs differ per instance.
  uint32_t state = static_cast<uint32_t>(seed * 2654435761u + 1);
  auto next = [&]() {
    state = state * 1664525u + 1013904223u;
    return static_cast<int64_t>(state % 40);
  };
  for (int i = 0; i < 200; ++i) {
    int64_t a1 = next(), a2 = a1 + 1 + next() % 10;
    int64_t b1 = next(), b2 = b1 + 1 + next() % 10;
    Period a(C(a1), C(a2)), b(C(b1), C(b2));
    auto rel = a.AllenRelate(b);
    ASSERT_TRUE(rel.has_value());
    bool overlap_class =
        *rel != AllenRelation::kBefore && *rel != AllenRelation::kMeets &&
        *rel != AllenRelation::kMetBy && *rel != AllenRelation::kAfter;
    EXPECT_EQ(a.Overlaps(b), overlap_class);
    bool precede_class =
        *rel == AllenRelation::kBefore || *rel == AllenRelation::kMeets;
    EXPECT_EQ(a.Precedes(b), precede_class);
    // Involution: relate(b, a) must be the inverse relation.
    auto inv = b.AllenRelate(a);
    ASSERT_TRUE(inv.has_value());
    auto invert = [](AllenRelation r) {
      switch (r) {
        case AllenRelation::kBefore: return AllenRelation::kAfter;
        case AllenRelation::kMeets: return AllenRelation::kMetBy;
        case AllenRelation::kOverlaps: return AllenRelation::kOverlappedBy;
        case AllenRelation::kStarts: return AllenRelation::kStartedBy;
        case AllenRelation::kDuring: return AllenRelation::kContains;
        case AllenRelation::kFinishes: return AllenRelation::kFinishedBy;
        case AllenRelation::kEqual: return AllenRelation::kEqual;
        case AllenRelation::kFinishedBy: return AllenRelation::kFinishes;
        case AllenRelation::kContains: return AllenRelation::kDuring;
        case AllenRelation::kStartedBy: return AllenRelation::kStarts;
        case AllenRelation::kOverlappedBy: return AllenRelation::kOverlaps;
        case AllenRelation::kMetBy: return AllenRelation::kMeets;
        case AllenRelation::kAfter: return AllenRelation::kBefore;
      }
      return r;
    };
    EXPECT_EQ(*inv, invert(*rel));
    // Intersection symmetry and containment.
    EXPECT_EQ(a.Intersect(b).IsEmpty(), b.Intersect(a).IsEmpty());
    if (!a.Intersect(b).IsEmpty()) {
      EXPECT_TRUE(a.Contains(a.Intersect(b)));
      EXPECT_TRUE(b.Contains(a.Intersect(b)));
      EXPECT_TRUE(a.Extend(b).Contains(a));
      EXPECT_TRUE(a.Extend(b).Contains(b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllenPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace temporadb
