#include "temporal/coalesce.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace temporadb {
namespace {

BitemporalTuple T(const char* name, int64_t from, int64_t to) {
  BitemporalTuple t;
  t.values = {Value(name)};
  t.valid = Period(Chronon(from), Chronon(to));
  t.txn = Period::All();
  return t;
}

TEST(Coalesce, EmptyInput) {
  EXPECT_TRUE(Coalesce({}).empty());
  EXPECT_TRUE(IsCoalesced({}));
}

TEST(Coalesce, MergesAdjacentPeriods) {
  auto out = Coalesce({T("a", 0, 10), T("a", 10, 20)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].valid, Period(Chronon(0), Chronon(20)));
}

TEST(Coalesce, MergesOverlappingPeriods) {
  auto out = Coalesce({T("a", 0, 12), T("a", 8, 20), T("a", 15, 25)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].valid, Period(Chronon(0), Chronon(25)));
}

TEST(Coalesce, KeepsGaps) {
  auto out = Coalesce({T("a", 0, 10), T("a", 12, 20)});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(IsCoalesced(out));
}

TEST(Coalesce, DistinguishesValues) {
  auto out = Coalesce({T("a", 0, 10), T("b", 10, 20)});
  EXPECT_EQ(out.size(), 2u);
}

TEST(Coalesce, DistinguishesTransactionPeriods) {
  // Bitemporal coalescing only merges within one stored state.
  BitemporalTuple x = T("a", 0, 10);
  x.txn = Period(Chronon(0), Chronon(100));
  BitemporalTuple y = T("a", 10, 20);
  y.txn = Period(Chronon(100), Chronon::Forever());
  auto out = Coalesce({x, y});
  EXPECT_EQ(out.size(), 2u);
}

TEST(Coalesce, OpenEndedPeriods) {
  auto out = Coalesce({T("a", 0, 10),
                       {{Value("a")}, Period::From(Chronon(10)),
                        Period::All()}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].valid.IsOpenEnded());
  EXPECT_EQ(out[0].valid.begin(), Chronon(0));
}

TEST(Coalesce, ContainedPeriodAbsorbed) {
  auto out = Coalesce({T("a", 0, 100), T("a", 10, 20)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].valid, Period(Chronon(0), Chronon(100)));
}

TEST(Coalesce, IsCoalescedDetectsMergeables) {
  EXPECT_FALSE(IsCoalesced({T("a", 0, 10), T("a", 10, 20)}));
  EXPECT_FALSE(IsCoalesced({T("a", 0, 10), T("a", 5, 20)}));
  EXPECT_TRUE(IsCoalesced({T("a", 0, 10), T("a", 11, 20)}));
  EXPECT_TRUE(IsCoalesced({T("a", 0, 10), T("b", 10, 20)}));
}

// Property sweep over random fragmentations.
class CoalescePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CoalescePropertyTest, IdempotentAndSnapshotPreserving) {
  Random rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  std::vector<BitemporalTuple> tuples;
  const char* names[] = {"a", "b", "c"};
  for (int i = 0; i < 60; ++i) {
    int64_t from = static_cast<int64_t>(rng.Uniform(100));
    int64_t len = 1 + static_cast<int64_t>(rng.Uniform(30));
    tuples.push_back(T(names[rng.Uniform(3)], from, from + len));
  }
  std::vector<BitemporalTuple> once = Coalesce(tuples);
  // 1. Result is coalesced and idempotent.
  EXPECT_TRUE(IsCoalesced(once));
  std::vector<BitemporalTuple> twice = Coalesce(once);
  EXPECT_EQ(once, twice);
  // 2. Never more tuples than the input.
  EXPECT_LE(once.size(), tuples.size());
  // 3. Snapshot-preserving: for every chronon, the set of visible values is
  //    unchanged.
  for (int64_t t = -1; t <= 135; ++t) {
    std::multiset<std::string> before, after;
    for (const auto& tup : tuples) {
      if (tup.valid.Contains(Chronon(t))) {
        before.insert(tup.values[0].AsString());
      }
    }
    for (const auto& tup : once) {
      if (tup.valid.Contains(Chronon(t))) {
        after.insert(tup.values[0].AsString());
      }
    }
    // Coalescing dedupes overlaps, so compare distinct values.
    std::set<std::string> b(before.begin(), before.end());
    std::set<std::string> a(after.begin(), after.end());
    EXPECT_EQ(a, b) << "at chronon " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescePropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace temporadb
