// Durability tests: WAL replay, checkpoints, recovery after "crashes"
// (dropping the Database object without checkpointing), and torn-log
// handling — all through the public Database API.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "core/database.h"
#include "core/paper_scenario.h"
#include "storage/fault_injection.h"

namespace temporadb {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  PersistenceTest() {
    dir_ = testing::TempDir() + "/tdb_persist_" + std::to_string(::getpid()) +
           "_" + std::to_string(counter_++);
    std::filesystem::remove_all(dir_);
    clock_.SetDate("01/01/80").ok();
  }
  ~PersistenceTest() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<Database> Open() {
    DatabaseOptions options;
    options.path = dir_;
    options.clock = &clock_;
    Result<std::unique_ptr<Database>> db = Database::Open(options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(*db);
  }

  static int counter_;
  std::string dir_;
  ManualClock clock_;
};

int PersistenceTest::counter_ = 0;

TEST_F(PersistenceTest, DdlAndDmlSurviveReopen) {
  {
    auto db = Open();
    ASSERT_TRUE(
        db->Execute("create temporal relation t (name = string)").ok());
    ASSERT_TRUE(db->Execute("append to t (name = \"alpha\")").ok());
    ASSERT_TRUE(db->Execute("append to t (name = \"beta\")").ok());
    EXPECT_GT(db->WalBytes(), 0u);
  }  // "Crash": no checkpoint.
  {
    auto db = Open();
    ASSERT_TRUE(db->Execute("range of x is t").ok());
    Result<Rowset> rows = db->Query("retrieve (x.name)");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(rows->size(), 2u);
  }
}

TEST_F(PersistenceTest, AbortedTransactionsAreNotReplayed) {
  {
    auto db = Open();
    ASSERT_TRUE(db->Execute("create relation t (n = int)").ok());
    ASSERT_TRUE(db->Execute("append to t (n = 1)").ok());
    Result<Transaction*> txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(db->Execute("append to t (n = 2)").ok());
    ASSERT_TRUE(db->Abort(*txn).ok());
  }
  {
    auto db = Open();
    ASSERT_TRUE(db->Execute("range of x is t").ok());
    EXPECT_EQ(db->Query("retrieve (x.n)")->size(), 1u);
  }
}

TEST_F(PersistenceTest, CheckpointTruncatesWalAndSurvives) {
  {
    auto db = Open();
    ASSERT_TRUE(
        db->Execute("create temporal relation t (name = string)").ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db->Execute("append to t (name = \"n" +
                              std::to_string(i) + "\")")
                      .ok());
    }
    uint64_t wal_before = db->WalBytes();
    ASSERT_TRUE(db->Checkpoint().ok());
    EXPECT_LT(db->WalBytes(), wal_before);
    // Only the log header (carrying the resume LSN) remains.
    EXPECT_EQ(db->WalBytes(), WriteAheadLog::kHeaderSize);
    // Post-checkpoint traffic goes to the fresh WAL.
    ASSERT_TRUE(db->Execute("append to t (name = \"after\")").ok());
  }
  {
    auto db = Open();
    ASSERT_TRUE(db->Execute("range of x is t").ok());
    EXPECT_EQ(db->Query("retrieve (x.name)")->size(), 21u);
  }
}

TEST_F(PersistenceTest, RepeatedCheckpointsGcOldDirectories) {
  auto db = Open();
  ASSERT_TRUE(db->Execute("create relation t (n = int)").ok());
  for (int round = 1; round <= 3; ++round) {
    ASSERT_TRUE(
        db->Execute("append to t (n = " + std::to_string(round) + ")").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  int ckpt_dirs = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().filename().string().rfind("ckpt-", 0) == 0) {
      ++ckpt_dirs;
    }
  }
  EXPECT_EQ(ckpt_dirs, 1);
  ASSERT_TRUE(db->Execute("range of x is t").ok());
  EXPECT_EQ(db->Query("retrieve (x.n)")->size(), 3u);
}

TEST_F(PersistenceTest, BitemporalSemanticsSurviveCheckpointAndReplay) {
  // The full paper scenario, checkpointed mid-history, crashed, reopened:
  // every as-of answer must be identical.
  {
    auto db = Open();
    ASSERT_TRUE(
        db->Execute("create temporal relation faculty "
                    "(name = string, rank = string)")
            .ok());
    ASSERT_TRUE(db->Execute("range of f is faculty").ok());
    clock_.SetDate("08/25/77").ok();
    ASSERT_TRUE(db->Execute("append to faculty (name = \"Merrie\", "
                            "rank = \"associate\") "
                            "valid from \"09/01/77\" to \"inf\"")
                    .ok());
    ASSERT_TRUE(db->Checkpoint().ok());  // Mid-history checkpoint.
    clock_.SetDate("12/15/82").ok();
    ASSERT_TRUE(db->Execute("replace f (rank = \"full\") "
                            "valid from \"12/01/82\" to \"inf\" "
                            "where f.name = \"Merrie\"")
                    .ok());
  }
  {
    auto db = Open();
    ASSERT_TRUE(db->Execute("range of f is faculty").ok());
    Result<Rowset> before = db->Query(
        "retrieve (f.rank) where f.name = \"Merrie\" as of \"12/10/82\" "
        "when f overlap \"12/05/82\"");
    ASSERT_TRUE(before.ok()) << before.status().ToString();
    ASSERT_EQ(before->size(), 1u);
    EXPECT_EQ(before->rows()[0].values[0].AsString(), "associate");
    Result<Rowset> after = db->Query(
        "retrieve (f.rank) where f.name = \"Merrie\" as of \"12/20/82\" "
        "when f overlap \"12/05/82\"");
    ASSERT_TRUE(after.ok());
    ASSERT_EQ(after->size(), 1u);
    EXPECT_EQ(after->rows()[0].values[0].AsString(), "full");
  }
}

TEST_F(PersistenceTest, HistoricalTombstonesSurvive) {
  {
    auto db = Open();
    ASSERT_TRUE(
        db->Execute("create historical relation h (name = string)").ok());
    ASSERT_TRUE(db->Execute("append to h (name = \"keep\")").ok());
    ASSERT_TRUE(db->Execute("append to h (name = \"erase\")").ok());
    ASSERT_TRUE(db->Execute("range of x is h").ok());
    ASSERT_TRUE(db->Execute("correct x where x.name = \"erase\"").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    // More traffic referencing post-tombstone row ids.
    ASSERT_TRUE(db->Execute("append to h (name = \"later\")").ok());
  }
  {
    auto db = Open();
    ASSERT_TRUE(db->Execute("range of x is h").ok());
    Result<Rowset> rows = db->Query("retrieve (x.name)");
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 2u);
  }
}

TEST_F(PersistenceTest, TornWalTailDropsOnlyUncommittedSuffix) {
  {
    auto db = Open();
    ASSERT_TRUE(db->Execute("create relation t (n = int)").ok());
    ASSERT_TRUE(db->Execute("append to t (n = 1)").ok());
    ASSERT_TRUE(db->Execute("append to t (n = 2)").ok());
  }
  // Tear the last few bytes of the WAL, clipping the final commit.
  {
    std::string wal_path = dir_ + "/wal.log";
    std::FILE* f = std::fopen(wal_path.c_str(), "r+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    ASSERT_EQ(::ftruncate(fileno(f), size - 5), 0);
    std::fclose(f);
  }
  {
    auto db = Open();
    ASSERT_TRUE(db->Execute("range of x is t").ok());
    // The second append's commit record was torn: only one row survives.
    EXPECT_EQ(db->Query("retrieve (x.n)")->size(), 1u);
    // The database remains writable.
    ASSERT_TRUE(db->Execute("append to t (n = 3)").ok());
    EXPECT_EQ(db->Query("retrieve (x.n)")->size(), 2u);
  }
}

TEST_F(PersistenceTest, CompactingCheckpointReclaimsTombstones) {
  {
    auto db = Open();
    ASSERT_TRUE(
        db->Execute("create historical relation h (name = string)").ok());
    ASSERT_TRUE(db->Execute("range of x is h").ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          db->Execute("append to h (name = \"n" + std::to_string(i) + "\")")
              .ok());
    }
    // Erase most of them, leaving tombstone slots behind.
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(db->Execute("correct x where x.name = \"n" +
                              std::to_string(i) + "\"")
                      .ok());
    }
    Result<StoredRelation*> rel = db->GetRelation("h");
    ASSERT_TRUE(rel.ok());
    EXPECT_EQ((*rel)->store()->version_count(), 10u);
    EXPECT_EQ((*rel)->store()->live_count(), 2u);
    ASSERT_TRUE(db->Checkpoint(/*compact=*/true).ok());
    EXPECT_EQ((*rel)->store()->version_count(), 2u);
    // Post-compaction traffic uses the renumbered ids.
    ASSERT_TRUE(db->Execute("append to h (name = \"after\")").ok());
    ASSERT_TRUE(db->Execute("correct x where x.name = \"n8\"").ok());
  }
  {
    auto db = Open();
    ASSERT_TRUE(db->Execute("range of x is h").ok());
    Result<Rowset> rows = db->Query("retrieve (x.name)");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(rows->size(), 2u);  // n9 and "after".
    Result<StoredRelation*> rel = db->GetRelation("h");
    ASSERT_TRUE(rel.ok());
    // 2 compacted survivors + 1 append; the post-checkpoint correction
    // tombstoned one of them in the WAL replay.
    EXPECT_EQ((*rel)->store()->version_count(), 3u);
  }
}

TEST_F(PersistenceTest, CompactionPreservesIndexes) {
  auto db = Open();
  ASSERT_TRUE(
      db->Execute("create historical relation h (name = string)").ok());
  ASSERT_TRUE(db->Execute("create index on h (name)").ok());
  ASSERT_TRUE(db->Execute("range of x is h").ok());
  ASSERT_TRUE(db->Execute("append to h (name = \"keep\")").ok());
  ASSERT_TRUE(db->Execute("append to h (name = \"drop\")").ok());
  ASSERT_TRUE(db->Execute("correct x where x.name = \"drop\"").ok());
  ASSERT_TRUE(db->Checkpoint(/*compact=*/true).ok());
  // Index probes still answer correctly after the rebuild.
  Result<Rowset> rows = db->Query("retrieve (x.name) where x.name = \"keep\"");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  EXPECT_EQ(db->Query("retrieve (x.name) where x.name = \"drop\"")->size(),
            0u);
}

TEST_F(PersistenceTest, DropRelationSurvivesReopen) {
  {
    auto db = Open();
    ASSERT_TRUE(db->Execute("create relation a (n = int)").ok());
    ASSERT_TRUE(db->Execute("create relation b (n = int)").ok());
    ASSERT_TRUE(db->Execute("destroy a").ok());
  }
  {
    auto db = Open();
    EXPECT_TRUE(db->GetRelation("a").status().IsNotFound());
    EXPECT_TRUE(db->GetRelation("b").ok());
  }
}

TEST_F(PersistenceTest, RecoveredClockNeverRegresses) {
  {
    auto db = Open();
    clock_.SetDate("12/15/82").ok();
    ASSERT_TRUE(db->Execute("create rollback relation r (n = int)").ok());
    ASSERT_TRUE(db->Execute("append to r (n = 1)").ok());
  }
  // Reopen with the clock reset to an earlier date; recovered transaction
  // timestamps must clamp it.
  clock_.SetDate("01/01/80").ok();
  {
    auto db = Open();
    ASSERT_TRUE(db->Execute("range of x is r").ok());
    ASSERT_TRUE(db->Execute("append to r (n = 2)").ok());
    Result<StoredRelation*> rel = db->GetRelation("r");
    ASSERT_TRUE(rel.ok());
    Chronon min_allowed = Date::Parse("12/15/82")->chronon();
    (*rel)->store()->ForEach([&](RowId, const BitemporalTuple& t) {
      EXPECT_GE(t.txn.begin(), min_allowed);
    });
  }
}

// Shared workload for the targeted checkpoint-crash tests: one relation,
// five synced commits, then a checkpoint.  Returns the checkpoint status
// and reports the barrier count before/after it.
void RunCheckpointWorkload(FaultInjectionFileSystem* fs,
                           const std::string& dir, ManualClock* clock,
                           uint64_t* barriers_before_checkpoint,
                           Status* checkpoint_status) {
  DatabaseOptions options;
  options.path = dir;
  options.clock = clock;
  options.fs = fs;
  Result<std::unique_ptr<Database>> db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Execute("create relation t (n = int)").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        (*db)->Execute("append to t (n = " + std::to_string(i) + ")").ok());
  }
  *barriers_before_checkpoint = fs->sync_count();
  *checkpoint_status = (*db)->Checkpoint();
}

void ExpectFiveRows(FaultInjectionFileSystem* fs, const std::string& dir,
                    ManualClock* clock, bool expect_writable) {
  DatabaseOptions options;
  options.path = dir;
  options.clock = clock;
  options.fs = fs;
  Result<std::unique_ptr<Database>> db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Execute("range of x is t").ok());
  Result<Rowset> rows = (*db)->Query("retrieve (x.n)");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // Exactly the five acknowledged commits: nothing lost, nothing
  // double-applied.
  EXPECT_EQ(rows->size(), 5u);
  Result<StoredRelation*> rel = (*db)->GetRelation("t");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->store()->version_count(), 5u);
  if (expect_writable) {
    ASSERT_TRUE((*db)->Execute("append to t (n = 99)").ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    EXPECT_EQ((*db)->Query("retrieve (x.n)")->size(), 6u);
  }
}

TEST_F(PersistenceTest, CrashBetweenCurrentPublishAndWalTruncate) {
  // Dry run: the checkpoint's final barrier is the WAL-truncation fsync.
  uint64_t last_barrier = 0;
  {
    FaultInjectionFileSystem fs;
    uint64_t before = 0;
    Status ckpt;
    RunCheckpointWorkload(&fs, dir_, &clock_, &before, &ckpt);
    ASSERT_TRUE(ckpt.ok()) << ckpt.ToString();
    last_barrier = fs.sync_count();
    ASSERT_GT(last_barrier, before);
  }
  std::filesystem::remove_all(dir_);
  // Crash run: CURRENT (with its resume LSN) is durable, the WAL still
  // holds every pre-checkpoint record.  Recovery must not replay them on
  // top of the checkpoint image.
  FaultInjectionFileSystem fs;
  fs.PlanCrashAtSync(last_barrier);
  {
    uint64_t before = 0;
    Status ckpt;
    RunCheckpointWorkload(&fs, dir_, &clock_, &before, &ckpt);
    EXPECT_FALSE(ckpt.ok());
  }
  ASSERT_TRUE(fs.RealizeCrash().ok());
  ExpectFiveRows(&fs, dir_, &clock_, /*expect_writable=*/true);
}

TEST_F(PersistenceTest, CrashInTheMiddleOfCheckpointKeepsOldState) {
  // Crash at the first barrier inside Checkpoint (the catalog file's
  // fsync): CURRENT still names the old state, the WAL is intact, and
  // recovery must see exactly the pre-checkpoint database.
  uint64_t before = 0;
  {
    FaultInjectionFileSystem fs;
    Status ckpt;
    RunCheckpointWorkload(&fs, dir_, &clock_, &before, &ckpt);
    ASSERT_TRUE(ckpt.ok()) << ckpt.ToString();
  }
  std::filesystem::remove_all(dir_);
  FaultInjectionFileSystem fs;
  fs.PlanCrashAtSync(before + 1);
  {
    uint64_t ignored = 0;
    Status ckpt;
    RunCheckpointWorkload(&fs, dir_, &clock_, &ignored, &ckpt);
    EXPECT_FALSE(ckpt.ok());
  }
  ASSERT_TRUE(fs.RealizeCrash().ok());
  ExpectFiveRows(&fs, dir_, &clock_, /*expect_writable=*/true);
}

TEST_F(PersistenceTest, FailedCommitSyncIsNeverResurrected) {
  // A commit whose fsync fails must not become durable because a *later*
  // fsync succeeded; and after the failed fsync the database refuses
  // further commits until reopened.
  FaultInjectionFileSystem fs;
  {
    DatabaseOptions options;
    options.path = dir_;
    options.clock = &clock_;
    options.fs = &fs;
    Result<std::unique_ptr<Database>> db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Execute("create relation t (n = int)").ok());
    ASSERT_TRUE((*db)->Execute("append to t (n = 1)").ok());
    std::string wal_path = dir_ + "/wal.log";
    fs.set_fault_filter([&](FaultOp op, const std::string& path) {
      return op == FaultOp::kSync && path == wal_path;
    });
    Result<tquel::ExecResult> failed = (*db)->Execute("append to t (n = 2)");
    EXPECT_FALSE(failed.ok());
    fs.set_fault_filter(nullptr);
    // The log is poisoned: further commits fail until reopen.
    Result<tquel::ExecResult> refused = (*db)->Execute("append to t (n = 3)");
    EXPECT_FALSE(refused.ok());
    EXPECT_TRUE(refused.status().IsFailedPrecondition())
        << refused.status().ToString();
  }
  {
    DatabaseOptions options;
    options.path = dir_;
    options.clock = &clock_;
    options.fs = &fs;
    Result<std::unique_ptr<Database>> db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Execute("range of x is t").ok());
    // Only the acknowledged first append survives.
    EXPECT_EQ((*db)->Query("retrieve (x.n)")->size(), 1u);
    ASSERT_TRUE((*db)->Execute("append to t (n = 4)").ok());
    EXPECT_EQ((*db)->Query("retrieve (x.n)")->size(), 2u);
  }
}

TEST_F(PersistenceTest, PaperScenarioPersistedEndToEnd) {
  {
    auto db = Open();
    ASSERT_TRUE(paper::BuildTemporalFaculty(db.get(), &clock_).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  {
    auto db = Open();
    Result<StoredRelation*> rel = db->GetRelation("faculty");
    ASSERT_TRUE(rel.ok());
    EXPECT_EQ((*rel)->store()->live_count(), 7u);  // Figure 8's seven rows.
  }
}

}  // namespace
}  // namespace temporadb
