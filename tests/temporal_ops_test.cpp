#include "rel/temporal_ops.h"

#include <gtest/gtest.h>

#include "tests/relation_test_util.h"

namespace temporadb {
namespace {

class TemporalOpsTest : public testutil::RelationFixture {};

TEST_F(TemporalOpsTest, ScanStoredCarriesNaturalColumns) {
  MakeRelation(TemporalClass::kTemporal);
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  Result<Rowset> rows = ScanStored(*relation_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->temporal_class(), TemporalClass::kTemporal);
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_TRUE(rows->rows()[0].valid.has_value());
  EXPECT_TRUE(rows->rows()[0].txn.has_value());

  MakeRelation(TemporalClass::kStatic);
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  Result<Rowset> stat = ScanStored(*relation_);
  ASSERT_TRUE(stat.ok());
  EXPECT_FALSE(stat->rows()[0].valid.has_value());
  EXPECT_FALSE(stat->rows()[0].txn.has_value());
}

TEST_F(TemporalOpsTest, RollbackDerivedClasses) {
  MakeRelation(TemporalClass::kRollback);
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  Result<Rowset> rows = Rollback(*relation_, Day("06/01/80"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->temporal_class(), TemporalClass::kStatic);
  EXPECT_EQ(rows->size(), 1u);

  MakeRelation(TemporalClass::kTemporal);
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  Result<Rowset> hist = Rollback(*relation_, Day("06/01/80"));
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->temporal_class(), TemporalClass::kHistorical);
  EXPECT_TRUE(hist->rows()[0].valid.has_value());
}

TEST_F(TemporalOpsTest, RollbackRejectedWithoutTransactionTime) {
  MakeRelation(TemporalClass::kHistorical);
  EXPECT_TRUE(Rollback(*relation_, Chronon(0)).status().IsNotSupported());
  MakeRelation(TemporalClass::kStatic);
  EXPECT_TRUE(Rollback(*relation_, Chronon(0)).status().IsNotSupported());
  EXPECT_TRUE(
      RollbackKeepTxn(*relation_, Chronon(0)).status().IsNotSupported());
}

TEST_F(TemporalOpsTest, RollbackBeforeCreationIsEmpty) {
  MakeRelation(TemporalClass::kRollback);
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  Result<Rowset> rows = Rollback(*relation_, Day("01/01/79"));
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(TemporalOpsTest, RollbackKeepTxnKeepsPeriods) {
  MakeRelation(TemporalClass::kTemporal);
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  Result<Rowset> rows = RollbackKeepTxn(*relation_, Day("06/01/80"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->temporal_class(), TemporalClass::kTemporal);
  EXPECT_EQ(*rows->rows()[0].txn, Since("01/01/80"));
}

TEST_F(TemporalOpsTest, TimesliceHistoricalToStatic) {
  MakeRelation(TemporalClass::kHistorical);
  ASSERT_TRUE(Append("01/01/80", "a", "old",
                     Between("01/01/80", "06/01/80")).ok());
  ASSERT_TRUE(Append("01/01/80", "a", "new", Since("06/01/80")).ok());
  Result<Rowset> scan = ScanStored(*relation_);
  ASSERT_TRUE(scan.ok());
  Result<Rowset> slice = Timeslice(*scan, Day("03/01/80"));
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->temporal_class(), TemporalClass::kStatic);
  ASSERT_EQ(slice->size(), 1u);
  EXPECT_EQ(slice->rows()[0].values[1].AsString(), "old");
}

TEST_F(TemporalOpsTest, TimesliceTemporalKeepsTxn) {
  MakeRelation(TemporalClass::kTemporal);
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  Result<Rowset> scan = ScanStored(*relation_);
  ASSERT_TRUE(scan.ok());
  Result<Rowset> slice = Timeslice(*scan, Day("06/01/80"));
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->temporal_class(), TemporalClass::kRollback);
  EXPECT_TRUE(slice->rows()[0].txn.has_value());
}

TEST_F(TemporalOpsTest, TimesliceRequiresValidTime) {
  MakeRelation(TemporalClass::kStatic);
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  Result<Rowset> scan = ScanStored(*relation_);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(Timeslice(*scan, Chronon(0)).status().IsNotSupported());
}

TEST_F(TemporalOpsTest, CurrentStateShapes) {
  MakeRelation(TemporalClass::kTemporal);
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  ASSERT_TRUE(Replace("02/01/80", "a", "2", Since("01/01/80")).ok());
  Result<Rowset> current = CurrentState(*relation_);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->temporal_class(), TemporalClass::kHistorical);
  ASSERT_EQ(current->size(), 1u);  // Only the current belief.
  EXPECT_EQ(current->rows()[0].values[1].AsString(), "2");
}

// --- Temporal expression machinery ---------------------------------------

TEST(TemporalExprs, VarAndLiteral) {
  PeriodBinding binding{Period(Chronon(0), Chronon(10))};
  TemporalExprPtr var = MakeVarPeriod(0, "f");
  EXPECT_EQ(*var->Eval(binding), Period(Chronon(0), Chronon(10)));
  EXPECT_EQ(var->ToString(), "f");
  EXPECT_FALSE(MakeVarPeriod(3, "g")->Eval(binding).ok());
  TemporalExprPtr lit = MakePeriodLiteral(Period::At(Chronon(5)), "\"d\"");
  EXPECT_EQ(*lit->Eval({}), Period::At(Chronon(5)));
}

TEST(TemporalExprs, Endpoints) {
  PeriodBinding binding{Period(Chronon(10), Chronon(20))};
  TemporalExprPtr var = MakeVarPeriod(0, "f");
  EXPECT_EQ(*MakeBeginOf(var)->Eval(binding), Period::At(Chronon(10)));
  EXPECT_EQ(*MakeEndOf(var)->Eval(binding), Period::At(Chronon(20)));
  // Endpoint of an empty period is an error.
  PeriodBinding empty{Period(Chronon(5), Chronon(5))};
  EXPECT_FALSE(MakeBeginOf(var)->Eval(empty).ok());
}

TEST(TemporalExprs, OverlapAndExtend) {
  PeriodBinding binding{Period(Chronon(0), Chronon(10)),
                        Period(Chronon(5), Chronon(15))};
  TemporalExprPtr a = MakeVarPeriod(0, "a");
  TemporalExprPtr b = MakeVarPeriod(1, "b");
  EXPECT_EQ(*MakeOverlapExpr(a, b)->Eval(binding),
            Period(Chronon(5), Chronon(10)));
  EXPECT_EQ(*MakeExtendExpr(a, b)->Eval(binding),
            Period(Chronon(0), Chronon(15)));
}

TEST(TemporalPreds, CompareKinds) {
  PeriodBinding binding{Period(Chronon(0), Chronon(10)),
                        Period(Chronon(10), Chronon(20))};
  TemporalExprPtr a = MakeVarPeriod(0, "a");
  TemporalExprPtr b = MakeVarPeriod(1, "b");
  EXPECT_TRUE(*MakePrecedePred(a, b)->Eval(binding));
  EXPECT_FALSE(*MakePrecedePred(b, a)->Eval(binding));
  EXPECT_FALSE(*MakeOverlapPred(a, b)->Eval(binding));
  EXPECT_TRUE(*MakeEqualPred(a, a)->Eval(binding));
  EXPECT_FALSE(*MakeEqualPred(a, b)->Eval(binding));
}

TEST(TemporalPreds, Connectives) {
  PeriodBinding binding{Period(Chronon(0), Chronon(10)),
                        Period(Chronon(5), Chronon(15))};
  TemporalExprPtr a = MakeVarPeriod(0, "a");
  TemporalExprPtr b = MakeVarPeriod(1, "b");
  TemporalPredPtr overlap = MakeOverlapPred(a, b);   // true
  TemporalPredPtr precede = MakePrecedePred(a, b);   // false
  EXPECT_FALSE(*MakeAndPred(overlap, precede)->Eval(binding));
  EXPECT_TRUE(*MakeOrPred(overlap, precede)->Eval(binding));
  EXPECT_TRUE(*MakeNotPred(precede)->Eval(binding));
  EXPECT_EQ(MakeAndPred(overlap, precede)->ToString(),
            "((a overlap b) and (a precede b))");
}

TEST(TemporalPreds, PaperWhenClause) {
  // "when f1 overlap start of f2": Merrie-full valid [12/01/82, inf),
  // Tom valid [12/05/82, inf).
  PeriodBinding binding{
      Period(Date::Parse("12/01/82")->chronon(), Chronon::Forever()),
      Period(Date::Parse("12/05/82")->chronon(), Chronon::Forever())};
  TemporalPredPtr when = MakeOverlapPred(
      MakeVarPeriod(0, "f1"), MakeBeginOf(MakeVarPeriod(1, "f2")));
  EXPECT_TRUE(*when->Eval(binding));
  // Merrie-associate valid [09/01/77, 12/01/82) does NOT overlap Tom's
  // arrival.
  PeriodBinding binding2{
      Period(Date::Parse("09/01/77")->chronon(),
             Date::Parse("12/01/82")->chronon()),
      binding[1]};
  EXPECT_FALSE(*when->Eval(binding2));
}

}  // namespace
}  // namespace temporadb
