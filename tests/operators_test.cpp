#include "rel/operators.h"

#include <gtest/gtest.h>

namespace temporadb {
namespace {

Schema NV() {
  return *Schema::Make({Attribute{"name", Type::String()},
                        Attribute{"value", Type::Int()}});
}

Rowset MakeStatic(std::vector<std::pair<const char*, int64_t>> rows) {
  Rowset out(NV(), TemporalClass::kStatic);
  for (auto& [name, value] : rows) {
    Row row;
    row.values = {Value(name), Value(value)};
    EXPECT_TRUE(out.AddRow(std::move(row)).ok());
  }
  return out;
}

Rowset MakeHistorical(
    std::vector<std::tuple<const char*, int64_t, int64_t, int64_t>> rows) {
  Rowset out(NV(), TemporalClass::kHistorical);
  for (auto& [name, value, from, to] : rows) {
    Row row;
    row.values = {Value(name), Value(value)};
    row.valid = Period(Chronon(from), Chronon(to));
    EXPECT_TRUE(out.AddRow(std::move(row)).ok());
  }
  return out;
}

TEST(Operators, Select) {
  Rowset input = MakeStatic({{"a", 1}, {"b", 2}, {"c", 3}});
  ExprPtr pred = MakeCompare(CompareOp::kGe, MakeColumnRef(1, "value"),
                             MakeLiteral(Value(int64_t{2})));
  Result<Rowset> out = Select(input, *pred);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  EXPECT_EQ(out->temporal_class(), TemporalClass::kStatic);
}

TEST(Operators, SelectPreservesTemporalColumns) {
  Rowset input = MakeHistorical({{"a", 1, 0, 10}, {"b", 2, 5, 15}});
  ExprPtr pred = MakeCompare(CompareOp::kEq, MakeColumnRef(0, "name"),
                             MakeLiteral(Value("b")));
  Result<Rowset> out = Select(input, *pred);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(*out->rows()[0].valid, Period(Chronon(5), Chronon(15)));
}

TEST(Operators, ProjectComputes) {
  Rowset input = MakeStatic({{"a", 10}, {"b", 20}});
  std::vector<ExprPtr> exprs{
      MakeColumnRef(0, "name"),
      MakeArith(ArithOp::kMul, MakeColumnRef(1, "value"),
                MakeLiteral(Value(int64_t{2})))};
  Result<Rowset> out = Project(input, exprs, {"name", "double"});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().at(1).name, "double");
  EXPECT_EQ(out->rows()[1].values[1].AsInt(), 40);
}

TEST(Operators, ProjectColumns) {
  Rowset input = MakeStatic({{"a", 1}});
  Result<Rowset> out = ProjectColumns(input, {1});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().size(), 1u);
  EXPECT_EQ(out->rows()[0].values[0].AsInt(), 1);
  EXPECT_FALSE(ProjectColumns(input, {5}).ok());
}

TEST(Operators, UnionRequiresCompatibility) {
  Rowset a = MakeStatic({{"a", 1}});
  Rowset b = MakeStatic({{"b", 2}});
  Result<Rowset> u = Union(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 2u);
  Rowset h = MakeHistorical({{"c", 3, 0, 10}});
  EXPECT_FALSE(Union(a, h).ok());  // Class mismatch.
  Rowset other(*Schema::Make({Attribute{"x", Type::Int()}}),
               TemporalClass::kStatic);
  EXPECT_FALSE(Union(a, other).ok());  // Schema mismatch.
}

TEST(Operators, DifferenceComparesWholeRows) {
  Rowset a = MakeStatic({{"a", 1}, {"b", 2}, {"c", 3}});
  Rowset b = MakeStatic({{"b", 2}});
  Result<Rowset> d = Difference(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 2u);
  for (const Row& row : d->rows()) {
    EXPECT_NE(row.values[0].AsString(), "b");
  }
}

TEST(Operators, Distinct) {
  Rowset input = MakeStatic({{"a", 1}, {"a", 1}, {"b", 2}});
  Rowset out = Distinct(input);
  EXPECT_EQ(out.size(), 2u);
  // Rows differing only in periods stay distinct.
  Rowset hist = MakeHistorical({{"a", 1, 0, 10}, {"a", 1, 10, 20}});
  EXPECT_EQ(Distinct(hist).size(), 2u);
}

TEST(Operators, SortBy) {
  Rowset input = MakeStatic({{"c", 1}, {"a", 3}, {"b", 2}});
  Result<Rowset> by_name = SortBy(input, {0});
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_name->rows()[0].values[0].AsString(), "a");
  EXPECT_EQ(by_name->rows()[2].values[0].AsString(), "c");
  Result<Rowset> by_value = SortBy(input, {1});
  ASSERT_TRUE(by_value.ok());
  EXPECT_EQ(by_value->rows()[0].values[1].AsInt(), 1);
  EXPECT_FALSE(SortBy(input, {7}).ok());
}

TEST(Operators, CrossProductStatic) {
  Rowset a = MakeStatic({{"a", 1}, {"b", 2}});
  Rowset b = MakeStatic({{"x", 10}});
  Result<Rowset> out = CrossProduct(a, b);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  EXPECT_EQ(out->schema().size(), 4u);
  EXPECT_EQ(out->rows()[0].values[2].AsString(), "x");
}

TEST(Operators, CrossProductIntersectsValidPeriods) {
  Rowset a = MakeHistorical({{"a", 1, 0, 10}});
  Rowset b = MakeHistorical({{"x", 9, 5, 15}, {"y", 9, 20, 30}});
  Result<Rowset> out = CrossProduct(a, b);
  ASSERT_TRUE(out.ok());
  // (a, y) never coexist: dropped.
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(*out->rows()[0].valid, Period(Chronon(5), Chronon(10)));
  EXPECT_EQ(out->temporal_class(), TemporalClass::kHistorical);
}

TEST(Operators, CrossProductClassMeet) {
  Rowset h = MakeHistorical({{"a", 1, 0, 10}});
  Rowset s = MakeStatic({{"x", 9}});
  Result<Rowset> out = CrossProduct(h, s);
  ASSERT_TRUE(out.ok());
  // historical x static = static (the meet).
  EXPECT_EQ(out->temporal_class(), TemporalClass::kStatic);
  EXPECT_FALSE(out->rows()[0].valid.has_value());
}

TEST(Operators, EmptyInputs) {
  Rowset empty(NV(), TemporalClass::kStatic);
  Rowset a = MakeStatic({{"a", 1}});
  EXPECT_EQ(CrossProduct(a, empty)->size(), 0u);
  ExprPtr t = MakeLiteral(Value(true));
  EXPECT_EQ(Select(empty, *t)->size(), 0u);
  EXPECT_EQ(Distinct(empty).size(), 0u);
}

}  // namespace
}  // namespace temporadb
