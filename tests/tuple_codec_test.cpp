#include "storage/tuple.h"

#include <gtest/gtest.h>

#include "temporal/bitemporal_tuple.h"

namespace temporadb {
namespace {

Schema MixedSchema() {
  return *Schema::Make({Attribute{"s", Type::String()},
                        Attribute{"i", Type::Int()},
                        Attribute{"f", Type::Float()},
                        Attribute{"d", Type::DateType()},
                        Attribute{"b", Type::Bool()}});
}

TEST(TupleCodec, RoundTripAllTypes) {
  Schema schema = MixedSchema();
  std::vector<Value> values{Value("hello"), Value(int64_t{-42}), Value(2.75),
                            Value(*Date::Parse("12/15/82")), Value(true)};
  std::string buf;
  ASSERT_TRUE(tuple_codec::EncodeValues(schema, values, &buf).ok());
  std::string_view in = buf;
  Result<std::vector<Value>> round = tuple_codec::DecodeValues(&in);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(*round, values);
  EXPECT_TRUE(in.empty());
}

TEST(TupleCodec, RoundTripNulls) {
  std::vector<Value> values{Value::Null(), Value::Null()};
  std::string buf;
  tuple_codec::EncodeValuesUnchecked(values, &buf);
  std::string_view in = buf;
  Result<std::vector<Value>> round = tuple_codec::DecodeValues(&in);
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE((*round)[0].is_null());
}

TEST(TupleCodec, ArityMismatchRejected) {
  Schema schema = MixedSchema();
  std::string buf;
  EXPECT_FALSE(
      tuple_codec::EncodeValues(schema, {Value("only one")}, &buf).ok());
}

TEST(TupleCodec, TypeMismatchRejected) {
  Schema schema = *Schema::Make({Attribute{"i", Type::Int()}});
  std::string buf;
  EXPECT_FALSE(tuple_codec::EncodeValues(schema, {Value("str")}, &buf).ok());
  // Int into float is admitted (promotion).
  Schema fschema = *Schema::Make({Attribute{"f", Type::Float()}});
  EXPECT_TRUE(
      tuple_codec::EncodeValues(fschema, {Value(int64_t{1})}, &buf).ok());
}

TEST(TupleCodec, TruncationDetected) {
  std::vector<Value> values{Value("a long-ish string value")};
  std::string buf;
  tuple_codec::EncodeValuesUnchecked(values, &buf);
  for (size_t cut = 1; cut < buf.size(); cut += 3) {
    std::string_view in(buf.data(), buf.size() - cut);
    Result<std::vector<Value>> round = tuple_codec::DecodeValues(&in);
    EXPECT_FALSE(round.ok());
    EXPECT_TRUE(round.status().IsCorruption());
  }
}

TEST(TupleCodec, EmptyStringAndUnicode) {
  std::vector<Value> values{Value(""), Value("caf\xc3\xa9 \xe2\x88\x9e")};
  std::string buf;
  tuple_codec::EncodeValuesUnchecked(values, &buf);
  std::string_view in = buf;
  Result<std::vector<Value>> round = tuple_codec::DecodeValues(&in);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(*round, values);
}

TEST(BitemporalTupleCodec, RoundTrip) {
  BitemporalTuple t;
  t.values = {Value("Merrie"), Value("associate")};
  t.valid = Period(Date::Parse("09/01/77")->chronon(), Chronon::Forever());
  t.txn = Period(Date::Parse("08/25/77")->chronon(),
                 Date::Parse("12/15/82")->chronon());
  std::string buf;
  t.EncodeTo(&buf);
  std::string_view in = buf;
  Result<BitemporalTuple> round = BitemporalTuple::DecodeFrom(&in);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(*round, t);
}

TEST(BitemporalTupleCodec, SentinelPeriodsSurvive) {
  BitemporalTuple t;
  t.values = {Value(int64_t{1})};
  t.valid = Period::All();
  t.txn = Period::From(Chronon(100));
  std::string buf;
  t.EncodeTo(&buf);
  std::string_view in = buf;
  Result<BitemporalTuple> round = BitemporalTuple::DecodeFrom(&in);
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round->valid.begin().IsBeginning());
  EXPECT_TRUE(round->valid.end().IsForever());
  EXPECT_TRUE(round->IsCurrentState());
}

TEST(BitemporalTuple, Predicates) {
  BitemporalTuple t;
  t.valid = Period(Chronon(10), Chronon(20));
  t.txn = Period::From(Chronon(5));
  EXPECT_TRUE(t.IsCurrentState());
  EXPECT_TRUE(t.IsValidNow(Chronon(15)));
  EXPECT_FALSE(t.IsValidNow(Chronon(25)));
  t.txn = Period(Chronon(5), Chronon(8));
  EXPECT_FALSE(t.IsCurrentState());
}

TEST(BitemporalTuple, ToStringShowsBothPeriods) {
  BitemporalTuple t;
  t.values = {Value("x")};
  t.valid = Period(Chronon(0), Chronon::Forever());
  t.txn = Period::All();
  std::string s = t.ToString();
  EXPECT_NE(s.find("(x)"), std::string::npos);
  EXPECT_NE(s.find(" v["), std::string::npos);
  EXPECT_NE(s.find(" t["), std::string::npos);
}

}  // namespace
}  // namespace temporadb
