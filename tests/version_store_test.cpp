#include "temporal/version_store.h"

#include <gtest/gtest.h>

#include "txn/clock.h"
#include "txn/txn_manager.h"

namespace temporadb {
namespace {

BitemporalTuple Tuple(const char* name, int64_t txn_start) {
  BitemporalTuple t;
  t.values = {Value(name)};
  t.valid = Period::All();
  t.txn = Period::From(Chronon(txn_start));
  return t;
}

class VersionStoreTest : public ::testing::Test {
 protected:
  VersionStoreTest() : manager_(&clock_) {}

  Transaction* BeginAt(int64_t day) {
    clock_.SetTime(Chronon(day));
    Result<Transaction*> txn = manager_.Begin();
    EXPECT_TRUE(txn.ok());
    return *txn;
  }

  ManualClock clock_;
  TxnManager manager_;
  VersionStore store_;
};

TEST_F(VersionStoreTest, AppendAssignsDenseRowIds) {
  Transaction* txn = BeginAt(10);
  EXPECT_EQ(*store_.Append(txn, Tuple("a", 10)), 0u);
  EXPECT_EQ(*store_.Append(txn, Tuple("b", 10)), 1u);
  ASSERT_TRUE(manager_.Commit(txn).ok());
  EXPECT_EQ(store_.live_count(), 2u);
  EXPECT_EQ(store_.current_count(), 2u);
  EXPECT_EQ((*store_.Get(0))->values[0].AsString(), "a");
}

TEST_F(VersionStoreTest, MutationsRequireActiveTransaction) {
  EXPECT_FALSE(store_.Append(nullptr, Tuple("a", 1)).ok());
  Transaction* txn = BeginAt(10);
  ASSERT_TRUE(manager_.Commit(txn).ok());
  EXPECT_FALSE(store_.Append(txn, Tuple("a", 1)).ok());
}

TEST_F(VersionStoreTest, CloseTxnEndsCurrentState) {
  Transaction* t1 = BeginAt(10);
  RowId row = *store_.Append(t1, Tuple("a", 10));
  ASSERT_TRUE(manager_.Commit(t1).ok());
  Transaction* t2 = BeginAt(20);
  ASSERT_TRUE(store_.CloseTxn(t2, row, Chronon(20)).ok());
  ASSERT_TRUE(manager_.Commit(t2).ok());
  EXPECT_EQ(store_.current_count(), 0u);
  EXPECT_EQ((*store_.Get(row))->txn, Period(Chronon(10), Chronon(20)));
  // Double close fails.
  Transaction* t3 = BeginAt(30);
  EXPECT_EQ(store_.CloseTxn(t3, row, Chronon(30)).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(manager_.Abort(t3).ok());
}

TEST_F(VersionStoreTest, AbortUndoesAppend) {
  Transaction* txn = BeginAt(10);
  ASSERT_TRUE(store_.Append(txn, Tuple("a", 10)).ok());
  ASSERT_TRUE(store_.Append(txn, Tuple("b", 10)).ok());
  ASSERT_TRUE(manager_.Abort(txn).ok());
  EXPECT_EQ(store_.live_count(), 0u);
  EXPECT_EQ(store_.version_count(), 0u);
  EXPECT_TRUE(store_.TxnAsOf(Chronon(10)).empty());
  // A fresh append reuses row id 0.
  Transaction* t2 = BeginAt(20);
  EXPECT_EQ(*store_.Append(t2, Tuple("c", 20)), 0u);
  ASSERT_TRUE(manager_.Commit(t2).ok());
}

TEST_F(VersionStoreTest, AbortUndoesCloseTxn) {
  Transaction* t1 = BeginAt(10);
  RowId row = *store_.Append(t1, Tuple("a", 10));
  ASSERT_TRUE(manager_.Commit(t1).ok());
  Transaction* t2 = BeginAt(20);
  ASSERT_TRUE(store_.CloseTxn(t2, row, Chronon(20)).ok());
  ASSERT_TRUE(manager_.Abort(t2).ok());
  EXPECT_EQ(store_.current_count(), 1u);
  EXPECT_TRUE((*store_.Get(row))->IsCurrentState());
  EXPECT_EQ(store_.TxnAsOf(Chronon(25)).size(), 1u);
}

TEST_F(VersionStoreTest, AbortUndoesPhysicalDeleteAndUpdate) {
  Transaction* t1 = BeginAt(10);
  RowId row = *store_.Append(t1, Tuple("a", 10));
  ASSERT_TRUE(manager_.Commit(t1).ok());

  Transaction* t2 = BeginAt(20);
  BitemporalTuple updated = Tuple("a2", 10);
  ASSERT_TRUE(store_.PhysicalUpdate(t2, row, updated).ok());
  ASSERT_TRUE(store_.PhysicalDelete(t2, row).ok());
  ASSERT_TRUE(manager_.Abort(t2).ok());
  ASSERT_TRUE(store_.Get(row).ok());
  EXPECT_EQ((*store_.Get(row))->values[0].AsString(), "a");
  EXPECT_EQ(store_.live_count(), 1u);
}

TEST_F(VersionStoreTest, PhysicalDeleteTombstones) {
  Transaction* t1 = BeginAt(10);
  RowId a = *store_.Append(t1, Tuple("a", 10));
  RowId b = *store_.Append(t1, Tuple("b", 10));
  ASSERT_TRUE(store_.PhysicalDelete(t1, a).ok());
  ASSERT_TRUE(manager_.Commit(t1).ok());
  EXPECT_TRUE(store_.Get(a).status().IsNotFound());
  EXPECT_TRUE(store_.Get(b).ok());
  EXPECT_EQ(store_.live_count(), 1u);
  EXPECT_EQ(store_.version_count(), 2u);  // Slot preserved.
  // Row ids remain stable: a fresh append takes a new id.
  Transaction* t2 = BeginAt(20);
  EXPECT_EQ(*store_.Append(t2, Tuple("c", 20)), 2u);
  ASSERT_TRUE(manager_.Commit(t2).ok());
}

TEST_F(VersionStoreTest, TxnAsOfWithAndWithoutIndex) {
  for (bool indexed : {true, false}) {
    VersionStoreOptions options;
    options.index_txn_time = indexed;
    VersionStore store(options);
    Transaction* t1 = BeginAt(10);
    RowId a = *store.Append(t1, Tuple("a", 10));
    ASSERT_TRUE(manager_.Commit(t1).ok());
    Transaction* t2 = BeginAt(20);
    ASSERT_TRUE(store.CloseTxn(t2, a, Chronon(20)).ok());
    ASSERT_TRUE(store.Append(t2, Tuple("b", 20)).ok());
    ASSERT_TRUE(manager_.Commit(t2).ok());

    EXPECT_EQ(store.TxnAsOf(Chronon(15)), std::vector<RowId>{a}) << indexed;
    EXPECT_EQ(store.TxnAsOf(Chronon(25)), std::vector<RowId>{1}) << indexed;
    EXPECT_TRUE(store.TxnAsOf(Chronon(5)).empty()) << indexed;
    EXPECT_EQ(store.CurrentRows(), std::vector<RowId>{1}) << indexed;
  }
}

TEST_F(VersionStoreTest, ValidOverlappingWithAndWithoutIndex) {
  for (bool indexed : {true, false}) {
    VersionStoreOptions options;
    options.index_valid_time = indexed;
    VersionStore store(options);
    Transaction* txn = BeginAt(10);
    BitemporalTuple t = Tuple("a", 10);
    t.valid = Period(Chronon(100), Chronon(200));
    ASSERT_TRUE(store.Append(txn, t).ok());
    BitemporalTuple u = Tuple("b", 10);
    u.valid = Period(Chronon(300), Chronon(400));
    ASSERT_TRUE(store.Append(txn, u).ok());
    ASSERT_TRUE(manager_.Commit(txn).ok());

    EXPECT_EQ(store.ValidOverlapping(Period(Chronon(150), Chronon(160))),
              std::vector<RowId>{0})
        << indexed;
    EXPECT_EQ(store.ValidOverlapping(Period(Chronon(150), Chronon(350))).size(),
              2u)
        << indexed;
    EXPECT_TRUE(
        store.ValidOverlapping(Period(Chronon(200), Chronon(300))).empty())
        << indexed;
  }
}

TEST_F(VersionStoreTest, ObserverSeesCommittedMutationShapes) {
  std::vector<VersionOp::Kind> kinds;
  store_.set_observer(
      [&](const VersionOp& op) { kinds.push_back(op.kind); });
  Transaction* txn = BeginAt(10);
  RowId row = *store_.Append(txn, Tuple("a", 10));
  ASSERT_TRUE(store_.CloseTxn(txn, row, Chronon(10)).ok());
  ASSERT_TRUE(manager_.Commit(txn).ok());
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], VersionOp::Kind::kAppend);
  EXPECT_EQ(kinds[1], VersionOp::Kind::kCloseTxn);
}

TEST_F(VersionStoreTest, ApplyReplayReproducesState) {
  // Record ops from a live store, replay into a fresh one, compare.
  std::vector<VersionOp> ops;
  store_.set_observer([&](const VersionOp& op) { ops.push_back(op); });
  Transaction* t1 = BeginAt(10);
  RowId a = *store_.Append(t1, Tuple("a", 10));
  ASSERT_TRUE(store_.Append(t1, Tuple("b", 10)).ok());
  ASSERT_TRUE(manager_.Commit(t1).ok());
  Transaction* t2 = BeginAt(20);
  ASSERT_TRUE(store_.CloseTxn(t2, a, Chronon(20)).ok());
  ASSERT_TRUE(store_.Append(t2, Tuple("c", 20)).ok());
  ASSERT_TRUE(manager_.Commit(t2).ok());

  VersionStore replica;
  for (const VersionOp& op : ops) {
    ASSERT_TRUE(replica.ApplyReplay(op).ok());
  }
  EXPECT_EQ(replica.version_count(), store_.version_count());
  EXPECT_EQ(replica.current_count(), store_.current_count());
  for (RowId row = 0; row < store_.version_count(); ++row) {
    EXPECT_EQ(**replica.Get(row), **store_.Get(row)) << row;
  }
}

TEST_F(VersionStoreTest, LoadSlotPreservesTombstones) {
  VersionStore store;
  EXPECT_EQ(store.LoadSlot(Tuple("a", 1)), 0u);
  EXPECT_EQ(store.LoadSlot(std::nullopt), 1u);
  EXPECT_EQ(store.LoadSlot(Tuple("c", 3)), 2u);
  EXPECT_EQ(store.live_count(), 2u);
  EXPECT_EQ(store.version_count(), 3u);
  EXPECT_TRUE(store.Get(1).status().IsNotFound());
  EXPECT_EQ((*store.Get(2))->values[0].AsString(), "c");
}

TEST_F(VersionStoreTest, LoadSlotIndexesClosedVersions) {
  VersionStore store;
  BitemporalTuple closed = Tuple("old", 10);
  closed.txn = Period(Chronon(10), Chronon(20));
  store.LoadSlot(closed);
  store.LoadSlot(Tuple("cur", 20));
  EXPECT_EQ(store.TxnAsOf(Chronon(15)), std::vector<RowId>{0});
  EXPECT_EQ(store.TxnAsOf(Chronon(25)), std::vector<RowId>{1});
}

TEST_F(VersionStoreTest, ApproximateBytesGrows) {
  size_t before = store_.ApproximateBytes();
  Transaction* txn = BeginAt(10);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store_.Append(txn, Tuple("some-name", 10)).ok());
  }
  ASSERT_TRUE(manager_.Commit(txn).ok());
  EXPECT_GT(store_.ApproximateBytes(), before);
}

}  // namespace
}  // namespace temporadb
