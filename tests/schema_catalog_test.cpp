#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "catalog/temporal_class.h"

namespace temporadb {
namespace {

Schema FacultySchema() {
  return *Schema::Make({Attribute{"name", Type::String()},
                        Attribute{"rank", Type::String()}});
}

TEST(Schema, MakeValidates) {
  EXPECT_TRUE(Schema::Make({Attribute{"a", Type::Int()}}).ok());
  EXPECT_FALSE(Schema::Make({Attribute{"", Type::Int()}}).ok());
  EXPECT_FALSE(Schema::Make({Attribute{"a", Type::Int()},
                             Attribute{"a", Type::Float()}})
                   .ok());
}

TEST(Schema, IndexOf) {
  Schema s = FacultySchema();
  EXPECT_EQ(*s.IndexOf("rank"), 1u);
  EXPECT_FALSE(s.IndexOf("salary").has_value());
}

TEST(Schema, Project) {
  Schema s = FacultySchema();
  Schema p = s.Project({1});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.at(0).name, "rank");
  std::vector<std::string> names{"r"};
  Schema renamed = s.Project({1}, &names);
  EXPECT_EQ(renamed.at(0).name, "r");
}

TEST(Schema, Concat) {
  Schema s = FacultySchema().Concat(
      *Schema::Make({Attribute{"salary", Type::Int()}}));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.at(2).name, "salary");
}

TEST(Schema, ToString) {
  EXPECT_EQ(FacultySchema().ToString(), "(name: string, rank: string)");
}

TEST(Schema, EncodeDecodeRoundTrip) {
  Schema s = *Schema::Make({Attribute{"name", Type::String()},
                            Attribute{"n", Type::Int()},
                            Attribute{"f", Type::Float()},
                            Attribute{"d", Type::DateType()},
                            Attribute{"b", Type::Bool()}});
  std::string buf;
  s.EncodeTo(&buf);
  std::string_view in = buf;
  Result<Schema> round = Schema::DecodeFrom(&in);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(*round, s);
  EXPECT_TRUE(in.empty());
}

TEST(Schema, DecodeDetectsTruncation) {
  Schema s = FacultySchema();
  std::string buf;
  s.EncodeTo(&buf);
  buf.resize(buf.size() / 2);
  std::string_view in = buf;
  EXPECT_FALSE(Schema::DecodeFrom(&in).ok());
}

TEST(TemporalClassPredicates, MatchFigure11) {
  EXPECT_FALSE(SupportsTransactionTime(TemporalClass::kStatic));
  EXPECT_FALSE(SupportsValidTime(TemporalClass::kStatic));
  EXPECT_TRUE(SupportsTransactionTime(TemporalClass::kRollback));
  EXPECT_FALSE(SupportsValidTime(TemporalClass::kRollback));
  EXPECT_FALSE(SupportsTransactionTime(TemporalClass::kHistorical));
  EXPECT_TRUE(SupportsValidTime(TemporalClass::kHistorical));
  EXPECT_TRUE(SupportsTransactionTime(TemporalClass::kTemporal));
  EXPECT_TRUE(SupportsValidTime(TemporalClass::kTemporal));
}

TEST(TemporalClassPredicates, AppendOnlyTracksRollback) {
  // §5: kinds supporting rollback are append-only.
  for (TemporalClass c : {TemporalClass::kStatic, TemporalClass::kRollback,
                          TemporalClass::kHistorical,
                          TemporalClass::kTemporal}) {
    EXPECT_EQ(IsAppendOnly(c), SupportsTransactionTime(c));
  }
}

TEST(TemporalClassPredicates, DerivedClassRules) {
  EXPECT_EQ(DerivedClass(TemporalClass::kStatic), TemporalClass::kStatic);
  EXPECT_EQ(DerivedClass(TemporalClass::kRollback), TemporalClass::kStatic);
  EXPECT_EQ(DerivedClass(TemporalClass::kHistorical),
            TemporalClass::kHistorical);
  EXPECT_EQ(DerivedClass(TemporalClass::kTemporal), TemporalClass::kTemporal);
}

TEST(TemporalClassPredicates, MeetIsLatticeMeet) {
  EXPECT_EQ(MeetClass(TemporalClass::kTemporal, TemporalClass::kTemporal),
            TemporalClass::kTemporal);
  EXPECT_EQ(MeetClass(TemporalClass::kTemporal, TemporalClass::kHistorical),
            TemporalClass::kHistorical);
  EXPECT_EQ(MeetClass(TemporalClass::kTemporal, TemporalClass::kRollback),
            TemporalClass::kRollback);
  EXPECT_EQ(MeetClass(TemporalClass::kHistorical, TemporalClass::kRollback),
            TemporalClass::kStatic);
  EXPECT_EQ(MeetClass(TemporalClass::kStatic, TemporalClass::kTemporal),
            TemporalClass::kStatic);
}

TEST(TemporalClassNames, Stable) {
  EXPECT_EQ(TemporalClassName(TemporalClass::kStatic), "static");
  EXPECT_EQ(TemporalClassName(TemporalClass::kRollback), "rollback");
  EXPECT_EQ(TemporalClassName(TemporalClass::kHistorical), "historical");
  EXPECT_EQ(TemporalClassName(TemporalClass::kTemporal), "temporal");
  EXPECT_EQ(TemporalDataModelName(TemporalDataModel::kEvent), "event");
}

TEST(Catalog, CreateAndGet) {
  Catalog catalog;
  Result<RelationInfo> info = catalog.CreateRelation(
      "faculty", FacultySchema(), TemporalClass::kTemporal,
      TemporalDataModel::kInterval, false);
  ASSERT_TRUE(info.ok());
  EXPECT_GT(info->id, 0u);
  Result<RelationInfo> got = catalog.GetRelation("faculty");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->temporal_class, TemporalClass::kTemporal);
  EXPECT_TRUE(catalog.HasRelation("faculty"));
  EXPECT_FALSE(catalog.HasRelation("students"));
}

TEST(Catalog, DuplicateNameRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateRelation("r", FacultySchema(),
                                     TemporalClass::kStatic,
                                     TemporalDataModel::kInterval, false)
                  .ok());
  Result<RelationInfo> dup = catalog.CreateRelation(
      "r", FacultySchema(), TemporalClass::kStatic,
      TemporalDataModel::kInterval, false);
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(Catalog, EventRequiresValidTime) {
  Catalog catalog;
  EXPECT_FALSE(catalog.CreateRelation("e", FacultySchema(),
                                      TemporalClass::kRollback,
                                      TemporalDataModel::kEvent, false)
                   .ok());
  EXPECT_TRUE(catalog.CreateRelation("e", FacultySchema(),
                                     TemporalClass::kHistorical,
                                     TemporalDataModel::kEvent, false)
                  .ok());
}

TEST(Catalog, DropAndList) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateRelation("b", FacultySchema(),
                                     TemporalClass::kStatic,
                                     TemporalDataModel::kInterval, false)
                  .ok());
  ASSERT_TRUE(catalog.CreateRelation("a", FacultySchema(),
                                     TemporalClass::kStatic,
                                     TemporalDataModel::kInterval, false)
                  .ok());
  auto list = catalog.ListRelations();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].name, "a");  // Name order.
  ASSERT_TRUE(catalog.DropRelation("a").ok());
  EXPECT_FALSE(catalog.HasRelation("a"));
  EXPECT_TRUE(catalog.DropRelation("a").IsNotFound());
}

TEST(Catalog, IdsNeverReused) {
  Catalog catalog;
  uint64_t id1 = catalog
                     .CreateRelation("x", FacultySchema(),
                                     TemporalClass::kStatic,
                                     TemporalDataModel::kInterval, false)
                     ->id;
  ASSERT_TRUE(catalog.DropRelation("x").ok());
  uint64_t id2 = catalog
                     .CreateRelation("x", FacultySchema(),
                                     TemporalClass::kStatic,
                                     TemporalDataModel::kInterval, false)
                     ->id;
  EXPECT_NE(id1, id2);
}

TEST(Catalog, EncodeDecodeRoundTrip) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateRelation("faculty", FacultySchema(),
                                     TemporalClass::kTemporal,
                                     TemporalDataModel::kInterval, true)
                  .ok());
  ASSERT_TRUE(catalog.CreateRelation("promotion", FacultySchema(),
                                     TemporalClass::kTemporal,
                                     TemporalDataModel::kEvent, false)
                  .ok());
  std::string buf;
  catalog.EncodeTo(&buf);
  std::string_view in = buf;
  Result<Catalog> round = Catalog::DecodeFrom(&in);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->size(), 2u);
  Result<RelationInfo> faculty = round->GetRelation("faculty");
  ASSERT_TRUE(faculty.ok());
  EXPECT_TRUE(faculty->persistent);
  EXPECT_EQ(faculty->temporal_class, TemporalClass::kTemporal);
  Result<RelationInfo> promotion = round->GetRelation("promotion");
  ASSERT_TRUE(promotion.ok());
  EXPECT_EQ(promotion->data_model, TemporalDataModel::kEvent);
  // next_id survives the round trip: new relations get fresh ids.
  Result<RelationInfo> fresh = round->CreateRelation(
      "z", FacultySchema(), TemporalClass::kStatic,
      TemporalDataModel::kInterval, false);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh->id, promotion->id);
}

}  // namespace
}  // namespace temporadb
