// TQuel aggregates (count/sum/avg/min/max/any in target lists) and the
// transaction-control statements (begin transaction / commit / abort).

#include <gtest/gtest.h>

#include "core/database.h"

namespace temporadb {
namespace {

class TquelAggregateTest : public ::testing::Test {
 protected:
  TquelAggregateTest() {
    DatabaseOptions options;
    options.clock = &clock_;
    db_ = std::move(*Database::Open(options));
    clock_.SetDate("01/01/80").ok();
    (void)db_->Execute(
        "create relation emp (name = string, dept = string, salary = int)");
    (void)db_->Execute("range of e is emp");
    const char* rows[] = {
        "append to emp (name = \"a\", dept = \"cs\", salary = 100)",
        "append to emp (name = \"b\", dept = \"cs\", salary = 200)",
        "append to emp (name = \"c\", dept = \"math\", salary = 50)",
        "append to emp (name = \"d\", dept = \"math\", salary = 70)",
    };
    for (const char* r : rows) (void)db_->Execute(r);
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
};

TEST_F(TquelAggregateTest, GlobalCount) {
  Result<Rowset> rows = db_->Query("retrieve (n = count(e.name))");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->rows()[0].values[0].AsInt(), 4);
  EXPECT_EQ(rows->temporal_class(), TemporalClass::kStatic);
}

TEST_F(TquelAggregateTest, BareAggregateAutoNamed) {
  Result<Rowset> rows = db_->Query("retrieve (count(e.name))");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->schema().at(0).name, "count");
}

TEST_F(TquelAggregateTest, GroupedAggregates) {
  Result<Rowset> rows = db_->Query(
      "retrieve (e.dept, total = sum(e.salary), mean = avg(e.salary), "
      "top = max(e.salary))");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  // Group keys sort ascending (cs, math).
  EXPECT_EQ(rows->rows()[0].values[0].AsString(), "cs");
  EXPECT_EQ(rows->rows()[0].values[1].AsInt(), 300);
  EXPECT_DOUBLE_EQ(rows->rows()[0].values[2].AsFloat(), 150.0);
  EXPECT_EQ(rows->rows()[0].values[3].AsInt(), 200);
  EXPECT_EQ(rows->rows()[1].values[1].AsInt(), 120);
}

TEST_F(TquelAggregateTest, ColumnOrderPreserved) {
  // Aggregate first, key second: the output must keep the written order.
  Result<Rowset> rows =
      db_->Query("retrieve (n = count(e.name), e.dept)");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->schema().at(0).name, "n");
  EXPECT_EQ(rows->schema().at(1).name, "dept");
  EXPECT_EQ(rows->rows()[0].values[0].type(), ValueType::kInt);
  EXPECT_EQ(rows->rows()[0].values[1].type(), ValueType::kString);
}

TEST_F(TquelAggregateTest, WhereFiltersBeforeAggregation) {
  Result<Rowset> rows = db_->Query(
      "retrieve (n = count(e.name)) where e.salary > 60");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows()[0].values[0].AsInt(), 3);
}

TEST_F(TquelAggregateTest, AggregateOverExpression) {
  Result<Rowset> rows = db_->Query(
      "retrieve (raised = sum(e.salary * 2))");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows()[0].values[0].AsInt(), 840);
}

TEST_F(TquelAggregateTest, EmptyInputGlobalAggregate) {
  (void)db_->Execute("create relation void (x = int)");
  (void)db_->Execute("range of v is void");
  Result<Rowset> rows = db_->Query("retrieve (n = count(v.x))");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->rows()[0].values[0].AsInt(), 0);
}

TEST_F(TquelAggregateTest, MisplacedAggregatesRejected) {
  EXPECT_TRUE(db_->Query("retrieve (x = count(e.name) + 1)")
                  .status()
                  .IsNotSupported());
  EXPECT_TRUE(db_->Query("retrieve (e.name) where count(e.name) > 1")
                  .status()
                  .IsNotSupported());
}

TEST_F(TquelAggregateTest, ValidClauseWithAggregateRejected) {
  (void)db_->Execute("create historical relation h (name = string)");
  (void)db_->Execute("range of x is h");
  (void)db_->Execute("append to h (name = \"a\")");
  Result<Rowset> rows = db_->Query(
      "retrieve (n = count(x.name)) valid from \"01/01/80\" to \"inf\"");
  EXPECT_TRUE(rows.status().IsNotSupported());
  // when as a pre-aggregation filter is fine.
  Result<Rowset> when_ok = db_->Query(
      "retrieve (n = count(x.name)) when x overlap \"06/01/80\"");
  ASSERT_TRUE(when_ok.ok()) << when_ok.status().ToString();
  EXPECT_EQ(when_ok->rows()[0].values[0].AsInt(), 1);
}

TEST_F(TquelAggregateTest, HistoricalTrendViaWhenPlusAggregate) {
  // The paper's "how did the number of faculty change?" — now purely in
  // TQuel: count per timeslice via a when filter.
  (void)db_->Execute(
      "create historical relation fac (name = string, rank = string)");
  (void)db_->Execute("range of f is fac");
  (void)db_->Execute("append to fac (name = \"m\", rank = \"a\") "
                     "valid from \"01/01/78\" to \"inf\"");
  (void)db_->Execute("append to fac (name = \"t\", rank = \"a\") "
                     "valid from \"01/01/81\" to \"inf\"");
  (void)db_->Execute("append to fac (name = \"k\", rank = \"a\") "
                     "valid from \"01/01/82\" to \"06/01/83\"");
  int expected[] = {1, 1, 2, 3, 3, 2};
  int year = 1979;
  for (int want : expected) {
    std::string q = "retrieve (n = count(f.name)) when f overlap \"01/15/" +
                    std::to_string(year % 100) + "\"";
    Result<Rowset> rows = db_->Query(q);
    ASSERT_TRUE(rows.ok()) << q << ": " << rows.status().ToString();
    EXPECT_EQ(rows->rows()[0].values[0].AsInt(), want) << year;
    ++year;
  }
}

TEST_F(TquelAggregateTest, TransactionStatements) {
  ASSERT_TRUE(db_->Execute("begin transaction").ok());
  ASSERT_TRUE(db_->Execute(
                    "append to emp (name = \"x\", dept = \"cs\", salary = 1)")
                  .ok());
  ASSERT_TRUE(db_->Execute(
                    "append to emp (name = \"y\", dept = \"cs\", salary = 2)")
                  .ok());
  ASSERT_TRUE(db_->Execute("commit").ok());
  EXPECT_EQ(db_->Query("retrieve (n = count(e.name))")
                ->rows()[0]
                .values[0]
                .AsInt(),
            6);

  ASSERT_TRUE(db_->Execute("begin transaction").ok());
  ASSERT_TRUE(db_->Execute("delete e").ok());
  ASSERT_TRUE(db_->Execute("abort").ok());
  EXPECT_EQ(db_->Query("retrieve (n = count(e.name))")
                ->rows()[0]
                .values[0]
                .AsInt(),
            6);
}

TEST_F(TquelAggregateTest, TransactionStatementsInOneSource) {
  Result<tquel::ExecResult> r = db_->Execute(
      "begin transaction; "
      "append to emp (name = \"z\", dept = \"q\", salary = 9); "
      "abort");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(db_->Query("retrieve (n = count(e.name))")
                ->rows()[0]
                .values[0]
                .AsInt(),
            4);
}

TEST_F(TquelAggregateTest, CommitWithoutBeginFails) {
  EXPECT_EQ(db_->Execute("commit").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(db_->Execute("abort").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(TquelAggregateTest, CountOnlyColumnNotFunction) {
  // An attribute named like an aggregate is still usable without parens.
  (void)db_->Execute("create relation weird (count = int)");
  (void)db_->Execute("range of w is weird");
  (void)db_->Execute("append to weird (count = 5)");
  Result<Rowset> rows = db_->Query("retrieve (w.count)");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows()[0].values[0].AsInt(), 5);
}

}  // namespace
}  // namespace temporadb
