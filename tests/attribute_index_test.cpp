// Secondary attribute indexes: version-store maintenance across the whole
// mutation/undo/replay surface, the `create index` TQuel statement, and the
// evaluator's equality fast path (which must be invisible semantically).

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/paper_scenario.h"
#include "tests/relation_test_util.h"

namespace temporadb {
namespace {

class AttributeIndexStoreTest : public testutil::RelationFixture {
 protected:
  AttributeIndexStoreTest() { MakeRelation(TemporalClass::kTemporal); }

  std::vector<RowId> Lookup(const char* name) {
    Result<std::vector<RowId>> rows =
        relation_->store()->LookupAttribute(0, Value(name));
    EXPECT_TRUE(rows.ok());
    return rows.ok() ? *rows : std::vector<RowId>{};
  }
};

TEST_F(AttributeIndexStoreTest, BackfillsExistingRows) {
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  ASSERT_TRUE(Append("01/01/80", "b", "2").ok());
  ASSERT_TRUE(relation_->CreateIndex("name").ok());
  EXPECT_EQ(Lookup("a").size(), 1u);
  EXPECT_EQ(Lookup("b").size(), 1u);
  EXPECT_TRUE(Lookup("zzz").empty());
}

TEST_F(AttributeIndexStoreTest, CreateIndexValidation) {
  EXPECT_TRUE(relation_->CreateIndex("nope").IsInvalidArgument());
  ASSERT_TRUE(relation_->CreateIndex("name").ok());
  EXPECT_EQ(relation_->CreateIndex("name").code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(relation_->store()->HasAttributeIndex(0));
  EXPECT_FALSE(relation_->store()->HasAttributeIndex(1));
  EXPECT_TRUE(relation_->store()
                  ->LookupAttribute(1, Value("x"))
                  .status()
                  .code() == StatusCode::kFailedPrecondition);
}

TEST_F(AttributeIndexStoreTest, MaintainedAcrossMutations) {
  ASSERT_TRUE(relation_->CreateIndex("name").ok());
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  // A temporal replace closes and appends new versions; all versions of
  // "a" stay indexed (the index is over live versions, not current ones).
  ASSERT_TRUE(Replace("02/01/80", "a", "2", Since("01/01/80")).ok());
  EXPECT_EQ(Lookup("a").size(), 2u);
}

TEST_F(AttributeIndexStoreTest, UndoRestoresIndex) {
  ASSERT_TRUE(relation_->CreateIndex("name").ok());
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  clock_.SetDate("02/01/80").ok();
  Result<Transaction*> txn = manager_.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(relation_->Append(*txn, {Value("b"), Value("2")},
                                std::nullopt)
                  .ok());
  ASSERT_TRUE(
      relation_->DeleteWhere(*txn, NameIs("a"), Period::All()).ok());
  ASSERT_TRUE(manager_.Abort(*txn).ok());
  EXPECT_EQ(Lookup("a").size(), 1u);
  EXPECT_TRUE(Lookup("b").empty());
}

TEST_F(AttributeIndexStoreTest, HistoricalPhysicalOpsMaintainIndex) {
  MakeRelation(TemporalClass::kHistorical);
  ASSERT_TRUE(relation_->CreateIndex("name").ok());
  ASSERT_TRUE(Append("01/01/80", "a", "1",
                     Between("01/01/80", "01/01/85")).ok());
  // Mid-period delete: in-place update + append (split).
  ASSERT_TRUE(
      Delete("06/01/80", "a", Between("01/01/82", "01/01/83")).ok());
  EXPECT_EQ(Lookup("a").size(), 2u);
  // Physical erase drops both fragments.
  size_t count = 0;
  ASSERT_TRUE(AtDate("07/01/80", [&](Transaction* txn) -> Status {
                TDB_ASSIGN_OR_RETURN(count,
                                     relation_->CorrectErase(txn,
                                                             NameIs("a")));
                return Status::OK();
              }).ok());
  EXPECT_EQ(count, 2u);
  EXPECT_TRUE(Lookup("a").empty());
}

class AttributeIndexQueryTest : public ::testing::Test {
 protected:
  AttributeIndexQueryTest() {
    DatabaseOptions options;
    options.clock = &clock_;
    db_ = std::move(*Database::Open(options));
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
};

TEST_F(AttributeIndexQueryTest, CreateIndexStatement) {
  ASSERT_TRUE(db_->Execute("create relation t (name = string)").ok());
  Result<tquel::ExecResult> r = db_->Execute("create index on t (name)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->message.find("indexed"), std::string::npos);
  EXPECT_TRUE(db_->Execute("create index on t (name)").status().code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(
      db_->Execute("create index on t (nope)").status().IsInvalidArgument());
  EXPECT_TRUE(
      db_->Execute("create index on missing (x)").status().IsNotFound());
}

TEST_F(AttributeIndexQueryTest, PaperQueriesIdenticalWithAndWithoutIndex) {
  // Build the paper's temporal faculty twice — indexed and not — and check
  // the bitemporal query answers are identical.
  auto run = [&](bool indexed) -> std::string {
    ManualClock clock;
    DatabaseOptions options;
    options.clock = &clock;
    auto db = std::move(*Database::Open(options));
    EXPECT_TRUE(paper::BuildTemporalFaculty(db.get(), &clock).ok());
    if (indexed) {
      EXPECT_TRUE(db->Execute("create index on faculty (name)").ok());
    }
    EXPECT_TRUE(db->Execute("range of f1 is faculty").ok());
    EXPECT_TRUE(db->Execute("range of f2 is faculty").ok());
    Result<Rowset> rows = db->Query(
        "retrieve (f1.rank) where f1.name = \"Merrie\" and "
        "f2.name = \"Tom\" when f1 overlap start of f2 as of \"12/10/82\"");
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? rows->Render() : "error";
  };
  EXPECT_EQ(run(false), run(true));
}

TEST_F(AttributeIndexQueryTest, VisibilityRespectedThroughIndexProbe) {
  clock_.SetDate("01/01/80").ok();
  ASSERT_TRUE(
      db_->Execute("create rollback relation r (name = string)").ok());
  ASSERT_TRUE(db_->Execute("create index on r (name)").ok());
  ASSERT_TRUE(db_->Execute("append to r (name = \"x\")").ok());
  ASSERT_TRUE(db_->Execute("range of v is r").ok());
  clock_.SetDate("02/01/80").ok();
  ASSERT_TRUE(db_->Execute("delete v where v.name = \"x\"").ok());
  // The index still holds the closed version; the current-state query must
  // not see it...
  EXPECT_EQ(db_->Query("retrieve (v.name) where v.name = \"x\"")->size(),
            0u);
  // ...while rollback does.
  EXPECT_EQ(db_->Query("retrieve (v.name) where v.name = \"x\" "
                       "as of \"01/15/80\"")
                ->size(),
            1u);
}

TEST_F(AttributeIndexQueryTest, IntAndDateKeys) {
  clock_.SetDate("01/01/80").ok();
  ASSERT_TRUE(db_->Execute(
                    "create relation t (n = int, d = date, s = string)")
                  .ok());
  ASSERT_TRUE(db_->Execute("create index on t (n)").ok());
  ASSERT_TRUE(db_->Execute("create index on t (d)").ok());
  ASSERT_TRUE(db_->Execute(
                    "append to t (n = 7, d = \"12/15/82\", s = \"a\")")
                  .ok());
  ASSERT_TRUE(db_->Execute(
                    "append to t (n = 8, d = \"01/01/83\", s = \"b\")")
                  .ok());
  ASSERT_TRUE(db_->Execute("range of x is t").ok());
  EXPECT_EQ(db_->Query("retrieve (x.s) where x.n = 7")->size(), 1u);
  // Date equality against a string literal goes through coercion and still
  // probes the index.
  Result<Rowset> by_date =
      db_->Query("retrieve (x.s) where x.d = \"01/01/83\"");
  ASSERT_TRUE(by_date.ok()) << by_date.status().ToString();
  ASSERT_EQ(by_date->size(), 1u);
  EXPECT_EQ(by_date->rows()[0].values[0].AsString(), "b");
}

TEST_F(AttributeIndexQueryTest, NonEqualityPredicatesUnaffected) {
  clock_.SetDate("01/01/80").ok();
  ASSERT_TRUE(db_->Execute("create relation t (n = int)").ok());
  ASSERT_TRUE(db_->Execute("create index on t (n)").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        db_->Execute("append to t (n = " + std::to_string(i) + ")").ok());
  }
  ASSERT_TRUE(db_->Execute("range of x is t").ok());
  EXPECT_EQ(db_->Query("retrieve (x.n) where x.n > 6")->size(), 3u);
  EXPECT_EQ(db_->Query("retrieve (x.n) where x.n = 3 or x.n = 5")->size(),
            2u);
}

}  // namespace
}  // namespace temporadb
