#include "rel/relation.h"

#include <gtest/gtest.h>

namespace temporadb {
namespace {

Schema FacultySchema() {
  return *Schema::Make({Attribute{"name", Type::String()},
                        Attribute{"rank", Type::String()}});
}

Row StaticRow(const char* name, const char* rank) {
  Row row;
  row.values = {Value(name), Value(rank)};
  return row;
}

TEST(Rowset, ClassDeterminesPeriodDiscipline) {
  Rowset stat(FacultySchema(), TemporalClass::kStatic);
  EXPECT_FALSE(stat.has_valid_time());
  EXPECT_FALSE(stat.has_txn_time());
  EXPECT_TRUE(stat.AddRow(StaticRow("Merrie", "full")).ok());
  // A static rowset must not carry periods.
  Row bad = StaticRow("Tom", "associate");
  bad.valid = Period::All();
  EXPECT_TRUE(stat.AddRow(bad).IsInvalidArgument());
}

TEST(Rowset, HistoricalRequiresValidPeriod) {
  Rowset hist(FacultySchema(), TemporalClass::kHistorical);
  EXPECT_TRUE(hist.AddRow(StaticRow("Merrie", "full")).IsInvalidArgument());
  Row good = StaticRow("Merrie", "full");
  good.valid = Period::From(Chronon(0));
  EXPECT_TRUE(hist.AddRow(good).ok());
}

TEST(Rowset, TemporalRequiresBoth) {
  Rowset temp(FacultySchema(), TemporalClass::kTemporal);
  Row row = StaticRow("Merrie", "full");
  row.valid = Period::All();
  EXPECT_FALSE(temp.AddRow(row).ok());
  row.txn = Period::All();
  EXPECT_TRUE(temp.AddRow(row).ok());
  EXPECT_EQ(temp.size(), 1u);
}

TEST(Rowset, ArityChecked) {
  Rowset stat(FacultySchema(), TemporalClass::kStatic);
  Row row;
  row.values = {Value("only-one")};
  EXPECT_TRUE(stat.AddRow(row).IsInvalidArgument());
}

TEST(Rowset, RenderStaticHasNoTemporalColumns) {
  Rowset stat(FacultySchema(), TemporalClass::kStatic);
  ASSERT_TRUE(stat.AddRow(StaticRow("Merrie", "full")).ok());
  std::string out = stat.Render();
  EXPECT_NE(out.find("Merrie"), std::string::npos);
  EXPECT_EQ(out.find("valid time"), std::string::npos);
  EXPECT_EQ(out.find("transaction time"), std::string::npos);
}

TEST(Rowset, RenderTemporalShowsPaperColumns) {
  Rowset temp(FacultySchema(), TemporalClass::kTemporal);
  Row row = StaticRow("Merrie", "associate");
  row.valid = Period(Date::Parse("09/01/77")->chronon(),
                     Date::Parse("12/01/82")->chronon());
  row.txn = Period::From(Date::Parse("12/15/82")->chronon());
  ASSERT_TRUE(temp.AddRow(row).ok());
  std::string out = temp.Render("Figure 8 : A Temporal Relation");
  EXPECT_NE(out.find("valid time"), std::string::npos);
  EXPECT_NE(out.find("transaction time"), std::string::npos);
  EXPECT_NE(out.find("(from)"), std::string::npos);
  EXPECT_NE(out.find("(start)"), std::string::npos);
  EXPECT_NE(out.find("09/01/77"), std::string::npos);
  EXPECT_NE(out.find("inf"), std::string::npos);
}

TEST(Rowset, RenderEventShowsAtColumn) {
  Rowset ev(FacultySchema(), TemporalClass::kHistorical,
            TemporalDataModel::kEvent);
  Row row = StaticRow("Merrie", "full");
  row.valid = Period::At(Date::Parse("12/11/82")->chronon());
  ASSERT_TRUE(ev.AddRow(row).ok());
  std::string out = ev.Render();
  EXPECT_NE(out.find("(at)"), std::string::npos);
  EXPECT_EQ(out.find("(from)"), std::string::npos);
  EXPECT_NE(out.find("12/11/82"), std::string::npos);
}

TEST(Rowset, SameContentIgnoresOrder) {
  Rowset a(FacultySchema(), TemporalClass::kStatic);
  Rowset b(FacultySchema(), TemporalClass::kStatic);
  ASSERT_TRUE(a.AddRow(StaticRow("x", "1")).ok());
  ASSERT_TRUE(a.AddRow(StaticRow("y", "2")).ok());
  ASSERT_TRUE(b.AddRow(StaticRow("y", "2")).ok());
  ASSERT_TRUE(b.AddRow(StaticRow("x", "1")).ok());
  EXPECT_TRUE(Rowset::SameContent(a, b));
  ASSERT_TRUE(b.AddRow(StaticRow("z", "3")).ok());
  EXPECT_FALSE(Rowset::SameContent(a, b));
}

TEST(Rowset, SameContentDistinguishesClass) {
  Rowset a(FacultySchema(), TemporalClass::kStatic);
  Rowset b(FacultySchema(), TemporalClass::kHistorical);
  EXPECT_FALSE(Rowset::SameContent(a, b));
}

TEST(Row, OrderingIsDeterministic) {
  Row a = StaticRow("a", "1");
  Row b = StaticRow("b", "1");
  EXPECT_TRUE(a < b);
  Row a_with_period = a;
  a_with_period.valid = Period::From(Chronon(3));
  EXPECT_TRUE(a < a_with_period);  // Absent period sorts first.
  Row later = a_with_period;
  later.valid = Period::From(Chronon(5));
  EXPECT_TRUE(a_with_period < later);
}

TEST(Row, ToStringIncludesPeriods) {
  Row row = StaticRow("Merrie", "full");
  row.valid = Period::From(Chronon(0));
  EXPECT_NE(row.ToString().find("v["), std::string::npos);
  EXPECT_EQ(StaticRow("x", "y").ToString().find("v["), std::string::npos);
}

}  // namespace
}  // namespace temporadb
