// TQuel `when` clauses on delete/replace: the temporal predicate filters
// the DML's target tuples by their valid periods.

#include <gtest/gtest.h>

#include "core/database.h"

namespace temporadb {
namespace {

class DmlWhenTest : public ::testing::Test {
 protected:
  DmlWhenTest() {
    DatabaseOptions options;
    options.clock = &clock_;
    db_ = std::move(*Database::Open(options));
    clock_.SetDate("01/01/85").ok();
    (void)db_->Execute(
        "create historical relation jobs (name = string, role = string)");
    (void)db_->Execute("range of j is jobs");
    // ann: an early stint and a later one.
    (void)db_->Execute(
        "append to jobs (name = \"ann\", role = \"intern\") "
        "valid from \"01/01/80\" to \"01/01/81\"");
    (void)db_->Execute(
        "append to jobs (name = \"ann\", role = \"engineer\") "
        "valid from \"01/01/82\" to \"inf\"");
  }

  size_t CountRows(const std::string& q) {
    Result<Rowset> rows = db_->Query(q);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? rows->size() : 0;
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
};

TEST_F(DmlWhenTest, DeleteWhenSelectsByValidPeriod) {
  // Delete only the stint that precedes 06/01/81 — the intern period.
  Result<tquel::ExecResult> r = db_->Execute(
      "delete j valid from \"-inf\" to \"inf\" "
      "where j.name = \"ann\" when j precede \"06/01/81\"");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count, 1u);
  EXPECT_EQ(CountRows("retrieve (j.role)"), 1u);
  EXPECT_EQ(db_->Query("retrieve (j.role)")->rows()[0].values[0].AsString(),
            "engineer");
}

TEST_F(DmlWhenTest, ReplaceWhenTargetsOverlappingStint) {
  // Promote whichever stint overlaps 06/01/82.
  Result<tquel::ExecResult> r = db_->Execute(
      "replace j (role = \"senior\") valid from \"-inf\" to \"inf\" "
      "where j.name = \"ann\" when j overlap \"06/01/82\"");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count, 1u);
  // The intern stint is untouched.
  EXPECT_EQ(CountRows("retrieve (j.role) where j.role = \"intern\""), 1u);
  EXPECT_EQ(CountRows("retrieve (j.role) where j.role = \"senior\""), 1u);
  EXPECT_EQ(CountRows("retrieve (j.role) where j.role = \"engineer\""), 0u);
}

TEST_F(DmlWhenTest, WhenWithConnectives) {
  Result<tquel::ExecResult> r = db_->Execute(
      "delete j valid from \"-inf\" to \"inf\" when "
      "j overlap \"06/01/80\" or j overlap \"06/01/83\"");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count, 2u);
  EXPECT_EQ(CountRows("retrieve (j.role)"), 0u);
}

TEST_F(DmlWhenTest, WhenRejectedWithoutValidTime) {
  (void)db_->Execute("create rollback relation r (name = string)");
  (void)db_->Execute("append to r (name = \"x\")");
  (void)db_->Execute("range of v is r");
  Result<tquel::ExecResult> r = db_->Execute(
      "delete v when v overlap \"01/01/85\"");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotSupported());
  // Statically typed relations likewise.
  (void)db_->Execute("create static relation s (name = string)");
  (void)db_->Execute("range of w is s");
  EXPECT_TRUE(db_->Execute("replace w (name = \"y\") when w overlap "
                           "\"01/01/85\"")
                  .status()
                  .IsNotSupported());
}

TEST_F(DmlWhenTest, TemporalRelationWhenDeleteIsAppendOnly) {
  (void)db_->Execute(
      "create temporal relation t (name = string, role = string)");
  (void)db_->Execute("range of x is t");
  clock_.SetDate("01/01/86").ok();
  (void)db_->Execute("append to t (name = \"b\", role = \"old\") "
                     "valid from \"01/01/80\" to \"01/01/81\"");
  (void)db_->Execute("append to t (name = \"b\", role = \"new\") "
                     "valid from \"01/01/84\" to \"inf\"");
  clock_.SetDate("06/01/86").ok();
  Result<tquel::ExecResult> r = db_->Execute(
      "delete x valid from \"-inf\" to \"inf\" "
      "when x precede \"01/01/82\"");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count, 1u);
  // Current state: only "new" remains...
  EXPECT_EQ(CountRows("retrieve (x.role)"), 1u);
  // ...but the superseded version is still reachable by rollback.
  EXPECT_EQ(CountRows("retrieve (x.role) as of \"02/01/86\""), 2u);
}

TEST_F(DmlWhenTest, PrintedStatementsRoundTrip) {
  // The when clause survives StatementToString -> Parse.
  Result<tquel::ExecResult> noop = db_->Execute(
      "delete j where j.name = \"nobody\" when j overlap \"01/01/80\"");
  ASSERT_TRUE(noop.ok()) << noop.status().ToString();
  EXPECT_EQ(noop->count, 0u);
}

}  // namespace
}  // namespace temporadb
