#include "rel/cursor.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/database.h"
#include "rel/operators.h"
#include "temporal/stored_relation.h"

namespace temporadb {
namespace {

Schema NV() {
  return *Schema::Make({Attribute{"name", Type::String()},
                        Attribute{"value", Type::Int()}});
}

Rowset MakeStatic(std::vector<std::pair<const char*, int64_t>> rows) {
  Rowset out(NV(), TemporalClass::kStatic);
  for (auto& [name, value] : rows) {
    Row row;
    row.values = {Value(name), Value(value)};
    EXPECT_TRUE(out.AddRow(std::move(row)).ok());
  }
  return out;
}

Rowset MakeHistorical(
    std::vector<std::tuple<const char*, int64_t, int64_t, int64_t>> rows) {
  Rowset out(NV(), TemporalClass::kHistorical);
  for (auto& [name, value, from, to] : rows) {
    Row row;
    row.values = {Value(name), Value(value)};
    row.valid = Period(Chronon(from), Chronon(to));
    EXPECT_TRUE(out.AddRow(std::move(row)).ok());
  }
  return out;
}

Rowset MakeRollback(
    std::vector<std::tuple<const char*, int64_t, int64_t, int64_t>> rows) {
  Rowset out(NV(), TemporalClass::kRollback);
  for (auto& [name, value, from, to] : rows) {
    Row row;
    row.values = {Value(name), Value(value)};
    row.txn = Period(Chronon(from), Chronon(to));
    EXPECT_TRUE(out.AddRow(std::move(row)).ok());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Cursor operators agree with their materializing wrappers
// ---------------------------------------------------------------------------

TEST(Cursor, RowsetCursorRoundTrips) {
  Rowset input = MakeHistorical({{"a", 1, 0, 10}, {"b", 2, 5, 15}});
  RowCursorPtr c = MakeRowsetCursor(&input);
  Result<Rowset> out = MaterializeCursor(c.get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Render(), input.Render());
  EXPECT_EQ(out->temporal_class(), TemporalClass::kHistorical);
}

TEST(Cursor, SelectMatchesMaterialized) {
  Rowset input = MakeStatic({{"a", 1}, {"b", 2}, {"c", 3}});
  ExprPtr pred = MakeCompare(CompareOp::kGe, MakeColumnRef(1, "value"),
                             MakeLiteral(Value(int64_t{2})));
  RowCursorPtr c = MakeSelectCursor(MakeRowsetCursor(&input), pred.get());
  Result<Rowset> streamed = MaterializeCursor(c.get());
  Result<Rowset> materialized = Select(input, *pred);
  ASSERT_TRUE(streamed.ok());
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ(streamed->Render(), materialized->Render());
}

TEST(Cursor, ProjectMatchesMaterialized) {
  Rowset input = MakeStatic({{"a", 10}, {"b", 20}});
  std::vector<ExprPtr> exprs{
      MakeColumnRef(0, "name"),
      MakeArith(ArithOp::kMul, MakeColumnRef(1, "value"),
                MakeLiteral(Value(int64_t{2})))};
  std::vector<std::string> names{"name", "doubled"};
  RowCursorPtr c = MakeProjectCursor(MakeRowsetCursor(&input), &exprs, names);
  Result<Rowset> streamed = MaterializeCursor(c.get());
  Result<Rowset> materialized = Project(input, exprs, names);
  ASSERT_TRUE(streamed.ok());
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ(streamed->Render(), materialized->Render());
  EXPECT_EQ(streamed->schema().at(1).name, "doubled");
}

TEST(Cursor, UnionDifferenceDistinctSortMatchMaterialized) {
  Rowset a = MakeStatic({{"a", 1}, {"b", 2}, {"b", 2}});
  Rowset b = MakeStatic({{"b", 2}, {"c", 3}});
  {
    RowCursorPtr c = MakeUnionCursor(MakeRowsetCursor(&a), MakeRowsetCursor(&b));
    Result<Rowset> streamed = MaterializeCursor(c.get());
    ASSERT_TRUE(streamed.ok());
    EXPECT_EQ(streamed->Render(), Union(a, b)->Render());
  }
  {
    RowCursorPtr c =
        MakeDifferenceCursor(MakeRowsetCursor(&a), MakeRowsetCursor(&b));
    Result<Rowset> streamed = MaterializeCursor(c.get());
    ASSERT_TRUE(streamed.ok());
    EXPECT_EQ(streamed->Render(), Difference(a, b)->Render());
  }
  {
    RowCursorPtr c = MakeDistinctCursor(MakeRowsetCursor(&a));
    Result<Rowset> streamed = MaterializeCursor(c.get());
    ASSERT_TRUE(streamed.ok());
    EXPECT_EQ(streamed->Render(), Distinct(a).Render());
  }
  {
    Rowset unsorted = MakeStatic({{"c", 3}, {"a", 1}, {"b", 2}});
    RowCursorPtr c = MakeSortCursor(MakeRowsetCursor(&unsorted), {0});
    Result<Rowset> streamed = MaterializeCursor(c.get());
    ASSERT_TRUE(streamed.ok());
    EXPECT_EQ(streamed->Render(), SortBy(unsorted, {0})->Render());
    EXPECT_EQ(streamed->rows()[0].values[0].AsString(), "a");
  }
}

TEST(Cursor, CrossProductMatchesMaterialized) {
  Rowset a = MakeHistorical({{"a", 1, 0, 10}, {"b", 2, 20, 30}});
  Rowset b = MakeHistorical({{"x", 7, 5, 25}});
  RowCursorPtr c =
      MakeCrossProductCursor(MakeRowsetCursor(&a), MakeRowsetCursor(&b));
  Result<Rowset> streamed = MaterializeCursor(c.get());
  Result<Rowset> materialized = CrossProduct(a, b);
  ASSERT_TRUE(streamed.ok());
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ(streamed->Render(), materialized->Render());
  // Both pairs intersect ([0,10)x[5,25) and [20,30)x[5,25)).
  EXPECT_EQ(streamed->size(), 2u);
}

TEST(Cursor, ComposedPipelineStreamsWithoutIntermediates) {
  // select(value >= 2) |> project(name) |> distinct |> sort, composed as one
  // cursor tree, equals the nested materializing calls.
  Rowset input = MakeStatic({{"c", 3}, {"a", 1}, {"b", 2}, {"c", 3}});
  ExprPtr pred = MakeCompare(CompareOp::kGe, MakeColumnRef(1, "value"),
                             MakeLiteral(Value(int64_t{2})));
  std::vector<ExprPtr> exprs{MakeColumnRef(0, "name")};
  std::vector<std::string> names{"name"};
  RowCursorPtr tree = MakeSortCursor(
      MakeDistinctCursor(MakeProjectCursor(
          MakeSelectCursor(MakeRowsetCursor(&input), pred.get()), &exprs,
          names)),
      {0});
  Result<Rowset> streamed = MaterializeCursor(tree.get());
  ASSERT_TRUE(streamed.ok());

  Result<Rowset> selected = Select(input, *pred);
  ASSERT_TRUE(selected.ok());
  Result<Rowset> projected = Project(*selected, exprs, names);
  ASSERT_TRUE(projected.ok());
  Result<Rowset> sorted = SortBy(Distinct(*projected), {0});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(streamed->Render(), sorted->Render());
  EXPECT_EQ(streamed->size(), 2u);
}

// ---------------------------------------------------------------------------
// CrossProduct temporal-class meet checks
// ---------------------------------------------------------------------------

TEST(Cursor, CrossProductRejectsClassesWithoutMeet) {
  // Rollback maintains only transaction time, historical only valid time:
  // their product has no class that keeps either dimension.
  Rowset r = MakeRollback({{"a", 1, 0, 10}});
  Rowset h = MakeHistorical({{"x", 7, 5, 25}});
  Result<Rowset> product = CrossProduct(r, h);
  ASSERT_FALSE(product.ok());
  EXPECT_EQ(product.status().code(), StatusCode::kInvalidArgument);

  RowCursorPtr c =
      MakeCrossProductCursor(MakeRowsetCursor(&r), MakeRowsetCursor(&h));
  Status open = c->Open();
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.code(), StatusCode::kInvalidArgument);
}

TEST(Cursor, CrossProductAcceptsComparableClasses) {
  // historical x static has a meet (historical): still fine.
  Rowset h = MakeHistorical({{"x", 7, 5, 25}});
  Rowset s = MakeStatic({{"a", 1}});
  Result<Rowset> product = CrossProduct(h, s);
  ASSERT_TRUE(product.ok());
  // The meet keeps only the capabilities BOTH operands maintain.
  EXPECT_EQ(product->temporal_class(), TemporalClass::kStatic);
  // temporal x rollback and temporal x historical also meet.
  EXPECT_TRUE(HasMeetClass(TemporalClass::kTemporal, TemporalClass::kRollback));
  EXPECT_TRUE(
      HasMeetClass(TemporalClass::kTemporal, TemporalClass::kHistorical));
  EXPECT_FALSE(
      HasMeetClass(TemporalClass::kRollback, TemporalClass::kHistorical));
}

// ---------------------------------------------------------------------------
// Pushdown equivalence: index-backed scans == full scan + filter
// ---------------------------------------------------------------------------

std::vector<RowId> Drain(VersionScan scan) {
  std::vector<RowId> out;
  RowId row = 0;
  while (scan.Next(&row) != nullptr) out.push_back(row);
  return out;
}

// Grows a randomized bitemporal history: retroactive appends mixed with
// logical deletes and replaces, the clock advancing between transactions.
void GrowRandomHistory(Database* db, ManualClock* clock, StoredRelation* rel,
                       uint64_t seed, int steps) {
  Random rng(seed);
  for (int step = 0; step < steps; ++step) {
    clock->AdvanceDays(static_cast<int64_t>(rng.UniformRange(1, 4)));
    Status s = db->WithTransaction([&](Transaction* txn) -> Status {
      uint64_t op = rng.Uniform(3);
      if (op == 0 || rel->store()->live_count() < 6) {
        int64_t from = rng.UniformRange(0, 400);
        int64_t len = rng.UniformRange(1, 90);
        return rel->Append(
            txn, {Value(rng.NextName(4)), Value(rng.UniformRange(0, 5))},
            Period(Chronon(from), Chronon(from + len)));
      }
      const int64_t pivot = rng.UniformRange(0, 5);
      TuplePredicate pred = [pivot](const std::vector<Value>& v) {
        return v[1].AsInt() == pivot;
      };
      if (op == 1) {
        return rel->DeleteWhere(txn, pred, std::nullopt).status();
      }
      UpdateSpec updates{ConstUpdate(1, Value(rng.UniformRange(0, 5)))};
      return rel->ReplaceWhere(txn, pred, updates, std::nullopt).status();
    });
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
}

void CheckScanEquivalence(const VersionStore* store, uint64_t seed) {
  Random rng(seed);
  for (int trial = 0; trial < 25; ++trial) {
    const Chronon t(rng.UniformRange(0, 500));
    const int64_t qb = rng.UniformRange(0, 450);
    const Period q(Chronon(qb), Chronon(qb + rng.UniformRange(1, 60)));

    EXPECT_EQ(Drain(store->ScanAsOf(t)),
              Drain(store->ScanAll([t](const BitemporalTuple& v) {
                return v.txn.Contains(t);
              })))
        << "as of " << t.ToString();
    EXPECT_EQ(Drain(store->ScanTxnOverlapping(q)),
              Drain(store->ScanAll([q](const BitemporalTuple& v) {
                return v.txn.Overlaps(q);
              })))
        << "txn overlapping " << q.ToString();
    EXPECT_EQ(Drain(store->ScanValidDuring(q)),
              Drain(store->ScanAll([q](const BitemporalTuple& v) {
                return v.valid.Overlaps(q);
              })))
        << "valid during " << q.ToString();
  }
  EXPECT_EQ(Drain(store->ScanCurrent()),
            Drain(store->ScanAll(
                [](const BitemporalTuple& v) { return v.IsCurrentState(); })));
}

TEST(PushdownEquivalence, IndexedScansMatchFullScanOnRandomHistories) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    for (bool indexed : {true, false}) {
      ManualClock clock{Chronon(0)};
      DatabaseOptions options;
      options.clock = &clock;
      options.store_options.index_valid_time = indexed;
      options.store_options.index_txn_time = indexed;
      std::unique_ptr<Database> db = std::move(*Database::Open(options));
      ASSERT_TRUE(
          db->Execute("create temporal relation h (name = string, n = int)")
              .ok());
      StoredRelation* rel = *db->GetRelation("h");
      GrowRandomHistory(db.get(), &clock, rel, seed, 120);
      CheckScanEquivalence(rel->store(), seed * 1000 + (indexed ? 1 : 0));
    }
  }
}

TEST(PushdownEquivalence, RelationScanIgnoresWindowsItCannotUse) {
  ManualClock clock{Chronon(0)};
  DatabaseOptions options;
  options.clock = &clock;
  std::unique_ptr<Database> db = std::move(*Database::Open(options));
  ASSERT_TRUE(db->Execute("create relation s (n = int)").ok());
  ASSERT_TRUE(db->WithTransaction([&](Transaction* txn) {
                  StoredRelation* rel = *db->GetRelation("s");
                  return rel->Append(txn, {Value(int64_t{1})}, std::nullopt);
                }).ok());
  StoredRelation* rel = *db->GetRelation("s");
  ScanSpec spec;
  spec.asof = Period::At(Chronon(100));
  spec.valid_during = Period(Chronon(0), Chronon(1));
  // A static relation has no time to slice by; the windows must not drop
  // its (timeless) tuples.
  EXPECT_EQ(Drain(rel->Scan(spec)).size(), 1u);
}

// ---------------------------------------------------------------------------
// Full-query equivalence: pushdown on == pushdown off
// ---------------------------------------------------------------------------

class QueryPair {
 public:
  explicit QueryPair(bool with_indexes = true) {
    for (int i = 0; i < 2; ++i) {
      DatabaseOptions options;
      options.clock = &clock_;
      options.store_options.time_pushdown = (i == 0);
      options.store_options.index_valid_time = with_indexes;
      options.store_options.index_txn_time = with_indexes;
      db_[i] = std::move(*Database::Open(options));
    }
  }

  void Exec(const std::string& source) {
    for (auto& db : db_) {
      Result<tquel::ExecResult> r = db->Execute(source);
      ASSERT_TRUE(r.ok()) << source << ": " << r.status().ToString();
    }
  }

  // Both sides must yield bit-identical renderings (same rows, same order,
  // same periods).
  void ExpectSameRows(const std::string& query) {
    Result<Rowset> on = db_[0]->Query(query);
    Result<Rowset> off = db_[1]->Query(query);
    ASSERT_TRUE(on.ok()) << query << ": " << on.status().ToString();
    ASSERT_TRUE(off.ok()) << query << ": " << off.status().ToString();
    EXPECT_EQ(on->Render(), off->Render()) << query;
  }

  ManualClock clock_{Chronon(0)};
  std::unique_ptr<Database> db_[2];
};

TEST(PushdownEquivalence, TemporalQueriesMatchWithPushdownOff) {
  QueryPair pair;
  ASSERT_TRUE(pair.clock_.SetDate("01/01/80").ok());
  pair.Exec("create temporal relation faculty (name = string, rank = string)");
  pair.Exec(
      "append to faculty (name = \"jane\", rank = \"assistant\") "
      "valid from \"09/01/77\" to \"12/01/82\"");
  ASSERT_TRUE(pair.clock_.SetDate("06/01/81").ok());
  pair.Exec(
      "append to faculty (name = \"merrie\", rank = \"associate\") "
      "valid from \"06/01/81\" to \"09/01/84\"");
  ASSERT_TRUE(pair.clock_.SetDate("12/15/82").ok());
  pair.Exec("range of f is faculty");
  pair.Exec("range of g is faculty");
  pair.Exec("replace f (rank = \"full\") where f.name = \"jane\"");

  pair.ExpectSameRows("retrieve (f.name, f.rank)");
  pair.ExpectSameRows("retrieve (f.name) as of \"06/01/81\"");
  pair.ExpectSameRows(
      "retrieve (f.name) as of \"06/01/81\" through \"12/31/82\"");
  pair.ExpectSameRows(
      "retrieve (f.name, f.rank) when f overlap \"01/01/80\"");
  pair.ExpectSameRows(
      "retrieve (f.name) when f precede \"01/01/84\"");
  pair.ExpectSameRows(
      "retrieve (f.name) when \"01/01/78\" precede f");
  // Dynamic windows: the inner participant's window depends on the outer
  // tuple (index-nested-loop when-join).
  pair.ExpectSameRows(
      "retrieve (a = f.name, b = g.name) when f overlap g");
  pair.ExpectSameRows(
      "retrieve (a = f.name, b = g.name) where f.name != g.name "
      "when f overlap g as of \"06/01/82\"");
  pair.ExpectSameRows(
      "retrieve (a = f.name, b = g.name) when f overlap g or f precede g");
  pair.ExpectSameRows(
      "retrieve (a = f.name, b = g.name) when not (f precede g)");
  pair.ExpectSameRows(
      "retrieve (f.name) valid from begin of f to end of f "
      "when f overlap \"06/01/81\"");
}

TEST(PushdownEquivalence, HistoricalQueriesMatchWithPushdownOff) {
  // Run the same when-queries against a historical relation, with and
  // without interval indexes, to cover the fallback paths.
  for (bool indexed : {true, false}) {
    QueryPair pair(indexed);
    ASSERT_TRUE(pair.clock_.SetDate("01/01/80").ok());
    pair.Exec("create historical relation h (name = string)");
    pair.Exec(
        "append to h (name = \"a\") valid from \"01/01/79\" to \"01/01/81\"");
    pair.Exec(
        "append to h (name = \"b\") valid from \"06/01/80\" to \"06/01/83\"");
    pair.Exec(
        "append to h (name = \"c\") valid from \"01/01/84\" to \"01/01/85\"");
    pair.Exec("range of x is h");
    pair.Exec("range of y is h");

    pair.ExpectSameRows("retrieve (x.name)");
    pair.ExpectSameRows("retrieve (x.name) when x overlap \"07/01/80\"");
    pair.ExpectSameRows("retrieve (x.name) when x precede \"01/01/83\"");
    pair.ExpectSameRows("retrieve (a = x.name, b = y.name) when x overlap y");
    pair.ExpectSameRows(
        "retrieve (a = x.name, b = y.name) when x precede y and y overlap "
        "\"06/01/84\"");
  }
}

TEST(PushdownEquivalence, RandomizedQueriesMatchWithPushdownOff) {
  for (uint64_t seed : {3u, 11u}) {
    QueryPair pair;
    StoredRelation* rels[2];
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(pair.db_[i]
                      ->Execute(
                          "create temporal relation h (name = string, "
                          "n = int)")
                      .ok());
      rels[i] = *pair.db_[i]->GetRelation("h");
    }
    // Grow the SAME history on both sides (same seed, same clock steps —
    // reset the clock between the two replays).
    for (int i = 0; i < 2; ++i) {
      pair.clock_.SetTime(Chronon(0));
      GrowRandomHistory(pair.db_[i].get(), &pair.clock_, rels[i], seed, 100);
    }
    pair.Exec("range of u is h");
    pair.Exec("range of v is h");
    pair.ExpectSameRows("retrieve (u.name, u.n)");
    pair.ExpectSameRows("retrieve (u.name) when u overlap \"06/01/70\"");
    pair.ExpectSameRows("retrieve (u.name, v.n) when u overlap v");
    pair.ExpectSameRows(
        "retrieve (u.name) as of \"03/01/70\" through \"09/01/70\"");
  }
}

}  // namespace
}  // namespace temporadb
