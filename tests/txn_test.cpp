#include <gtest/gtest.h>

#include "txn/clock.h"
#include "txn/transaction.h"
#include "txn/txn_manager.h"

namespace temporadb {
namespace {

TEST(Clock, SystemClockIsSane) {
  SystemClock clock;
  Chronon now = clock.Now();
  // Somewhere between 2020 and 2100.
  EXPECT_GT(now, Date::Parse("2020-01-01")->chronon());
  EXPECT_LT(now, Date::Parse("2100-01-01")->chronon());
}

TEST(Clock, ManualClockControls) {
  ManualClock clock;
  EXPECT_EQ(clock.Now(), Chronon::Epoch());
  ASSERT_TRUE(clock.SetDate("12/15/82").ok());
  EXPECT_EQ(clock.Now(), Date::Parse("12/15/82")->chronon());
  clock.AdvanceDays(10);
  EXPECT_EQ(clock.Now(), Date::Parse("12/25/82")->chronon());
  EXPECT_FALSE(clock.SetDate("garbage").ok());
}

TEST(TxnManager, BeginAssignsClockTimestamp) {
  ManualClock clock;
  ASSERT_TRUE(clock.SetDate("08/25/77").ok());
  TxnManager manager(&clock);
  Result<Transaction*> txn = manager.Begin();
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ((*txn)->timestamp(), Date::Parse("08/25/77")->chronon());
  EXPECT_TRUE((*txn)->IsActive());
  ASSERT_TRUE(manager.Commit(*txn).ok());
  EXPECT_EQ((*txn)->state(), TxnState::kCommitted);
}

TEST(TxnManager, OnlyOneActiveTransaction) {
  ManualClock clock;
  TxnManager manager(&clock);
  Result<Transaction*> first = manager.Begin();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(manager.Begin().status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(manager.Commit(*first).ok());
  EXPECT_TRUE(manager.Begin().ok());
}

TEST(TxnManager, TimestampsNeverRunBackwards) {
  ManualClock clock;
  ASSERT_TRUE(clock.SetDate("12/15/82").ok());
  TxnManager manager(&clock);
  Result<Transaction*> t1 = manager.Begin();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(manager.Commit(*t1).ok());
  // Clock jumps backwards; the issued timestamp must not.
  ASSERT_TRUE(clock.SetDate("01/01/80").ok());
  Result<Transaction*> t2 = manager.Begin();
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ((*t2)->timestamp(), Date::Parse("12/15/82")->chronon());
  ASSERT_TRUE(manager.Commit(*t2).ok());
}

TEST(TxnManager, NonFiniteClockReadingsAreClamped) {
  // A broken injected clock returning ∞ / -∞ must never leak into a
  // transaction timestamp: ∞ means "still current" in every stored period,
  // so a txn stamped ∞ would fabricate un-closeable history.
  ManualClock clock;
  clock.SetTime(Chronon::Forever());
  TxnManager manager(&clock);
  Result<Transaction*> t1 = manager.Begin();
  ASSERT_TRUE(t1.ok());
  EXPECT_TRUE((*t1)->timestamp().IsFinite());
  EXPECT_EQ((*t1)->timestamp(), Chronon::Epoch());  // Nothing issued yet.
  const Chronon t1_ts = (*t1)->timestamp();
  ASSERT_TRUE(manager.Commit(*t1).ok());

  clock.SetTime(Chronon::Beginning());
  Result<Transaction*> t2 = manager.Begin();
  ASSERT_TRUE(t2.ok());
  EXPECT_TRUE((*t2)->timestamp().IsFinite());
  // Monotone: sticks to the last issued timestamp, not the bogus reading.
  EXPECT_EQ((*t2)->timestamp(), t1_ts);
  ASSERT_TRUE(manager.Commit(*t2).ok());
  EXPECT_TRUE(manager.Now().IsFinite());
}

TEST(TxnManager, ClockRegressionAfterRealTimestampClamps) {
  ManualClock clock;
  ASSERT_TRUE(clock.SetDate("12/15/82").ok());
  TxnManager manager(&clock);
  ASSERT_TRUE(manager.Commit(*manager.Begin()).ok());
  // The clock goes insane mid-run; transaction time must keep ticking
  // monotonically from the last issued stamp.
  clock.SetTime(Chronon::Beginning());
  Result<Transaction*> t = manager.Begin();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->timestamp(), Date::Parse("12/15/82")->chronon());
  ASSERT_TRUE(manager.Commit(*t).ok());
  clock.SetTime(Chronon::Forever());
  EXPECT_EQ(manager.Now(), Date::Parse("12/15/82")->chronon());
}

TEST(TxnManager, ObserveRecoveredTimestampIgnoresSentinels) {
  ManualClock clock;  // At epoch.
  TxnManager manager(&clock);
  manager.ObserveRecoveredTimestamp(Date::Parse("12/15/82")->chronon());
  // A corrupt / sentinel recovered stamp must not poison the watermark.
  manager.ObserveRecoveredTimestamp(Chronon::Forever());
  manager.ObserveRecoveredTimestamp(Chronon::Beginning());
  Result<Transaction*> txn = manager.Begin();
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ((*txn)->timestamp(), Date::Parse("12/15/82")->chronon());
}

TEST(TxnManager, AbortRunsUndoInReverse) {
  ManualClock clock;
  TxnManager manager(&clock);
  Result<Transaction*> txn = manager.Begin();
  ASSERT_TRUE(txn.ok());
  std::vector<int> order;
  (*txn)->PushUndo([&] { order.push_back(1); });
  (*txn)->PushUndo([&] { order.push_back(2); });
  (*txn)->PushUndo([&] { order.push_back(3); });
  EXPECT_EQ((*txn)->mutation_count(), 3u);
  ASSERT_TRUE(manager.Abort(*txn).ok());
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
  EXPECT_EQ((*txn)->state(), TxnState::kAborted);
  EXPECT_EQ(manager.aborted_count(), 1u);
}

TEST(TxnManager, CommitDiscardsUndo) {
  ManualClock clock;
  TxnManager manager(&clock);
  Result<Transaction*> txn = manager.Begin();
  ASSERT_TRUE(txn.ok());
  bool ran = false;
  (*txn)->PushUndo([&] { ran = true; });
  ASSERT_TRUE(manager.Commit(*txn).ok());
  EXPECT_FALSE(ran);
  EXPECT_EQ(manager.committed_count(), 1u);
  EXPECT_EQ(manager.last_commit(), (*txn)->timestamp());
}

TEST(TxnManager, DoubleCommitRejected) {
  ManualClock clock;
  TxnManager manager(&clock);
  Result<Transaction*> txn = manager.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(manager.Commit(*txn).ok());
  EXPECT_FALSE(manager.Commit(*txn).ok());
  EXPECT_FALSE(manager.Abort(*txn).ok());
}

TEST(TxnManager, ForeignTransactionRejected) {
  ManualClock clock;
  TxnManager manager(&clock);
  Transaction foreign(999, Chronon(0));
  EXPECT_TRUE(manager.Commit(&foreign).IsInvalidArgument());
  EXPECT_TRUE(manager.Commit(nullptr).IsInvalidArgument());
}

TEST(TxnManager, NowClampsLikeBegin) {
  ManualClock clock;
  ASSERT_TRUE(clock.SetDate("12/15/82").ok());
  TxnManager manager(&clock);
  ASSERT_TRUE(manager.Commit(*manager.Begin()).ok());
  ASSERT_TRUE(clock.SetDate("01/01/80").ok());
  EXPECT_EQ(manager.Now(), Date::Parse("12/15/82")->chronon());
}

TEST(TxnManager, ObserveRecoveredTimestamp) {
  ManualClock clock;  // At epoch.
  TxnManager manager(&clock);
  manager.ObserveRecoveredTimestamp(Date::Parse("12/15/82")->chronon());
  Result<Transaction*> txn = manager.Begin();
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ((*txn)->timestamp(), Date::Parse("12/15/82")->chronon());
}

TEST(TxnStateName, Names) {
  EXPECT_EQ(TxnStateName(TxnState::kActive), "active");
  EXPECT_EQ(TxnStateName(TxnState::kCommitted), "committed");
  EXPECT_EQ(TxnStateName(TxnState::kAborted), "aborted");
}

}  // namespace
}  // namespace temporadb
