#include "catalog/type.h"

#include <gtest/gtest.h>

namespace temporadb {
namespace {

TEST(Type, ParseQuelTypeNames) {
  EXPECT_EQ(Type::ParseQuelType("int")->value_type(), ValueType::kInt);
  EXPECT_EQ(Type::ParseQuelType("integer")->value_type(), ValueType::kInt);
  EXPECT_EQ(Type::ParseQuelType("float")->value_type(), ValueType::kFloat);
  EXPECT_EQ(Type::ParseQuelType("string")->value_type(), ValueType::kString);
  EXPECT_EQ(Type::ParseQuelType("text")->value_type(), ValueType::kString);
  EXPECT_EQ(Type::ParseQuelType("date")->value_type(), ValueType::kDate);
  EXPECT_EQ(Type::ParseQuelType("bool")->value_type(), ValueType::kBool);
}

TEST(Type, ParseQuelWidthQualifiedNames) {
  // Quel's i1/i2/i4, f4/f8, c10 style.
  EXPECT_EQ(Type::ParseQuelType("i4")->value_type(), ValueType::kInt);
  EXPECT_EQ(Type::ParseQuelType("f8")->value_type(), ValueType::kFloat);
  EXPECT_EQ(Type::ParseQuelType("c20")->value_type(), ValueType::kString);
  EXPECT_EQ(Type::ParseQuelType("C20")->value_type(), ValueType::kString);
}

TEST(Type, ParseRejectsUnknown) {
  EXPECT_FALSE(Type::ParseQuelType("blob").ok());
  EXPECT_FALSE(Type::ParseQuelType("").ok());
  EXPECT_TRUE(Type::ParseQuelType("c").ok());  // Bare "c" is a string.
  EXPECT_FALSE(Type::ParseQuelType("x9").ok());
  EXPECT_FALSE(Type::ParseQuelType("i").ok());
}

TEST(Type, Admits) {
  EXPECT_TRUE(Type::Int().Admits(Value(int64_t{1})));
  EXPECT_FALSE(Type::Int().Admits(Value(1.5)));
  EXPECT_TRUE(Type::Float().Admits(Value(int64_t{1})));  // Promotion.
  EXPECT_TRUE(Type::Float().Admits(Value(1.5)));
  EXPECT_TRUE(Type::String().Admits(Value("x")));
  EXPECT_FALSE(Type::String().Admits(Value(int64_t{1})));
  // NULL admitted everywhere.
  EXPECT_TRUE(Type::DateType().Admits(Value::Null()));
}

TEST(Type, CoercePromotesIntToFloat) {
  Result<Value> v = Type::Float().Coerce(Value(int64_t{3}));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->type(), ValueType::kFloat);
  EXPECT_DOUBLE_EQ(v->AsFloat(), 3.0);
  EXPECT_FALSE(Type::Int().Coerce(Value("x")).ok());
}

TEST(Type, ParseValueInt) {
  EXPECT_EQ(Type::Int().ParseValue("42")->AsInt(), 42);
  EXPECT_EQ(Type::Int().ParseValue("-7")->AsInt(), -7);
  EXPECT_FALSE(Type::Int().ParseValue("4.5").ok());
  EXPECT_FALSE(Type::Int().ParseValue("abc").ok());
}

TEST(Type, ParseValueFloat) {
  EXPECT_DOUBLE_EQ(Type::Float().ParseValue("2.5")->AsFloat(), 2.5);
  EXPECT_DOUBLE_EQ(Type::Float().ParseValue("3")->AsFloat(), 3.0);
  EXPECT_FALSE(Type::Float().ParseValue("x").ok());
}

TEST(Type, ParseValueDate) {
  Result<Value> v = Type::DateType().ParseValue("12/15/82");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsDate(), *Date::Parse("12/15/82"));
  EXPECT_FALSE(Type::DateType().ParseValue("not a date").ok());
}

TEST(Type, ParseValueBoolAndNull) {
  EXPECT_EQ(Type::Bool().ParseValue("true")->AsBool(), true);
  EXPECT_EQ(Type::Bool().ParseValue("FALSE")->AsBool(), false);
  EXPECT_FALSE(Type::Bool().ParseValue("yes").ok());
  EXPECT_TRUE(Type::Int().ParseValue("null")->is_null());
}

TEST(Type, NameAndEquality) {
  EXPECT_EQ(Type::Int().name(), "int");
  EXPECT_EQ(Type::Int(), Type::Int());
  EXPECT_NE(Type::Int(), Type::Float());
}

}  // namespace
}  // namespace temporadb
