#include "index/interval_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace temporadb {
namespace {

Period P(int64_t a, int64_t b) { return Period(Chronon(a), Chronon(b)); }

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(IntervalIndex, EmptyIndex) {
  IntervalIndex index;
  EXPECT_TRUE(index.StabRows(Chronon(5)).empty());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.CheckInvariants().ok());
}

TEST(IntervalIndex, RejectsEmptyPeriod) {
  IntervalIndex index;
  EXPECT_FALSE(index.Insert(P(5, 5), 1).ok());
  EXPECT_FALSE(index.Insert(P(6, 5), 1).ok());
}

TEST(IntervalIndex, StabBasics) {
  IntervalIndex index;
  ASSERT_TRUE(index.Insert(P(0, 10), 1).ok());
  ASSERT_TRUE(index.Insert(P(5, 15), 2).ok());
  ASSERT_TRUE(index.Insert(P(20, 30), 3).ok());
  EXPECT_EQ(Sorted(index.StabRows(Chronon(7))), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(Sorted(index.StabRows(Chronon(0))), (std::vector<uint64_t>{1}));
  EXPECT_TRUE(index.StabRows(Chronon(15)).empty());  // Half-open ends.
  EXPECT_EQ(Sorted(index.StabRows(Chronon(29))), (std::vector<uint64_t>{3}));
  EXPECT_TRUE(index.StabRows(Chronon(30)).empty());
}

TEST(IntervalIndex, OpenEndedPeriods) {
  IntervalIndex index;
  ASSERT_TRUE(index.Insert(Period::From(Chronon(100)), 7).ok());
  EXPECT_EQ(index.StabRows(Chronon(1000000)), std::vector<uint64_t>{7});
  EXPECT_TRUE(index.StabRows(Chronon(99)).empty());
}

TEST(IntervalIndex, OverlappingQuery) {
  IntervalIndex index;
  ASSERT_TRUE(index.Insert(P(0, 10), 1).ok());
  ASSERT_TRUE(index.Insert(P(8, 12), 2).ok());
  ASSERT_TRUE(index.Insert(P(12, 20), 3).ok());
  std::vector<uint64_t> rows;
  index.Overlapping(P(9, 12), [&](Period, uint64_t row) {
    rows.push_back(row);
  });
  EXPECT_EQ(Sorted(rows), (std::vector<uint64_t>{1, 2}));
  rows.clear();
  index.Overlapping(P(10, 13), [&](Period, uint64_t row) {
    rows.push_back(row);
  });
  EXPECT_EQ(Sorted(rows), (std::vector<uint64_t>{2, 3}));
}

TEST(IntervalIndex, RemoveSpecificEntry) {
  IntervalIndex index;
  ASSERT_TRUE(index.Insert(P(0, 10), 1).ok());
  ASSERT_TRUE(index.Insert(P(0, 10), 2).ok());  // Same period, other row.
  ASSERT_TRUE(index.Remove(P(0, 10), 1).ok());
  EXPECT_EQ(index.StabRows(Chronon(5)), std::vector<uint64_t>{2});
  EXPECT_TRUE(index.Remove(P(0, 10), 1).IsNotFound());
  EXPECT_TRUE(index.Remove(P(1, 10), 2).IsNotFound());  // Period must match.
  ASSERT_TRUE(index.CheckInvariants().ok());
}

TEST(IntervalIndex, DuplicateRowDifferentPeriods) {
  IntervalIndex index;
  ASSERT_TRUE(index.Insert(P(0, 5), 1).ok());
  ASSERT_TRUE(index.Insert(P(10, 15), 1).ok());
  EXPECT_EQ(index.StabRows(Chronon(2)), std::vector<uint64_t>{1});
  EXPECT_EQ(index.StabRows(Chronon(12)), std::vector<uint64_t>{1});
  ASSERT_TRUE(index.Remove(P(0, 5), 1).ok());
  EXPECT_TRUE(index.StabRows(Chronon(2)).empty());
  EXPECT_EQ(index.StabRows(Chronon(12)), std::vector<uint64_t>{1});
}

// Parameterized randomized comparison against a brute-force model.
class IntervalIndexFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(IntervalIndexFuzzTest, MatchesBruteForce) {
  const int n = GetParam();
  IntervalIndex index;
  std::vector<std::pair<Period, uint64_t>> model;
  Random rng(static_cast<uint64_t>(n) * 1299709 + 31);
  for (int i = 0; i < n; ++i) {
    int64_t begin = static_cast<int64_t>(rng.Uniform(200));
    int64_t len = 1 + static_cast<int64_t>(rng.Uniform(40));
    Period p = rng.OneIn(10) ? Period::From(Chronon(begin))
                             : P(begin, begin + len);
    ASSERT_TRUE(index.Insert(p, static_cast<uint64_t>(i)).ok());
    model.emplace_back(p, static_cast<uint64_t>(i));
    // Occasionally remove a random entry.
    if (!model.empty() && rng.OneIn(4)) {
      size_t victim = rng.Uniform(model.size());
      ASSERT_TRUE(
          index.Remove(model[victim].first, model[victim].second).ok());
      model.erase(model.begin() + static_cast<ptrdiff_t>(victim));
    }
  }
  ASSERT_TRUE(index.CheckInvariants().ok());
  EXPECT_EQ(index.size(), model.size());
  // Stab at every chronon in range.
  for (int64_t t = -5; t <= 250; t += 3) {
    std::vector<uint64_t> want;
    for (const auto& [p, row] : model) {
      if (p.Contains(Chronon(t))) want.push_back(row);
    }
    EXPECT_EQ(Sorted(index.StabRows(Chronon(t))), Sorted(want)) << "t=" << t;
  }
  // Overlap queries of varying width.
  for (int64_t b = 0; b < 200; b += 17) {
    Period q = P(b, b + 25);
    std::vector<uint64_t> want, got;
    for (const auto& [p, row] : model) {
      if (p.Overlaps(q)) want.push_back(row);
    }
    index.Overlapping(q, [&](Period, uint64_t row) { got.push_back(row); });
    EXPECT_EQ(Sorted(got), Sorted(want)) << "q=" << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IntervalIndexFuzzTest,
                         ::testing::Values(10, 100, 500, 2000));

}  // namespace
}  // namespace temporadb
