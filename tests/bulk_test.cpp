#include "core/bulk.h"

#include <gtest/gtest.h>

#include <sstream>

namespace temporadb {
namespace {

class BulkTest : public ::testing::Test {
 protected:
  BulkTest() {
    DatabaseOptions options;
    options.clock = &clock_;
    db_ = std::move(*Database::Open(options));
    clock_.SetDate("01/01/85").ok();
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
};

TEST(SplitCsvLine, BasicAndQuoted) {
  auto fields = bulk::SplitCsvLine("a,b,c", ',');
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));

  fields = bulk::SplitCsvLine(R"("a,b",c)", ',');
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[0], "a,b");

  fields = bulk::SplitCsvLine(R"("he said ""hi""",x)", ',');
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[0], "he said \"hi\"");

  fields = bulk::SplitCsvLine("a,,c", ',');
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[1], "");

  EXPECT_TRUE(bulk::SplitCsvLine(R"("unterminated)", ',')
                  .status()
                  .IsParseError());
}

TEST_F(BulkTest, ImportStaticRelation) {
  ASSERT_TRUE(db_->Execute("create relation people "
                           "(name = string, age = int, score = float)")
                  .ok());
  std::istringstream in(
      "name,age,score\n"
      "ann,34,1.5\n"
      "\"bob, jr\",40,2.0\n");
  Result<size_t> n = bulk::ImportCsv(db_.get(), "people", in);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
  ASSERT_TRUE(db_->Execute("range of p is people").ok());
  Result<Rowset> rows = db_->Query("retrieve (p.name, p.age)");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
}

TEST_F(BulkTest, ImportHistoricalWithValidColumns) {
  ASSERT_TRUE(
      db_->Execute("create historical relation jobs (name = string)").ok());
  std::istringstream in(
      "name,valid_from,valid_to\n"
      "ann,01/01/80,01/01/82\n"
      "bob,06/01/81,inf\n"
      "cam,06/01/81,\n");  // Empty to => open-ended.
  Result<size_t> n = bulk::ImportCsv(db_.get(), "jobs", in);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 3u);
  Result<StoredRelation*> rel = db_->GetRelation("jobs");
  ASSERT_TRUE(rel.ok());
  size_t open_ended = 0;
  (*rel)->store()->ForEach([&](RowId, const BitemporalTuple& t) {
    if (t.valid.IsOpenEnded()) ++open_ended;
  });
  EXPECT_EQ(open_ended, 2u);
}

TEST_F(BulkTest, ImportEventRelationWithValidAt) {
  ASSERT_TRUE(db_->Execute("create temporal event relation evts "
                           "(tag = string, d = date)")
                  .ok());
  std::istringstream in(
      "tag,d,valid_at\n"
      "r1,12/15/82,12/15/82\n");
  Result<size_t> n = bulk::ImportCsv(db_.get(), "evts", in);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  Result<StoredRelation*> rel = db_->GetRelation("evts");
  ASSERT_TRUE(rel.ok());
  (*rel)->store()->ForEach([&](RowId, const BitemporalTuple& t) {
    EXPECT_TRUE(t.valid.IsInstant());
    EXPECT_EQ(t.values[1].AsDate(), *Date::Parse("12/15/82"));
  });
}

TEST_F(BulkTest, ImportIsAtomic) {
  ASSERT_TRUE(db_->Execute("create relation t (n = int)").ok());
  std::istringstream in(
      "n\n"
      "1\n"
      "not-a-number\n");
  Result<size_t> n = bulk::ImportCsv(db_.get(), "t", in);
  EXPECT_FALSE(n.ok());
  EXPECT_NE(n.status().message().find("line 3"), std::string::npos);
  ASSERT_TRUE(db_->Execute("range of x is t").ok());
  EXPECT_EQ(db_->Query("retrieve (x.n)")->size(), 0u);  // Nothing applied.
}

TEST_F(BulkTest, ImportRejectsUnknownColumnsAndBadShapes) {
  ASSERT_TRUE(db_->Execute("create relation t (n = int)").ok());
  std::istringstream unknown("n,mystery\n1,2\n");
  EXPECT_TRUE(bulk::ImportCsv(db_.get(), "t", unknown)
                  .status()
                  .IsInvalidArgument());
  std::istringstream ragged("n\n1,2\n");
  EXPECT_TRUE(bulk::ImportCsv(db_.get(), "t", ragged)
                  .status()
                  .IsInvalidArgument());
  std::istringstream empty("");
  EXPECT_TRUE(
      bulk::ImportCsv(db_.get(), "t", empty).status().IsInvalidArgument());
  // Valid columns rejected on kinds without valid time (they're treated as
  // unknown attributes).
  std::istringstream retro("n,valid_from\n1,01/01/80\n");
  EXPECT_TRUE(
      bulk::ImportCsv(db_.get(), "t", retro).status().IsInvalidArgument());
}

TEST_F(BulkTest, MissingAttributesBecomeNull) {
  ASSERT_TRUE(
      db_->Execute("create relation t (a = string, b = int)").ok());
  std::istringstream in("a\nx\n");
  Result<size_t> n = bulk::ImportCsv(db_.get(), "t", in);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  ASSERT_TRUE(db_->Execute("range of v is t").ok());
  Result<Rowset> rows = db_->Query("retrieve (v.a, v.b)");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->rows()[0].values[1].is_null());
}

TEST_F(BulkTest, ExportRoundTripsThroughImport) {
  ASSERT_TRUE(
      db_->Execute("create historical relation jobs (name = string)").ok());
  std::istringstream in(
      "name,valid_from,valid_to\n"
      "ann,01/01/80,01/01/82\n"
      "bob,06/01/81,inf\n");
  ASSERT_TRUE(bulk::ImportCsv(db_.get(), "jobs", in).ok());
  ASSERT_TRUE(db_->Execute("range of j is jobs").ok());
  Result<Rowset> rows = db_->Query("retrieve (j.name)");
  ASSERT_TRUE(rows.ok());

  std::ostringstream out;
  ASSERT_TRUE(bulk::ExportCsv(*rows, out).ok());
  std::string csv = out.str();
  EXPECT_NE(csv.find("name,valid_from,valid_to"), std::string::npos);
  EXPECT_NE(csv.find("ann,01/01/80,01/01/82"), std::string::npos);
  EXPECT_NE(csv.find("bob,06/01/81,inf"), std::string::npos);

  // Round trip into a second relation.
  ASSERT_TRUE(
      db_->Execute("create historical relation jobs2 (name = string)").ok());
  std::istringstream back(csv);
  Result<size_t> n = bulk::ImportCsv(db_.get(), "jobs2", back);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
  ASSERT_TRUE(db_->Execute("range of k is jobs2").ok());
  Result<Rowset> rows2 = db_->Query("retrieve (k.name)");
  ASSERT_TRUE(rows2.ok());
  EXPECT_TRUE(Rowset::SameContent(*rows, *rows2));
}

TEST_F(BulkTest, ExportTemporalIncludesTxnColumns) {
  ASSERT_TRUE(
      db_->Execute("create temporal relation t (name = string)").ok());
  ASSERT_TRUE(db_->Execute("append to t (name = \"x\")").ok());
  Result<tquel::ExecResult> shown = db_->Execute("show t");
  ASSERT_TRUE(shown.ok());
  std::ostringstream out;
  ASSERT_TRUE(bulk::ExportCsv(shown->rows, out).ok());
  EXPECT_NE(out.str().find("txn_start,txn_end"), std::string::npos);
  EXPECT_NE(out.str().find("01/01/85,inf"), std::string::npos);
}

TEST_F(BulkTest, ExportQuotesSpecials) {
  ASSERT_TRUE(db_->Execute("create relation t (s = string)").ok());
  ASSERT_TRUE(db_->Execute("append to t (s = \"a,b \\\"q\\\"\")").ok());
  ASSERT_TRUE(db_->Execute("range of v is t").ok());
  Result<Rowset> rows = db_->Query("retrieve (v.s)");
  ASSERT_TRUE(rows.ok());
  std::ostringstream out;
  ASSERT_TRUE(bulk::ExportCsv(*rows, out).ok());
  EXPECT_NE(out.str().find("\"a,b \"\"q\"\"\""), std::string::npos);
}

}  // namespace
}  // namespace temporadb
