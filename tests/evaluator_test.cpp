// Evaluator tests drive TQuel text through a real Database (the evaluator's
// natural habitat), covering statement kinds and evaluation corner cases
// that the paper-scenario test doesn't reach.

#include "tquel/evaluator.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "tquel/printer.h"

namespace temporadb {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() {
    DatabaseOptions options;
    options.clock = &clock_;
    db_ = std::move(*Database::Open(options));
    clock_.SetDate("01/01/80").ok();
  }

  Result<tquel::ExecResult> Exec(const std::string& src) {
    return db_->Execute(src);
  }
  Status ExecOk(const std::string& src) {
    Result<tquel::ExecResult> r = Exec(src);
    return r.ok() ? Status::OK() : r.status();
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
};

TEST_F(EvaluatorTest, CreateAppendRetrieve) {
  ASSERT_TRUE(ExecOk("create relation t (name = string, n = int)").ok());
  ASSERT_TRUE(ExecOk("append to t (name = \"a\", n = 1)").ok());
  ASSERT_TRUE(ExecOk("append to t (name = \"b\", n = 2)").ok());
  ASSERT_TRUE(ExecOk("range of x is t").ok());
  Result<Rowset> rows = db_->Query("retrieve (x.name) where x.n > 1");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->rows()[0].values[0].AsString(), "b");
}

TEST_F(EvaluatorTest, AppendFillsMissingAttributesWithNull) {
  ASSERT_TRUE(ExecOk("create relation t (name = string, n = int)").ok());
  ASSERT_TRUE(ExecOk("append to t (name = \"only\")").ok());
  ASSERT_TRUE(ExecOk("range of x is t").ok());
  Result<Rowset> rows = db_->Query("retrieve (x.name, x.n)");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->rows()[0].values[1].is_null());
}

TEST_F(EvaluatorTest, AppendRejectsUnknownAttribute) {
  ASSERT_TRUE(ExecOk("create relation t (name = string)").ok());
  Result<tquel::ExecResult> r = Exec("append to t (nope = \"x\")");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(EvaluatorTest, AppendCoercesDateStrings) {
  ASSERT_TRUE(ExecOk("create relation t (d = date)").ok());
  ASSERT_TRUE(ExecOk("append to t (d = \"12/15/82\")").ok());
  ASSERT_TRUE(ExecOk("range of x is t").ok());
  Result<Rowset> rows = db_->Query("retrieve (x.d)");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows()[0].values[0].AsDate(), *Date::Parse("12/15/82"));
}

TEST_F(EvaluatorTest, ReplaceComputedExpression) {
  ASSERT_TRUE(ExecOk("create relation emp (name = string, salary = int)")
                  .ok());
  ASSERT_TRUE(ExecOk("append to emp (name = \"a\", salary = 1000)").ok());
  ASSERT_TRUE(ExecOk("range of e is emp").ok());
  Result<tquel::ExecResult> r =
      Exec("replace e (salary = e.salary * 2) where e.name = \"a\"");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count, 1u);
  Result<Rowset> rows = db_->Query("retrieve (e.salary)");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows()[0].values[0].AsInt(), 2000);
}

TEST_F(EvaluatorTest, DeleteWithoutWhereDeletesAll) {
  ASSERT_TRUE(ExecOk("create relation t (n = int)").ok());
  ASSERT_TRUE(ExecOk("append to t (n = 1)").ok());
  ASSERT_TRUE(ExecOk("append to t (n = 2)").ok());
  ASSERT_TRUE(ExecOk("range of x is t").ok());
  Result<tquel::ExecResult> r = Exec("delete x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->count, 2u);
  EXPECT_EQ(db_->Query("retrieve (x.n)")->size(), 0u);
}

TEST_F(EvaluatorTest, JoinViaTwoRangeVariables) {
  ASSERT_TRUE(ExecOk("create relation emp (name = string, dept = int)")
                  .ok());
  ASSERT_TRUE(
      ExecOk("create relation dept (dname = string, did = int)").ok());
  ASSERT_TRUE(ExecOk("append to emp (name = \"a\", dept = 1)").ok());
  ASSERT_TRUE(ExecOk("append to emp (name = \"b\", dept = 2)").ok());
  ASSERT_TRUE(ExecOk("append to dept (dname = \"cs\", did = 1)").ok());
  ASSERT_TRUE(ExecOk("range of e is emp").ok());
  ASSERT_TRUE(ExecOk("range of d is dept").ok());
  Result<Rowset> rows =
      db_->Query("retrieve (e.name, d.dname) where e.dept = d.did");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->rows()[0].values[0].AsString(), "a");
  EXPECT_EQ(rows->rows()[0].values[1].AsString(), "cs");
}

TEST_F(EvaluatorTest, RetrieveIntoStoresDerived) {
  ASSERT_TRUE(ExecOk("create relation t (n = int)").ok());
  ASSERT_TRUE(ExecOk("append to t (n = 5)").ok());
  ASSERT_TRUE(ExecOk("range of x is t").ok());
  ASSERT_TRUE(ExecOk("retrieve into snapshot (x.n)").ok());
  Result<Rowset> derived = db_->GetDerived("snapshot");
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(derived->size(), 1u);
  EXPECT_TRUE(db_->GetDerived("missing").status().IsNotFound());
}

TEST_F(EvaluatorTest, ShowRendersStoredRepresentation) {
  ASSERT_TRUE(
      ExecOk("create temporal relation t (name = string, r = string)").ok());
  ASSERT_TRUE(ExecOk("append to t (name = \"a\", r = \"x\")").ok());
  Result<tquel::ExecResult> r = Exec("show t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, tquel::ExecResult::Kind::kRows);
  std::string rendered = tquel::FormatResult(*r);
  EXPECT_NE(rendered.find("valid time"), std::string::npos);
  EXPECT_NE(rendered.find("transaction time"), std::string::npos);
  EXPECT_NE(rendered.find("temporal relation"), std::string::npos);
}

TEST_F(EvaluatorTest, ValidClauseOverridesResultPeriod) {
  ASSERT_TRUE(
      ExecOk("create historical relation h (name = string)").ok());
  ASSERT_TRUE(ExecOk("append to h (name = \"a\") "
                     "valid from \"01/01/80\" to \"01/01/85\"")
                  .ok());
  ASSERT_TRUE(ExecOk("range of x is h").ok());
  // Default: the tuple's own period.
  Result<Rowset> def = db_->Query("retrieve (x.name)");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(*def->rows()[0].valid,
            Period(Date::Parse("01/01/80")->chronon(),
                   Date::Parse("01/01/85")->chronon()));
  // Explicit: clipped to the clause.
  Result<Rowset> explicit_period = db_->Query(
      "retrieve (x.name) valid from \"06/01/81\" to \"06/01/82\"");
  ASSERT_TRUE(explicit_period.ok());
  EXPECT_EQ(*explicit_period->rows()[0].valid,
            Period(Date::Parse("06/01/81")->chronon(),
                   Date::Parse("06/01/82")->chronon()));
  // From begin of x to end of x reconstructs the default.
  Result<Rowset> endpoints = db_->Query(
      "retrieve (x.name) valid from begin of x to end of x");
  ASSERT_TRUE(endpoints.ok()) << endpoints.status().ToString();
  EXPECT_EQ(*endpoints->rows()[0].valid, *def->rows()[0].valid);
}

TEST_F(EvaluatorTest, ValidAtProducesEventResult) {
  ASSERT_TRUE(ExecOk("create historical relation h (name = string)").ok());
  ASSERT_TRUE(ExecOk("append to h (name = \"a\")").ok());
  ASSERT_TRUE(ExecOk("range of x is h").ok());
  Result<Rowset> rows =
      db_->Query("retrieve (x.name) valid at begin of x");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->data_model(), TemporalDataModel::kEvent);
  EXPECT_TRUE(rows->rows()[0].valid->IsInstant());
}

TEST_F(EvaluatorTest, EmptyDefaultValidIntersectionDropsRow) {
  ASSERT_TRUE(ExecOk("create historical relation h (name = string)").ok());
  ASSERT_TRUE(ExecOk("append to h (name = \"early\") "
                     "valid from \"01/01/80\" to \"01/01/81\"")
                  .ok());
  ASSERT_TRUE(ExecOk("append to h (name = \"late\") "
                     "valid from \"01/01/82\" to \"01/01/83\"")
                  .ok());
  ASSERT_TRUE(ExecOk("range of a is h").ok());
  ASSERT_TRUE(ExecOk("range of b is h").ok());
  // Pairs whose valid periods are disjoint vanish from the result.
  Result<Rowset> rows = db_->Query(
      "retrieve (n1 = a.name, n2 = b.name) where a.name != b.name");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 0u);
}

TEST_F(EvaluatorTest, AsOfThroughSelectsVersionRange) {
  ASSERT_TRUE(
      ExecOk("create rollback relation r (name = string)").ok());
  clock_.SetDate("01/01/80").ok();
  ASSERT_TRUE(ExecOk("append to r (name = \"v1\")").ok());
  ASSERT_TRUE(ExecOk("range of x is r").ok());
  clock_.SetDate("01/01/81").ok();
  ASSERT_TRUE(ExecOk("replace x (name = \"v2\")").ok());
  clock_.SetDate("01/01/82").ok();
  ASSERT_TRUE(ExecOk("replace x (name = \"v3\")").ok());
  // A single as-of sees one version; through spans several.
  EXPECT_EQ(db_->Query("retrieve (x.name) as of \"06/01/80\"")->size(), 1u);
  Result<Rowset> range = db_->Query(
      "retrieve (x.name) as of \"06/01/80\" through \"06/01/81\"");
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  EXPECT_EQ(range->size(), 2u);
}

TEST_F(EvaluatorTest, DmlErrorsInsidePredicatesPropagate) {
  ASSERT_TRUE(ExecOk("create relation t (name = string, n = int)").ok());
  ASSERT_TRUE(ExecOk("append to t (name = \"a\", n = 1)").ok());
  ASSERT_TRUE(ExecOk("range of x is t").ok());
  // Comparing a string attribute to an int is a type error at evaluation.
  Result<tquel::ExecResult> r = Exec("delete x where x.name = 3");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  // The failed statement must not have deleted anything (auto-abort).
  EXPECT_EQ(db_->Query("retrieve (x.n)")->size(), 1u);
}

TEST_F(EvaluatorTest, CorrectStatementOnHistorical) {
  ASSERT_TRUE(ExecOk("create historical relation h (name = string)").ok());
  ASSERT_TRUE(ExecOk("append to h (name = \"err\")").ok());
  ASSERT_TRUE(ExecOk("range of x is h").ok());
  Result<tquel::ExecResult> r = Exec("correct x where x.name = \"err\"");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count, 1u);
  EXPECT_EQ(db_->Query("retrieve (x.name)")->size(), 0u);
}

TEST_F(EvaluatorTest, RangeOverUnknownRelationFails) {
  Result<tquel::ExecResult> r = Exec("range of x is nothing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(EvaluatorTest, DestroyDropsRangesToo) {
  ASSERT_TRUE(ExecOk("create relation t (n = int)").ok());
  ASSERT_TRUE(ExecOk("range of x is t").ok());
  ASSERT_TRUE(ExecOk("destroy t").ok());
  EXPECT_FALSE(Exec("retrieve (x.n)").ok());
}

TEST_F(EvaluatorTest, FormatResultForCounts) {
  ASSERT_TRUE(ExecOk("create relation t (n = int)").ok());
  Result<tquel::ExecResult> r = Exec("append to t (n = 1)");
  ASSERT_TRUE(r.ok());
  std::string rendered = tquel::FormatResult(*r);
  EXPECT_NE(rendered.find("appended 1 tuple"), std::string::npos);
}

}  // namespace
}  // namespace temporadb
