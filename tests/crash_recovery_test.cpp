// Crash-recovery property harness (the heart of this test tier): drive a
// workload through a FaultInjectionFileSystem, crash at *every* sync barrier
// in turn, realize the crash (drop all un-synced bytes and directory
// entries), reopen the database, and require the recovered state to equal an
// in-memory shadow that executed exactly the acknowledged prefix of the
// workload.  Every acked statement survives, every unacked one vanishes, and
// bitemporal (when/as-of) probes agree with the shadow.
//
// Workloads are deterministic (manual clocks, seeded RNG), so the dry run
// and each crash run count sync barriers identically — no sleeps, no
// wall-clock time anywhere.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "common/random.h"
#include "core/database.h"
#include "storage/fault_injection.h"
#include "tests/shadow_history.h"

namespace temporadb {
namespace {

// One workload step; the shadow machinery (replay, canonical content,
// equivalence) lives in tests/shadow_history.h, shared with the workload
// differential driver.
using Step = testutil::ShadowStep;

// The paper's Figure-8 faculty history (BuildTemporalFaculty), with a plain
// checkpoint mid-history and a compacting one near the end so crash points
// land inside checkpoints too.
std::vector<Step> FacultySteps() {
  return {
      {"", "create temporal relation faculty (name = string, rank = string)"},
      {"", "range of f is faculty"},
      {"08/25/77",
       "append to faculty (name = \"Merrie\", rank = \"associate\") "
       "valid from \"09/01/77\" to \"inf\""},
      {"12/01/82",
       "append to faculty (name = \"Tom\", rank = \"full\") "
       "valid from \"12/05/82\" to \"inf\""},
      {"12/07/82",
       "replace f (rank = \"associate\") valid from \"12/05/82\" to \"inf\" "
       "where f.name = \"Tom\"",
       /*checkpoint_after=*/true, /*compact=*/false},
      {"12/15/82",
       "replace f (rank = \"full\") valid from \"12/01/82\" to \"inf\" "
       "where f.name = \"Merrie\""},
      {"01/10/83",
       "append to faculty (name = \"Mike\", rank = \"assistant\") "
       "valid from \"01/01/83\" to \"inf\"",
       /*checkpoint_after=*/true, /*compact=*/true},
      {"02/25/84",
       "delete f valid from \"03/01/84\" to \"inf\" where f.name = \"Mike\""},
  };
}

// A seeded random bitemporal update stream over relation r, mirroring the
// persistence property test's generator, with checkpoints sprinkled in.
std::vector<Step> RandomSteps(uint64_t seed, int n) {
  Random rng(seed);
  std::vector<Step> steps;
  steps.push_back(
      {"", "create temporal relation r (name = string, rank = string)"});
  steps.push_back({"", "range of v is r"});
  const char* names[] = {"ann", "bob", "cam", "dee"};
  int64_t day = 4000;
  for (int i = 0; i < n; ++i) {
    day += 1 + static_cast<int64_t>(rng.Uniform(3));
    Step step;
    step.date = Date(Chronon(day)).ToString();
    std::string name = names[rng.Uniform(4)];
    uint64_t pick = rng.Uniform(10);
    int64_t from = day - 10 + static_cast<int64_t>(rng.Uniform(20));
    std::string valid =
        " valid from \"" + Date(Chronon(from)).ToString() + "\" to \"" +
        (rng.OneIn(2) ? std::string("inf")
                      : Date(Chronon(from + 1 +
                                     static_cast<int64_t>(rng.Uniform(40))))
                            .ToString()) +
        "\"";
    if (pick < 5) {
      step.stmt = "append to r (name = \"" + name + "\", rank = \"r" +
                  std::to_string(rng.Uniform(4)) + "\")" + valid;
    } else if (pick < 8) {
      step.stmt = "replace v (rank = \"r" + std::to_string(rng.Uniform(4)) +
                  "\")" + valid + " where v.name = \"" + name + "\"";
    } else {
      step.stmt = "delete v" + valid + " where v.name = \"" + name + "\"";
    }
    step.checkpoint_after = rng.OneIn(6);
    step.compact = rng.OneIn(2);
    steps.push_back(step);
  }
  return steps;
}

// Runs the workload against a database on `dir` through `fs`, stopping at
// the first failure (the simulated crash).  Returns the number of *acked*
// statements: those whose Execute returned OK.  A statement whose commit
// sync crashed is not acked and must not survive recovery.
size_t RunWorkload(FaultInjectionFileSystem* fs, const std::string& dir,
                   const std::vector<Step>& steps) {
  ManualClock clock;
  DatabaseOptions options;
  options.path = dir;
  options.clock = &clock;
  options.fs = fs;
  Result<std::unique_ptr<Database>> db = Database::Open(options);
  if (!db.ok()) return 0;
  size_t acked = 0;
  for (const Step& step : steps) {
    if (!step.date.empty() && !clock.SetDate(step.date).ok()) break;
    if (!(*db)->Execute(step.stmt).ok()) break;
    ++acked;
    if (step.checkpoint_after && !(*db)->Checkpoint(step.compact).ok()) break;
  }
  return acked;
}

// Builds the shadow reference: an in-memory database that executes exactly
// the acked prefix with the same clock dates.  `clock` must outlive the
// returned database.
std::unique_ptr<Database> BuildShadow(ManualClock* clock,
                                      const std::vector<Step>& steps,
                                      size_t acked) {
  DatabaseOptions options;
  options.clock = clock;
  auto db = std::move(*Database::Open(options));
  Status s = testutil::ApplyShadowSteps(db.get(), clock, steps, acked);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return db;
}

// The recovered database must hold the same relations with the same
// coalesced bitemporal content as the shadow.
void ExpectEquivalent(Database* recovered, Database* shadow) {
  std::string diff;
  EXPECT_TRUE(testutil::EquivalentDatabases(recovered, shadow, &diff)) << diff;
}

// Systematic sweep: dry-run the workload to count sync barriers, then crash
// at every barrier k in 1..N, realize the crash, reopen, and verify against
// the shadow of the acked prefix.  `keep_prefix` > 0 additionally leaves a
// torn tail of each file's un-synced suffix on the platter.
void CrashSweep(const std::vector<Step>& steps, const std::string& tag,
                uint64_t keep_prefix, const std::string& range_decl,
                const std::string& range_target,
                const std::vector<std::string>& probes) {
  std::string base = testing::TempDir() + "/tdb_crash_" + tag + "_" +
                     std::to_string(::getpid());

  uint64_t barriers = 0;
  {
    std::string dir = base + "_dry";
    std::filesystem::remove_all(dir);
    FaultInjectionFileSystem fs;
    ASSERT_EQ(RunWorkload(&fs, dir, steps), steps.size());
    barriers = fs.sync_count();
    std::filesystem::remove_all(dir);
  }
  ASSERT_GT(barriers, 0u);

  for (uint64_t k = 1; k <= barriers; ++k) {
    SCOPED_TRACE("crash at sync barrier " + std::to_string(k) + " of " +
                 std::to_string(barriers));
    std::string dir = base + "_k" + std::to_string(k);
    std::filesystem::remove_all(dir);
    FaultInjectionFileSystem fs;
    fs.set_keep_unsynced_prefix(keep_prefix);
    fs.PlanCrashAtSync(k);
    size_t acked = RunWorkload(&fs, dir, steps);
    ASSERT_TRUE(fs.crashed());
    ASSERT_TRUE(fs.RealizeCrash().ok());

    // Reopen through the (now pass-through) fault filesystem.
    ManualClock recovered_clock;
    DatabaseOptions options;
    options.path = dir;
    options.clock = &recovered_clock;
    options.fs = &fs;
    Result<std::unique_ptr<Database>> recovered = Database::Open(options);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

    ManualClock shadow_clock;
    std::unique_ptr<Database> shadow = BuildShadow(&shadow_clock, steps, acked);
    ExpectEquivalent(recovered->get(), shadow.get());

    // Bitemporal probes (explicit as-of, so the two clocks don't matter).
    // Requires the range declaration (step 1) to have been acked; the
    // recovered session re-declares it, the shadow replayed it.
    if (acked >= 2 && (*recovered)->GetRelation(range_target).ok()) {
      ASSERT_TRUE((*recovered)->Execute(range_decl).ok());
      for (const std::string& q : probes) {
        Result<Rowset> ra = (*recovered)->Query(q);
        Result<Rowset> rb = shadow->Query(q);
        ASSERT_EQ(ra.ok(), rb.ok()) << q;
        if (ra.ok()) {
          EXPECT_TRUE(Rowset::SameContent(*ra, *rb)) << q;
        }
      }
    }
    std::filesystem::remove_all(dir);
  }
}

std::vector<std::string> FacultyProbes() {
  return {
      "retrieve (f.name, f.rank) when f overlap \"01/05/83\" "
      "as of \"02/01/83\"",
      "retrieve (f.rank) where f.name = \"Merrie\" "
      "when f overlap \"12/10/82\" as of \"12/20/82\"",
      "retrieve (f.name) when f overlap \"06/01/83\" as of \"01/01/85\"",
  };
}

std::vector<std::string> RandomProbes() {
  std::vector<std::string> probes;
  for (int64_t day : {4020, 4045, 4070}) {
    std::string d = Date(Chronon(day)).ToString();
    probes.push_back("retrieve (v.name, v.rank) when v overlap \"" + d +
                     "\" as of \"" + d + "\"");
  }
  return probes;
}

TEST(CrashRecoveryTest, FacultyHistorySurvivesEveryCrashPoint) {
  CrashSweep(FacultySteps(), "fac", /*keep_prefix=*/0, "range of f is faculty",
             "faculty", FacultyProbes());
}

TEST(CrashRecoveryTest, FacultyHistorySurvivesTornTails) {
  // 13 bytes of every un-synced suffix reach the platter: always mid-record
  // (the smallest WAL record is 24 bytes), so recovery sees a torn tail.
  CrashSweep(FacultySteps(), "fac_torn", /*keep_prefix=*/13,
             "range of f is faculty", "faculty", FacultyProbes());
}

TEST(CrashRecoveryTest, RandomizedWorkloadSurvivesEveryCrashPoint) {
  CrashSweep(RandomSteps(/*seed=*/7, /*n=*/24), "rnd", /*keep_prefix=*/0,
             "range of v is r", "r", RandomProbes());
}

TEST(CrashRecoveryTest, RandomizedWorkloadSurvivesTornTails) {
  // 37 < the 40-byte txn-begin record, so no unacked commit can ever
  // materialize whole out of a torn tail.
  CrashSweep(RandomSteps(/*seed=*/13, /*n=*/18), "rnd_torn",
             /*keep_prefix=*/37, "range of v is r", "r", RandomProbes());
}

}  // namespace
}  // namespace temporadb
