#include <gtest/gtest.h>

#include "common/chronon.h"
#include "common/date.h"
#include "txn/clock.h"

namespace temporadb {
namespace {

TEST(Chronon, EpochAndOrdering) {
  EXPECT_EQ(Chronon::Epoch().days(), 0);
  EXPECT_LT(Chronon(-1), Chronon(0));
  EXPECT_LT(Chronon::Beginning(), Chronon(-1000000));
  EXPECT_GT(Chronon::Forever(), Chronon(1000000));
}

TEST(Chronon, SentinelsAbsorbArithmetic) {
  EXPECT_EQ(Chronon::Forever() + 5, Chronon::Forever());
  EXPECT_EQ(Chronon::Beginning() - 5, Chronon::Beginning());
  EXPECT_EQ(Chronon::Forever().Next(), Chronon::Forever());
  EXPECT_EQ(Chronon::Beginning().Prev(), Chronon::Beginning());
}

// The arithmetic saturation cases below are exercised under UBSan in CI:
// before the saturating operators, each was a signed-overflow UB site.
TEST(Chronon, FiniteArithmeticSaturatesAtMaxFinite) {
  // Far overflow: INT64_MAX - 5 + large stays finite, never wraps.
  EXPECT_EQ(Chronon(5) + Chronon::kForeverRep, Chronon::MaxFinite());
  EXPECT_EQ(Chronon::MaxFinite() + 1, Chronon::MaxFinite());
  EXPECT_EQ(Chronon::MaxFinite() + Chronon::kForeverRep,
            Chronon::MaxFinite());
  // Exact sentinel landing (no Rep overflow, but the result would *be* the
  // forever sentinel): clamps to the largest finite chronon instead.
  EXPECT_EQ(Chronon(Chronon::kForeverRep - 3) + 3, Chronon::MaxFinite());
  EXPECT_TRUE((Chronon(1) + (Chronon::kForeverRep - 1)).IsFinite());
}

TEST(Chronon, FiniteArithmeticSaturatesAtMinFinite) {
  EXPECT_EQ(Chronon(-5) - Chronon::kForeverRep, Chronon::MinFinite());
  EXPECT_EQ(Chronon::MinFinite() - 1, Chronon::MinFinite());
  // Exact sentinel landing on the low end.
  EXPECT_EQ(Chronon(Chronon::kBeginningRep + 3) - 2, Chronon::MinFinite());
  EXPECT_EQ(Chronon(-2) + (Chronon::kBeginningRep + 1),
            Chronon::MinFinite());
}

TEST(Chronon, ArithmeticWithNegativeOffsets) {
  // Adding a negative / subtracting a negative cross the *opposite* bound.
  EXPECT_EQ(Chronon(-10) + Chronon::kBeginningRep, Chronon::MinFinite());
  EXPECT_EQ(Chronon(10) - Chronon::kBeginningRep, Chronon::MaxFinite());
  // days = INT64_MIN: negating it in the implementation would itself be UB;
  // the overflow intrinsic sidesteps that.
  EXPECT_EQ(Chronon::MaxFinite() - Chronon::kBeginningRep,
            Chronon::MaxFinite());
  EXPECT_EQ(Chronon(0) + Chronon::kBeginningRep, Chronon::MinFinite());
  // Plain finite arithmetic is untouched.
  EXPECT_EQ((Chronon(100) + -42).days(), 58);
  EXPECT_EQ((Chronon(100) - -42).days(), 142);
}

TEST(Chronon, SentinelsStayAbsorbingUnderExtremeOffsets) {
  EXPECT_EQ(Chronon::Forever() + Chronon::kBeginningRep, Chronon::Forever());
  EXPECT_EQ(Chronon::Forever() - Chronon::kForeverRep, Chronon::Forever());
  EXPECT_EQ(Chronon::Beginning() + Chronon::kForeverRep,
            Chronon::Beginning());
  EXPECT_EQ(Chronon::Beginning() - Chronon::kBeginningRep,
            Chronon::Beginning());
}

TEST(Chronon, MaxMinFiniteAreFinite) {
  EXPECT_TRUE(Chronon::MaxFinite().IsFinite());
  EXPECT_TRUE(Chronon::MinFinite().IsFinite());
  EXPECT_LT(Chronon::MaxFinite(), Chronon::Forever());
  EXPECT_GT(Chronon::MinFinite(), Chronon::Beginning());
}

TEST(ManualClock, AdvanceDaysSaturatesInsteadOfOverflowing) {
  ManualClock clock;
  clock.AdvanceDays(Chronon::kForeverRep);  // Epoch + INT64_MAX.
  EXPECT_EQ(clock.Now(), Chronon::MaxFinite());
  clock.AdvanceDays(1);  // Already pinned at the end of the line.
  EXPECT_EQ(clock.Now(), Chronon::MaxFinite());
  clock.AdvanceDays(Chronon::kBeginningRep);
  clock.AdvanceDays(Chronon::kBeginningRep);
  EXPECT_EQ(clock.Now(), Chronon::MinFinite());
  // The clock never reads as a sentinel, so time comparisons stay sane.
  EXPECT_TRUE(clock.Now().IsFinite());
}

TEST(Chronon, NextPrevRoundTrip) {
  Chronon c(100);
  EXPECT_EQ(c.Next().Prev(), c);
  EXPECT_EQ(c.Next().days(), 101);
}

TEST(Chronon, MinMax) {
  EXPECT_EQ(MinChronon(Chronon(3), Chronon(5)).days(), 3);
  EXPECT_EQ(MaxChronon(Chronon(3), Chronon(5)).days(), 5);
}

TEST(Date, EpochIsUnix) {
  Result<Date> d = Date::FromYmd(1970, 1, 1);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->chronon().days(), 0);
}

TEST(Date, KnownDayNumbers) {
  EXPECT_EQ(Date::FromYmd(1970, 1, 2)->chronon().days(), 1);
  EXPECT_EQ(Date::FromYmd(1969, 12, 31)->chronon().days(), -1);
  EXPECT_EQ(Date::FromYmd(2000, 3, 1)->chronon().days(), 11017);
}

TEST(Date, CivilRoundTripOverDecades) {
  // Every 17 days across 1950-2050.
  for (int64_t day = Date::FromYmd(1950, 1, 1)->chronon().days();
       day <= Date::FromYmd(2050, 1, 1)->chronon().days(); day += 17) {
    Date d{Chronon(day)};
    Result<Date> round = Date::FromYmd(d.year(), d.month(), d.day());
    ASSERT_TRUE(round.ok());
    EXPECT_EQ(round->chronon().days(), day);
  }
}

TEST(Date, LeapYearRules) {
  EXPECT_TRUE(Date::FromYmd(2000, 2, 29).ok());   // div 400: leap.
  EXPECT_FALSE(Date::FromYmd(1900, 2, 29).ok());  // div 100: not leap.
  EXPECT_TRUE(Date::FromYmd(1984, 2, 29).ok());   // div 4: leap.
  EXPECT_FALSE(Date::FromYmd(1985, 2, 29).ok());
}

TEST(Date, RejectsBadDates) {
  EXPECT_FALSE(Date::FromYmd(1985, 13, 1).ok());
  EXPECT_FALSE(Date::FromYmd(1985, 0, 1).ok());
  EXPECT_FALSE(Date::FromYmd(1985, 4, 31).ok());
  EXPECT_FALSE(Date::FromYmd(1985, 1, 0).ok());
}

TEST(Date, ParsesPaperFormat) {
  Result<Date> d = Date::Parse("12/15/82");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->year(), 1982);
  EXPECT_EQ(d->month(), 12);
  EXPECT_EQ(d->day(), 15);
  EXPECT_EQ(d->ToString(), "12/15/82");
}

TEST(Date, ParsesIsoAndFourDigit) {
  EXPECT_EQ(Date::Parse("1982-12-15")->chronon(),
            Date::Parse("12/15/82")->chronon());
  EXPECT_EQ(Date::Parse("12/15/1982")->chronon(),
            Date::Parse("12/15/82")->chronon());
}

TEST(Date, ParsesSentinels) {
  EXPECT_TRUE(Date::Parse("inf")->IsForever());
  EXPECT_TRUE(Date::Parse("forever")->IsForever());
  EXPECT_TRUE(Date::Parse("-inf")->IsBeginning());
  EXPECT_TRUE(Date::Parse("\xe2\x88\x9e")->IsForever());  // UTF-8 infinity.
}

TEST(Date, ParseRejectsGarbage) {
  EXPECT_FALSE(Date::Parse("").ok());
  EXPECT_FALSE(Date::Parse("next tuesday").ok());
  EXPECT_FALSE(Date::Parse("13/45/82").ok());
  EXPECT_FALSE(Date::Parse("1982-13-01").ok());
}

TEST(Date, ParseTrimsWhitespace) {
  EXPECT_TRUE(Date::Parse("  12/15/82  ").ok());
}

TEST(Date, RenderingOutside1900s) {
  EXPECT_EQ(Date::FromYmd(2024, 7, 4)->ToString(), "07/04/2024");
  EXPECT_EQ(Date::FromYmd(1985, 5, 1)->ToString(), "05/01/85");
  EXPECT_EQ(Date::Forever().ToString(), "inf");
  EXPECT_EQ(Date::Beginning().ToString(), "-inf");
}

TEST(Date, IsoRendering) {
  EXPECT_EQ(Date::FromYmd(1982, 12, 15)->ToIsoString(), "1982-12-15");
}

TEST(Date, ChrononToStringDelegates) {
  EXPECT_EQ(Date::Parse("12/15/82")->chronon().ToString(), "12/15/82");
  EXPECT_EQ(Chronon::Forever().ToString(), "inf");
}

}  // namespace
}  // namespace temporadb
