#include "temporal/static_relation.h"

#include <gtest/gtest.h>

#include "tests/relation_test_util.h"

namespace temporadb {
namespace {

class StaticRelationTest : public testutil::RelationFixture {
 protected:
  StaticRelationTest() { MakeRelation(TemporalClass::kStatic); }
};

TEST_F(StaticRelationTest, AppendStoresDegeneratePeriods) {
  ASSERT_TRUE(Append("01/01/80", "Merrie", "full").ok());
  auto versions = VersionsOf("Merrie");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].valid, Period::All());
  EXPECT_EQ(versions[0].txn, Period::All());
}

TEST_F(StaticRelationTest, ValidClauseRejected) {
  // "retroactive change" on a static relation is the taxonomy violation.
  Status s = Append("01/01/80", "Merrie", "full", Since("01/01/79"));
  EXPECT_TRUE(s.IsNotSupported());
  Result<size_t> del = Delete("01/01/80", "Merrie", Since("01/01/79"));
  EXPECT_TRUE(del.status().IsNotSupported());
  Result<size_t> rep = Replace("01/01/80", "Merrie", "full",
                               Since("01/01/79"));
  EXPECT_TRUE(rep.status().IsNotSupported());
}

TEST_F(StaticRelationTest, DeleteDestroysPast) {
  ASSERT_TRUE(Append("01/01/80", "Merrie", "associate").ok());
  ASSERT_TRUE(Append("01/01/80", "Tom", "associate").ok());
  Result<size_t> deleted = Delete("02/01/80", "Merrie");
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 1u);
  EXPECT_EQ(LiveCount(), 1u);
  // "past states of the database ... are discarded and forgotten
  // completely": no trace of Merrie remains.
  EXPECT_TRUE(VersionsOf("Merrie").empty());
}

TEST_F(StaticRelationTest, ReplaceOverwritesInPlace) {
  ASSERT_TRUE(Append("01/01/80", "Merrie", "associate").ok());
  Result<size_t> replaced = Replace("02/01/80", "Merrie", "full");
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(*replaced, 1u);
  auto versions = VersionsOf("Merrie");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].values[1].AsString(), "full");
  EXPECT_EQ(LiveCount(), 1u);  // No history kept.
}

TEST_F(StaticRelationTest, DeleteMatchingNone) {
  ASSERT_TRUE(Append("01/01/80", "Merrie", "full").ok());
  Result<size_t> deleted = Delete("02/01/80", "Nobody");
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 0u);
  EXPECT_EQ(LiveCount(), 1u);
}

TEST_F(StaticRelationTest, SchemaViolationsRejected) {
  Status wrong_arity = AtDate("01/01/80", [&](Transaction* txn) {
    return relation_->Append(txn, {Value("only-one")}, std::nullopt);
  });
  EXPECT_TRUE(wrong_arity.IsInvalidArgument());
  Status wrong_type = AtDate("01/01/80", [&](Transaction* txn) {
    return relation_->Append(txn, {Value("n"), Value(int64_t{7})},
                             std::nullopt);
  });
  EXPECT_TRUE(wrong_type.IsInvalidArgument());
}

TEST_F(StaticRelationTest, ComputedReplace) {
  // replace with a function of the old values.
  ASSERT_TRUE(Append("01/01/80", "Merrie", "associate").ok());
  UpdateSpec updates{UpdateAction{
      1, [](const std::vector<Value>& old) -> Result<Value> {
        return Value(old[1].AsString() + "+");
      }}};
  Status s = AtDate("02/01/80", [&](Transaction* txn) -> Status {
    Result<size_t> n = relation_->ReplaceWhere(txn, NameIs("Merrie"),
                                               updates, std::nullopt);
    return n.ok() ? Status::OK() : n.status();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(VersionsOf("Merrie")[0].values[1].AsString(), "associate+");
}

TEST_F(StaticRelationTest, CorrectEraseNotSupported) {
  Status s = AtDate("01/01/80", [&](Transaction* txn) -> Status {
    Result<size_t> n = relation_->CorrectErase(txn, NameIs("x"));
    return n.ok() ? Status::OK() : n.status();
  });
  EXPECT_TRUE(s.IsNotSupported());
}

TEST_F(StaticRelationTest, AbortRestoresPriorState) {
  ASSERT_TRUE(Append("01/01/80", "Merrie", "associate").ok());
  clock_.SetDate("02/01/80").ok();
  Result<Transaction*> txn = manager_.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(relation_->Append(*txn, {Value("Tom"), Value("full")},
                                std::nullopt)
                  .ok());
  Result<size_t> deleted =
      relation_->DeleteWhere(*txn, NameIs("Merrie"), std::nullopt);
  ASSERT_TRUE(deleted.ok());
  ASSERT_TRUE(manager_.Abort(*txn).ok());
  EXPECT_EQ(VersionsOf("Merrie").size(), 1u);
  EXPECT_TRUE(VersionsOf("Tom").empty());
}

}  // namespace
}  // namespace temporadb
