// Vectorized execution differential: the batch path (columnar chronon
// columns + selection-vector kernels) must be bit-identical to the
// row-at-a-time path — at the version-store boundary (BatchScan* vs Scan*)
// and through the full query stack (TQuel over all four temporal classes,
// every clause combination, batch sizes {1, 7, 1024}, thread counts
// {1, 2, 4, 8}).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/database.h"
#include "exec/thread_pool.h"
#include "temporal/version_store.h"
#include "txn/clock.h"
#include "txn/txn_manager.h"

namespace temporadb {
namespace {

// --- Store-level differential: BatchScan* vs Scan* ------------------------

class BatchVersionScanTest : public ::testing::Test {
 protected:
  BatchVersionScanTest() : manager_(&clock_) {}

  // Seeded random bitemporal history (appends with half-open or bounded
  // valid periods, interleaved transaction-time closes), same chaos recipe
  // as the parallel-scan differential.
  void Populate(size_t n_ops, uint64_t seed) {
    Random rng(seed);
    int64_t day = 1000;
    size_t op = 0;
    while (op < n_ops) {
      clock_.SetTime(Chronon(day));
      Transaction* txn = *manager_.Begin();
      size_t batch = 1 + rng.Uniform(50);
      for (size_t i = 0; i < batch && op < n_ops; ++i, ++op) {
        if (store_.version_count() > 10 && rng.OneIn(4)) {
          RowId row = rng.Uniform(store_.version_count());
          (void)store_.CloseTxn(txn, row, Chronon(day));
        } else {
          BitemporalTuple t;
          t.values = {Value("e" + std::to_string(rng.Uniform(64))),
                      Value(static_cast<int64_t>(rng.Uniform(100000)))};
          int64_t from = 900 + static_cast<int64_t>(rng.Uniform(400));
          t.valid = rng.OneIn(2)
                        ? Period::From(Chronon(from))
                        : Period(Chronon(from),
                                 Chronon(from + 1 +
                                         static_cast<int64_t>(
                                             rng.Uniform(90))));
          t.txn = Period::From(Chronon(day));
          ASSERT_TRUE(store_.Append(txn, std::move(t)).ok());
        }
      }
      ASSERT_TRUE(manager_.Commit(txn).ok());
      day += 1 + static_cast<int64_t>(rng.Uniform(3));
    }
  }

  using Sequence = std::vector<std::pair<RowId, BitemporalTuple>>;

  static Sequence CollectRows(VersionScan scan) {
    Sequence out;
    RowId row = 0;
    while (const BitemporalTuple* t = scan.Next(&row)) {
      out.emplace_back(row, *t);
    }
    return out;
  }

  // Flattens a batch scan and checks the per-batch contract along the way:
  // batches are never empty and the copied chronon columns agree with the
  // surviving tuples' periods.
  static Sequence CollectBatches(VersionBatchScan scan) {
    Sequence out;
    VersionBatch batch;
    while (scan.Next(&batch)) {
      EXPECT_FALSE(batch.empty()) << "batch scans must skip empty batches";
      for (size_t i = 0; i < batch.size(); ++i) {
        const BitemporalTuple& t = *batch.tuples[i];
        EXPECT_EQ(batch.valid_from[i], t.valid.begin().days());
        EXPECT_EQ(batch.valid_to[i], t.valid.end().days());
        EXPECT_EQ(batch.tt_start[i], t.txn.begin().days());
        EXPECT_EQ(batch.tt_end[i], t.txn.end().days());
        out.emplace_back(batch.rows[i], t);
      }
    }
    return out;
  }

  // Every probe shape, row path and batch path side by side.
  Sequence RunRowProbes() {
    Sequence all;
    auto append = [&all](Sequence v) {
      all.insert(all.end(), v.begin(), v.end());
    };
    append(CollectRows(store_.ScanAll()));
    append(CollectRows(store_.ScanCurrent()));
    append(CollectRows(store_.ScanAsOf(Chronon(1100))));
    append(CollectRows(
        store_.ScanTxnOverlapping(Period(Chronon(1050), Chronon(1200)))));
    append(CollectRows(
        store_.ScanValidDuring(Period(Chronon(1000), Chronon(1060)))));
    append(CollectRows(store_.ScanValidDuring(
        Period(Chronon(950), Chronon(1300)),
        [](const BitemporalTuple& t) { return t.IsCurrentState(); })));
    return all;
  }

  Sequence RunBatchProbes() {
    Sequence all;
    auto append = [&all](Sequence v) {
      all.insert(all.end(), v.begin(), v.end());
    };
    append(CollectBatches(store_.BatchScanAll()));
    append(CollectBatches(store_.BatchScanCurrent()));
    append(CollectBatches(store_.BatchScanAsOf(Chronon(1100))));
    append(CollectBatches(
        store_.BatchScanTxnOverlapping(Period(Chronon(1050), Chronon(1200)))));
    append(CollectBatches(
        store_.BatchScanValidDuring(Period(Chronon(1000), Chronon(1060)))));
    BatchPredicates current_only;
    current_only.txn_current = true;
    append(CollectBatches(store_.BatchScanValidDuring(
        Period(Chronon(950), Chronon(1300)), current_only)));
    return all;
  }

  void ExpectSameSequence(const Sequence& got, const Sequence& want,
                          const std::string& label) {
    ASSERT_EQ(got.size(), want.size()) << label;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].first, want[i].first) << label << ", position " << i;
      ASSERT_TRUE(got[i].second == want[i].second)
          << label << ", position " << i;
    }
  }

  ManualClock clock_;
  TxnManager manager_;
  VersionStore store_;
};

TEST_F(BatchVersionScanTest, BitIdenticalToRowScansAcrossBatchSizes) {
  Populate(5000, /*seed=*/11);
  Sequence baseline = RunRowProbes();
  ASSERT_FALSE(baseline.empty());
  for (size_t batch_rows : {1u, 7u, 1024u}) {
    store_.ConfigureBatchExec(true, batch_rows);
    ExpectSameSequence(RunBatchProbes(), baseline,
                       "batch_rows=" + std::to_string(batch_rows));
  }
}

TEST_F(BatchVersionScanTest, BitIdenticalAcrossThreadCountsAndBatchSizes) {
  Populate(5000, /*seed=*/23);
  store_.ConfigureParallel(nullptr);
  Sequence baseline = RunRowProbes();
  ASSERT_FALSE(baseline.empty());
  for (size_t batch_rows : {1u, 7u, 1024u}) {
    store_.ConfigureBatchExec(true, batch_rows);
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      exec::ThreadPool pool(threads);
      // min_rows=1 forces the morsel path even for tiny candidate sets.
      store_.ConfigureParallel(&pool, /*min_rows=*/1);
      ExpectSameSequence(RunBatchProbes(), baseline,
                         "batch_rows=" + std::to_string(batch_rows) + " " +
                             std::to_string(threads) + " threads");
      store_.ConfigureParallel(nullptr);
    }
  }
}

// --- Full-stack differential: TQuel over every temporal class -------------

// Builds a database holding one relation of each temporal class, populated
// by the same seeded script (appends with randomized valid periods plus
// scattered deletes, so rollback/bitemporal relations accrue closed
// transaction periods and valid-time relations accrue truncations).
std::unique_ptr<Database> BuildFourClassDb(ManualClock* clock,
                                           const VersionStoreOptions& store,
                                           size_t max_threads) {
  DatabaseOptions options;
  options.clock = clock;
  options.store_options = store;
  options.max_threads = max_threads;
  std::unique_ptr<Database> db = std::move(*Database::Open(options));
  EXPECT_TRUE(
      db->Execute("create relation snap (name = string, n = int)").ok());
  EXPECT_TRUE(
      db->Execute("create rollback relation roll (name = string, n = int)")
          .ok());
  EXPECT_TRUE(
      db->Execute("create historical relation hist (name = string, n = int)")
          .ok());
  EXPECT_TRUE(
      db->Execute("create temporal relation bitemp (name = string, n = int)")
          .ok());

  Random rng(4242);
  const char* relations[] = {"snap", "roll", "hist", "bitemp"};
  const bool has_valid[] = {false, false, true, true};
  for (int i = 0; i < 150; ++i) {
    clock->SetTime(Chronon(4000 + i * 2));
    size_t which = rng.Uniform(4);
    const std::string rel = relations[which];
    const std::string name = "e" + std::to_string(rng.Uniform(12));
    if (rng.OneIn(5) && i > 20) {
      std::string stmt = "delete " + rel + " where " + rel + ".name = \"" +
                         name + "\"";
      (void)db->Execute(stmt);  // Deleting a missing name is fine.
      continue;
    }
    std::string stmt = "append to " + rel + " (name = \"" + name +
                       "\", n = " +
                       std::to_string(static_cast<int64_t>(rng.Uniform(1000))) +
                       ")";
    if (has_valid[which]) {
      int64_t from = 3900 + static_cast<int64_t>(rng.Uniform(300));
      stmt += " valid from \"" + Chronon(from).ToString() + "\" to ";
      stmt += rng.OneIn(3)
                  ? std::string("\"inf\"")
                  : "\"" +
                        Chronon(from + 20 +
                                static_cast<int64_t>(rng.Uniform(150)))
                            .ToString() +
                        "\"";
    }
    EXPECT_TRUE(db->Execute(stmt).ok()) << stmt;
  }
  for (const char* rel : relations) {
    std::string range = "range of ";
    range += rel[0];
    range += " is ";
    range += rel;
    EXPECT_TRUE(db->Execute(range).ok()) << range;
  }
  return db;
}

// Every clause combination each temporal class admits (where / when /
// valid / as of), plus a when-join; dates land inside the populated
// windows so each query returns rows.
std::vector<std::string> AllClauseQueries() {
  const std::string kWhen = " when $ overlap \"" + Chronon(4010).ToString() +
                            "\"";
  const std::string kValid = " valid from \"" + Chronon(3950).ToString() +
                             "\" to \"" + Chronon(4150).ToString() + "\"";
  const std::string kAsOf = " as of \"" + Chronon(4180).ToString() + "\"";
  const std::string kWhere = " where $.n < 500";
  std::vector<std::string> queries;
  auto add = [&queries](char var, const std::string& clauses) {
    std::string q = "retrieve ($.name, $.n)" + clauses;
    std::string out;
    for (char c : q) {
      if (c == '$') {
        out += var;
      } else {
        out += c;
      }
    }
    queries.push_back(out);
  };
  // Static: bare and where.
  add('s', "");
  add('s', kWhere);
  // Rollback: adds as-of.
  add('r', "");
  add('r', kWhere);
  add('r', kAsOf);
  add('r', kWhere + kAsOf);
  // Historical: adds when and valid.
  add('h', "");
  add('h', kWhere);
  add('h', kWhen);
  add('h', kValid);
  add('h', kWhere + kWhen);
  add('h', kValid + kWhen);
  add('h', kWhere + kValid + kWhen);
  // Bitemporal: every clause at once.
  add('b', "");
  add('b', kWhere);
  add('b', kWhen);
  add('b', kValid);
  add('b', kAsOf);
  add('b', kWhere + kWhen);
  add('b', kWhen + kAsOf);
  add('b', kValid + kWhen + kAsOf);
  add('b', kWhere + kValid + kWhen + kAsOf);
  // A when-join across classes (sequential-valued batch cross product).
  queries.push_back(
      "retrieve (h.name, b.n) where h.name = b.name when h overlap b");
  return queries;
}

TEST(BatchDatabaseTest, QueriesMatchRowPathAcrossBatchSizesAndThreads) {
  ManualClock clock_row;
  VersionStoreOptions row_options;
  row_options.batch_exec = false;
  std::unique_ptr<Database> row_db =
      BuildFourClassDb(&clock_row, row_options, /*max_threads=*/1);

  const std::vector<std::string> queries = AllClauseQueries();

  // Baseline results from the row-at-a-time path.
  std::vector<Rowset> baseline;
  size_t nonempty = 0;
  for (const std::string& q : queries) {
    Result<Rowset> r = row_db->Query(q);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status().message();
    if (r->size() > 0) ++nonempty;
    baseline.push_back(std::move(*r));
  }
  // The sweep must actually exercise data, not vacuous empties.
  ASSERT_GT(nonempty, queries.size() / 2);

  for (size_t batch_rows : {1u, 7u, 1024u}) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      ManualClock clock;
      VersionStoreOptions options;
      options.batch_exec = true;
      options.batch_rows = batch_rows;
      if (threads > 1) {
        options.parallel_scan = true;
        options.parallel_min_rows = 1;
      }
      std::unique_ptr<Database> db =
          BuildFourClassDb(&clock, options, threads);
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        const std::string& q = queries[qi];
        Result<Rowset> got = db->Query(q);
        ASSERT_TRUE(got.ok()) << q << ": " << got.status().message();
        ASSERT_EQ(got->size(), baseline[qi].size())
            << q << " (batch_rows=" << batch_rows << ", threads=" << threads
            << ")";
        for (size_t i = 0; i < got->size(); ++i) {
          ASSERT_TRUE(got->rows()[i] == baseline[qi].rows()[i])
              << q << " row " << i << " (batch_rows=" << batch_rows
              << ", threads=" << threads << ")";
        }
      }
    }
  }
}

}  // namespace
}  // namespace temporadb
