#include "temporal/temporal_relation.h"

#include <gtest/gtest.h>

#include "temporal/snapshot.h"
#include "tests/relation_test_util.h"

namespace temporadb {
namespace {

class TemporalRelationTest : public testutil::RelationFixture {
 protected:
  TemporalRelationTest() { MakeRelation(TemporalClass::kTemporal); }

  // The rank of `name` valid at `v`, as believed as of transaction time `t`.
  std::vector<std::string> RankValidAtAsOf(const char* name, const char* v,
                                           const char* t) {
    std::vector<std::string> ranks;
    relation_->store()->ForEach([&](RowId, const BitemporalTuple& tuple) {
      if (tuple.values[0].AsString() != name) return;
      if (!tuple.txn.Contains(Day(t))) return;
      if (!tuple.valid.Contains(Day(v))) return;
      ranks.push_back(tuple.values[1].AsString());
    });
    return ranks;
  }
};

TEST_F(TemporalRelationTest, AppendStampsBothDimensions) {
  ASSERT_TRUE(Append("08/25/77", "Merrie", "associate",
                     Since("09/01/77")).ok());
  auto versions = VersionsOf("Merrie");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].valid, Since("09/01/77"));
  EXPECT_EQ(versions[0].txn, Since("08/25/77"));
}

TEST_F(TemporalRelationTest, RetroactiveReplaceProducesFigure8Rows) {
  ASSERT_TRUE(Append("08/25/77", "Merrie", "associate",
                     Since("09/01/77")).ok());
  ASSERT_TRUE(Replace("12/15/82", "Merrie", "full", Since("12/01/82")).ok());
  auto versions = VersionsOf("Merrie");
  ASSERT_EQ(versions.size(), 3u);
  // Superseded full-validity version.
  EXPECT_EQ(versions[0].values[1].AsString(), "associate");
  EXPECT_EQ(versions[0].valid, Since("09/01/77"));
  EXPECT_EQ(versions[0].txn, Between("08/25/77", "12/15/82"));
  // Remnant: associate over the untouched prefix.
  EXPECT_EQ(versions[1].values[1].AsString(), "associate");
  EXPECT_EQ(versions[1].valid, Between("09/01/77", "12/01/82"));
  EXPECT_EQ(versions[1].txn, Since("12/15/82"));
  // The new fact.
  EXPECT_EQ(versions[2].values[1].AsString(), "full");
  EXPECT_EQ(versions[2].valid, Since("12/01/82"));
  EXPECT_EQ(versions[2].txn, Since("12/15/82"));
}

TEST_F(TemporalRelationTest, ViewAsOfDiffersAcrossRecordingDate) {
  ASSERT_TRUE(Append("08/25/77", "Merrie", "associate",
                     Since("09/01/77")).ok());
  ASSERT_TRUE(Replace("12/15/82", "Merrie", "full", Since("12/01/82")).ok());
  // The paper's punchline: the same (valid) question answered differently
  // as of different transaction times.
  EXPECT_EQ(RankValidAtAsOf("Merrie", "12/05/82", "12/10/82"),
            std::vector<std::string>{"associate"});
  EXPECT_EQ(RankValidAtAsOf("Merrie", "12/05/82", "12/20/82"),
            std::vector<std::string>{"full"});
}

TEST_F(TemporalRelationTest, PostactiveDeleteKeepsBothBeliefs) {
  ASSERT_TRUE(Append("01/10/83", "Mike", "assistant",
                     Since("01/01/83")).ok());
  Result<size_t> deleted = Delete("02/25/84", "Mike", Since("03/01/84"));
  ASSERT_TRUE(deleted.ok());
  auto versions = VersionsOf("Mike");
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].txn, Between("01/10/83", "02/25/84"));
  EXPECT_EQ(versions[0].valid, Since("01/01/83"));
  EXPECT_EQ(versions[1].txn, Since("02/25/84"));
  EXPECT_EQ(versions[1].valid, Between("01/01/83", "03/01/84"));
  // As of 01/01/84 Mike was believed employed forever...
  EXPECT_EQ(RankValidAtAsOf("Mike", "06/01/84", "01/01/84"),
            std::vector<std::string>{"assistant"});
  // ...as of 03/01/84, the departure is known.
  EXPECT_TRUE(RankValidAtAsOf("Mike", "06/01/84", "03/01/84").empty());
}

TEST_F(TemporalRelationTest, MidValidityDeleteSplitsAppendOnly) {
  ASSERT_TRUE(Append("01/01/80", "Ann", "full",
                     Between("01/01/80", "01/01/85")).ok());
  ASSERT_TRUE(
      Delete("06/01/80", "Ann", Between("01/01/82", "01/01/83")).ok());
  auto versions = VersionsOf("Ann");
  ASSERT_EQ(versions.size(), 3u);
  // Original closed, two remnants open.
  EXPECT_EQ(versions[0].txn, Between("01/01/80", "06/01/80"));
  EXPECT_EQ(versions[1].valid, Between("01/01/80", "01/01/82"));
  EXPECT_TRUE(versions[1].IsCurrentState());
  EXPECT_EQ(versions[2].valid, Between("01/01/83", "01/01/85"));
}

TEST_F(TemporalRelationTest, AppendOnlyNoPhysicalErase) {
  Status s = AtDate("01/01/80", [&](Transaction* txn) -> Status {
    Result<size_t> n = relation_->CorrectErase(txn, NameIs("x"));
    return n.ok() ? Status::OK() : n.status();
  });
  EXPECT_TRUE(s.IsNotSupported());
}

TEST_F(TemporalRelationTest, DmlOnlyTouchesCurrentState) {
  ASSERT_TRUE(Append("12/01/82", "Tom", "full", Since("12/05/82")).ok());
  ASSERT_TRUE(Replace("12/07/82", "Tom", "associate",
                      Since("12/05/82")).ok());
  // A second correction must supersede only the current belief, leaving
  // the already-closed version untouched.
  ASSERT_TRUE(Replace("12/09/82", "Tom", "adjunct", Since("12/05/82")).ok());
  auto versions = VersionsOf("Tom");
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0].values[1].AsString(), "full");
  EXPECT_EQ(versions[0].txn, Between("12/01/82", "12/07/82"));
  EXPECT_EQ(versions[1].values[1].AsString(), "associate");
  EXPECT_EQ(versions[1].txn, Between("12/07/82", "12/09/82"));
  EXPECT_EQ(versions[2].values[1].AsString(), "adjunct");
  EXPECT_TRUE(versions[2].IsCurrentState());
}

TEST_F(TemporalRelationTest, SequenceOfHistoricalStates) {
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  ASSERT_TRUE(Append("02/01/80", "b", "2").ok());
  ASSERT_TRUE(Delete("03/01/80", "a", Period::All()).ok());
  std::vector<HistoricalState> states = TemporalStates(*relation_->store());
  ASSERT_EQ(states.size(), 3u);
  EXPECT_EQ(states[0].rows.size(), 1u);
  EXPECT_EQ(states[1].rows.size(), 2u);
  EXPECT_EQ(states[2].rows.size(), 1u);
  // Each state is a complete historical relation with valid periods.
  EXPECT_EQ(states[1].rows[0].valid, Since("01/01/80"));
}

TEST_F(TemporalRelationTest, AbortRestoresEverything) {
  ASSERT_TRUE(Append("01/01/80", "Ann", "full").ok());
  clock_.SetDate("02/01/80").ok();
  Result<Transaction*> txn = manager_.Begin();
  ASSERT_TRUE(txn.ok());
  UpdateSpec updates{ConstUpdate(1, Value("changed"))};
  ASSERT_TRUE(relation_->ReplaceWhere(*txn, NameIs("Ann"), updates,
                                      std::nullopt)
                  .ok());
  ASSERT_TRUE(manager_.Abort(*txn).ok());
  auto versions = VersionsOf("Ann");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].values[1].AsString(), "full");
  EXPECT_TRUE(versions[0].IsCurrentState());
  EXPECT_EQ(relation_->store()->current_count(), 1u);
}

TEST_F(TemporalRelationTest, DefaultValidPeriodIsFromNow) {
  ASSERT_TRUE(Append("05/05/80", "Ann", "full").ok());
  EXPECT_EQ(VersionsOf("Ann")[0].valid, Since("05/05/80"));
  // Default delete period is also from-now: deleting trims the tail.
  ASSERT_TRUE(Delete("06/06/80", "Ann").ok());
  auto versions = VersionsOf("Ann");
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[1].valid, Between("05/05/80", "06/06/80"));
}

TEST_F(TemporalRelationTest, EventRelation) {
  MakeRelation(TemporalClass::kTemporal, TemporalDataModel::kEvent);
  ASSERT_TRUE(Append("12/01/82", "Tom", "full",
                     Period::At(Day("12/05/82"))).ok());
  // Correction: close the wrong event, record the right one.
  ASSERT_TRUE(Delete("12/07/82", "Tom", Period::At(Day("12/05/82"))).ok());
  ASSERT_TRUE(Append("12/07/82", "Tom", "associate",
                     Period::At(Day("12/07/82"))).ok());
  auto versions = VersionsOf("Tom");
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].txn, Between("12/01/82", "12/07/82"));
  EXPECT_TRUE(versions[1].IsCurrentState());
}

}  // namespace
}  // namespace temporadb
