#include "rel/aggregate.h"

#include <gtest/gtest.h>

namespace temporadb {
namespace {

Rowset Salaries() {
  Schema schema = *Schema::Make({Attribute{"dept", Type::String()},
                                 Attribute{"salary", Type::Int()}});
  Rowset out(std::move(schema), TemporalClass::kStatic);
  for (auto& [d, s] : std::vector<std::pair<const char*, int64_t>>{
           {"cs", 100}, {"cs", 200}, {"math", 50}, {"math", 70},
           {"math", 60}}) {
    Row row;
    row.values = {Value(d), Value(s)};
    EXPECT_TRUE(out.AddRow(std::move(row)).ok());
  }
  return out;
}

TEST(Aggregate, GlobalCount) {
  Result<Rowset> out =
      Aggregate(Salaries(), {}, {{AggFunc::kCount, 0, "n"}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->rows()[0].values[0].AsInt(), 5);
}

TEST(Aggregate, GroupedAggregates) {
  Result<Rowset> out = Aggregate(
      Salaries(), {0},
      {{AggFunc::kCount, 0, "n"},
       {AggFunc::kSum, 1, "total"},
       {AggFunc::kAvg, 1, "mean"},
       {AggFunc::kMin, 1, "lo"},
       {AggFunc::kMax, 1, "hi"}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);  // cs, math (sorted by group key).
  const Row& cs = out->rows()[0];
  EXPECT_EQ(cs.values[0].AsString(), "cs");
  EXPECT_EQ(cs.values[1].AsInt(), 2);
  EXPECT_EQ(cs.values[2].AsInt(), 300);
  EXPECT_DOUBLE_EQ(cs.values[3].AsFloat(), 150.0);
  EXPECT_EQ(cs.values[4].AsInt(), 100);
  EXPECT_EQ(cs.values[5].AsInt(), 200);
  const Row& math = out->rows()[1];
  EXPECT_EQ(math.values[1].AsInt(), 3);
  EXPECT_EQ(math.values[2].AsInt(), 180);
}

TEST(Aggregate, EmptyInputGlobalRow) {
  Schema schema = *Schema::Make({Attribute{"x", Type::Int()}});
  Rowset empty(std::move(schema), TemporalClass::kStatic);
  Result<Rowset> out = Aggregate(
      empty, {}, {{AggFunc::kCount, 0, "n"}, {AggFunc::kSum, 0, "s"}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->rows()[0].values[0].AsInt(), 0);
  EXPECT_TRUE(out->rows()[0].values[1].is_null());
}

TEST(Aggregate, EmptyInputGroupedIsEmpty) {
  Schema schema = *Schema::Make({Attribute{"x", Type::Int()}});
  Rowset empty(std::move(schema), TemporalClass::kStatic);
  Result<Rowset> out = Aggregate(empty, {0}, {{AggFunc::kCount, 0, "n"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 0u);
}

TEST(Aggregate, AnyPicksSomeValue) {
  Result<Rowset> out =
      Aggregate(Salaries(), {0}, {{AggFunc::kAny, 1, "some"}});
  ASSERT_TRUE(out.ok());
  for (const Row& row : out->rows()) {
    EXPECT_FALSE(row.values[1].is_null());
  }
}

TEST(Aggregate, ResultIsStatic) {
  // Aggregation collapses time: even a historical input aggregates to a
  // static rowset.
  Schema schema = *Schema::Make({Attribute{"x", Type::Int()}});
  Rowset hist(std::move(schema), TemporalClass::kHistorical);
  Row row;
  row.values = {Value(int64_t{1})};
  row.valid = Period::All();
  ASSERT_TRUE(hist.AddRow(std::move(row)).ok());
  Result<Rowset> out = Aggregate(hist, {}, {{AggFunc::kCount, 0, "n"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->temporal_class(), TemporalClass::kStatic);
}

TEST(Aggregate, ValidatesIndexes) {
  EXPECT_FALSE(Aggregate(Salaries(), {9}, {{AggFunc::kCount, 0, "n"}}).ok());
  EXPECT_FALSE(Aggregate(Salaries(), {}, {{AggFunc::kSum, 9, "s"}}).ok());
}

TEST(Aggregate, SumOfFloats) {
  Schema schema = *Schema::Make({Attribute{"x", Type::Float()}});
  Rowset data(std::move(schema), TemporalClass::kStatic);
  for (double v : {1.5, 2.5}) {
    Row row;
    row.values = {Value(v)};
    ASSERT_TRUE(data.AddRow(std::move(row)).ok());
  }
  Result<Rowset> out = Aggregate(data, {}, {{AggFunc::kSum, 0, "s"}});
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->rows()[0].values[0].AsFloat(), 4.0);
}

TEST(AggFuncName, Names) {
  EXPECT_EQ(AggFuncName(AggFunc::kCount), "count");
  EXPECT_EQ(AggFuncName(AggFunc::kAvg), "avg");
}

}  // namespace
}  // namespace temporadb
