#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace temporadb {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/tdb_pager_" + name + "_" +
         std::to_string(::getpid());
}

TEST(MemPager, AllocateReadWrite) {
  MemPager pager;
  EXPECT_EQ(pager.page_count(), 0u);
  Result<PageId> id = pager.AllocatePage();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  char buf[kPageSize];
  std::memset(buf, 0xAB, kPageSize);
  ASSERT_TRUE(pager.WritePage(0, buf).ok());
  char read[kPageSize];
  ASSERT_TRUE(pager.ReadPage(0, read).ok());
  EXPECT_EQ(std::memcmp(buf, read, kPageSize), 0);
}

TEST(MemPager, OutOfRange) {
  MemPager pager;
  char buf[kPageSize];
  EXPECT_EQ(pager.ReadPage(3, buf).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(pager.WritePage(3, buf).code(), StatusCode::kOutOfRange);
}

TEST(FilePager, PersistsAcrossReopen) {
  std::string path = TempPath("persist");
  std::remove(path.c_str());
  {
    auto pager = FilePager::Open(path);
    ASSERT_TRUE(pager.ok());
    ASSERT_TRUE((*pager)->AllocatePage().ok());
    char buf[kPageSize];
    std::memset(buf, 0x5C, kPageSize);
    ASSERT_TRUE((*pager)->WritePage(0, buf).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  {
    auto pager = FilePager::Open(path);
    ASSERT_TRUE(pager.ok());
    EXPECT_EQ((*pager)->page_count(), 1u);
    char read[kPageSize];
    ASSERT_TRUE((*pager)->ReadPage(0, read).ok());
    EXPECT_EQ(read[100], 0x5C);
  }
  std::remove(path.c_str());
}

TEST(FilePager, RejectsMisalignedFile) {
  std::string path = TempPath("misaligned");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not a page multiple", f);
    std::fclose(f);
  }
  EXPECT_TRUE(FilePager::Open(path).status().IsCorruption());
  std::remove(path.c_str());
}

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : pool_(&pager_, 4) {}

  // Creates a formatted page and returns its id.
  PageId NewFormattedPage() {
    Result<BufferPool::PageGuard> guard = pool_.NewPage();
    EXPECT_TRUE(guard.ok());
    return guard->page_id();
  }

  MemPager pager_;
  BufferPool pool_;
};

TEST_F(BufferPoolTest, NewPageIsFormatted) {
  Result<BufferPool::PageGuard> guard = pool_.NewPage();
  ASSERT_TRUE(guard.ok());
  SlottedPage view(guard->data());
  EXPECT_EQ(view.slot_count(), 0);
}

TEST_F(BufferPoolTest, WritesSurviveEviction) {
  // Dirty 8 pages through a 4-frame pool; all contents must survive.
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    Result<BufferPool::PageGuard> guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    SlottedPage view(guard->data());
    std::string rec = "page-" + std::to_string(i);
    ASSERT_TRUE(view.Insert(rec).ok());
    guard->MarkDirty();
    ids.push_back(guard->page_id());
  }
  for (int i = 0; i < 8; ++i) {
    Result<BufferPool::PageGuard> guard = pool_.FetchPage(ids[i]);
    ASSERT_TRUE(guard.ok());
    SlottedPage view(guard->data());
    EXPECT_EQ(view.Get(0)->ToString(), "page-" + std::to_string(i));
  }
}

TEST_F(BufferPoolTest, HitsAndMisses) {
  PageId id = NewFormattedPage();
  ASSERT_TRUE(pool_.FlushAll().ok());
  uint64_t misses_before = pool_.miss_count();
  { auto g = pool_.FetchPage(id); ASSERT_TRUE(g.ok()); }
  { auto g = pool_.FetchPage(id); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(pool_.miss_count(), misses_before);  // Still resident.
  EXPECT_GE(pool_.hit_count(), 2u);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  // Pin all 4 frames, then ask for a 5th.
  std::vector<BufferPool::PageGuard> guards;
  for (int i = 0; i < 4; ++i) {
    Result<BufferPool::PageGuard> guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    guards.push_back(std::move(*guard));
  }
  Result<BufferPool::PageGuard> fifth = pool_.NewPage();
  EXPECT_FALSE(fifth.ok());
  EXPECT_EQ(fifth.status().code(), StatusCode::kFailedPrecondition);
  // Releasing one frame unblocks.
  guards.pop_back();
  EXPECT_TRUE(pool_.NewPage().ok());
}

TEST_F(BufferPoolTest, ChecksumVerifiedOnFault) {
  PageId id = NewFormattedPage();
  ASSERT_TRUE(pool_.FlushAll().ok());
  // Evict by filling the pool with other pages.
  for (int i = 0; i < 5; ++i) NewFormattedPage();
  ASSERT_TRUE(pool_.FlushAll().ok());
  // Corrupt the page behind the pool's back.
  char buf[kPageSize];
  ASSERT_TRUE(pager_.ReadPage(id, buf).ok());
  buf[kPageSize - 1] ^= 0xFF;
  ASSERT_TRUE(pager_.WritePage(id, buf).ok());
  Result<BufferPool::PageGuard> guard = pool_.FetchPage(id);
  // Either still resident (ok) or corruption detected.
  if (!guard.ok()) {
    EXPECT_TRUE(guard.status().IsCorruption());
  }
}

TEST_F(BufferPoolTest, MoveSemanticsOfGuard) {
  Result<BufferPool::PageGuard> guard = pool_.NewPage();
  ASSERT_TRUE(guard.ok());
  BufferPool::PageGuard moved = std::move(*guard);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(guard->valid());
  moved.Release();
  EXPECT_FALSE(moved.valid());
}

}  // namespace
}  // namespace temporadb
