#include "storage/heap_file.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <map>

namespace temporadb {
namespace {

std::unique_ptr<HeapFile> MemHeap() {
  auto heap = HeapFile::Open(std::make_unique<MemPager>());
  EXPECT_TRUE(heap.ok());
  return std::move(*heap);
}

TEST(HeapFile, AppendAndRead) {
  auto heap = MemHeap();
  Result<RecordId> id = heap->Append("hello");
  ASSERT_TRUE(id.ok());
  std::string out;
  ASSERT_TRUE(heap->Read(*id, &out).ok());
  EXPECT_EQ(out, "hello");
}

TEST(HeapFile, SpansMultiplePages) {
  auto heap = MemHeap();
  std::vector<RecordId> ids;
  std::string rec(1000, 'r');
  for (int i = 0; i < 100; ++i) {
    rec[0] = static_cast<char>('a' + i % 26);
    Result<RecordId> id = heap->Append(rec);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  EXPECT_GT(heap->page_count(), 10u);
  for (int i = 0; i < 100; ++i) {
    std::string out;
    ASSERT_TRUE(heap->Read(ids[i], &out).ok());
    EXPECT_EQ(out[0], static_cast<char>('a' + i % 26));
  }
}

TEST(HeapFile, ScanVisitsAllInOrder) {
  auto heap = MemHeap();
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(heap->Append("rec-" + std::to_string(i)).ok());
  }
  int seen = 0;
  Status s = heap->Scan([&](RecordId, Slice rec) -> Status {
    EXPECT_EQ(rec.ToString(), "rec-" + std::to_string(seen));
    ++seen;
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(seen, 300);
}

TEST(HeapFile, ScanEarlyExitPropagates) {
  auto heap = MemHeap();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(heap->Append("x").ok());
  int seen = 0;
  Status s = heap->Scan([&](RecordId, Slice) -> Status {
    if (++seen == 3) return Status::Aborted("enough");
    return Status::OK();
  });
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(seen, 3);
}

TEST(HeapFile, DeleteSkipsInScan) {
  auto heap = MemHeap();
  Result<RecordId> a = heap->Append("a");
  Result<RecordId> b = heap->Append("b");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(heap->Delete(*a).ok());
  std::vector<std::string> seen;
  ASSERT_TRUE(heap->Scan([&](RecordId, Slice rec) -> Status {
    seen.push_back(rec.ToString());
    return Status::OK();
  }).ok());
  EXPECT_EQ(seen, std::vector<std::string>{"b"});
  std::string out;
  EXPECT_TRUE(heap->Read(*a, &out).IsNotFound());
}

TEST(HeapFile, UpdateInPlaceAndRelocation) {
  auto heap = MemHeap();
  Result<RecordId> id = heap->Append("0123456789");
  ASSERT_TRUE(id.ok());
  // Shrinking update stays put.
  Result<RecordId> same = heap->Update(*id, "short");
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(*same, *id);
  // Growing update relocates.
  Result<RecordId> moved = heap->Update(*same, std::string(500, 'g'));
  ASSERT_TRUE(moved.ok());
  std::string out;
  ASSERT_TRUE(heap->Read(*moved, &out).ok());
  EXPECT_EQ(out.size(), 500u);
  EXPECT_TRUE(heap->Read(*id, &out).IsNotFound());
}

TEST(HeapFile, RejectsOversizeRecord) {
  auto heap = MemHeap();
  EXPECT_FALSE(heap->Append(std::string(kPageSize, 'x')).ok());
}

TEST(HeapFile, PersistsThroughFileAndReopen) {
  std::string path = testing::TempDir() + "/tdb_heap_" +
                     std::to_string(::getpid()) + ".heap";
  std::remove(path.c_str());
  std::vector<RecordId> ids;
  {
    auto pager = FilePager::Open(path);
    ASSERT_TRUE(pager.ok());
    auto heap = HeapFile::Open(std::move(*pager));
    ASSERT_TRUE(heap.ok());
    for (int i = 0; i < 50; ++i) {
      Result<RecordId> id = (*heap)->Append("persist-" + std::to_string(i));
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    ASSERT_TRUE((*heap)->Flush().ok());
  }
  {
    auto pager = FilePager::Open(path);
    ASSERT_TRUE(pager.ok());
    auto heap = HeapFile::Open(std::move(*pager));
    ASSERT_TRUE(heap.ok());
    std::string out;
    ASSERT_TRUE((*heap)->Read(ids[17], &out).ok());
    EXPECT_EQ(out, "persist-17");
    // Appends continue at the tail.
    Result<RecordId> more = (*heap)->Append("new");
    ASSERT_TRUE(more.ok());
    int count = 0;
    ASSERT_TRUE((*heap)
                    ->Scan([&](RecordId, Slice) -> Status {
                      ++count;
                      return Status::OK();
                    })
                    .ok());
    EXPECT_EQ(count, 51);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace temporadb
