// End-to-end verification of the paper's worked example: the faculty
// relation driven through the full stack (TQuel text -> parser -> analyzer
// -> relation kinds -> version store), checked tuple-for-tuple against
// Figures 2, 4, 6, 8 and 9 and query-for-query against the paper's answers.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/database.h"
#include "core/paper_scenario.h"
#include "temporal/snapshot.h"

namespace temporadb {
namespace {

Chronon Day(const char* text) {
  Result<Date> d = Date::Parse(text);
  EXPECT_TRUE(d.ok()) << text;
  return d->chronon();
}

Period P(const char* from, const char* to) {
  return Period(Day(from), Day(to));
}

Period From(const char* from) { return Period::From(Day(from)); }

// A row of a figure: explicit values + the two periods.
struct FigureRow {
  std::string name;
  std::string rank;
  Period valid;
  Period txn;
};

std::vector<FigureRow> DumpSorted(StoredRelation* rel) {
  std::vector<FigureRow> rows;
  rel->store()->ForEach([&](RowId, const BitemporalTuple& t) {
    rows.push_back(FigureRow{t.values[0].AsString(), t.values[1].AsString(),
                             t.valid, t.txn});
  });
  std::sort(rows.begin(), rows.end(), [](const FigureRow& a,
                                         const FigureRow& b) {
    if (a.name != b.name) return a.name < b.name;
    if (a.txn.begin() != b.txn.begin())
      return a.txn.begin() < b.txn.begin();
    return a.valid.begin() < b.valid.begin();
  });
  return rows;
}

void ExpectRow(const FigureRow& row, const char* name, const char* rank,
               Period valid, Period txn) {
  EXPECT_EQ(row.name, name);
  EXPECT_EQ(row.rank, rank);
  EXPECT_EQ(row.valid, valid) << name << "/" << rank << " valid "
                              << row.valid.ToString();
  EXPECT_EQ(row.txn, txn) << name << "/" << rank << " txn "
                          << row.txn.ToString();
}

TEST(PaperScenario, Figure2StaticRelationAndQuelQuery) {
  auto db = Database::Open({});
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(paper::BuildStaticFaculty(db->get()).ok());

  // The paper's Quel query: Merrie's rank.
  (*db)->Execute("range of f is faculty").status();
  Result<Rowset> result = (*db)->Query(
      "retrieve (f.rank) where f.name = \"Merrie\"");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->rows()[0].values[0].AsString(), "full");
  EXPECT_EQ(result->temporal_class(), TemporalClass::kStatic);
  EXPECT_FALSE(result->rows()[0].valid.has_value());
  EXPECT_FALSE(result->rows()[0].txn.has_value());
}

TEST(PaperScenario, Figure4RollbackRelationContents) {
  ManualClock clock;
  DatabaseOptions options;
  options.clock = &clock;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(paper::BuildRollbackFaculty(db->get(), &clock).ok());

  Result<StoredRelation*> rel = (*db)->GetRelation("faculty");
  ASSERT_TRUE(rel.ok());
  std::vector<FigureRow> rows = DumpSorted(*rel);
  ASSERT_EQ(rows.size(), 4u);
  // Figure 4 (valid time degenerate in a rollback relation).
  ExpectRow(rows[0], "Merrie", "associate", Period::All(),
            P("08/25/77", "12/15/82"));
  ExpectRow(rows[1], "Merrie", "full", Period::All(), From("12/15/82"));
  ExpectRow(rows[2], "Mike", "assistant", Period::All(),
            P("01/10/83", "02/25/84"));
  ExpectRow(rows[3], "Tom", "associate", Period::All(), From("12/07/82"));
}

TEST(PaperScenario, Figure4AsOfQueryYieldsAssociate) {
  ManualClock clock;
  DatabaseOptions options;
  options.clock = &clock;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(paper::BuildRollbackFaculty(db->get(), &clock).ok());

  // "retrieve (f.rank) where f.name = 'Merrie' as of '12/10/82'" ->
  // associate (the promotion was recorded 12/15/82).
  Result<Rowset> result = (*db)->Query(
      "retrieve (f.rank) where f.name = \"Merrie\" as of \"12/10/82\"");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->rows()[0].values[0].AsString(), "associate");
  // "the result of a query on a static rollback database is a pure static
  // relation".
  EXPECT_EQ(result->temporal_class(), TemporalClass::kStatic);
}

TEST(PaperScenario, Figure6HistoricalRelationContents) {
  ManualClock clock;
  DatabaseOptions options;
  options.clock = &clock;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  Status s = paper::BuildHistoricalFaculty(db->get(), &clock);
  ASSERT_TRUE(s.ok()) << s.ToString();

  Result<StoredRelation*> rel = (*db)->GetRelation("faculty");
  ASSERT_TRUE(rel.ok());
  std::vector<FigureRow> rows = DumpSorted(*rel);
  ASSERT_EQ(rows.size(), 4u);
  // Figure 6 (transaction time degenerate in an historical relation).
  ExpectRow(rows[0], "Merrie", "associate", P("09/01/77", "12/01/82"),
            Period::All());
  ExpectRow(rows[1], "Merrie", "full", From("12/01/82"), Period::All());
  ExpectRow(rows[2], "Mike", "assistant", P("01/01/83", "03/01/84"),
            Period::All());
  ExpectRow(rows[3], "Tom", "associate", From("12/05/82"), Period::All());
}

TEST(PaperScenario, Figure6WhenQueryYieldsFull) {
  ManualClock clock;
  DatabaseOptions options;
  options.clock = &clock;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(paper::BuildHistoricalFaculty(db->get(), &clock).ok());
  ASSERT_TRUE((*db)->Execute("range of f1 is faculty").ok());
  ASSERT_TRUE((*db)->Execute("range of f2 is faculty").ok());

  // The paper's historical query: Merrie's rank when Tom arrived.
  Result<Rowset> result = (*db)->Query(
      "retrieve (f1.rank) where f1.name = \"Merrie\" and f2.name = \"Tom\" "
      "when f1 overlap start of f2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->rows()[0].values[0].AsString(), "full");
  // The derived relation is historical, with valid time [12/01/82, inf).
  EXPECT_EQ(result->temporal_class(), TemporalClass::kHistorical);
  ASSERT_TRUE(result->rows()[0].valid.has_value());
  EXPECT_EQ(*result->rows()[0].valid, From("12/01/82"));
}

TEST(PaperScenario, Figure8TemporalRelationContents) {
  ManualClock clock;
  DatabaseOptions options;
  options.clock = &clock;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  Status s = paper::BuildTemporalFaculty(db->get(), &clock);
  ASSERT_TRUE(s.ok()) << s.ToString();

  Result<StoredRelation*> rel = (*db)->GetRelation("faculty");
  ASSERT_TRUE(rel.ok());
  std::vector<FigureRow> rows = DumpSorted(*rel);
  ASSERT_EQ(rows.size(), 7u);
  // Figure 8, all seven rows.
  ExpectRow(rows[0], "Merrie", "associate", From("09/01/77"),
            P("08/25/77", "12/15/82"));
  ExpectRow(rows[1], "Merrie", "associate", P("09/01/77", "12/01/82"),
            From("12/15/82"));
  ExpectRow(rows[2], "Merrie", "full", From("12/01/82"), From("12/15/82"));
  ExpectRow(rows[3], "Mike", "assistant", From("01/01/83"),
            P("01/10/83", "02/25/84"));
  ExpectRow(rows[4], "Mike", "assistant", P("01/01/83", "03/01/84"),
            From("02/25/84"));
  ExpectRow(rows[5], "Tom", "full", From("12/05/82"),
            P("12/01/82", "12/07/82"));
  ExpectRow(rows[6], "Tom", "associate", From("12/05/82"), From("12/07/82"));
}

TEST(PaperScenario, Figure8BitemporalQueries) {
  ManualClock clock;
  DatabaseOptions options;
  options.clock = &clock;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(paper::BuildTemporalFaculty(db->get(), &clock).ok());
  ASSERT_TRUE((*db)->Execute("range of f1 is faculty").ok());
  ASSERT_TRUE((*db)->Execute("range of f2 is faculty").ok());

  // As of 12/10/82 the promotion had not yet been recorded: associate.
  Result<Rowset> r1 = (*db)->Query(
      "retrieve (f1.rank) where f1.name = \"Merrie\" and f2.name = \"Tom\" "
      "when f1 overlap start of f2 as of \"12/10/82\"");
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_EQ(r1->size(), 1u);
  EXPECT_EQ(r1->rows()[0].values[0].AsString(), "associate");
  // The paper's printed answer carries both periods.
  EXPECT_EQ(r1->temporal_class(), TemporalClass::kTemporal);
  ASSERT_TRUE(r1->rows()[0].valid.has_value());
  ASSERT_TRUE(r1->rows()[0].txn.has_value());
  EXPECT_EQ(*r1->rows()[0].valid, From("09/01/77"));
  EXPECT_EQ(*r1->rows()[0].txn, P("08/25/77", "12/15/82"));

  // As of 12/20/82 the retroactive recording is visible: full.
  Result<Rowset> r2 = (*db)->Query(
      "retrieve (f1.rank) where f1.name = \"Merrie\" and f2.name = \"Tom\" "
      "when f1 overlap start of f2 as of \"12/20/82\"");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_EQ(r2->size(), 1u);
  EXPECT_EQ(r2->rows()[0].values[0].AsString(), "full");
}

TEST(PaperScenario, Figure9PromotionEventRelation) {
  ManualClock clock;
  DatabaseOptions options;
  options.clock = &clock;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  Status s = paper::BuildPromotionEvents(db->get(), &clock);
  ASSERT_TRUE(s.ok()) << s.ToString();

  Result<StoredRelation*> rel = (*db)->GetRelation("promotion");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->data_model(), TemporalDataModel::kEvent);

  struct EventRow {
    std::string name, rank;
    Date effective;
    Chronon valid_at;
    Period txn;
  };
  std::vector<EventRow> rows;
  (*rel)->store()->ForEach([&](RowId, const BitemporalTuple& t) {
    rows.push_back(EventRow{t.values[0].AsString(), t.values[1].AsString(),
                            t.values[2].AsDate(), t.valid.begin(), t.txn});
  });
  std::sort(rows.begin(), rows.end(), [](const EventRow& a,
                                         const EventRow& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.txn.begin() < b.txn.begin();
  });
  ASSERT_EQ(rows.size(), 6u);

  // Figure 9 rows (sorted: Merrie x2, Mike x2, Tom x2).
  EXPECT_EQ(rows[0].rank, "associate");
  EXPECT_EQ(rows[0].effective, *Date::Parse("09/01/77"));
  EXPECT_EQ(rows[0].valid_at, Day("08/25/77"));
  EXPECT_EQ(rows[0].txn, From("08/25/77"));

  EXPECT_EQ(rows[1].rank, "full");
  EXPECT_EQ(rows[1].effective, *Date::Parse("12/01/82"));
  EXPECT_EQ(rows[1].valid_at, Day("12/11/82"));
  EXPECT_EQ(rows[1].txn, From("12/15/82"));

  EXPECT_EQ(rows[2].name, "Mike");
  EXPECT_EQ(rows[2].rank, "assistant");
  EXPECT_EQ(rows[3].rank, "left");
  EXPECT_EQ(rows[3].effective, *Date::Parse("03/01/84"));
  EXPECT_EQ(rows[3].valid_at, Day("02/25/84"));

  EXPECT_EQ(rows[4].name, "Tom");
  EXPECT_EQ(rows[4].rank, "full");
  EXPECT_EQ(rows[4].txn, P("12/01/82", "12/07/82"));
  EXPECT_EQ(rows[5].rank, "associate");
  EXPECT_EQ(rows[5].valid_at, Day("12/07/82"));
  EXPECT_EQ(rows[5].txn, From("12/07/82"));
}

TEST(PaperScenario, CubeScenariosMatchFigures3And5And7) {
  // Rollback cube (Figure 3): states at each transaction boundary.
  {
    ManualClock clock;
    DatabaseOptions options;
    options.clock = &clock;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(
        paper::BuildCubeScenario(db->get(), &clock, TemporalClass::kRollback)
            .ok());
    Result<StoredRelation*> rel = (*db)->GetRelation("r");
    ASSERT_TRUE(rel.ok());
    std::vector<StaticState> states = RollbackStates(*(*rel)->store());
    ASSERT_EQ(states.size(), 3u);
    EXPECT_EQ(states[0].rows.size(), 3u);  // T1: a b c
    EXPECT_EQ(states[1].rows.size(), 4u);  // T2: + d
    EXPECT_EQ(states[2].rows.size(), 4u);  // T3: - b + e
  }
  // Temporal "hypercube" (Figure 7): four transactions, the last removing
  // the erroneous tuple from the current historical state while past
  // states keep it.
  {
    ManualClock clock;
    DatabaseOptions options;
    options.clock = &clock;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(
        paper::BuildCubeScenario(db->get(), &clock, TemporalClass::kTemporal)
            .ok());
    Result<StoredRelation*> rel = (*db)->GetRelation("r");
    ASSERT_TRUE(rel.ok());
    std::vector<HistoricalState> states = TemporalStates(*(*rel)->store());
    ASSERT_EQ(states.size(), 4u);
    EXPECT_EQ(states[0].rows.size(), 3u);
    EXPECT_EQ(states[1].rows.size(), 4u);
    // Deleting "b" at T3 closes its open validity but keeps the remnant
    // fact "b was valid over [T1, T3)" in the new historical state — a
    // temporal relation never forgets history, only corrects it.
    EXPECT_EQ(states[2].rows.size(), 5u);
    EXPECT_EQ(states[3].rows.size(), 4u);  // "c" erased as erroneous.
    for (const BitemporalTuple& t : states[3].rows) {
      EXPECT_NE(t.values[0].AsString(), "c");
    }
    // The deletion is append-only: rolling back to T3 still shows "c".
    bool c_at_t3 = false;
    for (const BitemporalTuple& t : states[2].rows) {
      if (t.values[0].AsString() == "c") c_at_t3 = true;
    }
    EXPECT_TRUE(c_at_t3);
  }
  // Historical cube (Figure 5): the correction physically removed "c";
  // no slice of the final state contains it.
  {
    ManualClock clock;
    DatabaseOptions options;
    options.clock = &clock;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(paper::BuildCubeScenario(db->get(), &clock,
                                         TemporalClass::kHistorical)
                    .ok());
    Result<StoredRelation*> rel = (*db)->GetRelation("r");
    ASSERT_TRUE(rel.ok());
    for (const StaticState& slice : HistoricalSlices(*(*rel)->store())) {
      for (const auto& row : slice.rows) {
        EXPECT_NE(row[0].AsString(), "c");
      }
    }
  }
}

TEST(PaperScenario, TaxonomyViolationsAreRejected) {
  ManualClock clock;
  DatabaseOptions options;
  options.clock = &clock;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(paper::BuildRollbackFaculty(db->get(), &clock).ok());

  // Historical constructs on a rollback relation: NotSupported.
  Result<Rowset> when_query = (*db)->Query(
      "retrieve (f.rank) when f overlap \"12/10/82\"");
  EXPECT_FALSE(when_query.ok());
  EXPECT_TRUE(when_query.status().IsNotSupported())
      << when_query.status().ToString();

  // Retroactive change on a rollback relation: NotSupported.
  Result<tquel::ExecResult> retro = (*db)->Execute(
      "append to faculty (name = \"Ann\", rank = \"full\") "
      "valid from \"01/01/80\" to \"inf\"");
  EXPECT_FALSE(retro.ok());
  EXPECT_TRUE(retro.status().IsNotSupported());

  // As-of on an historical relation: NotSupported.
  ManualClock clock2;
  DatabaseOptions options2;
  options2.clock = &clock2;
  auto db2 = Database::Open(options2);
  ASSERT_TRUE(db2.ok());
  ASSERT_TRUE(paper::BuildHistoricalFaculty(db2->get(), &clock2).ok());
  Result<Rowset> asof_query = (*db2)->Query(
      "retrieve (f.rank) where f.name = \"Merrie\" as of \"12/10/82\"");
  EXPECT_FALSE(asof_query.ok());
  EXPECT_TRUE(asof_query.status().IsNotSupported());
}

}  // namespace
}  // namespace temporadb
