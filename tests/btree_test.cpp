#include "index/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"

namespace temporadb {
namespace {

TEST(BTree, EmptyLookup) {
  BTreeIndex index;
  EXPECT_TRUE(index.Lookup(Value(int64_t{1})).empty());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.CheckInvariants().ok());
}

TEST(BTree, InsertAndLookup) {
  BTreeIndex index;
  index.Insert(Value("merrie"), 1);
  index.Insert(Value("tom"), 2);
  EXPECT_EQ(index.Lookup(Value("merrie")), std::vector<uint64_t>{1});
  EXPECT_EQ(index.Lookup(Value("tom")), std::vector<uint64_t>{2});
  EXPECT_TRUE(index.Lookup(Value("mike")).empty());
  EXPECT_EQ(index.size(), 2u);
}

TEST(BTree, DuplicateKeysAccumulate) {
  BTreeIndex index;
  for (uint64_t row = 0; row < 10; ++row) {
    index.Insert(Value(int64_t{7}), row);
  }
  EXPECT_EQ(index.Lookup(Value(int64_t{7})).size(), 10u);
  EXPECT_EQ(index.size(), 10u);
}

TEST(BTree, SplitsGrowHeight) {
  BTreeIndex index;
  EXPECT_EQ(index.height(), 0);
  for (int64_t i = 0; i < 10000; ++i) {
    index.Insert(Value(i), static_cast<uint64_t>(i));
  }
  EXPECT_GE(index.height(), 3);
  ASSERT_TRUE(index.CheckInvariants().ok());
  for (int64_t i = 0; i < 10000; i += 97) {
    ASSERT_EQ(index.Lookup(Value(i)).size(), 1u) << i;
  }
}

TEST(BTree, ReverseAndRandomInsertionOrders) {
  for (int mode = 0; mode < 2; ++mode) {
    BTreeIndex index;
    std::vector<int64_t> keys;
    for (int64_t i = 0; i < 2000; ++i) keys.push_back(i);
    if (mode == 0) {
      std::reverse(keys.begin(), keys.end());
    } else {
      Random rng(77);
      for (size_t i = keys.size(); i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.Uniform(i)]);
      }
    }
    for (int64_t k : keys) index.Insert(Value(k), static_cast<uint64_t>(k));
    ASSERT_TRUE(index.CheckInvariants().ok());
    for (int64_t k = 0; k < 2000; k += 53) {
      EXPECT_EQ(index.Lookup(Value(k)), std::vector<uint64_t>{
                                            static_cast<uint64_t>(k)});
    }
  }
}

TEST(BTree, RangeScan) {
  BTreeIndex index;
  for (int64_t i = 0; i < 100; ++i) {
    index.Insert(Value(i), static_cast<uint64_t>(i * 10));
  }
  std::vector<int64_t> keys;
  Value lo{int64_t{20}}, hi{int64_t{29}};
  index.Range(&lo, &hi, [&](const Value& k, uint64_t row) {
    keys.push_back(k.AsInt());
    EXPECT_EQ(row, static_cast<uint64_t>(k.AsInt() * 10));
  });
  ASSERT_EQ(keys.size(), 10u);
  EXPECT_EQ(keys.front(), 20);
  EXPECT_EQ(keys.back(), 29);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(BTree, OpenEndedRanges) {
  BTreeIndex index;
  for (int64_t i = 0; i < 50; ++i) {
    index.Insert(Value(i), static_cast<uint64_t>(i));
  }
  int count = 0;
  index.Range(nullptr, nullptr, [&](const Value&, uint64_t) { ++count; });
  EXPECT_EQ(count, 50);
  count = 0;
  Value lo{int64_t{45}};
  index.Range(&lo, nullptr, [&](const Value&, uint64_t) { ++count; });
  EXPECT_EQ(count, 5);
  count = 0;
  Value hi{int64_t{4}};
  index.Range(nullptr, &hi, [&](const Value&, uint64_t) { ++count; });
  EXPECT_EQ(count, 5);
}

TEST(BTree, RemovePostings) {
  BTreeIndex index;
  index.Insert(Value("k"), 1);
  index.Insert(Value("k"), 2);
  ASSERT_TRUE(index.Remove(Value("k"), 1).ok());
  EXPECT_EQ(index.Lookup(Value("k")), std::vector<uint64_t>{2});
  ASSERT_TRUE(index.Remove(Value("k"), 2).ok());
  EXPECT_TRUE(index.Lookup(Value("k")).empty());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.Remove(Value("k"), 2).IsNotFound());
  EXPECT_TRUE(index.Remove(Value("other"), 1).IsNotFound());
}

TEST(BTree, MixedStringKeys) {
  BTreeIndex index;
  Random rng(5);
  std::map<std::string, std::vector<uint64_t>> expected;
  for (uint64_t row = 0; row < 3000; ++row) {
    std::string key = rng.NextName(3);  // Many duplicates.
    index.Insert(Value(key), row);
    expected[key].push_back(row);
  }
  ASSERT_TRUE(index.CheckInvariants().ok());
  for (const auto& [key, rows] : expected) {
    std::vector<uint64_t> got = index.Lookup(Value(key));
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, rows) << key;
  }
}

// Parameterized churn sweep: interleave inserts and removes at several
// scales; the index must agree with a reference map throughout.
class BTreeChurnTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreeChurnTest, MatchesReferenceModel) {
  const int scale = GetParam();
  BTreeIndex index;
  std::multimap<int64_t, uint64_t> model;
  Random rng(static_cast<uint64_t>(scale) * 31 + 7);
  for (int op = 0; op < scale; ++op) {
    int64_t key = static_cast<int64_t>(rng.Uniform(scale / 4 + 1));
    if (!model.empty() && rng.OneIn(3)) {
      // Remove a random existing entry.
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(index.Remove(Value(it->first), it->second).ok());
      model.erase(it);
    } else {
      uint64_t row = static_cast<uint64_t>(op);
      index.Insert(Value(key), row);
      model.emplace(key, row);
    }
  }
  ASSERT_TRUE(index.CheckInvariants().ok());
  EXPECT_EQ(index.size(), model.size());
  // Full scan must match the model exactly.
  std::vector<std::pair<int64_t, uint64_t>> got, want;
  index.Range(nullptr, nullptr, [&](const Value& k, uint64_t row) {
    got.emplace_back(k.AsInt(), row);
  });
  for (const auto& [k, row] : model) want.emplace_back(k, row);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Scales, BTreeChurnTest,
                         ::testing::Values(64, 256, 1024, 4096));

}  // namespace
}  // namespace temporadb
