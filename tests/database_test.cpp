#include "core/database.h"

#include <gtest/gtest.h>

namespace temporadb {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() {
    DatabaseOptions options;
    options.clock = &clock_;
    db_ = std::move(*Database::Open(options));
    clock_.SetDate("01/01/80").ok();
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, ProgrammaticDdl) {
  Schema schema = *Schema::Make({Attribute{"name", Type::String()}});
  Result<RelationInfo> info =
      db_->CreateRelation("t", schema, TemporalClass::kTemporal);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(db_->GetRelation("t").ok());
  EXPECT_EQ(db_->ListRelations().size(), 1u);
  ASSERT_TRUE(db_->DropRelation("t").ok());
  EXPECT_TRUE(db_->GetRelation("t").status().IsNotFound());
  EXPECT_TRUE(db_->DropRelation("t").IsNotFound());
}

TEST_F(DatabaseTest, DuplicateRelationRejected) {
  Schema schema = *Schema::Make({Attribute{"name", Type::String()}});
  ASSERT_TRUE(db_->CreateRelation("t", schema, TemporalClass::kStatic).ok());
  EXPECT_EQ(db_->CreateRelation("t", schema, TemporalClass::kStatic)
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(DatabaseTest, ExplicitTransactionSpansStatements) {
  ASSERT_TRUE(db_->Execute("create relation t (n = int)").ok());
  Result<Transaction*> txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db_->Execute("append to t (n = 1)").ok());
  ASSERT_TRUE(db_->Execute("append to t (n = 2)").ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  ASSERT_TRUE(db_->Execute("range of x is t").ok());
  EXPECT_EQ(db_->Query("retrieve (x.n)")->size(), 2u);
}

TEST_F(DatabaseTest, ExplicitAbortUndoesAllStatements) {
  ASSERT_TRUE(db_->Execute("create relation t (n = int)").ok());
  ASSERT_TRUE(db_->Execute("append to t (n = 1)").ok());
  ASSERT_TRUE(db_->Execute("range of x is t").ok());
  Result<Transaction*> txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db_->Execute("append to t (n = 2)").ok());
  ASSERT_TRUE(db_->Execute("delete x where x.n = 1").ok());
  ASSERT_TRUE(db_->Abort(*txn).ok());
  Result<Rowset> rows = db_->Query("retrieve (x.n)");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->rows()[0].values[0].AsInt(), 1);
}

TEST_F(DatabaseTest, WithTransactionCommitsOnOk) {
  ASSERT_TRUE(db_->Execute("create relation t (n = int)").ok());
  Status s = db_->WithTransaction([&](Transaction*) -> Status {
    Result<tquel::ExecResult> r = db_->Execute("append to t (n = 7)");
    return r.ok() ? Status::OK() : r.status();
  });
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(db_->Execute("range of x is t").ok());
  EXPECT_EQ(db_->Query("retrieve (x.n)")->size(), 1u);
}

TEST_F(DatabaseTest, WithTransactionAbortsOnError) {
  ASSERT_TRUE(db_->Execute("create relation t (n = int)").ok());
  Status s = db_->WithTransaction([&](Transaction*) -> Status {
    Result<tquel::ExecResult> r = db_->Execute("append to t (n = 7)");
    EXPECT_TRUE(r.ok());
    return Status::Aborted("change of heart");
  });
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  ASSERT_TRUE(db_->Execute("range of x is t").ok());
  EXPECT_EQ(db_->Query("retrieve (x.n)")->size(), 0u);
}

TEST_F(DatabaseTest, MultiStatementExecuteReturnsLastResult) {
  Result<tquel::ExecResult> r = db_->Execute(
      "create relation t (n = int); append to t (n = 1); "
      "range of x is t; retrieve (x.n)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->kind, tquel::ExecResult::Kind::kRows);
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST_F(DatabaseTest, NowFollowsClock) {
  clock_.SetDate("12/15/82").ok();
  EXPECT_EQ(db_->Now(), Date::Parse("12/15/82")->chronon());
}

TEST_F(DatabaseTest, QueryRejectsNonRowStatements) {
  ASSERT_TRUE(db_->Execute("create relation t (n = int)").ok());
  EXPECT_FALSE(db_->Query("append to t (n = 1)").ok());
}

TEST_F(DatabaseTest, EmptySourceRejected) {
  EXPECT_FALSE(db_->Execute("").ok());
  EXPECT_FALSE(db_->Execute("   -- just a comment").ok());
}

TEST_F(DatabaseTest, InMemoryDatabaseHasNoWal) {
  EXPECT_EQ(db_->WalBytes(), 0u);
  EXPECT_TRUE(db_->Checkpoint().ok());  // No-op.
}

TEST_F(DatabaseTest, IndexTogglesStillCorrect) {
  for (bool valid_index : {true, false}) {
    for (bool txn_index : {true, false}) {
      ManualClock clock;
      clock.SetDate("01/01/80").ok();
      DatabaseOptions options;
      options.clock = &clock;
      options.store_options.index_valid_time = valid_index;
      options.store_options.index_txn_time = txn_index;
      auto db = std::move(*Database::Open(options));
      ASSERT_TRUE(
          db->Execute("create temporal relation t (name = string)").ok());
      ASSERT_TRUE(db->Execute("append to t (name = \"a\")").ok());
      clock.SetDate("01/01/81").ok();
      ASSERT_TRUE(db->Execute("range of x is t").ok());
      ASSERT_TRUE(db->Execute("delete x").ok());
      Result<Rowset> asof =
          db->Query("retrieve (x.name) as of \"06/01/80\"");
      ASSERT_TRUE(asof.ok());
      EXPECT_EQ(asof->size(), 1u) << valid_index << txn_index;
      // The current state keeps the remnant fact "a was valid over
      // [01/01/80, 01/01/81)"; its validity must end at the deletion.
      Result<Rowset> now = db->Query("retrieve (x.name)");
      ASSERT_TRUE(now.ok());
      ASSERT_EQ(now->size(), 1u);
      EXPECT_EQ(now->rows()[0].valid->end(),
                Date::Parse("01/01/81")->chronon());
      // And the fact is gone from any timeslice at or after the deletion.
      Result<Rowset> later = db->Query(
          "retrieve (x.name) when x overlap \"06/01/81\"");
      ASSERT_TRUE(later.ok());
      EXPECT_EQ(later->size(), 0u);
    }
  }
}

}  // namespace
}  // namespace temporadb
