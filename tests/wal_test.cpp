#include "storage/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>

namespace temporadb {
namespace {

class WalTest : public ::testing::Test {
 protected:
  WalTest()
      : path_(testing::TempDir() + "/tdb_wal_" + std::to_string(::getpid()) +
              "_" +
              std::to_string(reinterpret_cast<uintptr_t>(this) & 0xFFFF) +
              ".log") {
    std::remove(path_.c_str());
  }
  ~WalTest() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(WalTest, AppendAssignsMonotonicLsns) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  Result<uint64_t> a = (*wal)->Append(1, "one");
  Result<uint64_t> b = (*wal)->Append(2, "two");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(*a, *b);
  EXPECT_EQ((*wal)->next_lsn(), *b + 1);
}

TEST_F(WalTest, ReplayReturnsRecordsInOrder) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        (*wal)->Append(static_cast<uint32_t>(i), "payload" + std::to_string(i))
            .ok());
  }
  ASSERT_TRUE((*wal)->Sync().ok());
  std::vector<WalRecord> records;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord& rec) -> Status {
                             records.push_back(rec);
                             return Status::OK();
                           })
                  .ok());
  ASSERT_EQ(records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(records[i].type, static_cast<uint32_t>(i));
    EXPECT_EQ(records[i].payload, "payload" + std::to_string(i));
    if (i > 0) {
      EXPECT_GT(records[i].lsn, records[i - 1].lsn);
    }
  }
}

TEST_F(WalTest, ReplayFromLsnSkipsPrefix) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  uint64_t third = 0;
  for (int i = 0; i < 5; ++i) {
    Result<uint64_t> lsn = (*wal)->Append(0, std::to_string(i));
    ASSERT_TRUE(lsn.ok());
    if (i == 2) third = *lsn;
  }
  int count = 0;
  ASSERT_TRUE((*wal)
                  ->Replay(third,
                           [&](const WalRecord&) -> Status {
                             ++count;
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(count, 3);
}

TEST_F(WalTest, SurvivesReopen) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(7, "persisted").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->next_lsn(), 2u);
  int count = 0;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord& rec) -> Status {
                             EXPECT_EQ(rec.payload, "persisted");
                             ++count;
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST_F(WalTest, TornTailIsDiscarded) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "complete").ok());
    ASSERT_TRUE((*wal)->Append(2, "will be torn").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Tear the last record's checksum.
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    ASSERT_EQ(::ftruncate(fileno(f), size - 3), 0);
    std::fclose(f);
  }
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  std::vector<std::string> payloads;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord& rec) -> Status {
                             payloads.push_back(rec.payload);
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(payloads, std::vector<std::string>{"complete"});
  // New appends start after the surviving prefix and replay cleanly.
  ASSERT_TRUE((*wal)->Append(3, "after recovery").ok());
  payloads.clear();
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord& rec) -> Status {
                             payloads.push_back(rec.payload);
                             return Status::OK();
                           })
                  .ok());
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[1], "after recovery");
}

TEST_F(WalTest, CorruptedBodyStopsReplayAtTear) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "aaaaaaaaaa").ok());
    ASSERT_TRUE((*wal)->Append(2, "bbbbbbbbbb").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  {
    // Flip a byte inside the second record's payload.
    std::FILE* f = std::fopen(path_.c_str(), "r+");
    ASSERT_NE(f, nullptr);
    long second_payload = (8 + 4 + 4 + 10 + 8) + (8 + 4 + 4) + 3;
    std::fseek(f, second_payload, SEEK_SET);
    std::fputc('X', f);
    std::fclose(f);
  }
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  int count = 0;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord&) -> Status {
                             ++count;
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST_F(WalTest, TruncateEmptiesLog) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(1, "x").ok());
  ASSERT_TRUE((*wal)->Truncate().ok());
  EXPECT_EQ(*(*wal)->SizeBytes(), 0u);
  int count = 0;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord&) -> Status {
                             ++count;
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(count, 0);
  // Appends after truncation work.
  EXPECT_TRUE((*wal)->Append(1, "fresh").ok());
}

TEST_F(WalTest, EmptyPayloadAllowed) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(9, Slice("", 0)).ok());
  int count = 0;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord& rec) -> Status {
                             EXPECT_TRUE(rec.payload.empty());
                             EXPECT_EQ(rec.type, 9u);
                             ++count;
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace temporadb
