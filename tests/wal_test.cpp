#include "storage/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>

namespace temporadb {
namespace {

class WalTest : public ::testing::Test {
 protected:
  WalTest()
      : path_(testing::TempDir() + "/tdb_wal_" + std::to_string(::getpid()) +
              "_" +
              std::to_string(reinterpret_cast<uintptr_t>(this) & 0xFFFF) +
              ".log") {
    std::remove(path_.c_str());
  }
  ~WalTest() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(WalTest, AppendAssignsMonotonicLsns) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  Result<uint64_t> a = (*wal)->Append(1, "one");
  Result<uint64_t> b = (*wal)->Append(2, "two");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(*a, *b);
  EXPECT_EQ((*wal)->next_lsn(), *b + 1);
}

TEST_F(WalTest, ReplayReturnsRecordsInOrder) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        (*wal)->Append(static_cast<uint32_t>(i), "payload" + std::to_string(i))
            .ok());
  }
  ASSERT_TRUE((*wal)->Sync().ok());
  std::vector<WalRecord> records;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord& rec) -> Status {
                             records.push_back(rec);
                             return Status::OK();
                           })
                  .ok());
  ASSERT_EQ(records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(records[i].type, static_cast<uint32_t>(i));
    EXPECT_EQ(records[i].payload, "payload" + std::to_string(i));
    if (i > 0) {
      EXPECT_GT(records[i].lsn, records[i - 1].lsn);
    }
  }
}

TEST_F(WalTest, ReplayFromLsnSkipsPrefix) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  uint64_t third = 0;
  for (int i = 0; i < 5; ++i) {
    Result<uint64_t> lsn = (*wal)->Append(0, std::to_string(i));
    ASSERT_TRUE(lsn.ok());
    if (i == 2) third = *lsn;
  }
  int count = 0;
  ASSERT_TRUE((*wal)
                  ->Replay(third,
                           [&](const WalRecord&) -> Status {
                             ++count;
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(count, 3);
}

TEST_F(WalTest, SurvivesReopen) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(7, "persisted").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->next_lsn(), 2u);
  int count = 0;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord& rec) -> Status {
                             EXPECT_EQ(rec.payload, "persisted");
                             ++count;
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST_F(WalTest, TornTailIsDiscarded) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "complete").ok());
    ASSERT_TRUE((*wal)->Append(2, "will be torn").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Tear the last record's checksum.
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    ASSERT_EQ(::ftruncate(fileno(f), size - 3), 0);
    std::fclose(f);
  }
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  std::vector<std::string> payloads;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord& rec) -> Status {
                             payloads.push_back(rec.payload);
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(payloads, std::vector<std::string>{"complete"});
  // New appends start after the surviving prefix and replay cleanly.
  ASSERT_TRUE((*wal)->Append(3, "after recovery").ok());
  payloads.clear();
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord& rec) -> Status {
                             payloads.push_back(rec.payload);
                             return Status::OK();
                           })
                  .ok());
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[1], "after recovery");
}

TEST_F(WalTest, CorruptedBodyStopsReplayAtTear) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "aaaaaaaaaa").ok());
    ASSERT_TRUE((*wal)->Append(2, "bbbbbbbbbb").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  {
    // Flip a byte inside the second (final) record's payload.
    std::FILE* f = std::fopen(path_.c_str(), "r+");
    ASSERT_NE(f, nullptr);
    long second_payload = static_cast<long>(WriteAheadLog::kHeaderSize) +
                          (8 + 4 + 4 + 10 + 8) + (8 + 4 + 4) + 3;
    std::fseek(f, second_payload, SEEK_SET);
    std::fputc('X', f);
    std::fclose(f);
  }
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  int count = 0;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord&) -> Status {
                             ++count;
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST_F(WalTest, TruncateEmptiesLog) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(1, "x").ok());
  ASSERT_TRUE((*wal)->Truncate().ok());
  // Only the log header survives a truncation.
  EXPECT_EQ(*(*wal)->SizeBytes(), WriteAheadLog::kHeaderSize);
  int count = 0;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord&) -> Status {
                             ++count;
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(count, 0);
  // Appends after truncation work.
  EXPECT_TRUE((*wal)->Append(1, "fresh").ok());
}

TEST_F(WalTest, MidLogCorruptionIsReportedNotSwallowed) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "aaaaaaaaaa").ok());
    ASSERT_TRUE((*wal)->Append(2, "bbbbbbbbbb").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  {
    // Flip a byte inside the FIRST record's payload: the damage sits in
    // front of an intact record, so this is not a crash tear — committed
    // data was corrupted and recovery must say so.
    std::FILE* f = std::fopen(path_.c_str(), "r+");
    ASSERT_NE(f, nullptr);
    long first_payload =
        static_cast<long>(WriteAheadLog::kHeaderSize) + (8 + 4 + 4) + 3;
    std::fseek(f, first_payload, SEEK_SET);
    std::fputc('X', f);
    std::fclose(f);
  }
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_FALSE(wal.ok());
  EXPECT_TRUE(wal.status().IsCorruption()) << wal.status().ToString();
}

TEST_F(WalTest, LsnsContinueAcrossTruncateAndReopen) {
  uint64_t lsn_after_truncate = 0;
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*wal)->Append(1, "r" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*wal)->Sync().ok());
    ASSERT_TRUE((*wal)->Truncate().ok());
    lsn_after_truncate = (*wal)->next_lsn();
    EXPECT_EQ(lsn_after_truncate, 6u);
  }
  // Reopening an empty-but-truncated log must resume the sequence, not
  // restart at 1.
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->next_lsn(), lsn_after_truncate);
  Result<uint64_t> next = (*wal)->Append(1, "after");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, lsn_after_truncate);
}

TEST_F(WalTest, MinNextLsnBoundsFreshLog) {
  // A lost log file plus a checkpoint manifest hint must not let LSNs
  // regress below what the checkpoint already absorbed.
  auto wal = WriteAheadLog::Open(FileSystem::Default(), path_, 42);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->next_lsn(), 42u);
  Result<uint64_t> lsn = (*wal)->Append(1, "x");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 42u);
}

TEST_F(WalTest, RewindDropsUnsyncedSuffix) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(1, "keep").ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  uint64_t offset = (*wal)->append_offset();
  uint64_t lsn = (*wal)->next_lsn();
  ASSERT_TRUE((*wal)->Append(2, "doomed-1").ok());
  ASSERT_TRUE((*wal)->Append(2, "doomed-2").ok());
  ASSERT_TRUE((*wal)->RewindTo(offset, lsn).ok());
  EXPECT_EQ((*wal)->next_lsn(), lsn);
  std::vector<std::string> payloads;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord& rec) -> Status {
                             payloads.push_back(rec.payload);
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(payloads, std::vector<std::string>{"keep"});
  // The freed LSN is reused seamlessly.
  Result<uint64_t> reused = (*wal)->Append(3, "replacement");
  ASSERT_TRUE(reused.ok());
  EXPECT_EQ(*reused, lsn);
}

TEST_F(WalTest, EmptyPayloadAllowed) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(9, Slice("", 0)).ok());
  int count = 0;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](const WalRecord& rec) -> Status {
                             EXPECT_TRUE(rec.payload.empty());
                             EXPECT_EQ(rec.type, 9u);
                             ++count;
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace temporadb
