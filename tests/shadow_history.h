#ifndef TEMPORADB_TESTS_SHADOW_HISTORY_H_
#define TEMPORADB_TESTS_SHADOW_HISTORY_H_

// In-memory shadow-history oracle, shared by the crash-recovery sweeps
// (tests/crash_recovery_test.cpp) and the workload differential driver
// (src/workload/driver.cpp).  The pattern: replay the acknowledged prefix
// of a deterministic statement stream into a second, independently-clocked
// in-memory database, then demand the system under test expose the same
// relations with the same *coalesced* bitemporal content.  Coalescing
// before comparison makes the check representation-independent: the shadow
// may fragment value-equivalent versions differently (checkpoint
// compaction, partitioning, correction order) without that counting as a
// divergence.
//
// Header-only and gtest-free so that non-test harnesses (the workload
// driver, benches) can link it without pulling in a test framework.

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "temporal/coalesce.h"
#include "txn/clock.h"

namespace temporadb {
namespace testutil {

/// One step of a deterministic workload: an optional clock date, a TQuel
/// statement, and whether a checkpoint follows.  By convention step 0
/// creates the relation and step 1 declares the tuple-variable range
/// (ranges are per-session and must be re-declared after recovery).
struct ShadowStep {
  std::string date;
  std::string stmt;
  bool checkpoint_after = false;
  bool compact = false;
};

/// Replays `steps[0..acked)` into `db`, setting `clock` to each step's date
/// first.  Checkpoint markers are ignored: the shadow is the logical
/// history, not the storage layout.  Returns the first failure, annotated
/// with the offending statement.
inline Status ApplyShadowSteps(Database* db, ManualClock* clock,
                               const std::vector<ShadowStep>& steps,
                               size_t acked) {
  const size_t n = acked < steps.size() ? acked : steps.size();
  for (size_t i = 0; i < n; ++i) {
    if (!steps[i].date.empty()) {
      TDB_RETURN_IF_ERROR(clock->SetDate(steps[i].date));
    }
    Result<tquel::ExecResult> r = db->Execute(steps[i].stmt);
    if (!r.ok()) {
      return Status::InvalidArgument("shadow step " + std::to_string(i) +
                                     " failed: " + r.status().ToString() +
                                     " [" + steps[i].stmt + "]");
    }
  }
  return Status::OK();
}

/// The coalesced canonical bitemporal content of one relation: every stored
/// version, value-adjacent fragments merged.
inline Result<std::vector<BitemporalTuple>> CanonicalHistory(
    Database* db, const std::string& name) {
  Result<StoredRelation*> rel = db->GetRelation(name);
  if (!rel.ok()) return rel.status();
  std::vector<BitemporalTuple> tuples;
  (*rel)->store()->ForEach(
      [&](RowId, const BitemporalTuple& t) { tuples.push_back(t); });
  return Coalesce(std::move(tuples));
}

/// True when both databases hold the same relations with identical
/// coalesced bitemporal content.  On divergence fills `*diff` (if non-null)
/// with the first differing relation and tuple.
inline bool EquivalentDatabases(Database* a, Database* b, std::string* diff) {
  std::vector<RelationInfo> ra = a->ListRelations();
  std::vector<RelationInfo> rb = b->ListRelations();
  if (ra.size() != rb.size()) {
    if (diff != nullptr) {
      *diff = "relation count: " + std::to_string(ra.size()) + " vs " +
              std::to_string(rb.size());
    }
    return false;
  }
  for (const RelationInfo& info : rb) {
    Result<std::vector<BitemporalTuple>> ca = CanonicalHistory(a, info.name);
    Result<std::vector<BitemporalTuple>> cb = CanonicalHistory(b, info.name);
    if (!ca.ok() || !cb.ok()) {
      if (diff != nullptr) *diff = "relation " + info.name + " missing";
      return false;
    }
    if (*ca == *cb) continue;
    if (diff != nullptr) {
      *diff = "relation " + info.name + ": " + std::to_string(ca->size()) +
              " vs " + std::to_string(cb->size()) + " coalesced tuples";
      const size_t n = ca->size() < cb->size() ? ca->size() : cb->size();
      for (size_t i = 0; i < n; ++i) {
        if ((*ca)[i] == (*cb)[i]) continue;
        *diff += "; first divergence at " + std::to_string(i) + ": " +
                 (*ca)[i].ToString() + " vs " + (*cb)[i].ToString();
        break;
      }
    }
    return false;
  }
  return true;
}

}  // namespace testutil
}  // namespace temporadb

#endif  // TEMPORADB_TESTS_SHADOW_HISTORY_H_
