#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/strings.h"

namespace temporadb {
namespace {

TEST(Strings, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("ReTrIeVe"), "retrieve");
  EXPECT_EQ(ToLowerAscii(""), "");
  EXPECT_EQ(ToLowerAscii("a_b-1"), "a_b-1");
}

TEST(Strings, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("WHERE", "where"));
  EXPECT_FALSE(EqualsIgnoreCase("where", "wher"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(Strings, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(Strings, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(Strings, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
}

TEST(Strings, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%s", std::string(500, 'a').c_str()),
            std::string(500, 'a'));
}

TEST(Slice, BasicsAndEquality) {
  std::string s = "hello world";
  Slice a(s);
  EXPECT_EQ(a.size(), 11u);
  EXPECT_EQ(a[4], 'o');
  Slice b("hello world");
  EXPECT_EQ(a, b);
  b.RemovePrefix(6);
  EXPECT_EQ(b.ToString(), "world");
  EXPECT_NE(a, b);
  EXPECT_EQ(Slice(), Slice(""));
  EXPECT_TRUE(Slice().empty());
}

TEST(Coding, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed32(&buf, 0);
  std::string_view in = buf;
  uint32_t a, b;
  ASSERT_TRUE(GetFixed32(&in, &a));
  ASSERT_TRUE(GetFixed32(&in, &b));
  EXPECT_EQ(a, 0xDEADBEEFu);
  EXPECT_EQ(b, 0u);
  EXPECT_FALSE(GetFixed32(&in, &a));  // Exhausted.
}

TEST(Coding, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  std::string_view in = buf;
  uint64_t v;
  ASSERT_TRUE(GetFixed64(&in, &v));
  EXPECT_EQ(v, 0x0123456789ABCDEFull);
}

TEST(Coding, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "abc");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'z'));
  std::string_view in = buf;
  std::string_view a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a, "abc");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 1000u);
  EXPECT_TRUE(in.empty());
}

TEST(Coding, LengthPrefixedDetectsTruncation) {
  std::string buf;
  PutLengthPrefixed(&buf, "abcdef");
  buf.resize(buf.size() - 2);  // Tear the payload.
  std::string_view in = buf;
  std::string_view out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

TEST(Coding, ChecksumDiscriminates) {
  std::string a = "the quick brown fox";
  std::string b = "the quick brown fux";
  EXPECT_NE(Checksum64(a.data(), a.size()), Checksum64(b.data(), b.size()));
  EXPECT_EQ(Checksum64(a.data(), a.size()), Checksum64(a.data(), a.size()));
}

TEST(Random, DeterministicPerSeed) {
  Random a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Random, UniformBounds) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(10), 10u);
    int64_t v = r.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, NextName) {
  Random r(9);
  std::string name = r.NextName(8);
  EXPECT_EQ(name.size(), 8u);
  for (char c : name) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

}  // namespace
}  // namespace temporadb
