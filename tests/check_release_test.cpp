// TDB_INVARIANT_CHECK's whole contract is that it survives release builds;
// this binary is compiled with NDEBUG forced on (see tests/CMakeLists.txt)
// and proves (a) the check still aborts with its diagnostic, and (b) a bare
// assert() in the same TU compiles away — exactly the difference rule 5
// (invariant-check) of tools/tdb_lint.py exists to police.

#include <cassert>

#include <gtest/gtest.h>

#include "common/check.h"

#ifndef NDEBUG
#error "check_release_test must be compiled with NDEBUG; see tests/CMakeLists.txt"
#endif

namespace temporadb {
namespace {

TEST(CheckReleaseDeathTest, InvariantCheckFiresUnderNdebug) {
  EXPECT_DEATH(TDB_INVARIANT_CHECK(1 == 2, "must fire in release builds"),
               "temporadb invariant violated");
}

TEST(CheckReleaseTest, PassingInvariantIsSilent) {
  TDB_INVARIANT_CHECK(2 + 2 == 4, "never fires");
}

TEST(CheckReleaseTest, BareAssertCompilesOutUnderNdebug) {
  bool evaluated = false;
  assert((evaluated = true));
  EXPECT_FALSE(evaluated);
}

}  // namespace
}  // namespace temporadb
