// The workload suite's CI tier: the seeded HR/payroll generator must be
// byte-deterministic, and the mixed-phase driver — serialized writer +
// concurrent snapshot readers — must stay bit-identical to the in-memory
// shadow history across {row, batch, snapshot} execution paths × {1, N}
// threads × partition sizes, with the ScanStats accounting identity
// holding at every sync point.  `TDB_WORKLOAD_SMALL` shrinks the run for
// the sanitizer jobs; the full-size version of this harness is
// bench/bench_workload.cpp.

#include <gtest/gtest.h>

#include <cstdlib>

#include "workload/driver.h"
#include "workload/generator.h"

namespace temporadb {
namespace workload {
namespace {

bool SmallTier() { return std::getenv("TDB_WORKLOAD_SMALL") != nullptr; }

WorkloadOptions TestGen() {
  WorkloadOptions g;
  g.seed = 20260809;
  g.employees = SmallTier() ? 96 : 160;
  g.departments = 8;
  g.ops = SmallTier() ? 700 : 1500;
  return g;
}

DriverOptions TestDriver(uint32_t partition_rows) {
  DriverOptions d;
  d.gen = TestGen();
  d.store.partition_rows = partition_rows;
  d.sync_every = SmallTier() ? 250 : 400;
  d.reader_threads = 2;
  d.queries_per_class = 3;
  d.verify_threads = 3;
  d.deep_check_every = 2;
  return d;
}

TEST(WorkloadGeneratorTest, SameSeedSameStream) {
  const WorkloadOptions g = TestGen();
  const std::vector<WorkloadOp> ddl_a = WorkloadDdl(g);
  const std::vector<WorkloadOp> ddl_b = WorkloadDdl(g);
  ASSERT_EQ(ddl_a.size(), ddl_b.size());
  WorkloadGenerator a(g);
  WorkloadGenerator b(g);
  const std::vector<WorkloadOp> seed_a = a.SeedOps();
  const std::vector<WorkloadOp> seed_b = b.SeedOps();
  ASSERT_EQ(seed_a.size(), seed_b.size());
  uint64_t ha = kDigestSeed;
  uint64_t hb = kDigestSeed;
  for (size_t i = 0; i < seed_a.size(); ++i) {
    EXPECT_EQ(seed_a[i].day, seed_b[i].day);
    ASSERT_EQ(seed_a[i].stmt, seed_b[i].stmt) << "seed op " << i;
    ha = DigestOp(ha, seed_a[i]);
    hb = DigestOp(hb, seed_b[i]);
  }
  WorkloadOp oa;
  WorkloadOp ob;
  size_t n = 0;
  while (a.Next(&oa)) {
    ASSERT_TRUE(b.Next(&ob));
    EXPECT_EQ(oa.day, ob.day);
    ASSERT_EQ(oa.stmt, ob.stmt) << "op " << n;
    ha = DigestOp(ha, oa);
    hb = DigestOp(hb, ob);
    ++n;
  }
  EXPECT_FALSE(b.Next(&ob));
  EXPECT_EQ(n, g.ops);
  EXPECT_EQ(ha, hb);
}

TEST(WorkloadGeneratorTest, QueriesDeterministicPerClass) {
  const WorkloadOptions g = TestGen();
  for (QueryClass cls : kQueryClasses) {
    Random r1(7);
    Random r2(7);
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(MakeQuery(cls, &r1, g, 4200), MakeQuery(cls, &r2, g, 4200));
    }
  }
}

TEST(WorkloadGeneratorTest, ZipfSkewsTowardsRankZero) {
  Random rng(11);
  const Zipf zipf(1000, 0.99);
  size_t top = 0;
  const size_t draws = 20000;
  for (size_t i = 0; i < draws; ++i) {
    if (zipf.Sample(&rng) < 10) ++top;
  }
  // Under uniform, ranks 0..9 would take ~1% of the draws; under
  // Zipf(0.99) they take the majority.
  EXPECT_GT(top, draws / 3);
  const Zipf uniform(1000, 0.0);
  size_t utop = 0;
  for (size_t i = 0; i < draws; ++i) {
    if (uniform.Sample(&rng) < 10) ++utop;
  }
  EXPECT_LT(utop, draws / 10);
}

// Satellite: the committed operation stream (and so its digest) is a pure
// function of the seed — the reader thread count must not bleed into it.
TEST(WorkloadDriverTest, DigestInvariantAcrossReaderThreadCounts) {
  uint64_t digest = 0;
  bool first = true;
  for (const size_t readers : {size_t{1}, size_t{2}}) {
    SCOPED_TRACE("readers=" + std::to_string(readers));
    DriverOptions d = TestDriver(1024);
    d.gen.ops = SmallTier() ? 250 : 500;
    d.sync_every = SmallTier() ? 125 : 250;
    d.reader_threads = readers;
    WorkloadDriver driver(d);
    const Status st = driver.Run();
    ASSERT_TRUE(st.ok()) << st.ToString();
    const WorkloadReport& r = driver.report();
    EXPECT_EQ(r.mismatches, 0u)
        << (r.mismatch_samples.empty() ? "" : r.mismatch_samples[0]);
    if (first) {
      digest = r.ops_digest;
      first = false;
    } else {
      EXPECT_EQ(digest, r.ops_digest);
    }
  }
}

// The tentpole: a mixed-phase run with >= 2 concurrent snapshot readers
// during sustained writes, checked differentially against the shadow at
// every sync point across execution paths, at two partition sizes.  The
// stream digest must be partition-invariant, the ScanStats identity must
// hold, and with small partitions the synopses must actually prune.
TEST(WorkloadDriverTest, DifferentialAcrossPartitionSizes) {
  uint64_t digest = 0;
  bool first = true;
  for (const uint32_t partition_rows : {127u, 4096u}) {
    SCOPED_TRACE("partition_rows=" + std::to_string(partition_rows));
    WorkloadDriver driver(TestDriver(partition_rows));
    const Status st = driver.Run();
    ASSERT_TRUE(st.ok()) << st.ToString();
    const WorkloadReport& r = driver.report();
    EXPECT_EQ(r.mismatches, 0u)
        << (r.mismatch_samples.empty() ? "" : r.mismatch_samples[0]);
    EXPECT_TRUE(r.stats_identity_ok);
    EXPECT_EQ(r.parts_considered, r.parts_pruned_tt + r.parts_pruned_vt +
                                      r.parts_pruned_snapshot +
                                      r.parts_scanned);
    EXPECT_GE(r.sync_points, 2u);
    EXPECT_GT(r.oracle_queries, 0u);
    EXPECT_GT(r.oracle_paths_checked, r.oracle_queries);
    EXPECT_GT(r.deep_checks, 0u);
    EXPECT_GT(r.reader_pins, 0u);
    EXPECT_GT(r.reader_queries, 0u);
    for (QueryClass cls : kQueryClasses) {
      const auto it = r.latency.find(QueryClassName(cls));
      ASSERT_NE(it, r.latency.end()) << QueryClassName(cls);
      EXPECT_GT(it->second.count, 0u) << QueryClassName(cls);
    }
    if (partition_rows == 127) {
      EXPECT_GT(r.parts_considered, 0u);
      EXPECT_GT(
          r.parts_pruned_tt + r.parts_pruned_vt + r.parts_pruned_snapshot, 0u);
    }
    if (first) {
      digest = r.ops_digest;
      first = false;
    } else {
      EXPECT_EQ(digest, r.ops_digest);
    }
  }
}

}  // namespace
}  // namespace workload
}  // namespace temporadb
