#include "temporal/snapshot.h"

#include <gtest/gtest.h>

#include "tests/relation_test_util.h"

namespace temporadb {
namespace {

class SnapshotTest : public testutil::RelationFixture {};

TEST_F(SnapshotTest, RollbackSliceEmptyStore) {
  MakeRelation(TemporalClass::kRollback);
  StaticState state = RollbackSlice(*relation_->store(), Chronon(100));
  EXPECT_TRUE(state.rows.empty());
  EXPECT_TRUE(TransactionBoundaries(*relation_->store()).empty());
}

TEST_F(SnapshotTest, TransactionBoundariesAreSortedAndDistinct) {
  MakeRelation(TemporalClass::kRollback);
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  ASSERT_TRUE(Append("03/01/80", "b", "2").ok());
  ASSERT_TRUE(Delete("02/01/80", "nobody").ok());  // No boundary (0 rows).
  ASSERT_TRUE(Replace("04/01/80", "a", "9").ok());
  std::vector<Chronon> boundaries =
      TransactionBoundaries(*relation_->store());
  ASSERT_EQ(boundaries.size(), 3u);
  EXPECT_EQ(boundaries[0], Day("01/01/80"));
  EXPECT_EQ(boundaries[1], Day("03/01/80"));
  EXPECT_EQ(boundaries[2], Day("04/01/80"));
}

TEST_F(SnapshotTest, RollbackSliceEqualsReplayedPrefix) {
  MakeRelation(TemporalClass::kRollback);
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  ASSERT_TRUE(Append("02/01/80", "b", "2").ok());
  ASSERT_TRUE(Replace("03/01/80", "a", "3").ok());
  ASSERT_TRUE(Delete("04/01/80", "b").ok());

  StaticState s1 = RollbackSlice(*relation_->store(), Day("01/15/80"));
  ASSERT_EQ(s1.rows.size(), 1u);
  EXPECT_EQ(s1.rows[0][1].AsString(), "1");

  StaticState s3 = RollbackSlice(*relation_->store(), Day("03/15/80"));
  ASSERT_EQ(s3.rows.size(), 2u);

  StaticState s4 = RollbackSlice(*relation_->store(), Day("04/15/80"));
  ASSERT_EQ(s4.rows.size(), 1u);
  EXPECT_EQ(s4.rows[0][0].AsString(), "a");
  EXPECT_EQ(s4.rows[0][1].AsString(), "3");
}

TEST_F(SnapshotTest, ValidTimesliceUsesCurrentStateOnly) {
  MakeRelation(TemporalClass::kTemporal);
  ASSERT_TRUE(Append("01/01/80", "Tom", "full", Since("01/01/80")).ok());
  ASSERT_TRUE(Replace("02/01/80", "Tom", "associate",
                      Since("01/01/80")).ok());
  // The superseded "full" version covers the same valid chronons but must
  // not appear in a slice of current knowledge.
  StaticState slice = ValidTimeslice(*relation_->store(), Day("06/01/80"));
  ASSERT_EQ(slice.rows.size(), 1u);
  EXPECT_EQ(slice.rows[0][1].AsString(), "associate");
}

TEST_F(SnapshotTest, ValidBoundaries) {
  MakeRelation(TemporalClass::kHistorical);
  ASSERT_TRUE(Append("01/01/80", "a", "1",
                     Between("01/01/80", "01/01/81")).ok());
  ASSERT_TRUE(Append("01/01/80", "b", "2", Since("06/01/80")).ok());
  std::vector<Chronon> boundaries = ValidBoundaries(*relation_->store());
  ASSERT_EQ(boundaries.size(), 3u);  // 01/01/80, 06/01/80, 01/01/81.
  EXPECT_EQ(boundaries[1], Day("06/01/80"));
}

TEST_F(SnapshotTest, HistoricalStateAsOf) {
  MakeRelation(TemporalClass::kTemporal);
  ASSERT_TRUE(Append("01/01/80", "a", "1").ok());
  ASSERT_TRUE(Delete("03/01/80", "a", Period::All()).ok());
  HistoricalState before =
      HistoricalStateAsOf(*relation_->store(), Day("02/01/80"));
  ASSERT_EQ(before.rows.size(), 1u);
  EXPECT_EQ(before.rows[0].valid, Since("01/01/80"));
  HistoricalState after =
      HistoricalStateAsOf(*relation_->store(), Day("04/01/80"));
  EXPECT_TRUE(after.rows.empty());
}

TEST_F(SnapshotTest, HistoricalSlicesOfHistoricalRelation) {
  MakeRelation(TemporalClass::kHistorical);
  ASSERT_TRUE(Append("01/01/80", "Merrie", "associate",
                     Between("09/01/77", "12/01/82")).ok());
  ASSERT_TRUE(Append("01/01/80", "Merrie", "full", Since("12/01/82")).ok());
  std::vector<StaticState> slices = HistoricalSlices(*relation_->store());
  // Boundaries: 09/01/77, 12/01/82.
  ASSERT_EQ(slices.size(), 2u);
  ASSERT_EQ(slices[0].rows.size(), 1u);
  EXPECT_EQ(slices[0].rows[0][1].AsString(), "associate");
  ASSERT_EQ(slices[1].rows.size(), 1u);
  EXPECT_EQ(slices[1].rows[0][1].AsString(), "full");
}

}  // namespace
}  // namespace temporadb
