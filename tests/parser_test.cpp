#include "tquel/parser.h"

#include <gtest/gtest.h>

namespace temporadb {
namespace tquel {
namespace {

template <typename T>
T Get(std::string_view src) {
  Result<Statement> stmt = ParseOne(src);
  EXPECT_TRUE(stmt.ok()) << src << " -> " << stmt.status().ToString();
  EXPECT_TRUE(std::holds_alternative<T>(*stmt)) << src;
  return std::get<T>(*stmt);
}

TEST(Parser, CreateDefaultsToStatic) {
  CreateStmt s = Get<CreateStmt>(
      "create relation faculty (name = string, rank = string)");
  EXPECT_EQ(s.temporal_class, TemporalClass::kStatic);
  EXPECT_EQ(s.data_model, TemporalDataModel::kInterval);
  EXPECT_EQ(s.name, "faculty");
  ASSERT_EQ(s.attributes.size(), 2u);
  EXPECT_EQ(s.attributes[0].first, "name");
  EXPECT_EQ(s.attributes[1].second, "string");
  EXPECT_FALSE(s.persistent);
}

TEST(Parser, CreateAllClasses) {
  EXPECT_EQ(Get<CreateStmt>("create static relation r (a = int)")
                .temporal_class,
            TemporalClass::kStatic);
  EXPECT_EQ(Get<CreateStmt>("create rollback relation r (a = int)")
                .temporal_class,
            TemporalClass::kRollback);
  EXPECT_EQ(Get<CreateStmt>("create historical relation r (a = int)")
                .temporal_class,
            TemporalClass::kHistorical);
  EXPECT_EQ(Get<CreateStmt>("create temporal relation r (a = int)")
                .temporal_class,
            TemporalClass::kTemporal);
}

TEST(Parser, CreateEventAndPersistent) {
  CreateStmt s = Get<CreateStmt>(
      "create persistent temporal event relation promotion "
      "(name = string, effective = date)");
  EXPECT_TRUE(s.persistent);
  EXPECT_EQ(s.data_model, TemporalDataModel::kEvent);
}

TEST(Parser, Destroy) {
  EXPECT_EQ(Get<DestroyStmt>("destroy faculty").name, "faculty");
}

TEST(Parser, Range) {
  RangeStmt s = Get<RangeStmt>("range of f is faculty");
  EXPECT_EQ(s.variable, "f");
  EXPECT_EQ(s.relation, "faculty");
}

TEST(Parser, Show) {
  EXPECT_EQ(Get<ShowStmt>("show faculty").relation, "faculty");
}

TEST(Parser, RetrieveSimple) {
  RetrieveStmt s = Get<RetrieveStmt>(
      "retrieve (f.rank) where f.name = \"Merrie\"");
  ASSERT_EQ(s.targets.size(), 1u);
  EXPECT_EQ(s.targets[0].name, "rank");
  EXPECT_EQ(s.targets[0].expr->kind, AstExprKind::kColumn);
  EXPECT_EQ(s.targets[0].expr->variable, "f");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->ToString(), "(f.name = \"Merrie\")");
  EXPECT_FALSE(s.valid.has_value());
  EXPECT_EQ(s.when, nullptr);
  EXPECT_FALSE(s.as_of.has_value());
}

TEST(Parser, RetrieveNamedTargetsAndInto) {
  RetrieveStmt s = Get<RetrieveStmt>(
      "retrieve into result (who = f.name, doubled = f.salary * 2)");
  ASSERT_TRUE(s.into.has_value());
  EXPECT_EQ(*s.into, "result");
  ASSERT_EQ(s.targets.size(), 2u);
  EXPECT_EQ(s.targets[0].name, "who");
  EXPECT_EQ(s.targets[1].name, "doubled");
  EXPECT_EQ(s.targets[1].expr->kind, AstExprKind::kBinary);
}

TEST(Parser, RetrieveUnnamedExpressionRejected) {
  EXPECT_FALSE(ParseOne("retrieve (f.salary * 2)").ok());
}

TEST(Parser, PaperTemporalQuery) {
  RetrieveStmt s = Get<RetrieveStmt>(
      "retrieve (f1.rank) where f1.name = \"Merrie\" and f2.name = \"Tom\" "
      "when f1 overlap start of f2 as of \"12/10/82\"");
  ASSERT_NE(s.when, nullptr);
  EXPECT_EQ(s.when->kind, AstTemporalPredKind::kOverlap);
  EXPECT_EQ(s.when->left_expr->kind, AstTemporalExprKind::kVar);
  EXPECT_EQ(s.when->right_expr->kind, AstTemporalExprKind::kBeginOf);
  ASSERT_TRUE(s.as_of.has_value());
  EXPECT_EQ(s.as_of->at->kind, AstTemporalExprKind::kDate);
  EXPECT_EQ(s.as_of->at->name, "12/10/82");
  EXPECT_EQ(s.as_of->through, nullptr);
}

TEST(Parser, AsOfThrough) {
  RetrieveStmt s = Get<RetrieveStmt>(
      "retrieve (f.rank) as of \"01/01/80\" through \"01/01/81\"");
  ASSERT_TRUE(s.as_of.has_value());
  ASSERT_NE(s.as_of->through, nullptr);
  EXPECT_EQ(s.as_of->through->name, "01/01/81");
}

TEST(Parser, ValidClauseForms) {
  RetrieveStmt from_to = Get<RetrieveStmt>(
      "retrieve (f.rank) valid from begin of f to end of f");
  ASSERT_TRUE(from_to.valid.has_value());
  EXPECT_FALSE(from_to.valid->at);
  EXPECT_EQ(from_to.valid->from->kind, AstTemporalExprKind::kBeginOf);
  EXPECT_EQ(from_to.valid->to->kind, AstTemporalExprKind::kEndOf);

  RetrieveStmt at = Get<RetrieveStmt>("retrieve (f.rank) valid at begin of f");
  ASSERT_TRUE(at.valid.has_value());
  EXPECT_TRUE(at.valid->at);
}

TEST(Parser, WhenPredicateConnectives) {
  RetrieveStmt s = Get<RetrieveStmt>(
      "retrieve (a.x) when a precede b and not (b overlap c) or a equal c");
  ASSERT_NE(s.when, nullptr);
  // Or binds loosest.
  EXPECT_EQ(s.when->kind, AstTemporalPredKind::kOr);
  EXPECT_EQ(s.when->left_pred->kind, AstTemporalPredKind::kAnd);
  EXPECT_EQ(s.when->left_pred->right_pred->kind, AstTemporalPredKind::kNot);
}

TEST(Parser, WhenParenthesizedExpressionOperand) {
  RetrieveStmt s = Get<RetrieveStmt>(
      "retrieve (a.x) when (a overlap b) precede c");
  ASSERT_NE(s.when, nullptr);
  EXPECT_EQ(s.when->kind, AstTemporalPredKind::kPrecede);
  EXPECT_EQ(s.when->left_expr->kind, AstTemporalExprKind::kOverlap);
}

TEST(Parser, WhenExtendInOperand) {
  RetrieveStmt s = Get<RetrieveStmt>(
      "retrieve (a.x) when a extend b overlap c");
  ASSERT_NE(s.when, nullptr);
  EXPECT_EQ(s.when->kind, AstTemporalPredKind::kOverlap);
  EXPECT_EQ(s.when->left_expr->kind, AstTemporalExprKind::kExtend);
}

TEST(Parser, Append) {
  AppendStmt s = Get<AppendStmt>(
      "append to faculty (name = \"Merrie\", rank = \"associate\") "
      "valid from \"09/01/77\" to \"inf\"");
  EXPECT_EQ(s.relation, "faculty");
  ASSERT_EQ(s.assignments.size(), 2u);
  EXPECT_EQ(s.assignments[0].first, "name");
  ASSERT_TRUE(s.valid.has_value());
  EXPECT_FALSE(s.valid->at);
}

TEST(Parser, AppendRejectsWhere) {
  EXPECT_FALSE(
      ParseOne("append to r (a = 1) where a = 2").ok());
}

TEST(Parser, DeleteWithClauses) {
  DeleteStmt s = Get<DeleteStmt>(
      "delete f where f.name = \"Mike\" valid from \"03/01/84\" to \"inf\"");
  EXPECT_EQ(s.variable, "f");
  ASSERT_NE(s.where, nullptr);
  ASSERT_TRUE(s.valid.has_value());
}

TEST(Parser, ClausesInAnyOrder) {
  DeleteStmt s = Get<DeleteStmt>(
      "delete f valid from \"03/01/84\" to \"inf\" where f.name = \"Mike\"");
  ASSERT_NE(s.where, nullptr);
  ASSERT_TRUE(s.valid.has_value());
}

TEST(Parser, DuplicateClauseRejected) {
  EXPECT_FALSE(ParseOne("retrieve (f.x) where a = 1 where b = 2").ok());
  EXPECT_FALSE(
      ParseOne("retrieve (f.x) as of \"1/1/80\" as of \"1/1/81\"").ok());
}

TEST(Parser, Replace) {
  ReplaceStmt s = Get<ReplaceStmt>(
      "replace f (rank = \"full\") valid from \"12/01/82\" to \"inf\" "
      "where f.name = \"Merrie\"");
  EXPECT_EQ(s.variable, "f");
  ASSERT_EQ(s.assignments.size(), 1u);
  EXPECT_EQ(s.assignments[0].first, "rank");
  ASSERT_NE(s.where, nullptr);
}

TEST(Parser, Correct) {
  CorrectStmt s = Get<CorrectStmt>("correct x where x.name = \"c\"");
  EXPECT_EQ(s.variable, "x");
  ASSERT_NE(s.where, nullptr);
}

TEST(Parser, ArithmeticPrecedence) {
  RetrieveStmt s =
      Get<RetrieveStmt>("retrieve (y = a + b * c) where a + b < c * 2");
  EXPECT_EQ(s.targets[0].expr->ToString(), "(a + (b * c))");
  EXPECT_EQ(s.where->ToString(), "((a + b) < (c * 2))");
}

TEST(Parser, UnaryMinus) {
  RetrieveStmt s = Get<RetrieveStmt>("retrieve (y = -5 + a)");
  EXPECT_EQ(s.targets[0].expr->ToString(), "((0 - 5) + a)");
}

TEST(Parser, LogicalPrecedenceInWhere) {
  RetrieveStmt s = Get<RetrieveStmt>(
      "retrieve (f.x) where a = 1 or b = 2 and c = 3");
  EXPECT_EQ(s.where->op, AstBinaryOp::kOr);
}

TEST(Parser, MultipleStatements) {
  Result<std::vector<Statement>> stmts = Parse(
      "range of f is faculty; retrieve (f.rank); destroy faculty");
  ASSERT_TRUE(stmts.ok());
  EXPECT_EQ(stmts->size(), 3u);
}

TEST(Parser, StatementsWithoutSemicolons) {
  Result<std::vector<Statement>> stmts = Parse(
      "range of f is faculty\nretrieve (f.rank)");
  ASSERT_TRUE(stmts.ok());
  EXPECT_EQ(stmts->size(), 2u);
}

TEST(Parser, ErrorsCarryPosition) {
  Result<Statement> bad = ParseOne("retrieve f.rank)");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsParseError());
  EXPECT_NE(bad.status().message().find("line 1"), std::string::npos);
}

TEST(Parser, GarbageRejected) {
  EXPECT_FALSE(ParseOne("frobnicate the database").ok());
  EXPECT_FALSE(ParseOne("retrieve").ok());
  EXPECT_FALSE(ParseOne("create relation ()").ok());
  EXPECT_FALSE(ParseOne("range of x").ok());
}

TEST(Parser, RoundTripThroughToString) {
  const char* sources[] = {
      "retrieve (f1.rank) where (f1.name = \"Merrie\") when (f1 overlap "
      "begin of f2) as of \"12/10/82\"",
      "append to faculty (name = \"Tom\") valid from \"12/05/82\" to "
      "\"inf\"",
      "replace f (rank = \"full\") valid from \"12/01/82\" to \"inf\" "
      "where (f.name = \"Merrie\")",
      "create temporal relation faculty (name = string, rank = string)",
      "range of f is faculty",
  };
  for (const char* src : sources) {
    Result<Statement> first = ParseOne(src);
    ASSERT_TRUE(first.ok()) << src;
    std::string printed = StatementToString(*first);
    Result<Statement> second = ParseOne(printed);
    ASSERT_TRUE(second.ok()) << printed;
    EXPECT_EQ(printed, StatementToString(*second)) << src;
  }
}

}  // namespace
}  // namespace tquel
}  // namespace temporadb
