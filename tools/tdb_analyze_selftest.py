#!/usr/bin/env python3
"""Self-test for tools/tdb_analyze.py.

Two layers:

1. Pure-python checks (always run, no clang needed): suppression-comment
   parsing, the shared `file:line: rule-name: message` output format
   (including byte-parity with tdb_lint.py's formatter), compile-command
   flag cleaning, and the content-keyed parse cache round-trip.

2. Fixture checks (need libclang): every `tools/analyze_fixtures/*.cpp`
   declares, on its first line, how it must be analyzed —

       // tdb-analyze-fixture: treat-as=<repo-rel-path> rules=<r1,r2>

   and marks its seeded violations with

       // EXPECT(rule): message-substring          (finding on this line)
       // EXPECT-LINE(N, rule): message-substring  (finding on line N)

   The analyzer must report EVERY expectation (zero false negatives on
   fixtures — this is the acceptance bar) and NOTHING else (zero false
   positives on fixtures).

Without libclang the fixture layer is skipped with a notice and the exit
is 0, so the self-test can run in minimal environments; CI passes
`--require-clang`, turning the skip into a failure.
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
FIXTURES = TOOLS / "analyze_fixtures"
sys.path.insert(0, str(TOOLS))

import tdb_analyze  # noqa: E402
import tdb_lint  # noqa: E402

DIRECTIVE_RE = re.compile(
    r"//\s*tdb-analyze-fixture:\s*treat-as=(\S+)\s+rules=(\S+)")
EXPECT_RE = re.compile(r"//\s*EXPECT\(([a-z0-9-]+)\):\s*(.+?)\s*$")
EXPECT_LINE_RE = re.compile(
    r"//\s*EXPECT-LINE\((\d+),\s*([a-z0-9-]+)\):\s*(.+?)\s*$")

FINDING_LINE_RE = re.compile(r"^[^:]+:\d+: [a-z0-9-]+: .+$")

failures: list[str] = []


def check(cond: bool, what: str):
    if cond:
        print(f"  ok: {what}")
    else:
        failures.append(what)
        print(f"  FAIL: {what}")


# ---------------------------------------------------------------------------
# Layer 1: pure-python
# ---------------------------------------------------------------------------

def test_suppression_parsing():
    print("suppression parsing:")
    text = "\n".join([
        "int a;",
        "// tdb-analyze-allow(chronon-arith): caller guarantees finite",
        "int b;",
        "int c;  // tdb-analyze-allow(kernel-purity): scratch is stack-like",
        "// tdb-analyze-allow(append-only):",
        "int d;",
    ])
    allowed, bad = tdb_analyze.scan_suppressions(text)
    check((2, "chronon-arith") in allowed and (3, "chronon-arith") in allowed,
          "reasoned suppression covers its own and the next line")
    check((4, "kernel-purity") in allowed,
          "trailing same-line suppression is recognized")
    check((3, "kernel-purity") not in allowed,
          "suppression is per-rule, not blanket")
    check(bad == [(5, "append-only")],
          "reason-less suppression is reported, not honored")
    check((5, "append-only") not in allowed and
          (6, "append-only") not in allowed,
          "reason-less suppression silences nothing")


def test_output_format():
    print("output format:")
    f = tdb_analyze.Finding("src/x.cpp", 12, "kernel-purity", "boxed Value")
    check(str(f) == "src/x.cpp:12: kernel-purity: boxed Value",
          "analyzer finding renders as file:line: rule-name: message")
    check(FINDING_LINE_RE.match(str(f)) is not None,
          "analyzer finding matches the machine-parseable pattern")
    lint_line = tdb_lint.format_finding("src/y.h", 3, "append-only", "bad")
    check(lint_line == "src/y.h:3: append-only: bad",
          "lint formatter emits the identical shared format")
    check(FINDING_LINE_RE.match(lint_line) is not None,
          "lint finding matches the machine-parseable pattern")


def test_clean_args():
    print("compile-command flag cleaning:")
    args = ["/usr/bin/c++", "-I/inc", "-std=gnu++20", "-o",
            "CMakeFiles/x.o", "-c", "/repo/src/a/foo.cpp"]
    out = tdb_analyze.clean_args(args, "/repo/src/a/foo.cpp")
    check(out == ["-I/inc", "-std=gnu++20"],
          "compiler, -c/-o, and the source path are stripped")


def test_cache_roundtrip():
    print("parse cache:")
    with tempfile.TemporaryDirectory() as td:
        tdp = Path(td)
        dep = tdp / "dep.h"
        dep.write_text("int x;\n")
        cache = tdp / "cache"
        key = tdb_analyze.tu_cache_key(["-std=c++20"], b"int main(){}",
                                       {"kernel-purity"})
        key2 = tdb_analyze.tu_cache_key(["-std=c++20"], b"int main(){}",
                                        {"kernel-purity"})
        key3 = tdb_analyze.tu_cache_key(["-std=c++20"], b"int main(){ }",
                                        {"kernel-purity"})
        key4 = tdb_analyze.tu_cache_key(["-std=c++20"], b"int main(){}",
                                        {"append-only"})
        check(key == key2, "cache key is deterministic")
        check(key != key3, "cache key changes with file content")
        check(key != key4, "cache key changes with the rule set")
        findings = [tdb_analyze.Finding("src/x.cpp", 1, "kernel-purity", "m")]
        sha = tdb_analyze.file_sha(str(dep))
        tdb_analyze.cache_store(cache, key, {str(dep): sha}, findings)
        hit = tdb_analyze.cache_lookup(cache, key)
        check(hit == [["src/x.cpp", 1, "kernel-purity", "m"]],
              "cache hit replays stored findings")
        dep.write_text("int y;\n")
        check(tdb_analyze.cache_lookup(cache, key) is None,
              "editing a dependency header invalidates the entry")


# ---------------------------------------------------------------------------
# Layer 2: fixtures (libclang)
# ---------------------------------------------------------------------------

def parse_fixture(path: Path):
    text = path.read_text()
    first = text.splitlines()[0] if text else ""
    m = DIRECTIVE_RE.search(first)
    if not m:
        raise ValueError(f"{path.name}: missing tdb-analyze-fixture "
                         "directive on line 1")
    treat_as, rules = m.group(1), set(m.group(2).split(","))
    expects = []  # (line, rule, substring)
    for lineno, line in enumerate(text.splitlines(), 1):
        em = EXPECT_RE.search(line)
        if em:
            expects.append((lineno, em.group(1), em.group(2)))
        lm = EXPECT_LINE_RE.search(line)
        if lm:
            expects.append((int(lm.group(1)), lm.group(2), lm.group(3)))
    return treat_as, rules, expects, text


def run_fixture(index, path: Path) -> None:
    treat_as, rules, expects, text = parse_fixture(path)
    flags = ["-x", "c++", "-std=c++17", f"-I{FIXTURES}"]
    findings, _ = tdb_analyze.analyze_one(
        index, str(path), flags, treat_as, rules, tdb_analyze.REPO, None)
    findings = tdb_analyze.dedupe_sorted(
        tdb_analyze.apply_suppressions(findings, {treat_as: text}))
    print(f"fixture {path.name} ({len(findings)} finding(s), "
          f"{len(expects)} expected):")

    unmatched_findings = list(findings)
    for line, rule, substr in expects:
        hit = next((f for f in unmatched_findings
                    if f.line == line and f.rule == rule
                    and substr in f.message), None)
        if hit is not None:
            unmatched_findings.remove(hit)
        check(hit is not None,
              f"{path.name}:{line} expects {rule} ~ {substr!r} "
              "(false negative if missing)")
    for f in unmatched_findings:
        check(False, f"{path.name}: unexpected finding (false positive): {f}")


def run_fixtures(require_clang: bool) -> None:
    ci = tdb_analyze.load_cindex()
    if ci is None:
        msg = (f"libclang unavailable "
               f"({tdb_analyze.cindex_unavailable_reason()}); "
               "fixture layer skipped")
        if require_clang:
            failures.append(msg)
            print(f"FAIL: {msg} but --require-clang was given")
        else:
            print(f"skip: {msg}")
        return
    index = ci.Index.create()
    fixtures = sorted(FIXTURES.glob("*.cpp"))
    if not fixtures:
        failures.append("no fixtures found")
        return
    for path in fixtures:
        try:
            run_fixture(index, path)
        except Exception as e:  # parse error in a fixture is a test failure
            failures.append(f"{path.name}: {e}")
            print(f"  FAIL: {path.name}: {e}")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--require-clang", action="store_true",
                    help="fail (instead of skip) when libclang is missing")
    args = ap.parse_args(argv)

    test_suppression_parsing()
    test_output_format()
    test_clean_args()
    test_cache_roundtrip()
    run_fixtures(args.require_clang)

    if failures:
        print(f"\ntdb_analyze_selftest: {len(failures)} failure(s)")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\ntdb_analyze_selftest: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
