#!/usr/bin/env python3
"""temporadb-specific static lint.

Checks repo invariants that neither the compiler nor clang-tidy can
express, because they are properties of *this* codebase's discipline:

  1. mutex-wrapper  — no bare std::mutex / std::lock_guard /
     std::unique_lock / std::condition_variable outside
     src/common/thread_annotations.h.  Every lock must be the annotated
     `temporadb::Mutex`, or Clang Thread Safety Analysis (-DTDB_ANALYZE=ON)
     silently loses sight of it.

  2. append-only    — the paper's §5 rule ("DBMS's supporting rollback are
     append-only") made structural: rollback_relation.* and
     temporal_relation.* may touch the version store only through the
     append-only mutation set (Append, CloseTxn).  PhysicalUpdate /
     PhysicalDelete / CorrectErase there would silently destroy recorded
     history.

  3. clause-matrix  — the TQuel clause-legality matrix in DESIGN.md §11.3
     (Figures 10-12 of the paper) must agree with the code: the
     SupportsValidTime / SupportsTransactionTime capability functions in
     src/catalog/temporal_class.h, and the analyzer's gating of
     when/valid/as-of in src/tquel/analyzer.cpp.

  4. kernel-purity  — the branch-free selection kernels (src/rel/kernels.*)
     operate on raw chronon columns and selection vectors only.  Boxed
     `Value`s, `Period` objects, or virtual dispatch in that layer would
     reintroduce exactly the per-row overhead the vectorized path exists to
     remove, and would do it silently (everything still passes the
     differential tests, just slower).

  5. invariant-check — no bare `assert(` on cross-thread visibility state
     in src/temporal or src/exec.  A plain assert compiles away in release
     builds, which is precisely where concurrent readers run; invariants
     over the MVCC coordination state (watermarks, commit sequences, the
     publish seqlock) must use TDB_INVARIANT_CHECK from common/check.h so
     they hold in every build mode.

  6. seal-discipline — the epoch-partition directory is append/seal-only.
     Writes to the sealed-partition state (`sealed_`, `sealed_rows_`,
     `sealed_count_`), atomic stores to a synopsis's mutable trio
     (current_rows / max_finite_tt_end / last_close_seq), and atomic
     stores to the sealed chronon columns (`col_*`) are each restricted
     to their sanctioned VersionStore entry points.  A write anywhere
     else would mutate a sealed partition without repatching its synopsis
     (silently unsounding pruning) or race pinned snapshot readers.

Findings are emitted in the `file:line: rule-name: message` format shared
with tools/tdb_analyze.py, so one consumer (CI annotation, editors) parses
both.  Rules 2, 4 and 6 have exact AST-level implementations in
tdb_analyze.py; `--ast auto` (the default) delegates them there when
libclang and compile_commands.json are available and falls back to the
regex versions here otherwise, `--ast on` requires the delegation, and
`--ast off` forces the regex path.

Exit status 0 when clean; 1 with one line per violation otherwise.
Run from anywhere: paths are resolved relative to the repo root.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

errors: list[str] = []


def format_finding(rel: object, lineno: int, rule: str, msg: str) -> str:
    """The one true finding format, byte-identical to tdb_analyze.py's."""
    return f"{rel}:{lineno}: {rule}: {msg}"


def err(path: Path, lineno: int, rule: str, msg: str) -> None:
    errors.append(format_finding(path.relative_to(REPO), lineno, rule, msg))


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string literals, preserving
    line structure so reported line numbers stay accurate."""

    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | 'str' | 'chr'
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = None
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Rule 1: no bare standard-library locking primitives outside the wrapper.
# --------------------------------------------------------------------------

BARE_LOCKING = re.compile(
    r"std\s*::\s*(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable)\b"
)
WRAPPER = SRC / "common" / "thread_annotations.h"


def check_mutex_wrapper() -> None:
    for path in sorted(SRC.rglob("*.h")) + sorted(SRC.rglob("*.cpp")):
        if path == WRAPPER:
            continue
        code = strip_comments(path.read_text())
        for lineno, line in enumerate(code.splitlines(), 1):
            m = BARE_LOCKING.search(line)
            if m:
                err(path, lineno, "mutex-wrapper",
                    f"bare std::{m.group(1)}; use the annotated "
                    "temporadb::Mutex/MutexLock/CondVar from "
                    "common/thread_annotations.h so -Wthread-safety "
                    "can see it")


# --------------------------------------------------------------------------
# Rule 2: append-only mutation set on rollback/temporal relations.
# --------------------------------------------------------------------------

# The version-store mutation entry points a kind with transaction time may
# NOT call: physical overwrites destroy recorded history (§4.2/§4.4: such
# relations are append-only; corrections are a historical-only concept).
FORBIDDEN_MUTATIONS = re.compile(
    r"\b(PhysicalDelete|PhysicalUpdate|RawPhysicalDelete|RawPhysicalUpdate|"
    r"CorrectErase)\b"
)
APPEND_ONLY_FILES = [
    SRC / "temporal" / "rollback_relation.h",
    SRC / "temporal" / "rollback_relation.cpp",
    SRC / "temporal" / "temporal_relation.h",
    SRC / "temporal" / "temporal_relation.cpp",
]


def check_append_only() -> None:
    for path in APPEND_ONLY_FILES:
        code = strip_comments(path.read_text())
        for lineno, line in enumerate(code.splitlines(), 1):
            m = FORBIDDEN_MUTATIONS.search(line)
            if m:
                err(path, lineno, "append-only",
                    f"{m.group(1)} on an append-only relation kind; "
                    "rollback/temporal relations may only Append and "
                    "CloseTxn (taxonomy §5: rollback DBMSs are append-only)")


# --------------------------------------------------------------------------
# Rule 3: clause-legality matrix in DESIGN.md == code.
# --------------------------------------------------------------------------

KINDS = ("static", "rollback", "historical", "temporal")
CLAUSES = ("where", "when", "valid", "as of")


def parse_design_matrix() -> dict[str, dict[str, bool]] | None:
    design = REPO / "DESIGN.md"
    text = design.read_text()
    m = re.search(
        r"<!-- tdb-lint:clause-matrix -->(.*?)<!-- /tdb-lint:clause-matrix -->",
        text, re.S)
    if not m:
        err(design, 1, "clause-matrix",
            "missing <!-- tdb-lint:clause-matrix --> table")
        return None
    matrix: dict[str, dict[str, bool]] = {}
    for row in m.group(1).splitlines():
        cells = [c.strip() for c in row.strip().strip("|").split("|")]
        if len(cells) != 5 or cells[0] not in KINDS:
            continue
        matrix[cells[0]] = {
            clause: cells[i + 1] == "yes"
            for i, clause in enumerate(CLAUSES)
        }
    missing = [k for k in KINDS if k not in matrix]
    if missing:
        err(design, 1, "clause-matrix",
            f"matrix rows missing for kind(s): {', '.join(missing)}")
        return None
    return matrix


def parse_capability(fn_name: str, text: str, path: Path) -> set[str] | None:
    """Extracts the set of TemporalClass enumerators for which the given
    constexpr capability function returns true, from its `c == kX || ...`
    body."""

    m = re.search(
        rf"constexpr\s+bool\s+{fn_name}\s*\(\s*TemporalClass\s+\w+\s*\)\s*"
        rf"\{{(.*?)\}}", text, re.S)
    if not m:
        err(path, 1, "clause-matrix", f"cannot find {fn_name}()")
        return None
    return set(re.findall(r"TemporalClass\s*::\s*k(\w+)", m.group(1)))


def check_clause_matrix() -> None:
    matrix = parse_design_matrix()
    if matrix is None:
        return

    tc_path = SRC / "catalog" / "temporal_class.h"
    tc_text = strip_comments(tc_path.read_text())
    valid_kinds = parse_capability("SupportsValidTime", tc_text, tc_path)
    txn_kinds = parse_capability("SupportsTransactionTime", tc_text, tc_path)
    if valid_kinds is None or txn_kinds is None:
        return

    for kind in KINDS:
        enum = kind.capitalize()
        legal = matrix[kind]
        # `where` is time-independent: legal for every kind by construction.
        if not legal["where"]:
            err(REPO / "DESIGN.md", 1, "clause-matrix",
                f"'where' marked illegal for {kind}; it is time-independent "
                "and must be legal for every kind")
        # when/valid <=> valid time; as of <=> transaction time.
        code_valid = enum in valid_kinds
        for clause in ("when", "valid"):
            if legal[clause] != code_valid:
                err(tc_path, 1, "clause-matrix",
                    f"DESIGN.md says '{clause}' is "
                    f"{'legal' if legal[clause] else 'illegal'} for {kind}, "
                    f"but SupportsValidTime(k{enum}) is {code_valid}")
        code_txn = enum in txn_kinds
        if legal["as of"] != code_txn:
            err(tc_path, 1, "clause-matrix",
                f"DESIGN.md says 'as of' is "
                f"{'legal' if legal['as of'] else 'illegal'} for {kind}, "
                f"but SupportsTransactionTime(k{enum}) is {code_txn}")

    # The analyzer must gate historical constructs on SupportsValidTime and
    # rollback on SupportsTransactionTime — not on hand-rolled kind lists
    # that could drift from the capability functions checked above.
    an_path = SRC / "tquel" / "analyzer.cpp"
    an_text = strip_comments(an_path.read_text())
    if not re.search(r"wants_valid\s*&&\s*!SupportsValidTime", an_text):
        err(an_path, 1, "clause-matrix",
            "analyzer no longer gates 'when'/'valid' with "
            "SupportsValidTime()")
    if not re.search(r"wants_asof\s*&&\s*!SupportsTransactionTime", an_text):
        err(an_path, 1, "clause-matrix",
            "analyzer no longer gates 'as of' with "
            "SupportsTransactionTime()")


# --------------------------------------------------------------------------
# Rule 4: the selection kernels stay free of boxed values and dispatch.
# --------------------------------------------------------------------------

KERNEL_FILES = [
    SRC / "rel" / "kernels.h",
    SRC / "rel" / "kernels.cpp",
]
KERNEL_IMPURITIES = re.compile(r"\b(Value|Period|virtual)\b")


def check_kernel_purity() -> None:
    for path in KERNEL_FILES:
        code = strip_comments(path.read_text())
        for lineno, line in enumerate(code.splitlines(), 1):
            m = KERNEL_IMPURITIES.search(line)
            if m:
                err(path, lineno, "kernel-purity",
                    f"{m.group(1)} in the kernel layer; kernels take raw "
                    "int64 chronon columns and uint32 selection vectors "
                    "only — box/dispatch above this layer, never inside it")


# --------------------------------------------------------------------------
# Rule 5: cross-thread invariants are checked in every build mode.
# --------------------------------------------------------------------------

# Identifiers that name state shared between the writer and snapshot
# readers.  An invariant over any of these guards a *concurrency* contract;
# a debug-only assert on one vanishes exactly where it matters (release
# builds running concurrent readers), which is the failure mode that
# motivated the snapshot-isolation rework.
CROSS_THREAD_IDENTS = re.compile(
    r"\b(mutation_epoch|committed_rows|close_seq|watermark|snap_seq|"
    r"publish_word|commit_seq|active_snapshots|correcting)\b"
)
BARE_ASSERT = re.compile(r"(?<![\w.])assert\s*\(")
INVARIANT_DIRS = [SRC / "temporal", SRC / "exec"]


def check_invariant_checks() -> None:
    for base in INVARIANT_DIRS:
        for path in sorted(base.rglob("*.h")) + sorted(base.rglob("*.cpp")):
            code = strip_comments(path.read_text())
            lines = code.splitlines()
            for lineno, line in enumerate(lines, 1):
                if not BARE_ASSERT.search(line):
                    continue
                # The assert's 3-line neighbourhood: the condition may wrap.
                lo = max(0, lineno - 2)
                window = "\n".join(lines[lo:lineno + 2])
                m = CROSS_THREAD_IDENTS.search(window)
                if m:
                    err(path, lineno, "invariant-check",
                        f"bare assert near cross-thread state "
                        f"'{m.group(1)}'; use TDB_INVARIANT_CHECK "
                        "(common/check.h) so the invariant survives "
                        "release builds where concurrent readers run")


# --------------------------------------------------------------------------
# Rule 6: sealed-partition state is written only by sanctioned entry points.
# --------------------------------------------------------------------------

# Three classes of sealed-state mutation, each with the closed set of
# VersionStore member functions allowed to perform it.  Everything else in
# the store must treat sealed partitions and their synopses as read-only:
# a stray write would desynchronize synopsis and rows (pruning then skips
# partitions that match) or race pinned snapshot readers.
SEAL_WRITE_RULES: list[tuple[str, re.Pattern[str], set[str]]] = [
    # The partition directory itself: grows at seal, shrinks only through
    # the writer-side undo/compaction/recovery paths.
    ("sealed-directory write",
     re.compile(r"sealed_\.(push_back|pop_back|Truncate|clear)\b"
                r"|sealed_rows_\s*[-+]?=[^=]"
                r"|sealed_count_\.\s*(store|fetch_add|fetch_sub|exchange)\b"
                r"|sealed_\[[^\]]*\]\s*=[^=]"),
     {"MaybeSealHot", "RawUnappend", "InstallSealedPartitions",
      "RepatchSealedSynopsis", "CompactTombstones"}),
    # The synopsis's mutable trio, maintained incrementally by the close /
    # reopen hooks (exact recomputation goes through RepatchSealedSynopsis,
    # which writes whole synopses and is covered by the directory rule).
    ("synopsis mutable-trio store",
     re.compile(r"mvcc::Store\w+\s*\(\s*&\s*\w+(->|\.)"
                r"(current_rows|max_finite_tt_end|last_close_seq)\b"),
     {"OnRowClosed", "OnRowReopened"}),
    # The shared chronon columns: once a row seals, its column cells may be
    # rewritten in place only by the transaction-time close and its
    # abort-time undo (everything else appends new cells or runs under the
    # correction fence through the Raw* correction entry points, which
    # rewrite via the container, not via atomic column stores).
    ("sealed chronon-column store",
     re.compile(r"mvcc::Store\w+\s*\(\s*&\s*col_\w+"),
     {"RawCloseTxn", "RawReopenTxn"}),
]

MEMBER_FN = re.compile(r"\bVersionStore\s*::\s*(\w+)\s*\(")


def check_seal_discipline() -> None:
    path = SRC / "temporal" / "version_store.cpp"
    code = strip_comments(path.read_text())
    depth = 0
    current: str | None = None   # Function whose body we are inside.
    pending: str | None = None   # Signature seen, body brace not yet open.
    base = 0                     # Brace depth just outside that body.
    for lineno, line in enumerate(code.splitlines(), 1):
        if current is None:
            m = MEMBER_FN.search(line)
            if m:
                pending = m.group(1)
                base = depth
        for label, pattern, allowed in SEAL_WRITE_RULES:
            if current in allowed:
                continue
            m = pattern.search(line)
            if m:
                where = current if current else "file scope"
                err(path, lineno, "seal-discipline",
                    f"{label} ('{m.group(0).strip()}') in {where}; only "
                    f"{', '.join(sorted(allowed))} may perform it — route "
                    "the mutation through a sanctioned entry point so the "
                    "synopsis stays consistent with the sealed rows")
        depth += line.count("{") - line.count("}")
        if current is None and pending is not None and depth > base:
            current = pending
            pending = None
        elif current is not None and depth <= base:
            current = None


# --------------------------------------------------------------------------
# AST delegation: rules 2/4/6 have exact semantic implementations in
# tdb_analyze.py (resolved symbols instead of spellings, so wrappers and
# aliases are caught).  When the analyzer can run, its verdict replaces the
# regex one; the regex path stays as the zero-dependency fallback.
# --------------------------------------------------------------------------

AST_DELEGATED_RULES = "append-only,seal-discipline,kernel-purity"
FINDING_LINE = re.compile(r"^[^:]+:\d+: [a-z0-9-]+: .+$")


def delegate_to_ast(build_dir: str) -> tuple[bool, str]:
    """Runs tdb_analyze.py over the delegated rules.  On success (analyzer
    ran, clean or with findings) appends its findings to `errors` and
    returns (True, "").  Returns (False, reason) when the analyzer cannot
    run here (no libclang, no compile_commands.json, ...)."""

    cmd = [sys.executable, str(REPO / "tools" / "tdb_analyze.py"),
           "-p", build_dir, "--rules", AST_DELEGATED_RULES]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              cwd=REPO, check=False)
    except OSError as e:
        return False, f"could not launch tdb_analyze.py: {e}"
    if proc.returncode in (0, 1):
        errors.extend(line for line in proc.stdout.splitlines()
                      if FINDING_LINE.match(line))
        return True, ""
    detail = (proc.stderr.strip() or proc.stdout.strip() or
              "no diagnostic").splitlines()[-1]
    return False, f"tdb_analyze.py exited {proc.returncode} ({detail})"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="temporadb-specific static lint")
    ap.add_argument(
        "--ast", choices=("auto", "on", "off"), default="auto",
        help="delegate rules 2/4/6 (append-only, seal-discipline, "
             "kernel-purity) to the AST analyzer: 'auto' uses it when "
             "libclang and compile_commands.json are available, 'on' "
             "fails if they are not, 'off' forces the regex path")
    ap.add_argument(
        "-p", "--build-dir", default=str(REPO / "build"), metavar="DIR",
        help="build directory containing compile_commands.json for the "
             "AST delegation (default: build)")
    args = ap.parse_args(argv)

    delegated = False
    if args.ast != "off":
        delegated, why = delegate_to_ast(args.build_dir)
        if not delegated:
            if args.ast == "on":
                print(f"tdb_lint: --ast on, but the AST analyzer cannot "
                      f"run: {why}", file=sys.stderr)
                return 2
            print(f"tdb_lint: note: AST delegation unavailable ({why}); "
                  "rules 2/4/6 use the regex fallback", file=sys.stderr)

    check_mutex_wrapper()
    if not delegated:
        check_append_only()
    check_clause_matrix()
    if not delegated:
        check_kernel_purity()
    check_invariant_checks()
    if not delegated:
        check_seal_discipline()
    if errors:
        for e in errors:
            print(e)
        print(f"tdb_lint: {len(errors)} violation(s)")
        return 1
    print("tdb_lint: OK"
          + (" (rules 2/4/6 via tdb_analyze)" if delegated else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
