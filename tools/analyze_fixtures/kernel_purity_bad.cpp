// tdb-analyze-fixture: treat-as=src/rel/kernels.h rules=kernel-purity
// Seeded violations: heap allocation, exception edges, virtual dispatch,
// and boxed temporal types inside the kernel layer.
#include "kernel_purity_types.h"

namespace temporadb {
namespace kernels {

size_t SelectBroken(const int64_t* begin, size_t n,
                    const Period& window,  // EXPECT(kernel-purity): boxed Period
                    const Comparator* cmp, uint32_t* sel) {
  (void)window;
  int64_t* scratch = new int64_t[n];  // EXPECT(kernel-purity): heap allocation (new)
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    if (cmp->LessThan(begin[i], 0)) {  // EXPECT(kernel-purity): virtual dispatch
      sel[k] = static_cast<uint32_t>(i);
      k = k + 1;
    }
  }
  if (n == 0) {
    throw 42;  // EXPECT(kernel-purity): throw
  }
  delete[] scratch;  // EXPECT(kernel-purity): delete
  return k;
}

}  // namespace kernels
}  // namespace temporadb
