// Boxed/virtual types used by the kernel-purity fixtures.  They live in
// this separate header so the *uses* inside the treated-as-kernel fixture
// are flagged, not these declarations themselves.
#ifndef TDB_ANALYZE_FIXTURE_KERNEL_PURITY_TYPES_H_
#define TDB_ANALYZE_FIXTURE_KERNEL_PURITY_TYPES_H_

#include "fixture_support.h"

namespace temporadb {

class Period {
 public:
  bool Overlaps(const Period& other) const;
};

struct Comparator {
  virtual bool LessThan(int64_t a, int64_t b) const;
  virtual ~Comparator();
};

}  // namespace temporadb

#endif  // TDB_ANALYZE_FIXTURE_KERNEL_PURITY_TYPES_H_
