// Self-contained stand-ins for the repo types the analyzer rules key on.
// Fixtures parse with NO system headers (the self-test must run on a bare
// libclang with no libstdc++ install), so everything std-shaped the rules
// recognize — atomics, memory orders, move — is declared here with the
// same *names and shapes* the analyzer matches on.  Declarations only
// where possible: bodies would themselves be subject to the rules.
#ifndef TDB_ANALYZE_FIXTURE_SUPPORT_H_
#define TDB_ANALYZE_FIXTURE_SUPPORT_H_

typedef long long int64_t;
typedef unsigned long long uint64_t;
typedef unsigned int uint32_t;
typedef unsigned long size_t;

namespace std {

enum memory_order {
  memory_order_relaxed,
  memory_order_consume,
  memory_order_acquire,
  memory_order_release,
  memory_order_acq_rel,
  memory_order_seq_cst,
};

template <class T>
struct atomic {
  atomic() = default;
  T load(memory_order order = memory_order_seq_cst) const;
  void store(T v, memory_order order = memory_order_seq_cst);
  T exchange(T v, memory_order order = memory_order_seq_cst);
  T fetch_add(T v, memory_order order = memory_order_seq_cst);
  T fetch_sub(T v, memory_order order = memory_order_seq_cst);
  T operator=(T v);
  T operator++(int);
  T operator--(int);
};

template <class T>
struct atomic_ref {
  explicit atomic_ref(T& obj);
  T load(memory_order order = memory_order_seq_cst) const;
  void store(T v, memory_order order = memory_order_seq_cst);
};

template <class T>
T&& move(T& v);

template <class T>
struct vector {
  void push_back(const T& v);
  void pop_back();
  void clear();
  T& operator[](size_t i);
  const T& operator[](size_t i) const;
  T* data();
  const T* data() const;
  size_t size() const;
};

}  // namespace std

namespace temporadb {

class Status {
 public:
  static Status OK();
  bool ok() const;
};

template <class T>
class Result {
 public:
  Result(T v);
  Result(Status s);
  bool ok() const;
  const Status& status() const;
  T& value();
};

class Chronon {
 public:
  using Rep = int64_t;
  static constexpr Rep kForeverRep = 9223372036854775807LL;
  static constexpr Rep kBeginningRep = -9223372036854775807LL - 1;
  constexpr explicit Chronon(Rep d) : days_(d) {}
  constexpr Rep days() const { return days_; }

 private:
  Rep days_;
};

// Element-atomic wrappers, declaration-only: the conformance rule checks
// *definitions*, which the wrapper fixtures provide themselves.
namespace mvcc {
int64_t LoadAcquire(const int64_t* p);
int64_t LoadRelaxed(const int64_t* p);
uint64_t LoadAcquire(const uint64_t* p);
uint64_t LoadRelaxed(const uint64_t* p);
void StoreRelease(int64_t* p, int64_t v);
void StoreRelaxed(int64_t* p, int64_t v);
void StoreRelease(uint64_t* p, uint64_t v);
void StoreRelaxed(uint64_t* p, uint64_t v);
}  // namespace mvcc

}  // namespace temporadb

#endif  // TDB_ANALYZE_FIXTURE_SUPPORT_H_
