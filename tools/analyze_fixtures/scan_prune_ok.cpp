// tdb-analyze-fixture: treat-as=src/temporal/version_store.cpp rules=scan-prune
// Clean control: every entry point reaches PruneRanges — directly, through
// the scan constructor, or through a helper — and geometry forms only
// after pruning.
#include "fixture_support.h"

namespace temporadb {

struct RowRange {
  size_t begin = 0;
  size_t end = 0;
};

struct SnapshotPin {
  uint64_t seq = 0;
  uint64_t rows = 0;
};

namespace exec {
void RangeChunks(const RowRange* ranges, size_t n);
}  // namespace exec

class VersionStore;

class VersionScan {
 public:
  explicit VersionScan(const VersionStore* store);

 private:
  const VersionStore* store_ = nullptr;
};

class VersionStore {
 public:
  void PruneRanges(RowRange* ranges, size_t n) const;
  VersionScan ScanAll() const;
  VersionScan ScanSnapshot(SnapshotPin pin) const;
  VersionScan BatchScanAll() const;
};

VersionScan::VersionScan(const VersionStore* store) : store_(store) {
  RowRange r;
  store->PruneRanges(&r, 1);
}

VersionScan VersionStore::ScanAll() const { return VersionScan(this); }

VersionScan VersionStore::ScanSnapshot(SnapshotPin pin) const {
  (void)pin;
  return VersionScan(this);
}

VersionScan VersionStore::BatchScanAll() const {
  RowRange r;
  PruneRanges(&r, 1);
  exec::RangeChunks(&r, 1);
  return VersionScan(this);
}

}  // namespace temporadb
