// tdb-analyze-fixture: treat-as=src/rel/temporal_ops.cpp rules=chronon-arith
// Clean control: comparisons on chronon values (not arithmetic), pointer
// arithmetic forming column windows (address math, not chronon math), and
// plain int64 arithmetic with no chronon operand.
#include "fixture_support.h"

namespace temporadb {

struct Columns {
  std::vector<int64_t> col_tt_end_;
};

bool Before(const Chronon& a, const Chronon& b) {
  return a.days() < b.days();
}

const int64_t* Window(Columns& c, size_t begin) {
  // Address math over a chronon column: the value domain is untouched.
  return c.col_tt_end_.data() + begin;
}

int64_t PlainMath(int64_t rows, int64_t width) {
  return rows * width + 1;
}

}  // namespace temporadb
