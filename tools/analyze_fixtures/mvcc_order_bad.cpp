// tdb-analyze-fixture: treat-as=src/core/database.cpp rules=mvcc-memory-order
// Seeded violations: defaulted seq_cst, wrong ordering for a sanctioned
// MVCC site, implicit-seq_cst operator sugar, and an mvcc:: wrapper whose
// body contradicts its name.
#include "fixture_support.h"

namespace temporadb {

struct MvccState {
  std::atomic<uint64_t> publish_word;
  std::atomic<uint64_t> commit_seq;
  std::atomic<int64_t> last_commit_ts;
  std::atomic<int64_t> active_snapshots;
  std::atomic<int64_t> correcting;
};

struct PartitionSynopsis {
  uint64_t current_rows = 0;
};

void PublishBroken(MvccState* mv, std::atomic<bool>& stop,
                   PartitionSynopsis& s) {
  mv->publish_word.fetch_add(1);  // EXPECT(mvcc-memory-order): publish_word
  mv->commit_seq.fetch_add(1, std::memory_order_relaxed);  // EXPECT(mvcc-memory-order): commit_seq
  mv->last_commit_ts.store(7, std::memory_order_relaxed);  // EXPECT(mvcc-memory-order): last_commit_ts
  mv->active_snapshots.load(std::memory_order_acquire);  // EXPECT(mvcc-memory-order): active_snapshots
  stop.store(true);  // EXPECT(mvcc-memory-order): defaulted
  stop = false;  // EXPECT(mvcc-memory-order): implicit seq_cst
  // The currency decrement must release-publish; relaxed breaks the
  // "acquire current_rows, then trust the maxes" reader protocol.
  mvcc::StoreRelaxed(&s.current_rows, 0);  // EXPECT(mvcc-memory-order): current_rows
}

// Wrapper-name-vs-body conformance: the name promises acquire.
namespace mvcc {
inline int64_t LoadAcquire(const volatile int64_t* p) {  // EXPECT(mvcc-memory-order): LoadAcquire
  int64_t v = *p;
  (void)std::memory_order_relaxed;
  return v;
}
}  // namespace mvcc

}  // namespace temporadb
