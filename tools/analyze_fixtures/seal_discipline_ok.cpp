// tdb-analyze-fixture: treat-as=src/temporal/version_store.cpp rules=seal-discipline
// Clean control: the identical mutations performed from the sanctioned
// entry points, plus lookalike members on another class that must not trip
// the rule.
#include "fixture_support.h"

namespace temporadb {

struct PartitionSynopsis {
  uint64_t begin_row = 0;
  uint64_t end_row = 0;
  int64_t max_finite_tt_end = 0;
  uint64_t current_rows = 0;
  uint64_t last_close_seq = 0;
};

class VersionStore {
 public:
  void MaybeSealHot();
  void RawUnappend();
  void CompactTombstones();
  void RepatchSealedSynopsis(size_t i);
  void OnRowClosed(size_t row, int64_t tt_end, uint64_t stamp);
  void OnRowReopened(size_t row);
  void RawCloseTxn(size_t row, int64_t tt_end);
  void RawReopenTxn(size_t row, int64_t old_end);

 private:
  std::vector<PartitionSynopsis> sealed_;
  size_t sealed_rows_ = 0;
  std::atomic<uint64_t> sealed_count_;
  std::vector<int64_t> col_tt_end_;
  std::vector<uint64_t> col_close_seq_;
};

void VersionStore::MaybeSealHot() {
  PartitionSynopsis p;
  sealed_.push_back(p);
  sealed_rows_ = sealed_.size();
  sealed_count_.store(sealed_.size(), std::memory_order_release);
}

void VersionStore::RawUnappend() {
  sealed_.pop_back();
  sealed_count_.store(sealed_.size(), std::memory_order_release);
}

void VersionStore::CompactTombstones() {
  sealed_.clear();
  sealed_rows_ = 0;
  sealed_count_.store(0, std::memory_order_release);
}

void VersionStore::RepatchSealedSynopsis(size_t i) {
  PartitionSynopsis fresh;
  fresh.begin_row = sealed_[i].begin_row;
  sealed_[i] = fresh;
}

void VersionStore::OnRowClosed(size_t row, int64_t tt_end, uint64_t stamp) {
  PartitionSynopsis& s = sealed_[row];
  mvcc::StoreRelaxed(&s.max_finite_tt_end, tt_end);
  mvcc::StoreRelaxed(&s.last_close_seq, stamp);
  mvcc::StoreRelease(&s.current_rows, mvcc::LoadRelaxed(&s.current_rows) - 1);
}

void VersionStore::OnRowReopened(size_t row) {
  PartitionSynopsis& s = sealed_[row];
  mvcc::StoreRelease(&s.current_rows, mvcc::LoadRelaxed(&s.current_rows) + 1);
}

void VersionStore::RawCloseTxn(size_t row, int64_t tt_end) {
  mvcc::StoreRelaxed(&col_close_seq_[row], 1);
  mvcc::StoreRelease(&col_tt_end_[row], tt_end);
}

void VersionStore::RawReopenTxn(size_t row, int64_t old_end) {
  mvcc::StoreRelease(&col_tt_end_[row], old_end);
}

// A different class with coincidentally-named members: the rule keys on
// the resolved declaration's name inside the version-store TU, and these
// writes stay legal anywhere.
class ScratchIndex {
 public:
  void Rebuild() {
    rows_ = 0;
    counters_.push_back(0);
  }

 private:
  size_t rows_ = 0;
  std::vector<uint64_t> counters_;
};

}  // namespace temporadb
