// tdb-analyze-fixture: treat-as=src/rel/temporal_ops.cpp rules=chronon-arith
// Seeded violations: raw int64 arithmetic on chronon-typed operands in a
// file outside the sanctioned set — each one a fresh chance to re-derive
// the pre-saturation overflow UB.
#include "fixture_support.h"

namespace temporadb {

int64_t SpanBroken(const Chronon& a, const Chronon& b) {
  int64_t span = a.days() - b.days();  // EXPECT(chronon-arith): raw int64 '-'
  Chronon::Rep r = b.days();
  r += 7;  // EXPECT(chronon-arith): raw int64 '+='
  int64_t pad = Chronon::kForeverRep - 1;  // EXPECT(chronon-arith): raw int64 '-'
  return span + pad + r;  // EXPECT(chronon-arith): raw int64 '+'
}

}  // namespace temporadb
