// tdb-analyze-fixture: treat-as=src/core/database.cpp rules=mvcc-memory-order
// Clean control: the sanctioned protocol orderings for every tracked site,
// explicit orders on untracked atomics, a conforming wrapper body, and a
// non-atomic class with an atomic-shaped method name.
#include "fixture_support.h"

namespace temporadb {

struct MvccState {
  std::atomic<uint64_t> publish_word;
  std::atomic<uint64_t> commit_seq;
  std::atomic<int64_t> last_commit_ts;
  std::atomic<int64_t> active_snapshots;
  std::atomic<int64_t> correcting;
};

struct PartitionSynopsis {
  int64_t max_finite_tt_end = 0;
  uint64_t current_rows = 0;
};

void PublishProtocol(MvccState* mv, std::atomic<bool>& stop,
                     PartitionSynopsis& s) {
  mv->publish_word.fetch_add(1, std::memory_order_seq_cst);
  mv->commit_seq.fetch_add(1, std::memory_order_release);
  mv->last_commit_ts.store(7, std::memory_order_release);
  (void)mv->publish_word.load(std::memory_order_acquire);
  (void)mv->commit_seq.load(std::memory_order_acquire);
  (void)mv->last_commit_ts.load(std::memory_order_acquire);
  mv->active_snapshots.fetch_add(1, std::memory_order_seq_cst);
  (void)mv->active_snapshots.load(std::memory_order_seq_cst);
  mv->correcting.store(1, std::memory_order_seq_cst);
  stop.store(true, std::memory_order_relaxed);
  (void)stop.load(std::memory_order_relaxed);
  mvcc::StoreRelaxed(&s.max_finite_tt_end, 9);
  mvcc::StoreRelease(&s.current_rows,
                     mvcc::LoadRelaxed(&s.current_rows) - 1);
  (void)mvcc::LoadAcquire(&s.current_rows);
}

// Not an atomic: a defaulted argument on a lookalike method is fine.
class Settings {
 public:
  int load(int fallback = 0) const;
};

int ReadSettings(const Settings& cfg) { return cfg.load(); }

namespace mvcc {
inline void StoreRelease(volatile int64_t* p, int64_t v) {
  std::atomic_ref<volatile int64_t> ref(*p);
  ref.store(v, std::memory_order_release);
}
}  // namespace mvcc

}  // namespace temporadb
