// tdb-analyze-fixture: treat-as=src/common/chronon.h rules=chronon-arith
// Clean control: the identical raw rep arithmetic is legal inside the
// sanctioned chronon implementation file — this is where the saturating
// operators live.
#include "fixture_support.h"

namespace temporadb {

int64_t SaturatingSpan(const Chronon& a, const Chronon& b) {
  int64_t span = a.days() - b.days();
  if (span > Chronon::kForeverRep - 1) span = Chronon::kForeverRep - 1;
  return span;
}

}  // namespace temporadb
