// tdb-analyze-fixture: treat-as=src/temporal/rollback_relation.cpp rules=append-only
// Clean control: rollback code using only the append-only mutation set,
// plus a free function that *shares a forbidden name* but is not a
// VersionStore member — the symbol check must not fire on spelling alone.
#include "fixture_support.h"

namespace temporadb {

class VersionStore {
 public:
  void Append(int64_t v);
  void RawCloseTxn(uint64_t row);
};

// Same spelling as the forbidden mutation, different symbol: a regex trips
// on this, the AST rule must not.
void PhysicalDelete(uint64_t bytes);

class RollbackRelation {
 public:
  void Insert(int64_t v);
  void Close(uint64_t row);
  void TrimLog(uint64_t bytes);
  VersionStore* store_ = nullptr;
};

void RollbackRelation::Insert(int64_t v) { store_->Append(v); }

void RollbackRelation::Close(uint64_t row) { store_->RawCloseTxn(row); }

void RollbackRelation::TrimLog(uint64_t bytes) { PhysicalDelete(bytes); }

}  // namespace temporadb
