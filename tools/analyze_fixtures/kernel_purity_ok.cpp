// tdb-analyze-fixture: treat-as=src/rel/kernels.h rules=kernel-purity
// Clean control: a branch-free selection kernel in the real repo idiom —
// raw int64 chronon columns in, uint32 selection vector out, no heap, no
// exceptions, no dispatch.
#include "fixture_support.h"

namespace temporadb {
namespace kernels {

size_t SelectOverlaps(const int64_t* begin, const int64_t* end, size_t n,
                      int64_t q_begin, int64_t q_end, uint32_t* sel) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool hit = (begin[i] < q_end) & (q_begin < end[i]);
    sel[k] = static_cast<uint32_t>(i);
    k += static_cast<size_t>(hit);
  }
  return k;
}

}  // namespace kernels
}  // namespace temporadb
