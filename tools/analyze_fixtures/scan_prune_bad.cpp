// tdb-analyze-fixture: treat-as=src/temporal/version_store.cpp rules=scan-prune
// Seeded violations: a scan entry point that never consults the partition
// synopses, and one that forms chunk geometry before pruning.
#include "fixture_support.h"

namespace temporadb {

struct RowRange {
  size_t begin = 0;
  size_t end = 0;
};

namespace exec {
void RangeChunks(const RowRange* ranges, size_t n);
}  // namespace exec

class VersionStore;

class VersionScan {
 public:
  VersionScan();
  explicit VersionScan(const VersionStore* store);

 private:
  const VersionStore* store_ = nullptr;
};

class VersionStore {
 public:
  void PruneRanges(RowRange* ranges, size_t n) const;
  VersionScan ScanAll() const;
  VersionScan ScanRaw() const;
  VersionScan BatchScanEager() const;
};

VersionScan::VersionScan() {}

VersionScan::VersionScan(const VersionStore* store) : store_(store) {
  RowRange r;
  store->PruneRanges(&r, 1);
}

VersionScan VersionStore::ScanAll() const { return VersionScan(this); }

VersionScan VersionStore::ScanRaw() const {  // EXPECT(scan-prune): never reaches PruneRanges
  RowRange r;
  exec::RangeChunks(&r, 1);
  return VersionScan();
}

VersionScan VersionStore::BatchScanEager() const {  // EXPECT(scan-prune): RangeChunks
  RowRange r;
  exec::RangeChunks(&r, 1);
  PruneRanges(&r, 1);
  return VersionScan();
}

}  // namespace temporadb
