// tdb-analyze-fixture: treat-as=src/core/database.cpp rules=result-discipline
// Clean control: every value() paired with an ok() check on the same
// object (directly, through std::move, and through an assign-or-return
// macro), and a checked Status& use.
#include "fixture_support.h"

#define FIX_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto fix_tmp = (rexpr);                         \
  if (!fix_tmp.ok()) return 0;                    \
  lhs = std::move(fix_tmp).value()

namespace temporadb {

Result<int> Fetch();
Status& MutableStatus();

int GuardedValue() {
  Result<int> r = Fetch();
  if (!r.ok()) return 0;
  return r.value();
}

int GuardedMovedValue() {
  Result<int> r = Fetch();
  if (!r.ok()) return 0;
  return std::move(r).value();
}

int MacroGuardedValue() {
  int out = 0;
  FIX_ASSIGN_OR_RETURN(out, Fetch());
  return out;
}

int CheckedStatusReference() {
  return MutableStatus().ok() ? 1 : 0;
}

}  // namespace temporadb
