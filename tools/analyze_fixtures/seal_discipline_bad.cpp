// tdb-analyze-fixture: treat-as=src/temporal/version_store.cpp rules=seal-discipline
// Seeded violations: every class of sealed-partition mutation performed
// from an unsanctioned member function.
#include "fixture_support.h"

namespace temporadb {

struct PartitionSynopsis {
  uint64_t begin_row = 0;
  uint64_t end_row = 0;
  int64_t max_finite_tt_end = 0;
  uint64_t current_rows = 0;
  uint64_t last_close_seq = 0;
};

class VersionStore {
 public:
  void EvictStale(size_t i);
  void TouchRow(size_t row, int64_t tt_end);

 private:
  std::vector<PartitionSynopsis> sealed_;
  size_t sealed_rows_ = 0;
  std::atomic<uint64_t> sealed_count_;
  std::vector<int64_t> col_tt_end_;
};

void VersionStore::EvictStale(size_t i) {
  PartitionSynopsis fresh;
  sealed_.pop_back();  // EXPECT(seal-discipline): sealed_.pop_back
  sealed_[i] = fresh;  // EXPECT(seal-discipline): sealed-directory write
  sealed_rows_ = 0;  // EXPECT(seal-discipline): sealed_rows_
  sealed_count_.store(0, std::memory_order_release);  // EXPECT(seal-discipline): sealed_count_.store
}

void VersionStore::TouchRow(size_t row, int64_t tt_end) {
  PartitionSynopsis& s = sealed_[row];
  mvcc::StoreRelease(&s.current_rows, 0);  // EXPECT(seal-discipline): current_rows
  mvcc::StoreRelaxed(&s.last_close_seq, 1);  // EXPECT(seal-discipline): last_close_seq
  mvcc::StoreRelease(&col_tt_end_[row], tt_end);  // EXPECT(seal-discipline): col_tt_end_
}

}  // namespace temporadb
