// tdb-analyze-fixture: treat-as=src/rel/temporal_ops.cpp rules=chronon-arith
// Suppression policy: a reasoned tdb-analyze-allow silences exactly its
// rule on its line; a reason-less one silences nothing and is itself a
// finding.
#include "fixture_support.h"

namespace temporadb {

int64_t SuppressedSpan(const Chronon& a, const Chronon& b) {
  // tdb-analyze-allow(chronon-arith): bounded by caller to finite chronons
  return a.days() - b.days();
}

int64_t BadSuppressionSpan(const Chronon& a, const Chronon& b) {
  // tdb-analyze-allow(chronon-arith):
  return a.days() - b.days();  // EXPECT(chronon-arith): raw int64 '-'
}
// The reason-less comment above is itself reported:
// EXPECT-LINE(15, bad-suppression): without a reason

}  // namespace temporadb
