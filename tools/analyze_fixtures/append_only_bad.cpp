// tdb-analyze-fixture: treat-as=src/temporal/rollback_relation.cpp rules=append-only
// Seeded violations: history-destroying VersionStore mutations reached from
// rollback-relation code, both directly and laundered through a wrapper —
// the aliasing evasion the regex lint cannot see.
#include "fixture_support.h"

namespace temporadb {

class VersionStore {
 public:
  void Append(int64_t v);
  void RawCloseTxn(uint64_t row);
  void PhysicalDelete(uint64_t row);
  void CorrectErase(uint64_t row);
};

namespace {

// A wrapper with an innocent name: the call graph must still resolve the
// callee symbol through it.
void ScrubHelper(VersionStore* store, uint64_t row) {
  store->PhysicalDelete(row);  // EXPECT(append-only): PhysicalDelete
}

}  // namespace

class RollbackRelation {
 public:
  void Vacuum(uint64_t row);
  void Drop(uint64_t row);
  VersionStore* store_ = nullptr;
};

void RollbackRelation::Vacuum(uint64_t row) {  // EXPECT(append-only): via ScrubHelper
  ScrubHelper(store_, row);
}

void RollbackRelation::Drop(uint64_t row) {
  store_->CorrectErase(row);  // EXPECT(append-only): CorrectErase
}

}  // namespace temporadb
