// tdb-analyze-fixture: treat-as=src/core/database.cpp rules=result-discipline
// Seeded violations: value() with no ok() check in the function (the
// assert inside value() compiles out under NDEBUG), and a discarded call
// whose Status& return launders away [[nodiscard]].
#include "fixture_support.h"

namespace temporadb {

Result<int> Fetch();
Status& MutableStatus();

int UncheckedValue() {
  Result<int> r = Fetch();
  return r.value();  // EXPECT(result-discipline): no ok() check
}

int UncheckedMovedValue() {
  Result<int> r = Fetch();
  return std::move(r).value();  // EXPECT(result-discipline): no ok() check
}

int WrongObjectChecked() {
  Result<int> guard = Fetch();
  Result<int> r = Fetch();
  if (!guard.ok()) return 0;
  return r.value();  // EXPECT(result-discipline): no ok() check
}

void DroppedStatusReference() {
  MutableStatus();  // EXPECT(result-discipline): Status&
}

}  // namespace temporadb
