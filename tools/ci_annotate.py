#!/usr/bin/env python3
"""Annotates CI logs: re-emits `file:line: rule-name: message` findings as
GitHub Actions workflow commands so they surface inline on the PR diff.

Usage (as a filter around any tool that emits the shared finding format —
tools/tdb_analyze.py and tools/tdb_lint.py both do):

    python3 tools/tdb_analyze.py -p build | python3 tools/ci_annotate.py

Every input line is passed through unchanged; lines matching the shared
format additionally produce a `::error file=...,line=...,title=...::`
command.  The exit status mirrors the producer's verdict: 1 if any finding
was seen, else 0 — so `set -o pipefail` is not needed for the annotation
step to gate the job.
"""

from __future__ import annotations

import re
import sys

FINDING = re.compile(r"^(?P<file>[^:\s][^:]*):(?P<line>\d+): "
                     r"(?P<rule>[a-z0-9-]+): (?P<msg>.+)$")


def escape_property(s: str) -> str:
    """Workflow-command property escaping per the Actions toolkit."""
    return (s.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
            .replace(":", "%3A").replace(",", "%2C"))


def escape_data(s: str) -> str:
    return s.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def main() -> int:
    findings = 0
    for line in sys.stdin:
        line = line.rstrip("\n")
        print(line)
        m = FINDING.match(line)
        if not m:
            continue
        findings += 1
        print(f"::error file={escape_property(m.group('file'))},"
              f"line={m.group('line')},"
              f"title={escape_property(m.group('rule'))}::"
              f"{escape_data(m.group('msg'))}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
