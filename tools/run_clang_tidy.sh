#!/usr/bin/env bash
# Runs the curated .clang-tidy gate over every library/tool source under
# src/, against the compile database exported by CMake (on by default; see
# CMAKE_EXPORT_COMPILE_COMMANDS in the top-level CMakeLists.txt).
#
#   ./tools/run_clang_tidy.sh [build-dir]
#
# Pass a build dir configured with any compiler — clang-tidy only needs the
# flags, not the binary it produced.  Exits nonzero on any finding
# (warnings are errors per .clang-tidy).
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "error: $BUILD_DIR/compile_commands.json not found;" \
       "configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
JOBS="$(nproc 2>/dev/null || echo 4)"

# Library sources only: tests and benches are scaffolding, and gtest/
# benchmark macros expand into code the checks were not written for.
mapfile -t SOURCES < <(find "$REPO_ROOT/src" -name '*.cpp' | sort)

printf '%s\n' "${SOURCES[@]}" \
  | xargs -P "$JOBS" -n 8 "$TIDY" -p "$BUILD_DIR" --quiet
echo "clang-tidy: OK (${#SOURCES[@]} files)"
