#!/usr/bin/env bash
# Runs the curated .clang-tidy gate over every library/tool source under
# src/, against the compile database exported by CMake (on by default; see
# CMAKE_EXPORT_COMPILE_COMMANDS in the top-level CMakeLists.txt).
#
#   ./tools/run_clang_tidy.sh [build-dir]
#
# Pass a build dir configured with any compiler — clang-tidy only needs the
# flags, not the binary it produced.  Exits nonzero on any finding
# (warnings are errors per .clang-tidy).
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

DB="$BUILD_DIR/compile_commands.json"
if [[ ! -f "$DB" ]]; then
  echo "error: $DB not found;" \
       "configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

# A database older than the build configuration silently tidies with stale
# flags (or misses newly added TUs entirely) — refuse rather than degrade.
if [[ "$REPO_ROOT/CMakeLists.txt" -nt "$DB" ]]; then
  echo "error: $DB is older than CMakeLists.txt; reconfigure:" \
       "cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

# Library sources only: tests and benches are scaffolding, and gtest/
# benchmark macros expand into code the checks were not written for.
mapfile -t SOURCES < <(find "$REPO_ROOT/src" -name '*.cpp' | sort)

# Every src/ TU must be in the database; a missing entry means clang-tidy
# would quietly skip it (or guess flags), so that is an error too.
MISSING="$(python3 - "$DB" "${SOURCES[@]}" <<'PY'
import json, os, sys
db_path, sources = sys.argv[1], sys.argv[2:]
with open(db_path) as fh:
    entries = json.load(fh)
known = set()
for e in entries:
    f = e["file"]
    if not os.path.isabs(f):
        f = os.path.join(e.get("directory", ""), f)
    known.add(os.path.realpath(f))
for s in sources:
    if os.path.realpath(s) not in known:
        print(s)
PY
)"
if [[ -n "$MISSING" ]]; then
  echo "error: compile_commands.json is incomplete; these src/ TUs have" \
       "no entry (stale configure? reconfigure: cmake -B $BUILD_DIR -S .):" >&2
  printf '  %s\n' $MISSING >&2
  exit 2
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
JOBS="$(nproc 2>/dev/null || echo 4)"

printf '%s\n' "${SOURCES[@]}" \
  | xargs -P "$JOBS" -n 8 "$TIDY" -p "$BUILD_DIR" --quiet
echo "clang-tidy: OK (${#SOURCES[@]} files)"
