#!/usr/bin/env python3
"""tdb_analyze — AST-level semantic analyzer for temporadb's engine invariants.

`tools/tdb_lint.py` polices the repo's discipline rules with regexes; regexes
are rename-fragile and blind to aliasing, wrappers, and memory-order
arguments.  This tool re-implements the discipline rules at the AST/type
level with libclang (`clang.cindex`), driven by the compile_commands.json
CMake exports, and adds checks a regex cannot express at all.

Rules (names are stable; they appear in findings and suppressions):

  append-only       The paper's §5 rule ("DBMSs supporting rollback are
                    append-only") by *symbol*: any call path from
                    rollback/temporal relation code that reaches a
                    history-destroying VersionStore mutation
                    (PhysicalUpdate / PhysicalDelete / Raw* / CorrectErase)
                    is flagged, including calls laundered through wrappers
                    or helpers defined in the same translation unit.

  seal-discipline   Writes to sealed-partition state (the `sealed_`
                    directory, `sealed_rows_`, `sealed_count_`, a synopsis's
                    mutable trio, the sealed chronon columns) are resolved
                    to the member actually written and checked against the
                    closed set of sanctioned VersionStore entry points —
                    the enclosing function comes from the AST, not brace
                    counting.

  mvcc-memory-order Every load/store/RMW on an atomic in src/ must spell
                    its std::memory_order (defaulted seq_cst is flagged:
                    either the sequential consistency is load-bearing and
                    must be written down, or it is an accidental fence on a
                    hot path).  For the MVCC coordination sites — the
                    publish seqlock, the Dekker correction fence, the
                    synopsis mutable trio, the shared chronon columns, the
                    published watermarks — the ordering must match the
                    sanctioned protocol for that site (e.g. the
                    release-decrement-last on `current_rows`).  The `mvcc::`
                    wrapper bodies are checked against their own names.

  chronon-arith     Raw int64 arithmetic on chronon-typed values (operands
                    marked by `Chronon::days()`, `Chronon::Rep`, the
                    sentinel reps, or the chronon column/synopsis fields)
                    is confined to common/chronon.* and rel/kernels.*.
                    Everywhere else must use the saturating Chronon
                    operators — re-deriving the pre-saturation overflow UB
                    in a new file is exactly what this rule exists to stop.

  result-discipline `Result<T>::value()` in a function that never checks
                    `ok()` on that result object (the assert inside value()
                    compiles out in release builds), and discarded calls
                    returning `Status&` / `const Status&` — the reference
                    return launders away the [[nodiscard]] on Status.

  scan-prune        Every `Scan*` / `BatchScan*` / `*Snapshot` entry point
                    of VersionStore must reach `PruneRanges` (transitively,
                    through the scan constructors) so a new access path
                    cannot silently bypass partition pruning; where a
                    function both prunes and forms chunk geometry
                    (`RangeChunks`), the prune must come first.

  kernel-purity     rel/kernels.* stays free of virtual dispatch, heap
                    allocation (new/delete/malloc), exception edges
                    (throw/try), and boxed `Value`/`Period` types — the
                    kernels exist to touch nothing but flat arrays.

Output format (shared with tdb_lint.py, machine-parseable):

    file:line: rule-name: message

Suppressions: a finding on line L is suppressed by a comment on line L or
L-1 of the form

    // tdb-analyze-allow(rule-name): reason

The reason is mandatory; an empty reason is itself reported (rule
`bad-suppression`).  Suppression is per-rule, not blanket.

Exit status: 0 clean · 1 findings · 2 usage/parse error · 3 libclang
unavailable (callers like tdb_lint.py use 3 to fall back to the regex path).

Usage:
    tools/tdb_analyze.py [-p BUILD_DIR] [--rules r1,r2] [--files f.cpp ...]
    tools/tdb_analyze.py --probe
    tools/tdb_analyze.py --single FILE --treat-as src/... -- -std=c++20 ...

The parse/findings cache (--cache-dir, default BUILD_DIR/.tdb-analyze-cache)
keys each translation unit on the analyzer version, the rule set, the
compile flags, and the content hash of the main file plus every repo-local
header it pulled in last time — an untouched TU replays its findings
without re-parsing, so CI reruns are incremental.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import shlex
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

ANALYZER_VERSION = "1"  # Bump to invalidate every cache entry.

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2
EXIT_NO_CLANG = 3

ALL_RULES = (
    "append-only",
    "seal-discipline",
    "mvcc-memory-order",
    "chronon-arith",
    "result-discipline",
    "scan-prune",
    "kernel-purity",
)

# ---------------------------------------------------------------------------
# libclang discovery
# ---------------------------------------------------------------------------

_cindex = None
_cindex_error = None


def load_cindex():
    """Imports clang.cindex and resolves a usable libclang shared library.

    Resolution order: TDB_LIBCLANG env var, the binding's own default, then
    versioned system locations (preferring the version that matches the
    binding, so cursor kinds stay in sync).  Returns the module or None.
    """

    global _cindex, _cindex_error
    if _cindex is not None or _cindex_error is not None:
        return _cindex
    try:
        from clang import cindex
    except ImportError as e:
        _cindex_error = f"python clang bindings not importable: {e}"
        return None

    def usable() -> bool:
        try:
            cindex.Index.create()
            return True
        except Exception:
            # A failed load latches inside cindex; clear it for the retry.
            cindex.Config.loaded = False
            return False

    env = os.environ.get("TDB_LIBCLANG")
    if env:
        cindex.Config.set_library_file(env)
        if not usable():
            _cindex_error = f"TDB_LIBCLANG={env} did not load"
            return None
        _cindex = cindex
        return _cindex

    if usable():
        _cindex = cindex
        return _cindex

    candidates: list[str] = []
    for pattern in (
        "/usr/lib/llvm-*/lib/libclang-*.so*",
        "/usr/lib/llvm-*/lib/libclang.so*",
        "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
        "/usr/lib/libclang*.so*",
    ):
        candidates.extend(str(p) for p in Path("/").glob(pattern.lstrip("/")))
    # libclang-cpp is the C++ interface, not the C API cindex binds to.
    candidates = [c for c in candidates if "libclang-cpp" not in c]
    binding_ver = re.search(r"(\d+)", getattr(cindex, "__file__", "") or "")
    candidates.sort(
        key=lambda c: (0 if binding_ver and binding_ver.group(1) in c else 1, c))
    for cand in candidates:
        cindex.Config.set_library_file(cand)
        if usable():
            _cindex = cindex
            return _cindex
    _cindex_error = ("no usable libclang shared library found "
                     "(set TDB_LIBCLANG=/path/to/libclang.so)")
    return None


def cindex_unavailable_reason() -> str:
    return _cindex_error or "libclang unavailable"


# ---------------------------------------------------------------------------
# Findings and suppressions
# ---------------------------------------------------------------------------

class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path          # Repo-relative (or fixture-relative) path.
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule, self.message)

    def __str__(self):
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


SUPPRESS_RE = re.compile(
    r"//\s*tdb-analyze-allow\(([a-z0-9-]+)\)\s*(?::\s*(.*?))?\s*$")


def scan_suppressions(text: str):
    """Returns ({(line, rule)}, [bad-suppression Finding lines]) for a file's
    text.  A suppression on line L covers findings on L and L+1."""

    allowed: set[tuple[int, str]] = set()
    bad: list[tuple[int, str]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rule, reason = m.group(1), (m.group(2) or "").strip()
        if not reason:
            bad.append((lineno, rule))
            continue
        allowed.add((lineno, rule))
        allowed.add((lineno + 1, rule))
    return allowed, bad


def apply_suppressions(findings, file_texts):
    """Filters suppressed findings; appends bad-suppression findings."""

    out = []
    suppress_cache: dict[str, tuple[set, list]] = {}
    for f in findings:
        text = file_texts.get(f.path)
        if text is None:
            out.append(f)
            continue
        if f.path not in suppress_cache:
            suppress_cache[f.path] = scan_suppressions(text)
        allowed, _ = suppress_cache[f.path]
        if (f.line, f.rule) not in allowed:
            out.append(f)
    for path, text in file_texts.items():
        if path not in suppress_cache:
            suppress_cache[path] = scan_suppressions(text)
        for lineno, rule in suppress_cache[path][1]:
            out.append(Finding(
                path, lineno, "bad-suppression",
                f"tdb-analyze-allow({rule}) without a reason; a suppression "
                "must say why the rule does not apply here"))
    return out


# ---------------------------------------------------------------------------
# Rule configuration tables
# ---------------------------------------------------------------------------

# Rule: append-only.  Entry contexts and forbidden mutation symbols.
APPEND_ONLY_CLASSES = {"RollbackRelation", "TemporalRelation"}
APPEND_ONLY_FILES = {
    "src/temporal/rollback_relation.h",
    "src/temporal/rollback_relation.cpp",
    "src/temporal/temporal_relation.h",
    "src/temporal/temporal_relation.cpp",
}
FORBIDDEN_MUTATIONS = {
    "PhysicalDelete", "PhysicalUpdate",
    "RawPhysicalDelete", "RawPhysicalUpdate", "CorrectErase",
}

# Rule: seal-discipline.  Per mutation class, the closed set of VersionStore
# member functions allowed to perform it (mirrors tdb_lint.py rule 6).
SEAL_DIRECTORY_ALLOWED = {
    "MaybeSealHot", "RawUnappend", "InstallSealedPartitions",
    "RepatchSealedSynopsis", "CompactTombstones",
}
SEAL_TRIO_ALLOWED = {"OnRowClosed", "OnRowReopened"}
SEAL_COLUMN_ALLOWED = {"RawCloseTxn", "RawReopenTxn"}
SEAL_DIRECTORY_MEMBERS = {"sealed_", "sealed_rows_", "sealed_count_"}
SYNOPSIS_TRIO = {"current_rows", "max_finite_tt_end", "last_close_seq"}
SEALED_COLUMN_RE = re.compile(r"^col_\w+_$")
SEAL_FILE = "src/temporal/version_store.cpp"

# Rule: mvcc-memory-order.  Sanctioned orderings per site and operation
# class.  Sites are identified by the innermost declaration the operation's
# object expression resolves to — renames and aliases still resolve here,
# text spelling does not matter.  Missing op class => that op is forbidden
# on the site outright.
MEMORY_ORDER_SITES: dict[str, dict[str, set[str]]] = {
    # Publish seqlock: writers bracket publication with seq_cst increments;
    # readers acquire-load to pair with the release half of the bracket and
    # seq_cst-load for the torn-capture recheck.
    "publish_word": {"load": {"acquire", "seq_cst"}, "rmw": {"seq_cst"}},
    # Commit sequence: published under the seqlock with release; readers
    # acquire; the writer's own stamping path may read relaxed (it is the
    # only mutator).
    "commit_seq": {"load": {"acquire", "relaxed"}, "rmw": {"release"}},
    "last_commit_ts": {"load": {"acquire"}, "store": {"release"}},
    # Dekker correction fence: both sides must be seq_cst or the "at least
    # one observes the other" argument collapses.
    "active_snapshots": {"load": {"seq_cst"}, "rmw": {"seq_cst"}},
    "correcting": {"load": {"seq_cst"}, "store": {"seq_cst"},
                   "rmw": {"seq_cst"}},
    # Published row watermarks: release store, acquire load (writer-side
    # rereads may be relaxed).
    "committed_rows_": {"load": {"acquire", "relaxed"}, "store": {"release"}},
    "sealed_count_": {"load": {"acquire", "relaxed"}, "store": {"release"}},
    # Synopsis mutable trio: monotone maxes relaxed, currency decrement
    # release-last; readers acquire current_rows then read the maxes
    # relaxed.
    "current_rows": {"load": {"acquire", "relaxed"}, "store": {"release"}},
    "max_finite_tt_end": {"load": {"relaxed", "acquire"},
                          "store": {"relaxed"}},
    "last_close_seq": {"load": {"relaxed"}, "store": {"relaxed"}},
    # Shared chronon columns: the tt_end close is the release publication;
    # its sequence stamp rides before it relaxed.
    "col_tt_end_": {"load": {"acquire", "relaxed"}, "store": {"release"}},
    "col_close_seq_": {"load": {"relaxed"}, "store": {"relaxed"}},
    # Stable-storage directory/buffer pointers: release publish, acquire on
    # the reader accessors, relaxed on writer-private rereads.
    "dir_": {"load": {"acquire", "relaxed"}, "store": {"release"}},
    "data_": {"load": {"acquire", "relaxed"}, "store": {"release"}},
}

MVCC_WRAPPERS = {
    "LoadAcquire": ("load", "acquire"),
    "LoadRelaxed": ("load", "relaxed"),
    "StoreRelease": ("store", "release"),
    "StoreRelaxed": ("store", "relaxed"),
}

ATOMIC_OPS = {
    "load": "load", "store": "store",
    "exchange": "rmw", "fetch_add": "rmw", "fetch_sub": "rmw",
    "fetch_and": "rmw", "fetch_or": "rmw", "fetch_xor": "rmw",
    "compare_exchange_weak": "rmw", "compare_exchange_strong": "rmw",
}
# Overloaded operators on std::atomic are sugar for seq_cst ops.
ATOMIC_OPERATOR_SUGAR = {
    "operator=", "operator++", "operator--", "operator+=", "operator-=",
    "operator&=", "operator|=", "operator^=",
}

# Rule: chronon-arith.  Files allowed to do raw rep arithmetic, and the
# declarations whose reference marks an expression as chronon-typed.
CHRONON_SANCTIONED = {
    "src/common/chronon.h", "src/common/chronon.cpp",
    "src/rel/kernels.h", "src/rel/kernels.cpp",
}
CHRONON_FIELDS = {
    "col_valid_from_", "col_valid_to_", "col_tt_start_", "col_tt_end_",
    "min_valid_from", "max_valid_to", "min_tt_start", "max_finite_tt_end",
    "kForeverRep", "kBeginningRep",
}
CHRONON_ACCESSORS = {
    "days", "chronon_valid_from", "chronon_valid_to", "chronon_tt_start",
    "chronon_tt_end",
}
ARITH_BINOPS = {"+", "-", "*", "/", "%"}
ARITH_ASSIGN = {"+=", "-=", "*=", "/=", "%="}

# Rule: scan-prune.
SCAN_ENTRY_RE = re.compile(r"^(Scan|BatchScan)\w*$|^\w*Snapshot$")
SCAN_FILE = "src/temporal/version_store.cpp"

# Rule: kernel-purity.
KERNEL_FILES = {"src/rel/kernels.h", "src/rel/kernels.cpp"}
HEAP_FUNCTIONS = {"malloc", "calloc", "realloc", "free",
                  "operator new", "operator new[]",
                  "operator delete", "operator delete[]"}
BOXED_TYPE_RE = re.compile(r"\b(Value|Period)\b")


# ---------------------------------------------------------------------------
# AST helpers (libclang)
# ---------------------------------------------------------------------------

def qualified_name(cursor) -> str:
    """`temporadb::VersionStore::PruneRanges` style name via semantic
    parents."""

    ci = _cindex
    parts = []
    c = cursor
    while c is not None and c.kind != ci.CursorKind.TRANSLATION_UNIT:
        if c.spelling:
            parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def enclosing_function(stack):
    """Innermost named function on the visit stack (lambdas attribute to
    their enclosing named function, which is what the discipline rules
    mean by 'entry point')."""

    ci = _cindex
    fn_kinds = (ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
                ci.CursorKind.CONSTRUCTOR, ci.CursorKind.DESTRUCTOR,
                ci.CursorKind.CONVERSION_FUNCTION,
                ci.CursorKind.FUNCTION_TEMPLATE)
    for c in reversed(stack):
        if c.kind in fn_kinds:
            return c
    return None


def deepest_decl_ref(cursor):
    """The declaration an object expression resolves to — `&s.current_rows`,
    `col_tt_end_.data() + row`, `sealed_[i].current_rows`, `pins[i]`, and
    plain `stop` all resolve to the member/variable that names the site.
    The *outermost* data-member reference wins (in `sealed_[i].current_rows`
    the written site is `current_rows`; the DFS visits parents before
    children, so the first data member seen is the outermost); method
    references (`.store`, `.operator[]`) are skipped.  Falls back to the
    first plain variable/param reference for non-member atomics."""

    ci = _cindex
    data_kinds = (ci.CursorKind.FIELD_DECL, ci.CursorKind.VAR_DECL,
                  ci.CursorKind.PARM_DECL)
    member = None
    decl = None
    stack = [cursor]
    while stack:
        c = stack.pop()
        if c.kind == ci.CursorKind.MEMBER_REF_EXPR and \
                c.referenced is not None and c.referenced.kind in data_kinds:
            if member is None:
                member = c.referenced
        elif c.kind == ci.CursorKind.DECL_REF_EXPR and \
                c.referenced is not None:
            if decl is None and c.referenced.kind in data_kinds:
                decl = c.referenced
        stack.extend(reversed(list(c.get_children())))
    return member if member is not None else decl


def call_site_decl(call):
    """Site declaration for a call-like expression, robust to both child
    layouts libclang produces: member calls put the MEMBER_REF_EXPR first,
    operator-call syntax (`stop = true`) puts a function DECL_REF_EXPR
    first with the operands after it.  Returns the first child that
    resolves to a data declaration."""

    for ch in call.get_children():
        d = deepest_decl_ref(ch)
        if d is not None:
            return d
    return None


def identifier_tokens(cursor):
    ci = _cindex
    return [t.spelling for t in cursor.get_tokens()
            if t.kind == ci.TokenKind.IDENTIFIER]


def call_memory_order(call) -> str:
    """'relaxed' | 'acquire' | ... | 'defaulted' | 'unknown' for an atomic
    member call.  An omitted order shows up either as a missing written
    argument or as a token-less CXXDefaultArgExpr, depending on the libclang
    version; both read as defaulted here."""

    orders = []
    for arg in call.get_arguments():
        toks = identifier_tokens(arg)
        for t in toks:
            if t.startswith("memory_order"):
                orders.append(t[len("memory_order_"):])
    if not orders:
        return "defaulted"
    if len(orders) == 1 or len(set(orders)) == 1:
        return orders[0]
    # compare_exchange takes success+failure orders; report the weaker
    # (failure) one is ambiguous — just surface the first.
    return orders[0]


def binary_op_spelling(cursor, lines_cache) -> str:
    """The operator token of a BINARY_OPERATOR / COMPOUND_ASSIGNMENT
    cursor.  libclang 14 does not expose the opcode, so read the token in
    the gap between the two operand extents."""

    children = list(cursor.get_children())
    if len(children) != 2:
        return ""
    lhs_end = children[0].extent.end.offset
    rhs_start = children[1].extent.start.offset
    for tok in cursor.get_tokens():
        off = tok.extent.start.offset
        if lhs_end <= off < rhs_start and tok.spelling in (
                ARITH_BINOPS | ARITH_ASSIGN |
                {"=", "<", ">", "<=", ">=", "==", "!=", "&&", "||", "<<",
                 ">>", "&", "|", "^"}):
            return tok.spelling
    return ""


def subtree_contains_chronon_mark(cursor) -> bool:
    """True when an operand expression references a chronon-typed entity:
    a `days()`/column-accessor call, a `Chronon::Rep`-declared entity, a
    sentinel rep constant, or one of the chronon column/synopsis fields."""

    ci = _cindex
    stack = [cursor]
    while stack:
        c = stack.pop()
        if c.kind in (ci.CursorKind.MEMBER_REF_EXPR,
                      ci.CursorKind.DECL_REF_EXPR):
            ref = c.referenced
            name = c.spelling
            if name in CHRONON_FIELDS:
                return True
            if ref is not None:
                tspell = ref.type.spelling if ref.type else ""
                if "Chronon::Rep" in tspell or tspell.endswith("::Rep"):
                    return True
        elif c.kind == ci.CursorKind.CALL_EXPR:
            if c.spelling in CHRONON_ACCESSORS:
                return True
        stack.extend(c.get_children())
    return False


# ---------------------------------------------------------------------------
# Per-TU analysis
# ---------------------------------------------------------------------------

class TuContext:
    """Everything the rules need from one parsed translation unit."""

    def __init__(self, tu, main_path: str, effective_path: str, repo: Path,
                 rules: set[str]):
        self.tu = tu
        self.main_path = main_path            # Absolute, as parsed.
        self.effective_path = effective_path  # Repo-relative rule-scope path.
        self.repo = repo
        self.rules = rules
        self.findings: list[Finding] = []
        # Call graph over functions defined in this TU:
        #   caller USR -> [(callee USR, callee qualified name, loc)]
        self.graph: dict[str, list[tuple[str, str, object]]] = {}
        self.fn_defs: dict[str, object] = {}   # USR -> definition cursor.

    def rel(self, cursor_or_file) -> str | None:
        """Repo-relative path of a cursor's file; the main file maps to the
        effective path so fixtures can stand in for repo files.  None for
        system/other files."""

        f = getattr(cursor_or_file, "location", None)
        f = f.file if f is not None else cursor_or_file
        if f is None:
            return None
        p = os.path.abspath(f.name)
        if p == self.main_path:
            return self.effective_path
        try:
            return str(Path(p).resolve().relative_to(self.repo))
        except ValueError:
            return None

    def add(self, cursor, rule: str, message: str):
        rel = self.rel(cursor)
        if rel is None:
            return
        self.findings.append(Finding(rel, cursor.location.line, rule, message))


def analyze_tu(ctx: TuContext):
    """Single AST walk dispatching to every active rule."""

    ci = _cindex
    sys.setrecursionlimit(1000000)

    in_append_file = ctx.effective_path in APPEND_ONLY_FILES
    is_seal_tu = ctx.effective_path == SEAL_FILE
    is_scan_tu = ctx.effective_path == SCAN_FILE

    # Collected along the walk for the whole-TU rules.
    append_entries: list[object] = []       # Entry function cursors.
    scan_entries: list[object] = []         # VersionStore Scan* methods.
    prune_chunk_calls: dict[str, dict[str, int]] = {}  # fn USR -> offsets.
    result_fns: list[tuple[object, list, list]] = []   # (fn, values, oks)

    fn_kinds = (ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
                ci.CursorKind.CONSTRUCTOR, ci.CursorKind.DESTRUCTOR,
                ci.CursorKind.CONVERSION_FUNCTION)

    def in_repo(cursor) -> bool:
        return ctx.rel(cursor) is not None

    def namespace_of(cursor) -> str:
        c = cursor.semantic_parent
        while c is not None and c.kind != ci.CursorKind.TRANSLATION_UNIT:
            if c.kind == ci.CursorKind.NAMESPACE:
                return c.spelling
            c = c.semantic_parent
        return ""

    def base_tokens(call) -> str:
        """Normalized spelling of a member call's object expression, for
        grouping value()/ok() by result object."""

        children = list(call.get_children())
        if not children:
            return ""
        toks = [t.spelling for t in children[0].get_tokens()]
        # Strip the trailing `. value` / `-> value` / `:: move ( x )` noise.
        while toks and toks[-1] in (call.spelling, ".", "->", "::"):
            toks.pop()
        s = "".join(toks)
        m = re.match(r"^std::move\((.*)\)$", s)
        return m.group(1) if m else s

    # ----- mvcc wrapper-body conformance (header may appear in any TU that
    # has the rule active; dedupe happens at the end) -----
    def check_wrapper_body(fn):
        m = re.match(r"^(Load|Store)(Acquire|Release|Relaxed)$", fn.spelling)
        if not m or namespace_of(fn) != "mvcc":
            return
        want = m.group(2).lower()
        orders = {t[len("memory_order_"):] for t in identifier_tokens(fn)
                  if t.startswith("memory_order")}
        if orders != {want}:
            ctx.add(fn, "mvcc-memory-order",
                    f"mvcc::{fn.spelling} must use std::memory_order_{want} "
                    f"and nothing else (found: "
                    f"{', '.join(sorted(orders)) or 'none'}); the wrapper "
                    "name is the ordering contract its callers rely on")

    def check_site_order(cursor, site: str, op: str, order: str):
        table = MEMORY_ORDER_SITES.get(site)
        if table is None:
            if order == "defaulted":
                ctx.add(cursor, "mvcc-memory-order",
                        f"atomic {op} on '{site}' with defaulted "
                        "std::memory_order_seq_cst; spell the required "
                        "ordering (and say why) — an implicit global fence "
                        "is either load-bearing or an accident")
            return
        allowed = table.get(op, set())
        if order == "defaulted":
            ctx.add(cursor, "mvcc-memory-order",
                    f"defaulted seq_cst {op} on MVCC site '{site}'; the "
                    f"sanctioned ordering(s): "
                    f"{', '.join(sorted(allowed)) or 'none — op forbidden'}")
        elif order not in allowed and order != "unknown":
            ctx.add(cursor, "mvcc-memory-order",
                    f"memory_order_{order} {op} on MVCC site '{site}'; "
                    f"sanctioned: {', '.join(sorted(allowed)) or 'none'} "
                    "(see the protocol comment at the site's declaration)")

    def handle_atomic_call(cursor, stack):
        """Atomic member calls and mvcc:: wrapper calls."""

        name = cursor.spelling
        ref = cursor.referenced
        # mvcc:: free-function wrappers.
        if name in MVCC_WRAPPERS and ref is not None and \
                namespace_of(ref) == "mvcc":
            op, order = MVCC_WRAPPERS[name]
            args = list(cursor.get_arguments())
            if args:
                site_decl = deepest_decl_ref(args[0])
                if site_decl is not None:
                    site = site_decl.spelling
                    if site in MEMORY_ORDER_SITES:
                        check_site_order(cursor, site, op, order)
            return
        if ref is None:
            return
        parent = ref.semantic_parent
        parent_name = parent.spelling if parent is not None else ""
        if not parent_name.startswith("atomic"):
            return
        site_decl = call_site_decl(cursor)
        site = site_decl.spelling if site_decl is not None else "<unknown>"
        if name in ATOMIC_OPS:
            op = ATOMIC_OPS[name]
            order = call_memory_order(cursor)
            check_site_order(cursor, site, op, order)
        elif name in ATOMIC_OPERATOR_SUGAR:
            ctx.add(cursor, "mvcc-memory-order",
                    f"'{name}' on atomic '{site}' is an implicit seq_cst "
                    "operation; use load/store/fetch_* with an explicit "
                    "std::memory_order")

    # ----- seal-discipline helpers -----
    def seal_check(cursor, stack, label: str, member: str, allowed: set[str]):
        fn = enclosing_function(stack)
        fn_name = fn.spelling if fn is not None else "file scope"
        if fn_name in allowed:
            return
        ctx.add(cursor, "seal-discipline",
                f"{label} ('{member}') in {fn_name}; only "
                f"{', '.join(sorted(allowed))} may perform it — route the "
                "mutation through a sanctioned entry point so the synopsis "
                "stays consistent with the sealed rows")

    def handle_seal_call(cursor, stack):
        name = cursor.spelling
        ref = cursor.referenced
        # Directory container mutations: sealed_.push_back(...) etc., and
        # atomic stores/RMWs on sealed_count_.
        if name in ("push_back", "pop_back", "emplace_back", "clear",
                    "Truncate", "resize", "erase", "insert", "assign"):
            d = call_site_decl(cursor)
            if d is not None and d.spelling == "sealed_":
                seal_check(cursor, stack, "sealed-directory write",
                           f"sealed_.{name}", SEAL_DIRECTORY_ALLOWED)
            return
        if name in ATOMIC_OPS and ATOMIC_OPS[name] in ("store", "rmw"):
            d = call_site_decl(cursor)
            if d is not None and d.spelling == "sealed_count_":
                seal_check(cursor, stack, "sealed-directory write",
                           f"sealed_count_.{name}", SEAL_DIRECTORY_ALLOWED)
            return
        # Overwriting a sealed directory entry (`sealed_[i] = fresh`) goes
        # through PartitionSynopsis::operator=, not a builtin assignment;
        # the first data declaration among the operand children is the
        # written element's container.
        if name == "operator=":
            d = call_site_decl(cursor)
            if d is not None and d.spelling == "sealed_":
                seal_check(cursor, stack, "sealed-directory write",
                           "sealed_[…] =", SEAL_DIRECTORY_ALLOWED)
            return
        # mvcc::Store* on the synopsis trio / sealed chronon columns.
        if name in ("StoreRelease", "StoreRelaxed") and ref is not None and \
                namespace_of(ref) == "mvcc":
            args = list(cursor.get_arguments())
            if not args:
                return
            d = deepest_decl_ref(args[0])
            if d is None:
                return
            if d.spelling in SYNOPSIS_TRIO:
                seal_check(cursor, stack, "synopsis mutable-trio store",
                           d.spelling, SEAL_TRIO_ALLOWED)
            elif SEALED_COLUMN_RE.match(d.spelling or ""):
                seal_check(cursor, stack, "sealed chronon-column store",
                           d.spelling, SEAL_COLUMN_ALLOWED)

    def handle_seal_assignment(cursor, stack, op: str):
        if op != "=" and op not in ARITH_ASSIGN:
            return
        children = list(cursor.get_children())
        if not children:
            return
        d = deepest_decl_ref(children[0])
        if d is None:
            return
        if d.spelling == "sealed_rows_":
            seal_check(cursor, stack, "sealed-directory write",
                       f"sealed_rows_ {op}", SEAL_DIRECTORY_ALLOWED)
        elif d.spelling == "sealed_" and "[" in "".join(
                t.spelling for t in children[0].get_tokens()):
            seal_check(cursor, stack, "sealed-directory write",
                       f"sealed_[…] {op}", SEAL_DIRECTORY_ALLOWED)

    # ----- kernel-purity -----
    def handle_kernel_node(cursor, stack):
        rel = ctx.rel(cursor)
        if rel not in KERNEL_FILES:
            return
        k = cursor.kind
        if k == ci.CursorKind.CXX_NEW_EXPR:
            ctx.add(cursor, "kernel-purity",
                    "heap allocation (new) inside the kernel layer")
        elif k == ci.CursorKind.CXX_DELETE_EXPR:
            ctx.add(cursor, "kernel-purity",
                    "heap deallocation (delete) inside the kernel layer")
        elif k == ci.CursorKind.CXX_THROW_EXPR:
            ctx.add(cursor, "kernel-purity",
                    "exception edge (throw) inside the kernel layer")
        elif k == ci.CursorKind.CXX_TRY_STMT:
            ctx.add(cursor, "kernel-purity",
                    "exception edge (try) inside the kernel layer")
        elif k == ci.CursorKind.CALL_EXPR:
            ref = cursor.referenced
            if ref is not None:
                if ref.spelling in HEAP_FUNCTIONS:
                    ctx.add(cursor, "kernel-purity",
                            f"heap allocation ({ref.spelling}) inside the "
                            "kernel layer")
                try:
                    virtual = ref.is_virtual_method()
                except Exception:
                    virtual = False
                if virtual:
                    ctx.add(cursor, "kernel-purity",
                            f"virtual dispatch ({ref.spelling}) inside the "
                            "kernel layer; kernels must be statically "
                            "resolvable innermost loops")
        elif k in (ci.CursorKind.PARM_DECL, ci.CursorKind.VAR_DECL,
                   ci.CursorKind.FIELD_DECL):
            tspell = cursor.type.spelling if cursor.type else ""
            m = BOXED_TYPE_RE.search(tspell)
            if m:
                ctx.add(cursor, "kernel-purity",
                        f"boxed {m.group(1)} in the kernel layer; kernels "
                        "take raw int64 chronon columns and uint32 "
                        "selection vectors only")

    # ----- the walk -----
    lines_cache: dict[str, list[str]] = {}

    def visit(cursor, stack):
        k = cursor.kind

        if k in fn_kinds and cursor.is_definition() and in_repo(cursor):
            usr = cursor.get_usr()
            ctx.fn_defs[usr] = cursor
            ctx.graph.setdefault(usr, [])
            if "mvcc-memory-order" in ctx.rules:
                check_wrapper_body(cursor)
            if "append-only" in ctx.rules and in_append_file:
                parent = cursor.semantic_parent
                pname = parent.spelling if parent is not None else ""
                rel = ctx.rel(cursor)
                if pname in APPEND_ONLY_CLASSES or rel in APPEND_ONLY_FILES:
                    append_entries.append(cursor)
            if "scan-prune" in ctx.rules and is_scan_tu and \
                    k == ci.CursorKind.CXX_METHOD:
                parent = cursor.semantic_parent
                if parent is not None and parent.spelling == "VersionStore" \
                        and SCAN_ENTRY_RE.match(cursor.spelling) \
                        and cursor.spelling != "PruneRanges":
                    scan_entries.append(cursor)
            if "result-discipline" in ctx.rules:
                result_fns.append((cursor, [], []))

        if k == ci.CursorKind.CALL_EXPR:
            fn = enclosing_function(stack)
            if fn is not None and fn.is_definition():
                usr = fn.get_usr()
                ref = cursor.referenced
                if ref is not None:
                    ctx.graph.setdefault(usr, []).append(
                        (ref.get_usr(), qualified_name(ref), cursor))
                    if "scan-prune" in ctx.rules and is_scan_tu:
                        nm = ref.spelling
                        if nm in ("PruneRanges", "RangeChunks"):
                            offs = prune_chunk_calls.setdefault(usr, {})
                            off = cursor.location.offset
                            if nm not in offs or off < offs[nm]:
                                offs[nm] = off
            if "mvcc-memory-order" in ctx.rules and in_repo(cursor):
                handle_atomic_call(cursor, stack)
            if "seal-discipline" in ctx.rules and is_seal_tu:
                handle_seal_call(cursor, stack)
            if "result-discipline" in ctx.rules and result_fns and \
                    in_repo(cursor):
                name = cursor.spelling
                if name in ("value", "ok"):
                    ref = cursor.referenced
                    recv = ""
                    if ref is not None and ref.semantic_parent is not None:
                        recv = ref.semantic_parent.spelling
                    if recv.startswith("Result") or recv == "Status":
                        fn2, values, oks = result_fns[-1]
                        key = base_tokens(cursor)
                        if name == "value" and recv.startswith("Result"):
                            values.append((cursor, key))
                        elif name == "ok":
                            oks.append(key)
                # Discarded Status& returns: a call in statement position
                # whose declared result type is a reference to Status (the
                # expression type itself loses the reference, so ask the
                # callee's declaration).
                if stack and stack[-1].kind == ci.CursorKind.COMPOUND_STMT:
                    ref2 = cursor.referenced
                    rt = ""
                    if ref2 is not None and ref2.result_type is not None:
                        rt = ref2.result_type.get_canonical().spelling
                    if re.search(r"\bStatus\s*&$", rt):
                        ctx.add(cursor, "result-discipline",
                                "discarded call returning Status&; the "
                                "reference launders away [[nodiscard]] — "
                                "check or (void)-annotate the status")

        elif k in (ci.CursorKind.BINARY_OPERATOR,
                   ci.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR):
            op = binary_op_spelling(cursor, lines_cache)
            if "seal-discipline" in ctx.rules and is_seal_tu:
                handle_seal_assignment(cursor, stack, op)
            if "chronon-arith" in ctx.rules and \
                    op in (ARITH_BINOPS | ARITH_ASSIGN) and in_repo(cursor):
                rel = ctx.rel(cursor)
                # Pointer arithmetic (`col_tt_end_.data() + row`) computes
                # an address, not a chronon value; only value arithmetic
                # can re-derive the saturation UB.
                is_ptr = False
                try:
                    is_ptr = (cursor.type.get_canonical().kind ==
                              ci.TypeKind.POINTER)
                except Exception:
                    pass
                if not is_ptr and rel not in CHRONON_SANCTIONED and \
                        subtree_contains_chronon_mark(cursor):
                    ctx.add(cursor, "chronon-arith",
                            f"raw int64 '{op}' on a chronon-typed operand "
                            "outside common/chronon.* and rel/kernels.*; "
                            "use the saturating Chronon operators — raw rep "
                            "arithmetic is how the pre-saturation overflow "
                            "UB happened")

        elif k == ci.CursorKind.UNARY_OPERATOR:
            if "chronon-arith" in ctx.rules and in_repo(cursor):
                toks = [t.spelling for t in cursor.get_tokens()]
                if toks and toks[0] in ("++", "--") or \
                        (toks and toks[-1] in ("++", "--")):
                    rel = ctx.rel(cursor)
                    if rel not in CHRONON_SANCTIONED and \
                            subtree_contains_chronon_mark(cursor):
                        ctx.add(cursor, "chronon-arith",
                                "raw increment/decrement of a chronon-typed "
                                "operand outside common/chronon.* and "
                                "rel/kernels.*; use Chronon::Next()/Prev() "
                                "(they saturate at the sentinels)")

        if "kernel-purity" in ctx.rules:
            handle_kernel_node(cursor, stack)

        stack.append(cursor)
        for child in cursor.get_children():
            visit(child, stack)
        stack.pop()

    root = ctx.tu.cursor
    for child in root.get_children():
        # Skip subtrees entirely outside the repo (system headers): huge and
        # irrelevant.
        loc_file = child.location.file
        if loc_file is not None and ctx.rel(child) is None:
            continue
        visit(child, [])

    # ----- whole-TU rules that need the finished call graph -----

    def reachable_hits(entry_usr: str, targets: set[str]):
        """BFS over the per-TU call graph; returns (call cursor, callee
        qualified name, path) for the first edge reaching a target whose
        unqualified name is in `targets`."""

        seen = {entry_usr}
        queue: list[tuple[str, list[str]]] = [(entry_usr, [])]
        while queue:
            usr, path = queue.pop(0)
            for callee_usr, callee_qn, call in ctx.graph.get(usr, []):
                base = callee_qn.rsplit("::", 1)[-1]
                if base in targets and "VersionStore" in callee_qn:
                    return call, callee_qn, path
                if callee_usr in seen:
                    continue
                seen.add(callee_usr)
                if callee_usr in ctx.fn_defs:
                    queue.append((callee_usr, path + [base]))
        return None

    if "append-only" in ctx.rules:
        for entry in append_entries:
            hit = reachable_hits(entry.get_usr(), FORBIDDEN_MUTATIONS)
            if hit is None:
                continue
            call, callee_qn, path = hit
            via = f" (via {' -> '.join(path)})" if path else ""
            name = callee_qn.rsplit("::", 1)[-1]
            ctx.add(call if not path else entry, "append-only",
                    f"{qualified_name(entry)} reaches {name}{via}; "
                    "rollback/temporal relations are append-only (taxonomy "
                    "§5) — only Append and CloseTxn may touch their version "
                    "stores")

    if "scan-prune" in ctx.rules and is_scan_tu:
        for entry in scan_entries:
            usr = entry.get_usr()
            seen = {usr}
            queue = [usr]
            found = False
            while queue and not found:
                u = queue.pop(0)
                for callee_usr, callee_qn, _ in ctx.graph.get(u, []):
                    if callee_qn.endswith("::PruneRanges"):
                        found = True
                        break
                    if callee_usr not in seen:
                        seen.add(callee_usr)
                        if callee_usr in ctx.fn_defs:
                            queue.append(callee_usr)
            if not found:
                ctx.add(entry, "scan-prune",
                        f"scan entry point VersionStore::{entry.spelling} "
                        "never reaches PruneRanges; every access path must "
                        "consult the partition synopses before forming "
                        "scan geometry, or pruning silently stops applying "
                        "to it")
        for usr, offs in prune_chunk_calls.items():
            if "PruneRanges" in offs and "RangeChunks" in offs and \
                    offs["RangeChunks"] < offs["PruneRanges"]:
                fn = ctx.fn_defs.get(usr)
                if fn is not None:
                    ctx.add(fn, "scan-prune",
                            f"{fn.spelling} forms chunk geometry "
                            "(RangeChunks) before PruneRanges; pruned "
                            "partitions must never form morsels")

    if "result-discipline" in ctx.rules:
        for fn, values, oks in result_fns:
            if not values:
                continue
            # Result's own accessors (operator*, operator->) funnel through
            # value() by design; the discipline applies to *callers*.
            owner = fn.semantic_parent
            owner_name = owner.spelling if owner is not None else ""
            if owner_name.startswith("Result") or owner_name == "Status":
                continue
            ok_keys = set(oks)
            for call, key in values:
                if key and key in ok_keys:
                    continue
                # A base checked under any spelling (e.g. `*r` after
                # `r.ok()`) still counts if the token string matches after
                # stripping dereference sigils.
                if key.lstrip("*&") in ok_keys:
                    continue
                ctx.add(call, "result-discipline",
                        f"Result::value() on '{key or '<expr>'}' with no "
                        "ok() check anywhere in "
                        f"{fn.spelling or 'this function'}; the assert "
                        "inside value() compiles out in release builds — "
                        "check ok() (or use TDB_ASSIGN_OR_RETURN)")


# ---------------------------------------------------------------------------
# Compile database / caching / driver
# ---------------------------------------------------------------------------

def load_compile_commands(build_dir: Path):
    cc_path = build_dir / "compile_commands.json"
    if not cc_path.is_file():
        return None
    entries = json.loads(cc_path.read_text())
    out = []
    for e in entries:
        args = e.get("arguments")
        if args is None:
            args = shlex.split(e.get("command", ""))
        out.append({
            "file": str(Path(e["directory"], e["file"]).resolve()),
            "directory": e["directory"],
            "arguments": args,
        })
    return out


def clean_args(arguments: list[str], source_file: str) -> list[str]:
    """Compiler argv -> libclang parse args: drop the compiler, -c/-o, and
    the source path; keep includes/defines/standard/warnings-off."""

    out = []
    skip_next = False
    for i, a in enumerate(arguments):
        if i == 0:
            continue  # compiler executable
        if skip_next:
            skip_next = False
            continue
        if a in ("-c",):
            continue
        if a == "-o":
            skip_next = True
            continue
        if os.path.basename(a) == os.path.basename(source_file) and \
                a.endswith((".cpp", ".cc", ".cxx", ".c")):
            continue
        out.append(a)
    return out


def resource_dir_args() -> list[str]:
    """libclang usually finds its own builtin headers; when it cannot
    (mismatched packaging), point it at an installed clang resource dir."""

    for pattern in ("/usr/lib/llvm-*/lib/clang/*/include",):
        hits = sorted(Path("/").glob(pattern.lstrip("/")), reverse=True)
        if hits:
            return ["-isystem", str(hits[0])]
    return []


def tu_cache_key(args: list[str], main_content: bytes, rules: set[str]) -> str:
    h = hashlib.sha256()
    h.update(ANALYZER_VERSION.encode())
    h.update(repr(sorted(rules)).encode())
    h.update(repr(args).encode())
    h.update(main_content)
    return h.hexdigest()


def file_sha(path: str) -> str | None:
    try:
        return hashlib.sha256(Path(path).read_bytes()).hexdigest()
    except OSError:
        return None


def cache_lookup(cache_dir: Path, key: str):
    entry = cache_dir / f"{key}.json"
    if not entry.is_file():
        return None
    try:
        data = json.loads(entry.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    for dep, sha in data.get("deps", {}).items():
        if file_sha(dep) != sha:
            return None
    return data.get("findings", [])


def cache_store(cache_dir: Path, key: str, deps: dict[str, str],
                findings: list[Finding]):
    cache_dir.mkdir(parents=True, exist_ok=True)
    entry = cache_dir / f"{key}.json"
    tmp = entry.with_suffix(".tmp")
    tmp.write_text(json.dumps({
        "deps": deps,
        "findings": [[f.path, f.line, f.rule, f.message] for f in findings],
    }))
    tmp.replace(entry)


def analyze_one(index, path: str, args: list[str], effective_path: str,
                rules: set[str], repo: Path,
                cache_dir: Path | None) -> tuple[list[Finding], bool]:
    """Parses and analyzes one TU (with caching).  Returns (findings,
    from_cache)."""

    ci = _cindex
    main_content = Path(path).read_bytes()
    key = tu_cache_key(args + [effective_path], main_content, rules)
    if cache_dir is not None:
        cached = cache_lookup(cache_dir, key)
        if cached is not None:
            return [Finding(*row) for row in cached], True

    try:
        tu = index.parse(path, args=args)
    except ci.TranslationUnitLoadError as e:
        raise RuntimeError(f"failed to parse {path}: {e}")

    hard = [d for d in tu.diagnostics if d.severity >= ci.Diagnostic.Error]
    if hard:
        retry_args = args + resource_dir_args()
        tu = index.parse(path, args=retry_args)
        hard = [d for d in tu.diagnostics
                if d.severity >= ci.Diagnostic.Error]
        if hard:
            msgs = "; ".join(f"{d.location}: {d.spelling}" for d in hard[:5])
            raise RuntimeError(
                f"{path}: parse errors — analysis on a broken AST would "
                f"miss findings: {msgs}")

    ctx = TuContext(tu, os.path.abspath(path), effective_path, repo, rules)
    analyze_tu(ctx)

    if cache_dir is not None:
        deps = {path: hashlib.sha256(main_content).hexdigest()}
        for inc in tu.get_includes():
            try:
                p = str(Path(inc.include.name).resolve())
            except (OSError, AttributeError):
                continue
            if p.startswith(str(repo) + os.sep) and p not in deps:
                sha = file_sha(p)
                if sha is not None:
                    deps[p] = sha
        cache_store(cache_dir, key, deps, ctx.findings)
    return ctx.findings, False


def dedupe_sorted(findings: list[Finding]) -> list[Finding]:
    seen = set()
    out = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule,
                                             f.message)):
        if f.key() in seen:
            continue
        seen.add(f.key())
        out.append(f)
    return out


def run_probe() -> int:
    if load_cindex() is None:
        print(f"tdb_analyze: unavailable — {cindex_unavailable_reason()}",
              file=sys.stderr)
        return EXIT_NO_CLANG
    print("tdb_analyze: libclang OK")
    return EXIT_CLEAN


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="tdb_analyze.py",
        description="AST-level semantic analyzer for temporadb invariants")
    ap.add_argument("-p", "--build-dir", default="build",
                    help="build dir containing compile_commands.json")
    ap.add_argument("--rules", default=",".join(ALL_RULES),
                    help="comma-separated rule subset")
    ap.add_argument("--files", nargs="*", default=None,
                    help="restrict to these sources (repo-relative)")
    ap.add_argument("--cache-dir", default=None,
                    help="findings cache (default BUILD_DIR/"
                         ".tdb-analyze-cache; 'none' disables)")
    ap.add_argument("--probe", action="store_true",
                    help="exit 0 if libclang is usable, 3 otherwise")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--single", default=None,
                    help="analyze one file with flags after '--' "
                         "(fixture/self-test mode; no compile db)")
    ap.add_argument("--treat-as", default=None,
                    help="with --single: repo-relative path used for rule "
                         "scoping")
    ap.add_argument("extra", nargs="*",
                    help="with --single: parse flags after '--'")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in ALL_RULES:
            print(r)
        return EXIT_CLEAN
    if args.probe:
        return run_probe()

    rules = set()
    for r in args.rules.split(","):
        r = r.strip()
        if not r:
            continue
        if r not in ALL_RULES:
            print(f"tdb_analyze: unknown rule '{r}' "
                  f"(known: {', '.join(ALL_RULES)})", file=sys.stderr)
            return EXIT_ERROR
        rules.add(r)

    ci = load_cindex()
    if ci is None:
        print(f"tdb_analyze: unavailable — {cindex_unavailable_reason()}",
              file=sys.stderr)
        return EXIT_NO_CLANG
    index = ci.Index.create()

    findings: list[Finding] = []
    file_texts: dict[str, str] = {}

    if args.single:
        path = str(Path(args.single).resolve())
        effective = args.treat_as or os.path.basename(path)
        flags = [a for a in args.extra if a != "--"]
        try:
            fs, _ = analyze_one(index, path, flags, effective, rules, REPO,
                                None)
        except RuntimeError as e:
            print(f"tdb_analyze: {e}", file=sys.stderr)
            return EXIT_ERROR
        findings.extend(fs)
        file_texts[effective] = Path(path).read_text()
    else:
        build_dir = Path(args.build_dir)
        db = load_compile_commands(build_dir)
        if db is None:
            print(f"tdb_analyze: {build_dir}/compile_commands.json not "
                  "found; configure first: "
                  f"cmake -B {build_dir} -S .", file=sys.stderr)
            return EXIT_ERROR
        cache_dir: Path | None
        if args.cache_dir == "none":
            cache_dir = None
        elif args.cache_dir:
            cache_dir = Path(args.cache_dir)
        else:
            cache_dir = build_dir / ".tdb-analyze-cache"

        wanted = None
        if args.files:
            wanted = {str((REPO / f).resolve()) if not os.path.isabs(f)
                      else str(Path(f).resolve()) for f in args.files}

        n_parsed = n_cached = 0
        src_prefix = str(REPO / "src") + os.sep
        for entry in db:
            f = entry["file"]
            if not f.startswith(src_prefix):
                continue  # Library sources only; tests/benches are
                # scaffolding with their own idioms.
            if wanted is not None and f not in wanted:
                continue
            flags = clean_args(entry["arguments"], f)
            try:
                fs, from_cache = analyze_one(index, f, flags,
                                             str(Path(f).relative_to(REPO)),
                                             rules, REPO, cache_dir)
            except RuntimeError as e:
                print(f"tdb_analyze: {e}", file=sys.stderr)
                return EXIT_ERROR
            findings.extend(fs)
            n_cached += from_cache
            n_parsed += not from_cache
        for f in findings:
            p = REPO / f.path
            if f.path not in file_texts and p.is_file():
                file_texts[f.path] = p.read_text()
        # Suppression scanning must also cover files with zero findings so
        # reason-less allow comments are reported; scan every analyzed file.
        for entry in db:
            f = entry["file"]
            if not f.startswith(src_prefix):
                continue
            rel = str(Path(f).relative_to(REPO))
            if rel not in file_texts:
                file_texts[rel] = Path(f).read_text()
        print(f"tdb_analyze: {n_parsed} parsed, {n_cached} from cache",
              file=sys.stderr)

    findings = dedupe_sorted(apply_suppressions(findings, file_texts))
    for f in findings:
        print(f)
    if findings:
        print(f"tdb_analyze: {len(findings)} finding(s)", file=sys.stderr)
        return EXIT_FINDINGS
    print("tdb_analyze: OK", file=sys.stderr)
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
