#include "storage/tuple.h"

#include "common/coding.h"
#include "common/strings.h"

namespace temporadb {
namespace tuple_codec {

namespace {

void EncodeOne(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      PutFixed64(out, static_cast<uint64_t>(v.AsInt()));
      break;
    case ValueType::kFloat: {
      double d = v.AsFloat();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      PutFixed64(out, bits);
      break;
    }
    case ValueType::kString:
      PutLengthPrefixed(out, v.AsString());
      break;
    case ValueType::kDate:
      PutFixed64(out, static_cast<uint64_t>(v.AsDate().chronon().days()));
      break;
    case ValueType::kBool:
      out->push_back(v.AsBool() ? 1 : 0);
      break;
  }
}

Result<Value> DecodeOne(std::string_view* in) {
  if (in->empty()) return Status::Corruption("tuple: truncated type tag");
  ValueType tag = static_cast<ValueType>((*in)[0]);
  in->remove_prefix(1);
  switch (tag) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt: {
      uint64_t bits;
      if (!GetFixed64(in, &bits)) return Status::Corruption("tuple: int");
      return Value(static_cast<int64_t>(bits));
    }
    case ValueType::kFloat: {
      uint64_t bits;
      if (!GetFixed64(in, &bits)) return Status::Corruption("tuple: float");
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case ValueType::kString: {
      std::string_view s;
      if (!GetLengthPrefixed(in, &s)) return Status::Corruption("tuple: str");
      return Value(std::string(s));
    }
    case ValueType::kDate: {
      uint64_t bits;
      if (!GetFixed64(in, &bits)) return Status::Corruption("tuple: date");
      return Value(Date(Chronon(static_cast<int64_t>(bits))));
    }
    case ValueType::kBool: {
      if (in->empty()) return Status::Corruption("tuple: bool");
      bool b = (*in)[0] != 0;
      in->remove_prefix(1);
      return Value(b);
    }
  }
  return Status::Corruption(StringPrintf("tuple: unknown type tag %d",
                                         static_cast<int>(tag)));
}

}  // namespace

Status EncodeValues(const Schema& schema, const std::vector<Value>& values,
                    std::string* out) {
  if (values.size() != schema.size()) {
    return Status::InvalidArgument(StringPrintf(
        "tuple arity %zu does not match schema arity %zu", values.size(),
        schema.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (!schema.at(i).type.Admits(values[i])) {
      return Status::InvalidArgument(StringPrintf(
          "attribute '%s' does not admit a %s value",
          schema.at(i).name.c_str(),
          std::string(ValueTypeName(values[i].type())).c_str()));
    }
  }
  EncodeValuesUnchecked(values, out);
  return Status::OK();
}

void EncodeValuesUnchecked(const std::vector<Value>& values,
                           std::string* out) {
  PutFixed32(out, static_cast<uint32_t>(values.size()));
  for (const Value& v : values) EncodeOne(v, out);
}

Result<std::vector<Value>> DecodeValues(std::string_view* in) {
  uint32_t n;
  if (!GetFixed32(in, &n)) return Status::Corruption("tuple: truncated arity");
  std::vector<Value> values;
  values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TDB_ASSIGN_OR_RETURN(Value v, DecodeOne(in));
    values.push_back(std::move(v));
  }
  return values;
}

}  // namespace tuple_codec
}  // namespace temporadb
