#ifndef TEMPORADB_STORAGE_TUPLE_H_
#define TEMPORADB_STORAGE_TUPLE_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/value.h"

namespace temporadb {

/// Byte-level encode/decode of tuple values.
///
/// The wire format is self-describing (each cell carries a type tag), so
/// decoding tolerates NULLs and schema evolution is detectable; the schema
/// is still consulted for validation on encode.
namespace tuple_codec {

/// Appends the encoding of `values` to `out`.  Validates arity and type
/// admissibility against `schema`.
Status EncodeValues(const Schema& schema, const std::vector<Value>& values,
                    std::string* out);

/// Appends the encoding of `values` without schema validation (used for
/// derived rows whose schema is synthetic).
void EncodeValuesUnchecked(const std::vector<Value>& values, std::string* out);

/// Decodes values from `*in`, advancing the cursor.
Result<std::vector<Value>> DecodeValues(std::string_view* in);

}  // namespace tuple_codec

}  // namespace temporadb

#endif  // TEMPORADB_STORAGE_TUPLE_H_
