#ifndef TEMPORADB_STORAGE_HEAP_FILE_H_
#define TEMPORADB_STORAGE_HEAP_FILE_H_

#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace temporadb {

/// An unordered collection of variable-length records on slotted pages.
///
/// Pages form a singly linked chain starting at page 0; appends go to the
/// tail page, allocating a new page when full.  Records are addressed by
/// stable `RecordId`s.  This is the byte-level substrate; tuple semantics
/// live in the temporal layer.
class HeapFile {
 public:
  /// Opens (or creates) a heap file over the given pager.  The pool's
  /// capacity bounds resident pages.
  static Result<std::unique_ptr<HeapFile>> Open(std::unique_ptr<Pager> pager,
                                                size_t pool_capacity = 64);

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Appends a record, returning its id.
  Result<RecordId> Append(Slice record);

  /// Reads a record into `out` (copies; the page may be evicted).
  Status Read(RecordId id, std::string* out);

  /// Tombstones a record.
  Status Delete(RecordId id);

  /// In-place update when the record did not grow; otherwise deletes and
  /// re-appends, returning the (possibly new) id.
  Result<RecordId> Update(RecordId id, Slice record);

  /// Calls `fn(id, bytes)` for every live record in storage order; stops
  /// early and propagates if `fn` returns non-OK.
  Status Scan(
      const std::function<Status(RecordId, Slice)>& fn);

  /// Flushes all dirty pages and syncs the underlying pager.
  Status Flush();

  /// Number of pages in the file (for the storage-growth bench).
  PageId page_count() const { return pager_->page_count(); }

  BufferPool* buffer_pool() { return &pool_; }

 private:
  HeapFile(std::unique_ptr<Pager> pager, size_t pool_capacity)
      : pager_(std::move(pager)), pool_(pager_.get(), pool_capacity) {}

  Status EnsureFirstPage();

  std::unique_ptr<Pager> pager_;
  BufferPool pool_;
  PageId tail_page_ = kInvalidPageId;
};

}  // namespace temporadb

#endif  // TEMPORADB_STORAGE_HEAP_FILE_H_
