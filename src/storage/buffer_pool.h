#ifndef TEMPORADB_STORAGE_BUFFER_POOL_H_
#define TEMPORADB_STORAGE_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <unordered_map>

#include "common/result.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace temporadb {

/// An LRU page cache over a `Pager`.
///
/// Frames are pinned while in use; only unpinned frames are eviction
/// candidates.  Dirty frames are written back (with a fresh checksum) on
/// eviction and on `FlushAll`.  Checksums are verified when a page is
/// faulted in; a mismatch surfaces as `Corruption`.
class BufferPool {
 public:
  /// A pinned page handle; unpins on destruction (RAII).
  class PageGuard {
   public:
    PageGuard() = default;
    PageGuard(BufferPool* pool, PageId id, char* data)
        : pool_(pool), id_(id), data_(data) {}
    ~PageGuard() { Release(); }

    PageGuard(const PageGuard&) = delete;
    PageGuard& operator=(const PageGuard&) = delete;
    PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
    PageGuard& operator=(PageGuard&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        id_ = other.id_;
        data_ = other.data_;
        other.pool_ = nullptr;
        other.data_ = nullptr;
      }
      return *this;
    }

    bool valid() const { return data_ != nullptr; }
    PageId page_id() const { return id_; }
    char* data() { return data_; }
    const char* data() const { return data_; }

    /// Marks the frame dirty; must be called after mutating the page.
    void MarkDirty();

    /// Explicit early unpin.
    void Release();

   private:
    BufferPool* pool_ = nullptr;
    PageId id_ = kInvalidPageId;
    char* data_ = nullptr;
  };

  /// `capacity` is the number of frames (pages held in memory at once).
  BufferPool(Pager* pager, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, faulting it in if needed.
  Result<PageGuard> FetchPage(PageId id);

  /// Allocates a fresh page, formats it as a slotted page, and pins it.
  Result<PageGuard> NewPage();

  /// Writes back all dirty frames and syncs the pager.
  Status FlushAll();

  /// Statistics for the benchmark harness.
  uint64_t hit_count() const { return hits_; }
  uint64_t miss_count() const { return misses_; }
  size_t capacity() const { return capacity_; }

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    std::unique_ptr<char[]> data;
    int pin_count = 0;
    bool dirty = false;
    std::list<size_t>::iterator lru_pos;  // Valid iff pin_count == 0.
    bool in_lru = false;
  };

  void Unpin(PageId id, bool dirty);
  Status EvictOne();
  Result<size_t> GetFreeFrame();

  Pager* pager_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::list<size_t> lru_;  // Front = most recent.
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;

  friend class PageGuard;
};

}  // namespace temporadb

#endif  // TEMPORADB_STORAGE_BUFFER_POOL_H_
