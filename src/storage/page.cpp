#include "storage/page.h"

#include <cstring>

#include "common/coding.h"

namespace temporadb {

namespace {

uint16_t LoadU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

void StoreU16(char* p, uint16_t v) { std::memcpy(p, &v, 2); }

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void StoreU64(char* p, uint64_t v) { std::memcpy(p, &v, 8); }

constexpr size_t kChecksumOffset = 0;
constexpr size_t kSlotCountOffset = 8;
constexpr size_t kCellStartOffset = 10;
constexpr size_t kNextPageOffset = 12;

}  // namespace

void SlottedPage::Init() {
  std::memset(data_, 0, kPageSize);
  StoreU16(data_ + kSlotCountOffset, 0);
  StoreU16(data_ + kCellStartOffset, static_cast<uint16_t>(kPageSize));
  StoreU32(data_ + kNextPageOffset, kInvalidPageId);
}

uint16_t SlottedPage::slot_count() const {
  return LoadU16(data_ + kSlotCountOffset);
}

uint16_t SlottedPage::GetSlotOffset(uint16_t slot) const {
  return LoadU16(data_ + kHeaderSize + slot * kSlotEntrySize);
}

uint16_t SlottedPage::GetSlotLength(uint16_t slot) const {
  return LoadU16(data_ + kHeaderSize + slot * kSlotEntrySize + 2);
}

void SlottedPage::SetSlot(uint16_t slot, uint16_t offset, uint16_t length) {
  StoreU16(data_ + kHeaderSize + slot * kSlotEntrySize, offset);
  StoreU16(data_ + kHeaderSize + slot * kSlotEntrySize + 2, length);
}

size_t SlottedPage::FreeSpace() const {
  size_t dir_end = kHeaderSize + slot_count() * kSlotEntrySize;
  size_t cell_start = LoadU16(data_ + kCellStartOffset);
  size_t gap = cell_start > dir_end ? cell_start - dir_end : 0;
  return gap > kSlotEntrySize ? gap - kSlotEntrySize : 0;
}

Result<uint16_t> SlottedPage::Insert(Slice record) {
  if (record.size() > 0xFFFF) {
    return Status::InvalidArgument("record larger than 64 KiB");
  }
  size_t dir_end = kHeaderSize + slot_count() * kSlotEntrySize;
  size_t cell_start = LoadU16(data_ + kCellStartOffset);
  if (dir_end + kSlotEntrySize + record.size() > cell_start) {
    return Status::OutOfRange("page full");
  }
  uint16_t new_cell_start = static_cast<uint16_t>(cell_start - record.size());
  std::memcpy(data_ + new_cell_start, record.data(), record.size());
  uint16_t slot = slot_count();
  SetSlot(slot, new_cell_start, static_cast<uint16_t>(record.size()));
  StoreU16(data_ + kSlotCountOffset, static_cast<uint16_t>(slot + 1));
  StoreU16(data_ + kCellStartOffset, new_cell_start);
  return slot;
}

Result<Slice> SlottedPage::Get(uint16_t slot) const {
  if (slot >= slot_count()) {
    return Status::NotFound("slot out of range");
  }
  uint16_t offset = GetSlotOffset(slot);
  uint16_t length = GetSlotLength(slot);
  if (offset == 0) {
    return Status::NotFound("slot tombstoned");
  }
  return Slice(data_ + offset, length);
}

Status SlottedPage::Delete(uint16_t slot) {
  if (slot >= slot_count()) {
    return Status::NotFound("slot out of range");
  }
  SetSlot(slot, 0, 0);
  return Status::OK();
}

Status SlottedPage::UpdateInPlace(uint16_t slot, Slice record) {
  if (slot >= slot_count()) {
    return Status::NotFound("slot out of range");
  }
  uint16_t offset = GetSlotOffset(slot);
  uint16_t length = GetSlotLength(slot);
  if (offset == 0) {
    return Status::NotFound("slot tombstoned");
  }
  if (record.size() > length) {
    return Status::OutOfRange("record grew; relocate instead");
  }
  std::memcpy(data_ + offset, record.data(), record.size());
  SetSlot(slot, offset, static_cast<uint16_t>(record.size()));
  return Status::OK();
}

PageId SlottedPage::next_page() const {
  return LoadU32(data_ + kNextPageOffset);
}

void SlottedPage::set_next_page(PageId id) {
  StoreU32(data_ + kNextPageOffset, id);
}

void SlottedPage::StampChecksum() {
  uint64_t sum = Checksum64(data_ + 8, kPageSize - 8);
  StoreU64(data_ + kChecksumOffset, sum);
}

bool SlottedPage::VerifyChecksum() const {
  uint64_t stored = LoadU64(data_ + kChecksumOffset);
  return stored == Checksum64(data_ + 8, kPageSize - 8);
}

std::vector<uint16_t> SlottedPage::LiveSlots() const {
  std::vector<uint16_t> out;
  uint16_t n = slot_count();
  for (uint16_t s = 0; s < n; ++s) {
    if (GetSlotOffset(s) != 0) out.push_back(s);
  }
  return out;
}

}  // namespace temporadb
