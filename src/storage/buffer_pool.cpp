#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

namespace temporadb {

void BufferPool::PageGuard::MarkDirty() {
  assert(valid());
  size_t frame = pool_->page_table_.at(id_);
  pool_->frames_[frame].dirty = true;
}

void BufferPool::PageGuard::Release() {
  if (pool_ != nullptr && data_ != nullptr) {
    pool_->Unpin(id_, /*dirty=*/false);
  }
  pool_ = nullptr;
  data_ = nullptr;
}

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : pager_(pager), capacity_(capacity == 0 ? 1 : capacity) {
  frames_.resize(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    frames_[i].data = std::make_unique<char[]>(kPageSize);
    free_frames_.push_back(capacity_ - 1 - i);
  }
}

// Best-effort flush from a destructor: nobody can receive the status, and
// durability is the WAL's job — a lost page here is rebuilt on recovery.
BufferPool::~BufferPool() { (void)FlushAll(); }

Result<size_t> BufferPool::GetFreeFrame() {
  if (!free_frames_.empty()) {
    size_t f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  TDB_RETURN_IF_ERROR(EvictOne());
  if (free_frames_.empty()) {
    return Status::Internal("eviction produced no free frame");
  }
  size_t f = free_frames_.back();
  free_frames_.pop_back();
  return f;
}

Status BufferPool::EvictOne() {
  if (lru_.empty()) {
    return Status::FailedPrecondition(
        "buffer pool exhausted: all frames pinned");
  }
  size_t frame_idx = lru_.back();
  lru_.pop_back();
  Frame& frame = frames_[frame_idx];
  frame.in_lru = false;
  assert(frame.pin_count == 0);
  if (frame.dirty) {
    SlottedPage view(frame.data.get());
    view.StampChecksum();
    TDB_RETURN_IF_ERROR(pager_->WritePage(frame.page_id, frame.data.get()));
    frame.dirty = false;
  }
  page_table_.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  free_frames_.push_back(frame_idx);
  return Status::OK();
}

Result<BufferPool::PageGuard> BufferPool::FetchPage(PageId id) {
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++hits_;
    Frame& frame = frames_[it->second];
    if (frame.pin_count == 0 && frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return PageGuard(this, id, frame.data.get());
  }
  ++misses_;
  TDB_ASSIGN_OR_RETURN(size_t frame_idx, GetFreeFrame());
  Frame& frame = frames_[frame_idx];
  TDB_RETURN_IF_ERROR(pager_->ReadPage(id, frame.data.get()));
  SlottedPage view(frame.data.get());
  if (!view.VerifyChecksum()) {
    free_frames_.push_back(frame_idx);
    return Status::Corruption("page checksum mismatch on page " +
                              std::to_string(id));
  }
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.in_lru = false;
  page_table_[id] = frame_idx;
  return PageGuard(this, id, frame.data.get());
}

Result<BufferPool::PageGuard> BufferPool::NewPage() {
  TDB_ASSIGN_OR_RETURN(PageId id, pager_->AllocatePage());
  TDB_ASSIGN_OR_RETURN(size_t frame_idx, GetFreeFrame());
  Frame& frame = frames_[frame_idx];
  SlottedPage view(frame.data.get());
  view.Init();
  view.StampChecksum();
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = true;
  frame.in_lru = false;
  page_table_[id] = frame_idx;
  return PageGuard(this, id, frame.data.get());
}

void BufferPool::Unpin(PageId id, bool dirty) {
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return;
  Frame& frame = frames_[it->second];
  if (dirty) frame.dirty = true;
  assert(frame.pin_count > 0);
  --frame.pin_count;
  if (frame.pin_count == 0) {
    lru_.push_front(it->second);
    frame.lru_pos = lru_.begin();
    frame.in_lru = true;
  }
}

Status BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.dirty) {
      SlottedPage view(frame.data.get());
      view.StampChecksum();
      TDB_RETURN_IF_ERROR(pager_->WritePage(frame.page_id, frame.data.get()));
      frame.dirty = false;
    }
  }
  return pager_->Sync();
}

}  // namespace temporadb
