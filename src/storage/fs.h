#ifndef TEMPORADB_STORAGE_FS_H_
#define TEMPORADB_STORAGE_FS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace temporadb {

/// A positioned read/write file handle.
///
/// Writes land in the OS cache (or a fault-injection shadow); nothing is
/// durable until `Sync` returns OK.  This is the seam the fault-injection
/// layer interposes on: every byte the storage stack persists flows through
/// a `File`, so a simulated crash knows exactly which bytes were synced.
class File {
 public:
  virtual ~File() = default;

  /// Reads up to `n` bytes at `offset`; returns the count actually read
  /// (short only at end-of-file).
  virtual Result<size_t> ReadAt(uint64_t offset, char* buf, size_t n) = 0;

  /// Writes exactly `n` bytes at `offset`, extending the file if needed.
  virtual Status WriteAt(uint64_t offset, const char* data, size_t n) = 0;

  /// Shrinks (or extends with zeros) the file to `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  /// Durability barrier: all preceding writes and truncations survive a
  /// crash once this returns OK.  A failed sync promises nothing.
  virtual Status Sync() = 0;

  virtual Result<uint64_t> Size() = 0;
};

/// Filesystem operations used by the storage stack (WAL, pager,
/// checkpoints).  `Default()` is the real POSIX filesystem; tests wrap it in
/// a `FaultInjectionFileSystem` to prove crash safety.
///
/// Durability contract mirrors POSIX: file data needs `File::Sync`; a
/// created or renamed *directory entry* needs `SyncDir` on the parent before
/// it is guaranteed to survive a crash.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// The process-wide POSIX filesystem.
  static FileSystem* Default();

  /// Opens `path` read-write; creates it when `create` is set.  Missing
  /// file without `create` is NotFound.
  virtual Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                                 bool create) = 0;

  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;

  virtual Status MakeDir(const std::string& path) = 0;
  /// Removes an empty directory.
  virtual Status RemoveDir(const std::string& path) = 0;
  /// fsync on the directory: persists entry creations/renames/removals.
  virtual Status SyncDir(const std::string& path) = 0;
  /// Entry names (no "." / ".."); NotFound for a missing directory.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual bool DirExists(const std::string& path) = 0;
};

/// Reads the whole file; NotFound if it does not exist.
Result<std::string> ReadFileToString(FileSystem* fs, const std::string& path);

/// Crash-safe whole-file replace: writes `path + ".tmp"`, fsyncs it, renames
/// over `path`, then fsyncs the parent directory.  After OK, a crash yields
/// either the old content or the new content, never a torn or empty file.
Status WriteFileDurable(FileSystem* fs, const std::string& path,
                        std::string_view content);

/// Removes every entry in `path` and the directory itself.  OK if already
/// gone.
Status RemoveDirRecursive(FileSystem* fs, const std::string& path);

/// The parent directory of `path` ("." when there is no separator).
std::string DirName(const std::string& path);

}  // namespace temporadb

#endif  // TEMPORADB_STORAGE_FS_H_
