#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/coding.h"
#include "common/strings.h"

namespace temporadb {

namespace {

// Record wire format:
//   u64 lsn | u32 type | u32 payload_len | payload | u64 checksum
// The checksum covers everything before it.
constexpr size_t kRecordHeaderSize = 8 + 4 + 4;

struct ScanResult {
  uint64_t next_lsn = 1;
  uint64_t valid_bytes = 0;
};

// Scans the file, returning the next LSN and the byte offset of the first
// torn/corrupt record (where appends should resume).
Result<ScanResult> ScanLog(
    int fd, const std::function<Status(const WalRecord&)>* fn,
    uint64_t from_lsn) {
  ScanResult result;
  off_t offset = 0;
  while (true) {
    char header[kRecordHeaderSize];
    ssize_t n = ::pread(fd, header, kRecordHeaderSize, offset);
    if (n < static_cast<ssize_t>(kRecordHeaderSize)) break;  // Clean EOF/tear.
    std::string_view hv(header, kRecordHeaderSize);
    uint64_t lsn;
    uint32_t type, len;
    GetFixed64(&hv, &lsn);
    GetFixed32(&hv, &type);
    GetFixed32(&hv, &len);
    if (len > (64u << 20)) break;  // Implausible length: treat as a tear.
    std::string body(len, '\0');
    ssize_t bn = ::pread(fd, body.data(), len, offset + kRecordHeaderSize);
    if (bn < static_cast<ssize_t>(len)) break;
    char sumbuf[8];
    ssize_t sn = ::pread(fd, sumbuf, 8, offset + kRecordHeaderSize + len);
    if (sn < 8) break;
    uint64_t stored;
    std::memcpy(&stored, sumbuf, 8);
    // Recompute over header + payload.
    std::string covered(header, kRecordHeaderSize);
    covered += body;
    if (Checksum64(covered.data(), covered.size()) != stored) break;
    if (fn != nullptr && lsn >= from_lsn) {
      WalRecord rec;
      rec.lsn = lsn;
      rec.type = type;
      rec.payload = std::move(body);
      TDB_RETURN_IF_ERROR((*fn)(rec));
    }
    result.next_lsn = lsn + 1;
    offset += static_cast<off_t>(kRecordHeaderSize + len + 8);
    result.valid_bytes = static_cast<uint64_t>(offset);
  }
  return result;
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError(StringPrintf("open(%s): %s", path.c_str(),
                                        std::strerror(errno)));
  }
  Result<ScanResult> scan = ScanLog(fd, nullptr, 0);
  if (!scan.ok()) {
    ::close(fd);
    return scan.status();
  }
  // Discard any torn tail so fresh appends start at a clean boundary.
  if (::ftruncate(fd, static_cast<off_t>(scan->valid_bytes)) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError(StringPrintf("ftruncate: %s", std::strerror(err)));
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, fd, scan->next_lsn, scan->valid_bytes));
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> WriteAheadLog::Append(uint32_t type, Slice payload) {
  uint64_t lsn = next_lsn_;
  std::string buf;
  buf.reserve(kRecordHeaderSize + payload.size() + 8);
  PutFixed64(&buf, lsn);
  PutFixed32(&buf, type);
  PutFixed32(&buf, static_cast<uint32_t>(payload.size()));
  buf.append(payload.data(), payload.size());
  uint64_t sum = Checksum64(buf.data(), buf.size());
  PutFixed64(&buf, sum);
  ssize_t n = ::pwrite(fd_, buf.data(), buf.size(),
                       static_cast<off_t>(append_offset_));
  if (n != static_cast<ssize_t>(buf.size())) {
    return Status::IOError("short WAL append");
  }
  append_offset_ += buf.size();
  ++next_lsn_;
  return lsn;
}

Status WriteAheadLog::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError(StringPrintf("fsync: %s", std::strerror(errno)));
  }
  return Status::OK();
}

Status WriteAheadLog::Replay(
    uint64_t from_lsn,
    const std::function<Status(const WalRecord&)>& fn) const {
  Result<ScanResult> scan = ScanLog(fd_, &fn, from_lsn);
  return scan.ok() ? Status::OK() : scan.status();
}

Status WriteAheadLog::Truncate() {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError(StringPrintf("ftruncate: %s", std::strerror(errno)));
  }
  append_offset_ = 0;
  return Sync();
}

Result<uint64_t> WriteAheadLog::SizeBytes() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError(StringPrintf("fstat: %s", std::strerror(errno)));
  }
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace temporadb
