#include "storage/wal.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"
#include "common/strings.h"

namespace temporadb {

namespace {

// Record wire format:
//   u64 lsn | u32 type | u32 payload_len | payload | u64 checksum
// The checksum covers everything before it.
constexpr size_t kRecordHeaderSize = 8 + 4 + 4;
constexpr uint32_t kMaxPayload = 64u << 20;

// Log header: u64 magic | u64 start_lsn | u64 checksum(first 16 bytes).
constexpr uint64_t kWalMagic = 0x54444257414C3031ULL;  // "TDBWAL01"

struct ScanResult {
  uint64_t next_lsn = 1;
  uint64_t valid_bytes = WriteAheadLog::kHeaderSize;
};

/// True when a record with a valid checksum starts at `offset` — used to
/// tell mid-log corruption (intact records follow the damage) from a torn
/// tail (nothing intelligible follows).
Result<bool> ValidRecordAt(File* file, uint64_t offset) {
  char header[kRecordHeaderSize];
  TDB_ASSIGN_OR_RETURN(size_t n, file->ReadAt(offset, header, kRecordHeaderSize));
  if (n < kRecordHeaderSize) return false;
  std::string_view hv(header, kRecordHeaderSize);
  uint64_t lsn;
  uint32_t type, len;
  GetFixed64(&hv, &lsn);
  GetFixed32(&hv, &type);
  GetFixed32(&hv, &len);
  if (len > kMaxPayload) return false;
  std::string body(len, '\0');
  TDB_ASSIGN_OR_RETURN(size_t bn,
                       file->ReadAt(offset + kRecordHeaderSize, body.data(), len));
  if (bn < len) return false;
  char sumbuf[8];
  TDB_ASSIGN_OR_RETURN(size_t sn,
                       file->ReadAt(offset + kRecordHeaderSize + len, sumbuf, 8));
  if (sn < 8) return false;
  uint64_t stored;
  std::memcpy(&stored, sumbuf, 8);
  std::string covered(header, kRecordHeaderSize);
  covered += body;
  return Checksum64(covered.data(), covered.size()) == stored;
}

/// Scans the records after the header.  Stops cleanly at a torn tail
/// (`valid_bytes` is where appends resume); reports Corruption when the
/// damage is followed by intact records or when LSNs are out of sequence.
Result<ScanResult> ScanLog(File* file, uint64_t start_lsn,
                           const std::function<Status(const WalRecord&)>* fn,
                           uint64_t from_lsn) {
  ScanResult result;
  result.next_lsn = start_lsn;
  uint64_t offset = WriteAheadLog::kHeaderSize;
  uint64_t expected = start_lsn;
  while (true) {
    char header[kRecordHeaderSize];
    TDB_ASSIGN_OR_RETURN(size_t n,
                         file->ReadAt(offset, header, kRecordHeaderSize));
    if (n < kRecordHeaderSize) break;  // Clean EOF or torn tail.
    std::string_view hv(header, kRecordHeaderSize);
    uint64_t lsn;
    uint32_t type, len;
    GetFixed64(&hv, &lsn);
    GetFixed32(&hv, &type);
    GetFixed32(&hv, &len);
    if (len > kMaxPayload) break;  // Implausible length: treat as a tear.
    std::string body(len, '\0');
    TDB_ASSIGN_OR_RETURN(size_t bn,
                         file->ReadAt(offset + kRecordHeaderSize, body.data(),
                                      len));
    if (bn < len) break;
    char sumbuf[8];
    TDB_ASSIGN_OR_RETURN(size_t sn, file->ReadAt(
        offset + kRecordHeaderSize + len, sumbuf, 8));
    if (sn < 8) break;
    uint64_t stored;
    std::memcpy(&stored, sumbuf, 8);
    std::string covered(header, kRecordHeaderSize);
    covered += body;
    uint64_t record_size = kRecordHeaderSize + len + 8;
    if (Checksum64(covered.data(), covered.size()) != stored) {
      // Damaged record.  A tear is only a tear if nothing intact follows;
      // otherwise acknowledged data was corrupted and silence would drop
      // committed transactions.
      TDB_ASSIGN_OR_RETURN(bool intact_follows,
                           ValidRecordAt(file, offset + record_size));
      if (intact_follows) {
        return Status::Corruption(StringPrintf(
            "WAL: corrupt record at offset %llu followed by intact records",
            (unsigned long long)offset));
      }
      break;
    }
    if (lsn != expected) {
      return Status::Corruption(StringPrintf(
          "WAL: LSN %llu at offset %llu, expected %llu",
          (unsigned long long)lsn, (unsigned long long)offset,
          (unsigned long long)expected));
    }
    if (fn != nullptr && lsn >= from_lsn) {
      WalRecord rec;
      rec.lsn = lsn;
      rec.type = type;
      rec.payload = std::move(body);
      TDB_RETURN_IF_ERROR((*fn)(rec));
    }
    result.next_lsn = lsn + 1;
    ++expected;
    offset += record_size;
    result.valid_bytes = offset;
  }
  return result;
}

std::string EncodeHeader(uint64_t start_lsn) {
  std::string buf;
  PutFixed64(&buf, kWalMagic);
  PutFixed64(&buf, start_lsn);
  PutFixed64(&buf, Checksum64(buf.data(), buf.size()));
  return buf;
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, uint64_t min_next_lsn) {
  return Open(FileSystem::Default(), path, min_next_lsn);
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    FileSystem* fs, const std::string& path, uint64_t min_next_lsn) {
  min_next_lsn = std::max<uint64_t>(min_next_lsn, 1);
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                       fs->OpenFile(path, /*create=*/true));
  TDB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  uint64_t start_lsn = min_next_lsn;
  bool reset_header = false;
  if (size < kHeaderSize) {
    // Empty, or a header torn mid-write.  The header is synced before any
    // record, so no acknowledged record can exist beyond a torn header.
    reset_header = true;
  } else {
    char raw[kHeaderSize];
    TDB_ASSIGN_OR_RETURN(size_t n, file->ReadAt(0, raw, kHeaderSize));
    std::string_view hv(raw, n);
    uint64_t magic = 0, lsn = 0, sum = 0;
    GetFixed64(&hv, &magic);
    GetFixed64(&hv, &lsn);
    GetFixed64(&hv, &sum);
    if (magic == kWalMagic && sum == Checksum64(raw, 16)) {
      start_lsn = lsn;
    } else {
      // Corrupt header.  If intact records follow it, this is damage to
      // acknowledged state, not a tear — refuse to guess.
      TDB_ASSIGN_OR_RETURN(bool intact, ValidRecordAt(file.get(), kHeaderSize));
      if (intact) {
        return Status::Corruption(
            "WAL: header corrupt but log contains intact records");
      }
      reset_header = true;
    }
  }
  if (reset_header) {
    TDB_RETURN_IF_ERROR(file->Truncate(0));
    std::string header = EncodeHeader(start_lsn);
    TDB_RETURN_IF_ERROR(file->WriteAt(0, header.data(), header.size()));
    TDB_RETURN_IF_ERROR(file->Sync());
    return std::unique_ptr<WriteAheadLog>(
        new WriteAheadLog(std::move(file), start_lsn, kHeaderSize));
  }
  TDB_ASSIGN_OR_RETURN(ScanResult scan,
                       ScanLog(file.get(), start_lsn, nullptr, 0));
  if (scan.valid_bytes < size) {
    // Discard the torn tail so fresh appends start at a clean boundary —
    // and make the discard durable, so a later crash cannot resurrect
    // half a record in the middle of newly appended ones.
    TDB_RETURN_IF_ERROR(file->Truncate(scan.valid_bytes));
    TDB_RETURN_IF_ERROR(file->Sync());
  }
  uint64_t next_lsn = std::max(scan.next_lsn, min_next_lsn);
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(std::move(file), next_lsn, scan.valid_bytes));
}

Result<uint64_t> WriteAheadLog::Append(uint32_t type, Slice payload) {
  uint64_t lsn = next_lsn_;
  std::string buf;
  buf.reserve(kRecordHeaderSize + payload.size() + 8);
  PutFixed64(&buf, lsn);
  PutFixed32(&buf, type);
  PutFixed32(&buf, static_cast<uint32_t>(payload.size()));
  buf.append(payload.data(), payload.size());
  uint64_t sum = Checksum64(buf.data(), buf.size());
  PutFixed64(&buf, sum);
  TDB_RETURN_IF_ERROR(file_->WriteAt(append_offset_, buf.data(), buf.size()));
  append_offset_ += buf.size();
  ++next_lsn_;
  return lsn;
}

Status WriteAheadLog::Sync() { return file_->Sync(); }

Status WriteAheadLog::Replay(
    uint64_t from_lsn,
    const std::function<Status(const WalRecord&)>& fn) const {
  // Re-read the header: the scan must use this log incarnation's first LSN.
  char raw[kHeaderSize];
  TDB_ASSIGN_OR_RETURN(size_t n, file_->ReadAt(0, raw, kHeaderSize));
  uint64_t start_lsn = 1;
  if (n == kHeaderSize) {
    std::string_view hv(raw + 8, 8);  // Magic and checksum were validated at Open.
    GetFixed64(&hv, &start_lsn);
  }
  Result<ScanResult> scan = ScanLog(file_.get(), start_lsn, &fn, from_lsn);
  return scan.ok() ? Status::OK() : scan.status();
}

Status WriteAheadLog::WriteHeader(uint64_t start_lsn) {
  std::string header = EncodeHeader(start_lsn);
  return file_->WriteAt(0, header.data(), header.size());
}

Status WriteAheadLog::Truncate() {
  TDB_RETURN_IF_ERROR(file_->Truncate(0));
  TDB_RETURN_IF_ERROR(WriteHeader(next_lsn_));
  append_offset_ = kHeaderSize;
  return file_->Sync();
}

Status WriteAheadLog::RewindTo(uint64_t offset, uint64_t lsn) {
  if (offset < kHeaderSize || offset > append_offset_) {
    return Status::InvalidArgument("WAL rewind offset out of range");
  }
  TDB_RETURN_IF_ERROR(file_->Truncate(offset));
  append_offset_ = offset;
  next_lsn_ = lsn;
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::SizeBytes() const { return file_->Size(); }

Status CommitQueue::Commit(const std::vector<WalBatchEntry>& records,
                           bool sync) {
  Waiter me;
  me.records = &records;
  me.sync = sync;

  MutexLock lock(&mu_);
  if (poisoned_) {
    return Status::FailedPrecondition(
        "WAL in failed state after an I/O error; reopen the database");
  }
  queue_.push_back(&me);
  while (!(me.done || queue_.front() == &me)) cv_.Wait();
  if (me.done) {
    // A leader resolved this batch's barrier while we slept.
    return me.status;
  }
  if (poisoned_) {
    // A barrier ahead of us failed while we were queued; nothing may touch
    // the log until reopen.  Fail front-to-back so every queued committer
    // drains in order without becoming a leader.
    queue_.pop_front();
    cv_.SignalAll();
    return Status::FailedPrecondition(
        "WAL in failed state after an I/O error; reopen the database");
  }

  // Leader: snapshot the queue as one barrier.  Batches that arrive while
  // the leader is writing queue behind it and form the *next* barrier —
  // that keeps each barrier's rewind span well defined on failure.
  std::vector<Waiter*> barrier(queue_.begin(), queue_.end());
  const uint64_t rewind_offset = wal_->append_offset();
  const uint64_t rewind_lsn = wal_->next_lsn();
  bool want_sync = false;
  for (const Waiter* w : barrier) want_sync |= w->sync;

  // Write + sync with the lock released so committers can keep queueing.
  // The leader stays at queue_.front(), so no second leader can start.
  lock.Unlock();
  Status status = Status::OK();
  for (const Waiter* w : barrier) {
    for (const WalBatchEntry& rec : *w->records) {
      Result<uint64_t> lsn = wal_->Append(rec.type, rec.payload);
      if (!lsn.ok()) {
        status = lsn.status();
        break;
      }
    }
    if (!status.ok()) break;
  }
  if (status.ok() && want_sync) status = wal_->Sync();
  lock.Lock();

  ++barriers_;
  if (!status.ok()) {
    // Back out the whole barrier so a later successful sync cannot make
    // these unacknowledged records durable; a failed fsync leaves the
    // on-disk state unknowable, so poison until reopen.  Rewind failure is
    // absorbed: poisoning already blocks further writes.
    (void)wal_->RewindTo(rewind_offset, rewind_lsn);
    poisoned_ = true;
  }
  for (Waiter* w : barrier) {
    queue_.pop_front();
    if (w != &me) {
      w->status = status;
      w->done = true;
    }
  }
  cv_.SignalAll();
  return status;
}

bool CommitQueue::poisoned() const {
  MutexLock lock(&mu_);
  return poisoned_;
}

uint64_t CommitQueue::barriers() const {
  MutexLock lock(&mu_);
  return barriers_;
}

}  // namespace temporadb
