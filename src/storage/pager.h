#ifndef TEMPORADB_STORAGE_PAGER_H_
#define TEMPORADB_STORAGE_PAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/fs.h"
#include "storage/page.h"

namespace temporadb {

/// Raw page I/O: a flat array of `kPageSize` pages addressed by `PageId`.
///
/// Two implementations: `FilePager` (POSIX file, pread/pwrite) and
/// `MemPager` (a vector of pages, for transient relations and tests).  The
/// buffer pool sits on top and is the only component that should touch a
/// pager directly.
///
/// Threading contract: externally synchronized.  Pagers are driven by the
/// single-writer storage path (checkpoint/recovery); they hold no locks
/// and must not be shared across threads (DESIGN.md §11.1).
class Pager {
 public:
  virtual ~Pager() = default;

  /// Reads page `id` into `buf` (>= kPageSize bytes).
  virtual Status ReadPage(PageId id, char* buf) = 0;

  /// Writes page `id` from `buf`.
  virtual Status WritePage(PageId id, const char* buf) = 0;

  /// Extends the file by one zeroed page and returns its id.
  virtual Result<PageId> AllocatePage() = 0;

  /// Number of pages currently allocated.
  virtual PageId page_count() const = 0;

  /// Durability barrier (fsync for files; no-op in memory).
  virtual Status Sync() = 0;
};

/// File-backed pager.  The file is created if missing.  All I/O goes
/// through the `FileSystem` abstraction so tests can interpose fault
/// injection; the single-argument `Open` uses the real POSIX filesystem.
class FilePager : public Pager {
 public:
  static Result<std::unique_ptr<FilePager>> Open(FileSystem* fs,
                                                 const std::string& path);
  static Result<std::unique_ptr<FilePager>> Open(const std::string& path);
  ~FilePager() override = default;

  FilePager(const FilePager&) = delete;
  FilePager& operator=(const FilePager&) = delete;

  Status ReadPage(PageId id, char* buf) override;
  Status WritePage(PageId id, const char* buf) override;
  Result<PageId> AllocatePage() override;
  PageId page_count() const override { return page_count_; }
  Status Sync() override;

  const std::string& path() const { return path_; }

 private:
  FilePager(std::string path, std::unique_ptr<File> file, PageId page_count)
      : path_(std::move(path)),
        file_(std::move(file)),
        page_count_(page_count) {}

  std::string path_;
  std::unique_ptr<File> file_;
  PageId page_count_;
};

/// In-memory pager for transient relations and unit tests.
class MemPager : public Pager {
 public:
  MemPager() = default;

  Status ReadPage(PageId id, char* buf) override;
  Status WritePage(PageId id, const char* buf) override;
  Result<PageId> AllocatePage() override;
  PageId page_count() const override {
    return static_cast<PageId>(pages_.size());
  }
  Status Sync() override { return Status::OK(); }

 private:
  std::vector<std::unique_ptr<char[]>> pages_;
};

}  // namespace temporadb

#endif  // TEMPORADB_STORAGE_PAGER_H_
