#include "storage/pager.h"

#include <cstring>

#include "common/strings.h"

namespace temporadb {

static_assert(kPageSize % 512 == 0, "page size should be sector aligned");

Result<std::unique_ptr<FilePager>> FilePager::Open(FileSystem* fs,
                                                   const std::string& path) {
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                       fs->OpenFile(path, /*create=*/true));
  TDB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size % kPageSize != 0) {
    return Status::Corruption(
        StringPrintf("%s: size %llu is not page-aligned", path.c_str(),
                     static_cast<unsigned long long>(size)));
  }
  PageId pages = static_cast<PageId>(size / kPageSize);
  return std::unique_ptr<FilePager>(
      new FilePager(path, std::move(file), pages));
}

Result<std::unique_ptr<FilePager>> FilePager::Open(const std::string& path) {
  return Open(FileSystem::Default(), path);
}

Status FilePager::ReadPage(PageId id, char* buf) {
  if (id >= page_count_) {
    return Status::OutOfRange(StringPrintf("page %u beyond EOF", id));
  }
  TDB_ASSIGN_OR_RETURN(
      size_t n,
      file_->ReadAt(static_cast<uint64_t>(id) * kPageSize, buf, kPageSize));
  if (n != kPageSize) {
    return Status::IOError(StringPrintf("short read of page %u", id));
  }
  return Status::OK();
}

Status FilePager::WritePage(PageId id, const char* buf) {
  if (id >= page_count_) {
    return Status::OutOfRange(StringPrintf("page %u beyond EOF", id));
  }
  return file_->WriteAt(static_cast<uint64_t>(id) * kPageSize, buf, kPageSize);
}

Result<PageId> FilePager::AllocatePage() {
  char zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  PageId id = page_count_;
  TDB_RETURN_IF_ERROR(
      file_->WriteAt(static_cast<uint64_t>(id) * kPageSize, zeros, kPageSize));
  ++page_count_;
  return id;
}

Status FilePager::Sync() { return file_->Sync(); }

Status MemPager::ReadPage(PageId id, char* buf) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("page beyond EOF");
  }
  std::memcpy(buf, pages_[id].get(), kPageSize);
  return Status::OK();
}

Status MemPager::WritePage(PageId id, const char* buf) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("page beyond EOF");
  }
  std::memcpy(pages_[id].get(), buf, kPageSize);
  return Status::OK();
}

Result<PageId> MemPager::AllocatePage() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

}  // namespace temporadb
