#include "storage/pager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace temporadb {

static_assert(kPageSize % 512 == 0, "page size should be sector aligned");

Result<std::unique_ptr<FilePager>> FilePager::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError(StringPrintf("open(%s): %s", path.c_str(),
                                        std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError(StringPrintf("fstat(%s): %s", path.c_str(),
                                        std::strerror(err)));
  }
  if (st.st_size % static_cast<off_t>(kPageSize) != 0) {
    ::close(fd);
    return Status::Corruption(
        StringPrintf("%s: size %lld is not page-aligned", path.c_str(),
                     static_cast<long long>(st.st_size)));
  }
  PageId pages = static_cast<PageId>(st.st_size / kPageSize);
  return std::unique_ptr<FilePager>(new FilePager(path, fd, pages));
}

FilePager::~FilePager() {
  if (fd_ >= 0) ::close(fd_);
}

Status FilePager::ReadPage(PageId id, char* buf) {
  if (id >= page_count_) {
    return Status::OutOfRange(StringPrintf("page %u beyond EOF", id));
  }
  ssize_t n = ::pread(fd_, buf, kPageSize,
                      static_cast<off_t>(id) * static_cast<off_t>(kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StringPrintf("short read of page %u", id));
  }
  return Status::OK();
}

Status FilePager::WritePage(PageId id, const char* buf) {
  if (id >= page_count_) {
    return Status::OutOfRange(StringPrintf("page %u beyond EOF", id));
  }
  ssize_t n = ::pwrite(fd_, buf, kPageSize,
                       static_cast<off_t>(id) * static_cast<off_t>(kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StringPrintf("short write of page %u", id));
  }
  return Status::OK();
}

Result<PageId> FilePager::AllocatePage() {
  char zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  PageId id = page_count_;
  ssize_t n = ::pwrite(fd_, zeros, kPageSize,
                       static_cast<off_t>(id) * static_cast<off_t>(kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("failed to extend file");
  }
  ++page_count_;
  return id;
}

Status FilePager::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError(StringPrintf("fsync: %s", std::strerror(errno)));
  }
  return Status::OK();
}

Status MemPager::ReadPage(PageId id, char* buf) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("page beyond EOF");
  }
  std::memcpy(buf, pages_[id].get(), kPageSize);
  return Status::OK();
}

Status MemPager::WritePage(PageId id, const char* buf) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("page beyond EOF");
  }
  std::memcpy(pages_[id].get(), buf, kPageSize);
  return Status::OK();
}

Result<PageId> MemPager::AllocatePage() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

}  // namespace temporadb
