#ifndef TEMPORADB_STORAGE_WAL_H_
#define TEMPORADB_STORAGE_WAL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/thread_annotations.h"
#include "storage/fs.h"

namespace temporadb {

/// One record read back from the log during replay.
struct WalRecord {
  uint64_t lsn = 0;
  uint32_t type = 0;      ///< Caller-defined record kind.
  std::string payload;
};

/// A redo-only write-ahead log.
///
/// The temporal layer logs *logical* operations (begin/commit, version
/// appends, version closes); recovery replays committed transactions in LSN
/// order on top of the last checkpoint.
///
/// On-disk layout: a fixed header (magic, the first LSN of this log
/// incarnation, a checksum) followed by records `u64 lsn | u32 type |
/// u32 len | payload | u64 checksum`.  The header is what keeps LSNs
/// monotone across `Truncate`+reopen: truncation rewrites the header with
/// the resume LSN instead of silently restarting at 1.
///
/// Recovery discipline: records carry strictly sequential LSNs and an
/// FNV-1a checksum.  A torn *tail* (crash mid-append) is discarded and the
/// file is truncated + fsynced back to the last intact record — those
/// records were unacknowledged by definition.  A corrupt record *followed
/// by intact records* is not a tear; it means acknowledged data was damaged,
/// and `Open`/`Replay` report Corruption instead of silently dropping
/// committed transactions.
class WriteAheadLog {
 public:
  /// Bytes of the log header: magic, start LSN, checksum.
  static constexpr uint64_t kHeaderSize = 24;

  /// Opens (or creates) the log at `path`; scans once to find the next
  /// LSN.  `min_next_lsn` is a lower bound carried from the checkpoint
  /// manifest, so LSNs stay monotone even if the log file itself was lost
  /// or reset.
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      FileSystem* fs, const std::string& path, uint64_t min_next_lsn = 1);
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path,
                                                     uint64_t min_next_lsn = 1);

  ~WriteAheadLog() = default;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends a record and returns its LSN.  Not yet durable; call `Sync`.
  Result<uint64_t> Append(uint32_t type, Slice payload);

  /// fsync barrier; a commit is acknowledged only after this succeeds.
  Status Sync();

  /// Streams every intact record with `lsn >= from_lsn` through `fn`.
  Status Replay(uint64_t from_lsn,
                const std::function<Status(const WalRecord&)>& fn) const;

  /// Empties the log after a checkpoint has made its effects durable.  The
  /// rewritten header carries the current `next_lsn`, so the LSN sequence
  /// continues across the truncation and any restart after it.
  Status Truncate();

  /// Drops everything appended at or after `offset` (from `append_offset`)
  /// and rewinds the LSN counter to `lsn`.  Used to back out the records of
  /// a commit whose sync failed, so a *later* successful sync cannot make
  /// an unacknowledged commit durable.
  Status RewindTo(uint64_t offset, uint64_t lsn);

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t append_offset() const { return append_offset_; }

  /// Log size in bytes (for the WAL bench).
  Result<uint64_t> SizeBytes() const;

 private:
  WriteAheadLog(std::unique_ptr<File> file, uint64_t next_lsn,
                uint64_t offset)
      : file_(std::move(file)), next_lsn_(next_lsn), append_offset_(offset) {}

  Status WriteHeader(uint64_t start_lsn);

  std::unique_ptr<File> file_;
  uint64_t next_lsn_;
  uint64_t append_offset_;
};

/// One record of a commit batch submitted to the `CommitQueue`.
struct WalBatchEntry {
  uint32_t type = 0;
  std::string payload;
};

/// Group commit: coalesces concurrently-arriving commit batches into one
/// write + fsync barrier (leader/follower, LevelDB-style).
///
/// Committers call `Commit` with the full record batch of their
/// transaction.  The first committer to reach the front of the queue
/// becomes the *leader*: it appends every queued committer's batch to the
/// log in arrival order, issues a single `Sync`, and wakes the followers
/// with the barrier's outcome.  Under N concurrent committers the fsync —
/// the dominant cost of a durable commit — is paid once per barrier, not
/// once per transaction, while each batch stays contiguous in the log (a
/// replayer sees whole transactions, never interleaved records).
///
/// Failure semantics (the fsyncgate discipline, inherited from the
/// single-committer path):
///  - If any append or the barrier fsync fails, the leader rewinds the log
///    tail to the barrier's start, and **every** committer in the barrier
///    — leader and followers alike — observes the failure.  A failed fsync
///    may have persisted an unknown prefix, so the queue is *poisoned*:
///    all later commits fail with FailedPrecondition until the database is
///    reopened and the log rescanned.
///  - A batch is acknowledged (OK returned) only after its barrier's fsync
///    succeeded; `sync=false` batches (durability off) are acknowledged
///    after the write.
///
/// The queue is the only WAL writer while in use: `Truncate`/`RewindTo` on
/// the underlying log (checkpointing) require external quiescence, exactly
/// as before.
class CommitQueue {
 public:
  explicit CommitQueue(WriteAheadLog* wal) : wal_(wal) {}

  CommitQueue(const CommitQueue&) = delete;
  CommitQueue& operator=(const CommitQueue&) = delete;

  /// Appends `records` contiguously and, with `sync`, makes them durable
  /// behind a shared fsync barrier.  Blocks until the batch's barrier
  /// resolves.  Thread-safe.
  Status Commit(const std::vector<WalBatchEntry>& records, bool sync)
      TDB_EXCLUDES(mu_);

  /// True after a barrier failed; every later `Commit` fails until reopen.
  bool poisoned() const TDB_EXCLUDES(mu_);

  /// Barriers (leader write+sync rounds) executed so far — the group-commit
  /// bench divides commits by barriers to report the coalescing factor.
  uint64_t barriers() const TDB_EXCLUDES(mu_);

 private:
  /// One queued committer.  `done` and `status` belong to the queue's
  /// `mu_` regime (the leader writes them with the lock reacquired, the
  /// owner reads them under the same lock); they live in a stack frame
  /// rather than the queue object, so the GUARDED_BY annotation cannot be
  /// expressed on the struct itself.
  struct Waiter {
    const std::vector<WalBatchEntry>* records;
    bool sync;
    bool done = false;
    Status status;
  };

  /// The log is written only by the barrier leader — leadership (being at
  /// `queue_.front()`) is what serializes access, not `mu_`, so the write
  /// + fsync happen with the lock released and committers free to queue.
  WriteAheadLog* wal_;
  mutable Mutex mu_;
  CondVar cv_{&mu_};
  std::deque<Waiter*> queue_ TDB_GUARDED_BY(mu_);
  bool poisoned_ TDB_GUARDED_BY(mu_) = false;
  uint64_t barriers_ TDB_GUARDED_BY(mu_) = 0;
};

}  // namespace temporadb

#endif  // TEMPORADB_STORAGE_WAL_H_
