#ifndef TEMPORADB_STORAGE_WAL_H_
#define TEMPORADB_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/slice.h"

namespace temporadb {

/// One record read back from the log during replay.
struct WalRecord {
  uint64_t lsn = 0;
  uint32_t type = 0;      ///< Caller-defined record kind.
  std::string payload;
};

/// A redo-only write-ahead log.
///
/// The temporal layer logs *logical* operations (begin/commit, version
/// appends, version closes); recovery replays committed transactions in LSN
/// order on top of the last checkpoint.  Each record carries an FNV-1a
/// checksum; replay stops cleanly at the first torn or corrupt record, which
/// is how crash-in-mid-write recovers (records after the tear were
/// unacknowledged by definition).
class WriteAheadLog {
 public:
  /// Opens (or creates) the log at `path`; scans once to find the next LSN.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends a record and returns its LSN.  Not yet durable; call `Sync`.
  Result<uint64_t> Append(uint32_t type, Slice payload);

  /// fsync barrier; a commit is acknowledged only after this succeeds.
  Status Sync();

  /// Streams every intact record with `lsn >= from_lsn` through `fn`.
  Status Replay(uint64_t from_lsn,
                const std::function<Status(const WalRecord&)>& fn) const;

  /// Empties the log after a checkpoint has made its effects durable.
  Status Truncate();

  uint64_t next_lsn() const { return next_lsn_; }

  /// Log size in bytes (for the WAL bench).
  Result<uint64_t> SizeBytes() const;

 private:
  WriteAheadLog(std::string path, int fd, uint64_t next_lsn, uint64_t offset)
      : path_(std::move(path)), fd_(fd), next_lsn_(next_lsn),
        append_offset_(offset) {}

  std::string path_;
  int fd_;
  uint64_t next_lsn_;
  uint64_t append_offset_;
};

}  // namespace temporadb

#endif  // TEMPORADB_STORAGE_WAL_H_
