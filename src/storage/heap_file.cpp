#include "storage/heap_file.h"

namespace temporadb {

Result<std::unique_ptr<HeapFile>> HeapFile::Open(std::unique_ptr<Pager> pager,
                                                 size_t pool_capacity) {
  auto file =
      std::unique_ptr<HeapFile>(new HeapFile(std::move(pager), pool_capacity));
  if (file->pager_->page_count() > 0) {
    // Find the tail by walking the chain from page 0.
    PageId id = 0;
    while (true) {
      TDB_ASSIGN_OR_RETURN(BufferPool::PageGuard guard,
                           file->pool_.FetchPage(id));
      SlottedPage view(guard.data());
      PageId next = view.next_page();
      if (next == kInvalidPageId) break;
      id = next;
    }
    file->tail_page_ = id;
  }
  return file;
}

Status HeapFile::EnsureFirstPage() {
  if (tail_page_ != kInvalidPageId) return Status::OK();
  TDB_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool_.NewPage());
  guard.MarkDirty();
  tail_page_ = guard.page_id();
  return Status::OK();
}

Result<RecordId> HeapFile::Append(Slice record) {
  if (record.size() + 64 > kPageSize) {
    return Status::InvalidArgument("record too large for a page");
  }
  TDB_RETURN_IF_ERROR(EnsureFirstPage());
  {
    TDB_ASSIGN_OR_RETURN(BufferPool::PageGuard guard,
                         pool_.FetchPage(tail_page_));
    SlottedPage view(guard.data());
    Result<uint16_t> slot = view.Insert(record);
    if (slot.ok()) {
      guard.MarkDirty();
      return RecordId{tail_page_, slot.value()};
    }
    // Fall through to allocate a fresh tail page.
  }
  TDB_ASSIGN_OR_RETURN(BufferPool::PageGuard fresh, pool_.NewPage());
  PageId new_tail = fresh.page_id();
  SlottedPage fresh_view(fresh.data());
  TDB_ASSIGN_OR_RETURN(uint16_t slot, fresh_view.Insert(record));
  fresh.MarkDirty();
  {
    TDB_ASSIGN_OR_RETURN(BufferPool::PageGuard old_tail,
                         pool_.FetchPage(tail_page_));
    SlottedPage old_view(old_tail.data());
    old_view.set_next_page(new_tail);
    old_tail.MarkDirty();
  }
  tail_page_ = new_tail;
  return RecordId{new_tail, slot};
}

Status HeapFile::Read(RecordId id, std::string* out) {
  TDB_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool_.FetchPage(id.page_id));
  SlottedPage view(guard.data());
  TDB_ASSIGN_OR_RETURN(Slice rec, view.Get(id.slot));
  out->assign(rec.data(), rec.size());
  return Status::OK();
}

Status HeapFile::Delete(RecordId id) {
  TDB_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool_.FetchPage(id.page_id));
  SlottedPage view(guard.data());
  TDB_RETURN_IF_ERROR(view.Delete(id.slot));
  guard.MarkDirty();
  return Status::OK();
}

Result<RecordId> HeapFile::Update(RecordId id, Slice record) {
  {
    TDB_ASSIGN_OR_RETURN(BufferPool::PageGuard guard,
                         pool_.FetchPage(id.page_id));
    SlottedPage view(guard.data());
    Status s = view.UpdateInPlace(id.slot, record);
    if (s.ok()) {
      guard.MarkDirty();
      return id;
    }
    if (s.code() != StatusCode::kOutOfRange) return s;
    TDB_RETURN_IF_ERROR(view.Delete(id.slot));
    guard.MarkDirty();
  }
  return Append(record);
}

Status HeapFile::Scan(const std::function<Status(RecordId, Slice)>& fn) {
  if (tail_page_ == kInvalidPageId) return Status::OK();
  PageId id = 0;
  while (id != kInvalidPageId) {
    TDB_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool_.FetchPage(id));
    SlottedPage view(guard.data());
    for (uint16_t slot : view.LiveSlots()) {
      TDB_ASSIGN_OR_RETURN(Slice rec, view.Get(slot));
      TDB_RETURN_IF_ERROR(fn(RecordId{id, slot}, rec));
    }
    id = view.next_page();
  }
  return Status::OK();
}

Status HeapFile::Flush() { return pool_.FlushAll(); }

}  // namespace temporadb
