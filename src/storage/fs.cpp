#include "storage/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace temporadb {

namespace {

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  return Status::IOError(
      StringPrintf("%s(%s): %s", op, path.c_str(), std::strerror(err)));
}

class PosixFile : public File {
 public:
  PosixFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> ReadAt(uint64_t offset, char* buf, size_t n) override {
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, buf + done, n - done,
                          static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread", path_, errno);
      }
      if (r == 0) break;  // EOF.
      done += static_cast<size_t>(r);
    }
    return done;
  }

  Status WriteAt(uint64_t offset, const char* data, size_t n) override {
    size_t done = 0;
    while (done < n) {
      ssize_t w = ::pwrite(fd_, data + done, n - done,
                           static_cast<off_t>(offset + done));
      if (w < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pwrite", path_, errno);
      }
      done += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("ftruncate", path_, errno);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return ErrnoStatus("fsync", path_, errno);
    }
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return ErrnoStatus("fstat", path_, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  std::string path_;
  int fd_;
};

class PosixFileSystem : public FileSystem {
 public:
  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         bool create) override {
    int flags = O_RDWR | (create ? O_CREAT : 0);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("cannot open " + path);
      return ErrnoStatus("open", path, errno);
    }
    return std::unique_ptr<File>(new PosixFile(path, fd));
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", to, errno);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("unlink", path, errno);
    }
    return Status::OK();
  }

  Status MakeDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", path, errno);
    }
    return Status::OK();
  }

  Status RemoveDir(const std::string& path) override {
    if (::rmdir(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("rmdir", path, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    int rc = ::fsync(fd);
    int err = errno;
    ::close(fd);
    if (rc != 0) return ErrnoStatus("fsync", path, err);
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) {
      if (errno == ENOENT) return Status::NotFound("no directory " + path);
      return ErrnoStatus("opendir", path, errno);
    }
    std::vector<std::string> names;
    struct dirent* entry;
    while ((entry = ::readdir(dir)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(std::move(name));
    }
    ::closedir(dir);
    return names;
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && !S_ISDIR(st.st_mode);
  }

  bool DirExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
  }
};

}  // namespace

FileSystem* FileSystem::Default() {
  static PosixFileSystem posix;
  return &posix;
}

Result<std::string> ReadFileToString(FileSystem* fs, const std::string& path) {
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                       fs->OpenFile(path, /*create=*/false));
  TDB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  std::string content(size, '\0');
  TDB_ASSIGN_OR_RETURN(size_t n, file->ReadAt(0, content.data(), size));
  content.resize(n);
  return content;
}

Status WriteFileDurable(FileSystem* fs, const std::string& path,
                        std::string_view content) {
  std::string tmp = path + ".tmp";
  {
    TDB_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                         fs->OpenFile(tmp, /*create=*/true));
    TDB_RETURN_IF_ERROR(file->Truncate(0));
    TDB_RETURN_IF_ERROR(file->WriteAt(0, content.data(), content.size()));
    // The tmp file's bytes must be durable before the rename can expose
    // them under the final name; otherwise a crash can leave `path`
    // pointing at a torn or empty file.
    TDB_RETURN_IF_ERROR(file->Sync());
  }
  TDB_RETURN_IF_ERROR(fs->RenameFile(tmp, path));
  return fs->SyncDir(DirName(path));
}

Status RemoveDirRecursive(FileSystem* fs, const std::string& path) {
  Result<std::vector<std::string>> names = fs->ListDir(path);
  if (!names.ok()) {
    return names.status().IsNotFound() ? Status::OK() : names.status();
  }
  for (const std::string& name : *names) {
    std::string full = path + "/" + name;
    if (fs->DirExists(full)) {
      TDB_RETURN_IF_ERROR(RemoveDirRecursive(fs, full));
    } else {
      TDB_RETURN_IF_ERROR(fs->RemoveFile(full));
    }
  }
  return fs->RemoveDir(path);
}

std::string DirName(const std::string& path) {
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace temporadb
