#ifndef TEMPORADB_STORAGE_PAGE_H_
#define TEMPORADB_STORAGE_PAGE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace temporadb {

/// Fixed page size of the storage engine.
inline constexpr size_t kPageSize = 8192;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Location of a record: page + slot.
struct RecordId {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  friend bool operator==(RecordId a, RecordId b) {
    return a.page_id == b.page_id && a.slot == b.slot;
  }
  friend bool operator<(RecordId a, RecordId b) {
    return a.page_id != b.page_id ? a.page_id < b.page_id : a.slot < b.slot;
  }
};

/// A classic slotted page, operating in place on a `kPageSize` buffer.
///
/// Layout:
/// ```
/// [ header: checksum u64 | slot_count u16 | cell_start u16 | next u32 ]
/// [ slot directory: {offset u16, length u16} * slot_count ]  (grows up)
/// [ free space ]
/// [ cell contents ]                                          (grows down)
/// ```
/// Deleted slots keep their directory entry with offset 0 / length 0
/// (tombstone) so RecordIds of surviving records remain stable.  The
/// checksum covers bytes [8, kPageSize) and is verified on read by the
/// buffer pool.
class SlottedPage {
 public:
  /// Wraps (does not own) a page buffer.  The buffer must outlive the view.
  explicit SlottedPage(char* data) : data_(data) {}

  /// Formats a fresh page: zero slots, full free space.
  void Init();

  /// Number of slot-directory entries (including tombstones).
  uint16_t slot_count() const;

  /// Bytes available for a new record, accounting for its directory entry.
  size_t FreeSpace() const;

  /// Appends a record; returns its slot, or OutOfRange when full.
  Result<uint16_t> Insert(Slice record);

  /// Reads a record; NotFound for tombstoned or out-of-range slots.  The
  /// returned slice aliases the page buffer.
  Result<Slice> Get(uint16_t slot) const;

  /// Tombstones a slot (contents are not reclaimed until compaction).
  Status Delete(uint16_t slot);

  /// Replaces a record in place when the new content is not larger;
  /// OutOfRange otherwise (callers fall back to delete+insert elsewhere).
  Status UpdateInPlace(uint16_t slot, Slice record);

  /// Singly-linked overflow chain (next page of the owning heap file).
  PageId next_page() const;
  void set_next_page(PageId id);

  /// Checksum maintenance, called by the buffer pool around disk I/O.
  void StampChecksum();
  bool VerifyChecksum() const;

  /// All live (non-tombstoned) slots in order.
  std::vector<uint16_t> LiveSlots() const;

 private:
  uint16_t GetSlotOffset(uint16_t slot) const;
  uint16_t GetSlotLength(uint16_t slot) const;
  void SetSlot(uint16_t slot, uint16_t offset, uint16_t length);

  static constexpr size_t kHeaderSize = 8 + 2 + 2 + 4;  // checksum, count, cell_start, next
  static constexpr size_t kSlotEntrySize = 4;

  char* data_;
};

}  // namespace temporadb

#endif  // TEMPORADB_STORAGE_PAGE_H_
