#ifndef TEMPORADB_STORAGE_FAULT_INJECTION_H_
#define TEMPORADB_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "storage/fs.h"
#include "storage/pager.h"

namespace temporadb {

/// Operation kinds visible to the fault filter.
enum class FaultOp {
  kOpen,
  kRead,
  kWrite,
  kTruncate,
  kSync,
  kRename,
  kRemove,
  kMkdir,
  kRmdir,
  kSyncDir,
};

/// A `FileSystem` that simulates crashes (LevelDB `FaultInjectionTestEnv`
/// style).  It tracks, per file, the content that was durable at the last
/// successful `Sync`, and per directory, the entry operations (create /
/// rename / remove / mkdir) not yet covered by a `SyncDir`.  At a simulated
/// crash every un-synced byte and entry is rolled back on the real
/// filesystem, which is exactly the state a kernel crash could leave behind.
///
/// Usage pattern for systematic crash testing:
///
/// ```cpp
///   FaultInjectionFileSystem fs;            // dry run: count barriers
///   RunWorkload(&fs);                       // N = fs.sync_count()
///   for (uint64_t k = 1; k <= N; ++k) {
///     FaultInjectionFileSystem fs2;
///     fs2.PlanCrashAtSync(k);               // the k-th barrier fails...
///     RunWorkload(&fs2);                    // ...and every later op EIOs
///     ASSERT_TRUE(fs2.RealizeCrash().ok()); // drop un-synced state
///     ReopenAndVerify(&fs2);                // fs2 is pass-through again
///   }
/// ```
///
/// Directory-entry tracking starts at directories created through this
/// filesystem (or explicitly `SyncDir`ed); entries in untracked directories
/// (e.g. the system temp dir) are treated as immediately durable.
///
/// Not thread-safe; the crash-recovery tests are single-threaded by design
/// (determinism is the point).
class FaultInjectionFileSystem : public FileSystem {
 public:
  explicit FaultInjectionFileSystem(FileSystem* base = FileSystem::Default());
  ~FaultInjectionFileSystem() override;

  // --- FileSystem ---------------------------------------------------------
  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         bool create) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status MakeDir(const std::string& path) override;
  Status RemoveDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  bool DirExists(const std::string& path) override;

  // --- Fault controls -----------------------------------------------------

  /// Crash when the `k`-th sync barrier (File::Sync or SyncDir, 1-based,
  /// counted from construction/`RealizeCrash`) is requested: that sync
  /// fails without making anything durable and every subsequent operation
  /// returns IOError until `RealizeCrash`.
  void PlanCrashAtSync(uint64_t k);

  /// Number of sync barriers (file + directory) requested so far.
  uint64_t sync_count() const;

  bool crashed() const;

  /// At crash realization, keep this many bytes of each file's un-synced
  /// appended suffix instead of dropping it entirely — models a torn tail
  /// that made it partially to the platter.
  void set_keep_unsynced_prefix(uint64_t bytes);

  /// Per-call error injection: when the filter returns true the operation
  /// fails with IOError.  A failed write is *short*: half the buffer is
  /// written before the error, modelling a torn write.  A failed sync makes
  /// nothing durable.
  using FaultFilter = std::function<bool(FaultOp op, const std::string& path)>;
  void set_fault_filter(FaultFilter filter);

  /// Rolls the base filesystem back to the durable state: un-synced entry
  /// operations are undone (in reverse), every tracked file's content
  /// reverts to its last-synced image (plus any configured torn prefix).
  /// Afterwards the filesystem is usable again (pass-through, counters
  /// reset).  All `File` handles from before the crash must be closed
  /// first.
  Status RealizeCrash();

 private:
  struct Impl;
  friend class FaultInjectionFile;
  std::shared_ptr<Impl> impl_;
};

/// A `Pager` wrapper that buffers writes until `Sync`: un-synced pages live
/// in an overlay and reach the wrapped pager only when a sync barrier
/// succeeds, so `DropUnsyncedWrites` is a literal crash of the page cache.
class FaultInjectionPager : public Pager {
 public:
  explicit FaultInjectionPager(std::unique_ptr<Pager> base);

  Status ReadPage(PageId id, char* buf) override;
  Status WritePage(PageId id, const char* buf) override;
  Result<PageId> AllocatePage() override;
  PageId page_count() const override { return page_count_; }
  Status Sync() override;

  /// Discards every page write since the last successful `Sync`.
  void DropUnsyncedWrites();

  uint64_t sync_count() const { return sync_seq_; }
  /// The next `n` WritePage/AllocatePage calls fail with IOError.
  void FailNextWrites(int n) { fail_writes_ = n; }
  /// The next `n` Sync calls fail with IOError (nothing reaches the base).
  void FailNextSyncs(int n) { fail_syncs_ = n; }

  Pager* base() { return base_.get(); }

 private:
  std::unique_ptr<Pager> base_;
  std::map<PageId, std::unique_ptr<char[]>> overlay_;
  PageId page_count_;
  uint64_t sync_seq_ = 0;
  int fail_writes_ = 0;
  int fail_syncs_ = 0;
};

}  // namespace temporadb

#endif  // TEMPORADB_STORAGE_FAULT_INJECTION_H_
