#include "storage/fault_injection.h"

#include <algorithm>
#include <cstring>

#include "common/strings.h"

namespace temporadb {

namespace {
using FileId = uint64_t;
}  // namespace

/// Shared state between the filesystem wrapper and its file handles.
///
/// The model: every file we touch is an "inode" (FileId) whose *durable*
/// content is updated only by a successful `File::Sync`.  Every directory
/// entry we touch has a recorded *durable* state (absent / file+inode /
/// subdir) that is updated eagerly for untracked directories (entries there
/// are assumed durable, e.g. the system temp dir) and only by `SyncDir` for
/// tracked ones (directories created or dir-synced through this
/// filesystem).  `RealizeCrash` rebuilds the base filesystem from exactly
/// those durable records.
struct FaultInjectionFileSystem::Impl {
  struct EntryState {
    enum Kind { kAbsent, kFile, kSubdir };
    Kind kind = kAbsent;
    FileId fid = 0;
  };

  FileSystem* base;
  FileId next_fid = 1;
  std::map<std::string, FileId> live;             // current path -> inode
  std::map<FileId, std::string> durable_content;  // inode -> synced bytes
  // dir -> (entry name -> durable state); only entries we touched.
  std::map<std::string, std::map<std::string, EntryState>> durable_entry;
  std::set<std::string> tracked;  // dirs with sync-gated (deferred) entries
  uint64_t sync_seq = 0;
  uint64_t crash_at_sync = 0;
  uint64_t keep_prefix = 0;
  bool crashed = false;
  FaultFilter filter;

  explicit Impl(FileSystem* b) : base(b) {}

  Status CheckOp(FaultOp op, const std::string& path) {
    if (crashed) {
      return Status::IOError("simulated crash: filesystem is down");
    }
    if (filter && filter(op, path)) {
      return Status::IOError("injected fault (" + path + ")");
    }
    return Status::OK();
  }

  /// Counts the barrier and triggers a planned crash *before* it takes
  /// effect, so the data guarded by this sync is not durable.
  Status SyncBarrier(FaultOp op, const std::string& path) {
    if (crashed) {
      return Status::IOError("simulated crash: filesystem is down");
    }
    ++sync_seq;
    if (crash_at_sync != 0 && sync_seq == crash_at_sync) {
      crashed = true;
      return Status::IOError(
          StringPrintf("simulated crash at sync barrier #%llu (%s)",
                       (unsigned long long)sync_seq, path.c_str()));
    }
    if (filter && filter(op, path)) {
      return Status::IOError("injected sync fault (" + path + ")");
    }
    return Status::OK();
  }

  Result<std::string> ReadAll(const std::string& path) {
    return ReadFileToString(base, path);
  }

  Status WriteAll(const std::string& path, const std::string& content) {
    TDB_ASSIGN_OR_RETURN(std::unique_ptr<File> f,
                         base->OpenFile(path, /*create=*/true));
    TDB_RETURN_IF_ERROR(f->Truncate(0));
    TDB_RETURN_IF_ERROR(f->WriteAt(0, content.data(), content.size()));
    return f->Sync();
  }

  /// Assigns an inode to an existing, not-yet-tracked file; its current
  /// content is assumed durable (we did not write it).
  Result<FileId> EnsureShadow(const std::string& path) {
    auto it = live.find(path);
    if (it != live.end()) return it->second;
    TDB_ASSIGN_OR_RETURN(std::string content, ReadAll(path));
    FileId fid = next_fid++;
    live[path] = fid;
    durable_content[fid] = std::move(content);
    return fid;
  }

  /// Records the pre-op durable state of `dir/name` the first time the
  /// entry is touched in a tracked dir; no-op for later touches (the
  /// durable state only changes at SyncDir).
  Status RecordPreState(const std::string& dir, const std::string& name) {
    auto& entries = durable_entry[dir];
    if (entries.count(name)) return Status::OK();
    std::string full = dir + "/" + name;
    EntryState state;
    if (base->DirExists(full)) {
      state.kind = EntryState::kSubdir;
    } else if (base->FileExists(full)) {
      TDB_ASSIGN_OR_RETURN(state.fid, EnsureShadow(full));
      state.kind = EntryState::kFile;
    }
    entries[name] = state;
    return Status::OK();
  }

  /// Sets the durable state of `dir/name` to its current on-disk state
  /// (used for eager untracked-dir updates and for SyncDir).
  Status RecordCurrentState(const std::string& dir, const std::string& name) {
    std::string full = dir + "/" + name;
    EntryState state;
    if (base->DirExists(full)) {
      state.kind = EntryState::kSubdir;
    } else if (base->FileExists(full)) {
      TDB_ASSIGN_OR_RETURN(state.fid, EnsureShadow(full));
      state.kind = EntryState::kFile;
    }
    durable_entry[dir][name] = state;
    return Status::OK();
  }

  /// Entry bookkeeping around a metadata op: call before the base op for
  /// tracked dirs (captures the durable pre-state), and `Touched` after the
  /// op for untracked dirs (entry immediately durable).
  bool IsTracked(const std::string& dir) const { return tracked.count(dir) != 0; }

  Status TouchBefore(const std::string& path) {
    std::string dir = DirName(path);
    if (IsTracked(dir)) return RecordPreState(dir, BaseName(path));
    return Status::OK();
  }

  Status TouchAfter(const std::string& path) {
    std::string dir = DirName(path);
    if (!IsTracked(dir)) return RecordCurrentState(dir, BaseName(path));
    return Status::OK();
  }

  static std::string BaseName(const std::string& path) {
    size_t slash = path.rfind('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
  }

  /// The content `fid` reverts to at a crash: its durable bytes plus, when
  /// torn tails are enabled, up to `keep_prefix` bytes of the un-synced
  /// appended suffix.
  std::string CrashContent(FileId fid) {
    std::string durable;
    auto dit = durable_content.find(fid);
    if (dit != durable_content.end()) durable = dit->second;
    if (keep_prefix == 0) return durable;
    for (const auto& [path, id] : live) {
      if (id != fid || !base->FileExists(path)) continue;
      Result<std::string> cur = ReadAll(path);
      if (!cur.ok()) break;
      if (cur->size() > durable.size() &&
          cur->compare(0, durable.size(), durable) == 0) {
        durable += cur->substr(durable.size(),
                               std::min<uint64_t>(keep_prefix,
                                                  cur->size() - durable.size()));
      }
      break;
    }
    return durable;
  }

  Status Realize() {
    // 1. Rebuild every touched directory entry to its durable state,
    //    parents before children (map order is lexicographic, so a parent
    //    path sorts before the paths inside it).
    for (const auto& [dir, entries] : durable_entry) {
      if (!base->DirExists(dir)) continue;  // Parent decided: subtree gone.
      for (const auto& [name, state] : entries) {
        std::string full = dir + "/" + name;
        switch (state.kind) {
          case EntryState::kAbsent:
            if (base->DirExists(full)) {
              TDB_RETURN_IF_ERROR(RemoveDirRecursive(base, full));
            } else if (base->FileExists(full)) {
              TDB_RETURN_IF_ERROR(base->RemoveFile(full));
            }
            break;
          case EntryState::kFile:
            if (base->DirExists(full)) {
              TDB_RETURN_IF_ERROR(RemoveDirRecursive(base, full));
            }
            TDB_RETURN_IF_ERROR(WriteAll(full, CrashContent(state.fid)));
            break;
          case EntryState::kSubdir:
            if (base->FileExists(full)) {
              TDB_RETURN_IF_ERROR(base->RemoveFile(full));
            }
            TDB_RETURN_IF_ERROR(base->MakeDir(full));
            break;
        }
      }
    }
    // 2. Revert the content of surviving files whose directory entry was
    //    never touched (pre-existing files we only wrote to).  Paths with
    //    an entry record were already decided in step 1 — a path that
    //    gained a new inode via an un-synced rename must keep the durable
    //    inode's content, not the new one's.
    for (const auto& [path, fid] : live) {
      auto dit = durable_entry.find(DirName(path));
      if (dit != durable_entry.end() && dit->second.count(BaseName(path))) {
        continue;
      }
      if (!base->FileExists(path)) continue;
      Result<std::string> cur = ReadAll(path);
      if (!cur.ok()) return cur.status();
      std::string want = CrashContent(fid);
      if (*cur != want) {
        TDB_RETURN_IF_ERROR(WriteAll(path, want));
      }
    }
    // 3. Reset: everything now on disk is durable; shadowing restarts
    //    lazily as files are reopened.
    live.clear();
    durable_content.clear();
    durable_entry.clear();
    tracked.clear();
    crashed = false;
    crash_at_sync = 0;
    sync_seq = 0;
    return Status::OK();
  }
};

class FaultInjectionFile : public File {
 public:
  FaultInjectionFile(std::shared_ptr<FaultInjectionFileSystem::Impl> impl,
                     std::string path, FileId fid,
                     std::unique_ptr<File> base_file)
      : impl_(std::move(impl)),
        path_(std::move(path)),
        fid_(fid),
        base_(std::move(base_file)) {}

  Result<size_t> ReadAt(uint64_t offset, char* buf, size_t n) override {
    TDB_RETURN_IF_ERROR(impl_->CheckOp(FaultOp::kRead, path_));
    return base_->ReadAt(offset, buf, n);
  }

  Status WriteAt(uint64_t offset, const char* data, size_t n) override {
    if (impl_->crashed) {
      return Status::IOError("simulated crash: filesystem is down");
    }
    if (impl_->filter && impl_->filter(FaultOp::kWrite, path_)) {
      // A torn write: half the buffer lands before the error.
      (void)base_->WriteAt(offset, data, n / 2);
      return Status::IOError("injected short write (" + path_ + ")");
    }
    return base_->WriteAt(offset, data, n);
  }

  Status Truncate(uint64_t size) override {
    TDB_RETURN_IF_ERROR(impl_->CheckOp(FaultOp::kTruncate, path_));
    return base_->Truncate(size);
  }

  Status Sync() override {
    TDB_RETURN_IF_ERROR(impl_->SyncBarrier(FaultOp::kSync, path_));
    TDB_RETURN_IF_ERROR(base_->Sync());
    // The inode's durable image is now its full current content.
    TDB_ASSIGN_OR_RETURN(uint64_t size, base_->Size());
    std::string content(size, '\0');
    TDB_ASSIGN_OR_RETURN(size_t n, base_->ReadAt(0, content.data(), size));
    content.resize(n);
    impl_->durable_content[fid_] = std::move(content);
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    TDB_RETURN_IF_ERROR(impl_->CheckOp(FaultOp::kRead, path_));
    return base_->Size();
  }

 private:
  std::shared_ptr<FaultInjectionFileSystem::Impl> impl_;
  std::string path_;
  FileId fid_;
  std::unique_ptr<File> base_;
};

FaultInjectionFileSystem::FaultInjectionFileSystem(FileSystem* base)
    : impl_(std::make_shared<Impl>(base)) {}

FaultInjectionFileSystem::~FaultInjectionFileSystem() = default;

Result<std::unique_ptr<File>> FaultInjectionFileSystem::OpenFile(
    const std::string& path, bool create) {
  TDB_RETURN_IF_ERROR(impl_->CheckOp(FaultOp::kOpen, path));
  bool existed = impl_->base->FileExists(path);
  FileId fid;
  if (existed) {
    TDB_ASSIGN_OR_RETURN(fid, impl_->EnsureShadow(path));
  } else {
    if (!create) return Status::NotFound("cannot open " + path);
    TDB_RETURN_IF_ERROR(impl_->TouchBefore(path));
  }
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<File> base_file,
                       impl_->base->OpenFile(path, create));
  if (!existed) {
    fid = impl_->next_fid++;
    impl_->live[path] = fid;
    impl_->durable_content[fid] = "";
    TDB_RETURN_IF_ERROR(impl_->TouchAfter(path));
  }
  return std::unique_ptr<File>(
      new FaultInjectionFile(impl_, path, fid, std::move(base_file)));
}

Status FaultInjectionFileSystem::RenameFile(const std::string& from,
                                            const std::string& to) {
  TDB_RETURN_IF_ERROR(impl_->CheckOp(FaultOp::kRename, to));
  TDB_ASSIGN_OR_RETURN(FileId fid, impl_->EnsureShadow(from));
  TDB_RETURN_IF_ERROR(impl_->TouchBefore(from));
  if (impl_->base->FileExists(to)) {
    TDB_RETURN_IF_ERROR(impl_->EnsureShadow(to).status());
  }
  TDB_RETURN_IF_ERROR(impl_->TouchBefore(to));
  TDB_RETURN_IF_ERROR(impl_->base->RenameFile(from, to));
  impl_->live.erase(from);
  impl_->live[to] = fid;
  TDB_RETURN_IF_ERROR(impl_->TouchAfter(from));
  return impl_->TouchAfter(to);
}

Status FaultInjectionFileSystem::RemoveFile(const std::string& path) {
  TDB_RETURN_IF_ERROR(impl_->CheckOp(FaultOp::kRemove, path));
  if (impl_->base->FileExists(path)) {
    TDB_RETURN_IF_ERROR(impl_->EnsureShadow(path).status());
  }
  TDB_RETURN_IF_ERROR(impl_->TouchBefore(path));
  TDB_RETURN_IF_ERROR(impl_->base->RemoveFile(path));
  if (!impl_->IsTracked(DirName(path))) {
    // Entry removal is immediately durable; drop the unreachable inode.
    auto it = impl_->live.find(path);
    if (it != impl_->live.end()) {
      impl_->durable_content.erase(it->second);
      impl_->live.erase(it);
    }
  } else {
    impl_->live.erase(path);  // durable_content stays for crash restore
  }
  return impl_->TouchAfter(path);
}

Status FaultInjectionFileSystem::MakeDir(const std::string& path) {
  TDB_RETURN_IF_ERROR(impl_->CheckOp(FaultOp::kMkdir, path));
  TDB_RETURN_IF_ERROR(impl_->TouchBefore(path));
  TDB_RETURN_IF_ERROR(impl_->base->MakeDir(path));
  impl_->tracked.insert(path);
  return impl_->TouchAfter(path);
}

Status FaultInjectionFileSystem::RemoveDir(const std::string& path) {
  TDB_RETURN_IF_ERROR(impl_->CheckOp(FaultOp::kRmdir, path));
  TDB_RETURN_IF_ERROR(impl_->TouchBefore(path));
  TDB_RETURN_IF_ERROR(impl_->base->RemoveDir(path));
  return impl_->TouchAfter(path);
}

Status FaultInjectionFileSystem::SyncDir(const std::string& path) {
  TDB_RETURN_IF_ERROR(impl_->SyncBarrier(FaultOp::kSyncDir, path));
  TDB_RETURN_IF_ERROR(impl_->base->SyncDir(path));
  impl_->tracked.insert(path);
  auto it = impl_->durable_entry.find(path);
  if (it != impl_->durable_entry.end()) {
    // Every touched entry's current state is now durable.
    std::vector<std::string> names;
    for (const auto& [name, state] : it->second) names.push_back(name);
    for (const std::string& name : names) {
      TDB_RETURN_IF_ERROR(impl_->RecordCurrentState(path, name));
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> FaultInjectionFileSystem::ListDir(
    const std::string& path) {
  TDB_RETURN_IF_ERROR(impl_->CheckOp(FaultOp::kRead, path));
  return impl_->base->ListDir(path);
}

bool FaultInjectionFileSystem::FileExists(const std::string& path) {
  return !impl_->crashed && impl_->base->FileExists(path);
}

bool FaultInjectionFileSystem::DirExists(const std::string& path) {
  return !impl_->crashed && impl_->base->DirExists(path);
}

void FaultInjectionFileSystem::PlanCrashAtSync(uint64_t k) {
  impl_->crash_at_sync = impl_->sync_seq + k;
}

uint64_t FaultInjectionFileSystem::sync_count() const {
  return impl_->sync_seq;
}

bool FaultInjectionFileSystem::crashed() const { return impl_->crashed; }

void FaultInjectionFileSystem::set_keep_unsynced_prefix(uint64_t bytes) {
  impl_->keep_prefix = bytes;
}

void FaultInjectionFileSystem::set_fault_filter(FaultFilter filter) {
  impl_->filter = std::move(filter);
}

Status FaultInjectionFileSystem::RealizeCrash() { return impl_->Realize(); }

// --- FaultInjectionPager ----------------------------------------------------

FaultInjectionPager::FaultInjectionPager(std::unique_ptr<Pager> base)
    : base_(std::move(base)), page_count_(base_->page_count()) {}

Status FaultInjectionPager::ReadPage(PageId id, char* buf) {
  if (id >= page_count_) {
    return Status::OutOfRange(StringPrintf("page %u beyond EOF", id));
  }
  auto it = overlay_.find(id);
  if (it != overlay_.end()) {
    std::memcpy(buf, it->second.get(), kPageSize);
    return Status::OK();
  }
  return base_->ReadPage(id, buf);
}

Status FaultInjectionPager::WritePage(PageId id, const char* buf) {
  if (fail_writes_ > 0) {
    --fail_writes_;
    return Status::IOError("injected page write fault");
  }
  if (id >= page_count_) {
    return Status::OutOfRange(StringPrintf("page %u beyond EOF", id));
  }
  auto it = overlay_.find(id);
  if (it == overlay_.end()) {
    it = overlay_.emplace(id, std::make_unique<char[]>(kPageSize)).first;
  }
  std::memcpy(it->second.get(), buf, kPageSize);
  return Status::OK();
}

Result<PageId> FaultInjectionPager::AllocatePage() {
  if (fail_writes_ > 0) {
    --fail_writes_;
    return Status::IOError("injected page allocation fault");
  }
  PageId id = page_count_++;
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  overlay_[id] = std::move(page);
  return id;
}

Status FaultInjectionPager::Sync() {
  if (fail_syncs_ > 0) {
    --fail_syncs_;
    return Status::IOError("injected sync fault");
  }
  for (const auto& [id, data] : overlay_) {
    while (id >= base_->page_count()) {
      TDB_RETURN_IF_ERROR(base_->AllocatePage().status());
    }
    TDB_RETURN_IF_ERROR(base_->WritePage(id, data.get()));
  }
  overlay_.clear();
  TDB_RETURN_IF_ERROR(base_->Sync());
  ++sync_seq_;
  return Status::OK();
}

void FaultInjectionPager::DropUnsyncedWrites() {
  overlay_.clear();
  page_count_ = base_->page_count();
}

}  // namespace temporadb
