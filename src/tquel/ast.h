#ifndef TEMPORADB_TQUEL_AST_H_
#define TEMPORADB_TQUEL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "catalog/temporal_class.h"

namespace temporadb {
namespace tquel {

// ---------------------------------------------------------------------------
// Scalar expressions
// ---------------------------------------------------------------------------

struct AstExpr;
using AstExprPtr = std::shared_ptr<AstExpr>;

enum class AstExprKind {
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  kColumn,     // var.attr or bare attr (resolved by the analyzer).
  kBinary,     // comparison / arithmetic / logical
  kNot,
  kAggregate,  // count/sum/avg/min/max/any over an expression.
};

/// Aggregate functions allowed in retrieve target lists (Quel's aggregate
/// operators).
enum class AstAggFunc { kCount, kSum, kAvg, kMin, kMax, kAny };

/// "count", "sum", ...
std::string_view AstAggFuncName(AstAggFunc f);

enum class AstBinaryOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr,
};

/// An unresolved scalar expression (names, not indexes).
struct AstExpr {
  AstExprKind kind;
  // Literals.
  std::string literal;  // Original spelling / string body.
  // Column: `variable.attribute` (variable empty when written bare).
  std::string variable;
  std::string attribute;
  // Binary / Not / Aggregate.
  AstBinaryOp op = AstBinaryOp::kEq;
  AstAggFunc agg = AstAggFunc::kCount;  // kAggregate only.
  AstExprPtr left;   // Not/Aggregate: the operand.
  AstExprPtr right;  // Binary only.

  /// True if this expression or any descendant is an aggregate.
  bool ContainsAggregate() const;

  /// Source-like rendering (used by the printer and error messages).
  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Temporal expressions and predicates
// ---------------------------------------------------------------------------

struct AstTemporalExpr;
using AstTemporalExprPtr = std::shared_ptr<AstTemporalExpr>;

enum class AstTemporalExprKind {
  kVar,        // A range variable: its valid period.
  kDate,       // A date literal (string form, parsed by the analyzer).
  kBeginOf,
  kEndOf,
  kOverlap,    // Intersection.
  kExtend,     // Span.
};

struct AstTemporalExpr {
  AstTemporalExprKind kind;
  std::string name;  // kVar: variable; kDate: literal text.
  AstTemporalExprPtr left;
  AstTemporalExprPtr right;

  std::string ToString() const;
};

struct AstTemporalPred;
using AstTemporalPredPtr = std::shared_ptr<AstTemporalPred>;

enum class AstTemporalPredKind {
  kPrecede,
  kOverlap,
  kEqual,
  kAnd,
  kOr,
  kNot,
};

struct AstTemporalPred {
  AstTemporalPredKind kind;
  // kPrecede/kOverlap/kEqual.
  AstTemporalExprPtr left_expr;
  AstTemporalExprPtr right_expr;
  // kAnd/kOr/kNot.
  AstTemporalPredPtr left_pred;
  AstTemporalPredPtr right_pred;

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Clauses
// ---------------------------------------------------------------------------

/// `valid from e1 to e2` or `valid at e`.
struct ValidClause {
  bool at = false;  // True: event form (`valid at e`).
  AstTemporalExprPtr from;  // Or the `at` expression.
  AstTemporalExprPtr to;    // Null in the `at` form.

  std::string ToString() const;
};

/// `as of e [through e2]`.
struct AsOfClause {
  AstTemporalExprPtr at;
  AstTemporalExprPtr through;  // Null unless the range form was used.

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// `create [<class>] [<model>] relation name (attr = type, ...)`.
struct CreateStmt {
  TemporalClass temporal_class = TemporalClass::kStatic;
  TemporalDataModel data_model = TemporalDataModel::kInterval;
  bool persistent = false;
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;  // name, type.
};

/// `destroy name`.
struct DestroyStmt {
  std::string name;
};

/// `range of var is relation`.
struct RangeStmt {
  std::string variable;
  std::string relation;
};

/// One element of a retrieve target list: `name = expr` or `var.attr`.
struct TargetItem {
  std::string name;  // Output attribute name.
  AstExprPtr expr;
};

/// `retrieve [into name] (targets) [valid ...] [where ...] [when ...]
///  [as of ...]`.
struct RetrieveStmt {
  std::optional<std::string> into;
  std::vector<TargetItem> targets;
  std::optional<ValidClause> valid;
  AstExprPtr where;            // Null when absent.
  AstTemporalPredPtr when;     // Null when absent.
  std::optional<AsOfClause> as_of;
};

/// `append to relation (attr = expr, ...) [valid ...]`.
struct AppendStmt {
  std::string relation;
  std::vector<std::pair<std::string, AstExprPtr>> assignments;
  std::optional<ValidClause> valid;
};

/// `delete var [where ...] [when ...] [valid ...]`.
struct DeleteStmt {
  std::string variable;
  AstExprPtr where;         // Null when absent.
  AstTemporalPredPtr when;  // Null when absent.
  std::optional<ValidClause> valid;
};

/// `replace var (attr = expr, ...) [valid ...] [where ...] [when ...]`.
struct ReplaceStmt {
  std::string variable;
  std::vector<std::pair<std::string, AstExprPtr>> assignments;
  std::optional<ValidClause> valid;
  AstExprPtr where;         // Null when absent.
  AstTemporalPredPtr when;  // Null when absent.
};

/// `correct var [where ...]` — the historical physical-erase extension.
struct CorrectStmt {
  std::string variable;
  AstExprPtr where;  // Null when absent.
};

/// `show relation` — dumps the stored representation (Figures 4/6/8 views).
struct ShowStmt {
  std::string relation;
};

/// `create index on <relation> (<attribute>)` — a secondary B+-tree index
/// used by the evaluator for equality predicates.
struct CreateIndexStmt {
  std::string relation;
  std::string attribute;
};

/// `begin transaction`, `commit`, `abort` — explicit multi-statement
/// transactions; executed by the database facade, not the evaluator.
struct BeginTxnStmt {};
struct CommitStmt {};
struct AbortStmt {};

using Statement =
    std::variant<CreateStmt, DestroyStmt, RangeStmt, RetrieveStmt, AppendStmt,
                 DeleteStmt, ReplaceStmt, CorrectStmt, ShowStmt,
                 CreateIndexStmt, BeginTxnStmt, CommitStmt, AbortStmt>;

/// Pretty-prints any statement in TQuel syntax.
std::string StatementToString(const Statement& stmt);

}  // namespace tquel
}  // namespace temporadb

#endif  // TEMPORADB_TQUEL_AST_H_
