#ifndef TEMPORADB_TQUEL_LEXER_H_
#define TEMPORADB_TQUEL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "tquel/token.h"

namespace temporadb {
namespace tquel {

/// Tokenizes TQuel source text.
///
/// Lexical rules:
///  - keywords and identifiers are case-insensitive (normalized to lower);
///  - string literals use double quotes with `\"` and `\\` escapes;
///  - `--` starts a comment to end of line (and `#` likewise);
///  - numbers: `[0-9]+` (int) or `[0-9]+\.[0-9]+` (float).
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace tquel
}  // namespace temporadb

#endif  // TEMPORADB_TQUEL_LEXER_H_
