#include "tquel/analyzer.h"

#include <charconv>

#include "common/strings.h"

namespace temporadb {
namespace tquel {

namespace {

// ---------------------------------------------------------------------------
// Participant collection
// ---------------------------------------------------------------------------

// Collects range-variable names referenced by the statement, in order of
// first appearance.  Bare attribute names are resolved against the declared
// ranges (unique match required).
class ParticipantCollector {
 public:
  explicit ParticipantCollector(const AnalyzerContext& ctx) : ctx_(ctx) {}

  Status AddVar(const std::string& var) {
    if (ctx_.ranges == nullptr || !ctx_.ranges->contains(var)) {
      return Status::InvalidArgument(StringPrintf(
          "unknown range variable '%s' (declare it with 'range of %s is "
          "<relation>')",
          var.c_str(), var.c_str()));
    }
    for (const std::string& existing : order_) {
      if (existing == var) return Status::OK();
    }
    order_.push_back(var);
    return Status::OK();
  }

  Status WalkExpr(const AstExprPtr& e) {
    if (e == nullptr) return Status::OK();
    switch (e->kind) {
      case AstExprKind::kColumn:
        if (!e->variable.empty()) {
          return AddVar(e->variable);
        }
        return ResolveBareAttribute(e->attribute);
      case AstExprKind::kBinary:
        TDB_RETURN_IF_ERROR(WalkExpr(e->left));
        return WalkExpr(e->right);
      case AstExprKind::kNot:
      case AstExprKind::kAggregate:
        return WalkExpr(e->left);
      default:
        return Status::OK();
    }
  }

  Status WalkTemporalExpr(const AstTemporalExprPtr& e) {
    if (e == nullptr) return Status::OK();
    switch (e->kind) {
      case AstTemporalExprKind::kVar:
        return AddVar(e->name);
      case AstTemporalExprKind::kDate:
        return Status::OK();
      default:
        TDB_RETURN_IF_ERROR(WalkTemporalExpr(e->left));
        return WalkTemporalExpr(e->right);
    }
  }

  Status WalkTemporalPred(const AstTemporalPredPtr& p) {
    if (p == nullptr) return Status::OK();
    TDB_RETURN_IF_ERROR(WalkTemporalExpr(p->left_expr));
    TDB_RETURN_IF_ERROR(WalkTemporalExpr(p->right_expr));
    TDB_RETURN_IF_ERROR(WalkTemporalPred(p->left_pred));
    return WalkTemporalPred(p->right_pred);
  }

  // Builds the participant list with offsets.
  Result<std::vector<Participant>> Build() {
    std::vector<Participant> participants;
    size_t offset = 0;
    for (const std::string& var : order_) {
      const std::string& rel_name = ctx_.ranges->at(var);
      TDB_ASSIGN_OR_RETURN(StoredRelation * rel,
                           ctx_.get_relation(rel_name));
      participants.push_back(Participant{var, rel, offset});
      offset += rel->schema().size();
    }
    return participants;
  }

 private:
  Status ResolveBareAttribute(const std::string& attr) {
    // Prefer an already-collected participant; otherwise search all
    // declared ranges for a unique relation carrying the attribute.
    for (const std::string& var : order_) {
      TDB_ASSIGN_OR_RETURN(StoredRelation * rel,
                           ctx_.get_relation(ctx_.ranges->at(var)));
      if (rel->schema().IndexOf(attr).has_value()) return Status::OK();
    }
    std::string found_var;
    if (ctx_.ranges != nullptr) {
      for (const auto& [var, rel_name] : *ctx_.ranges) {
        Result<StoredRelation*> rel = ctx_.get_relation(rel_name);
        if (!rel.ok()) continue;
        if ((*rel)->schema().IndexOf(attr).has_value()) {
          if (!found_var.empty() && ctx_.ranges->at(found_var) != rel_name) {
            return Status::InvalidArgument(StringPrintf(
                "attribute '%s' is ambiguous; qualify it with a range "
                "variable",
                attr.c_str()));
          }
          if (found_var.empty()) found_var = var;
        }
      }
    }
    if (found_var.empty()) {
      return Status::InvalidArgument(
          StringPrintf("unknown attribute '%s'", attr.c_str()));
    }
    return AddVar(found_var);
  }

  const AnalyzerContext& ctx_;
  std::vector<std::string> order_;
};

// Finds the participant ordinal for a variable name.
Result<size_t> FindParticipant(const std::vector<Participant>& participants,
                               const std::string& var) {
  for (size_t i = 0; i < participants.size(); ++i) {
    if (participants[i].name == var) return i;
  }
  return Status::Internal(
      StringPrintf("range variable '%s' not collected", var.c_str()));
}

// Resolves a column reference to (participant ordinal, attribute index).
Result<std::pair<size_t, size_t>> ResolveColumn(
    const std::vector<Participant>& participants, const std::string& var,
    const std::string& attr) {
  if (!var.empty()) {
    TDB_ASSIGN_OR_RETURN(size_t p, FindParticipant(participants, var));
    std::optional<size_t> idx = participants[p].relation->schema().IndexOf(attr);
    if (!idx.has_value()) {
      return Status::InvalidArgument(StringPrintf(
          "relation '%s' (range variable '%s') has no attribute '%s'",
          participants[p].relation->info().name.c_str(), var.c_str(),
          attr.c_str()));
    }
    return std::make_pair(p, *idx);
  }
  std::optional<std::pair<size_t, size_t>> found;
  for (size_t p = 0; p < participants.size(); ++p) {
    std::optional<size_t> idx = participants[p].relation->schema().IndexOf(attr);
    if (idx.has_value()) {
      if (found.has_value()) {
        return Status::InvalidArgument(StringPrintf(
            "attribute '%s' is ambiguous; qualify it", attr.c_str()));
      }
      found = std::make_pair(p, *idx);
    }
  }
  if (!found.has_value()) {
    return Status::InvalidArgument(
        StringPrintf("unknown attribute '%s'", attr.c_str()));
  }
  return *found;
}

Result<Value> ParseNumericLiteral(const AstExpr& e) {
  if (e.kind == AstExprKind::kIntLiteral) {
    int64_t v = 0;
    auto [ptr, ec] =
        std::from_chars(e.literal.data(), e.literal.data() + e.literal.size(), v);
    if (ec != std::errc()) {
      return Status::ParseError("bad integer literal: " + e.literal);
    }
    return Value(v);
  }
  char* endp = nullptr;
  double d = std::strtod(e.literal.c_str(), &endp);
  if (endp != e.literal.c_str() + e.literal.size()) {
    return Status::ParseError("bad float literal: " + e.literal);
  }
  return Value(d);
}

bool IsComparison(AstBinaryOp op) {
  switch (op) {
    case AstBinaryOp::kEq:
    case AstBinaryOp::kNe:
    case AstBinaryOp::kLt:
    case AstBinaryOp::kLe:
    case AstBinaryOp::kGt:
    case AstBinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

CompareOp ToCompareOp(AstBinaryOp op) {
  switch (op) {
    case AstBinaryOp::kEq:
      return CompareOp::kEq;
    case AstBinaryOp::kNe:
      return CompareOp::kNe;
    case AstBinaryOp::kLt:
      return CompareOp::kLt;
    case AstBinaryOp::kLe:
      return CompareOp::kLe;
    case AstBinaryOp::kGt:
      return CompareOp::kGt;
    default:
      return CompareOp::kGe;
  }
}

}  // namespace

Result<ValueType> InferType(const AstExprPtr& ast,
                            const std::vector<Participant>& participants) {
  switch (ast->kind) {
    case AstExprKind::kIntLiteral:
      return ValueType::kInt;
    case AstExprKind::kFloatLiteral:
      return ValueType::kFloat;
    case AstExprKind::kStringLiteral:
      return ValueType::kString;
    case AstExprKind::kColumn: {
      TDB_ASSIGN_OR_RETURN(
          auto loc, ResolveColumn(participants, ast->variable, ast->attribute));
      return participants[loc.first]
          .relation->schema()
          .at(loc.second)
          .type.value_type();
    }
    case AstExprKind::kBinary: {
      if (IsComparison(ast->op) || ast->op == AstBinaryOp::kAnd ||
          ast->op == AstBinaryOp::kOr) {
        return ValueType::kBool;
      }
      TDB_ASSIGN_OR_RETURN(ValueType l, InferType(ast->left, participants));
      TDB_ASSIGN_OR_RETURN(ValueType r, InferType(ast->right, participants));
      return (l == ValueType::kFloat || r == ValueType::kFloat)
                 ? ValueType::kFloat
                 : ValueType::kInt;
    }
    case AstExprKind::kNot:
      return ValueType::kBool;
    case AstExprKind::kAggregate:
      switch (ast->agg) {
        case AstAggFunc::kCount:
          return ValueType::kInt;
        case AstAggFunc::kAvg:
          return ValueType::kFloat;
        default:
          return InferType(ast->left, participants);
      }
  }
  return Status::Internal("unhandled expression kind");
}

Result<ExprPtr> CompileScalarExpr(const AstExprPtr& ast,
                                  const std::vector<Participant>& participants,
                                  bool allow_columns) {
  switch (ast->kind) {
    case AstExprKind::kIntLiteral:
    case AstExprKind::kFloatLiteral: {
      TDB_ASSIGN_OR_RETURN(Value v, ParseNumericLiteral(*ast));
      return MakeLiteral(std::move(v));
    }
    case AstExprKind::kStringLiteral:
      return MakeLiteral(Value(ast->literal));
    case AstExprKind::kColumn: {
      if (!allow_columns) {
        return Status::InvalidArgument(StringPrintf(
            "attribute reference '%s' is not allowed here (constants only)",
            ast->ToString().c_str()));
      }
      TDB_ASSIGN_OR_RETURN(
          auto loc, ResolveColumn(participants, ast->variable, ast->attribute));
      size_t flat =
          participants[loc.first].value_offset + loc.second;
      return MakeColumnRef(flat, ast->ToString());
    }
    case AstExprKind::kBinary: {
      // Date coercion: comparing a date attribute against a string literal
      // parses the literal as a date at compile time.
      AstExprPtr left_ast = ast->left;
      AstExprPtr right_ast = ast->right;
      if (IsComparison(ast->op)) {
        Result<ValueType> lt = InferType(left_ast, participants);
        Result<ValueType> rt = InferType(right_ast, participants);
        if (lt.ok() && rt.ok()) {
          if (*lt == ValueType::kDate &&
              right_ast->kind == AstExprKind::kStringLiteral) {
            TDB_ASSIGN_OR_RETURN(Date d, Date::Parse(right_ast->literal));
            TDB_ASSIGN_OR_RETURN(ExprPtr left,
                                 CompileScalarExpr(left_ast, participants,
                                                   allow_columns));
            return MakeCompare(ToCompareOp(ast->op), std::move(left),
                               MakeLiteral(Value(d)));
          }
          if (*rt == ValueType::kDate &&
              left_ast->kind == AstExprKind::kStringLiteral) {
            TDB_ASSIGN_OR_RETURN(Date d, Date::Parse(left_ast->literal));
            TDB_ASSIGN_OR_RETURN(ExprPtr right,
                                 CompileScalarExpr(right_ast, participants,
                                                   allow_columns));
            return MakeCompare(ToCompareOp(ast->op), MakeLiteral(Value(d)),
                               std::move(right));
          }
        }
      }
      TDB_ASSIGN_OR_RETURN(
          ExprPtr left, CompileScalarExpr(left_ast, participants, allow_columns));
      TDB_ASSIGN_OR_RETURN(ExprPtr right, CompileScalarExpr(
                                              right_ast, participants,
                                              allow_columns));
      if (IsComparison(ast->op)) {
        return MakeCompare(ToCompareOp(ast->op), std::move(left),
                           std::move(right));
      }
      switch (ast->op) {
        case AstBinaryOp::kAdd:
          return MakeArith(ArithOp::kAdd, std::move(left), std::move(right));
        case AstBinaryOp::kSub:
          return MakeArith(ArithOp::kSub, std::move(left), std::move(right));
        case AstBinaryOp::kMul:
          return MakeArith(ArithOp::kMul, std::move(left), std::move(right));
        case AstBinaryOp::kDiv:
          return MakeArith(ArithOp::kDiv, std::move(left), std::move(right));
        case AstBinaryOp::kMod:
          return MakeArith(ArithOp::kMod, std::move(left), std::move(right));
        case AstBinaryOp::kAnd:
          return MakeLogical(LogicalOp::kAnd, std::move(left),
                             std::move(right));
        case AstBinaryOp::kOr:
          return MakeLogical(LogicalOp::kOr, std::move(left),
                             std::move(right));
        default:
          return Status::Internal("unhandled binary op");
      }
    }
    case AstExprKind::kNot: {
      TDB_ASSIGN_OR_RETURN(
          ExprPtr inner, CompileScalarExpr(ast->left, participants,
                                           allow_columns));
      return MakeNot(std::move(inner));
    }
    case AstExprKind::kAggregate:
      return Status::NotSupported(
          "aggregates are only allowed as whole target-list entries "
          "(e.g. 'retrieve (n = count(f.name))')");
  }
  return Status::Internal("unhandled expression kind");
}

Result<TemporalExprPtr> CompileTemporalExpr(
    const AstTemporalExprPtr& ast,
    const std::vector<Participant>& participants, bool allow_vars) {
  switch (ast->kind) {
    case AstTemporalExprKind::kVar: {
      if (!allow_vars) {
        return Status::InvalidArgument(StringPrintf(
            "range variable '%s' is not allowed in this temporal "
            "expression (constants only)",
            ast->name.c_str()));
      }
      TDB_ASSIGN_OR_RETURN(size_t p, FindParticipant(participants, ast->name));
      return MakeVarPeriod(p, ast->name);
    }
    case AstTemporalExprKind::kDate: {
      TDB_ASSIGN_OR_RETURN(Date d, Date::Parse(ast->name));
      Period p = d.IsForever() ? Period(Chronon::Forever(), Chronon::Forever())
                               : Period::At(d.chronon());
      return MakePeriodLiteral(p, "\"" + ast->name + "\"");
    }
    case AstTemporalExprKind::kBeginOf: {
      TDB_ASSIGN_OR_RETURN(TemporalExprPtr inner,
                           CompileTemporalExpr(ast->left, participants,
                                               allow_vars));
      return MakeBeginOf(std::move(inner));
    }
    case AstTemporalExprKind::kEndOf: {
      TDB_ASSIGN_OR_RETURN(TemporalExprPtr inner,
                           CompileTemporalExpr(ast->left, participants,
                                               allow_vars));
      return MakeEndOf(std::move(inner));
    }
    case AstTemporalExprKind::kOverlap: {
      TDB_ASSIGN_OR_RETURN(TemporalExprPtr left,
                           CompileTemporalExpr(ast->left, participants,
                                               allow_vars));
      TDB_ASSIGN_OR_RETURN(TemporalExprPtr right,
                           CompileTemporalExpr(ast->right, participants,
                                               allow_vars));
      return MakeOverlapExpr(std::move(left), std::move(right));
    }
    case AstTemporalExprKind::kExtend: {
      TDB_ASSIGN_OR_RETURN(TemporalExprPtr left,
                           CompileTemporalExpr(ast->left, participants,
                                               allow_vars));
      TDB_ASSIGN_OR_RETURN(TemporalExprPtr right,
                           CompileTemporalExpr(ast->right, participants,
                                               allow_vars));
      return MakeExtendExpr(std::move(left), std::move(right));
    }
  }
  return Status::Internal("unhandled temporal expression kind");
}

Result<TemporalPredPtr> CompileTemporalPred(
    const AstTemporalPredPtr& ast,
    const std::vector<Participant>& participants) {
  switch (ast->kind) {
    case AstTemporalPredKind::kPrecede:
    case AstTemporalPredKind::kOverlap:
    case AstTemporalPredKind::kEqual: {
      TDB_ASSIGN_OR_RETURN(TemporalExprPtr left,
                           CompileTemporalExpr(ast->left_expr, participants));
      TDB_ASSIGN_OR_RETURN(TemporalExprPtr right,
                           CompileTemporalExpr(ast->right_expr, participants));
      if (ast->kind == AstTemporalPredKind::kPrecede) {
        return MakePrecedePred(std::move(left), std::move(right));
      }
      if (ast->kind == AstTemporalPredKind::kOverlap) {
        return MakeOverlapPred(std::move(left), std::move(right));
      }
      return MakeEqualPred(std::move(left), std::move(right));
    }
    case AstTemporalPredKind::kAnd:
    case AstTemporalPredKind::kOr: {
      TDB_ASSIGN_OR_RETURN(TemporalPredPtr left,
                           CompileTemporalPred(ast->left_pred, participants));
      TDB_ASSIGN_OR_RETURN(TemporalPredPtr right,
                           CompileTemporalPred(ast->right_pred, participants));
      if (ast->kind == AstTemporalPredKind::kAnd) {
        return MakeAndPred(std::move(left), std::move(right));
      }
      return MakeOrPred(std::move(left), std::move(right));
    }
    case AstTemporalPredKind::kNot: {
      TDB_ASSIGN_OR_RETURN(TemporalPredPtr inner,
                           CompileTemporalPred(ast->left_pred, participants));
      return MakeNotPred(std::move(inner));
    }
  }
  return Status::Internal("unhandled temporal predicate kind");
}

Result<Period> EvalConstPeriod(const AstTemporalExprPtr& ast) {
  TDB_ASSIGN_OR_RETURN(TemporalExprPtr expr,
                       CompileTemporalExpr(ast, {}, /*allow_vars=*/false));
  return expr->Eval({});
}

Result<std::optional<Period>> ResolveDmlValidClause(
    const std::optional<ValidClause>& clause) {
  if (!clause.has_value()) return std::optional<Period>();
  TDB_ASSIGN_OR_RETURN(Period from, EvalConstPeriod(clause->from));
  if (clause->at) {
    return std::optional<Period>(Period::At(from.begin()));
  }
  TDB_ASSIGN_OR_RETURN(Period to, EvalConstPeriod(clause->to));
  Chronon b = from.begin();
  Chronon e = to.begin();
  if (b >= e) {
    return Status::InvalidArgument(StringPrintf(
        "valid clause denotes an empty period [%s, %s)",
        b.ToString().c_str(), e.ToString().c_str()));
  }
  return std::optional<Period>(Period(b, e));
}

namespace {

// Walks the top-level AND-chain of the where clause, recording
// `var.attr = <constant>` conjuncts as index-probe candidates.
void CollectEqConstraints(const AstExprPtr& e, BoundRetrieve* bound) {
  if (e == nullptr || e->kind != AstExprKind::kBinary) return;
  if (e->op == AstBinaryOp::kAnd) {
    CollectEqConstraints(e->left, bound);
    CollectEqConstraints(e->right, bound);
    return;
  }
  if (e->op != AstBinaryOp::kEq) return;
  const AstExprPtr& l = e->left;
  const AstExprPtr& r = e->right;
  const AstExprPtr* column = nullptr;
  const AstExprPtr* literal = nullptr;
  auto is_literal = [](const AstExprPtr& x) {
    return x->kind == AstExprKind::kIntLiteral ||
           x->kind == AstExprKind::kFloatLiteral ||
           x->kind == AstExprKind::kStringLiteral;
  };
  if (l->kind == AstExprKind::kColumn && is_literal(r)) {
    column = &l;
    literal = &r;
  } else if (r->kind == AstExprKind::kColumn && is_literal(l)) {
    column = &r;
    literal = &l;
  } else {
    return;
  }
  Result<std::pair<size_t, size_t>> loc = ResolveColumn(
      bound->participants, (*column)->variable, (*column)->attribute);
  if (!loc.ok()) return;
  ValueType attr_type = bound->participants[loc->first]
                            .relation->schema()
                            .at(loc->second)
                            .type.value_type();
  Value key;
  switch ((*literal)->kind) {
    case AstExprKind::kIntLiteral: {
      Result<Value> v = ParseNumericLiteral(**literal);
      if (!v.ok() || attr_type != ValueType::kInt) return;
      key = *v;
      break;
    }
    case AstExprKind::kFloatLiteral: {
      Result<Value> v = ParseNumericLiteral(**literal);
      if (!v.ok() || attr_type != ValueType::kFloat) return;
      key = *v;
      break;
    }
    case AstExprKind::kStringLiteral:
      if (attr_type == ValueType::kDate) {
        Result<Date> d = Date::Parse((*literal)->literal);
        if (!d.ok()) return;
        key = Value(*d);
      } else if (attr_type == ValueType::kString) {
        key = Value((*literal)->literal);
      } else {
        return;
      }
      break;
    default:
      return;
  }
  bound->eq_constraints[loc->first].emplace_back(loc->second, std::move(key));
}

}  // namespace

Result<BoundRetrieve> AnalyzeRetrieve(const RetrieveStmt& stmt,
                                      const AnalyzerContext& ctx) {
  if (stmt.targets.empty()) {
    return Status::InvalidArgument("retrieve needs a target list");
  }

  // 1. Collect participants in order of first appearance.
  ParticipantCollector collector(ctx);
  for (const TargetItem& t : stmt.targets) {
    TDB_RETURN_IF_ERROR(collector.WalkExpr(t.expr));
  }
  TDB_RETURN_IF_ERROR(collector.WalkExpr(stmt.where));
  TDB_RETURN_IF_ERROR(collector.WalkTemporalPred(stmt.when));
  if (stmt.valid.has_value()) {
    TDB_RETURN_IF_ERROR(collector.WalkTemporalExpr(stmt.valid->from));
    TDB_RETURN_IF_ERROR(collector.WalkTemporalExpr(stmt.valid->to));
  }
  BoundRetrieve bound;
  TDB_ASSIGN_OR_RETURN(bound.participants, collector.Build());
  if (bound.participants.empty()) {
    return Status::InvalidArgument(
        "retrieve references no relation (constant-only queries are not "
        "supported)");
  }
  for (const Participant& p : bound.participants) {
    bound.total_arity += p.relation->schema().size();
  }

  // 2. Clause legality per the taxonomy (Figure 10).
  const bool wants_valid = stmt.when != nullptr || stmt.valid.has_value();
  const bool wants_asof = stmt.as_of.has_value();
  for (const Participant& p : bound.participants) {
    TemporalClass cls = p.relation->temporal_class();
    if (wants_valid && !SupportsValidTime(cls)) {
      return Status::NotSupported(StringPrintf(
          "historical constructs ('when'/'valid') require valid time, but "
          "relation '%s' is %s",
          p.relation->info().name.c_str(),
          std::string(TemporalClassName(cls)).c_str()));
    }
    if (wants_asof && !SupportsTransactionTime(cls)) {
      return Status::NotSupported(StringPrintf(
          "rollback ('as of') requires transaction time, but relation '%s' "
          "is %s",
          p.relation->info().name.c_str(),
          std::string(TemporalClassName(cls)).c_str()));
    }
  }

  // 3. Aggregation: detect and validate placement.
  for (const TargetItem& t : stmt.targets) {
    if (t.expr->ContainsAggregate()) {
      if (t.expr->kind != AstExprKind::kAggregate) {
        return Status::NotSupported(
            "aggregates must be whole target-list entries (no arithmetic "
            "over aggregates yet)");
      }
      bound.has_aggregates = true;
    }
  }
  if (stmt.where != nullptr && stmt.where->ContainsAggregate()) {
    return Status::NotSupported("aggregates are not allowed in where");
  }
  if (bound.has_aggregates && stmt.valid.has_value()) {
    return Status::NotSupported(
        "a valid clause cannot be combined with aggregation (aggregation "
        "collapses time; slice first, then aggregate)");
  }

  // 4. Result class: meet of the participants' derived classes; aggregation
  // collapses to static.
  TemporalClass result = DerivedClass(bound.participants[0].relation->temporal_class());
  for (size_t i = 1; i < bound.participants.size(); ++i) {
    result = MeetClass(
        result, DerivedClass(bound.participants[i].relation->temporal_class()));
  }
  if (bound.has_aggregates) result = TemporalClass::kStatic;
  bound.result_class = result;
  bound.result_model = (stmt.valid.has_value() && stmt.valid->at)
                           ? TemporalDataModel::kEvent
                           : TemporalDataModel::kInterval;

  // 5. Compile targets (for aggregates: the input expression).
  for (const TargetItem& t : stmt.targets) {
    BoundRetrieve::AggTarget agg;
    const AstExprPtr& value_expr =
        t.expr->kind == AstExprKind::kAggregate ? t.expr->left : t.expr;
    if (t.expr->kind == AstExprKind::kAggregate) {
      agg.is_aggregate = true;
      switch (t.expr->agg) {
        case AstAggFunc::kCount:
          agg.func = AggFunc::kCount;
          break;
        case AstAggFunc::kSum:
          agg.func = AggFunc::kSum;
          break;
        case AstAggFunc::kAvg:
          agg.func = AggFunc::kAvg;
          break;
        case AstAggFunc::kMin:
          agg.func = AggFunc::kMin;
          break;
        case AstAggFunc::kMax:
          agg.func = AggFunc::kMax;
          break;
        case AstAggFunc::kAny:
          agg.func = AggFunc::kAny;
          break;
      }
    }
    bound.target_aggs.push_back(agg);
    TDB_ASSIGN_OR_RETURN(ExprPtr expr,
                         CompileScalarExpr(value_expr, bound.participants));
    TDB_ASSIGN_OR_RETURN(ValueType vt, InferType(t.expr, bound.participants));
    bound.target_exprs.push_back(std::move(expr));
    bound.target_names.push_back(t.name);
    bound.target_types.push_back(vt);
    // Track which participants feed the target list (they determine the
    // default temporal periods of the result).
    std::function<void(const AstExprPtr&)> mark = [&](const AstExprPtr& e) {
      if (e == nullptr) return;
      if (e->kind == AstExprKind::kColumn) {
        Result<std::pair<size_t, size_t>> loc =
            ResolveColumn(bound.participants, e->variable, e->attribute);
        if (loc.ok()) {
          size_t ord = loc->first;
          bool seen = false;
          for (size_t existing : bound.target_vars) {
            if (existing == ord) seen = true;
          }
          if (!seen) bound.target_vars.push_back(ord);
        }
      }
      mark(e->left);
      mark(e->right);
    };
    mark(t.expr);
  }
  if (bound.target_vars.empty()) {
    // Constant targets: every participant contributes to the default
    // periods.
    for (size_t i = 0; i < bound.participants.size(); ++i) {
      bound.target_vars.push_back(i);
    }
  }

  // 5. Compile clauses.
  bound.eq_constraints.resize(bound.participants.size());
  if (stmt.where != nullptr) {
    TDB_ASSIGN_OR_RETURN(bound.where,
                         CompileScalarExpr(stmt.where, bound.participants));
    CollectEqConstraints(stmt.where, &bound);
  }
  if (stmt.when != nullptr) {
    TDB_ASSIGN_OR_RETURN(bound.when,
                         CompileTemporalPred(stmt.when, bound.participants));
  }
  if (stmt.valid.has_value()) {
    bound.valid_at = stmt.valid->at;
    TDB_ASSIGN_OR_RETURN(
        bound.valid_from,
        CompileTemporalExpr(stmt.valid->from, bound.participants));
    if (!stmt.valid->at) {
      TDB_ASSIGN_OR_RETURN(
          bound.valid_to,
          CompileTemporalExpr(stmt.valid->to, bound.participants));
    }
  }
  if (stmt.as_of.has_value()) {
    // As-of expressions must be constant (they select the database state
    // before any tuples are bound).
    TDB_ASSIGN_OR_RETURN(bound.asof_at,
                         CompileTemporalExpr(stmt.as_of->at,
                                             bound.participants,
                                             /*allow_vars=*/false));
    if (stmt.as_of->through != nullptr) {
      TDB_ASSIGN_OR_RETURN(bound.asof_through,
                           CompileTemporalExpr(stmt.as_of->through,
                                               bound.participants,
                                               /*allow_vars=*/false));
    }
  }
  bound.into = stmt.into;
  return bound;
}

}  // namespace tquel
}  // namespace temporadb
