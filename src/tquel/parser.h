#ifndef TEMPORADB_TQUEL_PARSER_H_
#define TEMPORADB_TQUEL_PARSER_H_

#include <vector>

#include "common/result.h"
#include "tquel/ast.h"
#include "tquel/token.h"

namespace temporadb {
namespace tquel {

/// Parses TQuel source into statements.
///
/// Grammar (statements separated by optional semicolons):
///
///   create    ::= "create" ["persistent"] [class] ["event"|"interval"]
///                 "relation" name "(" attr "=" type {"," attr "=" type} ")"
///   class     ::= "static" | "rollback" | "historical" | "temporal"
///   destroy   ::= "destroy" name
///   range     ::= "range" "of" var "is" relation
///   retrieve  ::= "retrieve" ["into" name] "(" target {"," target} ")"
///                 [valid] ["where" expr] ["when" tpred] [asof]
///   target    ::= name "=" expr | var "." attr
///   valid     ::= "valid" ("at" texpr | "from" texpr "to" texpr)
///   asof      ::= "as" "of" texpr ["through" texpr]
///   append    ::= "append" "to" relation "(" assignments ")" [valid]
///   delete    ::= "delete" var ["where" expr] [valid]
///   replace   ::= "replace" var "(" assignments ")" [valid] ["where" expr]
///   correct   ::= "correct" var ["where" expr]
///   show      ::= "show" relation
///
/// Temporal expressions (`texpr`) support `begin of` / `end of` (with
/// `start of` / `stop of` as synonyms, as in the paper's examples),
/// `overlap` (intersection), `extend` (span), range variables, and date
/// literals in double quotes.  Temporal predicates (`tpred`) support
/// `precede`, `overlap`, `equal`, `and`, `or`, `not`, and parentheses.
Result<std::vector<Statement>> Parse(std::string_view source);

/// Parses exactly one statement (rejects trailing input).
Result<Statement> ParseOne(std::string_view source);

}  // namespace tquel
}  // namespace temporadb

#endif  // TEMPORADB_TQUEL_PARSER_H_
