#include "tquel/evaluator.h"

#include "common/strings.h"
#include "rel/operators.h"
#include "rel/temporal_ops.h"

namespace temporadb {
namespace tquel {

namespace {

/// One candidate tuple of a participant: values plus both periods (kept
/// internally regardless of the relation's class; degenerate dimensions are
/// `Period::All()`).
struct Candidate {
  const std::vector<Value>* values;
  Period valid;
  Period txn;
};

// Materializes the candidate tuples of one participant.
//  - Without `as of`: the current stored state (all rows for kinds without
//    transaction time).
//  - With `as of`: every version whose transaction period overlaps the
//    rollback window.
// When the where clause pinned an indexed attribute to a constant
// (`eq_constraints`), the secondary index supplies the candidates instead
// of a scan; visibility is re-checked, and the full where clause still runs
// afterwards.
std::vector<Candidate> Materialize(
    const StoredRelation& rel, const std::optional<Period>& asof,
    const std::vector<std::pair<size_t, Value>>& eq_constraints,
    std::vector<const BitemporalTuple*>* keep) {
  std::vector<Candidate> out;
  const VersionStore* store = rel.store();
  const bool txn_kind = SupportsTransactionTime(rel.temporal_class());
  auto visible = [&](const BitemporalTuple& t) {
    if (asof.has_value()) return t.txn.Overlaps(*asof);
    if (txn_kind) return t.IsCurrentState();
    return true;
  };
  auto add = [&](const BitemporalTuple& t) {
    keep->push_back(&t);
    out.push_back(Candidate{&t.values, t.valid, t.txn});
  };

  // Index probe path.
  for (const auto& [attr, key] : eq_constraints) {
    if (!store->HasAttributeIndex(attr)) continue;
    Result<std::vector<RowId>> rows = store->LookupAttribute(attr, key);
    if (!rows.ok()) break;
    for (RowId row : *rows) {
      Result<const BitemporalTuple*> t = store->Get(row);
      if (t.ok() && visible(**t)) add(**t);
    }
    return out;
  }

  // Scan paths.
  if (asof.has_value()) {
    store->ForEach([&](RowId, const BitemporalTuple& t) {
      if (t.txn.Overlaps(*asof)) add(t);
    });
    return out;
  }
  if (txn_kind) {
    for (RowId row : store->CurrentRows()) {
      Result<const BitemporalTuple*> t = store->Get(row);
      if (t.ok()) add(**t);
    }
    return out;
  }
  store->ForEach([&](RowId, const BitemporalTuple& t) { add(t); });
  return out;
}

// Converts a TQuel value for storage into a date attribute when the user
// wrote a string literal ("09/01/77").
Result<Value> CoerceForAttribute(const Type& type, Value v) {
  if (type.value_type() == ValueType::kDate &&
      v.type() == ValueType::kString) {
    TDB_ASSIGN_OR_RETURN(Date d, Date::Parse(v.AsString()));
    return Value(d);
  }
  return type.Coerce(v);
}

// Compiles a single-variable where clause into a TuplePredicate.  Evaluation
// errors surface through `error` (checked after the DML call).
TuplePredicate CompilePredicate(ExprPtr expr, Status* error) {
  if (expr == nullptr) {
    return [](const std::vector<Value>&) { return true; };
  }
  return [expr = std::move(expr), error](const std::vector<Value>& values) {
    Result<bool> r = EvalPredicate(*expr, values);
    if (!r.ok()) {
      if (error->ok()) *error = r.status();
      return false;
    }
    return *r;
  };
}

Result<Participant> SingleParticipant(const EvalContext& ctx,
                                      const std::string& variable) {
  if (ctx.ranges == nullptr || !ctx.ranges->contains(variable)) {
    return Status::InvalidArgument(StringPrintf(
        "unknown range variable '%s'", variable.c_str()));
  }
  TDB_ASSIGN_OR_RETURN(StoredRelation * rel,
                       ctx.get_relation(ctx.ranges->at(variable)));
  return Participant{variable, rel, 0};
}

Result<UpdateSpec> CompileAssignments(
    const std::vector<std::pair<std::string, AstExprPtr>>& assignments,
    const Participant& participant) {
  UpdateSpec spec;
  const Schema& schema = participant.relation->schema();
  std::vector<Participant> single{participant};
  for (const auto& [attr, ast] : assignments) {
    std::optional<size_t> idx = schema.IndexOf(attr);
    if (!idx.has_value()) {
      return Status::InvalidArgument(StringPrintf(
          "relation '%s' has no attribute '%s'",
          participant.relation->info().name.c_str(), attr.c_str()));
    }
    TDB_ASSIGN_OR_RETURN(ExprPtr expr, CompileScalarExpr(ast, single));
    Type type = schema.at(*idx).type;
    spec.push_back(UpdateAction{
        *idx, [expr, type](const std::vector<Value>& old) -> Result<Value> {
          TDB_ASSIGN_OR_RETURN(Value v, expr->Eval(old));
          return CoerceForAttribute(type, std::move(v));
        }});
  }
  return spec;
}

// Compiles a DML when clause (over the single range variable) into a
// PeriodPredicate; evaluation errors surface through `error`.
Result<PeriodPredicate> CompileDmlWhen(const AstTemporalPredPtr& ast,
                                       const Participant& participant,
                                       Status* error) {
  if (ast == nullptr) return PeriodPredicate(nullptr);
  TDB_ASSIGN_OR_RETURN(TemporalPredPtr pred,
                       CompileTemporalPred(ast, {participant}));
  return PeriodPredicate(
      [pred, error](Period valid) {
        Result<bool> r = pred->Eval({valid});
        if (!r.ok()) {
          if (error->ok()) *error = r.status();
          return false;
        }
        return *r;
      });
}

// Applies the aggregation step of an aggregate retrieve: the raw rowset has
// one column per target (group keys and aggregate inputs, in target order);
// group, aggregate, and restore the original column order.
Result<Rowset> FinalizeAggregates(const BoundRetrieve& bound, Rowset raw) {
  if (!bound.has_aggregates) return raw;
  std::vector<size_t> group_by;
  std::vector<AggSpec> specs;
  std::vector<size_t> out_pos(bound.target_aggs.size());
  for (size_t i = 0; i < bound.target_aggs.size(); ++i) {
    if (bound.target_aggs[i].is_aggregate) {
      out_pos[i] = specs.size();
      specs.push_back(
          AggSpec{bound.target_aggs[i].func, i, bound.target_names[i]});
    } else {
      out_pos[i] = group_by.size();
      group_by.push_back(i);
    }
  }
  for (size_t i = 0; i < out_pos.size(); ++i) {
    if (bound.target_aggs[i].is_aggregate) out_pos[i] += group_by.size();
  }
  TDB_ASSIGN_OR_RETURN(Rowset grouped, Aggregate(raw, group_by, specs));
  return ProjectColumns(grouped, out_pos);
}

}  // namespace

Result<Rowset> EvaluateRetrieve(const BoundRetrieve& bound,
                                const EvalContext& ctx) {
  (void)ctx;  // Reserved for evaluation-time session state (e.g. "now").
  // Resolve the rollback window, if any.
  std::optional<Period> asof;
  if (bound.asof_at != nullptr) {
    TDB_ASSIGN_OR_RETURN(Period at, bound.asof_at->Eval({}));
    if (bound.asof_through != nullptr) {
      TDB_ASSIGN_OR_RETURN(Period through, bound.asof_through->Eval({}));
      // Inclusive range of states: [at, through's chronon].
      asof = Period(at.begin(), through.begin().Next());
    } else {
      asof = Period::At(at.begin());
    }
    if (asof->IsEmpty()) {
      return Status::InvalidArgument("as-of window is empty");
    }
  }

  // Materialize candidates per participant.
  std::vector<const BitemporalTuple*> keepalive;
  std::vector<std::vector<Candidate>> candidates;
  candidates.reserve(bound.participants.size());
  const std::vector<std::pair<size_t, Value>> no_constraints;
  for (size_t i = 0; i < bound.participants.size(); ++i) {
    const auto& eqs = i < bound.eq_constraints.size()
                          ? bound.eq_constraints[i]
                          : no_constraints;
    candidates.push_back(
        Materialize(*bound.participants[i].relation, asof, eqs, &keepalive));
  }

  // Result schema.
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < bound.target_names.size(); ++i) {
    attrs.push_back(
        Attribute{bound.target_names[i], Type(bound.target_types[i])});
  }
  TDB_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  Rowset out(std::move(schema), bound.result_class, bound.result_model);
  const bool want_valid = SupportsValidTime(bound.result_class);
  const bool want_txn = SupportsTransactionTime(bound.result_class);

  // Nested-loop over the candidate product.
  const size_t n = bound.participants.size();
  std::vector<size_t> cursor(n, 0);
  for (const auto& c : candidates) {
    if (c.empty()) return FinalizeAggregates(bound, std::move(out));  // Empty product.
  }
  std::vector<Value> flat;
  flat.reserve(bound.total_arity);
  PeriodBinding valid_binding(n);
  while (true) {
    // Assemble the flattened row and period binding.
    flat.clear();
    for (size_t i = 0; i < n; ++i) {
      const Candidate& c = candidates[i][cursor[i]];
      flat.insert(flat.end(), c.values->begin(), c.values->end());
      valid_binding[i] = c.valid;
    }

    bool keep = true;
    if (bound.where != nullptr) {
      TDB_ASSIGN_OR_RETURN(keep, EvalPredicate(*bound.where, flat));
    }
    if (keep && bound.when != nullptr) {
      TDB_ASSIGN_OR_RETURN(keep, bound.when->Eval(valid_binding));
    }
    if (keep) {
      Row row;
      if (want_valid) {
        Period v;
        if (bound.valid_from != nullptr) {
          TDB_ASSIGN_OR_RETURN(Period from,
                               bound.valid_from->Eval(valid_binding));
          if (bound.valid_at) {
            v = Period::At(from.begin());
          } else {
            TDB_ASSIGN_OR_RETURN(Period to,
                                 bound.valid_to->Eval(valid_binding));
            v = Period(from.begin(), to.begin());
          }
        } else {
          // Default: the intersection of the target-list variables' valid
          // periods.
          v = valid_binding[bound.target_vars[0]];
          for (size_t k = 1; k < bound.target_vars.size(); ++k) {
            v = v.Intersect(valid_binding[bound.target_vars[k]]);
          }
        }
        if (v.IsEmpty()) keep = false;
        row.valid = v;
      }
      if (keep && want_txn) {
        Period t = candidates[bound.target_vars[0]]
                       [cursor[bound.target_vars[0]]].txn;
        for (size_t k = 1; k < bound.target_vars.size(); ++k) {
          size_t ord = bound.target_vars[k];
          t = t.Intersect(candidates[ord][cursor[ord]].txn);
        }
        if (t.IsEmpty()) keep = false;
        row.txn = t;
      }
      if (keep) {
        for (const ExprPtr& e : bound.target_exprs) {
          TDB_ASSIGN_OR_RETURN(Value v, e->Eval(flat));
          row.values.push_back(std::move(v));
        }
        TDB_RETURN_IF_ERROR(out.AddRow(std::move(row)));
      }
    }

    // Advance the odometer.
    size_t i = n;
    while (i > 0) {
      --i;
      if (++cursor[i] < candidates[i].size()) break;
      cursor[i] = 0;
      if (i == 0) return FinalizeAggregates(bound, std::move(out));
    }
  }
}

Result<ExecResult> Execute(const Statement& stmt, EvalContext& ctx) {
  struct Visitor {
    EvalContext& ctx;

    Result<ExecResult> operator()(const CreateStmt& s) {
      if (ctx.create_relation == nullptr) {
        return Status::NotSupported("DDL is not available in this context");
      }
      TDB_RETURN_IF_ERROR(ctx.create_relation(s));
      ExecResult r;
      r.message = StringPrintf(
          "created %s relation '%s'",
          std::string(TemporalClassName(s.temporal_class)).c_str(),
          s.name.c_str());
      return r;
    }

    Result<ExecResult> operator()(const DestroyStmt& s) {
      if (ctx.drop_relation == nullptr) {
        return Status::NotSupported("DDL is not available in this context");
      }
      TDB_RETURN_IF_ERROR(ctx.drop_relation(s.name));
      ExecResult r;
      r.message = "destroyed relation '" + s.name + "'";
      return r;
    }

    Result<ExecResult> operator()(const RangeStmt& s) {
      // Validate the relation exists up front.
      TDB_ASSIGN_OR_RETURN(StoredRelation * rel,
                           ctx.get_relation(s.relation));
      (void)rel;
      (*ctx.ranges)[s.variable] = s.relation;
      ExecResult r;
      r.message = "range variable '" + s.variable + "' over '" + s.relation +
                  "'";
      return r;
    }

    Result<ExecResult> operator()(const RetrieveStmt& s) {
      AnalyzerContext actx;
      actx.get_relation = ctx.get_relation;
      actx.ranges = ctx.ranges;
      TDB_ASSIGN_OR_RETURN(BoundRetrieve bound, AnalyzeRetrieve(s, actx));
      TDB_ASSIGN_OR_RETURN(Rowset rows, EvaluateRetrieve(bound, ctx));
      ExecResult r;
      r.kind = ExecResult::Kind::kRows;
      if (bound.into.has_value()) {
        if (ctx.derived == nullptr) {
          return Status::NotSupported(
              "retrieve into is not available in this context");
        }
        (*ctx.derived)[*bound.into] = rows;
        r.message = StringPrintf("stored %zu tuples into '%s'", rows.size(),
                                 bound.into->c_str());
      }
      r.rows = std::move(rows);
      return r;
    }

    Result<ExecResult> operator()(const AppendStmt& s) {
      if (ctx.txn == nullptr) {
        return Status::FailedPrecondition("append requires a transaction");
      }
      TDB_ASSIGN_OR_RETURN(StoredRelation * rel,
                           ctx.get_relation(s.relation));
      const Schema& schema = rel->schema();
      std::vector<Value> values(schema.size(), Value::Null());
      for (const auto& [attr, ast] : s.assignments) {
        std::optional<size_t> idx = schema.IndexOf(attr);
        if (!idx.has_value()) {
          return Status::InvalidArgument(StringPrintf(
              "relation '%s' has no attribute '%s'", s.relation.c_str(),
              attr.c_str()));
        }
        TDB_ASSIGN_OR_RETURN(
            ExprPtr expr,
            CompileScalarExpr(ast, {}, /*allow_columns=*/false));
        TDB_ASSIGN_OR_RETURN(Value v, expr->Eval({}));
        TDB_ASSIGN_OR_RETURN(values[*idx],
                             CoerceForAttribute(schema.at(*idx).type,
                                                std::move(v)));
      }
      TDB_ASSIGN_OR_RETURN(std::optional<Period> valid,
                           ResolveDmlValidClause(s.valid));
      TDB_RETURN_IF_ERROR(rel->Append(ctx.txn, std::move(values), valid));
      ExecResult r;
      r.kind = ExecResult::Kind::kCount;
      r.count = 1;
      r.message = "appended 1 tuple to '" + s.relation + "'";
      return r;
    }

    Result<ExecResult> operator()(const DeleteStmt& s) {
      if (ctx.txn == nullptr) {
        return Status::FailedPrecondition("delete requires a transaction");
      }
      TDB_ASSIGN_OR_RETURN(Participant p, SingleParticipant(ctx, s.variable));
      ExprPtr where;
      if (s.where != nullptr) {
        TDB_ASSIGN_OR_RETURN(where, CompileScalarExpr(s.where, {p}));
      }
      TDB_ASSIGN_OR_RETURN(std::optional<Period> valid,
                           ResolveDmlValidClause(s.valid));
      Status pred_error = Status::OK();
      TDB_ASSIGN_OR_RETURN(PeriodPredicate when,
                           CompileDmlWhen(s.when, p, &pred_error));
      TDB_ASSIGN_OR_RETURN(
          size_t count,
          p.relation->DeleteWhere(ctx.txn,
                                  CompilePredicate(std::move(where),
                                                   &pred_error),
                                  valid, when));
      TDB_RETURN_IF_ERROR(pred_error);
      ExecResult r;
      r.kind = ExecResult::Kind::kCount;
      r.count = count;
      r.message = StringPrintf("deleted %zu tuple(s)", count);
      return r;
    }

    Result<ExecResult> operator()(const ReplaceStmt& s) {
      if (ctx.txn == nullptr) {
        return Status::FailedPrecondition("replace requires a transaction");
      }
      TDB_ASSIGN_OR_RETURN(Participant p, SingleParticipant(ctx, s.variable));
      TDB_ASSIGN_OR_RETURN(UpdateSpec updates,
                           CompileAssignments(s.assignments, p));
      ExprPtr where;
      if (s.where != nullptr) {
        TDB_ASSIGN_OR_RETURN(where, CompileScalarExpr(s.where, {p}));
      }
      TDB_ASSIGN_OR_RETURN(std::optional<Period> valid,
                           ResolveDmlValidClause(s.valid));
      Status pred_error = Status::OK();
      TDB_ASSIGN_OR_RETURN(PeriodPredicate when,
                           CompileDmlWhen(s.when, p, &pred_error));
      TDB_ASSIGN_OR_RETURN(
          size_t count,
          p.relation->ReplaceWhere(ctx.txn,
                                   CompilePredicate(std::move(where),
                                                    &pred_error),
                                   updates, valid, when));
      TDB_RETURN_IF_ERROR(pred_error);
      ExecResult r;
      r.kind = ExecResult::Kind::kCount;
      r.count = count;
      r.message = StringPrintf("replaced %zu tuple(s)", count);
      return r;
    }

    Result<ExecResult> operator()(const CorrectStmt& s) {
      if (ctx.txn == nullptr) {
        return Status::FailedPrecondition("correct requires a transaction");
      }
      TDB_ASSIGN_OR_RETURN(Participant p, SingleParticipant(ctx, s.variable));
      ExprPtr where;
      if (s.where != nullptr) {
        TDB_ASSIGN_OR_RETURN(where, CompileScalarExpr(s.where, {p}));
      }
      Status pred_error = Status::OK();
      TDB_ASSIGN_OR_RETURN(
          size_t count,
          p.relation->CorrectErase(ctx.txn,
                                   CompilePredicate(std::move(where),
                                                    &pred_error)));
      TDB_RETURN_IF_ERROR(pred_error);
      ExecResult r;
      r.kind = ExecResult::Kind::kCount;
      r.count = count;
      r.message = StringPrintf("corrected (erased) %zu tuple(s)", count);
      return r;
    }

    Result<ExecResult> operator()(const ShowStmt& s) {
      TDB_ASSIGN_OR_RETURN(StoredRelation * rel, ctx.get_relation(s.relation));
      TDB_ASSIGN_OR_RETURN(Rowset rows, ScanStored(*rel));
      ExecResult r;
      r.kind = ExecResult::Kind::kRows;
      r.rows = std::move(rows);
      return r;
    }

    Result<ExecResult> operator()(const CreateIndexStmt& s) {
      TDB_ASSIGN_OR_RETURN(StoredRelation * rel,
                           ctx.get_relation(s.relation));
      TDB_RETURN_IF_ERROR(rel->CreateIndex(s.attribute));
      ExecResult r;
      r.message = "indexed " + s.relation + "." + s.attribute;
      return r;
    }

    // Transaction-control statements are handled by the database facade
    // (which owns Begin/Commit/Abort); reaching the evaluator means the
    // context cannot manage them.
    Result<ExecResult> operator()(const BeginTxnStmt&) {
      return Status::NotSupported(
          "transaction control is not available in this context");
    }
    Result<ExecResult> operator()(const CommitStmt&) {
      return Status::NotSupported(
          "transaction control is not available in this context");
    }
    Result<ExecResult> operator()(const AbortStmt&) {
      return Status::NotSupported(
          "transaction control is not available in this context");
    }
  };
  return std::visit(Visitor{ctx}, stmt);
}

}  // namespace tquel
}  // namespace temporadb
