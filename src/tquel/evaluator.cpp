#include "tquel/evaluator.h"

#include <functional>

#include "common/strings.h"
#include "rel/operators.h"
#include "rel/temporal_ops.h"

namespace temporadb {
namespace tquel {

namespace {

/// One candidate tuple of a participant: values plus both periods (kept
/// internally regardless of the relation's class; degenerate dimensions are
/// `Period::All()`).
struct Candidate {
  const std::vector<Value>* values;
  Period valid;
  Period txn;
};

// Materializes the candidate tuples of one participant.
// When the where clause pinned an indexed attribute to a constant
// (`eq_constraints`), the secondary index supplies the candidates instead
// of a scan; visibility is re-checked, and the full where clause still runs
// afterwards.  Otherwise the relation's `Scan` entry point resolves the
// spec's `as of` / valid windows to its best access path (snapshot index,
// interval index, or a sweep).
std::vector<Candidate> MaterializeParticipant(
    const StoredRelation& rel,
    const std::vector<std::pair<size_t, Value>>& eq_constraints,
    const ScanSpec& spec) {
  std::vector<Candidate> out;
  const VersionStore* store = rel.store();
  const bool txn_kind = SupportsTransactionTime(rel.temporal_class());
  auto visible = [&](const BitemporalTuple& t) {
    if (spec.asof.has_value()) return t.txn.Overlaps(*spec.asof);
    if (txn_kind) return t.IsCurrentState();
    return true;
  };

  // Index probe path (yields in lookup order, not row order).  Disabled
  // under a snapshot: the B+-tree and its row set are writer-thread state
  // with no published watermark, and `Get`/`(*t)->txn` read fields the
  // writer mutates in place.
  if (!spec.snapshot.has_value()) {
    for (const auto& [attr, key] : eq_constraints) {
      if (!store->HasAttributeIndex(attr)) continue;
      Result<std::vector<RowId>> rows = store->LookupAttribute(attr, key);
      if (!rows.ok()) break;
      for (RowId row : *rows) {
        Result<const BitemporalTuple*> t = store->Get(row);
        if (t.ok() && visible(**t)) {
          out.push_back(Candidate{&(*t)->values, (*t)->valid, (*t)->txn});
        }
      }
      return out;
    }
  }

  // Scan path.  With batch execution on, candidates arrive as columnar
  // batches whose residual time predicates already ran through the
  // branch-free kernels; the candidate periods are decoded from the batch's
  // chronon columns (bit-identical to the tuples').  Snapshot scans are
  // forced onto this path: the batch's tt_end column carries the
  // *pin-effective* transaction ends, whereas the tuples' own `txn` fields
  // are written plainly by the single writer and must not be read from a
  // reader thread.
  if (store->options().batch_exec || spec.snapshot.has_value()) {
    VersionBatchScan scan = rel.BatchScan(spec);
    VersionBatch batch;
    while (scan.Next(&batch)) {
      for (size_t i = 0; i < batch.size(); ++i) {
        out.push_back(Candidate{
            &batch.tuples[i]->values,
            Period(Chronon(batch.valid_from[i]), Chronon(batch.valid_to[i])),
            Period(Chronon(batch.tt_start[i]), Chronon(batch.tt_end[i]))});
      }
    }
    return out;
  }
  VersionScan scan = rel.Scan(spec);
  while (const BitemporalTuple* t = scan.Next()) {
    out.push_back(Candidate{&t->values, t->valid, t->txn});
  }
  return out;
}

// Converts a TQuel value for storage into a date attribute when the user
// wrote a string literal ("09/01/77").
Result<Value> CoerceForAttribute(const Type& type, Value v) {
  if (type.value_type() == ValueType::kDate &&
      v.type() == ValueType::kString) {
    TDB_ASSIGN_OR_RETURN(Date d, Date::Parse(v.AsString()));
    return Value(d);
  }
  return type.Coerce(v);
}

// Compiles a single-variable where clause into a TuplePredicate.  Evaluation
// errors surface through `error` (checked after the DML call).
TuplePredicate CompilePredicate(ExprPtr expr, Status* error) {
  if (expr == nullptr) {
    return [](const std::vector<Value>&) { return true; };
  }
  return [expr = std::move(expr), error](const std::vector<Value>& values) {
    Result<bool> r = EvalPredicate(*expr, values);
    if (!r.ok()) {
      if (error->ok()) *error = r.status();
      return false;
    }
    return *r;
  };
}

Result<Participant> SingleParticipant(const EvalContext& ctx,
                                      const std::string& variable) {
  if (ctx.ranges == nullptr || !ctx.ranges->contains(variable)) {
    return Status::InvalidArgument(StringPrintf(
        "unknown range variable '%s'", variable.c_str()));
  }
  TDB_ASSIGN_OR_RETURN(StoredRelation * rel,
                       ctx.get_relation(ctx.ranges->at(variable)));
  return Participant{variable, rel, 0};
}

Result<UpdateSpec> CompileAssignments(
    const std::vector<std::pair<std::string, AstExprPtr>>& assignments,
    const Participant& participant) {
  UpdateSpec spec;
  const Schema& schema = participant.relation->schema();
  std::vector<Participant> single{participant};
  for (const auto& [attr, ast] : assignments) {
    std::optional<size_t> idx = schema.IndexOf(attr);
    if (!idx.has_value()) {
      return Status::InvalidArgument(StringPrintf(
          "relation '%s' has no attribute '%s'",
          participant.relation->info().name.c_str(), attr.c_str()));
    }
    TDB_ASSIGN_OR_RETURN(ExprPtr expr, CompileScalarExpr(ast, single));
    Type type = schema.at(*idx).type;
    spec.push_back(UpdateAction{
        *idx, [expr, type](const std::vector<Value>& old) -> Result<Value> {
          TDB_ASSIGN_OR_RETURN(Value v, expr->Eval(old));
          return CoerceForAttribute(type, std::move(v));
        }});
  }
  return spec;
}

// Compiles a DML when clause (over the single range variable) into a
// PeriodPredicate; evaluation errors surface through `error`.
Result<PeriodPredicate> CompileDmlWhen(const AstTemporalPredPtr& ast,
                                       const Participant& participant,
                                       Status* error) {
  if (ast == nullptr) return PeriodPredicate(nullptr);
  TDB_ASSIGN_OR_RETURN(TemporalPredPtr pred,
                       CompileTemporalPred(ast, {participant}));
  return PeriodPredicate(
      [pred, error](Period valid) {
        Result<bool> r = pred->Eval({valid});
        if (!r.ok()) {
          if (error->ok()) *error = r.status();
          return false;
        }
        return *r;
      });
}

// Applies the aggregation step of an aggregate retrieve: the raw rowset has
// one column per target (group keys and aggregate inputs, in target order);
// group, aggregate, and restore the original column order.
Result<Rowset> FinalizeAggregates(const BoundRetrieve& bound, Rowset raw) {
  if (!bound.has_aggregates) return raw;
  std::vector<size_t> group_by;
  std::vector<AggSpec> specs;
  std::vector<size_t> out_pos(bound.target_aggs.size());
  for (size_t i = 0; i < bound.target_aggs.size(); ++i) {
    if (bound.target_aggs[i].is_aggregate) {
      out_pos[i] = specs.size();
      specs.push_back(
          AggSpec{bound.target_aggs[i].func, i, bound.target_names[i]});
    } else {
      out_pos[i] = group_by.size();
      group_by.push_back(i);
    }
  }
  for (size_t i = 0; i < out_pos.size(); ++i) {
    if (bound.target_aggs[i].is_aggregate) out_pos[i] += group_by.size();
  }
  TDB_ASSIGN_OR_RETURN(Rowset grouped, Aggregate(raw, group_by, specs));
  return ProjectColumns(grouped, out_pos);
}

}  // namespace

Result<Rowset> EvaluateRetrieve(const BoundRetrieve& bound,
                                const EvalContext& ctx) {
  // Resolve the rollback window, if any.
  std::optional<Period> asof;
  if (bound.asof_at != nullptr) {
    TDB_ASSIGN_OR_RETURN(Period at, bound.asof_at->Eval({}));
    if (bound.asof_through != nullptr) {
      TDB_ASSIGN_OR_RETURN(Period through, bound.asof_through->Eval({}));
      // Inclusive range of states: [at, through's chronon].
      asof = Period(at.begin(), through.begin().Next());
    } else {
      asof = Period::At(at.begin());
    }
    if (asof->IsEmpty()) {
      return Status::InvalidArgument("as-of window is empty");
    }
  }

  // Plan one access path per participant.
  //
  // A participant is *materialized* up front when its candidates do not
  // depend on other participants: the attribute-index probe path, or a scan
  // whose pushed-down windows (`as of`, plus any valid window the when
  // clause implies from literals alone) are fixed.  A participant whose
  // when-clause window depends on *earlier* participants becomes a
  // *dynamic* scan — re-planned per bound prefix, i.e. an index-nested-loop
  // join probing the interval index with the outer tuple's valid period.
  const size_t n = bound.participants.size();
  const std::vector<std::pair<size_t, Value>> no_constraints;
  std::vector<char> dynamic(n, 0);
  std::vector<std::vector<Candidate>> fixed(n);
  for (size_t i = 0; i < n; ++i) {
    const StoredRelation& rel = *bound.participants[i].relation;
    const auto& eqs = i < bound.eq_constraints.size()
                          ? bound.eq_constraints[i]
                          : no_constraints;
    bool has_probe = false;
    for (const auto& [attr, key] : eqs) {
      (void)key;
      if (rel.store()->HasAttributeIndex(attr)) {
        has_probe = true;
        break;
      }
    }
    ScanSpec spec;
    spec.asof = asof;
    if (ctx.snapshot != nullptr) {
      spec.snapshot = ctx.snapshot->PinFor(rel.store());
    }
    if (!has_probe && bound.when != nullptr &&
        SupportsValidTime(rel.temporal_class()) &&
        rel.store()->options().time_pushdown) {
      // A window derivable with nothing bound (prefix 0) is static: push it
      // into the one-shot materializing scan.  Otherwise probe whether one
      // becomes derivable once participants 0..i-1 are bound.
      spec.valid_during = bound.when->PushdownWindow(i, {}, 0);
      if (!spec.valid_during.has_value() && i > 0) {
        const PeriodBinding shape_probe(i, Period::All());
        dynamic[i] =
            bound.when->PushdownWindow(i, shape_probe, i).has_value();
      }
    }
    if (!dynamic[i]) fixed[i] = MaterializeParticipant(rel, eqs, spec);
  }

  // Result schema.
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < bound.target_names.size(); ++i) {
    attrs.push_back(
        Attribute{bound.target_names[i], Type(bound.target_types[i])});
  }
  TDB_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  Rowset out(std::move(schema), bound.result_class, bound.result_model);
  const bool want_valid = SupportsValidTime(bound.result_class);
  const bool want_txn = SupportsTransactionTime(bound.result_class);

  // Nested-loop over the candidate product: participant 0 is the outermost
  // loop.  `chosen`/`valid_binding` hold the tuple bound at each level.
  std::vector<const Candidate*> chosen(n);
  PeriodBinding valid_binding(n);
  std::vector<Value> flat;
  flat.reserve(bound.total_arity);

  auto emit = [&]() -> Status {
    // Assemble the flattened row.
    flat.clear();
    for (size_t i = 0; i < n; ++i) {
      flat.insert(flat.end(), chosen[i]->values->begin(),
                  chosen[i]->values->end());
    }
    bool keep = true;
    if (bound.where != nullptr) {
      TDB_ASSIGN_OR_RETURN(keep, EvalPredicate(*bound.where, flat));
    }
    if (keep && bound.when != nullptr) {
      TDB_ASSIGN_OR_RETURN(keep, bound.when->Eval(valid_binding));
    }
    if (!keep) return Status::OK();
    Row row;
    if (want_valid) {
      Period v;
      if (bound.valid_from != nullptr) {
        TDB_ASSIGN_OR_RETURN(Period from,
                             bound.valid_from->Eval(valid_binding));
        if (bound.valid_at) {
          v = Period::At(from.begin());
        } else {
          TDB_ASSIGN_OR_RETURN(Period to,
                               bound.valid_to->Eval(valid_binding));
          v = Period(from.begin(), to.begin());
        }
      } else {
        // Default: the intersection of the target-list variables' valid
        // periods.
        v = valid_binding[bound.target_vars[0]];
        for (size_t k = 1; k < bound.target_vars.size(); ++k) {
          v = v.Intersect(valid_binding[bound.target_vars[k]]);
        }
      }
      if (v.IsEmpty()) return Status::OK();
      row.valid = v;
    }
    if (want_txn) {
      Period t = chosen[bound.target_vars[0]]->txn;
      for (size_t k = 1; k < bound.target_vars.size(); ++k) {
        t = t.Intersect(chosen[bound.target_vars[k]]->txn);
      }
      if (t.IsEmpty()) return Status::OK();
      row.txn = t;
    }
    for (const ExprPtr& e : bound.target_exprs) {
      TDB_ASSIGN_OR_RETURN(Value v, e->Eval(flat));
      row.values.push_back(std::move(v));
    }
    return out.AddRow(std::move(row));
  };

  // One reusable batch buffer per nesting level: `Next` overwrites it, so
  // hoisting the buffers out of the recursion means each level's (typically
  // tiny) inner probes stop paying per-probe allocations.  Per level, not
  // shared: a deeper dynamic participant must not clobber the batch an
  // outer level is still iterating.
  std::vector<VersionBatch> level_batch(n);
  std::function<Status(size_t)> enumerate = [&](size_t i) -> Status {
    if (i == n) return emit();
    if (!dynamic[i]) {
      for (const Candidate& c : fixed[i]) {
        chosen[i] = &c;
        valid_binding[i] = c.valid;
        TDB_RETURN_IF_ERROR(enumerate(i + 1));
      }
      return Status::OK();
    }
    // Index-nested-loop step: re-derive the implied valid window from the
    // when clause under the bound prefix (entries >= i are never read) and
    // let the relation pick the matching index path.  A failed derivation
    // just scans unconstrained — the leaf predicates stay authoritative.
    const StoredRelation& rel = *bound.participants[i].relation;
    ScanSpec spec;
    spec.asof = asof;
    spec.valid_during = bound.when->PushdownWindow(i, valid_binding, i);
    if (ctx.snapshot != nullptr) {
      spec.snapshot = ctx.snapshot->PinFor(rel.store());
    }
    // Snapshot probes use the batch path for the same reason as the
    // materializing scan above: pin-effective tt_end, no tuple-field reads.
    if (rel.store()->options().batch_exec || spec.snapshot.has_value()) {
      VersionBatchScan scan = rel.BatchScan(spec);
      VersionBatch& batch = level_batch[i];
      while (scan.Next(&batch)) {
        for (size_t k = 0; k < batch.size(); ++k) {
          const Candidate c{
              &batch.tuples[k]->values,
              Period(Chronon(batch.valid_from[k]), Chronon(batch.valid_to[k])),
              Period(Chronon(batch.tt_start[k]), Chronon(batch.tt_end[k]))};
          chosen[i] = &c;
          valid_binding[i] = c.valid;
          TDB_RETURN_IF_ERROR(enumerate(i + 1));
        }
      }
      return Status::OK();
    }
    VersionScan scan = rel.Scan(spec);
    while (const BitemporalTuple* t = scan.Next()) {
      const Candidate c{&t->values, t->valid, t->txn};
      chosen[i] = &c;
      valid_binding[i] = t->valid;
      TDB_RETURN_IF_ERROR(enumerate(i + 1));
    }
    return Status::OK();
  };
  TDB_RETURN_IF_ERROR(enumerate(0));
  return FinalizeAggregates(bound, std::move(out));
}

Result<ExecResult> Execute(const Statement& stmt, EvalContext& ctx) {
  struct Visitor {
    EvalContext& ctx;

    Result<ExecResult> operator()(const CreateStmt& s) {
      if (ctx.create_relation == nullptr) {
        return Status::NotSupported("DDL is not available in this context");
      }
      TDB_RETURN_IF_ERROR(ctx.create_relation(s));
      ExecResult r;
      r.message = StringPrintf(
          "created %s relation '%s'",
          std::string(TemporalClassName(s.temporal_class)).c_str(),
          s.name.c_str());
      return r;
    }

    Result<ExecResult> operator()(const DestroyStmt& s) {
      if (ctx.drop_relation == nullptr) {
        return Status::NotSupported("DDL is not available in this context");
      }
      TDB_RETURN_IF_ERROR(ctx.drop_relation(s.name));
      ExecResult r;
      r.message = "destroyed relation '" + s.name + "'";
      return r;
    }

    Result<ExecResult> operator()(const RangeStmt& s) {
      // Validate the relation exists up front.
      TDB_ASSIGN_OR_RETURN(StoredRelation * rel,
                           ctx.get_relation(s.relation));
      (void)rel;
      (*ctx.ranges)[s.variable] = s.relation;
      ExecResult r;
      r.message = "range variable '" + s.variable + "' over '" + s.relation +
                  "'";
      return r;
    }

    Result<ExecResult> operator()(const RetrieveStmt& s) {
      AnalyzerContext actx;
      actx.get_relation = ctx.get_relation;
      actx.ranges = ctx.ranges;
      TDB_ASSIGN_OR_RETURN(BoundRetrieve bound, AnalyzeRetrieve(s, actx));
      TDB_ASSIGN_OR_RETURN(Rowset rows, EvaluateRetrieve(bound, ctx));
      ExecResult r;
      r.kind = ExecResult::Kind::kRows;
      if (bound.into.has_value()) {
        if (ctx.derived == nullptr) {
          return Status::NotSupported(
              "retrieve into is not available in this context");
        }
        (*ctx.derived)[*bound.into] = rows;
        r.message = StringPrintf("stored %zu tuples into '%s'", rows.size(),
                                 bound.into->c_str());
      }
      r.rows = std::move(rows);
      return r;
    }

    Result<ExecResult> operator()(const AppendStmt& s) {
      if (ctx.txn == nullptr) {
        return Status::FailedPrecondition("append requires a transaction");
      }
      TDB_ASSIGN_OR_RETURN(StoredRelation * rel,
                           ctx.get_relation(s.relation));
      const Schema& schema = rel->schema();
      std::vector<Value> values(schema.size(), Value::Null());
      for (const auto& [attr, ast] : s.assignments) {
        std::optional<size_t> idx = schema.IndexOf(attr);
        if (!idx.has_value()) {
          return Status::InvalidArgument(StringPrintf(
              "relation '%s' has no attribute '%s'", s.relation.c_str(),
              attr.c_str()));
        }
        TDB_ASSIGN_OR_RETURN(
            ExprPtr expr,
            CompileScalarExpr(ast, {}, /*allow_columns=*/false));
        TDB_ASSIGN_OR_RETURN(Value v, expr->Eval({}));
        TDB_ASSIGN_OR_RETURN(values[*idx],
                             CoerceForAttribute(schema.at(*idx).type,
                                                std::move(v)));
      }
      TDB_ASSIGN_OR_RETURN(std::optional<Period> valid,
                           ResolveDmlValidClause(s.valid));
      TDB_RETURN_IF_ERROR(rel->Append(ctx.txn, std::move(values), valid));
      ExecResult r;
      r.kind = ExecResult::Kind::kCount;
      r.count = 1;
      r.message = "appended 1 tuple to '" + s.relation + "'";
      return r;
    }

    Result<ExecResult> operator()(const DeleteStmt& s) {
      if (ctx.txn == nullptr) {
        return Status::FailedPrecondition("delete requires a transaction");
      }
      TDB_ASSIGN_OR_RETURN(Participant p, SingleParticipant(ctx, s.variable));
      ExprPtr where;
      if (s.where != nullptr) {
        TDB_ASSIGN_OR_RETURN(where, CompileScalarExpr(s.where, {p}));
      }
      TDB_ASSIGN_OR_RETURN(std::optional<Period> valid,
                           ResolveDmlValidClause(s.valid));
      Status pred_error = Status::OK();
      TDB_ASSIGN_OR_RETURN(PeriodPredicate when,
                           CompileDmlWhen(s.when, p, &pred_error));
      TDB_ASSIGN_OR_RETURN(
          size_t count,
          p.relation->DeleteWhere(ctx.txn,
                                  CompilePredicate(std::move(where),
                                                   &pred_error),
                                  valid, when));
      TDB_RETURN_IF_ERROR(pred_error);
      ExecResult r;
      r.kind = ExecResult::Kind::kCount;
      r.count = count;
      r.message = StringPrintf("deleted %zu tuple(s)", count);
      return r;
    }

    Result<ExecResult> operator()(const ReplaceStmt& s) {
      if (ctx.txn == nullptr) {
        return Status::FailedPrecondition("replace requires a transaction");
      }
      TDB_ASSIGN_OR_RETURN(Participant p, SingleParticipant(ctx, s.variable));
      TDB_ASSIGN_OR_RETURN(UpdateSpec updates,
                           CompileAssignments(s.assignments, p));
      ExprPtr where;
      if (s.where != nullptr) {
        TDB_ASSIGN_OR_RETURN(where, CompileScalarExpr(s.where, {p}));
      }
      TDB_ASSIGN_OR_RETURN(std::optional<Period> valid,
                           ResolveDmlValidClause(s.valid));
      Status pred_error = Status::OK();
      TDB_ASSIGN_OR_RETURN(PeriodPredicate when,
                           CompileDmlWhen(s.when, p, &pred_error));
      TDB_ASSIGN_OR_RETURN(
          size_t count,
          p.relation->ReplaceWhere(ctx.txn,
                                   CompilePredicate(std::move(where),
                                                    &pred_error),
                                   updates, valid, when));
      TDB_RETURN_IF_ERROR(pred_error);
      ExecResult r;
      r.kind = ExecResult::Kind::kCount;
      r.count = count;
      r.message = StringPrintf("replaced %zu tuple(s)", count);
      return r;
    }

    Result<ExecResult> operator()(const CorrectStmt& s) {
      if (ctx.txn == nullptr) {
        return Status::FailedPrecondition("correct requires a transaction");
      }
      TDB_ASSIGN_OR_RETURN(Participant p, SingleParticipant(ctx, s.variable));
      ExprPtr where;
      if (s.where != nullptr) {
        TDB_ASSIGN_OR_RETURN(where, CompileScalarExpr(s.where, {p}));
      }
      Status pred_error = Status::OK();
      TDB_ASSIGN_OR_RETURN(
          size_t count,
          p.relation->CorrectErase(ctx.txn,
                                   CompilePredicate(std::move(where),
                                                    &pred_error)));
      TDB_RETURN_IF_ERROR(pred_error);
      ExecResult r;
      r.kind = ExecResult::Kind::kCount;
      r.count = count;
      r.message = StringPrintf("corrected (erased) %zu tuple(s)", count);
      return r;
    }

    Result<ExecResult> operator()(const ShowStmt& s) {
      TDB_ASSIGN_OR_RETURN(StoredRelation * rel, ctx.get_relation(s.relation));
      TDB_ASSIGN_OR_RETURN(Rowset rows, ScanStored(*rel));
      ExecResult r;
      r.kind = ExecResult::Kind::kRows;
      r.rows = std::move(rows);
      return r;
    }

    Result<ExecResult> operator()(const CreateIndexStmt& s) {
      TDB_ASSIGN_OR_RETURN(StoredRelation * rel,
                           ctx.get_relation(s.relation));
      TDB_RETURN_IF_ERROR(rel->CreateIndex(s.attribute));
      ExecResult r;
      r.message = "indexed " + s.relation + "." + s.attribute;
      return r;
    }

    // Transaction-control statements are handled by the database facade
    // (which owns Begin/Commit/Abort); reaching the evaluator means the
    // context cannot manage them.
    Result<ExecResult> operator()(const BeginTxnStmt&) {
      return Status::NotSupported(
          "transaction control is not available in this context");
    }
    Result<ExecResult> operator()(const CommitStmt&) {
      return Status::NotSupported(
          "transaction control is not available in this context");
    }
    Result<ExecResult> operator()(const AbortStmt&) {
      return Status::NotSupported(
          "transaction control is not available in this context");
    }
  };
  return std::visit(Visitor{ctx}, stmt);
}

}  // namespace tquel
}  // namespace temporadb
