#include "tquel/ast.h"

namespace temporadb {
namespace tquel {

namespace {

std::string_view BinaryOpName(AstBinaryOp op) {
  switch (op) {
    case AstBinaryOp::kEq:
      return "=";
    case AstBinaryOp::kNe:
      return "!=";
    case AstBinaryOp::kLt:
      return "<";
    case AstBinaryOp::kLe:
      return "<=";
    case AstBinaryOp::kGt:
      return ">";
    case AstBinaryOp::kGe:
      return ">=";
    case AstBinaryOp::kAdd:
      return "+";
    case AstBinaryOp::kSub:
      return "-";
    case AstBinaryOp::kMul:
      return "*";
    case AstBinaryOp::kDiv:
      return "/";
    case AstBinaryOp::kMod:
      return "mod";
    case AstBinaryOp::kAnd:
      return "and";
    case AstBinaryOp::kOr:
      return "or";
  }
  return "?";
}

}  // namespace

std::string_view AstAggFuncName(AstAggFunc f) {
  switch (f) {
    case AstAggFunc::kCount:
      return "count";
    case AstAggFunc::kSum:
      return "sum";
    case AstAggFunc::kAvg:
      return "avg";
    case AstAggFunc::kMin:
      return "min";
    case AstAggFunc::kMax:
      return "max";
    case AstAggFunc::kAny:
      return "any";
  }
  return "?";
}

bool AstExpr::ContainsAggregate() const {
  if (kind == AstExprKind::kAggregate) return true;
  if (left != nullptr && left->ContainsAggregate()) return true;
  return right != nullptr && right->ContainsAggregate();
}

std::string AstExpr::ToString() const {
  switch (kind) {
    case AstExprKind::kIntLiteral:
    case AstExprKind::kFloatLiteral:
      return literal;
    case AstExprKind::kStringLiteral:
      return "\"" + literal + "\"";
    case AstExprKind::kColumn:
      return variable.empty() ? attribute : variable + "." + attribute;
    case AstExprKind::kBinary:
      return "(" + left->ToString() + " " +
             std::string(BinaryOpName(op)) + " " + right->ToString() + ")";
    case AstExprKind::kNot:
      return "not " + left->ToString();
    case AstExprKind::kAggregate:
      return std::string(AstAggFuncName(agg)) + "(" + left->ToString() + ")";
  }
  return "?";
}

std::string AstTemporalExpr::ToString() const {
  switch (kind) {
    case AstTemporalExprKind::kVar:
      return name;
    case AstTemporalExprKind::kDate:
      return "\"" + name + "\"";
    case AstTemporalExprKind::kBeginOf:
      return "begin of " + left->ToString();
    case AstTemporalExprKind::kEndOf:
      return "end of " + left->ToString();
    case AstTemporalExprKind::kOverlap:
      return "(" + left->ToString() + " overlap " + right->ToString() + ")";
    case AstTemporalExprKind::kExtend:
      return "(" + left->ToString() + " extend " + right->ToString() + ")";
  }
  return "?";
}

std::string AstTemporalPred::ToString() const {
  switch (kind) {
    case AstTemporalPredKind::kPrecede:
      return "(" + left_expr->ToString() + " precede " +
             right_expr->ToString() + ")";
    case AstTemporalPredKind::kOverlap:
      return "(" + left_expr->ToString() + " overlap " +
             right_expr->ToString() + ")";
    case AstTemporalPredKind::kEqual:
      return "(" + left_expr->ToString() + " equal " +
             right_expr->ToString() + ")";
    case AstTemporalPredKind::kAnd:
      return "(" + left_pred->ToString() + " and " + right_pred->ToString() +
             ")";
    case AstTemporalPredKind::kOr:
      return "(" + left_pred->ToString() + " or " + right_pred->ToString() +
             ")";
    case AstTemporalPredKind::kNot:
      return "not " + left_pred->ToString();
  }
  return "?";
}

std::string ValidClause::ToString() const {
  if (at) return "valid at " + from->ToString();
  return "valid from " + from->ToString() + " to " + to->ToString();
}

std::string AsOfClause::ToString() const {
  std::string out = "as of " + at->ToString();
  if (through != nullptr) out += " through " + through->ToString();
  return out;
}

std::string StatementToString(const Statement& stmt) {
  struct Visitor {
    std::string operator()(const CreateStmt& s) const {
      std::string out = "create ";
      if (s.persistent) out += "persistent ";
      out += TemporalClassName(s.temporal_class);
      if (s.data_model == TemporalDataModel::kEvent) out += " event";
      out += " relation ";
      out += s.name;
      out += " (";
      for (size_t i = 0; i < s.attributes.size(); ++i) {
        if (i > 0) out += ", ";
        out += s.attributes[i].first + " = " + s.attributes[i].second;
      }
      out += ")";
      return out;
    }
    std::string operator()(const DestroyStmt& s) const {
      return "destroy " + s.name;
    }
    std::string operator()(const RangeStmt& s) const {
      return "range of " + s.variable + " is " + s.relation;
    }
    std::string operator()(const RetrieveStmt& s) const {
      std::string out = "retrieve ";
      if (s.into.has_value()) out += "into " + *s.into + " ";
      out += "(";
      for (size_t i = 0; i < s.targets.size(); ++i) {
        if (i > 0) out += ", ";
        const TargetItem& t = s.targets[i];
        std::string expr = t.expr->ToString();
        if (t.expr->kind == AstExprKind::kColumn &&
            t.expr->attribute == t.name) {
          out += expr;
        } else {
          out += t.name + " = " + expr;
        }
      }
      out += ")";
      if (s.valid.has_value()) out += " " + s.valid->ToString();
      if (s.where != nullptr) out += " where " + s.where->ToString();
      if (s.when != nullptr) out += " when " + s.when->ToString();
      if (s.as_of.has_value()) out += " " + s.as_of->ToString();
      return out;
    }
    std::string operator()(const AppendStmt& s) const {
      std::string out = "append to " + s.relation + " (";
      for (size_t i = 0; i < s.assignments.size(); ++i) {
        if (i > 0) out += ", ";
        out += s.assignments[i].first + " = " +
               s.assignments[i].second->ToString();
      }
      out += ")";
      if (s.valid.has_value()) out += " " + s.valid->ToString();
      return out;
    }
    std::string operator()(const DeleteStmt& s) const {
      std::string out = "delete " + s.variable;
      if (s.where != nullptr) out += " where " + s.where->ToString();
      if (s.when != nullptr) out += " when " + s.when->ToString();
      if (s.valid.has_value()) out += " " + s.valid->ToString();
      return out;
    }
    std::string operator()(const ReplaceStmt& s) const {
      std::string out = "replace " + s.variable + " (";
      for (size_t i = 0; i < s.assignments.size(); ++i) {
        if (i > 0) out += ", ";
        out += s.assignments[i].first + " = " +
               s.assignments[i].second->ToString();
      }
      out += ")";
      if (s.valid.has_value()) out += " " + s.valid->ToString();
      if (s.where != nullptr) out += " where " + s.where->ToString();
      if (s.when != nullptr) out += " when " + s.when->ToString();
      return out;
    }
    std::string operator()(const CorrectStmt& s) const {
      std::string out = "correct " + s.variable;
      if (s.where != nullptr) out += " where " + s.where->ToString();
      return out;
    }
    std::string operator()(const ShowStmt& s) const {
      return "show " + s.relation;
    }
    std::string operator()(const CreateIndexStmt& s) const {
      return "create index on " + s.relation + " (" + s.attribute + ")";
    }
    std::string operator()(const BeginTxnStmt&) const {
      return "begin transaction";
    }
    std::string operator()(const CommitStmt&) const { return "commit"; }
    std::string operator()(const AbortStmt&) const { return "abort"; }
  };
  return std::visit(Visitor{}, stmt);
}

}  // namespace tquel
}  // namespace temporadb
