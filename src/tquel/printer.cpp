#include "tquel/printer.h"

#include "common/strings.h"

namespace temporadb {
namespace tquel {

std::string FormatResult(const ExecResult& result) {
  switch (result.kind) {
    case ExecResult::Kind::kRows: {
      std::string out = result.rows.Render();
      out += StringPrintf(
          "-- %s relation, %zu tuple(s)\n",
          std::string(TemporalClassName(result.rows.temporal_class())).c_str(),
          result.rows.size());
      if (!result.message.empty()) {
        out += "-- " + result.message + "\n";
      }
      return out;
    }
    case ExecResult::Kind::kCount:
    case ExecResult::Kind::kNone:
      return result.message.empty() ? std::string("ok\n")
                                    : result.message + "\n";
  }
  return "";
}

}  // namespace tquel
}  // namespace temporadb
