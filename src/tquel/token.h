#ifndef TEMPORADB_TQUEL_TOKEN_H_
#define TEMPORADB_TQUEL_TOKEN_H_

#include <string>
#include <string_view>

namespace temporadb {
namespace tquel {

/// Token kinds of the TQuel lexer.
///
/// TQuel (Snodgrass 1984/85) extends Quel with temporal constructs; keywords
/// are case-insensitive.  Multi-word constructs ("as of", "begin of",
/// "range of") are separate tokens composed by the parser.
enum class TokenKind {
  kEof,
  kIdentifier,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,

  // Punctuation / operators.
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,

  // Keywords.
  kCreate,
  kDestroy,
  kStatic,
  kRollback,
  kHistorical,
  kTemporal,
  kEvent,
  kInterval,
  kRelation,
  kPersistent,
  kRange,
  kOf,
  kIs,
  kRetrieve,
  kInto,
  kWhere,
  kWhen,
  kValid,
  kFrom,
  kTo,
  kAt,
  kAs,
  kThrough,
  kAppend,
  kDelete,
  kReplace,
  kCorrect,
  kCommit,
  kAbort,
  kTransaction,
  kBegin,
  kEnd,
  kOverlap,
  kExtend,
  kPrecede,
  kEqual,
  kAnd,
  kOr,
  kNot,
  kMod,
  kShow,
};

std::string_view TokenKindName(TokenKind kind);

/// A lexed token with source position (1-based line/column) for error
/// messages.
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;  ///< Original spelling (string literals: unquoted body).
  int line = 1;
  int column = 1;

  bool Is(TokenKind k) const { return kind == k; }
};

}  // namespace tquel
}  // namespace temporadb

#endif  // TEMPORADB_TQUEL_TOKEN_H_
