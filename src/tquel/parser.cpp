#include "tquel/parser.h"

#include "common/strings.h"
#include "tquel/lexer.h"

namespace temporadb {
namespace tquel {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<Statement>> ParseProgram() {
    std::vector<Statement> out;
    while (!Peek().Is(TokenKind::kEof)) {
      TDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      out.push_back(std::move(stmt));
      while (Peek().Is(TokenKind::kSemicolon)) Advance();
    }
    return out;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Match(TokenKind kind) {
    if (Peek().Is(kind)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ErrorHere(const std::string& what) const {
    const Token& t = Peek();
    return Status::ParseError(StringPrintf(
        "%s at line %d, column %d (found %s '%s')", what.c_str(), t.line,
        t.column, std::string(TokenKindName(t.kind)).c_str(),
        t.text.c_str()));
  }
  Result<Token> Expect(TokenKind kind, const char* context) {
    if (!Peek().Is(kind)) {
      return ErrorHere(StringPrintf("expected %s in %s",
                                    std::string(TokenKindName(kind)).c_str(),
                                    context));
    }
    return Advance();
  }
  Result<std::string> ExpectIdentifier(const char* context) {
    TDB_ASSIGN_OR_RETURN(Token t, Expect(TokenKind::kIdentifier, context));
    return t.text;
  }

  Result<Statement> ParseStatement() {
    switch (Peek().kind) {
      case TokenKind::kCreate:
        return ParseCreate();
      case TokenKind::kDestroy:
        return ParseDestroy();
      case TokenKind::kRange:
        return ParseRange();
      case TokenKind::kRetrieve:
        return ParseRetrieve();
      case TokenKind::kAppend:
        return ParseAppend();
      case TokenKind::kDelete:
        return ParseDelete();
      case TokenKind::kReplace:
        return ParseReplace();
      case TokenKind::kCorrect:
        return ParseCorrect();
      case TokenKind::kShow:
        return ParseShow();
      case TokenKind::kBegin: {
        Advance();
        TDB_ASSIGN_OR_RETURN(
            Token t, Expect(TokenKind::kTransaction, "begin statement"));
        (void)t;
        return Statement(BeginTxnStmt{});
      }
      case TokenKind::kCommit:
        Advance();
        (void)Match(TokenKind::kTransaction);
        return Statement(CommitStmt{});
      case TokenKind::kAbort:
        Advance();
        (void)Match(TokenKind::kTransaction);
        return Statement(AbortStmt{});
      default:
        return ErrorHere("expected a statement");
    }
  }

  Result<Statement> ParseCreate() {
    Advance();  // create
    // `create index on <relation> (<attribute>)`.
    if (Peek().Is(TokenKind::kIdentifier) && Peek().text == "index") {
      Advance();
      if (!(Peek().Is(TokenKind::kIdentifier) && Peek().text == "on")) {
        return ErrorHere("expected 'on' in create index");
      }
      Advance();
      CreateIndexStmt idx;
      TDB_ASSIGN_OR_RETURN(idx.relation, ExpectIdentifier("create index"));
      TDB_ASSIGN_OR_RETURN(Token lp2,
                           Expect(TokenKind::kLParen, "create index"));
      (void)lp2;
      TDB_ASSIGN_OR_RETURN(idx.attribute, ExpectIdentifier("create index"));
      TDB_ASSIGN_OR_RETURN(Token rp2,
                           Expect(TokenKind::kRParen, "create index"));
      (void)rp2;
      return Statement(std::move(idx));
    }
    CreateStmt stmt;
    if (Match(TokenKind::kPersistent)) stmt.persistent = true;
    if (Match(TokenKind::kStatic)) {
      stmt.temporal_class = TemporalClass::kStatic;
    } else if (Match(TokenKind::kRollback)) {
      stmt.temporal_class = TemporalClass::kRollback;
    } else if (Match(TokenKind::kHistorical)) {
      stmt.temporal_class = TemporalClass::kHistorical;
    } else if (Match(TokenKind::kTemporal)) {
      stmt.temporal_class = TemporalClass::kTemporal;
    }
    if (Match(TokenKind::kEvent)) {
      stmt.data_model = TemporalDataModel::kEvent;
    } else if (Match(TokenKind::kInterval)) {
      stmt.data_model = TemporalDataModel::kInterval;
    }
    TDB_ASSIGN_OR_RETURN(Token rel,
                         Expect(TokenKind::kRelation, "create statement"));
    (void)rel;
    TDB_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("create statement"));
    TDB_ASSIGN_OR_RETURN(Token lp,
                         Expect(TokenKind::kLParen, "create statement"));
    (void)lp;
    while (true) {
      TDB_ASSIGN_OR_RETURN(std::string attr,
                           ExpectIdentifier("attribute definition"));
      TDB_ASSIGN_OR_RETURN(Token eq,
                           Expect(TokenKind::kEq, "attribute definition"));
      (void)eq;
      TDB_ASSIGN_OR_RETURN(std::string type,
                           ExpectIdentifier("attribute definition"));
      stmt.attributes.emplace_back(std::move(attr), std::move(type));
      if (!Match(TokenKind::kComma)) break;
    }
    TDB_ASSIGN_OR_RETURN(Token rp,
                         Expect(TokenKind::kRParen, "create statement"));
    (void)rp;
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDestroy() {
    Advance();
    DestroyStmt stmt;
    TDB_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("destroy statement"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseRange() {
    Advance();  // range
    TDB_ASSIGN_OR_RETURN(Token of, Expect(TokenKind::kOf, "range statement"));
    (void)of;
    RangeStmt stmt;
    TDB_ASSIGN_OR_RETURN(stmt.variable, ExpectIdentifier("range statement"));
    TDB_ASSIGN_OR_RETURN(Token is, Expect(TokenKind::kIs, "range statement"));
    (void)is;
    TDB_ASSIGN_OR_RETURN(stmt.relation, ExpectIdentifier("range statement"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseShow() {
    Advance();
    ShowStmt stmt;
    TDB_ASSIGN_OR_RETURN(stmt.relation, ExpectIdentifier("show statement"));
    return Statement(std::move(stmt));
  }

  // Parses the optional trailing clauses shared by retrieve/DML, in any
  // order, each at most once.
  struct Clauses {
    std::optional<ValidClause> valid;
    AstExprPtr where;
    AstTemporalPredPtr when;
    std::optional<AsOfClause> as_of;
  };

  Result<Clauses> ParseClauses(bool allow_when, bool allow_as_of) {
    Clauses clauses;
    while (true) {
      if (Peek().Is(TokenKind::kValid)) {
        if (clauses.valid.has_value()) {
          return ErrorHere("duplicate valid clause");
        }
        TDB_ASSIGN_OR_RETURN(clauses.valid, ParseValidClause());
        continue;
      }
      if (Peek().Is(TokenKind::kWhere)) {
        if (clauses.where != nullptr) {
          return ErrorHere("duplicate where clause");
        }
        Advance();
        TDB_ASSIGN_OR_RETURN(clauses.where, ParseExpr());
        continue;
      }
      if (allow_when && Peek().Is(TokenKind::kWhen)) {
        if (clauses.when != nullptr) {
          return ErrorHere("duplicate when clause");
        }
        Advance();
        TDB_ASSIGN_OR_RETURN(clauses.when, ParseTemporalPred());
        continue;
      }
      if (allow_as_of && Peek().Is(TokenKind::kAs)) {
        if (clauses.as_of.has_value()) {
          return ErrorHere("duplicate as-of clause");
        }
        Advance();
        TDB_ASSIGN_OR_RETURN(Token of,
                             Expect(TokenKind::kOf, "as-of clause"));
        (void)of;
        AsOfClause as_of;
        TDB_ASSIGN_OR_RETURN(as_of.at, ParseTemporalExpr());
        if (Match(TokenKind::kThrough)) {
          TDB_ASSIGN_OR_RETURN(as_of.through, ParseTemporalExpr());
        }
        clauses.as_of = std::move(as_of);
        continue;
      }
      break;
    }
    return clauses;
  }

  Result<Statement> ParseRetrieve() {
    Advance();  // retrieve
    RetrieveStmt stmt;
    if (Match(TokenKind::kInto)) {
      TDB_ASSIGN_OR_RETURN(std::string name,
                           ExpectIdentifier("retrieve into"));
      stmt.into = std::move(name);
    }
    TDB_ASSIGN_OR_RETURN(Token lp,
                         Expect(TokenKind::kLParen, "retrieve target list"));
    (void)lp;
    while (true) {
      TargetItem item;
      // `name = expr` form?
      if (Peek().Is(TokenKind::kIdentifier) &&
          Peek(1).Is(TokenKind::kEq)) {
        item.name = Peek().text;
        Advance();
        Advance();
        TDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      } else {
        TDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (item.expr->kind == AstExprKind::kColumn) {
          item.name = item.expr->attribute;
        } else if (item.expr->kind == AstExprKind::kAggregate) {
          // Bare aggregates are named after the function: count, sum, ...
          item.name = std::string(AstAggFuncName(item.expr->agg));
        } else {
          return ErrorHere(
              "target expressions must be named: use 'name = expr'");
        }
      }
      stmt.targets.push_back(std::move(item));
      if (!Match(TokenKind::kComma)) break;
    }
    TDB_ASSIGN_OR_RETURN(Token rp,
                         Expect(TokenKind::kRParen, "retrieve target list"));
    (void)rp;
    TDB_ASSIGN_OR_RETURN(
        Clauses clauses,
        ParseClauses(/*allow_when=*/true, /*allow_as_of=*/true));
    stmt.valid = std::move(clauses.valid);
    stmt.where = std::move(clauses.where);
    stmt.when = std::move(clauses.when);
    stmt.as_of = std::move(clauses.as_of);
    return Statement(std::move(stmt));
  }

  Result<std::vector<std::pair<std::string, AstExprPtr>>> ParseAssignments(
      const char* context) {
    TDB_ASSIGN_OR_RETURN(Token lp, Expect(TokenKind::kLParen, context));
    (void)lp;
    std::vector<std::pair<std::string, AstExprPtr>> out;
    while (true) {
      TDB_ASSIGN_OR_RETURN(std::string attr, ExpectIdentifier(context));
      TDB_ASSIGN_OR_RETURN(Token eq, Expect(TokenKind::kEq, context));
      (void)eq;
      TDB_ASSIGN_OR_RETURN(AstExprPtr expr, ParseExpr());
      out.emplace_back(std::move(attr), std::move(expr));
      if (!Match(TokenKind::kComma)) break;
    }
    TDB_ASSIGN_OR_RETURN(Token rp, Expect(TokenKind::kRParen, context));
    (void)rp;
    return out;
  }

  Result<Statement> ParseAppend() {
    Advance();  // append
    TDB_ASSIGN_OR_RETURN(Token to,
                         Expect(TokenKind::kTo, "append statement"));
    (void)to;
    AppendStmt stmt;
    TDB_ASSIGN_OR_RETURN(stmt.relation,
                         ExpectIdentifier("append statement"));
    TDB_ASSIGN_OR_RETURN(stmt.assignments,
                         ParseAssignments("append assignments"));
    TDB_ASSIGN_OR_RETURN(
        Clauses clauses,
        ParseClauses(/*allow_when=*/false, /*allow_as_of=*/false));
    if (clauses.where != nullptr) {
      return ErrorHere("append does not take a where clause");
    }
    stmt.valid = std::move(clauses.valid);
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDelete() {
    Advance();
    DeleteStmt stmt;
    TDB_ASSIGN_OR_RETURN(stmt.variable,
                         ExpectIdentifier("delete statement"));
    TDB_ASSIGN_OR_RETURN(
        Clauses clauses,
        ParseClauses(/*allow_when=*/true, /*allow_as_of=*/false));
    stmt.where = std::move(clauses.where);
    stmt.when = std::move(clauses.when);
    stmt.valid = std::move(clauses.valid);
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseReplace() {
    Advance();
    ReplaceStmt stmt;
    TDB_ASSIGN_OR_RETURN(stmt.variable,
                         ExpectIdentifier("replace statement"));
    TDB_ASSIGN_OR_RETURN(stmt.assignments,
                         ParseAssignments("replace assignments"));
    TDB_ASSIGN_OR_RETURN(
        Clauses clauses,
        ParseClauses(/*allow_when=*/true, /*allow_as_of=*/false));
    stmt.where = std::move(clauses.where);
    stmt.when = std::move(clauses.when);
    stmt.valid = std::move(clauses.valid);
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseCorrect() {
    Advance();
    CorrectStmt stmt;
    TDB_ASSIGN_OR_RETURN(stmt.variable,
                         ExpectIdentifier("correct statement"));
    if (Match(TokenKind::kWhere)) {
      TDB_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return Statement(std::move(stmt));
  }

  Result<ValidClause> ParseValidClause() {
    Advance();  // valid
    ValidClause clause;
    if (Match(TokenKind::kAt)) {
      clause.at = true;
      TDB_ASSIGN_OR_RETURN(clause.from, ParseTemporalExpr());
      return clause;
    }
    TDB_ASSIGN_OR_RETURN(Token from,
                         Expect(TokenKind::kFrom, "valid clause"));
    (void)from;
    TDB_ASSIGN_OR_RETURN(clause.from, ParseTemporalExpr());
    TDB_ASSIGN_OR_RETURN(Token to, Expect(TokenKind::kTo, "valid clause"));
    (void)to;
    TDB_ASSIGN_OR_RETURN(clause.to, ParseTemporalExpr());
    return clause;
  }

  // --- Scalar expressions ---------------------------------------------

  Result<AstExprPtr> ParseExpr() { return ParseOrExpr(); }

  Result<AstExprPtr> ParseOrExpr() {
    TDB_ASSIGN_OR_RETURN(AstExprPtr left, ParseAndExpr());
    while (Match(TokenKind::kOr)) {
      TDB_ASSIGN_OR_RETURN(AstExprPtr right, ParseAndExpr());
      left = MakeBinary(AstBinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<AstExprPtr> ParseAndExpr() {
    TDB_ASSIGN_OR_RETURN(AstExprPtr left, ParseNotExpr());
    while (Match(TokenKind::kAnd)) {
      TDB_ASSIGN_OR_RETURN(AstExprPtr right, ParseNotExpr());
      left = MakeBinary(AstBinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<AstExprPtr> ParseNotExpr() {
    if (Match(TokenKind::kNot)) {
      TDB_ASSIGN_OR_RETURN(AstExprPtr inner, ParseNotExpr());
      auto node = std::make_shared<AstExpr>();
      node->kind = AstExprKind::kNot;
      node->left = std::move(inner);
      return AstExprPtr(std::move(node));
    }
    return ParseCmpExpr();
  }

  Result<AstExprPtr> ParseCmpExpr() {
    TDB_ASSIGN_OR_RETURN(AstExprPtr left, ParseAddExpr());
    AstBinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = AstBinaryOp::kEq;
        break;
      case TokenKind::kNe:
        op = AstBinaryOp::kNe;
        break;
      case TokenKind::kLt:
        op = AstBinaryOp::kLt;
        break;
      case TokenKind::kLe:
        op = AstBinaryOp::kLe;
        break;
      case TokenKind::kGt:
        op = AstBinaryOp::kGt;
        break;
      case TokenKind::kGe:
        op = AstBinaryOp::kGe;
        break;
      default:
        return left;
    }
    Advance();
    TDB_ASSIGN_OR_RETURN(AstExprPtr right, ParseAddExpr());
    return MakeBinary(op, std::move(left), std::move(right));
  }

  Result<AstExprPtr> ParseAddExpr() {
    TDB_ASSIGN_OR_RETURN(AstExprPtr left, ParseMulExpr());
    while (Peek().Is(TokenKind::kPlus) || Peek().Is(TokenKind::kMinus)) {
      AstBinaryOp op = Peek().Is(TokenKind::kPlus) ? AstBinaryOp::kAdd
                                                   : AstBinaryOp::kSub;
      Advance();
      TDB_ASSIGN_OR_RETURN(AstExprPtr right, ParseMulExpr());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<AstExprPtr> ParseMulExpr() {
    TDB_ASSIGN_OR_RETURN(AstExprPtr left, ParsePrimary());
    while (Peek().Is(TokenKind::kStar) || Peek().Is(TokenKind::kSlash) ||
           Peek().Is(TokenKind::kMod)) {
      AstBinaryOp op = Peek().Is(TokenKind::kStar)
                           ? AstBinaryOp::kMul
                           : (Peek().Is(TokenKind::kSlash) ? AstBinaryOp::kDiv
                                                           : AstBinaryOp::kMod);
      Advance();
      TDB_ASSIGN_OR_RETURN(AstExprPtr right, ParsePrimary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<AstExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral: {
        auto node = std::make_shared<AstExpr>();
        node->kind = AstExprKind::kIntLiteral;
        node->literal = t.text;
        Advance();
        return AstExprPtr(std::move(node));
      }
      case TokenKind::kFloatLiteral: {
        auto node = std::make_shared<AstExpr>();
        node->kind = AstExprKind::kFloatLiteral;
        node->literal = t.text;
        Advance();
        return AstExprPtr(std::move(node));
      }
      case TokenKind::kStringLiteral: {
        auto node = std::make_shared<AstExpr>();
        node->kind = AstExprKind::kStringLiteral;
        node->literal = t.text;
        Advance();
        return AstExprPtr(std::move(node));
      }
      case TokenKind::kMinus: {
        Advance();
        TDB_ASSIGN_OR_RETURN(AstExprPtr inner, ParsePrimary());
        auto zero = std::make_shared<AstExpr>();
        zero->kind = AstExprKind::kIntLiteral;
        // std::string{} rvalue-assign: the const char* overload trips GCC
        // 12's -Wrestrict false positive (GCC PR105329) under -Werror.
        zero->literal = std::string("0");
        return MakeBinary(AstBinaryOp::kSub, std::move(zero),
                          std::move(inner));
      }
      case TokenKind::kLParen: {
        Advance();
        TDB_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
        TDB_ASSIGN_OR_RETURN(Token rp,
                             Expect(TokenKind::kRParen, "expression"));
        (void)rp;
        return inner;
      }
      case TokenKind::kIdentifier: {
        // Aggregate call?  count(...), sum(...), avg(...), min(...),
        // max(...), any(...).
        if (Peek(1).Is(TokenKind::kLParen)) {
          std::optional<AstAggFunc> func;
          if (t.text == "count") func = AstAggFunc::kCount;
          if (t.text == "sum") func = AstAggFunc::kSum;
          if (t.text == "avg") func = AstAggFunc::kAvg;
          if (t.text == "min") func = AstAggFunc::kMin;
          if (t.text == "max") func = AstAggFunc::kMax;
          if (t.text == "any") func = AstAggFunc::kAny;
          if (func.has_value()) {
            Advance();  // Function name.
            Advance();  // '('.
            TDB_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
            TDB_ASSIGN_OR_RETURN(Token rp, Expect(TokenKind::kRParen,
                                                  "aggregate call"));
            (void)rp;
            auto node = std::make_shared<AstExpr>();
            node->kind = AstExprKind::kAggregate;
            node->agg = *func;
            node->left = std::move(inner);
            return AstExprPtr(std::move(node));
          }
        }
        auto node = std::make_shared<AstExpr>();
        node->kind = AstExprKind::kColumn;
        std::string first = t.text;
        Advance();
        if (Match(TokenKind::kDot)) {
          TDB_ASSIGN_OR_RETURN(std::string attr,
                               ExpectIdentifier("attribute reference"));
          node->variable = std::move(first);
          node->attribute = std::move(attr);
        } else {
          node->attribute = std::move(first);
        }
        return AstExprPtr(std::move(node));
      }
      default:
        return ErrorHere("expected an expression");
    }
  }

  static AstExprPtr MakeBinary(AstBinaryOp op, AstExprPtr left,
                               AstExprPtr right) {
    auto node = std::make_shared<AstExpr>();
    node->kind = AstExprKind::kBinary;
    node->op = op;
    node->left = std::move(left);
    node->right = std::move(right);
    return node;
  }

  // --- Temporal expressions and predicates ----------------------------

  // In predicate operand position, top-level `overlap` belongs to the
  // predicate, so operands chain only `extend`; parenthesize to use
  // intersection: `(f1 overlap f2) precede f3`.
  Result<AstTemporalExprPtr> ParseTemporalOperand() {
    TDB_ASSIGN_OR_RETURN(AstTemporalExprPtr left, ParseTemporalPrimary());
    while (Match(TokenKind::kExtend)) {
      TDB_ASSIGN_OR_RETURN(AstTemporalExprPtr right, ParseTemporalPrimary());
      auto node = std::make_shared<AstTemporalExpr>();
      node->kind = AstTemporalExprKind::kExtend;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  // Full temporal expression: `overlap` is intersection here (valid and
  // as-of clause position).
  Result<AstTemporalExprPtr> ParseTemporalExpr() {
    TDB_ASSIGN_OR_RETURN(AstTemporalExprPtr left, ParseTemporalOperand());
    while (Match(TokenKind::kOverlap)) {
      TDB_ASSIGN_OR_RETURN(AstTemporalExprPtr right, ParseTemporalOperand());
      auto node = std::make_shared<AstTemporalExpr>();
      node->kind = AstTemporalExprKind::kOverlap;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<AstTemporalExprPtr> ParseTemporalPrimary() {
    const Token& t = Peek();
    // "begin of e" / "end of e", with the paper's "start of" / "stop of"
    // as synonyms.
    bool is_begin = t.Is(TokenKind::kBegin) ||
                    (t.Is(TokenKind::kIdentifier) && t.text == "start");
    bool is_end = t.Is(TokenKind::kEnd) ||
                  (t.Is(TokenKind::kIdentifier) && t.text == "stop");
    if ((is_begin || is_end) && Peek(1).Is(TokenKind::kOf)) {
      Advance();
      Advance();
      TDB_ASSIGN_OR_RETURN(AstTemporalExprPtr inner, ParseTemporalPrimary());
      auto node = std::make_shared<AstTemporalExpr>();
      node->kind = is_begin ? AstTemporalExprKind::kBeginOf
                            : AstTemporalExprKind::kEndOf;
      node->left = std::move(inner);
      return AstTemporalExprPtr(std::move(node));
    }
    if (t.Is(TokenKind::kStringLiteral)) {
      auto node = std::make_shared<AstTemporalExpr>();
      node->kind = AstTemporalExprKind::kDate;
      node->name = t.text;
      Advance();
      return AstTemporalExprPtr(std::move(node));
    }
    if (t.Is(TokenKind::kIdentifier)) {
      auto node = std::make_shared<AstTemporalExpr>();
      node->kind = AstTemporalExprKind::kVar;
      node->name = t.text;
      Advance();
      return AstTemporalExprPtr(std::move(node));
    }
    if (t.Is(TokenKind::kLParen)) {
      Advance();
      TDB_ASSIGN_OR_RETURN(AstTemporalExprPtr inner, ParseTemporalExpr());
      TDB_ASSIGN_OR_RETURN(Token rp, Expect(TokenKind::kRParen,
                                            "temporal expression"));
      (void)rp;
      return inner;
    }
    return ErrorHere("expected a temporal expression");
  }

  Result<AstTemporalPredPtr> ParseTemporalPred() {
    return ParseTemporalOrPred();
  }

  Result<AstTemporalPredPtr> ParseTemporalOrPred() {
    TDB_ASSIGN_OR_RETURN(AstTemporalPredPtr left, ParseTemporalAndPred());
    while (Match(TokenKind::kOr)) {
      TDB_ASSIGN_OR_RETURN(AstTemporalPredPtr right, ParseTemporalAndPred());
      auto node = std::make_shared<AstTemporalPred>();
      node->kind = AstTemporalPredKind::kOr;
      node->left_pred = std::move(left);
      node->right_pred = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<AstTemporalPredPtr> ParseTemporalAndPred() {
    TDB_ASSIGN_OR_RETURN(AstTemporalPredPtr left, ParseTemporalNotPred());
    while (Match(TokenKind::kAnd)) {
      TDB_ASSIGN_OR_RETURN(AstTemporalPredPtr right, ParseTemporalNotPred());
      auto node = std::make_shared<AstTemporalPred>();
      node->kind = AstTemporalPredKind::kAnd;
      node->left_pred = std::move(left);
      node->right_pred = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<AstTemporalPredPtr> ParseTemporalNotPred() {
    if (Match(TokenKind::kNot)) {
      TDB_ASSIGN_OR_RETURN(AstTemporalPredPtr inner, ParseTemporalNotPred());
      auto node = std::make_shared<AstTemporalPred>();
      node->kind = AstTemporalPredKind::kNot;
      node->left_pred = std::move(inner);
      return AstTemporalPredPtr(std::move(node));
    }
    // A parenthesized sub-predicate, unless it is really a parenthesized
    // temporal expression operand — try the predicate reading first and
    // backtrack on failure or on a trailing comparison operator.
    if (Peek().Is(TokenKind::kLParen)) {
      size_t saved = pos_;
      Advance();
      Result<AstTemporalPredPtr> inner = ParseTemporalPred();
      if (inner.ok() && Peek().Is(TokenKind::kRParen)) {
        // Peek past the ')': if a comparison operator follows, the parens
        // enclosed an expression operand instead.
        TokenKind after = Peek(1).kind;
        if (after != TokenKind::kPrecede && after != TokenKind::kOverlap &&
            after != TokenKind::kEqual && after != TokenKind::kExtend) {
          Advance();  // ')'
          return std::move(inner).value();
        }
      }
      pos_ = saved;  // Reparse as a comparison whose operand is
                     // parenthesized.
    }
    return ParseTemporalComparison();
  }

  Result<AstTemporalPredPtr> ParseTemporalComparison() {
    TDB_ASSIGN_OR_RETURN(AstTemporalExprPtr left, ParseTemporalOperand());
    AstTemporalPredKind kind;
    if (Match(TokenKind::kPrecede)) {
      kind = AstTemporalPredKind::kPrecede;
    } else if (Match(TokenKind::kOverlap)) {
      kind = AstTemporalPredKind::kOverlap;
    } else if (Match(TokenKind::kEqual)) {
      kind = AstTemporalPredKind::kEqual;
    } else {
      return ErrorHere("expected 'precede', 'overlap' or 'equal'");
    }
    TDB_ASSIGN_OR_RETURN(AstTemporalExprPtr right, ParseTemporalOperand());
    auto node = std::make_shared<AstTemporalPred>();
    node->kind = kind;
    node->left_expr = std::move(left);
    node->right_expr = std::move(right);
    return AstTemporalPredPtr(std::move(node));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<Statement>> Parse(std::string_view source) {
  TDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

Result<Statement> ParseOne(std::string_view source) {
  TDB_ASSIGN_OR_RETURN(std::vector<Statement> stmts, Parse(source));
  if (stmts.size() != 1) {
    return Status::ParseError(StringPrintf(
        "expected exactly one statement, found %zu", stmts.size()));
  }
  return std::move(stmts[0]);
}

}  // namespace tquel
}  // namespace temporadb
