#ifndef TEMPORADB_TQUEL_EVALUATOR_H_
#define TEMPORADB_TQUEL_EVALUATOR_H_

#include <functional>
#include <map>
#include <string>

#include "common/result.h"
#include "rel/relation.h"
#include "temporal/read_snapshot.h"
#include "temporal/stored_relation.h"
#include "tquel/analyzer.h"
#include "tquel/ast.h"
#include "txn/txn_manager.h"

namespace temporadb {
namespace tquel {

/// Execution environment supplied by the database facade.
struct EvalContext {
  /// Resolves a relation name to its stored relation.
  std::function<Result<StoredRelation*>(std::string_view)> get_relation;
  /// DDL hooks (the facade owns catalog and relation map).
  std::function<Status(const CreateStmt&)> create_relation;
  std::function<Status(std::string_view)> drop_relation;
  /// The session's range-variable table (mutated by `range of`).
  std::map<std::string, std::string>* ranges = nullptr;
  /// Named results of `retrieve into`.
  std::map<std::string, Rowset>* derived = nullptr;
  /// Chronon for "now" defaults and DML timestamps.
  TxnManager* txn_manager = nullptr;
  /// The active transaction for DML statements (the facade auto-wraps when
  /// running in auto-commit mode).
  Transaction* txn = nullptr;
  /// When set, retrieves run snapshot-isolated against this pin: every
  /// participant scan carries the pin (see `ScanSpec::snapshot`), index
  /// probe paths are disabled (the mutable index structures are not safe
  /// off the writer thread), and results reflect exactly the commits
  /// published at pin time.  Only retrieve statements may run this way
  /// (`Database::QueryAtSnapshot` enforces that).
  const ReadSnapshot* snapshot = nullptr;
};

/// What a statement produced.
struct ExecResult {
  enum class Kind {
    kNone,     ///< DDL / range: nothing to show.
    kRows,     ///< retrieve (and show): a rowset.
    kCount,    ///< DML: tuples affected.
  };
  Kind kind = Kind::kNone;
  Rowset rows;
  size_t count = 0;
  std::string message;  ///< Human-readable summary.
};

/// Executes one parsed statement.  DML requires `ctx.txn` to be active;
/// queries and DDL do not touch it.
Result<ExecResult> Execute(const Statement& stmt, EvalContext& ctx);

/// Evaluates an analyzed retrieve (exposed for tests and benches that want
/// to reuse a bound query).
Result<Rowset> EvaluateRetrieve(const BoundRetrieve& bound,
                                const EvalContext& ctx);

}  // namespace tquel
}  // namespace temporadb

#endif  // TEMPORADB_TQUEL_EVALUATOR_H_
