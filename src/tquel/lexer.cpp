#include "tquel/lexer.h"

#include <cctype>
#include <unordered_map>

#include "common/strings.h"

namespace temporadb {
namespace tquel {

namespace {

const std::unordered_map<std::string, TokenKind>& KeywordTable() {
  static const auto* table = new std::unordered_map<std::string, TokenKind>{
      {"create", TokenKind::kCreate},
      {"destroy", TokenKind::kDestroy},
      {"static", TokenKind::kStatic},
      {"rollback", TokenKind::kRollback},
      {"historical", TokenKind::kHistorical},
      {"temporal", TokenKind::kTemporal},
      {"event", TokenKind::kEvent},
      {"interval", TokenKind::kInterval},
      {"relation", TokenKind::kRelation},
      {"persistent", TokenKind::kPersistent},
      {"range", TokenKind::kRange},
      {"of", TokenKind::kOf},
      {"is", TokenKind::kIs},
      {"retrieve", TokenKind::kRetrieve},
      {"into", TokenKind::kInto},
      {"where", TokenKind::kWhere},
      {"when", TokenKind::kWhen},
      {"valid", TokenKind::kValid},
      {"from", TokenKind::kFrom},
      {"to", TokenKind::kTo},
      {"at", TokenKind::kAt},
      {"as", TokenKind::kAs},
      {"through", TokenKind::kThrough},
      {"append", TokenKind::kAppend},
      {"delete", TokenKind::kDelete},
      {"replace", TokenKind::kReplace},
      {"correct", TokenKind::kCorrect},
      {"commit", TokenKind::kCommit},
      {"abort", TokenKind::kAbort},
      {"transaction", TokenKind::kTransaction},
      {"begin", TokenKind::kBegin},
      {"end", TokenKind::kEnd},
      {"overlap", TokenKind::kOverlap},
      {"extend", TokenKind::kExtend},
      {"precede", TokenKind::kPrecede},
      {"equal", TokenKind::kEqual},
      {"and", TokenKind::kAnd},
      {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},
      {"mod", TokenKind::kMod},
      {"show", TokenKind::kShow},
  };
  return *table;
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1, column = 1;

  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (i < source.size() && source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };
  auto push = [&](TokenKind kind, std::string text, int l, int c) {
    tokens.push_back(Token{kind, std::move(text), l, c});
  };

  while (i < source.size()) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comments: "--" or "#" to end of line.
    if (c == '#' || (c == '-' && i + 1 < source.size() && source[i + 1] == '-')) {
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }
    int tl = line, tc = column;
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i]))) {
        advance(1);
      }
      bool is_float = false;
      if (i + 1 < source.size() && source[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
        is_float = true;
        advance(1);
        while (i < source.size() &&
               std::isdigit(static_cast<unsigned char>(source[i]))) {
          advance(1);
        }
      }
      push(is_float ? TokenKind::kFloatLiteral : TokenKind::kIntLiteral,
           std::string(source.substr(start, i - start)), tl, tc);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) ||
              source[i] == '_')) {
        advance(1);
      }
      std::string word =
          ToLowerAscii(source.substr(start, i - start));
      auto it = KeywordTable().find(word);
      if (it != KeywordTable().end()) {
        push(it->second, std::move(word), tl, tc);
      } else {
        push(TokenKind::kIdentifier, std::move(word), tl, tc);
      }
      continue;
    }
    if (c == '"') {
      advance(1);
      std::string body;
      bool closed = false;
      while (i < source.size()) {
        char d = source[i];
        if (d == '\\' && i + 1 < source.size()) {
          body.push_back(source[i + 1]);
          advance(2);
          continue;
        }
        if (d == '"') {
          advance(1);
          closed = true;
          break;
        }
        body.push_back(d);
        advance(1);
      }
      if (!closed) {
        return Status::ParseError(
            StringPrintf("unterminated string literal at line %d", tl));
      }
      push(TokenKind::kStringLiteral, std::move(body), tl, tc);
      continue;
    }
    // Operators and punctuation.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < source.size() && source[i + 1] == b;
    };
    if (two('!', '=')) {
      push(TokenKind::kNe, "!=", tl, tc);
      advance(2);
      continue;
    }
    if (two('<', '=')) {
      push(TokenKind::kLe, "<=", tl, tc);
      advance(2);
      continue;
    }
    if (two('>', '=')) {
      push(TokenKind::kGe, ">=", tl, tc);
      advance(2);
      continue;
    }
    if (two('<', '>')) {
      push(TokenKind::kNe, "<>", tl, tc);
      advance(2);
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '(':
        kind = TokenKind::kLParen;
        break;
      case ')':
        kind = TokenKind::kRParen;
        break;
      case ',':
        kind = TokenKind::kComma;
        break;
      case '.':
        kind = TokenKind::kDot;
        break;
      case ';':
        kind = TokenKind::kSemicolon;
        break;
      case '=':
        kind = TokenKind::kEq;
        break;
      case '<':
        kind = TokenKind::kLt;
        break;
      case '>':
        kind = TokenKind::kGt;
        break;
      case '+':
        kind = TokenKind::kPlus;
        break;
      case '-':
        kind = TokenKind::kMinus;
        break;
      case '*':
        kind = TokenKind::kStar;
        break;
      case '/':
        kind = TokenKind::kSlash;
        break;
      default:
        return Status::ParseError(StringPrintf(
            "unexpected character '%c' at line %d, column %d", c, tl, tc));
    }
    push(kind, std::string(1, c), tl, tc);
    advance(1);
  }
  tokens.push_back(Token{TokenKind::kEof, "", line, column});
  return tokens;
}

}  // namespace tquel
}  // namespace temporadb
