#ifndef TEMPORADB_TQUEL_PRINTER_H_
#define TEMPORADB_TQUEL_PRINTER_H_

#include <string>

#include "tquel/evaluator.h"

namespace temporadb {
namespace tquel {

/// Renders an execution result for terminal display: rowsets in the paper's
/// table style (with a class banner like "-- historical relation, 4
/// tuples"), counts/messages as one-liners.
std::string FormatResult(const ExecResult& result);

}  // namespace tquel
}  // namespace temporadb

#endif  // TEMPORADB_TQUEL_PRINTER_H_
