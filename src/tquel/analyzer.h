#ifndef TEMPORADB_TQUEL_ANALYZER_H_
#define TEMPORADB_TQUEL_ANALYZER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/aggregate.h"
#include "rel/expression.h"
#include "rel/temporal_ops.h"
#include "temporal/stored_relation.h"
#include "tquel/ast.h"

namespace temporadb {
namespace tquel {

/// One range variable participating in a statement.
struct Participant {
  std::string name;            ///< Range-variable name.
  StoredRelation* relation;    ///< The relation it ranges over.
  size_t value_offset;         ///< Offset of its attributes in the flattened
                               ///< evaluation row.
};

/// Resolution context handed in by the database facade.
struct AnalyzerContext {
  /// Resolves a relation name to its stored relation.
  std::function<Result<StoredRelation*>(std::string_view)> get_relation;
  /// The session's range-variable table (var -> relation name).
  const std::map<std::string, std::string>* ranges = nullptr;
};

/// A fully analyzed retrieve statement, ready for evaluation.
///
/// Analysis is where the taxonomy (Figure 10) is *enforced*:
///  - a `when` or `valid` clause requires every participating relation to
///    maintain valid time (historical/temporal), else `NotSupported`;
///  - an `as of` clause requires transaction time (rollback/temporal);
///  - the result's temporal class is the meet of the participants' derived
///    classes (`DerivedClass`): querying a rollback relation yields a static
///    result, a temporal relation a temporal one, etc.
struct BoundRetrieve {
  std::vector<Participant> participants;
  size_t total_arity = 0;

  std::vector<ExprPtr> target_exprs;
  std::vector<std::string> target_names;
  std::vector<ValueType> target_types;
  std::vector<size_t> target_vars;  ///< Participant ordinals used in targets.

  /// Aggregation (Quel's count/sum/avg/min/max/any in the target list).
  /// When present, non-aggregate targets become grouping keys, aggregation
  /// collapses time, and the result is a static rowset.  `target_exprs[i]`
  /// holds the aggregate's *input* expression for aggregate targets.
  bool has_aggregates = false;
  struct AggTarget {
    bool is_aggregate = false;
    AggFunc func = AggFunc::kCount;
  };
  std::vector<AggTarget> target_aggs;  ///< Parallel to targets.

  ExprPtr where;                    ///< Null when absent.
  TemporalPredPtr when;             ///< Null when absent.

  bool valid_at = false;            ///< `valid at` (event) form.
  TemporalExprPtr valid_from;       ///< Null => default valid period.
  TemporalExprPtr valid_to;

  TemporalExprPtr asof_at;          ///< Null => no rollback.
  TemporalExprPtr asof_through;

  /// Conjunctive equality constraints extracted from the where clause, per
  /// participant ordinal: (attribute index, constant).  The evaluator
  /// probes secondary attribute indexes with these instead of scanning.
  /// The full where clause is still evaluated afterwards, so they are a
  /// pure access-path optimization.
  std::vector<std::vector<std::pair<size_t, Value>>> eq_constraints;

  TemporalClass result_class = TemporalClass::kStatic;
  TemporalDataModel result_model = TemporalDataModel::kInterval;
  std::optional<std::string> into;
};

/// Analyzes a retrieve statement against the session's ranges and catalog.
Result<BoundRetrieve> AnalyzeRetrieve(const RetrieveStmt& stmt,
                                      const AnalyzerContext& ctx);

/// Compiles a scalar AST expression against a participant list; `allow_columns`
/// false rejects any attribute reference (append-statement constants).
Result<ExprPtr> CompileScalarExpr(const AstExprPtr& ast,
                                  const std::vector<Participant>& participants,
                                  bool allow_columns = true);

/// Infers the static type of a compiled expression's AST.
Result<ValueType> InferType(const AstExprPtr& ast,
                            const std::vector<Participant>& participants);

/// Compiles a temporal expression; range-variable references resolve to the
/// participant's ordinal.  With `allow_vars` false (as-of clauses, DML valid
/// clauses) any variable reference is an error.
Result<TemporalExprPtr> CompileTemporalExpr(
    const AstTemporalExprPtr& ast,
    const std::vector<Participant>& participants, bool allow_vars = true);

/// Compiles a temporal predicate (when clause).
Result<TemporalPredPtr> CompileTemporalPred(
    const AstTemporalPredPtr& ast,
    const std::vector<Participant>& participants);

/// Evaluates a var-free temporal expression to a period.
Result<Period> EvalConstPeriod(const AstTemporalExprPtr& ast);

/// Resolves a DML valid clause to a concrete period (nullopt when absent).
Result<std::optional<Period>> ResolveDmlValidClause(
    const std::optional<ValidClause>& clause);

}  // namespace tquel
}  // namespace temporadb

#endif  // TEMPORADB_TQUEL_ANALYZER_H_
