#include "tquel/token.h"

namespace temporadb {
namespace tquel {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kIntLiteral:
      return "integer literal";
    case TokenKind::kFloatLiteral:
      return "float literal";
    case TokenKind::kStringLiteral:
      return "string literal";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kCreate:
      return "'create'";
    case TokenKind::kDestroy:
      return "'destroy'";
    case TokenKind::kStatic:
      return "'static'";
    case TokenKind::kRollback:
      return "'rollback'";
    case TokenKind::kHistorical:
      return "'historical'";
    case TokenKind::kTemporal:
      return "'temporal'";
    case TokenKind::kEvent:
      return "'event'";
    case TokenKind::kInterval:
      return "'interval'";
    case TokenKind::kRelation:
      return "'relation'";
    case TokenKind::kPersistent:
      return "'persistent'";
    case TokenKind::kRange:
      return "'range'";
    case TokenKind::kOf:
      return "'of'";
    case TokenKind::kIs:
      return "'is'";
    case TokenKind::kRetrieve:
      return "'retrieve'";
    case TokenKind::kInto:
      return "'into'";
    case TokenKind::kWhere:
      return "'where'";
    case TokenKind::kWhen:
      return "'when'";
    case TokenKind::kValid:
      return "'valid'";
    case TokenKind::kFrom:
      return "'from'";
    case TokenKind::kTo:
      return "'to'";
    case TokenKind::kAt:
      return "'at'";
    case TokenKind::kAs:
      return "'as'";
    case TokenKind::kThrough:
      return "'through'";
    case TokenKind::kAppend:
      return "'append'";
    case TokenKind::kDelete:
      return "'delete'";
    case TokenKind::kReplace:
      return "'replace'";
    case TokenKind::kCorrect:
      return "'correct'";
    case TokenKind::kCommit:
      return "'commit'";
    case TokenKind::kAbort:
      return "'abort'";
    case TokenKind::kTransaction:
      return "'transaction'";
    case TokenKind::kBegin:
      return "'begin'";
    case TokenKind::kEnd:
      return "'end'";
    case TokenKind::kOverlap:
      return "'overlap'";
    case TokenKind::kExtend:
      return "'extend'";
    case TokenKind::kPrecede:
      return "'precede'";
    case TokenKind::kEqual:
      return "'equal'";
    case TokenKind::kAnd:
      return "'and'";
    case TokenKind::kOr:
      return "'or'";
    case TokenKind::kNot:
      return "'not'";
    case TokenKind::kMod:
      return "'mod'";
    case TokenKind::kShow:
      return "'show'";
  }
  return "unknown token";
}

}  // namespace tquel
}  // namespace temporadb
