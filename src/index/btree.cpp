#include "index/btree.h"

#include <algorithm>
#include <cassert>

namespace temporadb {

namespace {

// First position whose key is >= `key`.
size_t LowerBound(const std::vector<Value>& keys, const Value& key) {
  return static_cast<size_t>(
      std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
}

}  // namespace

void BTreeIndex::SplitChild(Node* parent, size_t idx) {
  Node* child = parent->children[idx].get();
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;
  size_t mid = child->keys.size() / 2;

  if (child->leaf) {
    // Leaf split: right gets keys[mid..]; the separator is right's first key
    // (B+-tree: separators are copies, data stays in leaves).
    right->keys.assign(child->keys.begin() + mid, child->keys.end());
    right->postings.assign(child->postings.begin() + mid,
                           child->postings.end());
    child->keys.resize(mid);
    child->postings.resize(mid);
    right->next = child->next;
    child->next = right.get();
    parent->keys.insert(parent->keys.begin() + idx, right->keys.front());
    parent->children.insert(parent->children.begin() + idx + 1,
                            std::move(right));
  } else {
    // Internal split: the middle key moves up.
    Value up = child->keys[mid];
    right->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
    for (size_t i = mid + 1; i < child->children.size(); ++i) {
      right->children.push_back(std::move(child->children[i]));
    }
    child->keys.resize(mid);
    child->children.resize(mid + 1);
    parent->keys.insert(parent->keys.begin() + idx, std::move(up));
    parent->children.insert(parent->children.begin() + idx + 1,
                            std::move(right));
  }
}

void BTreeIndex::InsertNonFull(Node* node, const Value& key, RowId row) {
  while (true) {
    if (node->leaf) {
      size_t pos = LowerBound(node->keys, key);
      if (pos < node->keys.size() && node->keys[pos] == key) {
        node->postings[pos].push_back(row);
      } else {
        node->keys.insert(node->keys.begin() + pos, key);
        node->postings.insert(node->postings.begin() + pos, {row});
      }
      return;
    }
    size_t pos = LowerBound(node->keys, key);
    // Descend right of equal separators so equal keys cluster in one leaf
    // run reachable by the leaf chain.
    if (pos < node->keys.size() && node->keys[pos] == key) ++pos;
    Node* child = node->children[pos].get();
    if (child->keys.size() >= kOrder) {
      SplitChild(node, pos);
      if (key < node->keys[pos]) {
        child = node->children[pos].get();
      } else {
        child = node->children[pos + 1].get();
      }
    }
    node = child;
  }
}

void BTreeIndex::Insert(const Value& key, RowId row) {
  if (!root_) {
    root_ = std::make_unique<Node>();
  }
  if (root_->keys.size() >= kOrder) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    SplitChild(new_root.get(), 0);
    root_ = std::move(new_root);
  }
  InsertNonFull(root_.get(), key, row);
  ++size_;
}

const BTreeIndex::Node* BTreeIndex::FindLeaf(const Value& key) const {
  const Node* node = root_.get();
  if (node == nullptr) return nullptr;
  while (!node->leaf) {
    size_t pos = LowerBound(node->keys, key);
    if (pos < node->keys.size() && node->keys[pos] == key) ++pos;
    node = node->children[pos].get();
  }
  return node;
}

Status BTreeIndex::Remove(const Value& key, RowId row) {
  // Lazy deletion: postings shrink, empty keys are erased from their leaf,
  // but nodes are not rebalanced.  Index rebuilds happen at checkpoint.
  Node* node = const_cast<Node*>(FindLeaf(key));
  if (node == nullptr) return Status::NotFound("empty index");
  size_t pos = LowerBound(node->keys, key);
  if (pos >= node->keys.size() || !(node->keys[pos] == key)) {
    return Status::NotFound("key not in index");
  }
  auto& rows = node->postings[pos];
  auto it = std::find(rows.begin(), rows.end(), row);
  if (it == rows.end()) return Status::NotFound("row not in postings");
  rows.erase(it);
  if (rows.empty()) {
    node->keys.erase(node->keys.begin() + pos);
    node->postings.erase(node->postings.begin() + pos);
  }
  --size_;
  return Status::OK();
}

std::vector<BTreeIndex::RowId> BTreeIndex::Lookup(const Value& key) const {
  const Node* leaf = FindLeaf(key);
  if (leaf == nullptr) return {};
  size_t pos = LowerBound(leaf->keys, key);
  if (pos < leaf->keys.size() && leaf->keys[pos] == key) {
    return leaf->postings[pos];
  }
  return {};
}

void BTreeIndex::Range(
    const Value* lo, const Value* hi,
    const std::function<void(const Value&, RowId)>& fn) const {
  const Node* leaf;
  if (lo != nullptr) {
    leaf = FindLeaf(*lo);
  } else {
    const Node* node = root_.get();
    if (node == nullptr) return;
    while (!node->leaf) node = node->children.front().get();
    leaf = node;
  }
  while (leaf != nullptr) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      const Value& k = leaf->keys[i];
      if (lo != nullptr && k < *lo) continue;
      if (hi != nullptr && *hi < k) return;
      for (RowId row : leaf->postings[i]) fn(k, row);
    }
    leaf = leaf->next;
  }
}

int BTreeIndex::height() const {
  int h = 0;
  const Node* node = root_.get();
  while (node != nullptr) {
    ++h;
    node = node->leaf ? nullptr : node->children.front().get();
  }
  return h;
}

Status BTreeIndex::CheckInvariants() const {
  if (!root_) return Status::OK();
  // Recursively check sortedness and child/key arity.
  std::function<Status(const Node*, const Value*, const Value*)> check =
      [&](const Node* node, const Value* lo, const Value* hi) -> Status {
    for (size_t i = 0; i + 1 < node->keys.size(); ++i) {
      if (node->keys[i + 1] < node->keys[i]) {
        return Status::Internal("keys out of order");
      }
    }
    for (const Value& k : node->keys) {
      if (lo != nullptr && k < *lo) return Status::Internal("key below bound");
      if (hi != nullptr && *hi < k) return Status::Internal("key above bound");
    }
    if (!node->leaf) {
      if (node->children.size() != node->keys.size() + 1) {
        return Status::Internal("internal node arity mismatch");
      }
      if (node->leaf && !node->postings.empty()) {
        return Status::Internal("internal node has postings");
      }
      for (size_t i = 0; i < node->children.size(); ++i) {
        const Value* clo = i == 0 ? lo : &node->keys[i - 1];
        const Value* chi = i == node->keys.size() ? hi : &node->keys[i];
        TDB_RETURN_IF_ERROR(check(node->children[i].get(), clo, chi));
      }
    } else {
      if (node->postings.size() != node->keys.size()) {
        return Status::Internal("leaf postings arity mismatch");
      }
    }
    return Status::OK();
  };
  TDB_RETURN_IF_ERROR(check(root_.get(), nullptr, nullptr));
  // Leaf chain must be globally sorted.
  const Node* node = root_.get();
  while (!node->leaf) node = node->children.front().get();
  const Value* prev = nullptr;
  size_t counted = 0;
  while (node != nullptr) {
    for (size_t i = 0; i < node->keys.size(); ++i) {
      if (prev != nullptr && node->keys[i] < *prev) {
        return Status::Internal("leaf chain out of order");
      }
      prev = &node->keys[i];
      counted += node->postings[i].size();
    }
    node = node->next;
  }
  if (counted != size_) {
    return Status::Internal("size counter does not match postings");
  }
  return Status::OK();
}

}  // namespace temporadb
