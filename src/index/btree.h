#ifndef TEMPORADB_INDEX_BTREE_H_
#define TEMPORADB_INDEX_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace temporadb {

/// An in-memory B+-tree mapping attribute `Value`s to row-id postings.
///
/// Keys are ordered by `Value`'s total order; duplicates are supported (a
/// key holds a postings vector).  Used for equality/range predicates on
/// explicit attributes; the temporal dimensions use `IntervalIndex`.
class BTreeIndex {
 public:
  using RowId = uint64_t;

  BTreeIndex() = default;
  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  /// Adds `row` under `key` (duplicates allowed).
  void Insert(const Value& key, RowId row);

  /// Removes one posting of `row` under `key`; NotFound if absent.
  Status Remove(const Value& key, RowId row);

  /// All rows with exactly this key.
  std::vector<RowId> Lookup(const Value& key) const;

  /// Calls `fn(key, row)` for each posting with `lo <= key <= hi` in key
  /// order.  Either bound may be omitted (open range).
  void Range(const Value* lo, const Value* hi,
             const std::function<void(const Value&, RowId)>& fn) const;

  size_t size() const { return size_; }

  /// Removes every entry (used when rebuilding after compaction).
  void Clear() {
    root_.reset();
    size_ = 0;
  }

  /// Tree height (1 = just a leaf); exposed for tests.
  int height() const;

  /// Validates B+-tree invariants (sortedness, fill, linkage); for tests.
  Status CheckInvariants() const;

 private:
  static constexpr int kOrder = 64;  // Max keys per node.

  struct Node {
    bool leaf = true;
    std::vector<Value> keys;
    // Internal: children.size() == keys.size() + 1.
    std::vector<std::unique_ptr<Node>> children;
    // Leaf: postings[i] are the rows for keys[i].
    std::vector<std::vector<RowId>> postings;
    Node* next = nullptr;  // Leaf chain for range scans.
  };

  // Splits child `idx` of `parent`, which must be full.
  void SplitChild(Node* parent, size_t idx);
  void InsertNonFull(Node* node, const Value& key, RowId row);
  const Node* FindLeaf(const Value& key) const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace temporadb

#endif  // TEMPORADB_INDEX_BTREE_H_
