#ifndef TEMPORADB_INDEX_INTERVAL_INDEX_H_
#define TEMPORADB_INDEX_INTERVAL_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/period.h"
#include "common/result.h"

namespace temporadb {

/// A dynamic interval index over `Period`s, as a randomized treap ordered by
/// (begin, row) and augmented with the subtree's maximum `end`.
///
/// Supports the two temporal access paths of the engine:
///  - *stabbing*  — all periods containing a chronon (valid timeslice,
///    transaction-time rollback to an instant);
///  - *overlap*   — all periods intersecting a query period (the TQuel
///    `when ... overlap` join and `as of ... through ...` ranges).
///
/// Both run in O(log n + k) expected time; the max-end augmentation prunes
/// subtrees that end before the query begins.
class IntervalIndex {
 public:
  using RowId = uint64_t;

  IntervalIndex() = default;
  IntervalIndex(const IntervalIndex&) = delete;
  IntervalIndex& operator=(const IntervalIndex&) = delete;

  /// Adds `row` with period `p` (empty periods are rejected).
  Status Insert(Period p, RowId row);

  /// Removes the entry (p, row); NotFound if absent.
  Status Remove(Period p, RowId row);

  /// Calls `fn(p, row)` for every period containing `t`.
  void Stab(Chronon t, const std::function<void(Period, RowId)>& fn) const;

  /// Calls `fn(p, row)` for every period overlapping `q`.
  void Overlapping(Period q,
                   const std::function<void(Period, RowId)>& fn) const;

  /// All rows stabbing `t`, collected (convenience).
  std::vector<RowId> StabRows(Chronon t) const;

  size_t size() const { return size_; }

  /// Removes every entry (used when rebuilding after compaction).
  void Clear() {
    root_.reset();
    size_ = 0;
  }

  /// Validates heap order, BST order, and max-end augmentation; for tests.
  Status CheckInvariants() const;

 private:
  struct Node {
    Period period;
    RowId row;
    uint64_t priority;
    Chronon max_end;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };

  // Key order: (begin, row) lexicographic.
  static bool KeyLess(const Node& a, Period p, RowId row);

  static void Pull(Node* n);
  static std::unique_ptr<Node> Merge(std::unique_ptr<Node> a,
                                     std::unique_ptr<Node> b);
  // Splits into (< key) and (>= key).
  static void SplitNode(std::unique_ptr<Node> n, Period p, RowId row,
                        std::unique_ptr<Node>* lo, std::unique_ptr<Node>* hi);
  static void Visit(const Node* n, Period q,
                    const std::function<void(Period, RowId)>& fn);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  uint64_t rng_state_ = 0x853C49E6748FEA9BULL;
};

}  // namespace temporadb

#endif  // TEMPORADB_INDEX_INTERVAL_INDEX_H_
