#ifndef TEMPORADB_INDEX_SNAPSHOT_INDEX_H_
#define TEMPORADB_INDEX_SNAPSHOT_INDEX_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/period.h"
#include "common/result.h"
#include "index/interval_index.h"

namespace temporadb {

/// The transaction-time access path for rollback and temporal relations.
///
/// A version's transaction-time period is special: it starts closed-ended
/// into the *current state* (`end == ∞`) and is closed exactly once, when a
/// later transaction supersedes or deletes it (append-only discipline, §4.2).
/// `SnapshotIndex` exploits that shape: the open (current) versions sit in a
/// hash-ish map keyed by row, closed versions in an `IntervalIndex`.  The
/// common query — rollback to `now` — touches only the current set; rollback
/// to a past instant is a stab of the closed set plus a filter of the
/// current set.
class SnapshotIndex {
 public:
  using RowId = uint64_t;

  SnapshotIndex() = default;
  SnapshotIndex(const SnapshotIndex&) = delete;
  SnapshotIndex& operator=(const SnapshotIndex&) = delete;

  /// Registers a version entering the current state at `tt_start`.
  Status AddCurrent(RowId row, Chronon tt_start);

  /// Registers a version whose transaction period is already closed
  /// (checkpoint load path).  Empty periods are ignored.
  Status AddClosed(RowId row, Period txn_period);

  /// Closes a current version at `tt_end` (the version stops being part of
  /// the stored state).  FailedPrecondition if the row is not current, or if
  /// `tt_end` precedes its start.
  Status CloseCurrent(RowId row, Chronon tt_end);

  /// Undo path: moves a previously closed version back into the current
  /// set.  `closed_end` is the end the version was closed with (equal to
  /// `tt_start` when the close produced a zero-length, unindexed period).
  Status ReopenAsCurrent(RowId row, Chronon tt_start, Chronon closed_end);

  /// Calls `fn(row)` for every version in the stored state as of `t`.
  void AsOf(Chronon t, const std::function<void(RowId)>& fn) const;

  /// Calls `fn(row)` for every version whose transaction period overlaps
  /// `q` (the `as of ... through ...` access path): a range query of the
  /// closed set plus the current versions that started before `q` ends.
  void Overlapping(Period q, const std::function<void(RowId)>& fn) const;

  /// Calls `fn(row)` for every current (open-ended) version.
  void Current(const std::function<void(RowId)>& fn) const;

  /// True when the row is in the current state.
  bool IsCurrent(RowId row) const { return current_.contains(row); }

  /// Transaction-start chronon of a current row; NotFound otherwise.
  Result<Chronon> CurrentStart(RowId row) const;

  size_t current_count() const { return current_.size(); }
  size_t closed_count() const { return closed_.size(); }

  /// Removes every entry (used when rebuilding after compaction).
  void Clear() {
    current_.clear();
    closed_.Clear();
  }

 private:
  std::map<RowId, Chronon> current_;
  IntervalIndex closed_;
};

}  // namespace temporadb

#endif  // TEMPORADB_INDEX_SNAPSHOT_INDEX_H_
