#include "index/snapshot_index.h"

namespace temporadb {

Status SnapshotIndex::AddCurrent(RowId row, Chronon tt_start) {
  auto [it, inserted] = current_.emplace(row, tt_start);
  if (!inserted) {
    return Status::AlreadyExists("row already current in snapshot index");
  }
  return Status::OK();
}

Status SnapshotIndex::AddClosed(RowId row, Period txn_period) {
  if (txn_period.IsEmpty()) return Status::OK();
  return closed_.Insert(txn_period, row);
}

Status SnapshotIndex::CloseCurrent(RowId row, Chronon tt_end) {
  auto it = current_.find(row);
  if (it == current_.end()) {
    return Status::FailedPrecondition("row is not in the current state");
  }
  Chronon start = it->second;
  if (tt_end < start) {
    return Status::InvalidArgument(
        "transaction-time end precedes its start (clock went backwards?)");
  }
  current_.erase(it);
  if (tt_end == start) {
    // The version never covered a full chronon of stored state; it is
    // invisible to every rollback and need not be indexed.
    return Status::OK();
  }
  return closed_.Insert(Period(start, tt_end), row);
}

Status SnapshotIndex::ReopenAsCurrent(RowId row, Chronon tt_start,
                                      Chronon closed_end) {
  if (closed_end > tt_start) {
    TDB_RETURN_IF_ERROR(closed_.Remove(Period(tt_start, closed_end), row));
  }
  return AddCurrent(row, tt_start);
}

void SnapshotIndex::AsOf(Chronon t, const std::function<void(RowId)>& fn) const {
  closed_.Stab(t, [&](Period, RowId row) { fn(row); });
  for (const auto& [row, start] : current_) {
    if (start <= t) fn(row);
  }
}

void SnapshotIndex::Overlapping(Period q,
                                const std::function<void(RowId)>& fn) const {
  if (q.IsEmpty()) return;
  closed_.Overlapping(q, [&](Period, RowId row) { fn(row); });
  for (const auto& [row, start] : current_) {
    // A current version covers [start, ∞), which overlaps q iff q extends
    // past its start.
    if (start < q.end()) fn(row);
  }
}

void SnapshotIndex::Current(const std::function<void(RowId)>& fn) const {
  for (const auto& [row, start] : current_) fn(row);
}

Result<Chronon> SnapshotIndex::CurrentStart(RowId row) const {
  auto it = current_.find(row);
  if (it == current_.end()) {
    return Status::NotFound("row is not current");
  }
  return it->second;
}

}  // namespace temporadb
