#include "index/interval_index.h"

#include <cassert>

namespace temporadb {

bool IntervalIndex::KeyLess(const Node& a, Period p, RowId row) {
  if (a.period.begin() != p.begin()) return a.period.begin() < p.begin();
  return a.row < row;
}

void IntervalIndex::Pull(Node* n) {
  n->max_end = n->period.end();
  if (n->left && n->left->max_end > n->max_end) n->max_end = n->left->max_end;
  if (n->right && n->right->max_end > n->max_end)
    n->max_end = n->right->max_end;
}

std::unique_ptr<IntervalIndex::Node> IntervalIndex::Merge(
    std::unique_ptr<Node> a, std::unique_ptr<Node> b) {
  // Precondition: every key in `a` < every key in `b`.
  if (!a) return b;
  if (!b) return a;
  if (a->priority >= b->priority) {
    a->right = Merge(std::move(a->right), std::move(b));
    Pull(a.get());
    return a;
  }
  b->left = Merge(std::move(a), std::move(b->left));
  Pull(b.get());
  return b;
}

void IntervalIndex::SplitNode(std::unique_ptr<Node> n, Period p, RowId row,
                              std::unique_ptr<Node>* lo,
                              std::unique_ptr<Node>* hi) {
  if (!n) {
    lo->reset();
    hi->reset();
    return;
  }
  if (KeyLess(*n, p, row)) {
    std::unique_ptr<Node> right_lo;
    SplitNode(std::move(n->right), p, row, &right_lo, hi);
    n->right = std::move(right_lo);
    Pull(n.get());
    *lo = std::move(n);
  } else {
    std::unique_ptr<Node> left_hi;
    SplitNode(std::move(n->left), p, row, lo, &left_hi);
    n->left = std::move(left_hi);
    Pull(n.get());
    *hi = std::move(n);
  }
}

Status IntervalIndex::Insert(Period p, RowId row) {
  if (p.IsEmpty()) {
    return Status::InvalidArgument("cannot index an empty period");
  }
  // xorshift for priorities; deterministic but well mixed.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  auto node = std::make_unique<Node>();
  node->period = p;
  node->row = row;
  node->priority = rng_state_;
  node->max_end = p.end();
  std::unique_ptr<Node> lo, hi;
  SplitNode(std::move(root_), p, row, &lo, &hi);
  root_ = Merge(Merge(std::move(lo), std::move(node)), std::move(hi));
  ++size_;
  return Status::OK();
}

Status IntervalIndex::Remove(Period p, RowId row) {
  // Split around the key, drop the exact match from the >= side's leftmost.
  std::unique_ptr<Node> lo, hi;
  SplitNode(std::move(root_), p, row, &lo, &hi);
  // `hi`'s leftmost node is the smallest key >= (p.begin, row).
  Node* parent = nullptr;
  Node* cur = hi.get();
  while (cur != nullptr && cur->left) {
    parent = cur;
    cur = cur->left.get();
  }
  bool found = cur != nullptr && cur->period == p && cur->row == row;
  if (found) {
    std::unique_ptr<Node> victim;
    if (parent == nullptr) {
      victim = std::move(hi);
      hi = Merge(std::move(victim->left), std::move(victim->right));
    } else {
      victim = std::move(parent->left);
      parent->left = Merge(std::move(victim->left), std::move(victim->right));
      // Re-pull the augmentation along the left spine, bottom-up.
      std::vector<Node*> spine;
      for (Node* fix = hi.get(); fix != nullptr; fix = fix->left.get()) {
        spine.push_back(fix);
      }
      for (auto it = spine.rbegin(); it != spine.rend(); ++it) Pull(*it);
    }
    --size_;
  }
  root_ = Merge(std::move(lo), std::move(hi));
  return found ? Status::OK()
               : Status::NotFound("interval entry not in index");
}

void IntervalIndex::Visit(const Node* n, Period q,
                          const std::function<void(Period, RowId)>& fn) {
  if (n == nullptr) return;
  // Prune: nothing in this subtree ends after q.begin.
  if (n->max_end <= q.begin()) return;
  Visit(n->left.get(), q, fn);
  if (n->period.Overlaps(q)) fn(n->period, n->row);
  // Keys right of n begin at >= n->period.begin(); if n already begins at or
  // beyond q.end, so does everything to the right.
  if (n->period.begin() < q.end()) {
    Visit(n->right.get(), q, fn);
  }
}

void IntervalIndex::Stab(Chronon t,
                         const std::function<void(Period, RowId)>& fn) const {
  Overlapping(Period::At(t), fn);
}

void IntervalIndex::Overlapping(
    Period q, const std::function<void(Period, RowId)>& fn) const {
  if (q.IsEmpty()) return;
  Visit(root_.get(), q, fn);
}

std::vector<IntervalIndex::RowId> IntervalIndex::StabRows(Chronon t) const {
  std::vector<RowId> out;
  Stab(t, [&](Period, RowId row) { out.push_back(row); });
  return out;
}

Status IntervalIndex::CheckInvariants() const {
  std::function<Status(const Node*, const Node*, const Node*)> check =
      [&](const Node* n, const Node* lo, const Node* hi) -> Status {
    if (n == nullptr) return Status::OK();
    if (lo != nullptr && KeyLess(*n, lo->period, lo->row)) {
      return Status::Internal("BST order violated (left)");
    }
    if (hi != nullptr && KeyLess(*hi, n->period, n->row)) {
      return Status::Internal("BST order violated (right)");
    }
    if (n->left && n->left->priority > n->priority) {
      return Status::Internal("heap order violated");
    }
    if (n->right && n->right->priority > n->priority) {
      return Status::Internal("heap order violated");
    }
    Chronon want = n->period.end();
    if (n->left && n->left->max_end > want) want = n->left->max_end;
    if (n->right && n->right->max_end > want) want = n->right->max_end;
    if (want != n->max_end) {
      return Status::Internal("max_end augmentation stale");
    }
    TDB_RETURN_IF_ERROR(check(n->left.get(), lo, n));
    return check(n->right.get(), n, hi);
  };
  return check(root_.get(), nullptr, nullptr);
}

}  // namespace temporadb
