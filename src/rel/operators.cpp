#include "rel/operators.h"

#include <utility>

#include "rel/cursor.h"

namespace temporadb {

// Each materializing operator is a thin wrapper over the streaming cursor
// executor in rel/cursor.{h,cpp}: build the (one- or two-node) cursor tree
// over the argument rowsets and drain it.  Callers migrate to composing
// cursors directly when they want pipelining; the rowset API keeps its
// historical signatures and semantics.

Result<Rowset> Select(const Rowset& input, const Expr& pred) {
  RowCursorPtr c = MakeSelectCursor(MakeRowsetCursor(&input), &pred);
  return MaterializeCursor(c.get());
}

Result<Rowset> Project(const Rowset& input, const std::vector<ExprPtr>& exprs,
                       const std::vector<std::string>& names) {
  RowCursorPtr c = MakeProjectCursor(MakeRowsetCursor(&input), &exprs, names);
  return MaterializeCursor(c.get());
}

Result<Rowset> ProjectColumns(const Rowset& input,
                              const std::vector<size_t>& indexes) {
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (size_t idx : indexes) {
    if (idx >= input.schema().size()) {
      return Status::InvalidArgument("projection index out of range");
    }
    exprs.push_back(MakeColumnRef(idx, input.schema().at(idx).name));
    names.push_back(input.schema().at(idx).name);
  }
  return Project(input, exprs, names);
}

Result<Rowset> Union(const Rowset& a, const Rowset& b) {
  RowCursorPtr c =
      MakeUnionCursor(MakeRowsetCursor(&a), MakeRowsetCursor(&b));
  return MaterializeCursor(c.get());
}

Result<Rowset> Difference(const Rowset& a, const Rowset& b) {
  RowCursorPtr c =
      MakeDifferenceCursor(MakeRowsetCursor(&a), MakeRowsetCursor(&b));
  return MaterializeCursor(c.get());
}

Rowset Distinct(const Rowset& input) {
  RowCursorPtr c = MakeDistinctCursor(MakeRowsetCursor(&input));
  Result<Rowset> out = MaterializeCursor(c.get());
  if (!out.ok()) {
    // Unreachable: distinct introduces no failure mode over a well-formed
    // rowset; keep the historical non-Result signature.
    return Rowset(input.schema(), input.temporal_class(), input.data_model());
  }
  return std::move(*out);
}

Result<Rowset> SortBy(const Rowset& input, const std::vector<size_t>& keys) {
  RowCursorPtr c = MakeSortCursor(MakeRowsetCursor(&input), keys);
  return MaterializeCursor(c.get());
}

Result<Rowset> CrossProduct(const Rowset& a, const Rowset& b) {
  RowCursorPtr c =
      MakeCrossProductCursor(MakeRowsetCursor(&a), MakeRowsetCursor(&b));
  return MaterializeCursor(c.get());
}

}  // namespace temporadb
