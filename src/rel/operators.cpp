#include "rel/operators.h"

#include <utility>

#include "rel/batch_cursor.h"
#include "rel/cursor.h"

namespace temporadb {

// Each materializing operator is a thin wrapper over the vectorized batch
// executor in rel/batch_cursor.{h,cpp}: build the (one- or two-node) batch
// cursor tree over the argument rowsets and drain it.  The batch tree
// yields the exact row sequence of the retained row-at-a-time cursor tree
// (rel/cursor.h) — the differential tests drive both and compare — so the
// rowset API keeps its historical signatures and semantics.

Result<Rowset> Select(const Rowset& input, const Expr& pred) {
  BatchCursorPtr c = MakeBatchSelectCursor(MakeRowsetBatchCursor(&input),
                                           &pred);
  return MaterializeBatchCursor(c.get());
}

Result<Rowset> Project(const Rowset& input, const std::vector<ExprPtr>& exprs,
                       const std::vector<std::string>& names) {
  BatchCursorPtr c =
      MakeBatchProjectCursor(MakeRowsetBatchCursor(&input), &exprs, names);
  return MaterializeBatchCursor(c.get());
}

Result<Rowset> ProjectColumns(const Rowset& input,
                              const std::vector<size_t>& indexes) {
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (size_t idx : indexes) {
    if (idx >= input.schema().size()) {
      return Status::InvalidArgument("projection index out of range");
    }
    exprs.push_back(MakeColumnRef(idx, input.schema().at(idx).name));
    names.push_back(input.schema().at(idx).name);
  }
  return Project(input, exprs, names);
}

Result<Rowset> Union(const Rowset& a, const Rowset& b) {
  BatchCursorPtr c = MakeBatchUnionCursor(MakeRowsetBatchCursor(&a),
                                          MakeRowsetBatchCursor(&b));
  return MaterializeBatchCursor(c.get());
}

Result<Rowset> Difference(const Rowset& a, const Rowset& b) {
  BatchCursorPtr c = MakeBatchDifferenceCursor(MakeRowsetBatchCursor(&a),
                                               MakeRowsetBatchCursor(&b));
  return MaterializeBatchCursor(c.get());
}

Rowset Distinct(const Rowset& input) {
  BatchCursorPtr c = MakeBatchDistinctCursor(MakeRowsetBatchCursor(&input));
  Result<Rowset> out = MaterializeBatchCursor(c.get());
  if (!out.ok()) {
    // Unreachable: distinct introduces no failure mode over a well-formed
    // rowset; keep the historical non-Result signature.
    return Rowset(input.schema(), input.temporal_class(), input.data_model());
  }
  return std::move(*out);
}

Result<Rowset> SortBy(const Rowset& input, const std::vector<size_t>& keys) {
  BatchCursorPtr c = MakeBatchSortCursor(MakeRowsetBatchCursor(&input), keys);
  return MaterializeBatchCursor(c.get());
}

Result<Rowset> CrossProduct(const Rowset& a, const Rowset& b) {
  BatchCursorPtr c = MakeBatchCrossProductCursor(MakeRowsetBatchCursor(&a),
                                                 MakeRowsetBatchCursor(&b));
  return MaterializeBatchCursor(c.get());
}

}  // namespace temporadb
