#include "rel/operators.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace temporadb {

Result<Rowset> Select(const Rowset& input, const Expr& pred) {
  Rowset out(input.schema(), input.temporal_class(), input.data_model());
  for (const Row& row : input.rows()) {
    TDB_ASSIGN_OR_RETURN(bool keep, EvalPredicate(pred, row.values));
    if (keep) {
      TDB_RETURN_IF_ERROR(out.AddRow(row));
    }
  }
  return out;
}

Result<Rowset> Project(const Rowset& input, const std::vector<ExprPtr>& exprs,
                       const std::vector<std::string>& names) {
  if (exprs.size() != names.size()) {
    return Status::InvalidArgument("projection names/expressions mismatch");
  }
  // Output attribute types: inferred from the first row, defaulting to
  // string for empty inputs (types are advisory on derived rowsets).
  std::vector<Attribute> attrs;
  attrs.reserve(exprs.size());
  for (size_t i = 0; i < exprs.size(); ++i) {
    ValueType vt = ValueType::kString;
    if (!input.rows().empty()) {
      TDB_ASSIGN_OR_RETURN(Value v, exprs[i]->Eval(input.rows()[0].values));
      if (!v.is_null()) vt = v.type();
    }
    attrs.push_back(Attribute{names[i], Type(vt)});
  }
  TDB_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  Rowset out(std::move(schema), input.temporal_class(), input.data_model());
  for (const Row& row : input.rows()) {
    Row projected;
    projected.valid = row.valid;
    projected.txn = row.txn;
    projected.values.reserve(exprs.size());
    for (const ExprPtr& e : exprs) {
      TDB_ASSIGN_OR_RETURN(Value v, e->Eval(row.values));
      projected.values.push_back(std::move(v));
    }
    TDB_RETURN_IF_ERROR(out.AddRow(std::move(projected)));
  }
  return out;
}

Result<Rowset> ProjectColumns(const Rowset& input,
                              const std::vector<size_t>& indexes) {
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (size_t idx : indexes) {
    if (idx >= input.schema().size()) {
      return Status::InvalidArgument("projection index out of range");
    }
    exprs.push_back(MakeColumnRef(idx, input.schema().at(idx).name));
    names.push_back(input.schema().at(idx).name);
  }
  return Project(input, exprs, names);
}

Result<Rowset> Union(const Rowset& a, const Rowset& b) {
  if (a.schema() != b.schema()) {
    return Status::InvalidArgument("union of incompatible schemas");
  }
  if (a.temporal_class() != b.temporal_class()) {
    return Status::InvalidArgument(StringPrintf(
        "union of %s and %s relations",
        std::string(TemporalClassName(a.temporal_class())).c_str(),
        std::string(TemporalClassName(b.temporal_class())).c_str()));
  }
  Rowset out(a.schema(), a.temporal_class(), a.data_model());
  for (const Row& row : a.rows()) TDB_RETURN_IF_ERROR(out.AddRow(row));
  for (const Row& row : b.rows()) TDB_RETURN_IF_ERROR(out.AddRow(row));
  return out;
}

Result<Rowset> Difference(const Rowset& a, const Rowset& b) {
  if (a.schema() != b.schema() || a.temporal_class() != b.temporal_class()) {
    return Status::InvalidArgument("difference of incompatible relations");
  }
  std::set<Row> exclude(b.rows().begin(), b.rows().end());
  Rowset out(a.schema(), a.temporal_class(), a.data_model());
  for (const Row& row : a.rows()) {
    if (!exclude.contains(row)) {
      TDB_RETURN_IF_ERROR(out.AddRow(row));
    }
  }
  return out;
}

Rowset Distinct(const Rowset& input) {
  Rowset out(input.schema(), input.temporal_class(), input.data_model());
  std::set<Row> seen;
  for (const Row& row : input.rows()) {
    if (seen.insert(row).second) {
      (void)out.AddRow(row);
    }
  }
  return out;
}

Result<Rowset> SortBy(const Rowset& input, const std::vector<size_t>& keys) {
  for (size_t k : keys) {
    if (k >= input.schema().size()) {
      return Status::InvalidArgument("sort key index out of range");
    }
  }
  Rowset out(input.schema(), input.temporal_class(), input.data_model());
  std::vector<Row> rows = input.rows();
  std::stable_sort(rows.begin(), rows.end(),
                   [&keys](const Row& a, const Row& b) {
                     for (size_t k : keys) {
                       if (a.values[k] < b.values[k]) return true;
                       if (b.values[k] < a.values[k]) return false;
                     }
                     return a < b;
                   });
  for (Row& row : rows) {
    (void)out.AddRow(std::move(row));
  }
  return out;
}

Result<Rowset> CrossProduct(const Rowset& a, const Rowset& b) {
  TemporalClass cls = MeetClass(a.temporal_class(), b.temporal_class());
  Schema schema = a.schema().Concat(b.schema());
  Rowset out(std::move(schema), cls);
  const bool want_valid = SupportsValidTime(cls);
  const bool want_txn = SupportsTransactionTime(cls);
  for (const Row& ra : a.rows()) {
    for (const Row& rb : b.rows()) {
      Row combined;
      if (want_valid) {
        Period v = ra.valid->Intersect(*rb.valid);
        if (v.IsEmpty()) continue;  // The facts never coexist in reality.
        combined.valid = v;
      }
      if (want_txn) {
        Period t = ra.txn->Intersect(*rb.txn);
        if (t.IsEmpty()) continue;  // Never co-stored.
        combined.txn = t;
      }
      combined.values = ra.values;
      combined.values.insert(combined.values.end(), rb.values.begin(),
                             rb.values.end());
      TDB_RETURN_IF_ERROR(out.AddRow(std::move(combined)));
    }
  }
  return out;
}

}  // namespace temporadb
