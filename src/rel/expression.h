#ifndef TEMPORADB_REL_EXPRESSION_H_
#define TEMPORADB_REL_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "rel/row.h"

namespace temporadb {

/// Scalar expressions over a row's attribute values.
///
/// The TQuel analyzer compiles `where` clauses and target-list expressions
/// into these trees; attribute references are resolved to indexes into the
/// evaluation row (for joins, the concatenation of the bound tuples).

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };
enum class LogicalOp { kAnd, kOr };

std::string_view CompareOpName(CompareOp op);
std::string_view ArithOpName(ArithOp op);

/// Abstract expression node; immutable and shareable.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluates against `values` (the flattened binding row).
  virtual Result<Value> Eval(const std::vector<Value>& values) const = 0;

  /// Source-like rendering for diagnostics.
  virtual std::string ToString() const = 0;
};

/// Leaf: a literal value.
ExprPtr MakeLiteral(Value v);

/// Leaf: the attribute at `index` (display name kept for ToString).
ExprPtr MakeColumnRef(size_t index, std::string display_name);

/// `left op right`; values must be comparable (Value::Compare rules).
ExprPtr MakeCompare(CompareOp op, ExprPtr left, ExprPtr right);

/// Numeric arithmetic; ints stay ints unless either side is float.
ExprPtr MakeArith(ArithOp op, ExprPtr left, ExprPtr right);

/// Boolean connectives (non-short-circuit; both sides must be bool).
ExprPtr MakeLogical(LogicalOp op, ExprPtr left, ExprPtr right);

/// Boolean negation.
ExprPtr MakeNot(ExprPtr inner);

/// Convenience: evaluates `expr` and requires a boolean result.
Result<bool> EvalPredicate(const Expr& expr, const std::vector<Value>& values);

}  // namespace temporadb

#endif  // TEMPORADB_REL_EXPRESSION_H_
