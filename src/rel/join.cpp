#include "rel/join.h"

#include <cstdint>
#include <unordered_map>

#include "rel/batch.h"
#include "rel/kernels.h"
#include "rel/operators.h"

namespace temporadb {

Result<Rowset> NestedLoopJoin(const Rowset& a, const Rowset& b,
                              const Expr& pred) {
  TDB_ASSIGN_OR_RETURN(Rowset product, CrossProduct(a, b));
  return Select(product, pred);
}

namespace {

struct KeyHash {
  size_t operator()(const std::vector<Value>& key) const {
    size_t h = 1469598103934665603ULL;
    for (const Value& v : key) {
      h ^= v.Hash();
      h *= 1099511628211ULL;
    }
    return h;
  }
};

}  // namespace

Result<Rowset> HashEquiJoin(const Rowset& a, const Rowset& b,
                            const std::vector<size_t>& keys_a,
                            const std::vector<size_t>& keys_b) {
  if (keys_a.size() != keys_b.size() || keys_a.empty()) {
    return Status::InvalidArgument("equi-join key lists must match");
  }
  for (size_t k : keys_a) {
    if (k >= a.schema().size()) {
      return Status::InvalidArgument("left join key out of range");
    }
  }
  for (size_t k : keys_b) {
    if (k >= b.schema().size()) {
      return Status::InvalidArgument("right join key out of range");
    }
  }
  TemporalClass cls = MeetClass(a.temporal_class(), b.temporal_class());
  Rowset out(a.schema().Concat(b.schema()), cls);
  const bool want_valid = SupportsValidTime(cls);
  const bool want_txn = SupportsTransactionTime(cls);

  // Build on the smaller side.
  const bool build_left = a.size() <= b.size();
  const Rowset& build = build_left ? a : b;
  const Rowset& probe = build_left ? b : a;
  const std::vector<size_t>& build_keys = build_left ? keys_a : keys_b;
  const std::vector<size_t>& probe_keys = build_left ? keys_b : keys_a;

  // Columnarize the build side's periods once so each probe row's temporal
  // residual is one branch-free kernel pass over its hash bucket (matching
  // the scalar `Intersect` + empty check pair-for-pair).
  const size_t n_build = build.size();
  ChrononColumn build_vf, build_vt, build_ts, build_te;
  if (want_valid) {
    build_vf.reserve(n_build);
    build_vt.reserve(n_build);
  }
  if (want_txn) {
    build_ts.reserve(n_build);
    build_te.reserve(n_build);
  }
  for (const Row& row : build.rows()) {
    if (want_valid) {
      build_vf.push_back(row.valid->begin().days());
      build_vt.push_back(row.valid->end().days());
    }
    if (want_txn) {
      build_ts.push_back(row.txn->begin().days());
      build_te.push_back(row.txn->end().days());
    }
  }

  // Buckets hold build-row indexes in insertion order (= ascending), so the
  // kernel's surviving order reproduces the scalar probe's pair order.
  std::unordered_map<std::vector<Value>, SelectionVector, KeyHash> table;
  for (size_t i = 0; i < n_build; ++i) {
    const Row& row = build.rows()[i];
    std::vector<Value> key;
    key.reserve(build_keys.size());
    for (size_t k : build_keys) key.push_back(row.values[k]);
    table[std::move(key)].push_back(static_cast<uint32_t>(i));
  }

  SelectionVector sel;
  ChrononColumn out_vb, out_ve, out_tb, out_te;
  for (const Row& probe_row : probe.rows()) {
    std::vector<Value> key;
    key.reserve(probe_keys.size());
    for (size_t k : probe_keys) key.push_back(probe_row.values[k]);
    auto it = table.find(key);
    if (it == table.end()) continue;
    const SelectionVector& cand = it->second;
    sel.resize(cand.size());
    size_t n_pairs;
    if (want_valid && want_txn) {
      out_vb.resize(cand.size());
      out_ve.resize(cand.size());
      out_tb.resize(cand.size());
      out_te.resize(cand.size());
      n_pairs = kernels::IntersectBitemporal(
          build_vf.data(), build_vt.data(), build_ts.data(), build_te.data(),
          cand.data(), cand.size(), probe_row.valid->begin().days(),
          probe_row.valid->end().days(), probe_row.txn->begin().days(),
          probe_row.txn->end().days(), sel.data(), out_vb.data(),
          out_ve.data(), out_tb.data(), out_te.data());
    } else if (want_valid) {
      out_vb.resize(cand.size());
      out_ve.resize(cand.size());
      n_pairs = kernels::IntersectPeriods(
          build_vf.data(), build_vt.data(), cand.data(), cand.size(),
          probe_row.valid->begin().days(), probe_row.valid->end().days(),
          sel.data(), out_vb.data(), out_ve.data());
    } else if (want_txn) {
      out_tb.resize(cand.size());
      out_te.resize(cand.size());
      n_pairs = kernels::IntersectPeriods(
          build_ts.data(), build_te.data(), cand.data(), cand.size(),
          probe_row.txn->begin().days(), probe_row.txn->end().days(),
          sel.data(), out_tb.data(), out_te.data());
    } else {
      // No maintained dimension: every key match joins.
      n_pairs = cand.size();
      sel = cand;
    }
    for (size_t k = 0; k < n_pairs; ++k) {
      const Row& build_row = build.rows()[sel[k]];
      const Row& left = build_left ? build_row : probe_row;
      const Row& right = build_left ? probe_row : build_row;
      Row combined;
      if (want_valid) {
        combined.valid = Period(Chronon(out_vb[k]), Chronon(out_ve[k]));
      }
      if (want_txn) {
        combined.txn = Period(Chronon(out_tb[k]), Chronon(out_te[k]));
      }
      combined.values = left.values;
      combined.values.insert(combined.values.end(), right.values.begin(),
                             right.values.end());
      TDB_RETURN_IF_ERROR(out.AddRow(std::move(combined)));
    }
  }
  return out;
}

}  // namespace temporadb
